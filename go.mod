module earthplus

go 1.24
