package earthplus_test

import (
	"io"
	"testing"

	"earthplus/internal/experiments"
)

// Each benchmark regenerates one of the paper's tables or figures
// (DESIGN.md maps every artefact to its bench). The benches run at the
// tiny calibration scale so `go test -bench=.` stays tractable;
// cmd/earthplus-bench runs the same experiments at quick or full scale and
// prints the regenerated rows/series.

func benchScale() experiments.Scale { return experiments.Tiny() }

// renderTo keeps the compiler from eliding results without spamming bench
// output.
func renderTo(b *testing.B, r experiments.Result) {
	b.Helper()
	if err := r.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable1Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderTo(b, experiments.Table1())
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderTo(b, experiments.Table2(benchScale()))
	}
}

func BenchmarkFig4ChangedTilesVsAge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderTo(b, experiments.Fig4(benchScale()))
	}
}

func BenchmarkFig5ReferenceAgeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderTo(b, experiments.Fig5(benchScale()))
	}
}

func BenchmarkFig8DownsampledDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderTo(b, experiments.Fig8(benchScale()))
	}
}

func BenchmarkFig11TradeoffRich(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchScale(), experiments.RichContent)
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig11TradeoffPlanet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchScale(), experiments.PlanetSampled)
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig12CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig13TimeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig14PerLocationAndBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig15Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig16Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig17UplinkCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig18UplinkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkFig19ConstellationScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig19(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkAblationTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTheta(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkAblationGuarantee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGuarantee(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}

func BenchmarkAblationReject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationReject(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		renderTo(b, r)
	}
}
