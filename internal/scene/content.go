package scene

import (
	"earthplus/internal/noise"
)

// ContentType classifies a location's dominant geographic content, matching
// the variety the paper samples from Washington State (Fig 10): fluvial
// landscapes, forests, mountains, agriculture, cities, coastline, and the
// snow-prone locations (D, H) that limit Earth+'s savings (Fig 14).
type ContentType uint8

const (
	// River is a fluvial landscape with a dark meandering channel.
	River ContentType = iota
	// Forest is mid-frequency vegetated terrain.
	Forest
	// Mountain is high-relief terrain with strong shading contrast.
	Mountain
	// Agriculture is a quilt of uniform field patches.
	Agriculture
	// City is high-frequency blocky texture.
	City
	// Coastal splits the frame into water and land.
	Coastal
	// Snowfield is alpine terrain that carries seasonal snow cover.
	Snowfield
)

// String returns the content type's name.
func (c ContentType) String() string {
	switch c {
	case River:
		return "river"
	case Forest:
		return "forest"
	case Mountain:
		return "mountain"
	case Agriculture:
		return "agriculture"
	case City:
		return "city"
	case Coastal:
		return "coastal"
	case Snowfield:
		return "snowfield"
	}
	return "unknown"
}

// terrainFields holds the location-invariant structure planes every band is
// rendered from: an elevation-like plane and a vegetation-like plane, both
// in [0,1], plus a water mask in [0,1] (1 = open water).
type terrainFields struct {
	elev []float32
	veg  []float32
	wat  []float32
}

// buildTerrain synthesises the structure planes for one location. Each
// content type mixes fBm octaves differently so the datasets cover the
// paper's "wide range of contents".
func buildTerrain(src *noise.Source, content ContentType, w, h int) terrainFields {
	n := w * h
	tf := terrainFields{
		elev: make([]float32, n),
		veg:  make([]float32, n),
		wat:  make([]float32, n),
	}
	switch content {
	case Mountain, Snowfield:
		src.FillFBM(tf.elev, w, h, 5, 6)
		contrast(tf.elev, 1.6)
		src.FillFBM(tf.veg, w, h, 7, 3)
	case City:
		src.FillFBM(tf.elev, w, h, 24, 2)
		quantize(tf.elev, 6)
		src.FillFBM(tf.veg, w, h, 18, 2)
		quantize(tf.veg, 4)
	case Agriculture:
		src.FillFBM(tf.elev, w, h, 3, 2)
		src.FillFBM(tf.veg, w, h, 10, 1)
		quantize(tf.veg, 8) // uniform field parcels
	case Coastal:
		src.FillFBM(tf.elev, w, h, 3, 4)
		src.FillFBM(tf.veg, w, h, 8, 3)
		for i, e := range tf.elev {
			if e < 0.45 {
				tf.wat[i] = smooth01((0.45 - e) / 0.08)
			}
		}
	case River:
		src.FillFBM(tf.elev, w, h, 4, 4)
		src.FillFBM(tf.veg, w, h, 9, 3)
		// Carve a channel along an fBm iso-contour.
		for i, e := range tf.elev {
			d := e - 0.5
			if d < 0 {
				d = -d
			}
			if d < 0.03 {
				tf.wat[i] = smooth01((0.03 - d) / 0.015)
			}
		}
	default: // Forest
		src.FillFBM(tf.elev, w, h, 6, 4)
		src.FillFBM(tf.veg, w, h, 12, 4)
		for i := range tf.veg {
			tf.veg[i] = 0.3 + 0.7*tf.veg[i] // densely vegetated
		}
	}
	return tf
}

// contrast stretches a [0,1] plane around 0.5 by factor k, clamped.
func contrast(p []float32, k float32) {
	for i, v := range p {
		v = 0.5 + (v-0.5)*k
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		p[i] = v
	}
}

// quantize snaps a [0,1] plane to n discrete levels (field parcels, city
// blocks).
func quantize(p []float32, n int) {
	for i, v := range p {
		p[i] = float32(int(v*float32(n))) / float32(n)
	}
}

// smooth01 clamps t into [0,1] with smoothstep easing.
func smooth01(t float32) float32 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}
