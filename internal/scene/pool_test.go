package scene

import (
	"testing"

	"earthplus/internal/raster"
)

// The capture pools must be invisible: recycling buffers through
// ReleaseCapture cannot change a single synthesized pixel, and foreign
// images must never enter the pool.

func clonedCapture(c *Capture) (img, truth *raster.Image, bits []bool) {
	bits = append([]bool(nil), c.TrueCloud.Bits...)
	return c.Image.Clone(), c.Truth.Clone(), bits
}

func TestReleaseCaptureKeepsSynthesisDeterministic(t *testing.T) {
	s := New(LargeConstellationSampled(Quick))
	first := s.CaptureImage(0, 50, 1)
	wantImg, wantTruth, wantBits := clonedCapture(first)
	wantCov := first.Coverage
	s.ReleaseCapture(first)
	//lint:pooled the assertion is that release cleared the shell's references
	if first.Image != nil || first.Truth != nil || first.TrueCloud != nil {
		t.Fatal("ReleaseCapture left dangling references")
	}

	// Churn other captures through the pools, then regenerate the original.
	for d := 0; d < 5; d++ {
		c := s.CaptureImage(0, 60+d, 0)
		s.ReleaseCapture(c)
	}
	again := s.CaptureImage(0, 50, 1)
	defer s.ReleaseCapture(again)
	if again.Coverage != wantCov {
		t.Fatalf("coverage changed after pooling: %v vs %v", again.Coverage, wantCov)
	}
	for b := range again.Image.Pix {
		for i, v := range again.Image.Pix[b] {
			if wantImg.Pix[b][i] != v {
				t.Fatalf("pooled capture pixel diverged at band %d index %d", b, i)
			}
			if wantTruth.Pix[b][i] != again.Truth.Pix[b][i] {
				t.Fatalf("pooled truth pixel diverged at band %d index %d", b, i)
			}
		}
	}
	for i, v := range again.TrueCloud.Bits {
		if wantBits[i] != v {
			t.Fatalf("pooled cloud mask diverged at %d", i)
		}
	}
}

func TestReleaseCaptureRecyclesBuffers(t *testing.T) {
	s := New(LargeConstellationSampled(Quick))
	// sync.Pool may drop items across GC cycles, so a single Put/Get pair
	// cannot be asserted; but across several single-goroutine rounds at
	// least one released image must come back out of the pool.
	released := map[*raster.Image]bool{}
	for d := 0; d < 10; d++ {
		//lint:pooled the success path returns mid-loop holding the recycled capture
		c := s.CaptureImage(0, 42+d, 0)
		if released[c.Image] || released[c.Truth] {
			return // a pooled buffer was recycled
		}
		released[c.Image], released[c.Truth] = true, true
		s.ReleaseCapture(c)
	}
	t.Fatal("no released capture buffer was ever recycled")
}

func TestReleaseImageRejectsForeignShapes(t *testing.T) {
	s := New(LargeConstellationSampled(Quick))
	foreign := raster.New(8, 8, s.Bands())
	s.ReleaseImage(foreign) // must be ignored, not pooled
	c := s.CaptureImage(0, 10, 0)
	if c.Image.Width != s.Config().Width || c.Image.Height != s.Config().Height {
		t.Fatalf("capture has wrong geometry %dx%d", c.Image.Width, c.Image.Height)
	}
	s.ReleaseCapture(c)
	// Releasing nil or a double-released capture shell must be harmless.
	s.ReleaseCapture(nil)
	//lint:pooled deliberate double release; the hardening under test
	s.ReleaseCapture(c)
}
