package scene

import (
	"math"
	"testing"

	"earthplus/internal/change"
	"earthplus/internal/cloud"
	"earthplus/internal/illum"
	"earthplus/internal/raster"
)

func quickConfig() Config {
	cfg := LargeConstellation(Quick)
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := quickConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.TileSize = 13
	if err := bad.Validate(); err == nil {
		t.Fatal("expected tile-divisibility error")
	}
	bad = good
	bad.Locations = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected no-locations error")
	}
	bad = good
	bad.Bands = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected no-bands error")
	}
}

func TestGroundTruthDeterministic(t *testing.T) {
	a := New(quickConfig())
	b := New(quickConfig())
	ta := a.GroundTruth(0, 100)
	tb := b.GroundTruth(0, 100)
	for band := 0; band < ta.NumBands(); band++ {
		for i := range ta.Plane(band) {
			if ta.Plane(band)[i] != tb.Plane(band)[i] {
				t.Fatalf("two scenes from same config diverge at band %d pixel %d", band, i)
			}
		}
	}
}

func TestGroundTruthRewindMatchesForward(t *testing.T) {
	s := New(quickConfig())
	d50a := s.GroundTruth(0, 50)
	_ = s.GroundTruth(0, 200)    // roll canvas forward
	d50b := s.GroundTruth(0, 50) // forces rewind/rebuild
	for i := range d50a.Plane(0) {
		if d50a.Plane(0)[i] != d50b.Plane(0)[i] {
			t.Fatalf("rewound truth differs at pixel %d", i)
		}
	}
}

func TestGroundTruthValuesInRange(t *testing.T) {
	s := New(RichContent(Quick))
	for _, loc := range []int{0, 3, 4} {
		im := s.GroundTruth(loc, 40)
		for b := 0; b < im.NumBands(); b++ {
			for i, v := range im.Plane(b) {
				if v < 0 || v > 1 {
					t.Fatalf("loc %d band %d pixel %d = %v out of range", loc, b, i, v)
				}
			}
		}
	}
}

func TestChangeAccumulatesWithAge(t *testing.T) {
	s := New(quickConfig())
	g := s.Grid()
	base := s.GroundTruth(0, 400)
	fracAt := func(age int) float64 {
		later := s.GroundTruth(0, 400+age)
		m := change.TrueChanges(base, later, 0, g, nil)
		return m.Fraction()
	}
	f5, f20, f60 := fracAt(5), fracAt(20), fracAt(60)
	if !(f5 < f20 && f20 < f60) {
		t.Fatalf("changed fraction not increasing: %v %v %v", f5, f20, f60)
	}
	if f60 < 0.2 {
		t.Fatalf("60-day change fraction %v suspiciously low", f60)
	}
	if f5 > 0.8 {
		t.Fatalf("5-day change fraction %v suspiciously high", f5)
	}
}

func TestCloudCoverageTargetDistribution(t *testing.T) {
	s := New(RichContent(Quick))
	clear, total := 0, 2000
	var sum float64
	for d := 0; d < total; d++ {
		c := s.CloudCoverageTarget(0, d)
		if c < 0 || c > 1 {
			t.Fatalf("coverage %v out of range", c)
		}
		if c < 0.01 {
			clear++
		}
		sum += c
	}
	clearFrac := float64(clear) / float64(total)
	if clearFrac < 0.18 || clearFrac > 0.32 {
		t.Fatalf("clear-day fraction = %.3f, want ~0.25", clearFrac)
	}
	if mean := sum / float64(total); mean < 0.45 || mean > 0.75 {
		t.Fatalf("mean coverage = %.3f, want ~2/3-ish", mean)
	}
}

func TestCaptureCloudsMatchMask(t *testing.T) {
	s := New(quickConfig())
	// Find a decently cloudy day.
	day := -1
	for d := 0; d < 200; d++ {
		if c := s.CloudCoverageTarget(0, d); c > 0.4 && c < 0.8 {
			day = d
			break
		}
	}
	if day < 0 {
		t.Fatal("no suitable cloudy day found")
	}
	cap := s.CaptureImage(0, day, 0)
	defer s.ReleaseCapture(cap)
	if math.Abs(cap.Coverage-cap.TrueCloud.Coverage()) > 1e-9 {
		t.Fatalf("Coverage %v != mask coverage %v", cap.Coverage, cap.TrueCloud.Coverage())
	}
	if cap.Coverage < 0.2 {
		t.Fatalf("expected cloudy capture, coverage=%v", cap.Coverage)
	}
	// Cloudy pixels should be brighter in visible bands and colder in IR
	// than the underlying truth.
	irBand := raster.InfraredBand(s.Bands())
	var visCloud, visTruth, irCloud, irTruth float64
	n := 0
	for y := 0; y < cap.Image.Height; y++ {
		for x := 0; x < cap.Image.Width; x++ {
			if !cap.TrueCloud.At(x, y) {
				continue
			}
			visCloud += float64(cap.Image.At(0, x, y))
			visTruth += float64(cap.Truth.At(0, x, y))
			irCloud += float64(cap.Image.At(irBand, x, y))
			irTruth += float64(cap.Truth.At(irBand, x, y))
			n++
		}
	}
	if n == 0 {
		t.Fatal("no cloudy pixels")
	}
	if visCloud <= visTruth {
		t.Fatal("clouds did not brighten visible band")
	}
	if irCloud >= irTruth {
		t.Fatal("clouds did not cool the IR band")
	}
}

func TestCaptureClearDayNearTruth(t *testing.T) {
	s := New(quickConfig())
	day := -1
	for d := 0; d < 300; d++ {
		if s.CloudCoverageTarget(0, d) < 0.005 {
			day = d
			break
		}
	}
	if day < 0 {
		t.Fatal("no clear day found")
	}
	cap := s.CaptureImage(0, day, 0)
	defer s.ReleaseCapture(cap)
	// Undo the true illumination; what remains is sensor noise only.
	rec := cap.Image.Clone()
	for b := 0; b < rec.NumBands(); b++ {
		cap.TrueIllum.Normalize(rec.Plane(b))
	}
	if psnr := raster.PSNRBand(cap.Truth, rec, 0); psnr < 38 {
		t.Fatalf("clear-day capture PSNR vs truth = %.1f dB, want > 38", psnr)
	}
}

func TestIllumModelWithinConfiguredJitter(t *testing.T) {
	s := New(quickConfig())
	cfg := s.Config()
	for d := 0; d < 200; d++ {
		m := s.IllumModel(0, d, 3)
		if m.Gain < 1-cfg.IllumGainJitter-1e-9 || m.Gain > 1+cfg.IllumGainJitter+1e-9 {
			t.Fatalf("gain %v outside jitter", m.Gain)
		}
		if math.Abs(m.Offset) > cfg.IllumOffsetJitter+1e-9 {
			t.Fatalf("offset %v outside jitter", m.Offset)
		}
	}
	if s.IllumModel(0, 10, 1) == s.IllumModel(0, 10, 2) {
		t.Fatal("different satellites got identical illumination")
	}
}

func TestIllumRecoverableByFit(t *testing.T) {
	s := New(quickConfig())
	day := -1
	for d := 0; d < 300; d++ {
		if s.CloudCoverageTarget(0, d) < 0.005 {
			day = d
			break
		}
	}
	cap := s.CaptureImage(0, day, 0)
	defer s.ReleaseCapture(cap)
	m, ok := illum.Fit(cap.Truth.Plane(0), cap.Image.Plane(0), nil)
	if !ok {
		t.Fatal("fit failed on clear capture")
	}
	if math.Abs(m.Gain-cap.TrueIllum.Gain) > 0.02 || math.Abs(m.Offset-cap.TrueIllum.Offset) > 0.02 {
		t.Fatalf("fit %+v vs true %+v", m, cap.TrueIllum)
	}
}

func TestSnowyLocationChangesConstantlyInWinter(t *testing.T) {
	s := New(RichContent(Quick))
	g := s.Grid()
	const snowLoc = 3 // "D"
	const forestLoc = 1
	// Mid-winter: day 380 (= day 15 of year 2).
	// Band 1 is B2 (blue, a ground band); snow does not show in the
	// atmosphere band B1 at index 0.
	winterSnowy := change.TrueChanges(s.GroundTruth(snowLoc, 380), s.GroundTruth(snowLoc, 383), 1, g, nil).Fraction()
	winterForest := change.TrueChanges(s.GroundTruth(forestLoc, 380), s.GroundTruth(forestLoc, 383), 1, g, nil).Fraction()
	if winterSnowy <= winterForest+0.05 {
		t.Fatalf("snow-prone winter change %.3f should clearly exceed forest %.3f", winterSnowy, winterForest)
	}
	// Mid-summer the snowfield behaves like ordinary terrain.
	summerSnowy := change.TrueChanges(s.GroundTruth(snowLoc, 560), s.GroundTruth(snowLoc, 563), 1, g, nil).Fraction()
	if summerSnowy > winterSnowy {
		t.Fatalf("summer snowfield change %.3f exceeds winter %.3f", summerSnowy, winterSnowy)
	}
}

func TestBandHeterogeneity(t *testing.T) {
	s := New(RichContent(Quick))
	bands := s.Bands()
	a := s.GroundTruth(1, 300)
	b := s.GroundTruth(1, 330)
	diffByKind := map[raster.BandKind]float64{}
	countByKind := map[raster.BandKind]int{}
	for i, info := range bands {
		diffByKind[info.Kind] += raster.AbsDiffMean(a, b, i)
		countByKind[info.Kind]++
	}
	veg := diffByKind[raster.KindVegetation] / float64(countByKind[raster.KindVegetation])
	atm := diffByKind[raster.KindAtmosphere] / float64(countByKind[raster.KindAtmosphere])
	if veg < 2*atm {
		t.Fatalf("vegetation bands should change much more than atmosphere bands: veg=%v atm=%v", veg, atm)
	}
}

func TestCheapDetectorPrecisionOnSceneCaptures(t *testing.T) {
	s := New(RichContent(Quick))
	det := cloud.DefaultCheap(s.Bands())
	var tp, fp int
	for d := 0; d < 40; d++ {
		if s.CloudCoverageTarget(2, d) < 0.2 {
			continue
		}
		cap := s.CaptureImage(2, d, 0)
		pred := det.Detect(cap.Image)
		for i := range pred.Bits {
			if pred.Bits[i] {
				if cap.TrueCloud.Bits[i] {
					tp++
				} else {
					fp++
				}
			}
		}
		s.ReleaseCapture(cap)
	}
	if tp == 0 {
		t.Fatal("cheap detector found no clouds at all")
	}
	if prec := float64(tp) / float64(tp+fp); prec < 0.97 {
		t.Fatalf("cheap detector precision on scene = %.3f, want >= 0.97", prec)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{RichContent(Quick), RichContent(Full), LargeConstellation(Quick), LargeConstellation(Full)} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(RichContent(Quick).Locations) != 11 {
		t.Fatal("rich-content preset must have 11 locations (paper Table 2)")
	}
	if len(RichContent(Quick).Bands) != 13 {
		t.Fatal("rich-content preset must have 13 bands")
	}
	if len(LargeConstellation(Quick).Bands) != 4 {
		t.Fatal("large-constellation preset must have 4 bands")
	}
}

func TestNumLocationsAndMetadata(t *testing.T) {
	s := New(RichContent(Quick))
	if s.NumLocations() != 11 {
		t.Fatalf("NumLocations = %d", s.NumLocations())
	}
	if s.Location(3).Name != "D" || !s.Location(3).SnowProne {
		t.Fatalf("location D metadata = %+v", s.Location(3))
	}
	if s.Grid().NumTiles() == 0 {
		t.Fatal("empty grid")
	}
}

func BenchmarkCaptureImage(b *testing.B) {
	s := New(quickConfig())
	s.CaptureImage(0, 0, 0) // warm caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CaptureImage(0, i%365, i%4)
	}
}

// The scene must be safe for concurrent captures (the experiment harness
// and future parallel sweeps share one scene).
func TestConcurrentCaptures(t *testing.T) {
	s := New(quickConfig())
	ref := s.CaptureImage(0, 33, 0)
	defer s.ReleaseCapture(ref)
	done := make(chan *raster.Image, 8)
	for g := 0; g < 8; g++ {
		go func() {
			done <- s.CaptureImage(0, 33, 0).Image
		}()
	}
	for g := 0; g < 8; g++ {
		im := <-done
		for i, v := range im.Plane(0) {
			if v != ref.Image.Plane(0)[i] {
				t.Fatalf("concurrent capture differs at pixel %d", i)
			}
		}
	}
}
