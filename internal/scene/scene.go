// Package scene is the synthetic Earth-observation substrate: it generates
// multi-band imagery for a set of locations over simulated days, with slow
// terrestrial change, seasonal drift, snow dynamics, stochastic cloud
// fields, per-capture illumination shifts and sensor noise.
//
// It substitutes for the paper's Sentinel-2 and Planet datasets (DESIGN.md,
// "Substitutions"): every statistic Earth+'s savings depend on — changed
// tiles vs. reference age (Fig 4), cloud-free availability (Fig 5), band
// heterogeneity (Fig 14) — is calibrated to the published measurements, and
// everything is a deterministic function of the configuration seed.
package scene

import (
	"fmt"
	"math"
	"sync"

	"earthplus/internal/cloud"
	"earthplus/internal/illum"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// Location describes one observed region.
type Location struct {
	Name    string
	Content ContentType
	// SnowProne locations carry winter snow whose albedo drifts daily,
	// defeating reference-based encoding in winter (paper locations D, H).
	SnowProne bool
}

// CloudRegime parameterises the per-day cloud coverage distribution of a
// dataset.
type CloudRegime struct {
	// ClearProb is the probability a (location, day) is near-clear.
	ClearProb float64
	// ClearMax is the maximum coverage on near-clear days (the paper's
	// reference-selection cut-off is 1% coverage).
	ClearMax float64
	// CloudyMin / CloudyExp shape coverage on cloudy days:
	// cov = CloudyMin + (1-CloudyMin) * u^CloudyExp. The defaults give a
	// mean around the 2/3 global cloud coverage the paper cites.
	CloudyMin float64
	CloudyExp float64
}

// DefaultClouds matches the paper's numbers: ~25% of visits yield a <1%
// coverage image, the rest average roughly two-thirds cover.
func DefaultClouds() CloudRegime {
	return CloudRegime{ClearProb: 0.25, ClearMax: 0.01, CloudyMin: 0.15, CloudyExp: 0.5}
}

// ChangeModel parameterises terrestrial change.
type ChangeModel struct {
	// TileRatePerDay is the expected fraction of tiles starting a change
	// event each day (calibrated against Fig 4's changed-vs-age curve).
	TileRatePerDay float64
	// EventAmp is the peak pixel amplitude of a change event.
	EventAmp float64
	// SeasonalAmp is the annual drift's pixel amplitude.
	SeasonalAmp float64
	// SnowAlbedoJitter is the day-to-day albedo wobble of snow cover.
	SnowAlbedoJitter float64
}

// DefaultChanges calibrates change dynamics to the paper's measurements
// (≈11% of tiles changed at 10-day reference age, ≈3x more at 50 days).
func DefaultChanges() ChangeModel {
	return ChangeModel{TileRatePerDay: 0.012, EventAmp: 0.12, SeasonalAmp: 0.05, SnowAlbedoJitter: 0.10}
}

// Config fully describes a synthetic dataset.
type Config struct {
	Seed      uint64
	Width     int
	Height    int
	TileSize  int
	Bands     []raster.BandInfo
	Locations []Location
	Clouds    CloudRegime
	Changes   ChangeModel
	// IllumGainJitter / IllumOffsetJitter bound the per-capture linear
	// illumination model (gain in 1±jitter, offset in ±jitter).
	IllumGainJitter   float64
	IllumOffsetJitter float64
	// SensorNoise is the amplitude of per-pixel capture noise.
	SensorNoise float64
	// AtmosVariability is the amplitude of the day-to-day atmospheric
	// pattern observed at capture time, scaled per band by its
	// atmosphere weight (air-observing bands see it fully).
	AtmosVariability float64
	// MicroTexture is the amplitude of static fine-grained surface
	// detail. It is identical in every capture of a location, so it
	// cancels out of change detection — but it must be paid for by any
	// codec, keeping rate-distortion behaviour representative of real
	// (detail-rich, hard-to-compress) satellite imagery rather than of
	// smooth synthetic gradients.
	MicroTexture float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("scene: bad dimensions %dx%d", c.Width, c.Height)
	}
	if c.TileSize <= 0 || c.Width%c.TileSize != 0 || c.Height%c.TileSize != 0 {
		return fmt.Errorf("scene: tile %d does not divide %dx%d", c.TileSize, c.Width, c.Height)
	}
	if len(c.Bands) == 0 {
		return fmt.Errorf("scene: no bands")
	}
	if len(c.Locations) == 0 {
		return fmt.Errorf("scene: no locations")
	}
	return nil
}

// Capture is one simulated photograph.
type Capture struct {
	Loc, Day, Sat int
	// Image is what the satellite sensed: truth + clouds + illumination +
	// noise, clamped to [0,1].
	Image *raster.Image
	// TrueCloud is the ground-truth cloud mask (for evaluation and for
	// the ground station's "accurate" detector oracle tests; on-board
	// systems must use their own detectors).
	TrueCloud *cloud.Mask
	// Truth is the cloud-free surface image at capture time (evaluation
	// only).
	Truth *raster.Image
	// TrueIllum is the illumination model applied (evaluation only).
	TrueIllum illum.Model
	// Coverage is TrueCloud's cloudy fraction.
	Coverage float64
}

// Scene generates imagery for a dataset configuration. CaptureImage and
// GroundTruth are safe for concurrent use; per-location synthesis state is
// guarded by the scene mutex and everything else is a pure function of
// (seed, location, day), so results never depend on call order.
type Scene struct {
	cfg      Config
	src      *noise.Source
	profiles []bandProfile
	grid     raster.TileGrid

	mu   sync.Mutex
	locs []*locState

	// Pools recycle capture-sized buffers so scene synthesis stops
	// allocating per visit once the simulation reaches steady state.
	// Callers opt in by returning finished captures via ReleaseCapture.
	imgPool  sync.Pool // *raster.Image with the scene geometry
	f32Pool  sync.Pool // []float32 of Width*Height
	maskPool sync.Pool // *cloud.Mask of Width*Height
}

// locState caches per-location synthesis state.
type locState struct {
	terrain  terrainFields
	micro    []float32 // static fine-grained detail in [0,1]
	seasonal []float32 // low-frequency seasonal pattern in [0,1]
	base     *raster.Image
	// canvas is base plus all change events with day <= canvasDay.
	canvas    *raster.Image
	canvasDay int
	events    []event
	eventsTo  int // events generated for days < eventsTo
}

// New builds a scene. It panics on invalid configuration (construction
// happens at experiment setup, a bad config is a programming error).
func New(cfg Config) *Scene {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Scene{
		cfg:  cfg,
		src:  noise.New(cfg.Seed),
		grid: raster.MustTileGrid(cfg.Width, cfg.Height, cfg.TileSize),
	}
	s.profiles = make([]bandProfile, len(cfg.Bands))
	for i, b := range cfg.Bands {
		s.profiles[i] = profileFor(b)
	}
	s.locs = make([]*locState, len(cfg.Locations))
	s.imgPool.New = func() any { return raster.New(cfg.Width, cfg.Height, cfg.Bands) }
	s.f32Pool.New = func() any { return make([]float32, cfg.Width*cfg.Height) }
	s.maskPool.New = func() any { return cloud.NewMask(cfg.Width, cfg.Height) }
	return s
}

// getImage returns a pooled capture-sized image. Its content is stale; the
// caller must fully overwrite every plane.
func (s *Scene) getImage() *raster.Image { return s.imgPool.Get().(*raster.Image) }

// getF32 returns a pooled Width*Height scratch plane with stale content.
func (s *Scene) getF32() []float32 { return s.f32Pool.Get().([]float32) }

// getMask returns a pooled all-clear cloud mask.
func (s *Scene) getMask() *cloud.Mask {
	m := s.maskPool.Get().(*cloud.Mask)
	clear(m.Bits)
	return m
}

// ReleaseImage returns an image with the scene's geometry to the capture
// pool. Images of any other shape are ignored. The caller must not touch
// the image afterwards.
func (s *Scene) ReleaseImage(im *raster.Image) {
	if im == nil || im.Width != s.cfg.Width || im.Height != s.cfg.Height || len(im.Pix) != len(s.cfg.Bands) {
		return
	}
	s.imgPool.Put(im)
}

// ReleaseCapture recycles a finished capture's buffers (image, truth and
// cloud mask) into the scene's pools and clears the capture's references so
// accidental reuse fails fast. Callers that retain any of the capture's
// images must clone them first (every sim.System already does).
func (s *Scene) ReleaseCapture(c *Capture) {
	if c == nil {
		return
	}
	s.ReleaseImage(c.Image)
	s.ReleaseImage(c.Truth)
	if c.TrueCloud != nil && len(c.TrueCloud.Bits) == s.cfg.Width*s.cfg.Height {
		s.maskPool.Put(c.TrueCloud)
	}
	c.Image, c.Truth, c.TrueCloud = nil, nil, nil
}

// Config returns the scene's configuration.
func (s *Scene) Config() Config { return s.cfg }

// Grid returns the full-resolution tile grid.
func (s *Scene) Grid() raster.TileGrid { return s.grid }

// Bands returns the band set.
func (s *Scene) Bands() []raster.BandInfo { return s.cfg.Bands }

// NumLocations returns the number of locations.
func (s *Scene) NumLocations() int { return len(s.cfg.Locations) }

// Location returns metadata for location loc.
func (s *Scene) Location(loc int) Location { return s.cfg.Locations[loc] }

// noise stream identifiers; each (purpose, location) pair gets a distinct
// stream so draws never collide.
func (s *Scene) stream(loc, purpose int) int64 { return int64(loc)*16 + int64(purpose) }

const (
	purEventCount = iota
	purEventParam
	purCloudCover
	purIllum
	purSnow
	purNoiseSeed
)

// loc lazily builds per-location state. Callers hold s.mu.
func (s *Scene) loc(loc int) *locState {
	if st := s.locs[loc]; st != nil {
		return st
	}
	w, h := s.cfg.Width, s.cfg.Height
	sub := noise.New(s.cfg.Seed ^ (uint64(loc)+1)*0x9e3779b97f4a7c15)
	st := &locState{
		terrain:   buildTerrain(sub, s.cfg.Locations[loc].Content, w, h),
		seasonal:  make([]float32, w*h),
		canvasDay: -1,
	}
	sub2 := noise.New(s.cfg.Seed ^ (uint64(loc)+101)*0xbf58476d1ce4e5b9)
	sub2.FillFBM(st.seasonal, w, h, 3, 2)
	if s.cfg.MicroTexture > 0 {
		st.micro = make([]float32, w*h)
		sub3 := noise.New(s.cfg.Seed ^ (uint64(loc)+211)*0x94d049bb133111eb)
		sub3.FillFBM(st.micro, w, h, float64(w)/3, 2)
	}
	st.base = s.renderBase(st)
	st.canvas = st.base.Clone()
	st.canvasDay = -1
	s.locs[loc] = st
	return st
}

// renderBase composes the static per-band base image from terrain fields.
func (s *Scene) renderBase(st *locState) *raster.Image {
	w, h := s.cfg.Width, s.cfg.Height
	im := raster.New(w, h, s.cfg.Bands)
	for b := range s.cfg.Bands {
		p := s.profiles[b]
		dst := im.Plane(b)
		for i := 0; i < w*h; i++ {
			v := p.base + p.terrainWeight*(st.terrain.elev[i]-0.5)*2*0.5 +
				p.vegWeight*(st.terrain.veg[i]-0.5)*2*0.5
			v -= p.waterDark * st.terrain.wat[i]
			if st.micro != nil {
				v += microGain(s.cfg.Bands[b].Kind) * float32(s.cfg.MicroTexture) * (st.micro[i] - 0.5)
			}
			// Keep base reflectance inside [0.06, 0.88] so the linear
			// illumination model (gain 1±0.1, offset ±0.03) cannot push
			// clear-sky pixels out of [0,1]; clipping would bias the
			// least-squares illumination fit the systems depend on.
			if v < 0.06 {
				v = 0.06
			} else if v > 0.88 {
				v = 0.88
			}
			dst[i] = v
		}
	}
	return im
}

// GroundTruth returns the cloud-free surface image of location loc on the
// given day (day 0 is the simulation epoch). The returned image is owned by
// the caller.
func (s *Scene) GroundTruth(loc, day int) *raster.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groundTruthLocked(loc, day)
}

func (s *Scene) groundTruthLocked(loc, day int) *raster.Image {
	st := s.loc(loc)
	s.ensureEvents(loc, st, day)
	if day < st.canvasDay {
		// Rewind: rebuild the event canvas from the base image.
		st.canvas = st.base.Clone()
		st.canvasDay = -1
	}
	if day > st.canvasDay {
		for _, e := range st.events {
			if e.day > st.canvasDay && e.day <= day {
				s.applyEvent(st.canvas, e)
			}
		}
		st.canvasDay = day
	}
	out := s.getImage()
	out.CopyFrom(st.canvas)
	s.applySeasonal(out, st, day)
	if s.cfg.Locations[loc].SnowProne {
		s.applySnow(out, st, loc, day)
	}
	out.Clamp()
	return out
}

// microGain scales the static microtexture per band kind: surface-
// observing bands carry the most fine detail.
func microGain(k raster.BandKind) float32 {
	switch k {
	case raster.KindGround:
		return 1.0
	case raster.KindVegetation:
		return 0.8
	case raster.KindInfrared:
		return 0.6
	default:
		return 0.2
	}
}

// applySeasonal adds the annual drift component for the given day.
func (s *Scene) applySeasonal(im *raster.Image, st *locState, day int) {
	phase := math.Sin(2 * math.Pi * float64(day) / 365.0)
	for b := range s.cfg.Bands {
		gain := float32(phase) * s.profiles[b].seasonalGain * float32(s.cfg.Changes.SeasonalAmp)
		if gain == 0 {
			continue
		}
		dst := im.Plane(b)
		for i, v := range st.seasonal {
			dst[i] += gain * (v - 0.5) * 2
		}
	}
}

// winterIntensity peaks mid-winter (day ~15 mod 365) and vanishes in
// summer.
func winterIntensity(day int) float64 {
	c := math.Cos(2 * math.Pi * float64(day-15) / 365.0)
	if c < 0 {
		return 0
	}
	return c * c
}

// applySnow blends daily-drifting snow cover onto snow-prone locations.
// Snow albedo changes day to day (fresh vs. old vs. dirty snow), so snowy
// tiles read as changed against any reference — the paper's explanation
// for locations D and H (Fig 14).
func (s *Scene) applySnow(im *raster.Image, st *locState, loc, day int) {
	wi := winterIntensity(day)
	if wi <= 0 {
		return
	}
	snowline := float32(0.92 - 0.55*wi)
	jit := s.cfg.Changes.SnowAlbedoJitter
	albedo := float32(1 - jit + 2*jit*s.src.Uniform(s.stream(loc, purSnow), int64(day)))
	for b := range s.cfg.Bands {
		p := s.profiles[b]
		if !p.snowShows {
			continue
		}
		dst := im.Plane(b)
		snowVal := p.snowValue * albedo
		for i, e := range st.terrain.elev {
			if e <= snowline {
				continue
			}
			cover := smooth01((e - snowline) / 0.06)
			dst[i] = dst[i]*(1-cover) + snowVal*cover
		}
	}
}

// CloudCoverageTarget returns the sampled coverage level for (loc, day)
// without rendering the cloud field. Orbit analytics (Fig 5) use it.
func (s *Scene) CloudCoverageTarget(loc, day int) float64 {
	u := s.src.Uniform(s.stream(loc, purCloudCover), int64(day)*4)
	r := s.cfg.Clouds
	if u < r.ClearProb {
		return r.ClearMax * s.src.Uniform(s.stream(loc, purCloudCover), int64(day)*4+1)
	}
	u2 := s.src.Uniform(s.stream(loc, purCloudCover), int64(day)*4+2)
	return r.CloudyMin + (1-r.CloudyMin)*math.Pow(u2, r.CloudyExp)
}

// cloudField renders the optical-thickness plane tau in [0,1] for
// (loc, day) hitting the day's coverage target, plus the truth mask
// (tau > 0.15).
// The returned tau plane comes from the scene's scratch pool; CaptureImage
// returns it via putF32 once the cloud blend is done.
func (s *Scene) cloudField(loc, day int) ([]float32, *cloud.Mask, float64) {
	w, h := s.cfg.Width, s.cfg.Height
	target := s.CloudCoverageTarget(loc, day)
	tau := s.getF32()
	if target < 0.002 {
		clear(tau)
		return tau, s.getMask(), 0
	}
	field := s.getF32()
	defer s.f32Pool.Put(field)
	sub := noise.New(s.cfg.Seed ^ uint64(loc)*0x9e3779b97f4a7c15 ^ uint64(day)*0x94d049bb133111eb)
	sub.FillFBM(field, w, h, 4, 4)
	thresh := quantileApprox(field, 1-target)
	mask := s.getMask()
	covered := 0
	// Optical thickness ramps from 0 at the threshold so near-clear days
	// stay genuinely clear; the ramp itself is the thin-haze fringe that
	// separates the accurate detector from the cheap one.
	const edge = 0.05
	for i, v := range field {
		t := smooth01((v - thresh) / edge)
		tau[i] = t
		if t > 0.15 {
			mask.Bits[i] = true
			covered++
		}
	}
	return tau, mask, float64(covered) / float64(w*h)
}

// quantileApprox returns the approximate q-quantile of vals via a
// 1024-bin histogram over [0,1].
func quantileApprox(vals []float32, q float64) float32 {
	const bins = 1024
	var hist [bins]int
	for _, v := range vals {
		idx := int(v * bins)
		if idx < 0 {
			idx = 0
		} else if idx >= bins {
			idx = bins - 1
		}
		hist[idx]++
	}
	want := int(q * float64(len(vals)))
	acc := 0
	for i, c := range hist {
		acc += c
		if acc >= want {
			return (float32(i) + 0.5) / bins
		}
	}
	return 1
}

// IllumModel returns the illumination model a given capture experiences.
func (s *Scene) IllumModel(loc, day, sat int) illum.Model {
	k := int64(day)*4096 + int64(sat)*2
	g := 1 - s.cfg.IllumGainJitter + 2*s.cfg.IllumGainJitter*s.src.Uniform(s.stream(loc, purIllum), k)
	o := -s.cfg.IllumOffsetJitter + 2*s.cfg.IllumOffsetJitter*s.src.Uniform(s.stream(loc, purIllum), k+1)
	return illum.Model{Gain: g, Offset: o}
}

// CaptureImage simulates satellite sat photographing loc on day.
func (s *Scene) CaptureImage(loc, day, sat int) *Capture {
	s.mu.Lock()
	truth := s.groundTruthLocked(loc, day)
	s.mu.Unlock()

	tau, mask, coverage := s.cloudField(loc, day)
	im := s.getImage()
	im.CopyFrom(truth)
	for b := range s.cfg.Bands {
		cv := s.profiles[b].cloudValue
		dst := im.Plane(b)
		for i, t := range tau {
			if t > 0 {
				dst[i] = dst[i]*(1-t) + cv*t
			}
		}
	}
	s.f32Pool.Put(tau)
	if s.cfg.AtmosVariability > 0 {
		s.applyAtmosphere(im, loc, day)
	}
	model := s.IllumModel(loc, day, sat)
	for b := range s.cfg.Bands {
		model.Apply(im.Plane(b))
	}
	if s.cfg.SensorNoise > 0 {
		s.addSensorNoise(im, loc, day, sat)
	}
	im.Clamp()
	return &Capture{
		Loc: loc, Day: day, Sat: sat,
		Image: im, TrueCloud: mask, Truth: truth,
		TrueIllum: model, Coverage: coverage,
	}
}

// applyAtmosphere adds the day's atmospheric pattern (water vapor, haze
// precursors) to each band according to its atmosphere weight. The pattern
// belongs to the capture, not the ground truth: it is what air-observing
// bands exist to measure, and it is why reference-based encoding saves
// little on them (Fig 14).
func (s *Scene) applyAtmosphere(im *raster.Image, loc, day int) {
	w, h := s.cfg.Width, s.cfg.Height
	field := s.getF32()
	defer s.f32Pool.Put(field)
	sub := noise.New(s.cfg.Seed ^ uint64(loc)*0xd6e8feb86659fd93 ^ uint64(day)*0xa0761d6478bd642f)
	sub.FillFBM(field, w, h, 2, 2)
	amp := float32(s.cfg.AtmosVariability)
	for b := range s.cfg.Bands {
		wgt := s.profiles[b].atmosWeight * amp
		if wgt == 0 {
			continue
		}
		dst := im.Plane(b)
		for i, v := range field {
			dst[i] += wgt * (v - 0.5) * 2
		}
	}
}

// addSensorNoise perturbs every pixel with bounded uniform noise from a
// fast deterministic per-capture stream.
func (s *Scene) addSensorNoise(im *raster.Image, loc, day, sat int) {
	seed := uint64(s.src.Uniform(s.stream(loc, purNoiseSeed), int64(day)*256+int64(sat)) * float64(1<<62))
	state := seed | 1
	amp := float32(s.cfg.SensorNoise)
	for b := range im.Pix {
		p := im.Pix[b]
		for i := range p {
			// xorshift64* — cheap, deterministic, good enough for noise.
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			u := float32(state*0x2545F4914F6CDD1D>>40) / float32(1<<24)
			p[i] += amp * (2*u - 1)
		}
	}
}
