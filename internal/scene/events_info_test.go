package scene

import (
	"reflect"
	"testing"
)

func TestEventsInWindowAndDeterminism(t *testing.T) {
	sc := New(LargeConstellation(Quick))
	events := sc.EventsIn(0, 20, 60)
	if len(events) == 0 {
		t.Fatal("large-constellation preset generated no events in 40 days")
	}
	last := -1
	for _, ev := range events {
		if ev.Loc != 0 {
			t.Fatalf("event at loc %d, asked for 0", ev.Loc)
		}
		if ev.Day < 20 || ev.Day >= 60 {
			t.Fatalf("event day %d outside [20, 60)", ev.Day)
		}
		if ev.Day < last {
			t.Fatalf("events out of day order: %d after %d", ev.Day, last)
		}
		last = ev.Day
		if ev.Radius <= 0 {
			t.Fatalf("non-positive radius: %+v", ev)
		}
		if ev.CX < 0 || ev.CX > float64(sc.Grid().ImageW) ||
			ev.CY < 0 || ev.CY > float64(sc.Grid().ImageH) {
			t.Fatalf("event center off-frame: %+v", ev)
		}
	}
	// Repeated queries and a fresh scene see identical events — the stream
	// is a pure function of (seed, loc, day), independent of which captures
	// were generated first.
	if again := sc.EventsIn(0, 20, 60); !reflect.DeepEqual(events, again) {
		t.Fatal("repeated EventsIn diverged")
	}
	fresh := New(LargeConstellation(Quick))
	fresh.EventsIn(0, 0, 5) // advance the stream from a different window first
	if got := fresh.EventsIn(0, 20, 60); !reflect.DeepEqual(events, got) {
		t.Fatal("EventsIn depends on query history")
	}
	// Sub-windows partition the full window.
	head := sc.EventsIn(0, 20, 40)
	tail := sc.EventsIn(0, 40, 60)
	if len(head)+len(tail) != len(events) {
		t.Fatalf("window split %d + %d != %d", len(head), len(tail), len(events))
	}
}

func TestEventsInEmptyWindow(t *testing.T) {
	sc := New(LargeConstellation(Quick))
	if ev := sc.EventsIn(0, 30, 30); ev != nil {
		t.Fatalf("empty window returned %+v", ev)
	}
	if ev := sc.EventsIn(0, 30, 20); ev != nil {
		t.Fatalf("inverted window returned %+v", ev)
	}
}
