package scene

import "earthplus/internal/raster"

// Size selects the experiment scale: Quick keeps tests fast, Full runs
// closer to paper scale (more pixels per location, hence more tiles and
// smoother statistics).
type Size int

const (
	// Quick is the default for `go test` and short benches.
	Quick Size = iota
	// Full is used by cmd/earthplus-bench -full.
	Full
)

// dims returns the per-location image size for a scale.
func (s Size) dims() (w, h, tile int) {
	if s == Full {
		return 384, 384, 16
	}
	return 192, 192, 16
}

// RichContent models the paper's Sentinel-2 Washington State dataset
// (Table 2): 11 locations labelled A..K covering rivers, forests,
// mountains, agriculture, cities and coastline, with D and H snow-prone
// (Fig 14), observed in 13 bands.
func RichContent(size Size) Config {
	w, h, tile := size.dims()
	return Config{
		Seed:     20240318,
		Width:    w,
		Height:   h,
		TileSize: tile,
		Bands:    raster.Sentinel2Bands(),
		Locations: []Location{
			{Name: "A", Content: River},
			{Name: "B", Content: Forest},
			{Name: "C", Content: Mountain},
			{Name: "D", Content: Snowfield, SnowProne: true},
			{Name: "E", Content: City},
			{Name: "F", Content: Agriculture},
			{Name: "G", Content: Forest},
			{Name: "H", Content: Snowfield, SnowProne: true},
			{Name: "I", Content: Agriculture},
			{Name: "J", Content: City},
			{Name: "K", Content: Coastal},
		},
		Clouds:            DefaultClouds(),
		Changes:           DefaultChanges(),
		IllumGainJitter:   0.10,
		IllumOffsetJitter: 0.03,
		SensorNoise:       0.004,
		AtmosVariability:  0.03,
		MicroTexture:      0.12,
	}
}

// LargeConstellation models the paper's Planet dataset (Table 2): a single
// coastal US location observed by many Doves satellites in 4 bands. Its
// terrain changes faster than the rich-content dataset (the paper measured
// ~20% of tiles changed within 5 days on Planet data, §1).
func LargeConstellation(size Size) Config {
	w, h, tile := size.dims()
	cfg := Config{
		Seed:     20240411,
		Width:    w,
		Height:   h,
		TileSize: tile,
		Bands:    raster.PlanetBands(),
		Locations: []Location{
			{Name: "Coastal-US", Content: Coastal},
		},
		Clouds:            DefaultClouds(),
		Changes:           DefaultChanges(),
		IllumGainJitter:   0.10,
		IllumOffsetJitter: 0.03,
		SensorNoise:       0.004,
		AtmosVariability:  0.03,
		MicroTexture:      0.12,
	}
	cfg.Changes.TileRatePerDay = 0.03
	return cfg
}

// LargeConstellationSampled is the large-constellation dataset as the paper
// actually evaluated it: Planet images were sampled with cloud coverage
// below 5% (Table 2), so captures are overwhelmingly clear. Use
// LargeConstellation (natural clouds) for reference-age availability
// experiments (Fig 5) and this preset for compression experiments
// (Fig 11b, Fig 19).
func LargeConstellationSampled(size Size) Config {
	cfg := LargeConstellation(size)
	cfg.Clouds = CloudRegime{ClearProb: 0.9, ClearMax: 0.04, CloudyMin: 0.08, CloudyExp: 1}
	return cfg
}
