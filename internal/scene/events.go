package scene

import (
	"math"

	"earthplus/internal/raster"
)

// event is one permanent terrestrial change: a patch of ground whose
// reflectance shifts on a given day (construction, harvest, burn scar,
// flood deposit, ...). Events accumulate over the simulation — the ground
// never reverts, matching the paper's model of slow, persistent change.
type event struct {
	day    int
	cx, cy float64
	radius float64
	amp    float32 // signed peak amplitude
	class  eventClass
	shape  int64 // offset into the noise field for the patch texture
}

// maxEventsPerDay caps the per-day event draw (keeps parameter streams
// collision-free; the cap is far above any calibrated rate).
const maxEventsPerDay = 32

// ensureEvents extends st.events so all days < day+1 have been generated.
func (s *Scene) ensureEvents(loc int, st *locState, day int) {
	for d := st.eventsTo; d <= day; d++ {
		n := s.poisson(s.expectedEventsPerDay(), s.src.Uniform(s.stream(loc, purEventCount), int64(d)))
		if n > maxEventsPerDay {
			n = maxEventsPerDay
		}
		for e := 0; e < n; e++ {
			k := int64(d)*8*maxEventsPerDay + int64(e)*8
			u := func(j int64) float64 { return s.src.Uniform(s.stream(loc, purEventParam), k+j) }
			ev := event{
				day:    d,
				cx:     u(0) * float64(s.cfg.Width),
				cy:     u(1) * float64(s.cfg.Height),
				radius: (0.5 + u(2)) * float64(s.cfg.TileSize),
				amp:    float32(s.cfg.Changes.EventAmp) * float32(0.6+0.8*u(3)),
				shape:  int64(u(5) * (1 << 20)),
			}
			if u(4) < 0.5 {
				ev.amp = -ev.amp
			}
			if u(6) < 0.5 {
				ev.class = eventVegetation
			}
			st.events = append(st.events, ev)
		}
	}
	if day >= st.eventsTo {
		st.eventsTo = day + 1
	}
}

// meanTilesPerEvent is the average tile footprint of one event (radius
// 0.5-1.5 tiles gives an expected disc area of about three tiles).
const meanTilesPerEvent = 3.0

// expectedEventsPerDay converts the configured per-tile change rate into a
// per-day event intensity for the whole frame, accounting for each event
// touching several tiles.
func (s *Scene) expectedEventsPerDay() float64 {
	return s.cfg.Changes.TileRatePerDay * float64(s.grid.NumTiles()) / meanTilesPerEvent
}

// poisson inverts a uniform draw into a Poisson count with mean lambda.
func (s *Scene) poisson(lambda, u float64) int {
	if lambda <= 0 {
		return 0
	}
	p := math.Exp(-lambda)
	f := p
	k := 0
	for u > f && k < 10*maxEventsPerDay {
		k++
		p *= lambda / float64(k)
		f += p
	}
	return k
}

// EventInfo publicly describes one terrestrial change event so workloads
// outside the scene (the constellation time-to-usable-image tracker) can
// follow what happened where without re-deriving the generator's streams.
type EventInfo struct {
	// Loc and Day place the event: it stamps the ground from Day onwards.
	Loc, Day int
	// CX, CY and Radius are the event disc in pixel coordinates.
	CX, CY, Radius float64
	// Vegetation marks vegetation-class events (burns, harvests); false is
	// the built/soil class.
	Vegetation bool
}

// EventsIn returns the change events of loc with onset day in
// [fromDay, toDay), in generation (day, draw) order. It extends the
// location's event stream as needed, so the same events are returned no
// matter which captures have been generated yet.
func (s *Scene) EventsIn(loc, fromDay, toDay int) []EventInfo {
	if toDay <= fromDay {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.loc(loc)
	s.ensureEvents(loc, st, toDay-1)
	var out []EventInfo
	for _, e := range st.events {
		if e.day < fromDay || e.day >= toDay {
			continue
		}
		out = append(out, EventInfo{
			Loc: loc, Day: e.day,
			CX: e.cx, CY: e.cy, Radius: e.radius,
			Vegetation: e.class == eventVegetation,
		})
	}
	return out
}

// applyEvent stamps the event's patch onto every band of the canvas.
func (s *Scene) applyEvent(im *raster.Image, e event) {
	x0 := int(e.cx - e.radius)
	x1 := int(e.cx + e.radius + 1)
	y0 := int(e.cy - e.radius)
	y1 := int(e.cy + e.radius + 1)
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.Width {
		x1 = im.Width
	}
	if y1 > im.Height {
		y1 = im.Height
	}
	if x0 >= x1 || y0 >= y1 {
		return
	}
	invR := 1 / e.radius
	// Pre-compute per-band gains once.
	gains := make([]float32, len(s.cfg.Bands))
	for b, info := range s.cfg.Bands {
		gains[b] = e.amp * s.profiles[b].changeGain * classGain(e.class, info.Kind)
	}
	for y := y0; y < y1; y++ {
		dy := (float64(y) - e.cy) * invR
		for x := x0; x < x1; x++ {
			dx := (float64(x) - e.cx) * invR
			d2 := dx*dx + dy*dy
			if d2 >= 1 {
				continue
			}
			fall := smooth01(float32(1 - math.Sqrt(d2)))
			// Patch texture from the shared noise field, offset by the
			// event's shape seed so each event looks different.
			tex := float32(0.5 + 0.5*s.src.At(float64(x)*0.11+float64(e.shape), float64(y)*0.11))
			delta := fall * tex
			i := y*im.Width + x
			for b := range gains {
				im.Pix[b][i] += gains[b] * delta
			}
		}
	}
}
