package scene

import "earthplus/internal/raster"

// bandProfile controls how one spectral band renders terrain, change
// events, seasonality, clouds and snow. Profiles are derived from the
// band's kind, realising the paper's observation that "the amount of
// changes of different bands on cloud-free areas are different" (§5):
// vegetation bands change most (chlorophyll is temperature sensitive),
// atmosphere-observing bands barely change over cloud-free ground.
type bandProfile struct {
	// base is the band's flat background reflectance.
	base float32
	// terrainWeight scales how strongly the elevation plane shows.
	terrainWeight float32
	// vegWeight scales how strongly the vegetation plane shows.
	vegWeight float32
	// waterDark is how much open water darkens the band.
	waterDark float32
	// changeGain scales terrestrial change events.
	changeGain float32
	// seasonalGain scales the annual drift component.
	seasonalGain float32
	// cloudValue is the value clouds pull pixels towards (bright in
	// visible bands, cold/dark in the infrared, §5).
	cloudValue float32
	// snowValue is the reflectance of snow cover in this band.
	snowValue float32
	// snowShows is whether snow cover displaces the band's signal.
	snowShows bool
	// atmosWeight scales the day-to-day atmospheric variability this
	// band observes at capture time. Air-observing bands (water vapor,
	// cirrus) see the atmosphere itself, which changes between any two
	// captures — the reason the paper's Fig 14 finds the least savings
	// on those bands.
	atmosWeight float32
}

// profileFor derives the rendering profile from band metadata.
func profileFor(b raster.BandInfo) bandProfile {
	switch b.Kind {
	case raster.KindVegetation:
		return bandProfile{
			base: 0.28, terrainWeight: 0.20, vegWeight: 0.45, waterDark: 0.30,
			changeGain: 1.3, seasonalGain: 1.5, cloudValue: 0.85,
			snowValue: 0.62, snowShows: true, atmosWeight: 0.15,
		}
	case raster.KindAtmosphere:
		return bandProfile{
			base: 0.40, terrainWeight: 0.06, vegWeight: 0.04, waterDark: 0.05,
			changeGain: 0.12, seasonalGain: 0.25, cloudValue: 0.95,
			snowValue: 0.45, snowShows: false, atmosWeight: 1.0,
		}
	case raster.KindInfrared:
		return bandProfile{
			// Warm ground: the cheap cloud detector's temperature split
			// relies on clouds being much colder than any surface.
			base: 0.58, terrainWeight: 0.22, vegWeight: 0.12, waterDark: 0.25,
			changeGain: 0.8, seasonalGain: 0.8, cloudValue: 0.05,
			snowValue: 0.42, snowShows: true, atmosWeight: 0.10,
		}
	default: // KindGround
		return bandProfile{
			base: 0.25, terrainWeight: 0.40, vegWeight: 0.15, waterDark: 0.20,
			changeGain: 1.0, seasonalGain: 0.6, cloudValue: 0.92,
			snowValue: 0.85, snowShows: true, atmosWeight: 0.10,
		}
	}
}

// eventClass shapes how a change event hits different band kinds.
type eventClass uint8

const (
	// eventStructural models construction, flooding, roads: strongest in
	// ground/IR bands.
	eventStructural eventClass = iota
	// eventVegetation models harvests, growth, wildfire scars: strongest
	// in the red-edge/NIR bands.
	eventVegetation
)

// classGain returns the event-class multiplier for a band kind.
func classGain(c eventClass, k raster.BandKind) float32 {
	switch c {
	case eventVegetation:
		switch k {
		case raster.KindVegetation:
			return 1.2
		case raster.KindGround:
			return 0.35
		case raster.KindInfrared:
			return 0.5
		default:
			return 0.08
		}
	default: // structural
		switch k {
		case raster.KindGround:
			return 1.0
		case raster.KindVegetation:
			return 0.6
		case raster.KindInfrared:
			return 0.8
		default:
			return 0.08
		}
	}
}
