package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPlane(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	p := make([]float32, n)
	for i := range p {
		p[i] = rng.Float32()
	}
	return p
}

func TestMirror(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 5, 0}, {4, 5, 4}, {-1, 5, 1}, {-2, 5, 2},
		{5, 5, 3}, {6, 5, 2}, {8, 5, 0}, {9, 5, 1},
		{0, 1, 0}, {7, 1, 0},
	}
	for _, c := range cases {
		if got := mirror(c.i, c.n); got != c.want {
			t.Errorf("mirror(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func TestForward97PerfectReconstruction(t *testing.T) {
	for _, dim := range []struct{ w, h, levels int }{
		{64, 64, 3}, {64, 32, 2}, {33, 17, 2}, {1, 16, 2}, {16, 1, 2}, {5, 5, 1},
	} {
		orig := randPlane(int64(dim.w*1000+dim.h), dim.w*dim.h)
		plane := append([]float32(nil), orig...)
		Forward97(plane, dim.w, dim.h, dim.levels)
		Inverse97(plane, dim.w, dim.h, dim.levels)
		for i := range orig {
			if d := math.Abs(float64(plane[i] - orig[i])); d > 2e-4 {
				t.Fatalf("%dx%d L%d: pixel %d off by %v", dim.w, dim.h, dim.levels, i, d)
			}
		}
	}
}

func TestForward53ExactReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(40) + 1
		h := rng.Intn(40) + 1
		levels := rng.Intn(3)
		orig := make([]int32, w*h)
		for i := range orig {
			orig[i] = int32(rng.Intn(4096) - 2048)
		}
		plane := append([]int32(nil), orig...)
		Forward53(plane, w, h, levels)
		Inverse53(plane, w, h, levels)
		for i := range orig {
			if plane[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForward97ConstantSignalEnergyInLL(t *testing.T) {
	const w, h, levels = 32, 32, 3
	plane := make([]float32, w*h)
	for i := range plane {
		plane[i] = 0.5
	}
	Forward97(plane, w, h, levels)
	llW, llH := levelDims(w, h, levels)
	var detail float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < llW && y < llH {
				continue
			}
			detail += math.Abs(float64(plane[y*w+x]))
		}
	}
	if detail > 1e-3 {
		t.Fatalf("constant image leaked %v into detail subbands", detail)
	}
	// The lifting DC gain of K cancels against the 1/K lowpass scale, so
	// the overall DC gain is 1 per level: LL stays at the signal mean.
	var got float64
	for y := 0; y < llH; y++ {
		for x := 0; x < llW; x++ {
			got += float64(plane[y*w+x])
		}
	}
	got /= float64(llW * llH)
	if math.Abs(got-0.5) > 0.005 {
		t.Fatalf("LL mean = %v, want ~0.5", got)
	}
}

func TestSubbandsPartitionPlane(t *testing.T) {
	f := func(wRaw, hRaw, lRaw uint8) bool {
		w := int(wRaw%60) + 4
		h := int(hRaw%60) + 4
		levels := int(lRaw % 4)
		covered := make([]int, w*h)
		for _, sb := range Subbands(w, h, levels) {
			for y := sb.Y0; y < sb.Y1; y++ {
				for x := sb.X0; x < sb.X1; x++ {
					covered[y*w+x]++
				}
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSubbandsOrderCoarseToFine(t *testing.T) {
	sbs := Subbands(64, 64, 3)
	if sbs[0].Kind != LL || sbs[0].Level != 3 {
		t.Fatalf("first subband = %v, want LL3", sbs[0])
	}
	if len(sbs) != 1+3*3 {
		t.Fatalf("got %d subbands, want 10", len(sbs))
	}
	for i := 1; i < len(sbs)-1; i++ {
		if sbs[i].Level < sbs[i+1].Level {
			t.Fatalf("subband order not coarse-to-fine: %v before %v", sbs[i], sbs[i+1])
		}
	}
}

func TestSubbandsZeroLevels(t *testing.T) {
	sbs := Subbands(8, 8, 0)
	if len(sbs) != 1 || sbs[0].Size() != 64 {
		t.Fatalf("Subbands(8,8,0) = %v", sbs)
	}
}

func TestSynthesisNormDeeperLevelsLarger(t *testing.T) {
	const w, h, levels = 64, 64, 3
	var normLL, normHH1 float64
	for _, sb := range Subbands(w, h, levels) {
		if sb.Kind == LL {
			normLL = SynthesisNorm(w, h, levels, sb)
		}
		if sb.Kind == HH && sb.Level == 1 {
			normHH1 = SynthesisNorm(w, h, levels, sb)
		}
	}
	if normLL <= normHH1 {
		t.Fatalf("LL norm %v should exceed HH1 norm %v", normLL, normHH1)
	}
	if normLL <= 0 || normHH1 <= 0 {
		t.Fatalf("norms must be positive: %v %v", normLL, normHH1)
	}
}

func TestGeometryChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched plane length")
		}
	}()
	Forward97(make([]float32, 10), 4, 4, 1)
}

func BenchmarkForward97_256(b *testing.B) {
	plane := randPlane(1, 256*256)
	work := make([]float32, len(plane))
	b.SetBytes(256 * 256 * 4)
	for i := 0; i < b.N; i++ {
		copy(work, plane)
		Forward97(work, 256, 256, 4)
	}
}

func BenchmarkInverse97_256(b *testing.B) {
	plane := randPlane(1, 256*256)
	Forward97(plane, 256, 256, 4)
	work := make([]float32, len(plane))
	b.SetBytes(256 * 256 * 4)
	for i := 0; i < b.N; i++ {
		copy(work, plane)
		Inverse97(work, 256, 256, 4)
	}
}
