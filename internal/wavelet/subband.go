package wavelet

import (
	"fmt"
	"math"
)

// Kind names the four subband types of a 2-D dyadic decomposition.
type Kind uint8

const (
	// LL is the low-low (approximation) subband of the deepest level.
	LL Kind = iota
	// HL holds horizontal detail.
	HL
	// LH holds vertical detail.
	LH
	// HH holds diagonal detail.
	HH
)

// String returns the subband kind's conventional name.
func (k Kind) String() string {
	switch k {
	case LL:
		return "LL"
	case HL:
		return "HL"
	case LH:
		return "LH"
	case HH:
		return "HH"
	}
	return "??"
}

// Subband describes one rectangular subband inside the pyramid layout
// produced by Forward97/Forward53.
type Subband struct {
	Kind  Kind
	Level int // 1 = finest detail level, Levels = coarsest
	// Pixel rectangle [X0,X1) x [Y0,Y1) within the transformed plane.
	X0, Y0, X1, Y1 int
}

// Width returns the subband's width in coefficients.
func (s Subband) Width() int { return s.X1 - s.X0 }

// Height returns the subband's height in coefficients.
func (s Subband) Height() int { return s.Y1 - s.Y0 }

// Size returns the number of coefficients in the subband.
func (s Subband) Size() int { return s.Width() * s.Height() }

// String renders the subband for debugging.
func (s Subband) String() string {
	return fmt.Sprintf("%s%d[%d,%d)x[%d,%d)", s.Kind, s.Level, s.X0, s.X1, s.Y0, s.Y1)
}

// Subbands enumerates the subbands of a w x h plane decomposed `levels`
// times, ordered coarse to fine (LL_L, then HL/LH/HH from level L down to
// 1). The bit-plane codec encodes subbands in this order so truncated
// streams keep the perceptually-dominant coefficients.
func Subbands(w, h, levels int) []Subband {
	if levels == 0 {
		return []Subband{{Kind: LL, Level: 0, X1: w, Y1: h}}
	}
	llW, llH := levelDims(w, h, levels)
	out := []Subband{{Kind: LL, Level: levels, X1: llW, Y1: llH}}
	for l := levels; l >= 1; l-- {
		pw, ph := levelDims(w, h, l-1) // region transformed at this level
		cw, ch := (pw+1)/2, (ph+1)/2   // its LL quadrant
		if cw < pw {
			out = append(out, Subband{Kind: HL, Level: l, X0: cw, Y0: 0, X1: pw, Y1: ch})
		}
		if ch < ph {
			out = append(out, Subband{Kind: LH, Level: l, X0: 0, Y0: ch, X1: cw, Y1: ph})
		}
		if cw < pw && ch < ph {
			out = append(out, Subband{Kind: HH, Level: l, X0: cw, Y0: ch, X1: pw, Y1: ph})
		}
	}
	return out
}

// SynthesisNorm measures the L2 norm of the synthesis basis function of
// subband sb numerically: it places a unit impulse at the subband's centre
// of an otherwise-zero w x h plane, inverse-transforms, and returns the
// resulting L2 norm. The codec divides quantiser steps by this to equalise
// the image-domain error contributed by each subband.
func SynthesisNorm(w, h, levels int, sb Subband) float64 {
	plane := make([]float32, w*h)
	cx := sb.X0 + sb.Width()/2
	cy := sb.Y0 + sb.Height()/2
	plane[cy*w+cx] = 1
	Inverse97(plane, w, h, levels)
	var sum float64
	for _, v := range plane {
		sum += float64(v) * float64(v)
	}
	if sum <= 0 {
		return 1
	}
	return math.Sqrt(sum)
}
