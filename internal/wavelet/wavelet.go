// Package wavelet implements the two discrete wavelet transforms JPEG-2000
// uses — the lossy CDF 9/7 (float) and the lossless CDF 5/3 (integer) — via
// lifting with whole-sample symmetric extension, for arbitrary (including
// odd) lengths and multiple decomposition levels. The codec built on top
// mirrors the paper's use of a JPEG-2000 encoder (Kakadu, §5).
package wavelet

// CDF 9/7 lifting constants (Daubechies & Sweldens factorisation).
const (
	alpha = -1.586134342059924
	beta  = -0.052980118572961
	gamma = 0.882911075530934
	delta = 0.443506852043971
	kNorm = 1.230174104914001
)

// mirror reflects index i into [0, n) with whole-sample symmetry
// (… 2 1 0 1 2 … n-2 n-1 n-2 …).
func mirror(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	i %= period
	if i < 0 {
		i += period
	}
	if i >= n {
		i = period - i
	}
	return i
}

// fwd97Line transforms line (length n) in place into low | high halves:
// ceil(n/2) lowpass coefficients followed by floor(n/2) highpass ones.
// scratch must have length >= n.
func fwd97Line(line, scratch []float32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	copy(x, line[:n])
	at := func(i int) float64 { return float64(x[mirror(i, n)]) }
	// Lifting operates on the interleaved signal; four passes.
	for i := 1; i < n; i += 2 {
		x[i] += float32(alpha * (at(i-1) + at(i+1)))
	}
	for i := 0; i < n; i += 2 {
		x[i] += float32(beta * (at(i-1) + at(i+1)))
	}
	for i := 1; i < n; i += 2 {
		x[i] += float32(gamma * (at(i-1) + at(i+1)))
	}
	for i := 0; i < n; i += 2 {
		x[i] += float32(delta * (at(i-1) + at(i+1)))
	}
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		line[i/2] = x[i] * float32(1/kNorm)
	}
	for i := 1; i < n; i += 2 {
		line[nLow+i/2] = x[i] * float32(kNorm)
	}
}

// inv97Line inverts fwd97Line.
func inv97Line(line, scratch []float32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		x[i] = line[i/2] * float32(kNorm)
	}
	for i := 1; i < n; i += 2 {
		x[i] = line[nLow+i/2] * float32(1/kNorm)
	}
	at := func(i int) float64 { return float64(x[mirror(i, n)]) }
	for i := 0; i < n; i += 2 {
		x[i] -= float32(delta * (at(i-1) + at(i+1)))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= float32(gamma * (at(i-1) + at(i+1)))
	}
	for i := 0; i < n; i += 2 {
		x[i] -= float32(beta * (at(i-1) + at(i+1)))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= float32(alpha * (at(i-1) + at(i+1)))
	}
	copy(line[:n], x)
}

// levelDims returns the LL region size after l levels on a w x h plane.
func levelDims(w, h, l int) (int, int) {
	for i := 0; i < l; i++ {
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return w, h
}

// Forward97 applies `levels` 2-D CDF 9/7 decompositions in place. The plane
// is row-major w x h; after the call it holds the usual pyramid layout
// (LL of level L in the top-left corner).
func Forward97(plane []float32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	scratch := make([]float32, maxInt(w, h))
	col := make([]float32, h)
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		for y := 0; y < ch; y++ {
			fwd97Line(plane[y*w:y*w+cw], scratch, cw)
		}
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			fwd97Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
}

// Inverse97 undoes Forward97.
func Inverse97(plane []float32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	scratch := make([]float32, maxInt(w, h))
	col := make([]float32, h)
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(w, h, l)
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			inv97Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		for y := 0; y < ch; y++ {
			inv97Line(plane[y*w:y*w+cw], scratch, cw)
		}
	}
}

// fwd53Line is the integer 5/3 lifting step (exact, reversible).
func fwd53Line(line, scratch []int32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	copy(x, line[:n])
	at := func(i int) int32 { return x[mirror(i, n)] }
	for i := 1; i < n; i += 2 {
		x[i] -= (at(i-1) + at(i+1)) >> 1
	}
	for i := 0; i < n; i += 2 {
		x[i] += (at(i-1) + at(i+1) + 2) >> 2
	}
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		line[i/2] = x[i]
	}
	for i := 1; i < n; i += 2 {
		line[nLow+i/2] = x[i]
	}
}

func inv53Line(line, scratch []int32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	nLow := (n + 1) / 2
	for i := 0; i < n; i += 2 {
		x[i] = line[i/2]
	}
	for i := 1; i < n; i += 2 {
		x[i] = line[nLow+i/2]
	}
	at := func(i int) int32 { return x[mirror(i, n)] }
	for i := 0; i < n; i += 2 {
		x[i] -= (at(i-1) + at(i+1) + 2) >> 2
	}
	for i := 1; i < n; i += 2 {
		x[i] += (at(i-1) + at(i+1)) >> 1
	}
	copy(line[:n], x)
}

// Forward53 applies `levels` 2-D integer 5/3 decompositions in place.
// It is exactly reversible by Inverse53.
func Forward53(plane []int32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	scratch := make([]int32, maxInt(w, h))
	col := make([]int32, h)
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		for y := 0; y < ch; y++ {
			fwd53Line(plane[y*w:y*w+cw], scratch, cw)
		}
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			fwd53Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
}

// Inverse53 undoes Forward53 exactly.
func Inverse53(plane []int32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	scratch := make([]int32, maxInt(w, h))
	col := make([]int32, h)
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(w, h, l)
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			inv53Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		for y := 0; y < ch; y++ {
			inv53Line(plane[y*w:y*w+cw], scratch, cw)
		}
	}
}

func checkGeometry(n, w, h, levels int) {
	if w <= 0 || h <= 0 || n != w*h {
		panic("wavelet: plane length does not match dimensions")
	}
	if levels < 0 {
		panic("wavelet: negative level count")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
