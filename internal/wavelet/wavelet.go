// Package wavelet implements the two discrete wavelet transforms JPEG-2000
// uses — the lossy CDF 9/7 (float) and the lossless CDF 5/3 (integer) — via
// lifting with whole-sample symmetric extension, for arbitrary (including
// odd) lengths and multiple decomposition levels. The codec built on top
// mirrors the paper's use of a JPEG-2000 encoder (Kakadu, §5).
//
// The lifting passes are written boundary-first: the two mirrored edge
// samples are handled explicitly and the interior runs as a branch-free
// strided loop, so the per-sample cost is a couple of fused multiply-adds
// instead of an index-mirroring closure. Line/column scratch buffers come
// from sync.Pools, so steady-state transforms allocate nothing.
package wavelet

import "sync"

// CDF 9/7 lifting constants (Daubechies & Sweldens factorisation).
const (
	alpha = -1.586134342059924
	beta  = -0.052980118572961
	gamma = 0.882911075530934
	delta = 0.443506852043971
	kNorm = 1.230174104914001
)

// mirror reflects index i into [0, n) with whole-sample symmetry
// (… 2 1 0 1 2 … n-2 n-1 n-2 …).
func mirror(i, n int) int {
	if n == 1 {
		return 0
	}
	period := 2 * (n - 1)
	i %= period
	if i < 0 {
		i += period
	}
	if i >= n {
		i = period - i
	}
	return i
}

// f32Pool and i32Pool recycle the line/column scratch of the 2-D transforms.
var (
	f32Pool = sync.Pool{New: func() any { return new([]float32) }}
	i32Pool = sync.Pool{New: func() any { return new([]int32) }}
)

func getF32(n int) *[]float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putF32(p *[]float32) { f32Pool.Put(p) }

func getI32(n int) *[]int32 {
	p := i32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putI32(p *[]int32) { i32Pool.Put(p) }

// colBlock is how many columns the vertical transforms process per pass:
// one gather touches a contiguous run of samples per row (a cache line),
// and the lifting inner loops become fixed-width lane operations the
// compiler can keep in registers.
const colBlock = 8

// liftRowsOdd applies row[i] += c*(row[i-1]+row[i+1]) lane-wise to every odd
// row of the n x colBlock column block x, with whole-sample symmetric
// extension (n >= 2).
func liftRowsOdd(x []float32, n int, c float32) {
	for i := 1; i+1 < n; i += 2 {
		r := x[i*colBlock : i*colBlock+colBlock]
		a := x[(i-1)*colBlock : (i-1)*colBlock+colBlock]
		b := x[(i+1)*colBlock : (i+1)*colBlock+colBlock]
		for k := 0; k < colBlock; k++ {
			r[k] += c * (a[k] + b[k])
		}
	}
	if n%2 == 0 {
		r := x[(n-1)*colBlock : (n-1)*colBlock+colBlock]
		a := x[(n-2)*colBlock : (n-2)*colBlock+colBlock]
		for k := 0; k < colBlock; k++ {
			r[k] += 2 * c * a[k]
		}
	}
}

// liftRowsEven is liftRowsOdd for the even rows.
func liftRowsEven(x []float32, n int, c float32) {
	{
		r := x[0:colBlock]
		a := x[colBlock : 2*colBlock]
		for k := 0; k < colBlock; k++ {
			r[k] += 2 * c * a[k]
		}
	}
	for i := 2; i+1 < n; i += 2 {
		r := x[i*colBlock : i*colBlock+colBlock]
		a := x[(i-1)*colBlock : (i-1)*colBlock+colBlock]
		b := x[(i+1)*colBlock : (i+1)*colBlock+colBlock]
		for k := 0; k < colBlock; k++ {
			r[k] += c * (a[k] + b[k])
		}
	}
	if n%2 == 1 {
		r := x[(n-1)*colBlock : (n-1)*colBlock+colBlock]
		a := x[(n-2)*colBlock : (n-2)*colBlock+colBlock]
		for k := 0; k < colBlock; k++ {
			r[k] += 2 * c * a[k]
		}
	}
}

// fwd97Cols vertically transforms nc (<= colBlock) adjacent columns of the
// plane starting at x0, over n rows, using buf (>= n*colBlock) as the
// column block.
func fwd97Cols(plane []float32, w, x0, nc, n int, buf []float32) {
	if n == 1 {
		return
	}
	for y := 0; y < n; y++ {
		src := plane[y*w+x0 : y*w+x0+nc]
		dst := buf[y*colBlock:]
		for k, v := range src {
			dst[k] = v
		}
	}
	liftRowsOdd(buf, n, float32(alpha))
	liftRowsEven(buf, n, float32(beta))
	liftRowsOdd(buf, n, float32(gamma))
	liftRowsEven(buf, n, float32(delta))
	nLow := (n + 1) / 2
	const invK = float32(1 / kNorm)
	for i := 0; i < n-1; i += 2 {
		lo := plane[(i/2)*w+x0:]
		hi := plane[(nLow+i/2)*w+x0:]
		a := buf[i*colBlock:]
		b := buf[(i+1)*colBlock:]
		for k := 0; k < nc; k++ {
			lo[k] = a[k] * invK
			hi[k] = b[k] * float32(kNorm)
		}
	}
	if n%2 == 1 {
		lo := plane[((n-1)/2)*w+x0:]
		a := buf[(n-1)*colBlock:]
		for k := 0; k < nc; k++ {
			lo[k] = a[k] * invK
		}
	}
}

// inv97Cols inverts fwd97Cols.
func inv97Cols(plane []float32, w, x0, nc, n int, buf []float32) {
	if n == 1 {
		return
	}
	nLow := (n + 1) / 2
	const invK = float32(1 / kNorm)
	for i := 0; i < n-1; i += 2 {
		lo := plane[(i/2)*w+x0:]
		hi := plane[(nLow+i/2)*w+x0:]
		a := buf[i*colBlock:]
		b := buf[(i+1)*colBlock:]
		for k := 0; k < nc; k++ {
			a[k] = lo[k] * float32(kNorm)
			b[k] = hi[k] * invK
		}
	}
	if n%2 == 1 {
		lo := plane[((n-1)/2)*w+x0:]
		a := buf[(n-1)*colBlock:]
		for k := 0; k < nc; k++ {
			a[k] = lo[k] * float32(kNorm)
		}
	}
	liftRowsEven(buf, n, -float32(delta))
	liftRowsOdd(buf, n, -float32(gamma))
	liftRowsEven(buf, n, -float32(beta))
	liftRowsOdd(buf, n, -float32(alpha))
	for y := 0; y < n; y++ {
		copy(plane[y*w+x0:y*w+x0+nc], buf[y*colBlock:y*colBlock+nc])
	}
}

// liftOdd applies x[i] += c*(x[i-1]+x[i+1]) to every odd index of x[:n] with
// whole-sample symmetric extension (n >= 2).
func liftOdd(x []float32, n int, c float32) {
	for i := 1; i+1 < n; i += 2 {
		x[i] += c * (x[i-1] + x[i+1])
	}
	if n%2 == 0 {
		// Last odd index is n-1; its right neighbour mirrors to n-2.
		x[n-1] += 2 * c * x[n-2]
	}
}

// liftEven applies x[i] += c*(x[i-1]+x[i+1]) to every even index of x[:n]
// with whole-sample symmetric extension (n >= 2).
func liftEven(x []float32, n int, c float32) {
	x[0] += 2 * c * x[1] // left neighbour of 0 mirrors to 1
	for i := 2; i+1 < n; i += 2 {
		x[i] += c * (x[i-1] + x[i+1])
	}
	if n%2 == 1 {
		// Last even index is n-1; its right neighbour mirrors to n-2.
		x[n-1] += 2 * c * x[n-2]
	}
}

// fwd97Line transforms line (length n) in place into low | high halves:
// ceil(n/2) lowpass coefficients followed by floor(n/2) highpass ones.
// scratch must have length >= n.
func fwd97Line(line, scratch []float32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	copy(x, line[:n])
	liftOdd(x, n, float32(alpha))
	liftEven(x, n, float32(beta))
	liftOdd(x, n, float32(gamma))
	liftEven(x, n, float32(delta))
	nLow := (n + 1) / 2
	const invK = float32(1 / kNorm)
	for i := 0; i < n-1; i += 2 {
		line[i/2] = x[i] * invK
		line[nLow+i/2] = x[i+1] * float32(kNorm)
	}
	if n%2 == 1 {
		line[(n-1)/2] = x[n-1] * invK
	}
}

// inv97Line inverts fwd97Line.
func inv97Line(line, scratch []float32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	nLow := (n + 1) / 2
	const invK = float32(1 / kNorm)
	for i := 0; i < n-1; i += 2 {
		x[i] = line[i/2] * float32(kNorm)
		x[i+1] = line[nLow+i/2] * invK
	}
	if n%2 == 1 {
		x[n-1] = line[(n-1)/2] * float32(kNorm)
	}
	liftEven(x, n, -float32(delta))
	liftOdd(x, n, -float32(gamma))
	liftEven(x, n, -float32(beta))
	liftOdd(x, n, -float32(alpha))
	copy(line[:n], x)
}

// levelDims returns the LL region size after l levels on a w x h plane.
func levelDims(w, h, l int) (int, int) {
	for i := 0; i < l; i++ {
		w = (w + 1) / 2
		h = (h + 1) / 2
	}
	return w, h
}

// Forward97 applies `levels` 2-D CDF 9/7 decompositions in place. The plane
// is row-major w x h; after the call it holds the usual pyramid layout
// (LL of level L in the top-left corner).
func Forward97(plane []float32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	buf := getF32(maxInt(w, h) + h*colBlock)
	defer putF32(buf)
	scratch, colBuf := (*buf)[:maxInt(w, h)], (*buf)[maxInt(w, h):]
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		for y := 0; y < ch; y++ {
			fwd97Line(plane[y*w:y*w+cw], scratch, cw)
		}
		for x := 0; x < cw; x += colBlock {
			nc := cw - x
			if nc > colBlock {
				nc = colBlock
			}
			fwd97Cols(plane, w, x, nc, ch, colBuf)
		}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
}

// Inverse97 undoes Forward97.
func Inverse97(plane []float32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	buf := getF32(maxInt(w, h) + h*colBlock)
	defer putF32(buf)
	scratch, colBuf := (*buf)[:maxInt(w, h)], (*buf)[maxInt(w, h):]
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(w, h, l)
		for x := 0; x < cw; x += colBlock {
			nc := cw - x
			if nc > colBlock {
				nc = colBlock
			}
			inv97Cols(plane, w, x, nc, ch, colBuf)
		}
		for y := 0; y < ch; y++ {
			inv97Line(plane[y*w:y*w+cw], scratch, cw)
		}
	}
}

// liftOdd53 applies x[i] -= (x[i-1]+x[i+1])>>1 (predict) or its inverse to
// the odd indices (n >= 2); sign selects the direction.
func liftOdd53(x []int32, n int, inverse bool) {
	if inverse {
		for i := 1; i+1 < n; i += 2 {
			x[i] += (x[i-1] + x[i+1]) >> 1
		}
		if n%2 == 0 {
			x[n-1] += (2 * x[n-2]) >> 1
		}
		return
	}
	for i := 1; i+1 < n; i += 2 {
		x[i] -= (x[i-1] + x[i+1]) >> 1
	}
	if n%2 == 0 {
		x[n-1] -= (2 * x[n-2]) >> 1
	}
}

// liftEven53 applies x[i] += (x[i-1]+x[i+1]+2)>>2 (update) or its inverse to
// the even indices (n >= 2).
func liftEven53(x []int32, n int, inverse bool) {
	if inverse {
		x[0] -= (2*x[1] + 2) >> 2
		for i := 2; i+1 < n; i += 2 {
			x[i] -= (x[i-1] + x[i+1] + 2) >> 2
		}
		if n%2 == 1 {
			x[n-1] -= (2*x[n-2] + 2) >> 2
		}
		return
	}
	x[0] += (2*x[1] + 2) >> 2
	for i := 2; i+1 < n; i += 2 {
		x[i] += (x[i-1] + x[i+1] + 2) >> 2
	}
	if n%2 == 1 {
		x[n-1] += (2*x[n-2] + 2) >> 2
	}
}

// fwd53Line is the integer 5/3 lifting step (exact, reversible).
func fwd53Line(line, scratch []int32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	copy(x, line[:n])
	liftOdd53(x, n, false)
	liftEven53(x, n, false)
	nLow := (n + 1) / 2
	for i := 0; i < n-1; i += 2 {
		line[i/2] = x[i]
		line[nLow+i/2] = x[i+1]
	}
	if n%2 == 1 {
		line[(n-1)/2] = x[n-1]
	}
}

func inv53Line(line, scratch []int32, n int) {
	if n == 1 {
		return
	}
	x := scratch[:n]
	nLow := (n + 1) / 2
	for i := 0; i < n-1; i += 2 {
		x[i] = line[i/2]
		x[i+1] = line[nLow+i/2]
	}
	if n%2 == 1 {
		x[n-1] = line[(n-1)/2]
	}
	liftEven53(x, n, true)
	liftOdd53(x, n, true)
	copy(line[:n], x)
}

// Forward53 applies `levels` 2-D integer 5/3 decompositions in place.
// It is exactly reversible by Inverse53.
func Forward53(plane []int32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	buf := getI32(maxInt(w, h) + h)
	defer putI32(buf)
	scratch, col := (*buf)[:maxInt(w, h)], (*buf)[maxInt(w, h):]
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		for y := 0; y < ch; y++ {
			fwd53Line(plane[y*w:y*w+cw], scratch, cw)
		}
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			fwd53Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
}

// Inverse53 undoes Forward53 exactly.
func Inverse53(plane []int32, w, h, levels int) {
	checkGeometry(len(plane), w, h, levels)
	buf := getI32(maxInt(w, h) + h)
	defer putI32(buf)
	scratch, col := (*buf)[:maxInt(w, h)], (*buf)[maxInt(w, h):]
	for l := levels - 1; l >= 0; l-- {
		cw, ch := levelDims(w, h, l)
		for x := 0; x < cw; x++ {
			for y := 0; y < ch; y++ {
				col[y] = plane[y*w+x]
			}
			inv53Line(col, scratch, ch)
			for y := 0; y < ch; y++ {
				plane[y*w+x] = col[y]
			}
		}
		for y := 0; y < ch; y++ {
			inv53Line(plane[y*w:y*w+cw], scratch, cw)
		}
	}
}

func checkGeometry(n, w, h, levels int) {
	if w <= 0 || h <= 0 || n != w*h {
		panic("wavelet: plane length does not match dimensions")
	}
	if levels < 0 {
		panic("wavelet: negative level count")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
