package codec

import (
	"fmt"
	"testing"

	"earthplus/internal/raster"
)

// The codec is the hot path of every experiment in the reproduction, so its
// encode/decode throughput and steady-state allocation behaviour are tracked
// as first-class benchmarks (cmd/earthplus-bench -only codecbench snapshots
// them into BENCH_codec.json). Budgeted variants run at the γ=0.5 bpp
// operating point of the paper's sweeps; unbudgeted ones measure the full
// embedded encode.

func benchEncodePlane(b *testing.B, size int) {
	plane := testPlane(11, size, size)
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(0.5, size, size)
	// Warm the geometry cache so the loop measures steady state.
	if _, err := EncodePlane(plane, size, size, opt); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size) * int64(size) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodePlane(plane, size, size, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodePlane(b *testing.B, size int) {
	plane := testPlane(11, size, size)
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(0.5, size, size)
	data, err := EncodePlane(plane, size, size, opt)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, _, err := DecodePlane(data, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size) * int64(size) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodePlane(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePlane64(b *testing.B)  { benchEncodePlane(b, 64) }
func BenchmarkEncodePlane256(b *testing.B) { benchEncodePlane(b, 256) }
func BenchmarkEncodePlane512(b *testing.B) { benchEncodePlane(b, 512) }

func BenchmarkDecodePlane64(b *testing.B)  { benchDecodePlane(b, 64) }
func BenchmarkDecodePlane256(b *testing.B) { benchDecodePlane(b, 256) }
func BenchmarkDecodePlane512(b *testing.B) { benchDecodePlane(b, 512) }

// BenchmarkEncodeImageParallel measures the multi-band worker pool at
// several widths; /1 is the serial reference.
func BenchmarkEncodeImageParallel(b *testing.B) {
	const size = 256
	im := raster.New(size, size, raster.PlanetBands())
	for bd := 0; bd < im.NumBands(); bd++ {
		copy(im.Plane(bd), testPlane(uint64(30+bd), size, size))
	}
	im.Clamp()
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(0.5, size, size) * im.NumBands()
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%d", par), func(b *testing.B) {
			o := opt
			o.Parallelism = par
			b.SetBytes(int64(size) * int64(size) * 4 * int64(im.NumBands()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EncodeImage(im, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodePlaneLossless256(b *testing.B) {
	plane := testPlane(13, 256, 256)
	b.SetBytes(256 * 256 * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodePlaneLossless(plane, 256, 256, 5); err != nil {
			b.Fatal(err)
		}
	}
}
