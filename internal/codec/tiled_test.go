package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"earthplus/internal/raster"
)

// tiledTestPlane builds a deterministic smooth-plus-detail test plane.
func tiledTestPlane(seed int64, w, h int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	plane := make([]float32, w*h)
	cx, cy := float64(w)/2, float64(h)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			v := 0.5 + 0.3*math.Sin(d/9) + 0.1*math.Sin(float64(x)/5)*math.Cos(float64(y)/7)
			v += 0.02 * (rng.Float64() - 0.5)
			plane[y*w+x] = float32(v)
		}
	}
	return plane
}

func TestTiledRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	opt.Tiled = true
	for _, c := range []struct{ w, h int }{
		{64, 64}, {256, 256}, {128, 192}, {100, 70}, {65, 129}, {16, 16}, {1, 1}, {300, 5},
	} {
		plane := tiledTestPlane(1, c.w, c.h)
		enc, err := EncodePlane(plane, c.w, c.h, opt)
		if err != nil {
			t.Fatalf("%dx%d: encode: %v", c.w, c.h, err)
		}
		if !IsTiled(enc) {
			t.Fatalf("%dx%d: stream is not tiled", c.w, c.h)
		}
		dec, w, h, err := DecodePlane(enc, 0)
		if err != nil {
			t.Fatalf("%dx%d: decode: %v", c.w, c.h, err)
		}
		if w != c.w || h != c.h {
			t.Fatalf("%dx%d: decoded as %dx%d", c.w, c.h, w, h)
		}
		if psnr := planePSNR(plane, dec); psnr < 40 {
			t.Fatalf("%dx%d: unbudgeted tiled round trip PSNR %.1f dB", c.w, c.h, psnr)
		}
	}
}

func TestTiledParseInfo(t *testing.T) {
	opt := DefaultOptions()
	opt.Tiled = true
	plane := tiledTestPlane(2, 256, 192)
	enc, err := EncodePlane(plane, 256, 192, opt)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Tiled || info.W != 256 || info.H != 192 || info.TileSize != raster.DefaultTileSize || info.NTiles != 12 {
		t.Fatalf("Parse = %+v", info)
	}
}

func TestTiledBudget(t *testing.T) {
	opt := DefaultOptions()
	opt.Tiled = true
	plane := tiledTestPlane(3, 256, 256)
	full, err := EncodePlane(plane, 256, 256, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, bpp := range []float64{0.25, 0.5, 1.0} {
		opt.BudgetBytes = BudgetForBPP(bpp, 256, 256)
		enc, err := EncodePlane(plane, 256, 256, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > opt.BudgetBytes {
			t.Fatalf("bpp %.2f: %d bytes exceeds budget %d", bpp, len(enc), opt.BudgetBytes)
		}
		dec, _, _, err := DecodePlane(enc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if psnr := planePSNR(plane, dec); psnr < 20 {
			t.Fatalf("bpp %.2f: PSNR %.1f dB too low", bpp, psnr)
		}
	}
	if len(full) == 0 {
		t.Fatal("unbudgeted stream empty")
	}
	// A budget below the header+index cost must be rejected, like the
	// monolithic profile's BudgetTooSmall contract.
	opt.BudgetBytes = 8
	if _, err := EncodePlane(plane, 256, 256, opt); err == nil {
		t.Fatal("tiny budget accepted")
	}
}

func TestTiledEncodeDeterministicAcrossWorkers(t *testing.T) {
	plane := tiledTestPlane(4, 320, 256)
	var want []byte
	for _, par := range []int{1, 2, 4, 8} {
		opt := DefaultOptions()
		opt.Tiled = true
		opt.Parallelism = par
		opt.BudgetBytes = BudgetForBPP(0.7, 320, 256)
		enc, err := EncodePlane(plane, 320, 256, opt)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = enc
		} else if !bytes.Equal(want, enc) {
			t.Fatalf("parallelism %d: stream differs from serial", par)
		}
	}
}

// TestDecodeRegionMatchesCrop is the region-decode property test: for any
// rectangle, DecodeRegion equals the crop of the full decode — on both
// profiles.
func TestDecodeRegionMatchesCrop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tiled := range []bool{true, false} {
		opt := DefaultOptions()
		opt.Tiled = tiled
		const w, h = 256, 192
		plane := tiledTestPlane(5, w, h)
		opt.BudgetBytes = BudgetForBPP(1.0, w, h)
		enc, err := EncodePlane(plane, w, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		full, _, _, err := DecodePlane(enc, 0)
		if err != nil {
			t.Fatal(err)
		}
		rects := [][4]int{
			{0, 0, w, h}, {0, 0, 64, 64}, {64, 64, 128, 128}, {63, 63, 2, 2},
			{-10, -10, 74, 74}, {200, 150, 100, 100}, {0, 0, 1, 1}, {17, 33, 95, 41},
		}
		for i := 0; i < 12; i++ {
			rects = append(rects, [4]int{rng.Intn(w), rng.Intn(h), 1 + rng.Intn(w), 1 + rng.Intn(h)})
		}
		for _, r := range rects {
			got, cw, ch, err := DecodeRegion(enc, r[0], r[1], r[2], r[3])
			if err != nil {
				t.Fatalf("tiled=%v region %v: %v", tiled, r, err)
			}
			cx0, cy0 := max(r[0], 0), max(r[1], 0)
			if cw != min(r[0]+r[2], w)-cx0 || ch != min(r[1]+r[3], h)-cy0 {
				t.Fatalf("tiled=%v region %v: got %dx%d", tiled, r, cw, ch)
			}
			for dy := 0; dy < ch; dy++ {
				for dx := 0; dx < cw; dx++ {
					if got[dy*cw+dx] != full[(cy0+dy)*w+cx0+dx] {
						t.Fatalf("tiled=%v region %v: sample (%d,%d) = %v, full decode %v",
							tiled, r, dx, dy, got[dy*cw+dx], full[(cy0+dy)*w+cx0+dx])
					}
				}
			}
		}
		// Fully outside rectangles error.
		if _, _, _, err := DecodeRegion(enc, w, h, 4, 4); err == nil {
			t.Fatalf("tiled=%v: out-of-bounds region accepted", tiled)
		}
		if _, _, _, err := DecodeRegion(enc, 0, 0, 0, 4); err == nil {
			t.Fatalf("tiled=%v: empty region accepted", tiled)
		}
	}
}

func TestRegionTiles(t *testing.T) {
	opt := DefaultOptions()
	opt.Tiled = true
	plane := tiledTestPlane(6, 256, 256)
	enc, err := EncodePlane(plane, 256, 256, opt)
	if err != nil {
		t.Fatal(err)
	}
	touched, total, err := RegionTiles(enc, 32, 32, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if touched != 4 || total != 16 {
		t.Fatalf("RegionTiles = %d/%d, want 4/16", touched, total)
	}
}

// TestTiledSpliceMatchesReencode: splicing updated tiles into an old
// stream must be byte-identical to a fresh encode of the updated plane —
// the coherence invariant the sat store and ground mirror rely on.
func TestTiledSpliceMatchesReencode(t *testing.T) {
	const w, h = 256, 192
	opt := DefaultOptions()
	opt.Tiled = true
	opt.BudgetBytes = BudgetForBPP(1.0, w, h)
	oldPlane := tiledTestPlane(7, w, h)
	oldEnc, err := EncodePlane(oldPlane, w, h, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Update two 16px detection-grid tiles; the mask grid is finer than
	// the codec grid, as in the simulator.
	newPlane := append([]float32(nil), oldPlane...)
	mask := raster.NewTileMask(raster.MustTileGrid(w, h, 16))
	for _, mt := range []int{0, 5*16 + 7} {
		mask.Set[mt] = true
		x0, y0, x1, y1 := mask.Grid.Bounds(mt)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				newPlane[y*w+x] = float32(x%3) * 0.3
			}
		}
	}

	spliced, err := TiledSplicePlane(oldEnc, newPlane, mask, opt)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := EncodePlane(newPlane, w, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spliced, fresh) {
		t.Fatalf("spliced stream (%d bytes) differs from fresh encode (%d bytes)", len(spliced), len(fresh))
	}

	// An empty mask must reproduce the old stream bytes.
	empty := raster.NewTileMask(mask.Grid)
	same, err := TiledSplicePlane(oldEnc, oldPlane, empty, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, oldEnc) {
		t.Fatal("empty splice changed the stream")
	}
}

func TestTiledDecodeRejectsHostileHeaders(t *testing.T) {
	opt := DefaultOptions()
	opt.Tiled = true
	plane := tiledTestPlane(8, 128, 128)
	enc, err := EncodePlane(plane, 128, 128, opt)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), enc...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"truncated header": enc[:10],
		"zero tile":        mutate(func(b []byte) { b[13] = 0 }),
		"tile count":       mutate(func(b []byte) { b[14]++ }),
		"offset backward":  mutate(func(b []byte) { b[tiledHdrLen] = 0 }),
		"length escape":    mutate(func(b []byte) { b[tiledHdrLen+4] = 0xFF; b[tiledHdrLen+5] = 0xFF; b[tiledHdrLen+6] = 0xFF }),
		"zero width":       mutate(func(b []byte) { b[4], b[5] = 0, 0 }),
	}
	for name, b := range cases {
		if _, _, _, err := TiledDecodePlane(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
