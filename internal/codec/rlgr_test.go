package codec

import (
	"math/rand"
	"testing"
)

func rlgrRoundTrip(t *testing.T, vals []int32) {
	t.Helper()
	enc := rlgrEncode(nil, vals, 0)
	got := make([]int32, len(vals))
	rlgrDecode(got, enc, len(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("coefficient %d: got %d want %d (n=%d, stream %d bytes)",
				i, got[i], vals[i], len(vals), len(enc))
		}
	}
}

func TestRLGRRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{0},
		{1},
		{-1},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{5, -3, 2, 0, 0, 0, 1, -1},
		{1 << 20, -(1 << 20), 123456, -654321},
	}
	for _, c := range cases {
		rlgrRoundTrip(t, c)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4096)
		vals := make([]int32, n)
		density := rng.Float64() * rng.Float64() // mostly sparse
		for i := range vals {
			if rng.Float64() < density {
				mag := rng.Intn(1 << uint(1+rng.Intn(16)))
				if rng.Intn(2) == 0 {
					mag = -mag
				}
				vals[i] = int32(mag)
			}
		}
		rlgrRoundTrip(t, vals)
	}

	// Dense, large-magnitude planes exercise the GR escape path.
	for trial := 0; trial < 10; trial++ {
		vals := make([]int32, 1024)
		for i := range vals {
			vals[i] = int32(rng.Intn(1<<22) - 1<<21)
		}
		rlgrRoundTrip(t, vals)
	}
}

func TestRLGRMagnitudeClamp(t *testing.T) {
	vals := []int32{1 << 30, -(1 << 30), 0, 7}
	enc := rlgrEncode(nil, vals, 0)
	got := make([]int32, len(vals))
	rlgrDecode(got, enc, len(vals))
	if got[0] != rlgrMaxMag || got[1] != -rlgrMaxMag || got[2] != 0 || got[3] != 7 {
		t.Fatalf("clamped decode = %v", got)
	}
}

func TestRLGRBudgetTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int32, 4096)
	for i := range vals {
		vals[i] = int32(rng.Intn(512) - 256)
	}
	full := rlgrEncode(nil, vals, 0)
	for _, budget := range []int{16, 64, 256, len(full) / 2} {
		enc := rlgrEncode(nil, vals, budget)
		if len(enc) > budget {
			t.Fatalf("budget %d: emitted %d bytes", budget, len(enc))
		}
		got := make([]int32, len(vals))
		rlgrDecode(got, enc, len(vals))
		// The emitted prefix must decode exactly; the dropped tail is zero.
		zeroFrom := -1
		for i := len(got) - 1; i >= 0; i-- {
			if got[i] != 0 {
				zeroFrom = i + 1
				break
			}
		}
		for i := 0; i < zeroFrom; i++ {
			if got[i] != vals[i] && got[i] != 0 {
				t.Fatalf("budget %d: coefficient %d = %d, want %d or 0", budget, i, got[i], vals[i])
			}
		}
	}
}

func TestRLGRTruncatedStreamDecodesZeros(t *testing.T) {
	vals := make([]int32, 1000)
	for i := range vals {
		vals[i] = int32(i%7) - 3
	}
	full := rlgrEncode(nil, vals, 0)
	for cut := 0; cut <= len(full); cut += 13 {
		got := make([]int32, len(vals))
		rlgrDecode(got, full[:cut], len(vals)) // must not panic, any cut
	}
	// Hostile bytes must also decode without panicking.
	rng := rand.New(rand.NewSource(3))
	junk := make([]byte, 512)
	for trial := 0; trial < 20; trial++ {
		rng.Read(junk)
		got := make([]int32, 4096)
		rlgrDecode(got, junk, len(got))
	}
}
