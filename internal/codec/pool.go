package codec

import (
	"sync"

	"earthplus/internal/arith"
)

// The codec's hot path runs thousands of times per simulated constellation
// day, so the per-call scratch state — coefficient planes, quantiser
// magnitudes, significance maps, probability contexts, layer tables and the
// arithmetic coder's output buffer — lives in a sync.Pool-backed arena.
// Steady-state encodes and decodes then allocate only what they must return
// to the caller.

// grow returns b resized to n elements, reallocating only when the capacity
// is insufficient. The contents are unspecified; callers that need zeroes
// must clear() the result.
func grow[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

// layerMeta is one quality layer's table entry while a codestream is being
// assembled.
type layerMeta struct {
	bytes   uint32
	symbols uint32
}

// scratch is the reusable working state of one encode or decode call.
type scratch struct {
	f32      []float32 // coefficient plane (lossy)
	i32      []int32   // coefficient plane (lossless 5/3)
	q        []uint32  // quantised magnitudes
	neg      []bool    // sign plane
	sig      []bool    // significance map
	pStop    []uint8   // per-sample deepest decoded plane
	rowSig   []int32   // per-subband-row significance counts
	pend     []int32   // deferred sign positions for the current pass
	sigP     []arith.Prob
	refP     []arith.Prob
	sbPlanes []uint8
	layers   []layerMeta
	payload  []byte // concatenated layer payloads
	encBuf   []byte // arithmetic encoder output buffer, recycled per layer
	enc      arith.Encoder
	dec      arith.Decoder
	prs      parsed // reusable parse result for decodePlane
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func (s *scratch) release() {
	// Drop references into caller-owned memory so pooling does not pin a
	// decoded codestream past its lifetime; capacities of codec-owned
	// scratch are retained by design.
	for i := range s.prs.payloads {
		s.prs.payloads[i] = nil
	}
	s.dec = arith.Decoder{}
	scratchPool.Put(s)
}

// probs returns the two context banks reset to the 50/50 state.
func (s *scratch) probs() (sigP, refP []arith.Prob) {
	s.sigP = grow(s.sigP, sigContexts)
	s.refP = grow(s.refP, refContexts)
	arith.ResetProbs(s.sigP)
	arith.ResetProbs(s.refP)
	return s.sigP, s.refP
}

// planePool recycles full-size float32 planes for the ROI mosaic path,
// where the packed plane is purely intermediate.
var planePool = sync.Pool{New: func() any { return new([]float32) }}

// getPlaneBuf borrows an n-sample plane with unspecified contents.
func getPlaneBuf(n int) *[]float32 {
	p := planePool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putPlaneBuf(p *[]float32) { planePool.Put(p) }
