package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// testPlane builds a natural-ish test image: smooth fBm plus a few edges.
func testPlane(seed uint64, w, h int) []float32 {
	p := make([]float32, w*h)
	noise.New(seed).FillFBM(p, w, h, 6, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x > w/2 && y > h/3 && y < 2*h/3 {
				p[y*w+x] = p[y*w+x]*0.3 + 0.6
			}
		}
	}
	return p
}

func planePSNR(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return raster.PSNR(sum / float64(len(a)))
}

func TestRoundTripHighQuality(t *testing.T) {
	const w, h = 64, 64
	plane := testPlane(1, w, h)
	data, err := EncodePlane(plane, w, h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, gw, gh, err := DecodePlane(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gw != w || gh != h {
		t.Fatalf("geometry %dx%d", gw, gh)
	}
	if psnr := planePSNR(plane, got); psnr < 50 {
		t.Fatalf("full-quality PSNR = %.2f dB, want > 50", psnr)
	}
}

func TestBudgetBoundsOutputSize(t *testing.T) {
	const w, h = 64, 64
	plane := testPlane(2, w, h)
	for _, budget := range []int{256, 512, 1024, 4096} {
		opt := DefaultOptions()
		opt.BudgetBytes = budget
		data, err := EncodePlane(plane, w, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		// The rate controller accounts per symbol, including the header
		// and layer table, so the budget is exact (see TestBudgetExact
		// for the small-budget sweep).
		if len(data) > budget {
			t.Fatalf("budget %d produced %d bytes", budget, len(data))
		}
	}
}

func TestRateDistortionMonotone(t *testing.T) {
	const w, h = 64, 64
	plane := testPlane(3, w, h)
	budgets := []int{256, 512, 1024, 2048, 4096}
	prev := -math.MaxFloat64
	for _, budget := range budgets {
		opt := DefaultOptions()
		opt.BudgetBytes = budget
		data, err := EncodePlane(plane, w, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := DecodePlane(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		psnr := planePSNR(plane, got)
		if psnr < prev-0.25 { // small tolerance: truncation points are discrete
			t.Fatalf("PSNR fell from %.2f to %.2f at budget %d", prev, psnr, budget)
		}
		prev = psnr
	}
	if prev < 30 {
		t.Fatalf("4 KiB budget only reached %.2f dB", prev)
	}
}

func TestLayeredDecodeDegradesGracefully(t *testing.T) {
	const w, h = 64, 64
	plane := testPlane(4, w, h)
	data, err := EncodePlane(plane, w, h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	info, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.NLayers < 4 {
		t.Fatalf("expected several layers, got %d", info.NLayers)
	}
	full, _, _, _ := DecodePlane(data, 0)
	half, _, _, _ := DecodePlane(data, info.NLayers/2)
	one, _, _, _ := DecodePlane(data, 1)
	pFull, pHalf, pOne := planePSNR(plane, full), planePSNR(plane, half), planePSNR(plane, one)
	if !(pFull > pHalf && pHalf > pOne) {
		t.Fatalf("layer PSNRs not ordered: full=%.2f half=%.2f one=%.2f", pFull, pHalf, pOne)
	}
	// Decoding "all layers" explicitly must equal the default.
	again, _, _, _ := DecodePlane(data, info.NLayers)
	for i := range full {
		if full[i] != again[i] {
			t.Fatal("maxLayers=NLayers differs from maxLayers=0")
		}
	}
}

func TestAllZeroPlane(t *testing.T) {
	const w, h = 32, 16
	data, err := EncodePlane(make([]float32, w*h), w, h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 64 {
		t.Fatalf("all-zero plane cost %d bytes", len(data))
	}
	got, _, _, err := DecodePlane(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("pixel %d = %v, want 0", i, v)
		}
	}
}

func TestOddDimensions(t *testing.T) {
	const w, h = 37, 23
	plane := testPlane(5, w, h)
	data, err := EncodePlane(plane, w, h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, gw, gh, err := DecodePlane(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gw != w || gh != h {
		t.Fatalf("geometry %dx%d", gw, gh)
	}
	if psnr := planePSNR(plane, got); psnr < 45 {
		t.Fatalf("odd-size PSNR = %.2f dB", psnr)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := EncodePlane(make([]float32, 10), 4, 4, DefaultOptions()); err == nil {
		t.Fatal("expected length mismatch error")
	}
	opt := DefaultOptions()
	opt.BaseStep = 0
	if _, err := EncodePlane(make([]float32, 16), 4, 4, opt); err == nil {
		t.Fatal("expected BaseStep error")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("garbage")); err == nil {
		t.Fatal("expected parse error")
	}
	plane := testPlane(6, 16, 16)
	data, _ := EncodePlane(plane, 16, 16, DefaultOptions())
	for _, cut := range []int{5, 14, 20, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		if _, err := Parse(data[:cut]); err == nil {
			t.Fatalf("expected error parsing %d-byte prefix", cut)
		}
	}
}

func TestROIEncoding(t *testing.T) {
	const w, h = 128, 128
	im := raster.New(w, h, []raster.BandInfo{{Name: "g"}})
	copy(im.Plane(0), testPlane(7, w, h))
	g := raster.MustTileGrid(w, h, 64)
	roi := raster.NewTileMask(g)
	roi.Set[0] = true // keep only top-left tile

	masked := im.Clone()
	ZeroOutsideROI(masked, roi)
	// Non-ROI tiles must be zero.
	if masked.At(0, 100, 100) != 0 {
		t.Fatal("ZeroOutsideROI left non-ROI pixels")
	}
	// ROI tile preserved.
	if masked.At(0, 10, 10) != im.At(0, 10, 10) {
		t.Fatal("ZeroOutsideROI damaged ROI pixels")
	}

	opt := DefaultOptions()
	opt.BudgetBytes = 2048
	dataROI, err := EncodePlane(masked.Plane(0), w, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	dataFull, err := EncodePlane(im.Plane(0), w, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	decROI, _, _, _ := DecodePlane(dataROI, 0)
	decFull, _, _, _ := DecodePlane(dataFull, 0)
	roiOnly := func(t int) bool { return t == 0 }
	rec := raster.New(w, h, im.Bands)
	copy(rec.Plane(0), decROI)
	recFull := raster.New(w, h, im.Bands)
	copy(recFull.Plane(0), decFull)
	psnrROI := raster.PSNRMaskedTiles(im, rec, 0, g, roiOnly)
	psnrFull := raster.PSNRMaskedTiles(im, recFull, 0, g, roiOnly)
	// Spending the same budget on 1/4 of the area must beat spreading it.
	if psnrROI <= psnrFull {
		t.Fatalf("ROI PSNR %.2f <= full-frame PSNR %.2f on ROI tile", psnrROI, psnrFull)
	}
}

func TestEncodeImageDecodeImageRoundTrip(t *testing.T) {
	im := raster.New(48, 32, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		copy(im.Plane(b), testPlane(uint64(10+b), 48, 32))
	}
	im.Clamp()
	enc, err := EncodeImage(im, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range enc {
		total += len(e)
	}
	if total <= 0 {
		t.Fatal("empty encoding")
	}
	dec, err := DecodeImage(enc, im.Bands, 0)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < im.NumBands(); b++ {
		if psnr := raster.PSNRBand(im, dec, b); psnr < 48 {
			t.Fatalf("band %d PSNR = %.2f", b, psnr)
		}
	}
	if _, err := DecodeImage(enc[:2], im.Bands, 0); err == nil {
		t.Fatal("expected band-count mismatch error")
	}
}

func TestEncodeImageSplitsBudget(t *testing.T) {
	im := raster.New(64, 64, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		copy(im.Plane(b), testPlane(uint64(20+b), 64, 64))
	}
	opt := DefaultOptions()
	opt.BudgetBytes = 4096
	enc, err := EncodeImage(im, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, e := range enc {
		got += len(e)
	}
	if got > 4096 {
		t.Fatalf("image budget 4096 produced %d bytes", got)
	}
}

func TestDecodeTruncatedPayloadErrors(t *testing.T) {
	plane := testPlane(8, 32, 32)
	data, _ := EncodePlane(plane, 32, 32, DefaultOptions())
	if _, _, _, err := DecodePlane(data[:len(data)-3], 0); err == nil {
		t.Fatal("expected truncated payload error")
	}
}

// Property: decoding always reproduces the encoder's geometry, and PSNR at
// generous budgets stays sane for arbitrary smooth content.
func TestRoundTripGeometryProperty(t *testing.T) {
	f := func(seed uint64, wRaw, hRaw uint8) bool {
		w := int(wRaw%48) + 9
		h := int(hRaw%48) + 9
		plane := make([]float32, w*h)
		noise.New(seed).FillFBM(plane, w, h, 4, 3)
		data, err := EncodePlane(plane, w, h, DefaultOptions())
		if err != nil {
			return false
		}
		got, gw, gh, err := DecodePlane(data, 0)
		if err != nil || gw != w || gh != h {
			return false
		}
		return planePSNR(plane, got) > 40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetForBPP(t *testing.T) {
	if got := BudgetForBPP(0.5, 512, 512); got != 16384 {
		t.Fatalf("BudgetForBPP = %d, want 16384", got)
	}
}

func TestCompressionBeatsRawAtModestQuality(t *testing.T) {
	const w, h = 128, 128
	plane := testPlane(9, w, h)
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(1.0, w, h) // 1 bpp vs 32 bpp raw float
	data, err := EncodePlane(plane, w, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, _ := DecodePlane(data, 0)
	if psnr := planePSNR(plane, got); psnr < 35 {
		t.Fatalf("1 bpp PSNR = %.2f dB, want >= 35", psnr)
	}
}

func BenchmarkEncode256At05BPP(b *testing.B) {
	plane := testPlane(11, 256, 256)
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(0.5, 256, 256)
	b.SetBytes(256 * 256 * 4)
	for i := 0; i < b.N; i++ {
		if _, err := EncodePlane(plane, 256, 256, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode256At05BPP(b *testing.B) {
	plane := testPlane(11, 256, 256)
	opt := DefaultOptions()
	opt.BudgetBytes = BudgetForBPP(0.5, 256, 256)
	data, err := EncodePlane(plane, 256, 256, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256 * 256 * 4)
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodePlane(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkBytes []byte

func BenchmarkEncodeLossless64(b *testing.B) {
	plane := testPlane(12, 64, 64)
	for i := 0; i < b.N; i++ {
		data, err := EncodePlane(plane, 64, 64, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		sinkBytes = data
	}
}

func init() {
	// Warm the subband-norm cache deterministically so benchmarks measure
	// steady-state cost.
	_ = rand.Int
}

// Decoding arbitrary corrupted bytes must return an error or garbage, never
// panic — the downlink is modeled as reliable but the library should not
// trust its inputs.
func TestDecodeCorruptedStreamNeverPanics(t *testing.T) {
	plane := testPlane(55, 48, 48)
	data, err := EncodePlane(plane, 48, 48, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			_, _, _, _ = DecodePlane(corrupt, 0)
		}()
	}
}

// Encoding is deterministic: identical inputs yield identical bytes.
func TestEncodeDeterministic(t *testing.T) {
	plane := testPlane(56, 64, 64)
	opt := DefaultOptions()
	opt.BudgetBytes = 2048
	a, err := EncodePlane(plane, 64, 64, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodePlane(plane, 64, 64, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
