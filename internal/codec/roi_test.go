package codec

import (
	"testing"

	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

func TestMosaicDims(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{0, 0, 0}, {1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2},
		{5, 3, 2}, {9, 3, 3}, {10, 4, 3}, {16, 4, 4},
	}
	for _, c := range cases {
		cols, rows := mosaicDims(c.n)
		if cols != c.cols || rows != c.rows {
			t.Errorf("mosaicDims(%d) = %d,%d want %d,%d", c.n, cols, rows, c.cols, c.rows)
		}
		if c.n > 0 && cols*rows < c.n {
			t.Errorf("mosaicDims(%d) too small", c.n)
		}
	}
}

func TestROIPlaneRoundTripHighQuality(t *testing.T) {
	const w, h, tile = 128, 128, 16
	g := raster.MustTileGrid(w, h, tile)
	plane := testPlane(31, w, h)
	roi := raster.NewTileMask(g)
	for _, tl := range []int{0, 5, 17, 33, 34, 35, 63} {
		roi.Set[tl] = true
	}
	data, err := EncodeROIPlane(plane, roi, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, w*h)
	for i := range dst {
		dst[i] = -7 // sentinel: untouched tiles must keep it
	}
	if err := DecodeROIPlaneInto(dst, roi, data, 0); err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	var n int
	for tl, keep := range roi.Set {
		x0, y0, x1, y1 := g.Bounds(tl)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				v := dst[y*w+x]
				if !keep {
					if v != -7 {
						t.Fatalf("non-ROI tile %d touched", tl)
					}
					continue
				}
				d := float64(v - plane[y*w+x])
				sumSq += d * d
				n++
			}
		}
	}
	if psnr := raster.PSNR(sumSq / float64(n)); psnr < 45 {
		t.Fatalf("ROI round-trip PSNR = %.1f dB", psnr)
	}
}

func TestROIPlaneEmptyROI(t *testing.T) {
	g := raster.MustTileGrid(64, 64, 16)
	roi := raster.NewTileMask(g)
	data, err := EncodeROIPlane(make([]float32, 64*64), roi, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatalf("empty ROI produced %d bytes", len(data))
	}
	dst := make([]float32, 64*64)
	if err := DecodeROIPlaneInto(dst, roi, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestROIPlaneMaskMismatchDetected(t *testing.T) {
	g := raster.MustTileGrid(64, 64, 16)
	plane := testPlane(32, 64, 64)
	roi := raster.NewTileMask(g)
	roi.Set[0], roi.Set[1], roi.Set[2] = true, true, true
	data, err := EncodeROIPlane(plane, roi, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Decoding with a different tile count must fail loudly.
	other := raster.NewTileMask(g)
	other.Set[0] = true
	if err := DecodeROIPlaneInto(make([]float32, 64*64), other, data, 0); err == nil {
		t.Fatal("expected mosaic-geometry mismatch error")
	}
}

func TestROIPlaneSingleTileAndFull(t *testing.T) {
	const w, h, tile = 64, 64, 16
	g := raster.MustTileGrid(w, h, tile)
	plane := testPlane(33, w, h)
	for _, count := range []int{1, g.NumTiles()} {
		roi := raster.NewTileMask(g)
		for i := 0; i < count; i++ {
			roi.Set[i] = true
		}
		data, err := EncodeROIPlane(plane, roi, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float32, w*h)
		if err := DecodeROIPlaneInto(dst, roi, data, 0); err != nil {
			t.Fatal(err)
		}
		x0, y0, _, _ := g.Bounds(0)
		if d := dst[(y0+3)*w+x0+3] - plane[(y0+3)*w+x0+3]; d > 0.05 || d < -0.05 {
			t.Fatalf("count=%d tile 0 decoded badly: delta %v", count, d)
		}
	}
}

func TestROIBudgetAppliesToMosaic(t *testing.T) {
	const w, h, tile = 192, 192, 16
	g := raster.MustTileGrid(w, h, tile)
	plane := make([]float32, w*h)
	noise.New(34).FillFBM(plane, w, h, 8, 4)
	roi := raster.NewTileMask(g)
	for i := 0; i < g.NumTiles(); i += 3 {
		roi.Set[i] = true
	}
	opt := DefaultOptions()
	opt.BudgetBytes = 2048
	data, err := EncodeROIPlane(plane, roi, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 2048+192 {
		t.Fatalf("ROI stream %d bytes exceeds budget", len(data))
	}
}

func TestROIMaskBytes(t *testing.T) {
	g := raster.MustTileGrid(192, 192, 16) // 144 tiles -> 18 bytes
	if got := ROIMaskBytes(g); got != 18 {
		t.Fatalf("ROIMaskBytes = %d, want 18", got)
	}
}
