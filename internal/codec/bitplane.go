package codec

import (
	"earthplus/internal/arith"
	"earthplus/internal/wavelet"
)

// planeCoder is the embedded bit-plane coder shared by the lossy and
// lossless paths. Both sides of the symmetric coder walk the subbands in
// the same deterministic order, so the encoder and decoder stay in lockstep
// without any side information beyond the per-subband plane counts.
//
// Two structural optimisations keep the per-sample cost low:
//
//   - Row-significance skip: each subband row carries a count of its
//     significant samples. While a row and its two vertical neighbours hold
//     none, every sample's 4-neighbour context is provably the zero count,
//     so the scan runs a tight loop on one context pointer and only falls
//     back to the probing path after the first 1-bit appears. Early bit
//     planes — where almost everything is insignificant — skip the
//     neighbour probes entirely.
//
//   - Deferred batched signs: sign bits are not interleaved with the
//     significance scan. Each pass records newly-significant positions and
//     appends their signs as one bypass-bit batch (EncodeBypassN) at the
//     end of the pass. Significance state, and therefore context modelling,
//     is unchanged; only the bit layout inside a layer differs.
type planeCoder struct {
	w        int
	sbs      []wavelet.Subband
	sbPlanes []uint8
	rowOff   []int32 // per-subband start into rowSig
	q        []uint32
	neg      []bool
	sig      []bool
	rowSig   []int32
	pend     []int32
	sigP     []arith.Prob
	refP     []arith.Prob
}

// budgetMargin is the conservative per-symbol headroom of the rate check:
// one arithmetic-coded bit can commit at most one byte (the probability
// floor bounds it well under 8 bits), and the symbol's deferred sign bit
// can round the batched-sign tail up by one more byte.
const budgetMargin = 4

// neighbourSig counts significant 4-neighbours of (x,y) within subband sb,
// clamped to 3. It is the coder's spatial context model.
func (c *planeCoder) neighbourSig(sb *wavelet.Subband, x, y int) int {
	n := 0
	i := y*c.w + x
	if x > sb.X0 && c.sig[i-1] {
		n++
	}
	if x < sb.X1-1 && c.sig[i+1] {
		n++
	}
	if y > sb.Y0 && c.sig[i-c.w] {
		n++
	}
	if y < sb.Y1-1 && c.sig[i+c.w] {
		n++
	}
	if n > 3 {
		n = 3
	}
	return n
}

// rowQuiet reports whether row ry of a subband with rows rs has no
// significant sample in itself or its vertical neighbours.
func rowQuiet(rs []int32, ry int) bool {
	return rs[ry] == 0 &&
		(ry == 0 || rs[ry-1] == 0) &&
		(ry == len(rs)-1 || rs[ry+1] == 0)
}

// encodePass codes bit plane p of every contributing subband into enc using
// the deferred-sign layout. limit, when positive, is the largest enc.Len()
// the pass may reach (the caller folds header and layer-table overhead into
// it); the pass truncates the embedded stream rather than exceed it. It
// returns the number of scan symbols coded and whether truncation fired.
func (c *planeCoder) encodePass(enc *arith.Encoder, p int, limit int) (symbols uint32, truncated bool) {
	shift := uint(p)
	c.pend = c.pend[:0]
scan:
	for si := range c.sbs {
		if int(c.sbPlanes[si]) <= p {
			continue
		}
		sb := &c.sbs[si]
		kind := int(sb.Kind)
		kindBase := kind * 4
		refP := &c.refP[kind]
		sig0 := &c.sigP[kindBase]
		rs := c.rowSig[c.rowOff[si] : int(c.rowOff[si])+sb.Y1-sb.Y0]
		rowW := sb.X1 - sb.X0
		for y := sb.Y0; y < sb.Y1; y++ {
			ry := y - sb.Y0
			base := y * c.w
			// Rate control runs at row granularity: a symbol commits at
			// most one byte plus one deferred sign bit, so when the limit
			// is more than a worst-case row away the whole row is coded
			// check-free; only rows near the edge pay the per-symbol test.
			checked := false
			if limit > 0 {
				free := limit - enc.Len() - (len(c.pend)+7)/8 - budgetMargin
				if free <= 0 {
					truncated = true
					break scan
				}
				checked = free <= rowW+rowW/8+2
			}
			qrow := c.q[base+sb.X0 : base+sb.X1]
			srow := c.sig[base+sb.X0 : base+sb.X1]
			x := 0
			if rowQuiet(rs, ry) {
				for ; x < rowW; x++ {
					if checked && enc.Len()+(len(c.pend)+7)/8+budgetMargin >= limit {
						truncated = true
						break scan
					}
					bit := int(qrow[x] >> shift & 1)
					enc.Encode(sig0, bit)
					symbols++
					if bit != 0 {
						srow[x] = true
						rs[ry]++
						c.pend = append(c.pend, int32(base+sb.X0+x))
						x++
						break
					}
				}
			}
			for ; x < rowW; x++ {
				if checked && enc.Len()+(len(c.pend)+7)/8+budgetMargin >= limit {
					truncated = true
					break scan
				}
				bit := int(qrow[x] >> shift & 1)
				if srow[x] {
					enc.Encode(refP, bit)
				} else {
					enc.Encode(&c.sigP[kindBase+c.neighbourSig(sb, sb.X0+x, y)], bit)
					if bit != 0 {
						srow[x] = true
						rs[ry]++
						c.pend = append(c.pend, int32(base+sb.X0+x))
					}
				}
				symbols++
			}
		}
	}
	c.encodeSigns(enc)
	return symbols, truncated
}

// encodeSigns appends the pass's deferred sign bits as packed bypass
// batches.
func (c *planeCoder) encodeSigns(enc *arith.Encoder) {
	for off := 0; off < len(c.pend); off += 32 {
		k := len(c.pend) - off
		if k > 32 {
			k = 32
		}
		var v uint32
		for j := 0; j < k; j++ {
			v <<= 1
			if c.neg[c.pend[off+j]] {
				v |= 1
			}
		}
		enc.EncodeBypassN(v, k)
	}
}

// decodePass mirrors encodePass exactly: it decodes up to maxSymbols scan
// symbols of bit plane p, then the batched sign bits of the samples that
// became significant. When pStop is non-nil every visited sample's entry is
// set to p (the deepest decoded plane, used for midpoint reconstruction).
// It returns the number of scan symbols consumed.
func (c *planeCoder) decodePass(dec *arith.Decoder, p int, maxSymbols uint32, pStop []uint8) uint32 {
	shift := uint(p)
	remaining := maxSymbols
	c.pend = c.pend[:0]
scan:
	for si := range c.sbs {
		if int(c.sbPlanes[si]) <= p {
			continue
		}
		sb := &c.sbs[si]
		kind := int(sb.Kind)
		kindBase := kind * 4
		refP := &c.refP[kind]
		sig0 := &c.sigP[kindBase]
		rs := c.rowSig[c.rowOff[si] : int(c.rowOff[si])+sb.Y1-sb.Y0]
		for y := sb.Y0; y < sb.Y1; y++ {
			ry := y - sb.Y0
			base := y * c.w
			x := sb.X0
			if rowQuiet(rs, ry) {
				for ; x < sb.X1; x++ {
					if remaining == 0 {
						break scan
					}
					remaining--
					bit := dec.Decode(sig0)
					if pStop != nil {
						pStop[base+x] = uint8(p)
					}
					if bit != 0 {
						c.q[base+x] |= 1 << shift
						c.sig[base+x] = true
						rs[ry]++
						c.pend = append(c.pend, int32(base+x))
						x++
						break
					}
				}
			}
			for ; x < sb.X1; x++ {
				if remaining == 0 {
					break scan
				}
				remaining--
				i := base + x
				if c.sig[i] {
					c.q[i] |= uint32(dec.Decode(refP)) << shift
				} else if dec.Decode(&c.sigP[kindBase+c.neighbourSig(sb, x, y)]) != 0 {
					c.q[i] |= 1 << shift
					c.sig[i] = true
					rs[ry]++
					c.pend = append(c.pend, int32(i))
				}
				if pStop != nil {
					pStop[i] = uint8(p)
				}
			}
		}
	}
	for off := 0; off < len(c.pend); off += 32 {
		k := len(c.pend) - off
		if k > 32 {
			k = 32
		}
		v := dec.DecodeBypassN(k)
		for j := 0; j < k; j++ {
			if v>>uint(k-1-j)&1 != 0 {
				c.neg[c.pend[off+j]] = true
			}
		}
	}
	return maxSymbols - remaining
}
