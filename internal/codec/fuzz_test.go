package codec

import (
	"encoding/binary"
	"testing"
)

// The ground station parses whatever the downlink delivers, so the parser
// and decoder must tolerate arbitrary corruption: every failure mode is an
// error (or garbage pixels), never a panic or an implausible allocation.
// The fuzz targets drive both entry points with truncated, bit-flipped and
// synthetic streams; `go test -fuzz=FuzzDecodePlane ./internal/codec` digs
// deeper than the seeded corpus run in CI.

// fuzzSeedStream builds a small valid codestream to seed mutation from.
func fuzzSeedStream(tb testing.TB, w, h, budget int) []byte {
	tb.Helper()
	opt := DefaultOptions()
	opt.BudgetBytes = budget
	data, err := EncodePlane(testPlane(9, w, h), w, h, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("EPC1"))
	f.Add(fuzzSeedStream(f, 32, 32, 0))
	f.Add(fuzzSeedStream(f, 48, 16, 256))
	seed := fuzzSeedStream(f, 32, 32, 512)
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Parse(data)
		if err != nil {
			return
		}
		if info.W <= 0 || info.H <= 0 || info.W > 1<<15 || info.H > 1<<15 {
			t.Fatalf("Parse accepted implausible geometry %dx%d", info.W, info.H)
		}
		if info.NLayers < 0 || info.NLayers != len(info.LayerBytes) {
			t.Fatalf("Parse returned inconsistent layer table: %d vs %d",
				info.NLayers, len(info.LayerBytes))
		}
	})
}

// fuzzSeedTiled builds a small valid tiled (EPT1) codestream to seed
// mutation from.
func fuzzSeedTiled(tb testing.TB, w, h, tile, budget int) []byte {
	tb.Helper()
	opt := DefaultOptions()
	opt.Tiled = true
	opt.TileSize = tile
	opt.BudgetBytes = budget
	data, err := EncodePlane(testPlane(17, w, h), w, h, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzParseTiled drives the EPT1 parser and the region decoder with
// hostile tile-index tables: offsets escaping the buffer, overlapping or
// out-of-order payloads, lying tile counts and truncated indexes must
// all come back as errors — never a panic, an implausible allocation or
// an out-of-bounds payload view.
func FuzzParseTiled(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("EPT1"))
	f.Add(fuzzSeedTiled(f, 48, 32, 16, 0))
	f.Add(fuzzSeedTiled(f, 96, 80, 64, 0))
	f.Add(fuzzSeedTiled(f, 37, 23, 16, 256))
	seed := fuzzSeedTiled(f, 64, 64, 32, 1024)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:tiledHdrLen+3]) // truncated mid-index
	// A synthetically hostile index: first tile's payload overlaps the
	// index table itself, second escapes the buffer.
	hostile := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(hostile[tiledHdrLen:], 0)
	binary.LittleEndian.PutUint32(hostile[tiledHdrLen+4:], 12)
	binary.LittleEndian.PutUint32(hostile[tiledHdrLen+8:], uint32(len(hostile)))
	binary.LittleEndian.PutUint32(hostile[tiledHdrLen+12:], 8)
	f.Add(hostile)
	// A lying tile count over a valid header.
	miscount := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(miscount[14:], 9999)
	f.Add(miscount)
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Parse(data)
		if err != nil {
			return
		}
		if !IsTiled(data) {
			return // mutated into another profile; the other fuzzers own it
		}
		if !info.Tiled || info.TileSize <= 0 || info.NTiles <= 0 {
			t.Fatalf("Parse accepted tiled stream with inconsistent tile info %+v", info)
		}
		if info.W <= 0 || info.H <= 0 || info.W > 1<<15 || info.H > 1<<15 {
			t.Fatalf("Parse accepted implausible geometry %dx%d", info.W, info.H)
		}
		if info.W*info.H > 1<<16 {
			return // bound the decode work, same cap as FuzzDecodePlane
		}
		// A parsed stream must decode — fully and by region — without
		// panicking, and any success must honour the claimed geometry.
		if plane, w, h, err := DecodePlane(data, 0); err == nil {
			if w != info.W || h != info.H || len(plane) != w*h {
				t.Fatalf("decode geometry %dx%d (len %d) disagrees with header %dx%d",
					w, h, len(plane), info.W, info.H)
			}
		}
		rw, rh := min(info.W, 70), min(info.H, 70)
		if reg, cw, ch, err := DecodeRegion(data, 1, 1, rw, rh); err == nil {
			if len(reg) != cw*ch || cw <= 0 || ch <= 0 || cw > rw || ch > rh {
				t.Fatalf("region decode returned %d samples for %dx%d", len(reg), cw, ch)
			}
		}
		if touched, total, err := RegionTiles(data, 0, 0, info.W, info.H); err == nil {
			if touched != total || total != info.NTiles {
				t.Fatalf("full-plane RegionTiles %d/%d disagrees with NTiles %d", touched, total, info.NTiles)
			}
		}
	})
}

func FuzzDecodePlane(f *testing.F) {
	f.Add(fuzzSeedStream(f, 32, 32, 0))
	f.Add(fuzzSeedStream(f, 48, 16, 256))
	f.Add(fuzzSeedStream(f, 37, 23, 128))
	f.Add(fuzzSeedTiled(f, 48, 32, 16, 0))
	trunc := fuzzSeedStream(f, 32, 32, 1024)
	f.Add(trunc[:len(trunc)-3])
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound the decode work: a hostile header may legitimately describe
		// a huge plane (an all-zero giant plane really is a tiny stream), so
		// cap the geometry rather than decode gigabytes per input.
		info, err := Parse(data)
		if err != nil {
			return
		}
		if info.W*info.H > 1<<16 {
			return
		}
		plane, w, h, err := DecodePlane(data, 0)
		if err != nil {
			return
		}
		if w != info.W || h != info.H || len(plane) != w*h {
			t.Fatalf("decode geometry %dx%d (len %d) disagrees with header %dx%d",
				w, h, len(plane), info.W, info.H)
		}
		// Truncated layer decodes must also hold together.
		if _, _, _, err := DecodePlane(data, 1); err != nil {
			t.Fatalf("full decode succeeded but maxLayers=1 failed: %v", err)
		}
	})
}

func FuzzDecodePlaneLossless(f *testing.F) {
	small, err := EncodePlaneLossless(testPlane(3, 24, 24), 24, 24, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(small)
	f.Add(small[:len(small)/2])
	f.Add([]byte("EPL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Same geometry cap as FuzzDecodePlane, via the raw header fields.
		if len(data) >= 8 {
			w := int(binary.LittleEndian.Uint16(data[4:]))
			h := int(binary.LittleEndian.Uint16(data[6:]))
			if w*h > 1<<16 {
				return
			}
		}
		plane, w, h, err := DecodePlaneLossless(data)
		if err != nil {
			return
		}
		if len(plane) != w*h {
			t.Fatalf("lossless decode length %d != %dx%d", len(plane), w, h)
		}
	})
}

// TestMaxDecodePixels: a tiny header claiming a huge plane must be
// rejected before any geometry-sized allocation happens.
func TestMaxDecodePixels(t *testing.T) {
	old := MaxDecodePixels
	defer func() { MaxDecodePixels = old }()

	data := fuzzSeedStream(t, 64, 64, 0)
	MaxDecodePixels = 1024 // below the stream's 64*64
	if _, _, _, err := DecodePlane(data, 0); err == nil {
		t.Fatal("expected MaxDecodePixels rejection")
	}
	lossless, err := EncodePlaneLossless(testPlane(2, 64, 64), 64, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodePlaneLossless(lossless); err == nil {
		t.Fatal("expected lossless MaxDecodePixels rejection")
	}
	MaxDecodePixels = 0 // disabled: both must decode again
	if _, _, _, err := DecodePlane(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodePlaneLossless(lossless); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzRegressionBitFlips runs a deterministic sweep of single-bit
// corruptions through both decoders as a cheap always-on stand-in for the
// fuzzers.
func TestFuzzRegressionBitFlips(t *testing.T) {
	data := fuzzSeedStream(t, 32, 32, 1024)
	for pos := 0; pos < len(data); pos++ {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		_, _, _, _ = DecodePlane(corrupt, 0) // must not panic
	}
	lossless, err := EncodePlaneLossless(testPlane(5, 24, 24), 24, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(lossless); pos++ {
		corrupt := append([]byte(nil), lossless...)
		corrupt[pos] ^= 0x04
		_, _, _, _ = DecodePlaneLossless(corrupt) // must not panic
	}
	tiled := fuzzSeedTiled(t, 48, 32, 16, 512)
	for pos := 0; pos < len(tiled); pos++ {
		corrupt := append([]byte(nil), tiled...)
		corrupt[pos] ^= 0x40
		_, _, _, _ = DecodePlane(corrupt, 0)             // must not panic
		_, _, _, _ = DecodeRegion(corrupt, 8, 8, 16, 16) // nor the region path
	}
}
