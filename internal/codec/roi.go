package codec

import (
	"earthplus/internal/eperr"
	"earthplus/internal/raster"
)

// ROI (region-of-interest) coding packs the marked tiles of a plane into a
// compact near-square mosaic and encodes only that. Compared to zeroing
// the non-ROI area of the full frame, the mosaic wastes no bits on the
// artificial zero/content boundaries (whose wavelet ringing would dominate
// small tiles) and every coefficient the budget buys belongs to ROI
// content. The tile order inside the mosaic is the ascending tile index of
// the mask, so encoder and decoder need only share the mask.

// mosaicDims returns the tile geometry of the packed mosaic for n tiles.
// It is raster.MosaicDims, the shared tile-geometry helper.
func mosaicDims(n int) (cols, rows int) {
	return raster.MosaicDims(n)
}

// EncodeROIPlane encodes the tiles marked in roi from the row-major plane
// (geometry roi.Grid). opt.BudgetBytes applies to the emitted codestream.
// An empty ROI yields a nil stream.
func EncodeROIPlane(plane []float32, roi *raster.TileMask, opt Options) ([]byte, error) {
	g := roi.Grid
	if len(plane) != g.ImageW*g.ImageH {
		return nil, eperr.New(eperr.BadImage, "codec", "plane length %d does not match grid %dx%d",
			len(plane), g.ImageW, g.ImageH)
	}
	n := roi.Count()
	if n == 0 {
		return nil, nil
	}
	cols, rows := mosaicDims(n)
	mw, mh := cols*g.Tile, rows*g.Tile
	mosaicBuf := getPlaneBuf(mw * mh)
	defer putPlaneBuf(mosaicBuf)
	mosaic := *mosaicBuf
	clear(mosaic)
	slot := 0
	for t, keep := range roi.Set {
		if !keep {
			continue
		}
		x0, y0, _, _ := g.Bounds(t)
		sx, sy := (slot%cols)*g.Tile, (slot/cols)*g.Tile
		for dy := 0; dy < g.Tile; dy++ {
			srcRow := (y0 + dy) * g.ImageW
			dstRow := (sy + dy) * mw
			copy(mosaic[dstRow+sx:dstRow+sx+g.Tile], plane[srcRow+x0:srcRow+x0+g.Tile])
		}
		slot++
	}
	return EncodePlane(mosaic, mw, mh, opt)
}

// DecodeROIPlaneInto decodes a stream produced by EncodeROIPlane and
// scatters the tiles marked in roi back into dst (full-plane row-major,
// geometry roi.Grid). Unmarked tiles of dst are left untouched. A nil
// stream (empty ROI) is a no-op.
func DecodeROIPlaneInto(dst []float32, roi *raster.TileMask, data []byte, maxLayers int) error {
	if data == nil {
		return nil
	}
	g := roi.Grid
	if len(dst) != g.ImageW*g.ImageH {
		return eperr.New(eperr.BadImage, "codec", "dst length %d does not match grid %dx%d",
			len(dst), g.ImageW, g.ImageH)
	}
	n := roi.Count()
	cols, rows := mosaicDims(n)
	mosaicBuf := getPlaneBuf(cols * g.Tile * rows * g.Tile)
	defer putPlaneBuf(mosaicBuf)
	mosaic, mw, mh, err := decodePlane(data, maxLayers, *mosaicBuf)
	if err != nil {
		return err
	}
	if mw != cols*g.Tile || mh != rows*g.Tile {
		return eperr.New(eperr.BadCodestream, "codec", "mosaic %dx%d does not match ROI of %d tiles", mw, mh, n)
	}
	slot := 0
	for t, keep := range roi.Set {
		if !keep {
			continue
		}
		x0, y0, _, _ := g.Bounds(t)
		sx, sy := (slot%cols)*g.Tile, (slot/cols)*g.Tile
		for dy := 0; dy < g.Tile; dy++ {
			srcRow := (sy + dy) * mw
			dstRow := (y0 + dy) * g.ImageW
			for dx := 0; dx < g.Tile; dx++ {
				v := mosaic[srcRow+sx+dx]
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				dst[dstRow+x0+dx] = v
			}
		}
		slot++
	}
	return nil
}

// ROIMaskBytes is the metadata cost of shipping a tile mask alongside an
// ROI stream (one bit per tile).
func ROIMaskBytes(g raster.TileGrid) int64 {
	return int64((g.NumTiles() + 7) / 8)
}
