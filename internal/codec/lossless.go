package codec

import (
	"encoding/binary"
	"math"

	"earthplus/internal/eperr"
	"earthplus/internal/wavelet"
)

// Lossless mode addresses the paper's §8 limitation ("lossy compression may
// not be applicable to applications that require lossless compression"):
// pixels are quantised once to 16-bit samples, transformed with the exactly
// reversible integer CDF 5/3 wavelet, and bit-plane coded without any
// quantiser, so DecodePlaneLossless reproduces the 16-bit samples exactly.
// It shares the pooled scratch arena and the fast bit-plane coder with the
// lossy path.

const losslessMagic = "EPL1"

// losslessScale maps [0,1] floats onto 16-bit samples.
const losslessScale = 65535

// EncodePlaneLossless compresses a [0,1] plane exactly (at 16-bit sample
// precision). There is no rate control: the stream is as long as the
// content demands.
func EncodePlaneLossless(plane []float32, w, h int, levels int) ([]byte, error) {
	if len(plane) != w*h {
		return nil, eperr.New(eperr.BadImage, "codec", "plane length %d != %dx%d", len(plane), w, h)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, eperr.New(eperr.BadImage, "codec", "unsupported dimensions %dx%d", w, h)
	}
	levels = effectiveLevels(w, h, levels)
	g := geometryFor(w, h, levels)
	n := w * h

	s := getScratch()
	defer s.release()
	s.i32 = grow(s.i32, n)
	coeffs := s.i32
	for i, v := range plane {
		x := math.Round(float64(v) * losslessScale)
		if x < 0 {
			x = 0
		} else if x > losslessScale {
			x = losslessScale
		}
		coeffs[i] = int32(x)
	}
	wavelet.Forward53(coeffs, w, h, levels)

	s.q = grow(s.q, n)
	s.neg = grow(s.neg, n)
	s.sbPlanes = grow(s.sbPlanes, len(g.sbs))
	maxPlane := 0
	for si := range g.sbs {
		sb := &g.sbs[si]
		var sbMax uint32
		for y := sb.Y0; y < sb.Y1; y++ {
			crow := coeffs[y*w+sb.X0 : y*w+sb.X1]
			qrow := s.q[y*w+sb.X0 : y*w+sb.X1]
			nrow := s.neg[y*w+sb.X0 : y*w+sb.X1]
			for x, c := range crow {
				isNeg := c < 0
				if isNeg {
					c = -c
				}
				nrow[x] = isNeg
				qv := uint32(c)
				qrow[x] = qv
				if qv > sbMax {
					sbMax = qv
				}
			}
		}
		s.sbPlanes[si] = uint8(bitsFor(sbMax))
		if int(s.sbPlanes[si]) > maxPlane {
			maxPlane = int(s.sbPlanes[si])
		}
	}

	out := make([]byte, 0, 11+len(g.sbs)+w*h/2)
	out = append(out, losslessMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(w))
	out = binary.LittleEndian.AppendUint16(out, uint16(h))
	out = append(out, uint8(levels), uint8(maxPlane), uint8(len(g.sbs)))
	out = append(out, s.sbPlanes...)

	sigP, refP := s.probs()
	s.sig = grow(s.sig, n)
	clear(s.sig)
	s.rowSig = grow(s.rowSig, g.rowTotal)
	clear(s.rowSig)
	pc := planeCoder{
		w: w, sbs: g.sbs, sbPlanes: s.sbPlanes, rowOff: g.rowOff,
		q: s.q, neg: s.neg, sig: s.sig, rowSig: s.rowSig,
		pend: s.pend[:0], sigP: sigP, refP: refP,
	}
	enc := &s.enc
	enc.Reset(s.encBuf)
	for p := maxPlane - 1; p >= 0; p-- {
		pc.encodePass(enc, p, 0)
	}
	s.pend = pc.pend
	pl := enc.Flush()
	s.encBuf = pl
	return append(out, pl...), nil
}

// DecodePlaneLossless reverses EncodePlaneLossless exactly (at 16-bit
// sample precision).
func DecodePlaneLossless(data []byte) ([]float32, int, int, error) {
	if len(data) < 11 || string(data[:4]) != losslessMagic {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "bad lossless magic or truncated header")
	}
	w := int(binary.LittleEndian.Uint16(data[4:]))
	h := int(binary.LittleEndian.Uint16(data[6:]))
	levels := int(data[8])
	maxPlane := int(data[9])
	nSb := int(data[10])
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "implausible lossless geometry %dx%d", w, h)
	}
	if levels != effectiveLevels(w, h, levels) {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "implausible lossless level count %d for %dx%d", levels, w, h)
	}
	if maxPlane > 32 {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "implausible lossless plane count %d", maxPlane)
	}
	if MaxDecodePixels > 0 && w*h > MaxDecodePixels {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "%dx%d plane exceeds MaxDecodePixels %d", w, h, MaxDecodePixels)
	}
	g := geometryFor(w, h, levels)
	if len(g.sbs) != nSb || len(data) < 11+nSb {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "lossless subband table mismatch")
	}
	n := w * h
	payload := data[11+nSb:]

	s := getScratch()
	defer s.release()
	s.sbPlanes = append(s.sbPlanes[:0], data[11:11+nSb]...)
	s.q = grow(s.q, n)
	clear(s.q)
	s.neg = grow(s.neg, n)
	clear(s.neg)
	s.sig = grow(s.sig, n)
	clear(s.sig)
	s.rowSig = grow(s.rowSig, g.rowTotal)
	clear(s.rowSig)
	sigP, refP := s.probs()
	pc := planeCoder{
		w: w, sbs: g.sbs, sbPlanes: s.sbPlanes, rowOff: g.rowOff,
		q: s.q, neg: s.neg, sig: s.sig, rowSig: s.rowSig,
		pend: s.pend[:0], sigP: sigP, refP: refP,
	}
	dec := &s.dec
	dec.Reset(payload)
	for p := maxPlane - 1; p >= 0; p-- {
		pc.decodePass(dec, p, ^uint32(0), nil)
	}
	s.pend = pc.pend

	s.i32 = grow(s.i32, n)
	coeffs := s.i32
	for i := range coeffs {
		c := int32(s.q[i])
		if s.neg[i] {
			c = -c
		}
		coeffs[i] = c
	}
	wavelet.Inverse53(coeffs, w, h, levels)
	plane := make([]float32, n)
	for i, c := range coeffs {
		plane[i] = float32(c) / losslessScale
	}
	return plane, w, h, nil
}

// Quantize16 returns the 16-bit sample a [0,1] value maps to in lossless
// mode; equality of Quantize16 values is the lossless guarantee.
func Quantize16(v float32) uint16 {
	x := math.Round(float64(v) * losslessScale)
	if x < 0 {
		return 0
	}
	if x > losslessScale {
		return losslessScale
	}
	return uint16(x)
}
