package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"earthplus/internal/arith"
	"earthplus/internal/wavelet"
)

// Lossless mode addresses the paper's §8 limitation ("lossy compression may
// not be applicable to applications that require lossless compression"):
// pixels are quantised once to 16-bit samples, transformed with the exactly
// reversible integer CDF 5/3 wavelet, and bit-plane coded without any
// quantiser, so DecodePlaneLossless reproduces the 16-bit samples exactly.

const losslessMagic = "EPL1"

// losslessScale maps [0,1] floats onto 16-bit samples.
const losslessScale = 65535

// EncodePlaneLossless compresses a [0,1] plane exactly (at 16-bit sample
// precision). There is no rate control: the stream is as long as the
// content demands.
func EncodePlaneLossless(plane []float32, w, h int, levels int) ([]byte, error) {
	if len(plane) != w*h {
		return nil, fmt.Errorf("codec: plane length %d != %dx%d", len(plane), w, h)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("codec: unsupported dimensions %dx%d", w, h)
	}
	levels = effectiveLevels(w, h, levels)
	coeffs := make([]int32, w*h)
	for i, v := range plane {
		x := math.Round(float64(v) * losslessScale)
		if x < 0 {
			x = 0
		} else if x > losslessScale {
			x = losslessScale
		}
		coeffs[i] = int32(x)
	}
	wavelet.Forward53(coeffs, w, h, levels)

	sbs := wavelet.Subbands(w, h, levels)
	q := make([]uint32, len(coeffs))
	neg := make([]bool, len(coeffs))
	sbPlanes := make([]uint8, len(sbs))
	maxPlane := 0
	for si, sb := range sbs {
		var sbMax uint32
		for y := sb.Y0; y < sb.Y1; y++ {
			for x := sb.X0; x < sb.X1; x++ {
				i := y*w + x
				c := coeffs[i]
				if c < 0 {
					neg[i] = true
					c = -c
				}
				q[i] = uint32(c)
				if q[i] > sbMax {
					sbMax = q[i]
				}
			}
		}
		sbPlanes[si] = uint8(bitsFor(sbMax))
		if int(sbPlanes[si]) > maxPlane {
			maxPlane = int(sbPlanes[si])
		}
	}

	out := make([]byte, 0, w*h/2)
	out = append(out, losslessMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(w))
	out = binary.LittleEndian.AppendUint16(out, uint16(h))
	out = append(out, uint8(levels), uint8(maxPlane), uint8(len(sbs)))
	out = append(out, sbPlanes...)

	sigP := arith.NewProbs(sigContexts)
	refP := arith.NewProbs(refContexts)
	sig := make([]bool, len(coeffs))
	enc := arith.NewEncoder()
	for p := maxPlane - 1; p >= 0; p-- {
		for si, sb := range sbs {
			if int(sbPlanes[si]) <= p {
				continue
			}
			kind := int(sb.Kind)
			for y := sb.Y0; y < sb.Y1; y++ {
				for x := sb.X0; x < sb.X1; x++ {
					i := y*w + x
					bit := int(q[i] >> uint(p) & 1)
					if sig[i] {
						enc.Encode(&refP[kind], bit)
					} else {
						ctx := kind*4 + neighbourSig(sig, w, sb, x, y)
						enc.Encode(&sigP[ctx], bit)
						if bit == 1 {
							sign := 0
							if neg[i] {
								sign = 1
							}
							enc.EncodeBypass(sign)
							sig[i] = true
						}
					}
				}
			}
		}
	}
	return append(out, enc.Flush()...), nil
}

// DecodePlaneLossless reverses EncodePlaneLossless exactly (at 16-bit
// sample precision).
func DecodePlaneLossless(data []byte) ([]float32, int, int, error) {
	if len(data) < 11 || string(data[:4]) != losslessMagic {
		return nil, 0, 0, fmt.Errorf("codec: bad lossless magic or truncated header")
	}
	w := int(binary.LittleEndian.Uint16(data[4:]))
	h := int(binary.LittleEndian.Uint16(data[6:]))
	levels := int(data[8])
	maxPlane := int(data[9])
	nSb := int(data[10])
	if w <= 0 || h <= 0 {
		return nil, 0, 0, fmt.Errorf("codec: implausible lossless geometry %dx%d", w, h)
	}
	sbs := wavelet.Subbands(w, h, levels)
	if len(sbs) != nSb || len(data) < 11+nSb {
		return nil, 0, 0, fmt.Errorf("codec: lossless subband table mismatch")
	}
	sbPlanes := data[11 : 11+nSb]
	payload := data[11+nSb:]

	q := make([]uint32, w*h)
	neg := make([]bool, w*h)
	sig := make([]bool, w*h)
	sigP := arith.NewProbs(sigContexts)
	refP := arith.NewProbs(refContexts)
	dec := arith.NewDecoder(payload)
	for p := maxPlane - 1; p >= 0; p-- {
		for si, sb := range sbs {
			if int(sbPlanes[si]) <= p {
				continue
			}
			kind := int(sb.Kind)
			for y := sb.Y0; y < sb.Y1; y++ {
				for x := sb.X0; x < sb.X1; x++ {
					i := y*w + x
					if sig[i] {
						q[i] |= uint32(dec.Decode(&refP[kind])) << uint(p)
					} else {
						ctx := kind*4 + neighbourSig(sig, w, sb, x, y)
						if dec.Decode(&sigP[ctx]) == 1 {
							q[i] |= 1 << uint(p)
							neg[i] = dec.DecodeBypass() == 1
							sig[i] = true
						}
					}
				}
			}
		}
	}
	coeffs := make([]int32, w*h)
	for i := range coeffs {
		c := int32(q[i])
		if neg[i] {
			c = -c
		}
		coeffs[i] = c
	}
	wavelet.Inverse53(coeffs, w, h, levels)
	plane := make([]float32, w*h)
	for i, c := range coeffs {
		plane[i] = float32(c) / losslessScale
	}
	return plane, w, h, nil
}

// Quantize16 returns the 16-bit sample a [0,1] value maps to in lossless
// mode; equality of Quantize16 values is the lossless guarantee.
func Quantize16(v float32) uint16 {
	x := math.Round(float64(v) * losslessScale)
	if x < 0 {
		return 0
	}
	if x > losslessScale {
		return losslessScale
	}
	return uint16(x)
}
