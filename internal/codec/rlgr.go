package codec

// Adaptive Run-Length / Golomb-Rice (RLGR) entropy coding, the tiled
// profile's fast path. The coder follows the RLGR1 shape RemoteFX uses for
// its 64x64 tiles: a run mode that spends one bit per 2^k zeros when the
// recent past was sparse, and a Golomb-Rice mode for dense stretches, with
// both the run parameter k and the Rice parameter kr adapted symmetrically
// by encoder and decoder. Unlike the adaptive binary range coder in
// internal/arith it touches each coefficient once with shift/mask work
// only, which is what buys the tiled profile its single-thread headroom on
// the mostly-zero high-frequency subbands.
//
// Two deliberate deviations from the RemoteFX spec, both on the robustness
// path: Golomb-Rice codewords escape to a length-prefixed raw value after
// 16 unary ones (bounding any symbol to <64 bits, so hostile planes cannot
// blow up a codeword), and the bit reader returns zero bits past the end
// of the buffer (so a budget-truncated tile decodes its tail as zero
// coefficients instead of failing — mirroring arith.Decoder).

const (
	rlgrLSGR  = 3  // k parameters are tracked scaled by 1<<rlgrLSGR
	rlgrKPMax = 80 // cap on the scaled run parameter (k <= 10)
	rlgrKRMax = 80 // cap on the scaled Rice parameter (kr <= 10)
	rlgrUpGR  = 4  // run-mode k increment per complete run
	rlgrDnGR  = 6  // run-mode k decrement on a run terminator
	rlgrUQGR  = 3  // GR-mode k increment on a zero
	rlgrDQGR  = 3  // GR-mode k decrement on a nonzero

	rlgrEscapeQ = 16 // unary quotient at which a GR codeword escapes to raw
	rlgrInitKP  = 8  // initial scaled k and kr (k = kr = 1)

	// rlgrMaxMag bounds coefficient magnitudes accepted by the coder; the
	// tiled quantiser clamps to it so a hostile plane cannot manufacture
	// oversized codewords. 2^24 is far above anything the dead-zone
	// quantiser emits for in-range [0,1] planes.
	rlgrMaxMag = 1 << 24

	// rlgrMaxSymbolBytes bounds the bytes a single coefficient can append
	// (escape codeword plus run prefix, rounded up); the budget check in
	// the encode loop uses it as the stop margin.
	rlgrMaxSymbolBytes = 8
)

// bitWriter appends MSB-first bits to a byte slice.
type bitWriter struct {
	buf []byte
	cur uint64
	n   uint // bits buffered in cur, < 8 after any append
}

// writeBits appends the low nb bits of v (nb <= 32).
func (w *bitWriter) writeBits(v uint32, nb uint) {
	w.cur = w.cur<<nb | uint64(v)&(1<<nb-1)
	w.n += nb
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
}

// writeOnes appends q one bits.
func (w *bitWriter) writeOnes(q int) {
	for q > 24 {
		w.writeBits(1<<24-1, 24)
		q -= 24
	}
	if q > 0 {
		w.writeBits(1<<uint(q)-1, uint(q))
	}
}

// byteLen returns the emitted length in bytes, counting a partial byte.
func (w *bitWriter) byteLen() int {
	return len(w.buf) + int((w.n+7)/8)
}

// flush pads the trailing partial byte with zero bits and returns the buffer.
func (w *bitWriter) flush() []byte {
	if w.n > 0 {
		pad := 8 - w.n
		w.buf = append(w.buf, byte(w.cur<<pad))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// bitReader consumes MSB-first bits; reads past the end return zero bits.
type bitReader struct {
	data []byte
	pos  int
	cur  uint64
	n    uint
}

func (r *bitReader) fill() {
	for r.n <= 56 {
		var b byte
		if r.pos < len(r.data) {
			b = r.data[r.pos]
			r.pos++
		} else if r.n > 0 {
			break
		} else {
			r.n = 64 // fully drained: serve zeros without looping
			r.cur = 0
			return
		}
		r.cur = r.cur<<8 | uint64(b)
		r.n += 8
	}
}

// readBits consumes nb bits (nb <= 32) and returns them right-aligned.
func (r *bitReader) readBits(nb uint) uint32 {
	if r.n < nb {
		if r.pos >= len(r.data) {
			// Drained: remaining bits are zero.
			v := uint32(r.cur) << (nb - r.n) & (1<<nb - 1)
			r.cur, r.n = 0, 0
			return v
		}
		r.fill()
		if r.n < nb {
			v := uint32(r.cur) << (nb - r.n) & (1<<nb - 1)
			r.cur, r.n = 0, 0
			return v
		}
	}
	r.n -= nb
	return uint32(r.cur>>r.n) & (1<<nb - 1)
}

func (r *bitReader) readBit() uint32 { return r.readBits(1) }

// readUnary counts one bits up to max, consuming the terminating zero bit
// when fewer than max ones appear.
func (r *bitReader) readUnary(max int) int {
	q := 0
	for q < max {
		if r.readBit() == 0 {
			return q
		}
		q++
	}
	return q
}

// grPut emits the Golomb-Rice codeword for v and adapts *krp.
func grPut(w *bitWriter, v uint32, krp *int) {
	kr := uint(*krp >> rlgrLSGR)
	q := int(v >> kr)
	if q < rlgrEscapeQ {
		w.writeOnes(q)
		w.writeBits(0, 1)
		w.writeBits(v, kr)
	} else {
		w.writeOnes(rlgrEscapeQ)
		nb := bitLen32(v)
		w.writeBits(uint32(nb-1), 5)
		w.writeBits(v, uint(nb))
	}
	grAdapt(q, krp)
}

// grGet decodes one Golomb-Rice codeword and adapts *krp.
func grGet(r *bitReader, krp *int) uint32 {
	kr := uint(*krp >> rlgrLSGR)
	q := r.readUnary(rlgrEscapeQ)
	var v uint32
	if q < rlgrEscapeQ {
		v = uint32(q)<<kr | r.readBits(kr)
	} else {
		nb := uint(r.readBits(5)) + 1
		v = r.readBits(nb)
		q = int(v >> kr)
	}
	grAdapt(q, krp)
	return v
}

// grAdapt applies the shared Rice-parameter update for a quotient q.
func grAdapt(q int, krp *int) {
	switch {
	case q == 0:
		if *krp > 2 {
			*krp -= 2
		} else {
			*krp = 0
		}
	case q > 1:
		*krp += q
		if *krp > rlgrKRMax {
			*krp = rlgrKRMax
		}
	}
}

func bitLen32(v uint32) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// rlgrEncode appends the RLGR codestream for vals to dst and returns it.
// maxBytes > 0 bounds the emitted bytes: the encoder stops cleanly between
// symbols once the next could overflow the budget, and the decoder
// reconstructs the dropped tail as zeros. Magnitudes are clamped to
// rlgrMaxMag.
func rlgrEncode(dst []byte, vals []int32, maxBytes int) []byte {
	w := bitWriter{buf: dst}
	kp, krp := rlgrInitKP, rlgrInitKP
	i, n := 0, len(vals)
	for i < n {
		if maxBytes > 0 && w.byteLen()+rlgrMaxSymbolBytes > maxBytes {
			break
		}
		k := uint(kp >> rlgrLSGR)
		if k != 0 {
			// Run mode: emit the zero run before the next nonzero value.
			run := 0
			for i < n && vals[i] == 0 {
				run++
				i++
			}
			for run >= 1<<k {
				w.writeBits(0, 1)
				run -= 1 << k
				if kp += rlgrUpGR; kp > rlgrKPMax {
					kp = rlgrKPMax
				}
				k = uint(kp >> rlgrLSGR)
			}
			if i == n {
				// Trailing zeros: cover the remainder with complete-run
				// bits; the decoder stops at the coefficient count.
				for run > 0 {
					w.writeBits(0, 1)
					run -= 1 << k
					if kp += rlgrUpGR; kp > rlgrKPMax {
						kp = rlgrKPMax
					}
					k = uint(kp >> rlgrLSGR)
				}
				break
			}
			val := vals[i]
			i++
			w.writeBits(1, 1)
			w.writeBits(uint32(run), k)
			mag, sign := uint32(val), uint32(0)
			if val < 0 {
				mag, sign = uint32(-int64(val)), 1
			}
			if mag > rlgrMaxMag {
				mag = rlgrMaxMag
			}
			w.writeBits(sign, 1)
			grPut(&w, mag-1, &krp)
			if kp -= rlgrDnGR; kp < 0 {
				kp = 0
			}
		} else {
			// Golomb-Rice mode: code the value directly, sign folded into
			// the low bit (0 <-> 0, v>0 <-> 2v, v<0 <-> -2v-1).
			val := vals[i]
			i++
			var u uint32
			if val >= 0 {
				if uint32(val) > rlgrMaxMag {
					val = rlgrMaxMag
				}
				u = uint32(val) << 1
			} else {
				mag := uint32(-int64(val))
				if mag > rlgrMaxMag {
					mag = rlgrMaxMag
				}
				u = mag<<1 - 1
			}
			grPut(&w, u, &krp)
			if u == 0 {
				if kp += rlgrUQGR; kp > rlgrKPMax {
					kp = rlgrKPMax
				}
			} else {
				if kp -= rlgrDQGR; kp < 0 {
					kp = 0
				}
			}
		}
	}
	return w.flush()
}

// rlgrDecode reconstructs n coefficients from data into out (len(out) >= n
// required by the caller). Truncated or exhausted input yields zeros for
// the remainder; the function cannot fail on hostile bytes.
func rlgrDecode(out []int32, data []byte, n int) {
	r := bitReader{data: data}
	kp, krp := rlgrInitKP, rlgrInitKP
	i := 0
	for i < n {
		k := uint(kp >> rlgrLSGR)
		if k != 0 {
			if r.readBit() == 0 {
				// Complete run of 2^k zeros (clipped to the plane).
				run := 1 << k
				for ; run > 0 && i < n; run-- {
					out[i] = 0
					i++
				}
				if kp += rlgrUpGR; kp > rlgrKPMax {
					kp = rlgrKPMax
				}
				continue
			}
			run := int(r.readBits(k))
			for ; run > 0 && i < n; run-- {
				out[i] = 0
				i++
			}
			sign := r.readBit()
			mag := int64(grGet(&r, &krp)) + 1
			if mag > rlgrMaxMag {
				mag = rlgrMaxMag
			}
			if i < n {
				if sign != 0 {
					out[i] = int32(-mag)
				} else {
					out[i] = int32(mag)
				}
				i++
			}
			if kp -= rlgrDnGR; kp < 0 {
				kp = 0
			}
		} else {
			u := grGet(&r, &krp)
			if u > 2*rlgrMaxMag {
				u = 2 * rlgrMaxMag
			}
			if u&1 != 0 {
				out[i] = int32(-int64(u+1) / 2)
			} else {
				out[i] = int32(u / 2)
			}
			i++
			if u == 0 {
				if kp += rlgrUQGR; kp > rlgrKPMax {
					kp = rlgrKPMax
				}
			} else {
				if kp -= rlgrDQGR; kp < 0 {
					kp = 0
				}
			}
		}
	}
}
