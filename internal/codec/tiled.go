package codec

// The tiled profile ("EPT1") is the codec's second codestream format,
// following the RemoteFX/JPEG-2000 shape: the plane is cut into fixed
// square tiles (64x64 by default, the paper's §3 tile granularity), each
// tile is wavelet-lifted and entropy-coded independently with bounded
// per-tile scratch, and a tile-index table (offset+length per tile) up
// front lets a reader decode any sub-rectangle by touching only the tiles
// it intersects. Entropy coding is the RLGR fast path (rlgr.go) instead of
// the monolithic profile's adaptive arithmetic coder: one cheap pass per
// coefficient, which on the mostly-zero high-frequency subbands trades a
// little rate for a large constant-factor speedup and exposes
// embarrassing per-tile parallelism.
//
// Stream layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "EPT1"
//	4       2     width            (same offsets as EPC1/EPL1, so frame
//	6       2     height            dimension sniffing works unchanged)
//	8       1     requested DWT levels (clamped per tile geometry)
//	9       4     BaseStep (float32)
//	13      1     tile size in pixels
//	14      4     tile count (must equal the cover implied by w,h,tile)
//	18      8*n   tile index: {offset uint32, length uint32} per tile,
//	              row-major; offsets are absolute, payloads must follow
//	              the index, in order, without overlapping
//	...           tile payloads (RLGR codestreams; empty = all-zero tile)
//
// Rate control splits the plane budget across tiles proportionally to
// tile area; each tile's RLGR stream is cleanly truncated at its share
// (coarse-to-fine subband order, so dropped bits are the finest detail).
// Edge tiles are clamped, so any plane geometry the monolithic profile
// accepts works here too.

import (
	"encoding/binary"
	"math"
	"sync"

	"earthplus/internal/eperr"
	"earthplus/internal/raster"
	"earthplus/internal/wavelet"
)

const (
	tiledMagic  = "EPT1"
	tiledHdrLen = 18
	// tiledIndexEntry is the per-tile cost of the index table.
	tiledIndexEntry = 8
)

// IsTiled reports whether data carries the tiled codestream profile.
func IsTiled(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == tiledMagic
}

// tileScratch is the bounded per-tile working set: one tile's float
// coefficients and its linearised quantised values. Tiles are at most
// tile^2 samples, so pooled entries stay cache-sized.
type tileScratch struct {
	f32 []float32
	i32 []int32
}

var tileScratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch() *tileScratch { return tileScratchPool.Get().(*tileScratch) }

func putTileScratch(ts *tileScratch) { tileScratchPool.Put(ts) }

// tiledParsed is a validated EPT1 header plus the per-tile payload slices
// (views into the caller's buffer).
type tiledParsed struct {
	w, h     int
	tile     int
	levels   int
	baseStep float64
	cols     int
	rows     int
	payloads [][]byte
}

func (p *tiledParsed) nTiles() int { return p.cols * p.rows }

// parseTiled validates an EPT1 stream: header plausibility, tile count
// against the implied cover, and a tile index whose payloads all live
// inside the buffer, follow the index, and do not overlap.
func parseTiled(data []byte) (*tiledParsed, error) {
	if len(data) < tiledHdrLen || string(data[:4]) != tiledMagic {
		return nil, eperr.New(eperr.BadCodestream, "codec", "bad tiled magic or truncated header")
	}
	p := &tiledParsed{
		w:        int(binary.LittleEndian.Uint16(data[4:])),
		h:        int(binary.LittleEndian.Uint16(data[6:])),
		levels:   int(data[8]),
		baseStep: float64(math.Float32frombits(binary.LittleEndian.Uint32(data[9:]))),
		tile:     int(data[13]),
	}
	if p.w <= 0 || p.h <= 0 || p.w > 1<<15 || p.h > 1<<15 || p.baseStep <= 0 || p.tile <= 0 {
		return nil, eperr.New(eperr.BadCodestream, "codec",
			"implausible tiled header %dx%d tile %d step %v", p.w, p.h, p.tile, p.baseStep)
	}
	p.cols = raster.TileSpan(p.w, p.tile)
	p.rows = raster.TileSpan(p.h, p.tile)
	n := p.nTiles()
	if stored := int(binary.LittleEndian.Uint32(data[14:])); stored != n {
		return nil, eperr.New(eperr.BadCodestream, "codec",
			"tile count %d does not match %dx%d cover of %d", stored, p.w, p.h, n)
	}
	payloadStart := tiledHdrLen + tiledIndexEntry*n
	if len(data) < payloadStart {
		return nil, eperr.New(eperr.BadCodestream, "codec", "truncated tile index (%d tiles)", n)
	}
	p.payloads = make([][]byte, n)
	prevEnd := uint64(payloadStart)
	for t := 0; t < n; t++ {
		off := uint64(binary.LittleEndian.Uint32(data[tiledHdrLen+tiledIndexEntry*t:]))
		ln := uint64(binary.LittleEndian.Uint32(data[tiledHdrLen+tiledIndexEntry*t+4:]))
		if off < prevEnd || off+ln > uint64(len(data)) {
			return nil, eperr.New(eperr.BadCodestream, "codec",
				"tile %d payload [%d,%d) escapes or overlaps (stream %d bytes)", t, off, off+ln, len(data))
		}
		p.payloads[t] = data[off : off+ln : off+ln]
		prevEnd = off + ln
	}
	return p, nil
}

// tileBudgets splits a whole-plane byte budget across tiles proportionally
// to tile area, after the fixed header+index cost. A nil result means no
// rate control.
func tileBudgets(w, h, tile, budget int) ([]int, error) {
	if budget <= 0 {
		return nil, nil
	}
	cols, rows := raster.TileSpan(w, tile), raster.TileSpan(h, tile)
	n := cols * rows
	fixed := tiledHdrLen + tiledIndexEntry*n
	if budget < fixed {
		return nil, eperr.New(eperr.BudgetTooSmall, "codec",
			"budget %d bytes cannot hold the %d-byte tiled header and index", budget, fixed)
	}
	avail := budget - fixed
	out := make([]int, n)
	total := w * h
	for t := range out {
		x0, y0, x1, y1 := raster.ClampedTileBounds(w, h, tile, t)
		b := avail * ((x1 - x0) * (y1 - y0)) / total
		if b < 1 {
			b = 1 // a 1-byte floor keeps at least the coarsest run bits
		}
		out[t] = b
	}
	return out, nil
}

// encodeTile lifts, quantises and RLGR-codes one clamped tile of plane.
// An all-zero quantised tile returns nil (a zero-length payload).
func encodeTile(plane []float32, w int, x0, y0, x1, y1 int, reqLevels int, baseStep float64, budget int) []byte {
	tw, th := x1-x0, y1-y0
	n := tw * th
	ts := getTileScratch()
	defer putTileScratch(ts)
	ts.f32 = grow(ts.f32, n)
	for dy := 0; dy < th; dy++ {
		copy(ts.f32[dy*tw:(dy+1)*tw], plane[(y0+dy)*w+x0:(y0+dy)*w+x1])
	}
	lv := effectiveLevels(tw, th, reqLevels)
	wavelet.Forward97(ts.f32, tw, th, lv)
	g := geometryFor(tw, th, lv)
	norms := g.subbandNorms(tw, th, lv)

	// Quantise in float32: tiles are at most 2^16 samples and magnitudes
	// at most 2^24, both exactly representable, and the single-precision
	// multiply is the difference between this loop and the wavelet
	// dominating the per-tile cost. int32 conversion truncates toward
	// zero, which IS the dead-zone quantiser.
	ts.i32 = grow(ts.i32, n)
	idx := 0
	var orAcc int32
	for si := range g.sbs {
		sb := &g.sbs[si]
		inv := float32(norms[si] / baseStep)
		const lim = float32(rlgrMaxMag)
		for y := sb.Y0; y < sb.Y1; y++ {
			row := ts.f32[y*tw+sb.X0 : y*tw+sb.X1]
			out := ts.i32[idx : idx+len(row)]
			idx += len(row)
			for i, cf := range row {
				x := cf * inv
				var q int32
				if x < lim && x > -lim {
					q = int32(x)
				} else if x >= lim {
					q = rlgrMaxMag
				} else if x <= -lim {
					q = -rlgrMaxMag
				}
				// (NaN fails every comparison and quantises to zero, so
				// hostile planes stay deterministic.)
				out[i] = q
				orAcc |= q
			}
		}
	}
	if orAcc == 0 {
		return nil
	}
	return rlgrEncode(nil, ts.i32[:idx], budget)
}

// decodeTileInto reconstructs one tile payload into dst at (x0,y0), where
// dst is a row-major dstW-wide plane. Only samples inside the given clip
// rectangle [cx0,cx1) x [cy0,cy1) (plane coordinates) are written, offset
// by (-ox, -oy): region decodes pass their output origin so tiles land in
// a cropped plane.
func decodeTileInto(dst []float32, dstW int, x0, y0, x1, y1 int, payload []byte,
	reqLevels int, baseStep float64, cx0, cy0, cx1, cy1, ox, oy int) {
	tw, th := x1-x0, y1-y0
	n := tw * th
	ts := getTileScratch()
	defer putTileScratch(ts)
	ts.f32 = grow(ts.f32, n)
	out := ts.f32
	if len(payload) == 0 {
		clear(out)
	} else {
		lv := effectiveLevels(tw, th, reqLevels)
		g := geometryFor(tw, th, lv)
		norms := g.subbandNorms(tw, th, lv)
		ts.i32 = grow(ts.i32, n)
		rlgrDecode(ts.i32, payload, n)
		idx := 0
		for si := range g.sbs {
			sb := &g.sbs[si]
			step := float32(baseStep / norms[si])
			half := 0.5 * step
			for y := sb.Y0; y < sb.Y1; y++ {
				orow := out[y*tw+sb.X0 : y*tw+sb.X1]
				qrow := ts.i32[idx : idx+len(orow)]
				idx += len(orow)
				for x, q := range qrow {
					switch {
					case q == 0:
						orow[x] = 0
					case q > 0:
						// Reconstruct at the midpoint of the dead-zone
						// quantiser's residual interval.
						orow[x] = float32(q)*step + half
					default:
						orow[x] = float32(q)*step - half
					}
				}
			}
		}
		wavelet.Inverse97(out, tw, th, lv)
	}
	wy0, wy1 := max(y0, cy0), min(y1, cy1)
	wx0, wx1 := max(x0, cx0), min(x1, cx1)
	for y := wy0; y < wy1; y++ {
		copy(dst[(y-oy)*dstW+(wx0-ox):(y-oy)*dstW+(wx1-ox)], out[(y-y0)*tw+(wx0-x0):(y-y0)*tw+(wx1-x0)])
	}
}

// assembleTiled builds the EPT1 stream from per-tile payloads.
func assembleTiled(w, h, tile, levels int, baseStep float64, tiles [][]byte) []byte {
	n := len(tiles)
	size := tiledHdrLen + tiledIndexEntry*n
	for _, t := range tiles {
		size += len(t)
	}
	out := make([]byte, 0, size)
	out = append(out, tiledMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(w))
	out = binary.LittleEndian.AppendUint16(out, uint16(h))
	out = append(out, uint8(levels))
	out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(baseStep)))
	out = append(out, uint8(tile))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	off := uint32(tiledHdrLen + tiledIndexEntry*n)
	for _, t := range tiles {
		out = binary.LittleEndian.AppendUint32(out, off)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(t)))
		off += uint32(len(t))
	}
	for _, t := range tiles {
		out = append(out, t...)
	}
	return out
}

// tiledGeometry validates an encode geometry and resolves the tile size.
func tiledGeometry(plane []float32, w, h int, opt Options) (tile int, err error) {
	if len(plane) != w*h {
		return 0, eperr.New(eperr.BadImage, "codec", "plane length %d != %dx%d", len(plane), w, h)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return 0, eperr.New(eperr.BadImage, "codec", "unsupported dimensions %dx%d", w, h)
	}
	if opt.BaseStep <= 0 {
		return 0, eperr.New(eperr.BadConfig, "codec", "BaseStep %v must be positive", opt.BaseStep)
	}
	tile = opt.TileSize
	if tile == 0 {
		tile = raster.DefaultTileSize
	}
	if tile < 0 || tile > 255 {
		return 0, eperr.New(eperr.BadConfig, "codec", "tile size %d out of range [1,255]", tile)
	}
	return tile, nil
}

// TiledEncodePlane compresses a row-major w x h float32 plane into the
// tiled (EPT1) profile. Each tile is coded independently on a bounded
// worker pool of Workers(opt.Parallelism, tiles) goroutines; the output is
// assembled in tile order, so the stream is byte-identical at any worker
// count. opt.BudgetBytes splits across tiles by area.
func TiledEncodePlane(plane []float32, w, h int, opt Options) ([]byte, error) {
	tile, err := tiledGeometry(plane, w, h, opt)
	if err != nil {
		return nil, err
	}
	budgets, err := tileBudgets(w, h, tile, opt.BudgetBytes)
	if err != nil {
		return nil, err
	}
	cols, rows := raster.TileSpan(w, tile), raster.TileSpan(h, tile)
	n := cols * rows
	tiles := make([][]byte, n)
	ParallelBands(opt.Parallelism, n, func(t int) {
		x0, y0, x1, y1 := raster.ClampedTileBounds(w, h, tile, t)
		b := 0
		if budgets != nil {
			b = budgets[t]
		}
		tiles[t] = encodeTile(plane, w, x0, y0, x1, y1, opt.Levels, opt.BaseStep, b)
	})
	return assembleTiled(w, h, tile, opt.Levels, opt.BaseStep, tiles), nil
}

// TiledDecodePlane reconstructs a plane from a tiled codestream.
func TiledDecodePlane(data []byte) ([]float32, int, int, error) {
	return tiledDecodePlane(data, nil)
}

func tiledDecodePlane(data []byte, buf []float32) ([]float32, int, int, error) {
	p, err := parseTiled(data)
	if err != nil {
		return nil, 0, 0, err
	}
	n := p.w * p.h
	if MaxDecodePixels > 0 && n > MaxDecodePixels {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec",
			"%dx%d plane exceeds MaxDecodePixels %d", p.w, p.h, MaxDecodePixels)
	}
	var out []float32
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]float32, n)
	}
	ParallelBands(0, p.nTiles(), func(t int) {
		x0, y0, x1, y1 := raster.ClampedTileBounds(p.w, p.h, p.tile, t)
		decodeTileInto(out, p.w, x0, y0, x1, y1, p.payloads[t],
			p.levels, p.baseStep, 0, 0, p.w, p.h, 0, 0)
	})
	return out, p.w, p.h, nil
}

// DecodeRegion reconstructs the sub-rectangle [x,x+rw) x [y,y+rh) of the
// plane in data, clipped to the plane bounds, and returns the cropped
// row-major plane with its dimensions. For tiled streams only the tiles
// intersecting the rectangle are decoded — O(tiles touched), independent
// of the full plane size; monolithic and lossless streams fall back to a
// full decode plus crop.
func DecodeRegion(data []byte, x, y, rw, rh int) ([]float32, int, int, error) {
	if rw <= 0 || rh <= 0 {
		return nil, 0, 0, eperr.New(eperr.BadImage, "codec", "empty region %dx%d", rw, rh)
	}
	if !IsTiled(data) {
		var (
			full []float32
			w, h int
			err  error
		)
		if len(data) >= 4 && string(data[:4]) == losslessMagic {
			full, w, h, err = DecodePlaneLossless(data)
		} else {
			full, w, h, err = decodePlane(data, 0, nil)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		cx0, cy0 := max(x, 0), max(y, 0)
		cx1, cy1 := min(x+rw, w), min(y+rh, h)
		if cx0 >= cx1 || cy0 >= cy1 {
			return nil, 0, 0, eperr.New(eperr.BadImage, "codec",
				"region (%d,%d)+%dx%d outside %dx%d plane", x, y, rw, rh, w, h)
		}
		cw, ch := cx1-cx0, cy1-cy0
		out := make([]float32, cw*ch)
		for dy := 0; dy < ch; dy++ {
			copy(out[dy*cw:(dy+1)*cw], full[(cy0+dy)*w+cx0:(cy0+dy)*w+cx1])
		}
		return out, cw, ch, nil
	}
	p, err := parseTiled(data)
	if err != nil {
		return nil, 0, 0, err
	}
	cx0, cy0 := max(x, 0), max(y, 0)
	cx1, cy1 := min(x+rw, p.w), min(y+rh, p.h)
	if cx0 >= cx1 || cy0 >= cy1 {
		return nil, 0, 0, eperr.New(eperr.BadImage, "codec",
			"region (%d,%d)+%dx%d outside %dx%d plane", x, y, rw, rh, p.w, p.h)
	}
	cw, ch := cx1-cx0, cy1-cy0
	if MaxDecodePixels > 0 && cw*ch > MaxDecodePixels {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec",
			"%dx%d region exceeds MaxDecodePixels %d", cw, ch, MaxDecodePixels)
	}
	out := make([]float32, cw*ch)
	c0, r0, c1, r1 := raster.TileRange(p.w, p.h, p.tile, cx0, cy0, cx1, cy1)
	nt := (c1 - c0) * (r1 - r0)
	ParallelBands(0, nt, func(i int) {
		c := c0 + i%(c1-c0)
		r := r0 + i/(c1-c0)
		t := r*p.cols + c
		x0, y0, x1, y1 := raster.ClampedTileBounds(p.w, p.h, p.tile, t)
		decodeTileInto(out, cw, x0, y0, x1, y1, p.payloads[t],
			p.levels, p.baseStep, cx0, cy0, cx1, cy1, cx0, cy0)
	})
	return out, cw, ch, nil
}

// RegionTiles reports how many tiles of the stream a region decode of the
// given rectangle touches, and the stream's total tile count. Monolithic
// streams count as a single tile covering the plane.
func RegionTiles(data []byte, x, y, rw, rh int) (touched, total int, err error) {
	if !IsTiled(data) {
		return 1, 1, nil
	}
	p, err := parseTiled(data)
	if err != nil {
		return 0, 0, err
	}
	c0, r0, c1, r1 := raster.TileRange(p.w, p.h, p.tile, x, y, x+rw, y+rh)
	return (c1 - c0) * (r1 - r0), p.nTiles(), nil
}

// TiledSplicePlane re-encodes only the tiles of old that intersect a tile
// marked in touched, taking their samples from plane (the full updated
// plane, matching old's geometry); every other tile's payload bytes are
// reused verbatim. touched may use any tile size over the same plane
// (change masks run at the detection grid, the codestream at the codec
// grid). opt must carry the rate-control parameters of the original
// encode so respliced tiles get the same per-tile budget.
func TiledSplicePlane(old []byte, plane []float32, touched *raster.TileMask, opt Options) ([]byte, error) {
	p, err := parseTiled(old)
	if err != nil {
		return nil, err
	}
	if len(plane) != p.w*p.h {
		return nil, eperr.New(eperr.BadImage, "codec", "plane length %d != %dx%d", len(plane), p.w, p.h)
	}
	g := touched.Grid
	if g.ImageW != p.w || g.ImageH != p.h {
		return nil, eperr.New(eperr.BadImage, "codec",
			"touched mask grid %dx%d does not match stream %dx%d", g.ImageW, g.ImageH, p.w, p.h)
	}
	// Project the touched mask onto the codec tile grid.
	n := p.nTiles()
	redo := make([]bool, n)
	for t, set := range touched.Set {
		if !set {
			continue
		}
		mx0, my0, mx1, my1 := g.Bounds(t)
		c0, r0, c1, r1 := raster.TileRange(p.w, p.h, p.tile, mx0, my0, mx1, my1)
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				redo[r*p.cols+c] = true
			}
		}
	}
	var budgets []int
	if opt.BudgetBytes > 0 {
		if budgets, err = tileBudgets(p.w, p.h, p.tile, opt.BudgetBytes); err != nil {
			return nil, err
		}
	}
	tiles := make([][]byte, n)
	ParallelBands(opt.Parallelism, n, func(t int) {
		if !redo[t] {
			tiles[t] = p.payloads[t]
			return
		}
		x0, y0, x1, y1 := raster.ClampedTileBounds(p.w, p.h, p.tile, t)
		b := 0
		if budgets != nil {
			b = budgets[t]
		}
		tiles[t] = encodeTile(plane, p.w, x0, y0, x1, y1, p.levels, p.baseStep, b)
	})
	return assembleTiled(p.w, p.h, p.tile, p.levels, p.baseStep, tiles), nil
}
