package codec

import (
	"testing"
	"testing/quick"

	"earthplus/internal/noise"
)

func TestLosslessRoundTripExact(t *testing.T) {
	for _, dim := range []struct{ w, h int }{{64, 64}, {37, 23}, {16, 128}} {
		plane := testPlane(uint64(dim.w), dim.w, dim.h)
		data, err := EncodePlaneLossless(plane, dim.w, dim.h, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, gw, gh, err := DecodePlaneLossless(data)
		if err != nil {
			t.Fatal(err)
		}
		if gw != dim.w || gh != dim.h {
			t.Fatalf("geometry %dx%d", gw, gh)
		}
		for i := range plane {
			if Quantize16(got[i]) != Quantize16(plane[i]) {
				t.Fatalf("%dx%d: sample %d not exact: %v vs %v", dim.w, dim.h, i, got[i], plane[i])
			}
		}
	}
}

func TestLosslessCompressesSmoothContent(t *testing.T) {
	const w, h = 128, 128
	plane := make([]float32, w*h)
	noise.New(41).FillFBM(plane, w, h, 3, 3)
	data, err := EncodePlaneLossless(plane, w, h, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw := w * h * 2 // 16-bit samples
	if len(data) >= raw {
		t.Fatalf("lossless stream %d bytes >= raw %d", len(data), raw)
	}
	t.Logf("lossless ratio on smooth content: %.2fx", float64(raw)/float64(len(data)))
}

func TestLosslessAllZeroAndConstant(t *testing.T) {
	const w, h = 32, 32
	data, err := EncodePlaneLossless(make([]float32, w*h), w, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := DecodePlaneLossless(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero plane sample %d = %v", i, v)
		}
	}
	cst := make([]float32, w*h)
	for i := range cst {
		cst[i] = 0.5
	}
	data, err = EncodePlaneLossless(cst, w, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 700 {
		t.Fatalf("constant plane cost %d bytes", len(data))
	}
}

func TestLosslessRejectsBadInput(t *testing.T) {
	if _, err := EncodePlaneLossless(make([]float32, 7), 4, 4, 3); err == nil {
		t.Fatal("expected length error")
	}
	if _, _, _, err := DecodePlaneLossless([]byte("bogus")); err == nil {
		t.Fatal("expected magic error")
	}
	plane := testPlane(3, 16, 16)
	data, _ := EncodePlaneLossless(plane, 16, 16, 3)
	if _, _, _, err := DecodePlaneLossless(data[:9]); err == nil {
		t.Fatal("expected truncated-header error")
	}
}

// Property: exactness holds for arbitrary random content, including values
// outside [0,1] (clamped at the 16-bit quantisation).
func TestLosslessExactnessProperty(t *testing.T) {
	f := func(seed uint64, wRaw, hRaw uint8) bool {
		w := int(wRaw%40) + 8
		h := int(hRaw%40) + 8
		src := noise.New(seed)
		plane := make([]float32, w*h)
		for i := range plane {
			plane[i] = float32(src.Uniform(1, int64(i))*1.4 - 0.2)
		}
		data, err := EncodePlaneLossless(plane, w, h, 4)
		if err != nil {
			return false
		}
		got, _, _, err := DecodePlaneLossless(data)
		if err != nil {
			return false
		}
		for i := range plane {
			if Quantize16(got[i]) != Quantize16(plane[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantize16Bounds(t *testing.T) {
	if Quantize16(-0.5) != 0 || Quantize16(1.5) != 65535 {
		t.Fatal("clamping broken")
	}
	if Quantize16(0.5) != 32768 {
		t.Fatalf("midpoint = %d", Quantize16(0.5))
	}
}

func BenchmarkEncodeLossless128(b *testing.B) {
	plane := testPlane(42, 128, 128)
	b.SetBytes(128 * 128 * 2)
	for i := 0; i < b.N; i++ {
		if _, err := EncodePlaneLossless(plane, 128, 128, 5); err != nil {
			b.Fatal(err)
		}
	}
}
