// Package codec implements the layered wavelet image codec used for every
// encode in the reproduction: on-board encoding of changed tiles, reference
// compression for the uplink, and the baselines' whole-image encoding.
//
// The design mirrors the properties Earth+ needs from JPEG-2000 (§5):
//
//   - CDF 9/7 wavelet transform with dead-zone quantisation,
//   - embedded bit-plane coding with an adaptive binary arithmetic coder,
//     so a byte budget (the paper's bits-per-pixel knob γ) simply truncates
//     the stream at the best available point,
//   - quality layers — one per bit plane — so the ground can decode fewer
//     layers when the downlink degrades ("layered codec", §5),
//   - region-of-interest encoding by zeroing non-ROI tiles, matching the
//     paper's "select changed tiles as region-of-interest" strategy.
//
// The implementation is built for the on-board compute envelope: all
// per-call scratch state is pooled (steady-state encodes allocate only the
// returned codestream), the bit-plane scan skips insignificant rows in
// bulk, sign bits travel as batched bypass bits, and multi-band images are
// coded by a bounded worker pool (see Options.Parallelism and the package
// Parallelism default).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"earthplus/internal/eperr"
	"earthplus/internal/raster"
	"earthplus/internal/wavelet"
)

// Options controls one plane encode.
type Options struct {
	// Levels is the number of DWT decomposition levels. It is clamped so
	// the coarsest LL band keeps at least 4 samples per axis.
	Levels int
	// BaseStep is the finest quantiser step in image-domain units. The
	// per-subband step is BaseStep divided by the subband's synthesis
	// norm, equalising image-domain error across subbands.
	BaseStep float64
	// BudgetBytes, when positive, truncates the embedded stream once the
	// codestream reaches the budget. Zero means encode every bit plane.
	// The accounting is exact: the emitted codestream, including header
	// and layer table, never exceeds the budget (provided the budget
	// covers at least the fixed header).
	BudgetBytes int
	// Parallelism bounds the number of bands EncodeImage and the ROI
	// helpers code concurrently — and, under the tiled profile, the number
	// of tiles coded concurrently within one plane. Zero falls back to the
	// package-level Parallelism default, which itself defaults to
	// GOMAXPROCS.
	Parallelism int
	// Tiled routes EncodePlane through the tiled (EPT1) profile: fixed
	// square tiles coded independently with the RLGR fast path, a
	// tile-index table for region decode, and per-tile rate control. Every
	// decoder in the package sniffs the profile from the stream magic, so
	// readers need no flag.
	Tiled bool
	// TileSize is the tiled profile's tile edge in pixels; zero selects
	// raster.DefaultTileSize (64, the paper's tile granularity).
	TileSize int
}

// DefaultOptions returns the options used throughout the experiments.
func DefaultOptions() Options {
	return Options{Levels: 5, BaseStep: 1.0 / 2048}
}

// BudgetForBPP converts a bits-per-pixel target (the paper's γ) into a byte
// budget for a w x h plane.
func BudgetForBPP(bpp float64, w, h int) int {
	return int(bpp * float64(w) * float64(h) / 8)
}

// MinBudgetBytes is the smallest per-band byte budget any call site may
// request: enough for the fixed codestream header plus at least one coded
// layer at every geometry the encoder accepts. Rate-control floors across
// the stack (ROI downlink encodes, reference uplink encodes, the public
// API's per-band validation) all clamp to this one constant instead of
// re-inventing the codec's minimum-budget notion locally.
const MinBudgetBytes = 64

const (
	codecMagic  = "EPC1"
	maxQBits    = 30
	sigContexts = 16 // 4 subband kinds x 4 neighbour-significance counts
	refContexts = 4  // per subband kind
)

// MaxDecodePixels bounds the plane size the decoders will reconstruct. A
// codestream header is a few dozen bytes however large a plane it claims,
// so without a bound a corrupt or hostile stream can demand gigabytes of
// scratch and seconds of inverse-transform work. The default admits every
// geometry the encoder accepts up to 8192x8192; operators decoding from
// untrusted links can tighten it, and 0 disables the check entirely.
var MaxDecodePixels = 1 << 26

// Parallelism is the package-wide default for the number of bands encoded
// or decoded concurrently when Options.Parallelism is zero. Values <= 0
// mean GOMAXPROCS. It exists so whole-constellation simulations can turn
// one knob (earthplus-bench -parallel) without threading an option through
// every call site.
var Parallelism int

// Workers resolves a requested parallelism (0 = package default) against n
// independent band tasks.
func Workers(requested, n int) int {
	p := requested
	if p <= 0 {
		p = Parallelism
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ParallelBands runs fn(b) for every band index in [0, n) on a bounded
// worker pool of Workers(requested, n) goroutines. fn must be safe to call
// concurrently for distinct b.
func ParallelBands(requested, n int, fn func(b int)) {
	w := Workers(requested, n)
	if w <= 1 {
		for b := 0; b < n; b++ {
			fn(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= n {
					return
				}
				fn(b)
			}
		}()
	}
	wg.Wait()
}

// geometry is the per-(w,h,levels) immutable decomposition description: the
// subband list, the row-offset table of the bit-plane coder's significance
// counters, and (lazily, since only the lossy path needs them) the subband
// synthesis norms. Computing the norms costs one inverse transform per
// subband, so geometries are cached for the life of the process.
type geometry struct {
	sbs      []wavelet.Subband
	rowOff   []int32
	rowTotal int
	normOnce sync.Once
	norms    []float64
}

var geomCache sync.Map // geomKey -> *geometry

type geomKey struct{ w, h, levels int }

func geometryFor(w, h, levels int) *geometry {
	key := geomKey{w, h, levels}
	if v, ok := geomCache.Load(key); ok {
		return v.(*geometry)
	}
	sbs := wavelet.Subbands(w, h, levels)
	g := &geometry{sbs: sbs, rowOff: make([]int32, len(sbs))}
	rows := 0
	for i, sb := range sbs {
		g.rowOff[i] = int32(rows)
		rows += sb.Height()
	}
	g.rowTotal = rows
	actual, _ := geomCache.LoadOrStore(key, g)
	return actual.(*geometry)
}

// subbandNorms returns the memoised synthesis norms for this geometry.
func (g *geometry) subbandNorms(w, h, levels int) []float64 {
	g.normOnce.Do(func() {
		norms := make([]float64, len(g.sbs))
		for i, sb := range g.sbs {
			norms[i] = wavelet.SynthesisNorm(w, h, levels, sb)
		}
		g.norms = norms
	})
	return g.norms
}

// effectiveLevels clamps the requested level count so the coarsest LL band
// stays at least 4 samples wide/tall (or 0 levels for tiny planes).
func effectiveLevels(w, h, requested int) int {
	l := 0
	for l < requested && w >= 8 && h >= 8 {
		w, h = (w+1)/2, (h+1)/2
		l++
	}
	return l
}

// EncodePlane compresses a row-major w x h float32 plane and returns the
// codestream. Values are expected in roughly [0,1]; anything finite works.
// opt.Tiled selects the tiled (EPT1) profile; the default remains the
// monolithic profile, byte-for-byte.
func EncodePlane(plane []float32, w, h int, opt Options) ([]byte, error) {
	if opt.Tiled {
		return TiledEncodePlane(plane, w, h, opt)
	}
	if len(plane) != w*h {
		return nil, eperr.New(eperr.BadImage, "codec", "plane length %d != %dx%d", len(plane), w, h)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, eperr.New(eperr.BadImage, "codec", "unsupported dimensions %dx%d", w, h)
	}
	if opt.BaseStep <= 0 {
		return nil, eperr.New(eperr.BadConfig, "codec", "BaseStep %v must be positive", opt.BaseStep)
	}
	levels := effectiveLevels(w, h, opt.Levels)
	g := geometryFor(w, h, levels)
	norms := g.subbandNorms(w, h, levels)
	n := w * h

	s := getScratch()
	defer s.release()
	s.f32 = grow(s.f32, n)
	coeffs := s.f32
	copy(coeffs, plane)
	wavelet.Forward97(coeffs, w, h, levels)

	// Dead-zone quantisation into magnitude+sign.
	s.q = grow(s.q, n)
	s.neg = grow(s.neg, n)
	s.sbPlanes = grow(s.sbPlanes, len(g.sbs))
	maxPlane := 0
	for si := range g.sbs {
		sb := &g.sbs[si]
		inv := norms[si] / opt.BaseStep // 1/step
		var sbMax uint32
		for y := sb.Y0; y < sb.Y1; y++ {
			row := coeffs[y*w+sb.X0 : y*w+sb.X1]
			qrow := s.q[y*w+sb.X0 : y*w+sb.X1]
			nrow := s.neg[y*w+sb.X0 : y*w+sb.X1]
			for x, cf := range row {
				c := float64(cf)
				isNeg := c < 0
				if isNeg {
					c = -c
				}
				nrow[x] = isNeg
				v := uint64(c * inv)
				if v > (1<<maxQBits)-1 {
					v = (1 << maxQBits) - 1
				}
				qv := uint32(v)
				qrow[x] = qv
				if qv > sbMax {
					sbMax = qv
				}
			}
		}
		s.sbPlanes[si] = uint8(bitsFor(sbMax))
		if int(s.sbPlanes[si]) > maxPlane {
			maxPlane = int(s.sbPlanes[si])
		}
	}

	// Header (layer table appended after encoding). The header is at most
	// 15 + 3*levels+1 bytes, which fits the stack buffer for every legal
	// geometry.
	var hdrArr [64]byte
	hdr := append(hdrArr[:0], codecMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(w))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(h))
	hdr = append(hdr, uint8(levels))
	hdr = binary.LittleEndian.AppendUint32(hdr, math.Float32bits(float32(opt.BaseStep)))
	hdr = append(hdr, uint8(maxPlane), uint8(len(g.sbs)))
	hdr = append(hdr, s.sbPlanes...)

	sigP, refP := s.probs()
	s.sig = grow(s.sig, n)
	clear(s.sig)
	s.rowSig = grow(s.rowSig, g.rowTotal)
	clear(s.rowSig)
	pc := planeCoder{
		w: w, sbs: g.sbs, sbPlanes: s.sbPlanes, rowOff: g.rowOff,
		q: s.q, neg: s.neg, sig: s.sig, rowSig: s.rowSig,
		pend: s.pend[:0], sigP: sigP, refP: refP,
	}

	s.layers = s.layers[:0]
	s.payload = s.payload[:0]
	fixed := len(hdr) + 1 // +1 for the layer-count byte
	if opt.BudgetBytes > 0 && opt.BudgetBytes < fixed {
		return nil, eperr.New(eperr.BudgetTooSmall, "codec",
			"budget %d bytes cannot hold the %d-byte codestream header", opt.BudgetBytes, fixed)
	}
	enc := &s.enc
	truncated := false
	for p := maxPlane - 1; p >= 0 && !truncated; p-- {
		limit := 0
		if opt.BudgetBytes > 0 {
			// Exact rate control: whatever this layer flushes to, plus its
			// 8-byte table entry, plus everything already committed, must
			// stay within the budget.
			limit = opt.BudgetBytes - fixed - 8*(len(s.layers)+1) - len(s.payload)
			if limit <= 5+budgetMargin { // 5 = empty-stream flush tail
				break
			}
		}
		enc.Reset(s.encBuf)
		symbols, trunc := pc.encodePass(enc, p, limit)
		truncated = trunc
		pl := enc.Flush()
		s.encBuf = pl
		if symbols > 0 {
			s.layers = append(s.layers, layerMeta{bytes: uint32(len(pl)), symbols: symbols})
			s.payload = append(s.payload, pl...)
		}
	}
	s.pend = pc.pend

	out := make([]byte, 0, fixed+8*len(s.layers)+len(s.payload))
	out = append(out, hdr...)
	out = append(out, uint8(len(s.layers)))
	for _, l := range s.layers {
		out = binary.LittleEndian.AppendUint32(out, l.bytes)
		out = binary.LittleEndian.AppendUint32(out, l.symbols)
	}
	out = append(out, s.payload...)
	return out, nil
}

// bitsFor returns the number of bits needed to represent v (0 -> 0).
func bitsFor(v uint32) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// Info describes a parsed codestream header.
type Info struct {
	W, H     int
	Levels   int
	BaseStep float64
	MaxPlane int
	NLayers  int
	// LayerBytes holds each quality layer's payload size; truncating the
	// decode after k layers reads only the first k payloads.
	LayerBytes []int
	// Tiled reports the tiled (EPT1) profile; TileSize and NTiles then
	// describe its grid. Tiled streams carry no quality layers, so
	// MaxPlane, NLayers and LayerBytes stay zero.
	Tiled    bool
	TileSize int
	NTiles   int
}

type parsed struct {
	Info
	sbPlanes []uint8
	symbols  []uint32
	payloads [][]byte
}

// Parse validates a codestream and returns its header description. Both
// the monolithic and tiled profiles are recognised.
func Parse(data []byte) (Info, error) {
	if IsTiled(data) {
		tp, err := parseTiled(data)
		if err != nil {
			return Info{}, err
		}
		return Info{
			W: tp.w, H: tp.h, Levels: tp.levels, BaseStep: tp.baseStep,
			Tiled: true, TileSize: tp.tile, NTiles: tp.nTiles(),
		}, nil
	}
	p := new(parsed)
	if err := parseInto(p, data); err != nil {
		return Info{}, err
	}
	return p.Info, nil
}

// parseInto validates data and fills p, reusing p's slices so a pooled
// parsed can serve many decodes without allocating.
func parseInto(p *parsed, data []byte) error {
	if len(data) < 18 || string(data[:4]) != codecMagic {
		return eperr.New(eperr.BadCodestream, "codec", "bad magic or truncated header")
	}
	p.W = int(binary.LittleEndian.Uint16(data[4:]))
	p.H = int(binary.LittleEndian.Uint16(data[6:]))
	p.Levels = int(data[8])
	p.BaseStep = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[9:])))
	p.MaxPlane = int(data[13])
	nSb := int(data[14])
	if p.W <= 0 || p.H <= 0 || p.W > 1<<15 || p.H > 1<<15 || p.BaseStep <= 0 {
		return eperr.New(eperr.BadCodestream, "codec", "implausible header %dx%d step %v", p.W, p.H, p.BaseStep)
	}
	// The encoder always clamps the level count to the geometry and the
	// plane count to the quantiser width; enforce both so corrupt headers
	// cannot demand absurd decode work.
	if p.Levels != effectiveLevels(p.W, p.H, p.Levels) {
		return eperr.New(eperr.BadCodestream, "codec", "implausible level count %d for %dx%d", p.Levels, p.W, p.H)
	}
	if p.MaxPlane > maxQBits+1 {
		return eperr.New(eperr.BadCodestream, "codec", "implausible plane count %d", p.MaxPlane)
	}
	off := 15
	if len(data) < off+nSb+1 {
		return eperr.New(eperr.BadCodestream, "codec", "truncated subband table")
	}
	p.sbPlanes = append(p.sbPlanes[:0], data[off:off+nSb]...)
	for _, sp := range p.sbPlanes {
		if int(sp) > p.MaxPlane {
			return eperr.New(eperr.BadCodestream, "codec", "subband plane count %d exceeds stream maximum %d", sp, p.MaxPlane)
		}
	}
	off += nSb
	p.NLayers = int(data[off])
	off++
	// One quality layer per bit plane, and no layer can carry more scan
	// symbols than the plane has samples — anything else is corruption,
	// and rejecting it here bounds the decoder's work on hostile input.
	if p.NLayers > p.MaxPlane {
		return eperr.New(eperr.BadCodestream, "codec", "%d layers for %d bit planes", p.NLayers, p.MaxPlane)
	}
	if len(data) < off+8*p.NLayers {
		return eperr.New(eperr.BadCodestream, "codec", "truncated layer table")
	}
	p.LayerBytes = grow(p.LayerBytes, p.NLayers)
	p.symbols = grow(p.symbols, p.NLayers)
	p.payloads = grow(p.payloads, p.NLayers)
	for i := 0; i < p.NLayers; i++ {
		p.LayerBytes[i] = int(binary.LittleEndian.Uint32(data[off:]))
		p.symbols[i] = binary.LittleEndian.Uint32(data[off+4:])
		if int64(p.symbols[i]) > int64(p.W)*int64(p.H) {
			return eperr.New(eperr.BadCodestream, "codec", "layer %d claims %d symbols for %dx%d", i, p.symbols[i], p.W, p.H)
		}
		off += 8
	}
	for i := 0; i < p.NLayers; i++ {
		if len(data) < off+p.LayerBytes[i] {
			return eperr.New(eperr.BadCodestream, "codec", "truncated layer %d payload", i)
		}
		p.payloads[i] = data[off : off+p.LayerBytes[i]]
		off += p.LayerBytes[i]
	}
	// The geometry is cached, so this count check costs nothing after the
	// first stream of a given shape.
	if len(geometryFor(p.W, p.H, p.Levels).sbs) != nSb {
		return eperr.New(eperr.BadCodestream, "codec", "subband count %d does not match geometry", nSb)
	}
	return nil
}

// DecodePlane reconstructs a plane from a codestream. maxLayers <= 0 (or
// beyond the stream's layer count) decodes every layer; smaller values give
// the layered codec's reduced-quality renditions.
func DecodePlane(data []byte, maxLayers int) ([]float32, int, int, error) {
	return decodePlane(data, maxLayers, nil)
}

// decodePlane reconstructs into buf when it has the capacity (the image and
// ROI paths pass a destination to avoid a copy), allocating otherwise. The
// destination is fully overwritten. Tiled streams are recognised by magic
// and routed to the tiled decoder (which has no quality layers, so
// maxLayers is ignored there).
func decodePlane(data []byte, maxLayers int, buf []float32) ([]float32, int, int, error) {
	if IsTiled(data) {
		return tiledDecodePlane(data, buf)
	}
	s := getScratch()
	defer s.release()
	p := &s.prs
	if err := parseInto(p, data); err != nil {
		return nil, 0, 0, err
	}
	w, h := p.W, p.H
	n := w * h
	if MaxDecodePixels > 0 && n > MaxDecodePixels {
		return nil, 0, 0, eperr.New(eperr.BadCodestream, "codec", "%dx%d plane exceeds MaxDecodePixels %d", w, h, MaxDecodePixels)
	}
	g := geometryFor(w, h, p.Levels)
	norms := g.subbandNorms(w, h, p.Levels)

	nLayers := p.NLayers
	if maxLayers > 0 && maxLayers < nLayers {
		nLayers = maxLayers
	}
	s.q = grow(s.q, n)
	clear(s.q)
	s.neg = grow(s.neg, n)
	clear(s.neg)
	s.sig = grow(s.sig, n)
	clear(s.sig)
	s.pStop = grow(s.pStop, n)
	for i := range s.pStop {
		s.pStop[i] = uint8(p.MaxPlane)
	}
	s.rowSig = grow(s.rowSig, g.rowTotal)
	clear(s.rowSig)
	sigP, refP := s.probs()
	pc := planeCoder{
		w: w, sbs: g.sbs, sbPlanes: p.sbPlanes, rowOff: g.rowOff,
		q: s.q, neg: s.neg, sig: s.sig, rowSig: s.rowSig,
		pend: s.pend[:0], sigP: sigP, refP: refP,
	}
	dec := &s.dec
	for li := 0; li < nLayers; li++ {
		plane := p.MaxPlane - 1 - li
		if plane < 0 {
			break
		}
		dec.Reset(p.payloads[li])
		pc.decodePass(dec, plane, p.symbols[li], s.pStop)
	}
	s.pend = pc.pend

	var out []float32
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]float32, n)
	}
	for si := range g.sbs {
		sb := &g.sbs[si]
		step := p.BaseStep / norms[si]
		for y := sb.Y0; y < sb.Y1; y++ {
			qrow := s.q[y*w+sb.X0 : y*w+sb.X1]
			nrow := s.neg[y*w+sb.X0 : y*w+sb.X1]
			prow := s.pStop[y*w+sb.X0 : y*w+sb.X1]
			orow := out[y*w+sb.X0 : y*w+sb.X1]
			for x, qv := range qrow {
				if qv == 0 {
					orow[x] = 0
					continue
				}
				// q holds the decoded bits at their true positions; the
				// remaining planes below pStop are unknown, so reconstruct
				// at the midpoint of the residual interval.
				mag := (float64(qv) + 0.5*float64(uint64(1)<<prow[x])) * step
				if nrow[x] {
					mag = -mag
				}
				orow[x] = float32(mag)
			}
		}
	}
	wavelet.Inverse97(out, w, h, p.Levels)
	return out, w, h, nil
}

// EncodeImage encodes every band of im, splitting opt.BudgetBytes equally
// across bands (the paper spends the γ budget per band, treating bands
// separately). Bands are coded concurrently by a worker pool of
// Workers(opt.Parallelism, bands) goroutines.
func EncodeImage(im *raster.Image, opt Options) ([][]byte, error) {
	perBand := opt
	if opt.BudgetBytes > 0 {
		perBand.BudgetBytes = opt.BudgetBytes / im.NumBands()
		if perBand.BudgetBytes < 32 {
			perBand.BudgetBytes = 32
		}
	}
	nb := im.NumBands()
	out := make([][]byte, nb)
	errs := make([]error, nb)
	ParallelBands(opt.Parallelism, nb, func(b int) {
		data, err := EncodePlane(im.Plane(b), im.Width, im.Height, perBand)
		if err != nil {
			errs[b] = fmt.Errorf("codec: band %d: %w", b, err)
			return
		}
		out[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeImage reconstructs a multi-band image from EncodeImage output.
// The band metadata is attached to the result and must match the stream
// count. Bands are decoded concurrently under the package Parallelism
// default, each directly into its destination plane.
func DecodeImage(enc [][]byte, bands []raster.BandInfo, maxLayers int) (*raster.Image, error) {
	if len(enc) != len(bands) {
		return nil, eperr.New(eperr.BadCodestream, "codec", "%d streams for %d bands", len(enc), len(bands))
	}
	if len(enc) == 0 {
		return nil, eperr.New(eperr.BadCodestream, "codec", "no bands to decode")
	}
	info, err := Parse(enc[0])
	if err != nil {
		return nil, fmt.Errorf("codec: band 0: %w", err)
	}
	im := raster.New(info.W, info.H, bands)
	errs := make([]error, len(enc))
	ParallelBands(0, len(enc), func(b int) {
		plane, w, h, err := decodePlane(enc[b], maxLayers, im.Plane(b))
		if err != nil {
			errs[b] = fmt.Errorf("codec: band %d: %w", b, err)
			return
		}
		if w != im.Width || h != im.Height {
			errs[b] = eperr.New(eperr.BadCodestream, "codec", "band %d geometry %dx%d differs", b, w, h)
			return
		}
		if &plane[0] != &im.Plane(b)[0] {
			copy(im.Plane(b), plane)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	im.Clamp()
	return im, nil
}

// ZeroOutsideROI clears every tile not marked in roi, in every band. The
// wavelet transform then spends almost no bits on those regions, which is
// how the codec realises the paper's region-of-interest encoding.
func ZeroOutsideROI(im *raster.Image, roi *raster.TileMask) {
	for t, keep := range roi.Set {
		if keep {
			continue
		}
		for b := 0; b < im.NumBands(); b++ {
			raster.ZeroTile(im, b, roi.Grid, t)
		}
	}
}
