// Package codec implements the layered wavelet image codec used for every
// encode in the reproduction: on-board encoding of changed tiles, reference
// compression for the uplink, and the baselines' whole-image encoding.
//
// The design mirrors the properties Earth+ needs from JPEG-2000 (§5):
//
//   - CDF 9/7 wavelet transform with dead-zone quantisation,
//   - embedded bit-plane coding with an adaptive binary arithmetic coder,
//     so a byte budget (the paper's bits-per-pixel knob γ) simply truncates
//     the stream at the best available point,
//   - quality layers — one per bit plane — so the ground can decode fewer
//     layers when the downlink degrades ("layered codec", §5),
//   - region-of-interest encoding by zeroing non-ROI tiles, matching the
//     paper's "select changed tiles as region-of-interest" strategy.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"earthplus/internal/arith"
	"earthplus/internal/raster"
	"earthplus/internal/wavelet"
)

// Options controls one plane encode.
type Options struct {
	// Levels is the number of DWT decomposition levels. It is clamped so
	// the coarsest LL band keeps at least 4 samples per axis.
	Levels int
	// BaseStep is the finest quantiser step in image-domain units. The
	// per-subband step is BaseStep divided by the subband's synthesis
	// norm, equalising image-domain error across subbands.
	BaseStep float64
	// BudgetBytes, when positive, truncates the embedded stream once the
	// codestream reaches the budget. Zero means encode every bit plane.
	BudgetBytes int
}

// DefaultOptions returns the options used throughout the experiments.
func DefaultOptions() Options {
	return Options{Levels: 5, BaseStep: 1.0 / 2048}
}

// BudgetForBPP converts a bits-per-pixel target (the paper's γ) into a byte
// budget for a w x h plane.
func BudgetForBPP(bpp float64, w, h int) int {
	return int(bpp * float64(w) * float64(h) / 8)
}

const (
	codecMagic  = "EPC1"
	maxQBits    = 30
	sigContexts = 16 // 4 subband kinds x 4 neighbour-significance counts
	refContexts = 4  // per subband kind
)

// normCache memoises per-(w,h,levels) subband synthesis norms; computing
// them costs one inverse transform per subband.
var normCache sync.Map // key normKey -> []float64

type normKey struct{ w, h, levels int }

func subbandNorms(w, h, levels int, sbs []wavelet.Subband) []float64 {
	key := normKey{w, h, levels}
	if v, ok := normCache.Load(key); ok {
		return v.([]float64)
	}
	norms := make([]float64, len(sbs))
	for i, sb := range sbs {
		norms[i] = wavelet.SynthesisNorm(w, h, levels, sb)
	}
	normCache.Store(key, norms)
	return norms
}

// effectiveLevels clamps the requested level count so the coarsest LL band
// stays at least 4 samples wide/tall (or 0 levels for tiny planes).
func effectiveLevels(w, h, requested int) int {
	l := 0
	for l < requested && w >= 8 && h >= 8 {
		w, h = (w+1)/2, (h+1)/2
		l++
	}
	return l
}

// EncodePlane compresses a row-major w x h float32 plane and returns the
// codestream. Values are expected in roughly [0,1]; anything finite works.
func EncodePlane(plane []float32, w, h int, opt Options) ([]byte, error) {
	if len(plane) != w*h {
		return nil, fmt.Errorf("codec: plane length %d != %dx%d", len(plane), w, h)
	}
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("codec: unsupported dimensions %dx%d", w, h)
	}
	if opt.BaseStep <= 0 {
		return nil, fmt.Errorf("codec: BaseStep %v must be positive", opt.BaseStep)
	}
	levels := effectiveLevels(w, h, opt.Levels)
	coeffs := make([]float32, len(plane))
	copy(coeffs, plane)
	wavelet.Forward97(coeffs, w, h, levels)
	sbs := wavelet.Subbands(w, h, levels)
	norms := subbandNorms(w, h, levels, sbs)

	// Dead-zone quantisation into magnitude+sign.
	q := make([]uint32, len(plane))
	neg := make([]bool, len(plane))
	sbPlanes := make([]uint8, len(sbs))
	maxPlane := 0
	for si, sb := range sbs {
		step := opt.BaseStep / norms[si]
		var sbMax uint32
		for y := sb.Y0; y < sb.Y1; y++ {
			for x := sb.X0; x < sb.X1; x++ {
				i := y*w + x
				c := float64(coeffs[i])
				if c < 0 {
					neg[i] = true
					c = -c
				}
				v := uint64(c / step)
				if v > (1<<maxQBits)-1 {
					v = (1 << maxQBits) - 1
				}
				q[i] = uint32(v)
				if q[i] > sbMax {
					sbMax = q[i]
				}
			}
		}
		sbPlanes[si] = uint8(bitsFor(sbMax))
		if int(sbPlanes[si]) > maxPlane {
			maxPlane = int(sbPlanes[si])
		}
	}

	// Header (layer table appended after encoding).
	hdr := make([]byte, 0, 32+len(sbs))
	hdr = append(hdr, codecMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(w))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(h))
	hdr = append(hdr, uint8(levels))
	hdr = binary.LittleEndian.AppendUint32(hdr, math.Float32bits(float32(opt.BaseStep)))
	hdr = append(hdr, uint8(maxPlane), uint8(len(sbs)))
	hdr = append(hdr, sbPlanes...)

	sigP := arith.NewProbs(sigContexts)
	refP := arith.NewProbs(refContexts)
	sig := make([]bool, len(plane))

	type layer struct {
		payload []byte
		symbols uint32
	}
	var layers []layer
	bytesSoFar := len(hdr) + 1 // +1 for the layer-count byte
	truncated := false
	for p := maxPlane - 1; p >= 0 && !truncated; p-- {
		enc := arith.NewEncoder()
		var symbols uint32
		for si, sb := range sbs {
			if int(sbPlanes[si]) <= p {
				continue
			}
			kind := int(sb.Kind)
			for y := sb.Y0; y < sb.Y1 && !truncated; y++ {
				for x := sb.X0; x < sb.X1; x++ {
					i := y*w + x
					bit := int(q[i] >> uint(p) & 1)
					if sig[i] {
						enc.Encode(&refP[kind], bit)
					} else {
						ctx := kind*4 + neighbourSig(sig, w, sb, x, y)
						enc.Encode(&sigP[ctx], bit)
						if bit == 1 {
							sign := 0
							if neg[i] {
								sign = 1
							}
							enc.EncodeBypass(sign)
							sig[i] = true
						}
					}
					symbols++
					if opt.BudgetBytes > 0 && symbols%256 == 0 &&
						bytesSoFar+len(layers)*8+8+enc.Len() >= opt.BudgetBytes {
						truncated = true
						break
					}
				}
			}
			if truncated {
				break
			}
		}
		payload := enc.Flush()
		if symbols > 0 {
			layers = append(layers, layer{payload: payload, symbols: symbols})
			bytesSoFar += len(payload)
		}
	}

	out := make([]byte, 0, bytesSoFar+len(layers)*8)
	out = append(out, hdr...)
	out = append(out, uint8(len(layers)))
	for _, l := range layers {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(l.payload)))
		out = binary.LittleEndian.AppendUint32(out, l.symbols)
	}
	for _, l := range layers {
		out = append(out, l.payload...)
	}
	return out, nil
}

// bitsFor returns the number of bits needed to represent v (0 -> 0).
func bitsFor(v uint32) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// neighbourSig counts significant 4-neighbours of (x,y) within subband sb,
// clamped to 3. It is the coder's spatial context model.
func neighbourSig(sig []bool, w int, sb wavelet.Subband, x, y int) int {
	n := 0
	if x > sb.X0 && sig[y*w+x-1] {
		n++
	}
	if x < sb.X1-1 && sig[y*w+x+1] {
		n++
	}
	if y > sb.Y0 && sig[(y-1)*w+x] {
		n++
	}
	if y < sb.Y1-1 && sig[(y+1)*w+x] {
		n++
	}
	if n > 3 {
		n = 3
	}
	return n
}

// Info describes a parsed codestream header.
type Info struct {
	W, H     int
	Levels   int
	BaseStep float64
	MaxPlane int
	NLayers  int
	// LayerBytes holds each quality layer's payload size; truncating the
	// decode after k layers reads only the first k payloads.
	LayerBytes []int
}

type parsed struct {
	Info
	sbPlanes []uint8
	symbols  []uint32
	payloads [][]byte
}

// Parse validates a codestream and returns its header description.
func Parse(data []byte) (Info, error) {
	p, err := parse(data)
	if err != nil {
		return Info{}, err
	}
	return p.Info, nil
}

func parse(data []byte) (*parsed, error) {
	if len(data) < 18 || string(data[:4]) != codecMagic {
		return nil, fmt.Errorf("codec: bad magic or truncated header")
	}
	p := &parsed{}
	p.W = int(binary.LittleEndian.Uint16(data[4:]))
	p.H = int(binary.LittleEndian.Uint16(data[6:]))
	p.Levels = int(data[8])
	p.BaseStep = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[9:])))
	p.MaxPlane = int(data[13])
	nSb := int(data[14])
	if p.W <= 0 || p.H <= 0 || p.BaseStep <= 0 {
		return nil, fmt.Errorf("codec: implausible header %dx%d step %v", p.W, p.H, p.BaseStep)
	}
	off := 15
	if len(data) < off+nSb+1 {
		return nil, fmt.Errorf("codec: truncated subband table")
	}
	p.sbPlanes = append([]uint8(nil), data[off:off+nSb]...)
	off += nSb
	p.NLayers = int(data[off])
	off++
	if len(data) < off+8*p.NLayers {
		return nil, fmt.Errorf("codec: truncated layer table")
	}
	p.LayerBytes = make([]int, p.NLayers)
	p.symbols = make([]uint32, p.NLayers)
	for i := 0; i < p.NLayers; i++ {
		p.LayerBytes[i] = int(binary.LittleEndian.Uint32(data[off:]))
		p.symbols[i] = binary.LittleEndian.Uint32(data[off+4:])
		off += 8
	}
	p.payloads = make([][]byte, p.NLayers)
	for i := 0; i < p.NLayers; i++ {
		if len(data) < off+p.LayerBytes[i] {
			return nil, fmt.Errorf("codec: truncated layer %d payload", i)
		}
		p.payloads[i] = data[off : off+p.LayerBytes[i]]
		off += p.LayerBytes[i]
	}
	if sbs := wavelet.Subbands(p.W, p.H, p.Levels); len(sbs) != nSb {
		return nil, fmt.Errorf("codec: subband count %d does not match geometry", nSb)
	}
	return p, nil
}

// DecodePlane reconstructs a plane from a codestream. maxLayers <= 0 (or
// beyond the stream's layer count) decodes every layer; smaller values give
// the layered codec's reduced-quality renditions.
func DecodePlane(data []byte, maxLayers int) ([]float32, int, int, error) {
	p, err := parse(data)
	if err != nil {
		return nil, 0, 0, err
	}
	w, h := p.W, p.H
	sbs := wavelet.Subbands(w, h, p.Levels)
	norms := subbandNorms(w, h, p.Levels, sbs)

	nLayers := p.NLayers
	if maxLayers > 0 && maxLayers < nLayers {
		nLayers = maxLayers
	}
	q := make([]uint32, w*h)
	neg := make([]bool, w*h)
	sig := make([]bool, w*h)
	pStop := make([]uint8, w*h)
	for i := range pStop {
		pStop[i] = uint8(p.MaxPlane)
	}
	sigP := arith.NewProbs(sigContexts)
	refP := arith.NewProbs(refContexts)

	for li := 0; li < nLayers; li++ {
		plane := p.MaxPlane - 1 - li
		dec := arith.NewDecoder(p.payloads[li])
		remaining := p.symbols[li]
	scan:
		for si, sb := range sbs {
			if int(p.sbPlanes[si]) <= plane {
				continue
			}
			kind := int(sb.Kind)
			for y := sb.Y0; y < sb.Y1; y++ {
				for x := sb.X0; x < sb.X1; x++ {
					if remaining == 0 {
						break scan
					}
					i := y*w + x
					if sig[i] {
						bit := dec.Decode(&refP[kind])
						q[i] |= uint32(bit) << uint(plane)
					} else {
						ctx := kind*4 + neighbourSig(sig, w, sb, x, y)
						if dec.Decode(&sigP[ctx]) == 1 {
							q[i] |= 1 << uint(plane)
							neg[i] = dec.DecodeBypass() == 1
							sig[i] = true
						}
					}
					pStop[i] = uint8(plane)
					remaining--
				}
			}
		}
	}

	coeffs := make([]float32, w*h)
	for si, sb := range sbs {
		step := p.BaseStep / norms[si]
		for y := sb.Y0; y < sb.Y1; y++ {
			for x := sb.X0; x < sb.X1; x++ {
				i := y*w + x
				if q[i] == 0 {
					continue
				}
				// q holds the decoded bits at their true positions; the
				// remaining planes below pStop are unknown, so reconstruct
				// at the midpoint of the residual interval.
				mag := (float64(q[i]) + 0.5*float64(uint64(1)<<pStop[i])) * step
				if neg[i] {
					mag = -mag
				}
				coeffs[i] = float32(mag)
			}
		}
	}
	wavelet.Inverse97(coeffs, w, h, p.Levels)
	return coeffs, w, h, nil
}

// EncodeImage encodes every band of im, splitting opt.BudgetBytes equally
// across bands (the paper spends the γ budget per band, treating bands
// separately).
func EncodeImage(im *raster.Image, opt Options) ([][]byte, error) {
	perBand := opt
	if opt.BudgetBytes > 0 {
		perBand.BudgetBytes = opt.BudgetBytes / im.NumBands()
		if perBand.BudgetBytes < 32 {
			perBand.BudgetBytes = 32
		}
	}
	out := make([][]byte, im.NumBands())
	for b := range out {
		data, err := EncodePlane(im.Plane(b), im.Width, im.Height, perBand)
		if err != nil {
			return nil, fmt.Errorf("codec: band %d: %w", b, err)
		}
		out[b] = data
	}
	return out, nil
}

// DecodeImage reconstructs a multi-band image from EncodeImage output.
// The band metadata is attached to the result and must match the stream
// count.
func DecodeImage(enc [][]byte, bands []raster.BandInfo, maxLayers int) (*raster.Image, error) {
	if len(enc) != len(bands) {
		return nil, fmt.Errorf("codec: %d streams for %d bands", len(enc), len(bands))
	}
	var im *raster.Image
	for b, data := range enc {
		plane, w, h, err := DecodePlane(data, maxLayers)
		if err != nil {
			return nil, fmt.Errorf("codec: band %d: %w", b, err)
		}
		if im == nil {
			im = raster.New(w, h, bands)
		} else if w != im.Width || h != im.Height {
			return nil, fmt.Errorf("codec: band %d geometry %dx%d differs", b, w, h)
		}
		copy(im.Plane(b), plane)
	}
	im.Clamp()
	return im, nil
}

// TotalLen sums the byte lengths of a per-band codestream set.
func TotalLen(enc [][]byte) int {
	n := 0
	for _, e := range enc {
		n += len(e)
	}
	return n
}

// ZeroOutsideROI clears every tile not marked in roi, in every band. The
// wavelet transform then spends almost no bits on those regions, which is
// how the codec realises the paper's region-of-interest encoding.
func ZeroOutsideROI(im *raster.Image, roi *raster.TileMask) {
	for t, keep := range roi.Set {
		if keep {
			continue
		}
		for b := 0; b < im.NumBands(); b++ {
			raster.ZeroTile(im, b, roi.Grid, t)
		}
	}
}
