package codec

import (
	"sync"
	"testing"
)

// The byte budget is a hard envelope: the downlink scheduler multiplies γ by
// the ROI pixel count and hands the codec exactly that many bytes, so any
// overshoot silently inflates every downlink figure. The rate controller
// accounts for the header, the layer table and the arithmetic coder's flush
// tail per symbol, so the emitted codestream never exceeds the budget.

// TestBudgetExact asserts len(out) <= BudgetBytes for budgets down to 64
// bytes across content types and geometries.
func TestBudgetExact(t *testing.T) {
	shapes := []struct{ w, h int }{{64, 64}, {128, 128}, {37, 23}, {256, 64}}
	for _, sh := range shapes {
		for _, budget := range []int{64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096} {
			for seed := uint64(1); seed <= 3; seed++ {
				plane := testPlane(seed, sh.w, sh.h)
				opt := DefaultOptions()
				opt.BudgetBytes = budget
				data, err := EncodePlane(plane, sh.w, sh.h, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) > budget {
					t.Fatalf("%dx%d seed %d: budget %d produced %d bytes",
						sh.w, sh.h, seed, budget, len(data))
				}
				// Whatever survived the truncation must still decode.
				if _, _, _, err := DecodePlane(data, 0); err != nil {
					t.Fatalf("%dx%d budget %d: decoding truncated stream: %v",
						sh.w, sh.h, budget, err)
				}
			}
		}
	}
}

// TestBudgetUsesMostOfTheBudget guards against the controller becoming so
// conservative it wastes the envelope: at workable budgets the stream should
// land within a few dozen bytes of the target.
func TestBudgetUsesMostOfTheBudget(t *testing.T) {
	plane := testPlane(4, 128, 128)
	for _, budget := range []int{512, 1024, 4096} {
		opt := DefaultOptions()
		opt.BudgetBytes = budget
		data, err := EncodePlane(plane, 128, 128, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < budget-64 {
			t.Fatalf("budget %d only filled %d bytes", budget, len(data))
		}
	}
}

// TestParallelEncodeMatchesSerial: the worker pool must not change a single
// output byte, only the wall-clock.
func TestParallelEncodeMatchesSerial(t *testing.T) {
	plane := testPlane(21, 96, 96)
	opt := DefaultOptions()
	opt.BudgetBytes = 2048

	serial, err := EncodePlane(plane, 96, 96, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]byte, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := EncodePlane(plane, 96, 96, opt)
			if err == nil {
				results[i] = data
			}
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got == nil {
			t.Fatalf("concurrent encode %d failed", i)
		}
		if string(got) != string(serial) {
			t.Fatalf("concurrent encode %d differs from serial", i)
		}
	}
}

// TestWorkers pins the parallelism resolution rules.
func TestWorkers(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 0
	if got := Workers(3, 8); got != 3 {
		t.Fatalf("Workers(3, 8) = %d, want 3", got)
	}
	if got := Workers(16, 4); got != 4 {
		t.Fatalf("Workers(16, 4) = %d, want clamp to 4 tasks", got)
	}
	Parallelism = 2
	if got := Workers(0, 8); got != 2 {
		t.Fatalf("Workers(0, 8) with package default 2 = %d", got)
	}
	Parallelism = 0
	if got := Workers(0, 64); got < 1 {
		t.Fatalf("Workers must be at least 1, got %d", got)
	}
}

// TestParallelBandsCoversAllIndices exercises the pool across widths.
func TestParallelBandsCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 2, 7} {
		const n = 23
		hits := make([]int32, n)
		var mu sync.Mutex
		ParallelBands(par, n, func(b int) {
			mu.Lock()
			hits[b]++
			mu.Unlock()
		})
		for b, c := range hits {
			if c != 1 {
				t.Fatalf("par %d: index %d visited %d times", par, b, c)
			}
		}
	}
}
