package codec

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The golden vectors lock the wire format: committed codestreams under
// testdata/ must keep encoding and decoding to exactly the same bytes
// across refactors. Any intentional format change must regenerate them
// with `go test ./internal/codec -run TestGolden -update-golden` and be
// called out in review — silently breaking decode compatibility would
// strand every archived downlink capture.

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden codestream vectors")

type goldenCase struct {
	name     string
	seed     uint64
	w, h     int
	budget   int // 0 = every bit plane
	lossless bool
	tiled    bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "lossy_full_32x32", seed: 41, w: 32, h: 32},
		{name: "lossy_budget256_48x32", seed: 42, w: 48, h: 32, budget: 256},
		{name: "lossy_bpp05_64x64", seed: 43, w: 64, h: 64, budget: BudgetForBPP(0.5, 64, 64)},
		{name: "lossless_32x32", seed: 44, w: 32, h: 32, lossless: true},
		// The tiled (EPT1) profile: one single-tile stream, one spanning a
		// 2x2 tile grid with ragged edges, and one rate-controlled multi-tile
		// stream — together they pin the header, the tile-index table and
		// the per-tile RLGR payloads.
		{name: "tiled_full_48x32", seed: 45, w: 48, h: 32, tiled: true},
		{name: "tiled_full_96x80", seed: 46, w: 96, h: 80, tiled: true},
		{name: "tiled_bpp1_128x96", seed: 47, w: 128, h: 96, budget: BudgetForBPP(1, 128, 96), tiled: true},
	}
}

// encodeGolden produces the case's codestream from its deterministic
// input plane.
func encodeGolden(t testing.TB, gc goldenCase) []byte {
	t.Helper()
	plane := testPlane(gc.seed, gc.w, gc.h)
	if gc.lossless {
		data, err := EncodePlaneLossless(plane, gc.w, gc.h, 5)
		if err != nil {
			t.Fatalf("%s: encode: %v", gc.name, err)
		}
		return data
	}
	opt := DefaultOptions()
	opt.BudgetBytes = gc.budget
	opt.Tiled = gc.tiled
	data, err := EncodePlane(plane, gc.w, gc.h, opt)
	if err != nil {
		t.Fatalf("%s: encode: %v", gc.name, err)
	}
	return data
}

// decodeGolden decodes a committed codestream.
func decodeGolden(t testing.TB, gc goldenCase, data []byte) []float32 {
	t.Helper()
	var plane []float32
	var w, h int
	var err error
	if gc.lossless {
		plane, w, h, err = DecodePlaneLossless(data)
	} else {
		plane, w, h, err = DecodePlane(data, 0)
	}
	if err != nil {
		t.Fatalf("%s: decode: %v", gc.name, err)
	}
	if w != gc.w || h != gc.h {
		t.Fatalf("%s: decoded geometry %dx%d, want %dx%d", gc.name, w, h, gc.w, gc.h)
	}
	return plane
}

func planeBytes(plane []float32) []byte {
	out := make([]byte, 0, 4*len(plane))
	for _, v := range plane {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out
}

// TestGoldenVectors pins both directions of the wire format: encoding the
// deterministic test planes must reproduce the committed codestreams byte
// for byte, and decoding the committed codestreams must reproduce the
// committed reconstructions bit for bit.
func TestGoldenVectors(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			encPath := filepath.Join("testdata", "golden_"+gc.name+".bin")
			decPath := filepath.Join("testdata", "golden_"+gc.name+".dec")
			enc := encodeGolden(t, gc)
			if *updateGolden {
				if err := os.WriteFile(encPath, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(decPath, planeBytes(decodeGolden(t, gc, enc)), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(encPath)
			if err != nil {
				t.Fatalf("missing golden vector (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("%s: encoder output diverged from golden codestream (%d vs %d bytes) — the wire format changed", gc.name, len(enc), len(want))
			}
			wantDec, err := os.ReadFile(decPath)
			if err != nil {
				t.Fatalf("missing golden reconstruction: %v", err)
			}
			if got := planeBytes(decodeGolden(t, gc, want)); !bytes.Equal(got, wantDec) {
				t.Fatalf("%s: decoder output diverged from golden reconstruction", gc.name)
			}
		})
	}
}

// TestGoldenLosslessReencodeIdentity decodes the committed lossless
// codestream and re-encodes the reconstruction: lossless decode is exact,
// so the round trip must reproduce the committed bytes identically.
func TestGoldenLosslessReencodeIdentity(t *testing.T) {
	for _, gc := range goldenCases() {
		if !gc.lossless {
			continue
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden_"+gc.name+".bin"))
		if err != nil {
			t.Skipf("golden vector not generated yet: %v", err)
		}
		plane := decodeGolden(t, gc, want)
		again, err := EncodePlaneLossless(plane, gc.w, gc.h, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, want) {
			t.Fatalf("%s: decode + re-encode is not byte-identical (%d vs %d bytes)", gc.name, len(again), len(want))
		}
	}
}
