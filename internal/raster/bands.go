package raster

// BandKind classifies what a spectral band chiefly observes. Earth+ treats
// bands separately because "the amount of changes of different bands on
// cloud-free areas are different" (§5, Handling different bands).
type BandKind uint8

const (
	// KindGround marks bands dominated by terrestrial surface content
	// (visible RGB, SWIR).
	KindGround BandKind = iota
	// KindVegetation marks chlorophyll-sensitive bands (red edge, NIR);
	// the paper notes these change more due to temperature sensitivity.
	KindVegetation
	// KindAtmosphere marks air-observing bands (coastal aerosol, water
	// vapor, cirrus); these change little over cloud-free ground.
	KindAtmosphere
	// KindInfrared marks thermal/short-wave infrared bands usable for
	// cheap cloud detection (heavy clouds are cold, §5).
	KindInfrared
)

// String returns the band kind's name.
func (k BandKind) String() string {
	switch k {
	case KindGround:
		return "ground"
	case KindVegetation:
		return "vegetation"
	case KindAtmosphere:
		return "atmosphere"
	case KindInfrared:
		return "infrared"
	}
	return "unknown"
}

// BandInfo describes one spectral band of an instrument.
type BandInfo struct {
	// Name is the instrument's band label, e.g. "B8a" or "NIR".
	Name string
	// Kind classifies the band's dominant signal.
	Kind BandKind
	// CenterNM is the band's centre wavelength in nanometres.
	CenterNM int
}

// Sentinel2Bands returns the 13-band set of the Sentinel-2 MSI instrument
// used by the paper's rich-content dataset (Table 2).
func Sentinel2Bands() []BandInfo {
	return []BandInfo{
		{Name: "B1", Kind: KindAtmosphere, CenterNM: 443},   // coastal aerosol
		{Name: "B2", Kind: KindGround, CenterNM: 490},       // blue
		{Name: "B3", Kind: KindGround, CenterNM: 560},       // green
		{Name: "B4", Kind: KindGround, CenterNM: 665},       // red
		{Name: "B5", Kind: KindVegetation, CenterNM: 705},   // red edge 1
		{Name: "B6", Kind: KindVegetation, CenterNM: 740},   // red edge 2
		{Name: "B7", Kind: KindVegetation, CenterNM: 783},   // red edge 3
		{Name: "B8", Kind: KindVegetation, CenterNM: 842},   // NIR
		{Name: "B8a", Kind: KindVegetation, CenterNM: 865},  // narrow NIR
		{Name: "B9", Kind: KindAtmosphere, CenterNM: 945},   // water vapor
		{Name: "B10", Kind: KindAtmosphere, CenterNM: 1375}, // cirrus
		{Name: "B11", Kind: KindInfrared, CenterNM: 1610},   // SWIR 1
		{Name: "B12", Kind: KindInfrared, CenterNM: 2190},   // SWIR 2
	}
}

// PlanetBands returns the 4-band RGB+InfraRed set of the Doves (PlanetScope)
// instrument used by the paper's large-constellation dataset (Tables 1, 2).
func PlanetBands() []BandInfo {
	return []BandInfo{
		{Name: "R", Kind: KindGround, CenterNM: 655},
		{Name: "G", Kind: KindGround, CenterNM: 545},
		{Name: "B", Kind: KindGround, CenterNM: 485},
		{Name: "NIR", Kind: KindInfrared, CenterNM: 820},
	}
}

// InfraredBand returns the index of the first infrared band in bands, or -1
// if none exists. The cheap on-board cloud detector needs one (§5).
func InfraredBand(bands []BandInfo) int {
	for i, b := range bands {
		if b.Kind == KindInfrared {
			return i
		}
	}
	return -1
}

// GroundBands returns the indices of all bands whose kind is KindGround.
func GroundBands(bands []BandInfo) []int {
	var out []int
	for i, b := range bands {
		if b.Kind == KindGround {
			out = append(out, i)
		}
	}
	return out
}
