package raster

import (
	"testing"
	"testing/quick"
)

func TestTileGridGeometry(t *testing.T) {
	g, err := NewTileGrid(512, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 8 || g.Rows != 4 || g.NumTiles() != 32 {
		t.Fatalf("grid = %+v", g)
	}
	x0, y0, x1, y1 := g.Bounds(9) // second row, second column
	if x0 != 64 || y0 != 64 || x1 != 128 || y1 != 128 {
		t.Fatalf("Bounds(9) = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestTileGridRejectsBadGeometry(t *testing.T) {
	if _, err := NewTileGrid(100, 64, 64); err == nil {
		t.Fatal("expected error for indivisible width")
	}
	if _, err := NewTileGrid(64, 64, 0); err == nil {
		t.Fatal("expected error for zero tile")
	}
}

func TestTileAtInverseOfBounds(t *testing.T) {
	g := MustTileGrid(256, 128, 32)
	f := func(tt uint16) bool {
		idx := int(tt) % g.NumTiles()
		x0, y0, x1, y1 := g.Bounds(idx)
		return g.TileAt(x0, y0) == idx && g.TileAt(x1-1, y1-1) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledGridKeepsTileCount(t *testing.T) {
	g := MustTileGrid(512, 512, 64)
	lo, err := g.Scaled(8)
	if err != nil {
		t.Fatal(err)
	}
	if lo.NumTiles() != g.NumTiles() {
		t.Fatalf("scaled tile count %d != %d", lo.NumTiles(), g.NumTiles())
	}
	if lo.Tile != 8 {
		t.Fatalf("scaled tile size = %d, want 8", lo.Tile)
	}
	if _, err := g.Scaled(7); err == nil {
		t.Fatal("expected error for indivisible scale")
	}
}

func TestTileMaskOps(t *testing.T) {
	g := MustTileGrid(128, 128, 64)
	m := NewTileMask(g)
	if m.Count() != 0 || m.Fraction() != 0 {
		t.Fatalf("fresh mask count=%d frac=%v", m.Count(), m.Fraction())
	}
	m.Set[0], m.Set[3] = true, true
	if m.Count() != 2 || m.Fraction() != 0.5 {
		t.Fatalf("count=%d frac=%v, want 2, 0.5", m.Count(), m.Fraction())
	}
	other := NewTileMask(g)
	other.Set[1] = true
	m.Union(other)
	if m.Count() != 3 {
		t.Fatalf("after union count=%d, want 3", m.Count())
	}
	m.Subtract(other)
	if m.Count() != 2 || m.Set[1] {
		t.Fatalf("after subtract count=%d set1=%v", m.Count(), m.Set[1])
	}
	cl := m.Clone()
	cl.Set[2] = true
	if m.Set[2] {
		t.Fatal("Clone aliased backing slice")
	}
	m.Invert()
	if m.Count() != 2 || !m.Set[1] || !m.Set[2] {
		t.Fatalf("after invert %+v", m.Set)
	}
	m.SetAll()
	if m.Fraction() != 1 {
		t.Fatalf("SetAll fraction = %v", m.Fraction())
	}
}
