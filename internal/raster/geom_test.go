package raster

import (
	"math"
	"testing"
)

func TestMosaicDims(t *testing.T) {
	for n := -1; n <= 200; n++ {
		cols, rows := MosaicDims(n)
		if n <= 0 {
			if cols != 0 || rows != 0 {
				t.Fatalf("MosaicDims(%d) = %dx%d, want 0x0", n, cols, rows)
			}
			continue
		}
		wantCols := int(math.Ceil(math.Sqrt(float64(n))))
		wantRows := (n + wantCols - 1) / wantCols
		if cols != wantCols || rows != wantRows {
			t.Fatalf("MosaicDims(%d) = %dx%d, want %dx%d", n, cols, rows, wantCols, wantRows)
		}
		if cols*rows < n {
			t.Fatalf("MosaicDims(%d) = %dx%d holds only %d tiles", n, cols, rows, cols*rows)
		}
	}
}

func TestClampedTileBounds(t *testing.T) {
	cases := []struct{ w, h, tile int }{
		{64, 64, 64}, {128, 64, 64}, {100, 70, 64}, {65, 129, 64}, {7, 5, 4},
	}
	for _, c := range cases {
		cols, rows := TileSpan(c.w, c.tile), TileSpan(c.h, c.tile)
		seen := make([]bool, c.w*c.h)
		for tl := 0; tl < cols*rows; tl++ {
			x0, y0, x1, y1 := ClampedTileBounds(c.w, c.h, c.tile, tl)
			if x0 < 0 || y0 < 0 || x1 > c.w || y1 > c.h || x0 >= x1 || y0 >= y1 {
				t.Fatalf("%dx%d tile %d: bad bounds (%d,%d)-(%d,%d)", c.w, c.h, tl, x0, y0, x1, y1)
			}
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if seen[y*c.w+x] {
						t.Fatalf("%dx%d tile %d covers pixel (%d,%d) twice", c.w, c.h, tl, x, y)
					}
					seen[y*c.w+x] = true
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("%dx%d tile %d: pixel (%d,%d) uncovered", c.w, c.h, c.tile, i%c.w, i/c.w)
			}
		}
	}
}

func TestTileRangeMatchesBruteForce(t *testing.T) {
	const w, h, tile = 100, 70, 16
	cols, rows := TileSpan(w, tile), TileSpan(h, tile)
	rects := [][4]int{
		{0, 0, w, h}, {-5, -5, w + 5, h + 5}, {10, 10, 10, 20}, {15, 15, 17, 17},
		{0, 0, 1, 1}, {w - 1, h - 1, w, h}, {50, 0, 60, h}, {90, 60, 200, 200},
		{w, h, w + 1, h + 1}, {3, 64, 97, 70},
	}
	for _, r := range rects {
		c0, r0, c1, r1 := TileRange(w, h, tile, r[0], r[1], r[2], r[3])
		for tc := 0; tc < cols; tc++ {
			for tr := 0; tr < rows; tr++ {
				x0, y0, x1, y1 := ClampedTileBounds(w, h, tile, tr*cols+tc)
				want := r[0] < r[2] && r[1] < r[3] &&
					x1 > r[0] && x0 < r[2] && y1 > r[1] && y0 < r[3] &&
					r[0] < w && r[1] < h && r[2] > 0 && r[3] > 0
				got := tc >= c0 && tc < c1 && tr >= r0 && tr < r1
				if got != want {
					t.Fatalf("rect %v tile (%d,%d): got in-range %v want %v", r, tc, tr, got, want)
				}
			}
		}
	}
}

func TestTileGridTileRange(t *testing.T) {
	g := MustTileGrid(256, 128, 64)
	c0, r0, c1, r1 := g.TileRange(64, 0, 129, 65)
	if c0 != 1 || r0 != 0 || c1 != 3 || r1 != 2 {
		t.Fatalf("TileRange = (%d,%d)-(%d,%d), want (1,0)-(3,2)", c0, r0, c1, r1)
	}
}
