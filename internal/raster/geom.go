package raster

import "math"

// Shared tile-grid geometry. The codec's ROI mosaic, the tiled codestream
// profile, and the constellation event workload all reason about square
// tiles over a pixel plane; this file is the single home for that math so
// the three stay in exact agreement (tile sets feed byte-pinned streams).

// TileSpan returns the number of tiles of the given size needed to cover
// length pixels (ceiling division). The plane need not be tile-aligned.
func TileSpan(length, tile int) int {
	return (length + tile - 1) / tile
}

// MosaicDims returns the near-square tile geometry (cols x rows) used to
// pack n tiles: cols is the smallest square-ish width, rows the resulting
// height. n <= 0 yields 0x0.
func MosaicDims(n int) (cols, rows int) {
	if n <= 0 {
		return 0, 0
	}
	cols = int(math.Ceil(math.Sqrt(float64(n))))
	rows = (n + cols - 1) / cols
	return cols, rows
}

// ClampedTileBounds returns the half-open pixel rectangle [x0,x1) x [y0,y1)
// of tile t in a w x h plane covered by square tiles of the given size,
// with the rightmost column and bottom row clamped to the plane edge.
// Tiles are indexed row-major over a TileSpan(w) x TileSpan(h) cover.
func ClampedTileBounds(w, h, tile, t int) (x0, y0, x1, y1 int) {
	cols := TileSpan(w, tile)
	col, row := t%cols, t/cols
	x0, y0 = col*tile, row*tile
	x1, y1 = x0+tile, y0+tile
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	return x0, y0, x1, y1
}

// TileRange returns the half-open tile-coordinate range [c0,c1) x [r0,r1)
// of tiles intersecting the pixel rectangle [x0,x1) x [y0,y1), clipped to
// a w x h plane covered by square tiles of the given size. An empty
// intersection yields c0 >= c1 or r0 >= r1.
func TileRange(w, h, tile, x0, y0, x1, y1 int) (c0, r0, c1, r1 int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	if x0 >= x1 || y0 >= y1 {
		return 0, 0, 0, 0
	}
	c0, r0 = x0/tile, y0/tile
	c1, r1 = TileSpan(x1, tile), TileSpan(y1, tile)
	return c0, r0, c1, r1
}

// TileRange returns the half-open tile-coordinate range of grid tiles
// intersecting the pixel rectangle [x0,x1) x [y0,y1); see the free
// function TileRange.
func (g TileGrid) TileRange(x0, y0, x1, y1 int) (c0, r0, c1, r1 int) {
	return TileRange(g.ImageW, g.ImageH, g.Tile, x0, y0, x1, y1)
}
