package raster

import "fmt"

// DefaultTileSize is the paper's tile granularity: "we use a 64x64 pixel
// block as a tile by default" (§3).
const DefaultTileSize = 64

// TileGrid partitions a Width x Height image into square tiles. Image
// dimensions must be divisible by the tile size; the synthetic scenes are
// generated that way, mirroring the aligned tiling codecs use.
type TileGrid struct {
	ImageW, ImageH int
	Tile           int
	Cols, Rows     int
}

// NewTileGrid builds the tile grid for a w x h image with square tiles of
// the given size.
func NewTileGrid(w, h, tile int) (TileGrid, error) {
	if tile <= 0 {
		return TileGrid{}, fmt.Errorf("raster: tile size %d must be positive", tile)
	}
	if w%tile != 0 || h%tile != 0 {
		return TileGrid{}, fmt.Errorf("raster: image %dx%d not divisible by tile %d", w, h, tile)
	}
	return TileGrid{ImageW: w, ImageH: h, Tile: tile, Cols: w / tile, Rows: h / tile}, nil
}

// MustTileGrid is NewTileGrid that panics on error, for geometry known to be
// valid by construction.
func MustTileGrid(w, h, tile int) TileGrid {
	g, err := NewTileGrid(w, h, tile)
	if err != nil {
		panic(err)
	}
	return g
}

// NumTiles returns the number of tiles in the grid.
func (g TileGrid) NumTiles() int { return g.Cols * g.Rows }

// Bounds returns the half-open pixel rectangle [x0,x1) x [y0,y1) of tile t.
func (g TileGrid) Bounds(t int) (x0, y0, x1, y1 int) {
	col, row := t%g.Cols, t/g.Cols
	x0, y0 = col*g.Tile, row*g.Tile
	return x0, y0, x0 + g.Tile, y0 + g.Tile
}

// TileAt returns the tile index containing pixel (x, y).
func (g TileGrid) TileAt(x, y int) int { return (y/g.Tile)*g.Cols + x/g.Tile }

// Scaled returns the grid describing the same tiling after the image is
// downsampled by factor per axis. The tile size must stay >= 1 pixel.
func (g TileGrid) Scaled(factor int) (TileGrid, error) {
	if factor <= 0 || g.Tile%factor != 0 {
		return TileGrid{}, fmt.Errorf("raster: tile %d not divisible by scale factor %d", g.Tile, factor)
	}
	return NewTileGrid(g.ImageW/factor, g.ImageH/factor, g.Tile/factor)
}

// TileMask marks a subset of a grid's tiles (changed tiles, cloudy tiles,
// region-of-interest tiles, ...).
type TileMask struct {
	Grid TileGrid
	Set  []bool
}

// NewTileMask returns an empty mask over g.
func NewTileMask(g TileGrid) *TileMask {
	return &TileMask{Grid: g, Set: make([]bool, g.NumTiles())}
}

// Count returns the number of marked tiles.
func (m *TileMask) Count() int {
	n := 0
	for _, s := range m.Set {
		if s {
			n++
		}
	}
	return n
}

// Fraction returns the fraction of tiles marked, in [0,1].
func (m *TileMask) Fraction() float64 {
	if len(m.Set) == 0 {
		return 0
	}
	return float64(m.Count()) / float64(len(m.Set))
}

// Clone returns a deep copy of the mask.
func (m *TileMask) Clone() *TileMask {
	out := NewTileMask(m.Grid)
	copy(out.Set, m.Set)
	return out
}

// Union marks every tile set in other. The grids must match in tile count.
func (m *TileMask) Union(other *TileMask) {
	for i, s := range other.Set {
		if s {
			m.Set[i] = true
		}
	}
}

// Subtract clears every tile set in other.
func (m *TileMask) Subtract(other *TileMask) {
	for i, s := range other.Set {
		if s {
			m.Set[i] = false
		}
	}
}

// Invert flips every tile.
func (m *TileMask) Invert() {
	for i := range m.Set {
		m.Set[i] = !m.Set[i]
	}
}

// SetAll marks every tile.
func (m *TileMask) SetAll() {
	for i := range m.Set {
		m.Set[i] = true
	}
}
