package raster

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randomImage(seed int64, w, h int, bands []BandInfo) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := New(w, h, bands)
	for b := range im.Pix {
		for i := range im.Pix[b] {
			im.Pix[b][i] = rng.Float32()
		}
	}
	return im
}

func TestBinaryRoundTrip(t *testing.T) {
	im := randomImage(1, 24, 16, Sentinel2Bands())
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.SameShape(back) {
		t.Fatalf("shape changed: %dx%dx%d", back.Width, back.Height, back.NumBands())
	}
	for b := range im.Pix {
		if im.Bands[b] != back.Bands[b] {
			t.Fatalf("band %d metadata %+v != %+v", b, back.Bands[b], im.Bands[b])
		}
		for i := range im.Pix[b] {
			if im.Pix[b][i] != back.Pix[b][i] {
				t.Fatalf("pixel (%d,%d) = %v, want %v", b, i, back.Pix[b][i], im.Pix[b][i])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a raster at all")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := Read(strings.NewReader(rasterMagic + "\x00")); err == nil {
		t.Fatal("expected truncated-header error")
	}
}

func TestReadRejectsImplausibleGeometry(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(rasterMagic)
	// width=0 triggers the sanity check before any allocation.
	buf.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Fatal("expected geometry error")
	}
}

func TestPGMRoundTrip16(t *testing.T) {
	im := randomImage(2, 9, 7, []BandInfo{{Name: "gray"}})
	var buf bytes.Buffer
	if err := im.WritePGM(&buf, 0); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 9 || back.Height != 7 {
		t.Fatalf("PGM geometry %dx%d", back.Width, back.Height)
	}
	for i := range im.Pix[0] {
		if d := math.Abs(float64(im.Pix[0][i] - back.Pix[0][i])); d > 1.0/65535+1e-6 {
			t.Fatalf("pixel %d differs by %v after 16-bit PGM round trip", i, d)
		}
	}
}

func TestReadPGM8Bit(t *testing.T) {
	raw := "P5\n2 1\n255\n" + string([]byte{0, 255})
	im, err := ReadPGM(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[0][0] != 0 || im.Pix[0][1] != 1 {
		t.Fatalf("8-bit PGM pixels = %v", im.Pix[0])
	}
}

func TestReadPGMRejectsBadMagic(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P6\n1 1\n255\n\x00")); err == nil {
		t.Fatal("expected error for P6")
	}
}
