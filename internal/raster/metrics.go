package raster

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between band b of a and band b of x.
func MSE(a, x *Image, b int) float64 {
	pa, px := a.Pix[b], x.Pix[b]
	var sum float64
	for i := range pa {
		d := float64(pa[i] - px[i])
		sum += d * d
	}
	return sum / float64(len(pa))
}

// PSNR converts a mean squared error over [0,1]-normalised pixels into peak
// signal-to-noise ratio in dB, the paper's quality metric (§2.2). A zero MSE
// returns +Inf.
func PSNR(mse float64) float64 {
	if mse <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(mse)
}

// PSNRBand returns the PSNR between band b of a and band b of x.
func PSNRBand(a, x *Image, b int) float64 { return PSNR(MSE(a, x, b)) }

// MSEMaskedTiles accumulates squared error between band b of a and x over
// the tiles of g for which include(t) is true. It returns the summed squared
// error and the pixel count, so callers can pool across bands or captures.
func MSEMaskedTiles(a, x *Image, b int, g TileGrid, include func(t int) bool) (sumSq float64, n int) {
	pa, px := a.Pix[b], x.Pix[b]
	for t := 0; t < g.NumTiles(); t++ {
		if include != nil && !include(t) {
			continue
		}
		x0, y0, x1, y1 := g.Bounds(t)
		for y := y0; y < y1; y++ {
			row := y * a.Width
			for xx := x0; xx < x1; xx++ {
				d := float64(pa[row+xx] - px[row+xx])
				sumSq += d * d
			}
		}
		n += g.Tile * g.Tile
	}
	return sumSq, n
}

// PSNRMaskedTiles computes PSNR between a and x over band b restricted to
// tiles where include(t) is true. It returns NaN when no tiles are included.
func PSNRMaskedTiles(a, x *Image, b int, g TileGrid, include func(t int) bool) float64 {
	sumSq, n := MSEMaskedTiles(a, x, b, g, include)
	if n == 0 {
		return math.NaN()
	}
	return PSNR(sumSq / float64(n))
}

// PSNRAllBandsMaskedTiles pools squared error across every band of a and x
// over the included tiles and returns the pooled PSNR, which is how the
// evaluation reports one number per multi-band capture.
func PSNRAllBandsMaskedTiles(a, x *Image, g TileGrid, include func(t int) bool) float64 {
	var sumSq float64
	var n int
	for b := range a.Pix {
		s, c := MSEMaskedTiles(a, x, b, g, include)
		sumSq += s
		n += c
	}
	if n == 0 {
		return math.NaN()
	}
	return PSNR(sumSq / float64(n))
}

// TileMeanAbsDiff returns, for each tile of g, the mean absolute difference
// between band b of a and band b of x. This is the paper's per-tile change
// statistic (§3: a tile is changed when its average pixel difference exceeds
// a threshold).
func TileMeanAbsDiff(a, x *Image, b int, g TileGrid) []float64 {
	if a.Width != g.ImageW || a.Height != g.ImageH {
		panic(fmt.Sprintf("raster: image %dx%d does not match grid %dx%d",
			a.Width, a.Height, g.ImageW, g.ImageH))
	}
	pa, px := a.Pix[b], x.Pix[b]
	out := make([]float64, g.NumTiles())
	inv := 1 / float64(g.Tile*g.Tile)
	for t := range out {
		x0, y0, x1, y1 := g.Bounds(t)
		var sum float64
		for y := y0; y < y1; y++ {
			row := y * a.Width
			for xx := x0; xx < x1; xx++ {
				sum += math.Abs(float64(pa[row+xx] - px[row+xx]))
			}
		}
		out[t] = sum * inv
	}
	return out
}
