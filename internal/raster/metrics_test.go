package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSEAndPSNRKnownValues(t *testing.T) {
	a := New(2, 2, []BandInfo{{Name: "g"}})
	b := New(2, 2, []BandInfo{{Name: "g"}})
	b.Fill(0, 0.1)
	mse := MSE(a, b, 0)
	if math.Abs(mse-0.01) > 1e-9 {
		t.Fatalf("MSE = %v, want 0.01", mse)
	}
	if got := PSNR(mse); math.Abs(got-20) > 1e-6 {
		t.Fatalf("PSNR = %v, want 20", got)
	}
}

func TestPSNRInfiniteForIdentical(t *testing.T) {
	a := New(4, 4, PlanetBands())
	if got := PSNRBand(a, a.Clone(), 0); !math.IsInf(got, 1) {
		t.Fatalf("PSNR of identical images = %v, want +Inf", got)
	}
}

// Property: PSNR is monotonically decreasing in noise amplitude.
func TestPSNRMonotoneInNoiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := New(16, 16, []BandInfo{{Name: "g"}})
		for i := range base.Plane(0) {
			base.Plane(0)[i] = rng.Float32()
		}
		small, big := base.Clone(), base.Clone()
		for i := range small.Plane(0) {
			n := rng.Float32() - 0.5
			small.Plane(0)[i] += 0.01 * n
			big.Plane(0)[i] += 0.1 * n
		}
		return PSNRBand(base, small, 0) > PSNRBand(base, big, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMSEMaskedTiles(t *testing.T) {
	g := MustTileGrid(8, 8, 4)
	a := New(8, 8, []BandInfo{{Name: "g"}})
	b := a.Clone()
	// Corrupt only tile 0.
	x0, y0, x1, y1 := g.Bounds(0)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			b.Set(0, x, y, 1)
		}
	}
	sum, n := MSEMaskedTiles(a, b, 0, g, func(t int) bool { return t == 0 })
	if n != 16 || math.Abs(sum-16) > 1e-9 {
		t.Fatalf("tile-0 MSE sum=%v n=%v, want 16,16", sum, n)
	}
	sum, n = MSEMaskedTiles(a, b, 0, g, func(t int) bool { return t != 0 })
	if n != 48 || sum != 0 {
		t.Fatalf("other-tile MSE sum=%v n=%v, want 0,48", sum, n)
	}
	if got := PSNRMaskedTiles(a, b, 0, g, func(int) bool { return false }); !math.IsNaN(got) {
		t.Fatalf("empty mask PSNR = %v, want NaN", got)
	}
}

func TestPSNRAllBandsPools(t *testing.T) {
	g := MustTileGrid(4, 4, 4)
	a := New(4, 4, PlanetBands())
	b := a.Clone()
	b.Fill(0, 0.2) // only band 0 differs: per-pixel sq err 0.04 on 1 of 4 bands
	got := PSNRAllBandsMaskedTiles(a, b, g, nil)
	want := PSNR(0.04 / 4)
	if math.Abs(got-want) > 1e-5 { // float32 0.2² is not exactly 0.04

		t.Fatalf("pooled PSNR = %v, want %v", got, want)
	}
}

func TestTileMeanAbsDiff(t *testing.T) {
	g := MustTileGrid(8, 4, 4)
	a := New(8, 4, []BandInfo{{Name: "g"}})
	b := a.Clone()
	x0, y0, x1, y1 := g.Bounds(1)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			b.Set(0, x, y, 0.5)
		}
	}
	d := TileMeanAbsDiff(a, b, 0, g)
	if len(d) != 2 {
		t.Fatalf("len = %d, want 2", len(d))
	}
	if d[0] != 0 || math.Abs(d[1]-0.5) > 1e-9 {
		t.Fatalf("tile diffs = %v", d)
	}
}
