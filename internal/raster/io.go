package raster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// rasterMagic identifies the repository's simple binary raster container.
const rasterMagic = "EPRAST1\x00"

// Write serialises the image into the repository's binary raster format:
// magic, dims, band metadata, then little-endian float32 planes. The format
// exists so cmd/earthplus-encode and the examples can exchange images.
func (im *Image) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rasterMagic); err != nil {
		return err
	}
	hdr := []uint32{uint32(im.Width), uint32(im.Height), uint32(len(im.Bands))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, b := range im.Bands {
		name := []byte(b.Name)
		if len(name) > 255 {
			return fmt.Errorf("raster: band name %q too long", b.Name)
		}
		if err := bw.WriteByte(byte(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(b.Kind)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(b.CenterNM)); err != nil {
			return err
		}
	}
	buf := make([]byte, 4)
	for _, plane := range im.Pix {
		for _, v := range plane {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses an image previously serialised with Write.
func Read(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(rasterMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("raster: reading magic: %w", err)
	}
	if string(magic) != rasterMagic {
		return nil, fmt.Errorf("raster: bad magic %q", magic)
	}
	var w32, h32, nb uint32
	for _, p := range []*uint32{&w32, &h32, &nb} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("raster: reading header: %w", err)
		}
	}
	const maxDim = 1 << 16
	if w32 == 0 || h32 == 0 || w32 > maxDim || h32 > maxDim || nb == 0 || nb > 256 {
		return nil, fmt.Errorf("raster: implausible geometry %dx%dx%d", w32, h32, nb)
	}
	bands := make([]BandInfo, nb)
	for i := range bands {
		nameLen, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("raster: reading band %d: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("raster: reading band %d name: %w", i, err)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("raster: reading band %d kind: %w", i, err)
		}
		var nm uint32
		if err := binary.Read(br, binary.LittleEndian, &nm); err != nil {
			return nil, fmt.Errorf("raster: reading band %d wavelength: %w", i, err)
		}
		bands[i] = BandInfo{Name: string(name), Kind: BandKind(kind), CenterNM: int(nm)}
	}
	im := New(int(w32), int(h32), bands)
	buf := make([]byte, 4)
	for _, plane := range im.Pix {
		for i := range plane {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("raster: reading pixels: %w", err)
			}
			plane[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
	}
	return im, nil
}

// WritePGM emits band b as a binary 16-bit PGM (P5), mapping [0,1] to
// [0,65535]. Useful for eyeballing outputs with standard tooling.
func (im *Image) WritePGM(w io.Writer, b int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n65535\n", im.Width, im.Height); err != nil {
		return err
	}
	buf := make([]byte, 2)
	for _, v := range im.Pix[b] {
		u := uint16(math.Round(float64(clamp01(v)) * 65535))
		binary.BigEndian.PutUint16(buf, u)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM parses a binary 8- or 16-bit PGM into a single-band image with
// values scaled into [0,1].
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("raster: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("raster: unsupported PGM magic %q", magic)
	}
	var w, h, maxv int
	for _, p := range []*int{&w, &h, &maxv} {
		if _, err := fmt.Fscan(br, p); err != nil {
			return nil, fmt.Errorf("raster: reading PGM header: %w", err)
		}
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after maxval
		return nil, err
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535 {
		return nil, fmt.Errorf("raster: implausible PGM header %dx%d max %d", w, h, maxv)
	}
	im := New(w, h, []BandInfo{{Name: "gray", Kind: KindGround}})
	scale := 1 / float32(maxv)
	if maxv < 256 {
		buf := make([]byte, w*h)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("raster: reading PGM pixels: %w", err)
		}
		for i, v := range buf {
			im.Pix[0][i] = float32(v) * scale
		}
		return im, nil
	}
	buf := make([]byte, 2*w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("raster: reading PGM pixels: %w", err)
	}
	for i := 0; i < w*h; i++ {
		im.Pix[0][i] = float32(binary.BigEndian.Uint16(buf[2*i:])) * scale
	}
	return im, nil
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
