package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	im := New(8, 4, PlanetBands())
	if im.Width != 8 || im.Height != 4 || im.NumBands() != 4 {
		t.Fatalf("geometry = %dx%dx%d, want 8x4x4", im.Width, im.Height, im.NumBands())
	}
	for b := 0; b < im.NumBands(); b++ {
		for _, v := range im.Plane(b) {
			if v != 0 {
				t.Fatalf("new image not zeroed: band %d has %v", b, v)
			}
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{0, 4}, {4, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.w, tc.h)
				}
			}()
			New(tc.w, tc.h, PlanetBands())
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	im := New(5, 7, PlanetBands())
	im.Set(2, 3, 4, 0.625)
	if got := im.At(2, 3, 4); got != 0.625 {
		t.Fatalf("At = %v, want 0.625", got)
	}
	if got := im.Plane(2)[4*5+3]; got != 0.625 {
		t.Fatalf("Plane value = %v, want 0.625", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	im := New(4, 4, PlanetBands())
	im.Set(0, 1, 1, 0.5)
	cl := im.Clone()
	cl.Set(0, 1, 1, 0.9)
	if im.At(0, 1, 1) != 0.5 {
		t.Fatalf("clone aliased the original: %v", im.At(0, 1, 1))
	}
}

func TestCloneBand(t *testing.T) {
	im := New(4, 4, Sentinel2Bands())
	im.Fill(5, 0.25)
	one := im.CloneBand(5)
	if one.NumBands() != 1 || one.Bands[0].Name != "B6" {
		t.Fatalf("CloneBand metadata = %+v", one.Bands)
	}
	if one.At(0, 2, 2) != 0.25 {
		t.Fatalf("CloneBand pixels not copied: %v", one.At(0, 2, 2))
	}
}

func TestClamp(t *testing.T) {
	im := New(2, 1, PlanetBands())
	im.Set(0, 0, 0, -0.5)
	im.Set(0, 1, 0, 1.5)
	im.Clamp()
	if im.At(0, 0, 0) != 0 || im.At(0, 1, 0) != 1 {
		t.Fatalf("Clamp produced %v, %v", im.At(0, 0, 0), im.At(0, 1, 0))
	}
}

func TestDownsampleBoxAverage(t *testing.T) {
	im := New(4, 2, []BandInfo{{Name: "g"}})
	vals := []float32{0, 1, 2, 3, 4, 5, 6, 7}
	copy(im.Plane(0), vals)
	lo, err := im.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Width != 2 || lo.Height != 1 {
		t.Fatalf("downsampled geometry %dx%d", lo.Width, lo.Height)
	}
	// Block (0,1,4,5) averages 2.5; block (2,3,6,7) averages 4.5.
	if lo.At(0, 0, 0) != 2.5 || lo.At(0, 1, 0) != 4.5 {
		t.Fatalf("box average = %v, %v", lo.At(0, 0, 0), lo.At(0, 1, 0))
	}
}

func TestDownsampleRejectsNonDivisible(t *testing.T) {
	im := New(6, 6, PlanetBands())
	if _, err := im.Downsample(4); err == nil {
		t.Fatal("expected error for 6x6 / 4")
	}
	if _, err := im.Downsample(0); err == nil {
		t.Fatal("expected error for factor 0")
	}
}

func TestUpsampleNearest(t *testing.T) {
	im := New(2, 1, []BandInfo{{Name: "g"}})
	im.Set(0, 0, 0, 0.25)
	im.Set(0, 1, 0, 0.75)
	hi, err := im.Upsample(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0.25, 0.25, 0.75, 0.75, 0.25, 0.25, 0.75, 0.75}
	for i, v := range hi.Plane(0) {
		if v != want[i] {
			t.Fatalf("upsampled[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestDownsampleUpsampleConstantIsIdentity(t *testing.T) {
	im := New(16, 16, []BandInfo{{Name: "g"}})
	im.Fill(0, 0.3)
	lo, err := im.Downsample(4)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := lo.Upsample(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range hi.Plane(0) {
		if math.Abs(float64(v-0.3)) > 1e-6 {
			t.Fatalf("pixel %d = %v after down/up of constant", i, v)
		}
	}
}

// Property: Downsample preserves the global mean exactly (box filter).
func TestDownsamplePreservesMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := New(32, 32, []BandInfo{{Name: "g"}})
		for i := range im.Plane(0) {
			im.Plane(0)[i] = rng.Float32()
		}
		lo, err := im.Downsample(8)
		if err != nil {
			return false
		}
		return math.Abs(mean(im.Plane(0))-mean(lo.Plane(0))) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func mean(p []float32) float64 {
	var s float64
	for _, v := range p {
		s += float64(v)
	}
	return s / float64(len(p))
}

func TestCopyTileAndZeroTile(t *testing.T) {
	g := MustTileGrid(8, 8, 4)
	src := New(8, 8, []BandInfo{{Name: "g"}})
	dst := New(8, 8, []BandInfo{{Name: "g"}})
	src.Fill(0, 1)
	CopyTile(dst, src, 0, g, 3) // bottom-right tile
	var inside, outside float32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x >= 4 && y >= 4 {
				inside += dst.At(0, x, y)
			} else {
				outside += dst.At(0, x, y)
			}
		}
	}
	if inside != 16 || outside != 0 {
		t.Fatalf("CopyTile inside=%v outside=%v", inside, outside)
	}
	ZeroTile(dst, 0, g, 3)
	if dst.At(0, 5, 5) != 0 {
		t.Fatalf("ZeroTile left %v", dst.At(0, 5, 5))
	}
}

func TestAbsDiffMean(t *testing.T) {
	a := New(2, 2, []BandInfo{{Name: "g"}})
	b := New(2, 2, []BandInfo{{Name: "g"}})
	b.Fill(0, 0.5)
	if got := AbsDiffMean(a, b, 0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("AbsDiffMean = %v, want 0.5", got)
	}
}

func TestSameShape(t *testing.T) {
	a := New(4, 4, PlanetBands())
	if !a.SameShape(New(4, 4, PlanetBands())) {
		t.Fatal("identical shapes reported different")
	}
	if a.SameShape(New(4, 5, PlanetBands())) {
		t.Fatal("different heights reported same")
	}
	if a.SameShape(nil) {
		t.Fatal("nil reported same shape")
	}
}
