// Package raster provides the multi-band imagery substrate used throughout
// the Earth+ reproduction: float32 pixel planes normalised to [0,1], band
// metadata mirroring Sentinel-2 and PlanetScope instruments, a 64x64 tile
// grid, resampling, and the PSNR/MSE quality metrics the paper reports.
package raster

import (
	"fmt"
	"math"
)

// Image is a multi-band raster. Pixel values are float32 in [0,1] (the paper
// normalises pixel values to [0,1] before change detection, §3 footnote 5).
// Band b's plane is Pix[b], stored row-major: Pix[b][y*Width+x].
type Image struct {
	Width  int
	Height int
	Bands  []BandInfo
	Pix    [][]float32
}

// New allocates a zeroed image with the given geometry and band set.
// It panics on non-positive dimensions; images are internal constructions,
// so a bad size is a programming error, not a runtime condition.
func New(width, height int, bands []BandInfo) *Image {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("raster: invalid dimensions %dx%d", width, height))
	}
	if len(bands) == 0 {
		panic("raster: image needs at least one band")
	}
	pix := make([][]float32, len(bands))
	backing := make([]float32, width*height*len(bands))
	for b := range pix {
		pix[b], backing = backing[:width*height], backing[width*height:]
	}
	return &Image{Width: width, Height: height, Bands: bands, Pix: pix}
}

// NumBands reports how many spectral bands the image carries.
func (im *Image) NumBands() int { return len(im.Bands) }

// At returns the value of band b at (x, y).
func (im *Image) At(b, x, y int) float32 { return im.Pix[b][y*im.Width+x] }

// Set stores v into band b at (x, y).
func (im *Image) Set(b, x, y int, v float32) { im.Pix[b][y*im.Width+x] = v }

// Plane returns band b's backing slice (row-major, length Width*Height).
func (im *Image) Plane(b int) []float32 { return im.Pix[b] }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := New(im.Width, im.Height, im.Bands)
	for b := range im.Pix {
		copy(out.Pix[b], im.Pix[b])
	}
	return out
}

// CopyFrom overwrites every plane of im with src's pixels. The images must
// have the same shape; it panics otherwise (like Clone, copying is an
// internal construction step, so a shape mismatch is a programming error).
func (im *Image) CopyFrom(src *Image) {
	if !im.SameShape(src) {
		panic(fmt.Sprintf("raster: CopyFrom shape mismatch %dx%dx%d vs %dx%dx%d",
			im.Width, im.Height, len(im.Bands), src.Width, src.Height, len(src.Bands)))
	}
	for b := range im.Pix {
		copy(im.Pix[b], src.Pix[b])
	}
}

// CloneBand returns a single-band image copied from band b.
func (im *Image) CloneBand(b int) *Image {
	out := New(im.Width, im.Height, []BandInfo{im.Bands[b]})
	copy(out.Pix[0], im.Pix[b])
	return out
}

// Fill sets every pixel of band b to v.
func (im *Image) Fill(b int, v float32) {
	p := im.Pix[b]
	for i := range p {
		p[i] = v
	}
}

// Clamp bounds every pixel of every band into [0,1].
func (im *Image) Clamp() {
	for _, p := range im.Pix {
		for i, v := range p {
			if v < 0 {
				p[i] = 0
			} else if v > 1 {
				p[i] = 1
			}
		}
	}
}

// SameShape reports whether the two images have identical geometry and band
// count (band metadata is not compared).
func (im *Image) SameShape(other *Image) bool {
	return other != nil && im.Width == other.Width && im.Height == other.Height &&
		len(im.Bands) == len(other.Bands)
}

// Equal reports whether two images have the same shape and bit-identical
// pixels in every band (band metadata is not compared). Exact-reproduction
// invariants (reference mirrors, pooled synthesis) are asserted with it.
func (im *Image) Equal(other *Image) bool {
	if !im.SameShape(other) {
		return false
	}
	for b := range im.Pix {
		p, q := im.Pix[b], other.Pix[b]
		for i, v := range p {
			if q[i] != v {
				return false
			}
		}
	}
	return true
}

// Downsample box-averages the image by an integer factor per axis. The image
// dimensions must be divisible by factor. Earth+ downsamples both reference
// images (uplink compression, §4.3) and captures (on-board change and cloud
// detection, §5).
func (im *Image) Downsample(factor int) (*Image, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("raster: downsample factor %d must be positive", factor)
	}
	if factor == 1 {
		return im.Clone(), nil
	}
	if im.Width%factor != 0 || im.Height%factor != 0 {
		return nil, fmt.Errorf("raster: %dx%d not divisible by downsample factor %d",
			im.Width, im.Height, factor)
	}
	w, h := im.Width/factor, im.Height/factor
	out := New(w, h, im.Bands)
	inv := 1 / float32(factor*factor)
	for b := range im.Pix {
		src, dst := im.Pix[b], out.Pix[b]
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				var sum float32
				for dy := 0; dy < factor; dy++ {
					row := (oy*factor + dy) * im.Width
					for dx := 0; dx < factor; dx++ {
						sum += src[row+ox*factor+dx]
					}
				}
				dst[oy*w+ox] = sum * inv
			}
		}
	}
	return out, nil
}

// Upsample replicates each pixel into a factor x factor block (nearest
// neighbour). It is the inverse geometry of Downsample.
func (im *Image) Upsample(factor int) (*Image, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("raster: upsample factor %d must be positive", factor)
	}
	if factor == 1 {
		return im.Clone(), nil
	}
	w, h := im.Width*factor, im.Height*factor
	out := New(w, h, im.Bands)
	for b := range im.Pix {
		src, dst := im.Pix[b], out.Pix[b]
		for y := 0; y < h; y++ {
			srcRow := (y / factor) * im.Width
			dstRow := y * w
			for x := 0; x < w; x++ {
				dst[dstRow+x] = src[srcRow+x/factor]
			}
		}
	}
	return out, nil
}

// CopyTile copies the pixels of tile t (under grid g) in band b from src into
// dst. Both images must have the grid's full-resolution geometry.
func CopyTile(dst, src *Image, b int, g TileGrid, t int) {
	x0, y0, x1, y1 := g.Bounds(t)
	for y := y0; y < y1; y++ {
		copy(dst.Pix[b][y*dst.Width+x0:y*dst.Width+x1], src.Pix[b][y*src.Width+x0:y*src.Width+x1])
	}
}

// ZeroTile fills tile t of band b with zeros ("cloud removal" fills cloudy
// pixels with zero, paper §5).
func ZeroTile(im *Image, b int, g TileGrid, t int) {
	x0, y0, x1, y1 := g.Bounds(t)
	for y := y0; y < y1; y++ {
		row := im.Pix[b][y*im.Width+x0 : y*im.Width+x1]
		for i := range row {
			row[i] = 0
		}
	}
}

// AbsDiffMean returns the mean absolute per-pixel difference between band b
// of a and band b of x over the whole plane.
func AbsDiffMean(a, x *Image, b int) float64 {
	pa, px := a.Pix[b], x.Pix[b]
	var sum float64
	for i := range pa {
		sum += math.Abs(float64(pa[i] - px[i]))
	}
	return sum / float64(len(pa))
}
