package core

import (
	"math"
	"testing"

	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

func planetEnv() *sim.Env {
	return &sim.Env{
		Scene:             scene.New(scene.LargeConstellation(scene.Quick)),
		Orbit:             orbit.Constellation{Satellites: 8, RevisitDays: 8},
		Downlink:          link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		UplinkBytesPerDay: 0, // unlimited unless a test constrains it
	}
}

func TestNewRejectsBadDownsample(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefDownsample = 5 // does not divide tile 16
	if _, err := New(planetEnv(), cfg); err == nil {
		t.Fatal("expected downsample error")
	}
}

func TestEarthPlusEndToEnd(t *testing.T) {
	env := planetEnv()
	sys, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Summarize(res, env.Downlink)
	if s.Captures < 30 {
		t.Fatalf("only %d captures in 40 days with daily visits", s.Captures)
	}
	if s.Captures == s.Dropped {
		t.Fatal("every capture dropped")
	}
	// The natural Planet cloud regime is heavily cloudy; surviving
	// captures often carry haze, so the mean sits below the sunny-sampled
	// figure (see TestEarthPlusOnSampledDataset).
	if s.MeanPSNR < 26 {
		t.Fatalf("mean PSNR = %.1f dB, want >= 26", s.MeanPSNR)
	}
	if s.MeanTileFrac > 0.85 {
		t.Fatalf("mean downloaded-tile fraction = %.2f", s.MeanTileFrac)
	}
	if s.MeanDownBytes <= 0 {
		t.Fatal("no bytes downloaded")
	}
	// With daily constellation visits and ~25% clear days, references
	// should stay young (paper: 4.2 days average on Planet).
	if s.MeanRefAge <= 0 || s.MeanRefAge > 15 {
		t.Fatalf("mean reference age = %.1f days", s.MeanRefAge)
	}
	if s.MeanUpBytesPerDay <= 0 {
		t.Fatal("Earth+ never used the uplink")
	}
}

// TestEarthPlusOnSampledDataset mirrors the paper's Planet evaluation
// conditions (images sampled below 5% cloud coverage): fresh references,
// a small downloaded-tile fraction, and high quality.
func TestEarthPlusOnSampledDataset(t *testing.T) {
	env := planetEnv()
	env.Scene = scene.New(scene.LargeConstellationSampled(scene.Quick))
	sys, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Summarize(res, env.Downlink)
	if s.MeanPSNR < 34 {
		t.Fatalf("sampled mean PSNR = %.1f dB, want >= 34", s.MeanPSNR)
	}
	if s.MeanTileFrac > 0.45 {
		t.Fatalf("sampled tile fraction = %.2f, want < 0.45 (paper: ~20%% changed)", s.MeanTileFrac)
	}
	if s.MeanRefAge > 6 {
		t.Fatalf("sampled mean reference age = %.1f days, want a few days (paper: 4.2)", s.MeanRefAge)
	}
}

func TestGuaranteedDownloadHappens(t *testing.T) {
	env := planetEnv()
	cfg := DefaultConfig()
	cfg.GuaranteePeriodDays = 10
	sys, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 90)
	if err != nil {
		t.Fatal(err)
	}
	guaranteed := 0
	for _, r := range res.Records {
		if r.Guaranteed {
			guaranteed++
			if r.DownTileFrac < 0.5 {
				t.Fatalf("guaranteed download only carried %.2f of tiles", r.DownTileFrac)
			}
		}
	}
	if guaranteed == 0 {
		t.Fatal("no guaranteed download in 50 days with a 10-day period")
	}
}

func TestUplinkBudgetRespected(t *testing.T) {
	env := planetEnv()
	env.UplinkBytesPerDay = 2000
	sys, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 70)
	if err != nil {
		t.Fatal(err)
	}
	for day, up := range res.UpBytesByDay {
		if up > 2000*int64(env.Orbit.Satellites) {
			t.Fatalf("day %d uplink %d exceeds per-satellite budget x fleet", day, up)
		}
	}
}

func TestStarvedUplinkAgesReferences(t *testing.T) {
	env := planetEnv()
	rich, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resRich, err := sim.Run(env, rich, 0, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	envPoor := planetEnv()
	envPoor.UplinkBytesPerDay = 1 // effectively no reference refreshes
	poor, err := New(envPoor, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resPoor, err := sim.Run(envPoor, poor, 0, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	sRich := sim.Summarize(resRich, env.Downlink)
	sPoor := sim.Summarize(resPoor, env.Downlink)
	if sPoor.MeanRefAge <= sRich.MeanRefAge {
		t.Fatalf("starved uplink ref age %.1f should exceed rich %.1f", sPoor.MeanRefAge, sRich.MeanRefAge)
	}
	if sPoor.MeanTileFrac <= sRich.MeanTileFrac {
		t.Fatalf("starved uplink tile frac %.2f should exceed rich %.2f", sPoor.MeanTileFrac, sRich.MeanTileFrac)
	}
}

func TestRefAgeTracksConstellationFreshness(t *testing.T) {
	env := planetEnv()
	sys, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Some reference refresh must have happened after bootstrap: max age
	// should stay far below the simulated span.
	maxAge := 0
	for _, r := range res.Records {
		if r.RefAge > maxAge {
			maxAge = r.RefAge
		}
	}
	if maxAge >= 55 {
		t.Fatalf("references never refreshed: max age %d", maxAge)
	}
}

func TestRefCacheBytesPositive(t *testing.T) {
	env := planetEnv()
	sys, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(env, sys, 0, 40, 50); err != nil {
		t.Fatal(err)
	}
	if sys.RefCacheBytes(0) <= 0 {
		t.Fatal("empty reference cache after run")
	}
	if sys.Ground() == nil {
		t.Fatal("no ground segment")
	}
	if day := sys.Ground().BestRefDay(0); day < 0 {
		t.Fatal("ground has no reference after run")
	}
	_ = math.Pi
}

// Two identical runs must produce byte-identical record streams — the
// whole stack (scene, codec, detection, uplink packing) is deterministic.
func TestRunDeterminism(t *testing.T) {
	run := func() *sim.Result {
		env := planetEnv()
		sys, err := New(env, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 70)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.DownBytes != rb.DownBytes || ra.DownTileFrac != rb.DownTileFrac ||
			ra.Dropped != rb.Dropped || ra.RefAge != rb.RefAge {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, ra, rb)
		}
		if !math.IsNaN(ra.PSNR) && ra.PSNR != rb.PSNR {
			t.Fatalf("record %d PSNR %v vs %v", i, ra.PSNR, rb.PSNR)
		}
	}
	for d, v := range a.UpBytesByDay {
		if b.UpBytesByDay[d] != v {
			t.Fatalf("uplink day %d: %d vs %d", d, v, b.UpBytesByDay[d])
		}
	}
}

// TestUnlimitedStorageMatchesDefault pins the compatibility contract of
// the storage model: the default budget (Table 1's 360 GB, never binding
// at modeled scene scale) and an explicitly unlimited store produce
// byte-identical record streams — bounding the cache changes nothing
// until the budget actually binds.
func TestUnlimitedStorageMatchesDefault(t *testing.T) {
	run := func(cfg Config) []sim.Record {
		t.Helper()
		env := planetEnv()
		sys, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 60)
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	def := run(DefaultConfig())
	unlimited := DefaultConfig()
	unlimited.StorageBytes = -1
	if !sim.RecordsEqualIgnoringTimings(def, run(unlimited)) {
		t.Fatal("explicit unlimited storage diverged from the default budget")
	}
	for _, r := range def {
		if r.RefMiss {
			t.Fatalf("unbounded run missed a reference at day %d loc %d", r.Day, r.Loc)
		}
	}
}

// TestBoundedStorageMissFallback drives a budget that holds only part of
// the reference working set and checks the whole miss path: evictions
// happen, the footprint respects the budget, missed captures fall back to
// reference-free encoding (downloading more than the changed-tile norm),
// and the ground's re-seeding keeps the run alive end to end.
func TestBoundedStorageMissFallback(t *testing.T) {
	// Six rich-content locations visited every 4 days by 2 satellites: one
	// detection-resolution reference is (192/4)^2 * 13 bands * 2 bytes =
	// 59904 bytes, so a 3-reference budget holds half the working set and
	// the ~4-location lookahead re-seeding overflows it every cycle —
	// hits and misses interleave.
	sceneCfg := scene.RichContent(scene.Quick)
	sceneCfg.Locations = sceneCfg.Locations[:6]
	env := &sim.Env{
		Scene:    scene.New(sceneCfg),
		Orbit:    orbit.Constellation{Satellites: 2, RevisitDays: 4},
		Downlink: link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
	cfg := DefaultConfig()
	cfg.StorageBytes = 3 * 59904
	sys, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	ev, misses := sys.StorageStats()
	if ev == 0 || misses == 0 {
		t.Fatalf("budget not binding: %d evictions, %d misses", ev, misses)
	}
	for id := 0; id < env.Orbit.Satellites; id++ {
		if got := sys.RefCacheBytes(id); got > cfg.StorageBytes {
			t.Fatalf("satellite %d cache footprint %d exceeds budget %d", id, got, cfg.StorageBytes)
		}
	}
	missRecs, hitBytes, missBytes, hits := 0, 0.0, 0.0, 0
	for _, r := range res.Records {
		if r.Dropped {
			continue
		}
		if r.RefMiss {
			missRecs++
			missBytes += float64(r.DownBytes)
			if r.RefAge != -1 {
				t.Fatalf("miss record day %d loc %d carries reference age %d", r.Day, r.Loc, r.RefAge)
			}
		} else {
			hits++
			hitBytes += float64(r.DownBytes)
		}
	}
	if missRecs == 0 || hits == 0 {
		t.Fatalf("want a mix of hits and misses, got %d hits / %d misses", hits, missRecs)
	}
	// Reference-free fallbacks download every non-cloudy tile, so the
	// mean missed-capture payload must exceed the mean hit payload.
	if missBytes/float64(missRecs) <= hitBytes/float64(hits) {
		t.Fatalf("miss fallback mean bytes %.0f not above hit mean %.0f",
			missBytes/float64(missRecs), hitBytes/float64(hits))
	}
}

// TestCompressedStorageHoldsMoreAndStaysCoherent runs the bounded
// miss-fallback scenario with ref_compression on at the SAME budget that
// thrashes the raw store: the compressed store (entries at the uplink's
// encoded rate instead of raw 16 bits/sample) must fit strictly more of
// the working set — fewer misses — while the decode-on-visit path serves
// every hit.
func TestCompressedStorageHoldsMoreAndStaysCoherent(t *testing.T) {
	run := func(compress bool) (*sim.Result, *System) {
		sceneCfg := scene.RichContent(scene.Quick)
		sceneCfg.Locations = sceneCfg.Locations[:6]
		env := &sim.Env{
			Scene:    scene.New(sceneCfg),
			Orbit:    orbit.Constellation{Satellites: 2, RevisitDays: 4},
			Downlink: link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		}
		cfg := DefaultConfig()
		cfg.StorageBytes = 3 * 59904 // holds 3/6 raw references per satellite
		cfg.RefCompression = compress
		sys, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 60)
		if err != nil {
			t.Fatal(err)
		}
		return res, sys
	}
	resRaw, sysRaw := run(false)
	resComp, sysComp := run(true)
	_, rawMisses := sysRaw.StorageStats()
	_, compMisses := sysComp.StorageStats()
	if rawMisses == 0 {
		t.Fatal("budget not binding for the raw store; the comparison proves nothing")
	}
	if compMisses >= rawMisses {
		t.Fatalf("compressed store missed %d >= raw %d at the same budget", compMisses, rawMisses)
	}
	rawLocs, rawBytes := sysRaw.ResidentRefs()
	compLocs, compBytes := sysComp.ResidentRefs()
	if compLocs <= rawLocs {
		t.Fatalf("compressed store resident %d <= raw %d at the same budget", compLocs, rawLocs)
	}
	// Real encoded footprints sit well under the raw-rate accounting.
	if rawLocs > 0 && compLocs > 0 {
		rawPerLoc := float64(rawBytes) / float64(rawLocs)
		compPerLoc := float64(compBytes) / float64(compLocs)
		if compPerLoc*2 > rawPerLoc {
			t.Fatalf("compressed entry %.0f B not well below raw %.0f B", compPerLoc, rawPerLoc)
		}
	}
	decodes, _ := sysComp.DecodeStats()
	if decodes == 0 {
		t.Fatal("compressed run never decoded a reference")
	}
	// The decode-on-visit path must actually serve hits: records that are
	// not misses carry a reference age like the raw run's.
	hits := 0
	for _, r := range resComp.Records {
		if !r.Dropped && !r.RefMiss {
			hits++
			if r.RefAge < 0 {
				t.Fatalf("hit record day %d loc %d has no reference age", r.Day, r.Loc)
			}
		}
	}
	if hits == 0 {
		t.Fatal("compressed run never hit a reference")
	}
	_ = resRaw
}

// TestRefCompressionKnobContract pins the registry surface: "off" (and
// absence) is byte-identical to the default raw store, and anything but
// on/off is rejected loudly.
func TestRefCompressionKnobContract(t *testing.T) {
	run := func(params map[string]string) []sim.Record {
		t.Helper()
		env := planetEnv()
		sys, err := registry.New(SystemName, env, registry.Spec{StrParams: params})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 55)
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	def := run(nil)
	off := run(map[string]string{"ref_compression": "off"})
	if !sim.RecordsEqualIgnoringTimings(def, off) {
		t.Fatal("explicit ref_compression=off diverged from the default")
	}
	if _, err := registry.New(SystemName, planetEnv(), registry.Spec{
		StrParams: map[string]string{"ref_compression": "maybe"},
	}); err == nil {
		t.Fatal("ref_compression=maybe accepted")
	}
}
