// Package core implements Earth+ itself — the paper's contribution: a
// constellation-wide reference-based on-board compression system. Each
// satellite keeps downsampled reference images for the locations it will
// visit, detects changed 64x64 tiles against them (after cheap cloud
// removal and illumination alignment), and downloads only the changed
// tiles; the ground refreshes every satellite's references with the
// freshest cloud-free image any satellite produced, delta-encoded to fit
// the narrow uplink (§4).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/constellation"
	"earthplus/internal/container"
	"earthplus/internal/link"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
	"earthplus/internal/station"
)

// Config holds Earth+'s tunables.
type Config struct {
	// Theta is the change threshold at detection resolution, chosen by
	// profiling year-1 data (§5); see the experiments package.
	Theta float64
	// GammaBPP is γ: bits per pixel spent on each downloaded tile (§5).
	GammaBPP float64
	// RefDownsample is the per-axis reference downsampling factor (§4.3).
	RefDownsample int
	// DropCoverage drops captures with more detected cloud than this.
	DropCoverage float64
	// CloudTileFrac marks a tile cloudy above this cloudy-pixel fraction.
	CloudTileFrac float64
	// GuaranteePeriodDays is the guaranteed-download cadence (§5).
	GuaranteePeriodDays int
	// GuaranteeMaxCloud is the most cloud a guaranteed download accepts.
	GuaranteeMaxCloud float64
	// RefBPP is the bits per pixel spent on uplinked reference tiles.
	RefBPP float64
	// MaxRefCloud bounds reference-candidate cloudiness. The paper uses
	// <1% on whole images; our ground promotes the cloud-free archive
	// MOSAIC (cloudy tiles keep their older clear content), so a looser
	// gate only staggers per-tile freshness and never injects clouds.
	MaxRefCloud float64
	// LookaheadDays is how far ahead reference uploads are planned.
	LookaheadDays int
	// RejectCloudFrac makes the ground discard downloaded tiles whose
	// accurately-detected cloud fraction exceeds it instead of applying
	// them to the archive — the operational payoff of ground-side cloud
	// re-detection (§4.3): archives and hence references stay cloud-free
	// even though the cheap on-board detector lets haze through. Zero
	// disables rejection (the ablation bench sweeps this).
	RejectCloudFrac float64
	// StorageBytes caps each satellite's on-board reference store. Zero
	// means the paper's Table 1 default (orbit.DovesSpec().StorageBytes,
	// 360 GB — never binding at modeled scene scale, so results match the
	// unbounded pre-storage-model behavior byte for byte); negative means
	// explicitly unlimited. References are accounted at the detection
	// resolution, RefStoreBitsPerSample bits per stored sample.
	StorageBytes int64
	// EvictPolicy picks which reference goes first when the store is full
	// ("lru" | "schedule"; empty = lru). See sat.Policies.
	EvictPolicy string
	// LinkFaults configures the deterministic fault injector on the
	// ground<->satellite channel (per-frame drop / corrupt / truncate,
	// whole-contact cancel; see link.FaultConfig). The zero value is the
	// perfect channel and keeps every code path — and therefore every
	// Record and trace byte — identical to the pre-injector behavior.
	// With faults on, uplinked reference updates are CRC-gated on board
	// and NACKed back to the ground (which re-sends them with bounded
	// retry priority), and lost downlink frames leave the ground archive
	// stale for that capture.
	LinkFaults link.FaultConfig
	// RefCompression stores each on-board reference as its encoded
	// codestream at the uplink's reference rate (RefBPP, lossy) instead
	// of raw planes: the store charges real encoded bytes against
	// StorageBytes (typically 2-5x below the raw RefStoreBitsPerSample
	// rate, so the same budget holds more locations), captures decode the
	// reference on visit, and the ground simulates the same storage codec
	// on its mirrors so delta uplinks stay bit-coherent with what the
	// satellite's store decodes. Off (the default) keeps the raw store
	// and is byte-identical to the pre-compression behavior.
	RefCompression bool
	// Constellation enables the contended ground-station model: N
	// stations, each serving at most one satellite per contact window,
	// with per-contact uplink budgets replacing the flat per-day budget
	// and a cross-satellite priority scheduler on top of PackUplink's
	// three classes. The zero value keeps the flat-budget behavior byte
	// for byte. See internal/constellation.
	Constellation constellation.Config
	// CodecOpts configures the wavelet codec.
	CodecOpts codec.Options
}

// RefStoreBitsPerSample is the a-priori storage cost of one cached
// reference sample at detection resolution: raw 16-bit quantisation,
// matching the ground mirror's content so delta uplinks stay
// bit-coherent. It aliases sat.RawBitsPerSample — ONE constant across
// layers — and with RefCompression on it is only the estimate rate
// (working sets, sweep budget fractions); real footprints are the
// measured encoded bytes.
const RefStoreBitsPerSample = sat.RawBitsPerSample

// DefaultStorageBudget is the derived default reference-store budget: the
// Doves Table 1 on-board storage (360 GB).
func DefaultStorageBudget() int64 { return sat.ResolveBudget(0) }

// CacheConfig resolves the on-board reference-store configuration this
// Config produces, minus the per-satellite NextVisit schedule core.New
// fills in. It is the ONE derivation shared by New and by everything
// estimating reference working sets outside core (the storage sweep),
// so budget math cannot drift from what the caches actually charge.
func (c Config) CacheConfig() sat.CacheConfig {
	return sat.CacheConfig{
		BudgetBytes:   sat.ResolveBudget(c.StorageBytes),
		BitsPerSample: RefStoreBitsPerSample,
		Policy:        sat.Policy(c.EvictPolicy),
		Compress:      c.RefCompression,
		// One representation for uplink and storage: references live on
		// board at the rate they arrived at, with the ground's update
		// codec options, so mirror simulation and store agree bit-exact.
		StoreBPP: c.RefBPP,
		Codec:    c.CodecOpts,
	}
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig() Config {
	return Config{
		Theta:               0.008,
		GammaBPP:            1.0,
		RefDownsample:       4,
		DropCoverage:        0.5,
		CloudTileFrac:       0.25,
		GuaranteePeriodDays: 30,
		GuaranteeMaxCloud:   0.05,
		RefBPP:              6.0,
		MaxRefCloud:         0.05,
		LookaheadDays:       3,
		RejectCloudFrac:     0, // self-heal via re-download beats rejection (see ablation bench)
		StorageBytes:        0, // Table 1 default (360 GB)
		EvictPolicy:         string(sat.PolicyLRU),
		CodecOpts:           codec.DefaultOptions(),
	}
}

// System is the Earth+ implementation of sim.System.
//
// Concurrency: OnCapture is safe for concurrent calls on DISTINCT
// locations (the sharded engine's contract). All mutable state is sharded
// by location — lastGuar and the ground segment's archive/reference slots
// are per-location, the per-satellite reference caches are only read
// during captures (RefCache locks internally) — and the cross-location
// uplink packing happens in OnDayEnd, which the engine runs on its
// sequential day-end barrier.
type System struct {
	cfg      Config
	env      *sim.Env
	pipeline *sat.Pipeline
	cacheMu  sync.RWMutex
	caches   map[int]*sat.RefCache // per satellite; prefilled in New
	ground   *station.Ground
	// channel is the fault-injected link (nil = perfect channel, which
	// bypasses the injector entirely). Transmit outcomes are pure
	// functions of (seed, direction, sat, day, loc), so concurrent
	// downlink draws from sharded workers stay deterministic; linkStats
	// counters are atomic for the same reason.
	channel   *link.Channel
	linkStats linkCounters
	// sched books ground-station contact windows when the constellation
	// model is on (nil otherwise); contactBudget is the resolved
	// per-contact uplink byte budget (-1 = unlimited) and contacts is the
	// run's booked-contact log. All three are only touched from New and
	// the sequential day-end barrier.
	sched         *constellation.Scheduler
	contactBudget int64
	contacts      []sim.ContactRecord
	lastGuar      []int // per location: day of last guaranteed download
	// planned[sat][day%RevisitDays] lists the locations sat visits within
	// the lookahead window after such a day, soonest first. The orbit
	// schedule is periodic in RevisitDays, so these sets are precomputed
	// once in New; OnDayEnd used to rebuild them every day with a linear
	// membership scan per visit.
	planned [][][]int
}

var _ sim.System = (*System)(nil)

// New wires an Earth+ system for the environment.
func New(env *sim.Env, cfg Config) (*System, error) {
	bands := env.Scene.Bands()
	grid := env.Scene.Grid()
	if cfg.RefDownsample <= 0 || grid.Tile%cfg.RefDownsample != 0 {
		return nil, fmt.Errorf("core: RefDownsample %d incompatible with tile %d", cfg.RefDownsample, grid.Tile)
	}
	var channel *link.Channel
	if cfg.LinkFaults.Enabled() {
		var err error
		if channel, err = link.NewChannel(cfg.LinkFaults); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	} else if err := cfg.LinkFaults.Validate(); err != nil {
		// Negative rates never fire but must still be rejected loudly.
		return nil, fmt.Errorf("core: %w", err)
	}
	ground, err := station.NewGround(station.Config{
		Bands:       bands,
		Grid:        grid,
		Downsample:  cfg.RefDownsample,
		Accurate:    cloud.DefaultTemporal(bands),
		CodecOpts:   cfg.CodecOpts,
		RefBPP:      cfg.RefBPP,
		MaxRefCloud: cfg.MaxRefCloud,
		// A compressed on-board store holds storage-codec content; the
		// ground must model exactly that, or delta uplinks would be
		// encoded against references the satellite never quite held.
		CompressRefs: cfg.RefCompression,
	}, env.Scene.NumLocations())
	if err != nil {
		return nil, err
	}
	lastGuar := make([]int, env.Scene.NumLocations())
	for i := range lastGuar {
		lastGuar[i] = -1 << 30
	}
	// Prefill the per-satellite caches so the capture hot path only ever
	// reads the map (concurrent lazy insertion would race). Each cache is
	// bounded by the satellite's storage budget; the schedule policy
	// predicts revisits from the same orbit schedule the uplink planner's
	// per-phase visit sets are built from.
	caches := make(map[int]*sat.RefCache, env.Orbit.Satellites)
	for id := 0; id < env.Orbit.Satellites; id++ {
		satID := id
		cc := cfg.CacheConfig()
		cc.NextVisit = func(loc, afterDay int) int {
			return env.Orbit.NextVisit(satID, loc, afterDay)
		}
		cache, err := sat.NewBoundedRefCache(cc)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		caches[id] = cache
	}
	var sched *constellation.Scheduler
	contactBudget := int64(0)
	if cfg.Constellation.Enabled() {
		if sched, err = constellation.NewScheduler(cfg.Constellation); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		contactBudget = cfg.Constellation.ResolveContactBudget(env.UplinkBytesPerDay)
	} else if err := cfg.Constellation.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		cfg:           cfg,
		env:           env,
		sched:         sched,
		contactBudget: contactBudget,
		planned:       planVisits(env, cfg.LookaheadDays),
		pipeline: &sat.Pipeline{
			Bands:         bands,
			Grid:          grid,
			Downsample:    cfg.RefDownsample,
			CloudDet:      cloud.DefaultCheap(bands),
			Theta:         cfg.Theta,
			DropCoverage:  cfg.DropCoverage,
			CloudTileFrac: cfg.CloudTileFrac,
		},
		caches:   caches,
		ground:   ground,
		channel:  channel,
		lastGuar: lastGuar,
	}, nil
}

// Name implements sim.System.
func (s *System) Name() string { return "Earth+" }

// cacheFor returns a satellite's reference cache. Every id below
// Orbit.Satellites is prefilled at construction; the locked fallback only
// serves out-of-range ids (e.g. hand-built test fixtures).
func (s *System) cacheFor(satID int) *sat.RefCache {
	s.cacheMu.RLock()
	c0 := s.caches[satID]
	s.cacheMu.RUnlock()
	if c0 != nil {
		return c0
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	c := s.caches[satID]
	if c == nil {
		c = sat.NewRefCache()
		s.caches[satID] = c
	}
	return c
}

// Bootstrap implements sim.System: it seeds the ground archive and every
// satellite's reference cache with the location's pre-mission history.
func (s *System) Bootstrap(cap *scene.Capture) error {
	sats := make([]int, s.env.Orbit.Satellites)
	for i := range sats {
		sats[i] = i
	}
	if err := s.ground.SeedBootstrap(cap.Loc, cap.Day, cap.Truth, sats); err != nil {
		return err
	}
	low, err := cap.Truth.Downsample(s.cfg.RefDownsample)
	if err != nil {
		return err
	}
	// With RefCompression every satellite stores the identical seed frame:
	// encode once and route it into each store (the frames are immutable),
	// instead of paying the deterministic storage encode per satellite.
	var frame container.Codestream
	if s.cfg.RefCompression {
		if frame, err = sat.EncodeStoredRef(low, s.cfg.RefBPP, s.cfg.CodecOpts); err != nil {
			return fmt.Errorf("core: bootstrap: %w", err)
		}
	}
	for _, id := range sats {
		var evicted []int
		if frame != nil {
			evicted = s.cacheFor(id).PutFrame(cap.Loc, frame, low, cap.Day)
		} else {
			evicted = s.cacheFor(id).Put(cap.Loc, low.Clone(), cap.Day)
		}
		for _, loc := range evicted {
			// A bootstrap store already over budget sheds references; the
			// ground must not believe the satellite still holds them.
			s.ground.InvalidateMirror(id, loc)
		}
	}
	s.lastGuar[cap.Loc] = cap.Day
	return nil
}

// fullAlias reinterprets a detection-resolution tile mask on the full grid
// (tile indices are scale-invariant).
func fullAlias(m *raster.TileMask, full raster.TileGrid) *raster.TileMask {
	if m == nil {
		return nil
	}
	return &raster.TileMask{Grid: full, Set: m.Set}
}

// OnCapture implements sim.System: the on-board pipeline followed by the
// ground-side application of the downloaded tiles.
func (s *System) OnCapture(cap *scene.Capture) (sim.Outcome, error) {
	grid := s.env.Scene.Grid()
	// Visit (not Get): the lookup records recency for eviction and counts
	// misses. A miss — the reference was evicted under the storage budget —
	// leaves ref nil, and the ROI selection below falls back to
	// reference-free encoding of every non-cloudy tile; the ground re-seeds
	// the reference on the next uplink cycle.
	ref := s.cacheFor(cap.Sat).Visit(cap.Loc, cap.Day)
	res, err := s.pipeline.Process(cap.Image, ref)
	if err != nil {
		return sim.Outcome{}, err
	}
	out := sim.Outcome{
		TotalTiles: grid.NumTiles(),
		CloudSec:   res.CloudSec,
		ChangeSec:  res.ChangeSec,
		RefAge:     -1,
		RefMiss:    ref == nil,
	}
	if ref != nil {
		out.RefAge = cap.Day - ref.Day
	}
	if res.Dropped {
		out.Dropped = true
		return out, nil
	}

	// Pick this capture's region of interest per band.
	nonCloud := res.CloudTiles.Clone()
	nonCloud.Invert()
	guaranteed := cap.Day-s.lastGuar[cap.Loc] >= s.cfg.GuaranteePeriodDays &&
		res.CloudCover <= s.cfg.GuaranteeMaxCloud
	roi := make([]*raster.TileMask, len(s.pipeline.Bands))
	switch {
	case guaranteed || res.Changed == nil:
		// Guaranteed download (§5), or no usable reference: everything
		// that is not cloudy goes down.
		for b := range roi {
			roi[b] = nonCloud
		}
		if guaranteed {
			s.lastGuar[cap.Loc] = cap.Day
			out.Guaranteed = true
		}
	default:
		for b := range roi {
			roi[b] = fullAlias(res.Changed[b], grid)
		}
	}

	// Normalise the capture into the reference illumination domain before
	// encoding so the ground archive stays radiometrically coherent.
	work := cap.Image.Clone()
	if res.Illum != nil {
		for b := range work.Pix {
			res.Illum[b].Normalize(work.Plane(b))
		}
	}
	tEnc := time.Now()
	frame, err := sat.EncodeROI(work, roi, s.cfg.GammaBPP, s.cfg.CodecOpts)
	if err != nil {
		return sim.Outcome{}, err
	}
	out.EncodeSec = time.Since(tEnc).Seconds()
	lens, err := frame.PerBandLens()
	if err != nil {
		return sim.Outcome{}, err
	}
	var tileSum int
	out.PerBandBytes = make([]int64, len(lens))
	for b, n := range lens {
		out.PerBandBytes[b] = int64(n)
		out.DownBytes += int64(n)
		if roi[b] != nil {
			tileSum += roi[b].Count()
		}
	}
	out.DownTilesPerBand = float64(tileSum) / float64(len(roi))

	// Downlink fault injection: the frame was transmitted (DownBytes is
	// spent either way), but only what survives the channel reaches the
	// ground, and the ground's CRC gate rejects damaged frames whole
	// rather than splicing garbage into the archive. A lost frame leaves
	// the archive (and this capture's Recon) stale; there is no downlink
	// retransmit — the next visit re-captures fresher content anyway. The
	// guaranteed-download bookkeeping above stands: the satellite cannot
	// observe the loss at capture time.
	if s.channel.Enabled() {
		s.linkStats.downFrames.Add(1)
		rx, txo := s.channel.Transmit(link.Downlink, cap.Sat, cap.Day, cap.Loc, frame)
		if !txo.Arrived() {
			s.linkStats.downDropped.Add(1)
			out.DownDropped = true
			out.Recon = s.ground.Recon(cap.Loc)
			return out, nil
		}
		if err := sat.ValidateFrame(rx); err != nil {
			s.linkStats.downCorrupted.Add(1)
			out.DownCorrupted = true
			out.Recon = s.ground.Recon(cap.Loc)
			return out, nil
		}
	}

	// Ground side: re-detect clouds accurately against the archive, apply
	// the download while rejecting haze-contaminated tiles, then refresh
	// the reference candidacy.
	var reject *raster.TileMask
	if s.cfg.RejectCloudFrac > 0 {
		// Pre-application detection: contaminated tiles must be caught
		// before they enter the archive.
		preMask := s.ground.AccurateMask(cap.Image, cap.Loc)
		reject = preMask.TileMask(grid, s.cfg.RejectCloudFrac)
	}
	if err := s.ground.ApplyDownload(cap.Loc, cap.Day, frame, roi, reject); err != nil {
		return sim.Outcome{}, err
	}
	// Promotion coverage must be assessed against the REFRESHED archive:
	// before the download lands, accumulated terrestrial change would
	// read as cloud and block every promotion.
	postMask := s.ground.AccurateMask(cap.Image, cap.Loc)
	if _, err := s.ground.MaybePromote(cap.Loc, cap.Day, postMask.Coverage()); err != nil {
		return sim.Outcome{}, err
	}
	out.Recon = s.ground.Recon(cap.Loc)
	return out, nil
}

// OnDayEnd implements sim.System: the ground packs reference updates for
// each satellite's upcoming passes into the day's uplink budget. With the
// constellation model on, the flat per-day budget is replaced by booked
// ground-station contact windows with per-contact budgets.
func (s *System) OnDayEnd(day int) (int64, error) {
	if s.sched != nil {
		return s.contendedDayEnd(day)
	}
	var total int64
	for satID := 0; satID < s.env.Orbit.Satellites; satID++ {
		locs := s.plannedLocs(satID, day)
		if len(locs) == 0 {
			continue
		}
		meter := link.NewMeter(s.env.UplinkBytesPerDay)
		updates, err := s.ground.PackUplink(satID, day, locs, meter)
		if err != nil {
			return total, err
		}
		total += s.deliverUpdates(satID, day, updates)
	}
	return total, nil
}

// contendedDayEnd is the constellation day-end: each satellite's pending
// uplink work (station.Ground.PendingUplink over its planned visit window)
// becomes a cross-satellite demand, the scheduler books the day's station
// contact windows, and each booked contact packs against ITS OWN meter.
// A satellite booked into several windows keeps packing where the last
// contact left off — PackUplink skips locations whose mirror is already
// current. Satellites whose pending work won no window stall until
// tomorrow: that starvation, not a shrunken budget, is what station
// contention costs.
func (s *System) contendedDayEnd(day int) (int64, error) {
	demands := make([]constellation.Demand, 0, s.env.Orbit.Satellites)
	for satID := 0; satID < s.env.Orbit.Satellites; satID++ {
		locs := s.plannedLocs(satID, day)
		if len(locs) == 0 {
			continue
		}
		re, de, dm := s.ground.PendingUplink(satID, locs)
		demands = append(demands, constellation.Demand{
			Sat: satID, Reseeds: re, Deltas: de, Demoted: dm,
		})
	}
	contacts := s.sched.Schedule(day, demands)
	var total int64
	for i := range contacts {
		ct := &contacts[i]
		meter := link.NewMeter(s.contactBudget)
		updates, err := s.ground.PackUplink(ct.Sat, day, s.plannedLocs(ct.Sat, day), meter)
		if err != nil {
			return total, err
		}
		ct.Bytes = s.deliverUpdates(ct.Sat, day, updates)
		total += ct.Bytes
	}
	s.contacts = append(s.contacts, contacts...)
	return total, nil
}

// deliverUpdates transmits one satellite's packed updates through the
// (possibly fault-injected) channel and installs what survives, returning
// the uplink bytes transmitted. It runs only on the sequential day-end
// barrier.
func (s *System) deliverUpdates(satID, day int, updates []station.RefUpdate) int64 {
	cache := s.cacheFor(satID)
	if s.channel.Enabled() && len(updates) > 0 && s.channel.ContactCanceled(link.Uplink, satID, day) {
		s.linkStats.upContactsLost.Add(1)
	}
	var total int64
	for _, u := range updates {
		// The bytes were transmitted (and PackUplink already consumed
		// them from the day's meter) whether or not delivery succeeds:
		// retransmissions therefore compete INSIDE the same budget,
		// never on top of it.
		total += u.Bytes
		if !s.channel.Enabled() {
			s.install(cache, satID, u)
			continue
		}
		s.linkStats.upUpdates.Add(1)
		if u.Retransmit {
			s.linkStats.retransmits.Add(1)
			s.linkStats.retransmitBytes.Add(u.Bytes)
		}
		rx, txo := s.channel.Transmit(link.Uplink, satID, day, u.Loc, u.Frame)
		if !txo.Arrived() {
			// Nothing reached the satellite; the missing per-update ACK
			// tells the ground, which rolls its optimistic mirror commit
			// back so the next contact re-sends the full reference.
			s.linkStats.upDropped.Add(1)
			s.ground.NackDelivery(satID, u.Loc)
			continue
		}
		// CRC gate: a damaged frame (single-byte corruption is always
		// CRC-32C detectable, truncation breaks the parse) is rejected
		// whole and NACKed; the on-board cache keeps its stale but
		// coherent reference. Once the received bytes validate they
		// equal the sent bytes, so installing the ground-computed
		// Decoded/StoreFrame content is exactly what decoding rx would
		// produce.
		if err := sat.ValidateFrame(rx); err != nil {
			s.linkStats.upCorrupted.Add(1)
			s.ground.NackDelivery(satID, u.Loc)
			continue
		}
		if u.StoreFrame != nil {
			// Defense in depth for the compressed install path: the
			// storage frame goes into the store verbatim, so it passes
			// the same gate before PutFrame may keep it.
			if err := sat.ValidateFrame(u.StoreFrame); err != nil {
				s.linkStats.upCorrupted.Add(1)
				s.ground.NackDelivery(satID, u.Loc)
				continue
			}
		}
		s.install(cache, satID, u)
		s.ground.AckDelivery(satID, u.Loc)
	}
	return total
}

// ContactLog implements sim.ContactReporter: the booked ground-station
// contacts of the run, nil under the flat per-day budget. Contacts carry
// no wall-clock fields and scheduling runs only on the serial day-end
// barrier, so the log is byte-identical at any engine worker count.
func (s *System) ContactLog() []sim.ContactRecord { return s.contacts }

// ContactBudget returns the resolved per-contact uplink budget in bytes
// (-1 = unlimited; 0 when the constellation model is off).
func (s *System) ContactBudget() int64 { return s.contactBudget }

// ConstellationStats snapshots the contact scheduler's outcomes (zero
// value when the constellation model is off).
func (s *System) ConstellationStats() constellation.Stats {
	if s.sched == nil {
		return constellation.Stats{}
	}
	return s.sched.Stats()
}

// install applies one delivered update to a satellite's store. Installing
// can push the store over budget; every eviction invalidates the ground's
// mirror so the next cycle re-sends the full reference instead of a stale
// delta. This runs on the engine's sequential day-end barrier, so
// eviction order is identical at any worker count. With RefCompression
// the ground already produced the storage frame — it routes into the
// store as-is, no raw expansion, no re-encode.
func (s *System) install(cache *sat.RefCache, satID int, u station.RefUpdate) {
	var evicted []int
	if u.StoreFrame != nil {
		evicted = cache.PutFrame(u.Loc, u.StoreFrame, u.Decoded, u.Day)
	} else {
		evicted = cache.Put(u.Loc, u.Decoded, u.Day)
	}
	for _, loc := range evicted {
		s.ground.InvalidateMirror(satID, loc)
	}
}

// planVisits precomputes, for every (satellite, day phase) pair, the
// deduplicated locations the satellite visits within lookahead days after
// a day with that phase, soonest first (the paper predicts passes from
// TLE data, §4.2). The visit schedule only depends on day modulo the
// revisit period, so one table covers the whole mission.
func planVisits(env *sim.Env, lookahead int) [][][]int {
	period := env.Orbit.RevisitDays
	nLoc := env.Scene.NumLocations()
	if period <= 0 || env.Orbit.Satellites <= 0 {
		return nil // invalid orbit; the simulator rejects it before any run
	}
	planned := make([][][]int, env.Orbit.Satellites)
	seen := make([]bool, nLoc)
	for satID := range planned {
		planned[satID] = make([][]int, period)
		for p := 0; p < period; p++ {
			clear(seen)
			var locs []int
			for d := 1; d <= lookahead; d++ {
				// p+d is a representative day ≥ 0 with the right phase.
				for loc := 0; loc < nLoc; loc++ {
					if !seen[loc] && env.Orbit.Visits(satID, loc, p+d) {
						seen[loc] = true
						locs = append(locs, loc)
					}
				}
			}
			planned[satID][p] = locs
		}
	}
	return planned
}

// plannedLocs returns the precomputed lookahead visit list for satID after
// day. Callers must not mutate the returned slice.
func (s *System) plannedLocs(satID, day int) []int {
	period := s.env.Orbit.RevisitDays
	if period <= 0 || satID < 0 || satID >= len(s.planned) {
		return nil
	}
	return s.planned[satID][((day%period)+period)%period]
}

// Ground exposes the ground segment for experiments (storage and uplink
// accounting).
func (s *System) Ground() *station.Ground { return s.ground }

// RefCacheBytes reports the on-board reference cache footprint of one
// satellite at the store's RefStoreBitsPerSample accounting.
func (s *System) RefCacheBytes(satID int) int64 {
	return s.cacheFor(satID).StorageBytes(RefStoreBitsPerSample)
}

// StorageStats sums capacity evictions and reference-lookup misses across
// the fleet's on-board stores — the observable signal that a storage
// budget is binding (the storage-sweep experiment reports it).
func (s *System) StorageStats() (evictions, misses int64) {
	for id := 0; id < s.env.Orbit.Satellites; id++ {
		e, m := s.cacheFor(id).Stats()
		evictions += e
		misses += m
	}
	return evictions, misses
}

// ResidentRefs sums the fleet's resident reference count and its REAL
// accounted footprint (encoded bytes under RefCompression, raw-rate bytes
// otherwise) — what the storage sweep reads to show how many locations a
// budget actually holds.
func (s *System) ResidentRefs() (locations int, bytes int64) {
	for id := 0; id < s.env.Orbit.Satellites; id++ {
		c := s.cacheFor(id)
		locations += c.Len()
		bytes += c.FootprintBytes()
	}
	return locations, bytes
}

// linkCounters tallies channel fault events. Downlink counters are
// bumped from concurrent capture workers, hence atomics; the totals are
// order-independent so they stay deterministic at any worker count.
type linkCounters struct {
	upUpdates, upDropped, upCorrupted, upContactsLost atomic.Int64
	retransmits, retransmitBytes                      atomic.Int64
	downFrames, downDropped, downCorrupted            atomic.Int64
}

// LinkStats is a snapshot of the fault-injected channel's observable
// effects over a run. All fields are zero on the perfect channel.
type LinkStats struct {
	// UplinkUpdates counts reference updates offered to the channel;
	// UplinkDropped those that vanished (frame drop or canceled
	// contact), UplinkCorrupted those that arrived damaged and were
	// rejected by the satellite's CRC gate, and UplinkContactsLost the
	// canceled (satellite, day) contact windows.
	UplinkUpdates, UplinkDropped, UplinkCorrupted, UplinkContactsLost int64
	// Retransmits counts updates re-sending previously failed content;
	// RetransmitBytes is their uplink cost, consumed from the same daily
	// budget as first transmissions.
	Retransmits, RetransmitBytes int64
	// DownlinkFrames counts capture downloads offered to the channel;
	// DownlinkDropped/DownlinkCorrupted the ones the ground never
	// applied.
	DownlinkFrames, DownlinkDropped, DownlinkCorrupted int64
}

// LinkStats snapshots the channel fault counters for this run.
func (s *System) LinkStats() LinkStats {
	return LinkStats{
		UplinkUpdates:      s.linkStats.upUpdates.Load(),
		UplinkDropped:      s.linkStats.upDropped.Load(),
		UplinkCorrupted:    s.linkStats.upCorrupted.Load(),
		UplinkContactsLost: s.linkStats.upContactsLost.Load(),
		Retransmits:        s.linkStats.retransmits.Load(),
		RetransmitBytes:    s.linkStats.retransmitBytes.Load(),
		DownlinkFrames:     s.linkStats.downFrames.Load(),
		DownlinkDropped:    s.linkStats.downDropped.Load(),
		DownlinkCorrupted:  s.linkStats.downCorrupted.Load(),
	}
}

// DecodeStats sums the fleet's decode-on-visit counters (zero without
// RefCompression). Advisory: see sat.RefCache.DecodeStats.
func (s *System) DecodeStats() (decodes, lruHits int64) {
	for id := 0; id < s.env.Orbit.Satellites; id++ {
		d, h := s.cacheFor(id).DecodeStats()
		decodes += d
		lruHits += h
	}
	return decodes, lruHits
}

// DecodeWall sums the fleet's decode-on-visit wall-clock (zero without
// RefCompression). Advisory like DecodeStats, but it is the measured
// CPU price of the compressed store, which the sim-engine snapshot
// records alongside the counters.
func (s *System) DecodeWall() time.Duration {
	var total time.Duration
	for id := 0; id < s.env.Orbit.Satellites; id++ {
		total += s.cacheFor(id).DecodeWall()
	}
	return total
}

// TileStats sums the fleet's codec-tile counters under the tiled store
// profile: tiles actually entropy-coded by per-tile splices versus the
// tiles whole-frame re-encodes would have touched (zero on the
// monolithic profile or without RefCompression). Advisory like
// DecodeStats — the counters never influence results.
func (s *System) TileStats() (decoded, total int64) {
	for id := 0; id < s.env.Orbit.Satellites; id++ {
		d, tt := s.cacheFor(id).TileStats()
		decoded += d
		total += tt
	}
	return decoded, total
}

// SpliceTileStats reports the ground segment's per-tile mirror splice
// counters under the tiled store profile: codec tiles re-encoded versus
// the tiles whole-mirror re-encodes would have touched. Advisory like
// TileStats.
func (s *System) SpliceTileStats() (reencoded, total int64) {
	return s.ground.SpliceTileStats()
}
