package core

import (
	"earthplus/internal/constellation"
	"earthplus/internal/eperr"
	"earthplus/internal/link"
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// SystemName is Earth+'s name in the system registry.
const SystemName = "earthplus"

// Earth+ self-registers so experiments, cmds and the public pkg/earthplus
// API construct it by name through one code path. The Params knobs mirror
// the Config fields the ablation studies sweep; presence is meaningful
// (an explicit zero overrides the default), and unknown keys error.
func init() {
	registry.Register(SystemName, func(env *sim.Env, spec registry.Spec) (sim.System, error) {
		if err := registry.CheckParams(spec, SystemName,
			"guarantee_days", "guarantee_max_cloud", "reject_cloud_frac",
			"ref_downsample", "lookahead_days", "drop_coverage", "ref_bpp",
			"storage_bytes", "link_loss", "link_seed",
			"stations", "contact_budget"); err != nil {
			return nil, err
		}
		if err := registry.CheckStrParams(spec, SystemName,
			"evict_policy", "ref_compression", "tiled_store", "constellation"); err != nil {
			return nil, err
		}
		cfg := DefaultConfig()
		cfg.GammaBPP = spec.GammaBPP
		cfg.CodecOpts = spec.Codec
		if spec.Theta > 0 {
			cfg.Theta = spec.Theta
		}
		if v, ok := spec.Param("guarantee_days"); ok {
			cfg.GuaranteePeriodDays = int(v)
		}
		if v, ok := spec.Param("guarantee_max_cloud"); ok {
			cfg.GuaranteeMaxCloud = v
		}
		if v, ok := spec.Param("reject_cloud_frac"); ok {
			cfg.RejectCloudFrac = v
		}
		if v, ok := spec.Param("ref_downsample"); ok {
			cfg.RefDownsample = int(v)
		}
		if v, ok := spec.Param("lookahead_days"); ok {
			cfg.LookaheadDays = int(v)
		}
		if v, ok := spec.Param("drop_coverage"); ok {
			cfg.DropCoverage = v
		}
		if v, ok := spec.Param("ref_bpp"); ok {
			cfg.RefBPP = v
		}
		if v, ok := spec.StorageBytesParam(); ok {
			cfg.StorageBytes = v
		}
		if v, ok := spec.Param("link_loss"); ok {
			// One aggregate knob spread over the fault taxonomy; link_seed
			// (default 1) picks the deterministic fault pattern and is
			// meaningful only alongside link_loss.
			if v < 0 || v > 1 {
				return nil, eperr.New(eperr.BadConfig, "core",
					"link_loss must be in [0,1], got %v", v)
			}
			seed := uint64(1)
			if sv, ok := spec.Param("link_seed"); ok {
				seed = uint64(sv)
			}
			cfg.LinkFaults = link.UniformFaults(v, seed)
		}
		if v, ok := spec.StrParam("evict_policy"); ok {
			cfg.EvictPolicy = v
		}
		if v, ok := spec.StrParam("ref_compression"); ok {
			switch v {
			case "on":
				cfg.RefCompression = true
			case "off":
				cfg.RefCompression = false
			default:
				return nil, eperr.New(eperr.BadConfig, "core",
					"ref_compression must be \"on\" or \"off\", got %q", v)
			}
		}
		if v, ok := spec.StrParam("tiled_store"); ok {
			// The tiled (EPT1) codestream profile for every codec pass in
			// the loop: uplinked updates, ROI downloads and the compressed
			// store, enabling per-tile splice and region decode-on-visit.
			// Off (the default) keeps the monolithic v1 profile byte for
			// byte.
			switch v {
			case "on":
				cfg.CodecOpts.Tiled = true
			case "off":
				cfg.CodecOpts.Tiled = false
			default:
				return nil, eperr.New(eperr.BadConfig, "core",
					"tiled_store must be \"on\" or \"off\", got %q", v)
			}
		}
		// Constellation ground-segment model: "constellation" on/off is the
		// switch ("on" alone books constellation.DefaultStations stations);
		// "stations" sets the station count and implies on; "contact_budget"
		// (bytes per contact window, negative = unlimited, zero = derive
		// from the flat per-day budget) is only meaningful when enabled.
		constOn := false
		if v, ok := spec.StrParam("constellation"); ok {
			switch v {
			case "on":
				constOn = true
			case "off":
				constOn = false
			default:
				return nil, eperr.New(eperr.BadConfig, "core",
					"constellation must be \"on\" or \"off\", got %q", v)
			}
		}
		if v, ok := spec.Param("stations"); ok {
			n := int(v)
			if n <= 0 || float64(n) != v {
				return nil, eperr.New(eperr.BadConfig, "core",
					"stations must be a positive integer, got %v", v)
			}
			if sv, set := spec.StrParam("constellation"); set && sv == "off" {
				return nil, eperr.New(eperr.BadConfig, "core",
					"stations=%d conflicts with constellation=\"off\"", n)
			}
			cfg.Constellation.Stations = n
		} else if constOn {
			cfg.Constellation.Stations = constellation.DefaultStations
		}
		if v, ok := spec.Param("contact_budget"); ok {
			if !cfg.Constellation.Enabled() {
				return nil, eperr.New(eperr.BadConfig, "core",
					"contact_budget requires the constellation model (set constellation=\"on\" or stations)")
			}
			cfg.Constellation.ContactBudgetBytes = int64(v)
		}
		return New(env, cfg)
	})
}
