package core

import (
	"testing"

	"earthplus/internal/link"
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// TestLossyRunGracefulAndCoherent is the end-to-end robustness
// acceptance: a full Earth+ run over a channel losing ~5% of frames
// (every fault kind enabled) must complete without error, actually
// exercise the fault taxonomy and the retransmit path, keep the
// ground/satellite coherence invariant intact at the end of the mission,
// and still produce usable imagery.
func TestLossyRunGracefulAndCoherent(t *testing.T) {
	env := planetEnv()
	env.UplinkBytesPerDay = 64 << 10 // tight enough that retransmits compete with fresh traffic
	cfg := DefaultConfig()
	cfg.LinkFaults = link.UniformFaults(0.05, 1)
	sys, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.LinkStats()
	if stats.UplinkUpdates == 0 || stats.DownlinkFrames == 0 {
		t.Fatalf("channel never exercised: %+v", stats)
	}
	if stats.UplinkDropped+stats.UplinkCorrupted == 0 {
		t.Fatalf("no uplink faults fired at 5%% loss: %+v", stats)
	}
	if stats.DownlinkDropped+stats.DownlinkCorrupted == 0 {
		t.Fatalf("no downlink faults fired at 5%% loss: %+v", stats)
	}
	if stats.Retransmits == 0 || stats.RetransmitBytes == 0 {
		t.Fatalf("lost updates never retransmitted: %+v", stats)
	}
	var downFaults int
	for _, r := range res.Records {
		if r.DownDropped || r.DownCorrupted {
			downFaults++
		}
	}
	if int64(downFaults) != stats.DownlinkDropped+stats.DownlinkCorrupted {
		t.Fatalf("records carry %d downlink faults, stats %d",
			downFaults, stats.DownlinkDropped+stats.DownlinkCorrupted)
	}
	// Coherence after a lossy mission: wherever the ground still mirrors
	// a reference, the satellite holds byte-equal content — no fault may
	// ever leave a mirror pointing at state the satellite does not have.
	checked := 0
	for satID := 0; satID < env.Orbit.Satellites; satID++ {
		cache := sys.cacheFor(satID)
		for loc := 0; loc < env.Scene.NumLocations(); loc++ {
			mirror := sys.ground.MirrorImage(satID, loc)
			if mirror == nil {
				continue
			}
			ref := cache.Get(loc)
			if ref == nil {
				t.Fatalf("sat %d loc %d: ground mirrors a reference the satellite does not hold", satID, loc)
			}
			if !ref.Image.Equal(mirror) {
				t.Fatalf("sat %d loc %d: on-board reference diverged from ground mirror", satID, loc)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no mirrored references left to check")
	}
	s := sim.Summarize(res, env.Downlink)
	if s.MeanPSNR < 20 {
		t.Fatalf("mean PSNR %.1f dB at 5%% loss: degradation not graceful", s.MeanPSNR)
	}
}

// TestEnabledButQuietChannelMatchesPerfectChannel pins the injector's
// transparency: a channel that is ENABLED (so every frame runs through
// Transmit, the CRC gates and the ACK/NACK bookkeeping) but whose rates
// are too small for any fault to ever fire must reproduce the perfect
// channel's records exactly. This is the strong form of the zero-knob
// byte-identity guarantee: not just "the injector is bypassed at zero",
// but "the delivery-loop plumbing itself changes nothing".
func TestEnabledButQuietChannelMatchesPerfectChannel(t *testing.T) {
	run := func(cfg Config) []sim.Record {
		t.Helper()
		env := planetEnv()
		sys, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 55)
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	perfect := run(DefaultConfig())
	quiet := DefaultConfig()
	quiet.LinkFaults = link.UniformFaults(1e-12, 1)
	if !sim.RecordsEqualIgnoringTimings(perfect, run(quiet)) {
		t.Fatal("quiet fault-injected channel diverged from the perfect channel")
	}
}

// TestLinkParamsOnSpec covers the public knobs: link_loss/link_seed flow
// through the registry into the channel, out-of-range values are
// rejected loudly, and invalid FaultConfigs cannot reach New.
func TestLinkParamsOnSpec(t *testing.T) {
	env := planetEnv()
	sys, err := registry.New(SystemName, env, registry.Spec{
		Params: map[string]float64{"link_loss": 0.04, "link_seed": 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sys.(*System).channel.Config()
	want := link.UniformFaults(0.04, 7)
	if got != want {
		t.Fatalf("channel config %+v, want %+v", got, want)
	}
	for _, bad := range []float64{-0.1, 1.5} {
		if _, err := registry.New(SystemName, env, registry.Spec{
			Params: map[string]float64{"link_loss": bad},
		}); err == nil {
			t.Fatalf("link_loss=%v accepted", bad)
		}
	}
	cfg := DefaultConfig()
	cfg.LinkFaults = link.FaultConfig{DropRate: -1}
	if _, err := New(env, cfg); err == nil {
		t.Fatal("negative DropRate accepted by New")
	}
}
