package core

import (
	"testing"

	"earthplus/internal/constellation"
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// TestConstellationKnobContract pins the registry surface of the contended
// ground-station model: "stations"/"constellation" enable it, implied
// defaults resolve, and every inconsistent combination is rejected loudly.
func TestConstellationKnobContract(t *testing.T) {
	mk := func(params map[string]float64, strParams map[string]string) (*System, error) {
		sys, err := registry.New(SystemName, planetEnv(), registry.Spec{Params: params, StrParams: strParams})
		if err != nil {
			return nil, err
		}
		return sys.(*System), nil
	}

	// Explicit station count enables the scheduler.
	sys, err := mk(map[string]float64{"stations": 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.sched == nil || sys.sched.Config().Stations != 3 {
		t.Fatalf("stations=3 scheduler config: %+v", sys.sched)
	}

	// The on/off switch alone selects the default station count.
	sys, err = mk(nil, map[string]string{"constellation": "on"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.sched == nil || sys.sched.Config().Stations != constellation.DefaultStations {
		t.Fatalf("constellation=on scheduler config: %+v", sys.sched)
	}

	// An explicit contact budget rides along; unlimited env budget still
	// honours the explicit cap.
	sys, err = mk(map[string]float64{"stations": 2, "contact_budget": 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ContactBudget() != 4096 {
		t.Fatalf("explicit contact budget resolved to %d", sys.ContactBudget())
	}

	// Off (and absence) means no scheduler and no contact log.
	sys, err = mk(nil, map[string]string{"constellation": "off"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.sched != nil || sys.ContactLog() != nil {
		t.Fatal("constellation=off built a scheduler")
	}
	if st := sys.ConstellationStats(); st != (constellation.Stats{}) {
		t.Fatalf("disabled model reports stats %+v", st)
	}

	bad := []struct {
		name      string
		params    map[string]float64
		strParams map[string]string
	}{
		{"unknown switch value", nil, map[string]string{"constellation": "maybe"}},
		{"stations zero", map[string]float64{"stations": 0}, nil},
		{"stations negative", map[string]float64{"stations": -2}, nil},
		{"stations fractional", map[string]float64{"stations": 1.5}, nil},
		{"stations vs off", map[string]float64{"stations": 2}, map[string]string{"constellation": "off"}},
		{"contact budget without model", map[string]float64{"contact_budget": 1024}, nil},
		{"contact budget with off", map[string]float64{"contact_budget": 1024}, map[string]string{"constellation": "off"}},
	}
	for _, tc := range bad {
		if _, err := mk(tc.params, tc.strParams); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestContendedRunDerivesBudgetAndLogsContacts: with a finite per-day
// uplink budget, the per-contact budget derives as flat/contacts-per-station
// and every delivered byte is logged against a booked contact.
func TestContendedRunDerivesBudgetAndLogsContacts(t *testing.T) {
	env := planetEnv()
	env.UplinkBytesPerDay = 14 << 10
	cfg := DefaultConfig()
	cfg.Constellation = constellation.Config{Stations: 2}
	sys, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := env.UplinkBytesPerDay / int64(constellation.DefaultContactsPerStation)
	if sys.ContactBudget() != want {
		t.Fatalf("derived contact budget = %d, want %d", sys.ContactBudget(), want)
	}
	res, err := sim.Run(env, sys, 0, 40, 52)
	if err != nil {
		t.Fatal(err)
	}
	contacts := sys.ContactLog()
	if len(contacts) == 0 {
		t.Fatal("contended run booked no contacts")
	}
	var fromContacts int64
	for _, ct := range contacts {
		if ct.Bytes > sys.ContactBudget() {
			t.Fatalf("contact %+v over the %d-byte budget", ct, sys.ContactBudget())
		}
		fromContacts += ct.Bytes
	}
	var fromDays int64
	for _, up := range res.UpBytesByDay {
		fromDays += up
	}
	if fromContacts != fromDays {
		t.Fatalf("contact log accounts %d uplink bytes, day accounting says %d", fromContacts, fromDays)
	}
	if st := sys.ConstellationStats(); st.Contacts != int64(len(contacts)) {
		t.Fatalf("stats count %d contacts, log holds %d", st.Contacts, len(contacts))
	}
}
