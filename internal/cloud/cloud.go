// Package cloud provides per-pixel cloud masks and the paper's two cloud
// detectors: the cheap on-board decision tree (high precision, catches only
// heavy clouds, §5) and the expensive accurate ground detector standing in
// for the neural model of [74] (catches thin haze too, §4.3).
package cloud

import (
	"fmt"

	"earthplus/internal/raster"
)

// Mask is a per-pixel boolean cloud mask over a w x h image.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask returns an all-clear mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Bits: make([]bool, w*h)}
}

// At reports whether pixel (x, y) is cloudy.
func (m *Mask) At(x, y int) bool { return m.Bits[y*m.W+x] }

// Set marks pixel (x, y).
func (m *Mask) Set(x, y int, v bool) { m.Bits[y*m.W+x] = v }

// Coverage returns the cloudy fraction of the mask in [0,1].
func (m *Mask) Coverage() float64 {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(m.Bits))
}

// Clone returns a deep copy.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.W, m.H)
	copy(out.Bits, m.Bits)
	return out
}

// TileCoverage returns, per tile of g, the cloudy pixel fraction.
func (m *Mask) TileCoverage(g raster.TileGrid) []float64 {
	if g.ImageW != m.W || g.ImageH != m.H {
		panic(fmt.Sprintf("cloud: mask %dx%d does not match grid %dx%d", m.W, m.H, g.ImageW, g.ImageH))
	}
	out := make([]float64, g.NumTiles())
	inv := 1 / float64(g.Tile*g.Tile)
	for t := range out {
		x0, y0, x1, y1 := g.Bounds(t)
		n := 0
		for y := y0; y < y1; y++ {
			row := y * m.W
			for x := x0; x < x1; x++ {
				if m.Bits[row+x] {
					n++
				}
			}
		}
		out[t] = float64(n) * inv
	}
	return out
}

// TileMask marks tiles whose cloudy-pixel fraction exceeds thresh.
func (m *Mask) TileMask(g raster.TileGrid, thresh float64) *raster.TileMask {
	cov := m.TileCoverage(g)
	out := raster.NewTileMask(g)
	for t, c := range cov {
		out.Set[t] = c > thresh
	}
	return out
}

// Detector identifies cloudy pixels in a capture.
type Detector interface {
	// Detect returns the detected cloud mask at the image's resolution.
	Detect(im *raster.Image) *Mask
	// Name identifies the detector in reports.
	Name() string
}

// CheapDetector is the on-board decision tree: a pixel is cloudy when the
// infrared band is cold AND the visible brightness is high. The paper runs
// it on a heavily downsampled capture because cloudiness is only needed at
// tile granularity (§5); the same downsampling is what makes it cheap.
type CheapDetector struct {
	// IRBand indexes the infrared band used for the temperature split.
	IRBand int
	// VisBands are the bands averaged into the brightness feature.
	VisBands []int
	// IRMax: pixels with IR above this are warm, hence not heavy cloud.
	IRMax float32
	// BrightMin: pixels dimmer than this are not cloud tops.
	BrightMin float32
	// Downsample is the per-axis factor the detector works at.
	Downsample int
}

// DefaultCheap returns the cheap detector configured for the given band
// set, tuned (like the paper's) so that >99% of flagged pixels are truly
// cloudy at the cost of missing thin haze.
func DefaultCheap(bands []raster.BandInfo) *CheapDetector {
	ir := raster.InfraredBand(bands)
	vis := raster.GroundBands(bands)
	if len(vis) == 0 {
		vis = []int{0}
	}
	return &CheapDetector{IRBand: ir, VisBands: vis, IRMax: 0.22, BrightMin: 0.62, Downsample: 8}
}

// Name implements Detector.
func (d *CheapDetector) Name() string { return "cheap-tree" }

// Detect implements Detector.
func (d *CheapDetector) Detect(im *raster.Image) *Mask {
	work := im
	factor := d.Downsample
	if factor > 1 && im.Width%factor == 0 && im.Height%factor == 0 {
		lo, err := im.Downsample(factor)
		if err == nil {
			work = lo
		} else {
			factor = 1
		}
	} else {
		factor = 1
	}
	lw, lh := work.Width, work.Height
	low := NewMask(lw, lh)
	for i := 0; i < lw*lh; i++ {
		var bright float32
		for _, b := range d.VisBands {
			bright += work.Pix[b][i]
		}
		bright /= float32(len(d.VisBands))
		cold := d.IRBand < 0 || work.Pix[d.IRBand][i] < d.IRMax
		low.Bits[i] = cold && bright > d.BrightMin
	}
	if factor == 1 {
		return low
	}
	out := NewMask(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		row := (y / factor) * lw
		for x := 0; x < im.Width; x++ {
			out.Bits[y*im.Width+x] = low.Bits[row+x/factor]
		}
	}
	return out
}

// AccurateDetector is the ground-side stand-in for the expensive neural
// detector: it scores each pixel by a multi-scale smoothed combination of
// brightness and IR coldness, then dilates, catching thin haze and cloud
// fringes the cheap tree misses. Its cost (several full-resolution blur
// passes) is deliberately much higher than CheapDetector's.
type AccurateDetector struct {
	IRBand    int
	VisBands  []int
	Threshold float32
	// Scales are box-blur radii evaluated at full resolution.
	Scales []int
	// DilatePx grows the detected regions to swallow cloud edges.
	DilatePx int
}

// DefaultAccurate returns the accurate detector for a band set.
func DefaultAccurate(bands []raster.BandInfo) *AccurateDetector {
	ir := raster.InfraredBand(bands)
	vis := raster.GroundBands(bands)
	if len(vis) == 0 {
		vis = []int{0}
	}
	return &AccurateDetector{IRBand: ir, VisBands: vis, Threshold: 0.27, Scales: []int{1, 3, 7}, DilatePx: 2}
}

// Name implements Detector.
func (d *AccurateDetector) Name() string { return "accurate-multiscale" }

// Detect implements Detector.
func (d *AccurateDetector) Detect(im *raster.Image) *Mask {
	w, h := im.Width, im.Height
	score := make([]float32, w*h)
	for i := range score {
		var bright float32
		for _, b := range d.VisBands {
			bright += im.Pix[b][i]
		}
		bright /= float32(len(d.VisBands))
		coldness := float32(0.5)
		if d.IRBand >= 0 {
			coldness = 1 - im.Pix[d.IRBand][i]
		}
		// Clouds are simultaneously bright and cold; ground is rarely both.
		score[i] = bright * coldness
	}
	best := make([]float32, w*h)
	copy(best, score)
	tmp := make([]float32, w*h)
	for _, r := range d.Scales {
		blurred := boxBlur(score, tmp, w, h, r)
		for i, v := range blurred {
			if v > best[i] {
				best[i] = v
			}
		}
	}
	out := NewMask(w, h)
	for i, v := range best {
		out.Bits[i] = v > d.Threshold
	}
	for i := 0; i < d.DilatePx; i++ {
		dilate(out)
	}
	return out
}

// boxBlur returns score blurred by a (2r+1)² box, using a separable
// running-sum pass in each axis. tmp is scratch of the same size.
func boxBlur(src, tmp []float32, w, h, r int) []float32 {
	out := make([]float32, w*h)
	// Horizontal pass into tmp.
	for y := 0; y < h; y++ {
		row := y * w
		var sum float32
		for x := -r; x <= r; x++ {
			sum += src[row+clampInt(x, w)]
		}
		for x := 0; x < w; x++ {
			tmp[row+x] = sum / float32(2*r+1)
			sum += src[row+clampInt(x+r+1, w)] - src[row+clampInt(x-r, w)]
		}
	}
	// Vertical pass into out.
	for x := 0; x < w; x++ {
		var sum float32
		for y := -r; y <= r; y++ {
			sum += tmp[clampInt(y, h)*w+x]
		}
		for y := 0; y < h; y++ {
			out[y*w+x] = sum / float32(2*r+1)
			sum += tmp[clampInt(y+r+1, h)*w+x] - tmp[clampInt(y-r, h)*w+x]
		}
	}
	return out
}

func clampInt(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// dilate grows the mask by one pixel in the 4-neighbourhood.
func dilate(m *Mask) {
	src := append([]bool(nil), m.Bits...)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if src[y*m.W+x] {
				continue
			}
			if (x > 0 && src[y*m.W+x-1]) || (x < m.W-1 && src[y*m.W+x+1]) ||
				(y > 0 && src[(y-1)*m.W+x]) || (y < m.H-1 && src[(y+1)*m.W+x]) {
				m.Bits[y*m.W+x] = true
			}
		}
	}
}

// PrecisionRecall compares a predicted mask against ground truth and
// returns classification precision and recall of the cloudy class. Both
// are 1 when there are no predictions / no positives respectively.
func PrecisionRecall(pred, truth *Mask) (precision, recall float64) {
	var tp, fp, fn int
	for i := range pred.Bits {
		switch {
		case pred.Bits[i] && truth.Bits[i]:
			tp++
		case pred.Bits[i] && !truth.Bits[i]:
			fp++
		case !pred.Bits[i] && truth.Bits[i]:
			fn++
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}
