package cloud

import (
	"earthplus/internal/illum"
	"earthplus/internal/raster"
)

// ReferenceDetector is a detector that can exploit a cloud-free reference
// image of the same location. The paper's accurate ground detector [74]
// consumes image sequences; this is the sequence-aware analogue.
type ReferenceDetector interface {
	Detector
	// DetectWithReference detects clouds in im given a cloud-free
	// reference of the same location (nil falls back to single-image
	// detection).
	DetectWithReference(im, ref *raster.Image) *Mask
}

// TemporalDetector flags pixels that became simultaneously brighter in the
// visible bands and colder in the infrared relative to a cloud-free
// reference — the signature of cloud, and crucially NOT of snow (snow is
// bright but persists in the reference, so its delta is near zero). This
// resolves the snow/cloud confusion that defeats single-image detectors.
type TemporalDetector struct {
	IRBand   int
	VisBands []int
	// Threshold on the combined brighten+cool delta score.
	Threshold float32
	// Scales are box-blur radii applied to the delta score.
	Scales []int
	// DilatePx grows detections to swallow cloud fringes.
	DilatePx int
	// Fallback handles captures with no reference available.
	Fallback Detector
}

var _ ReferenceDetector = (*TemporalDetector)(nil)

// DefaultTemporal returns the ground-side accurate detector for a band set.
func DefaultTemporal(bands []raster.BandInfo) *TemporalDetector {
	ir := raster.InfraredBand(bands)
	vis := raster.GroundBands(bands)
	if len(vis) == 0 {
		vis = []int{0}
	}
	return &TemporalDetector{
		IRBand:    ir,
		VisBands:  vis,
		Threshold: 0.16,
		Scales:    []int{1, 3},
		DilatePx:  1,
		Fallback:  DefaultAccurate(bands),
	}
}

// Name implements Detector.
func (d *TemporalDetector) Name() string { return "temporal-delta" }

// Detect implements Detector via the fallback (no reference available).
func (d *TemporalDetector) Detect(im *raster.Image) *Mask {
	return d.Fallback.Detect(im)
}

// DetectWithReference implements ReferenceDetector.
func (d *TemporalDetector) DetectWithReference(im, ref *raster.Image) *Mask {
	if ref == nil || !im.SameShape(ref) {
		return d.Fallback.Detect(im)
	}
	w, h := im.Width, im.Height
	// Align the capture's illumination to the reference first, otherwise
	// a bright illumination day reads as a global cloud sheet.
	capBright := bandMean(im, d.VisBands)
	refBright := bandMean(ref, d.VisBands)
	if m, ok := illum.FitRobust(refBright, capBright, nil, 2, 0.25); ok {
		m.Normalize(capBright)
	}
	score := make([]float32, w*h)
	for i := range score {
		s := capBright[i] - refBright[i] // clouds brighten
		if d.IRBand >= 0 {
			s += ref.Pix[d.IRBand][i] - im.Pix[d.IRBand][i] // clouds cool
		}
		score[i] = s
	}
	best := make([]float32, w*h)
	copy(best, score)
	tmp := make([]float32, w*h)
	for _, r := range d.Scales {
		blurred := boxBlur(score, tmp, w, h, r)
		for i, v := range blurred {
			if v > best[i] {
				best[i] = v
			}
		}
	}
	out := NewMask(w, h)
	for i, v := range best {
		out.Bits[i] = v > d.Threshold
	}
	for i := 0; i < d.DilatePx; i++ {
		dilate(out)
	}
	return out
}

// bandMean averages the selected bands into a fresh plane.
func bandMean(im *raster.Image, bands []int) []float32 {
	out := make([]float32, im.Width*im.Height)
	inv := 1 / float32(len(bands))
	for _, b := range bands {
		p := im.Pix[b]
		for i, v := range p {
			out[i] += v * inv
		}
	}
	return out
}
