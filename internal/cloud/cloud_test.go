package cloud

import (
	"math"
	"testing"

	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// syntheticScene paints a Planet-band image with dark-ish terrain, a heavy
// cloud disc (bright + cold IR), and a thin-haze ring around it. Returns
// the image, the truth mask (heavy + haze), and the heavy-only mask.
func syntheticScene(w, h int) (*raster.Image, *Mask, *Mask) {
	im := raster.New(w, h, raster.PlanetBands())
	src := noise.New(77)
	for b := 0; b < 3; b++ {
		src.FillFBM(im.Plane(b), w, h, 5, 3)
		for i, v := range im.Plane(b) {
			im.Plane(b)[i] = 0.15 + 0.3*v // terrain reflectance 0.15-0.45
		}
	}
	for i := range im.Plane(3) {
		im.Plane(3)[i] = 0.55 + 0.2*im.Plane(0)[i] // warm ground IR
	}
	truth, heavy := NewMask(w, h), NewMask(w, h)
	cx, cy := float64(w)/2, float64(h)/2
	rHeavy, rHaze := float64(w)/6, float64(w)/4
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			var tau float32
			switch {
			case d < rHeavy:
				tau = 0.95
				heavy.Set(x, y, true)
				truth.Set(x, y, true)
			case d < rHaze:
				tau = 0.45
				truth.Set(x, y, true)
			}
			if tau == 0 {
				continue
			}
			i := y*w + x
			for b := 0; b < 3; b++ {
				im.Pix[b][i] = im.Pix[b][i]*(1-tau) + 0.92*tau
			}
			im.Pix[3][i] = im.Pix[3][i]*(1-tau) + 0.05*tau // cold cloud top
		}
	}
	return im, truth, heavy
}

func TestMaskBasics(t *testing.T) {
	m := NewMask(4, 2)
	if m.Coverage() != 0 {
		t.Fatal("fresh mask not clear")
	}
	m.Set(1, 1, true)
	m.Set(3, 0, true)
	if !m.At(1, 1) || m.At(0, 0) {
		t.Fatal("Set/At mismatch")
	}
	if m.Coverage() != 0.25 {
		t.Fatalf("coverage = %v, want 0.25", m.Coverage())
	}
	cl := m.Clone()
	cl.Set(0, 0, true)
	if m.At(0, 0) {
		t.Fatal("Clone aliased")
	}
}

func TestTileCoverageAndTileMask(t *testing.T) {
	g := raster.MustTileGrid(8, 8, 4)
	m := NewMask(8, 8)
	// Fill tile 1 (top-right) fully and tile 2 (bottom-left) one pixel.
	for y := 0; y < 4; y++ {
		for x := 4; x < 8; x++ {
			m.Set(x, y, true)
		}
	}
	m.Set(0, 4, true)
	cov := m.TileCoverage(g)
	if cov[1] != 1 || math.Abs(cov[2]-1.0/16) > 1e-9 || cov[0] != 0 {
		t.Fatalf("tile coverage = %v", cov)
	}
	tm := m.TileMask(g, 0.5)
	if !tm.Set[1] || tm.Set[2] || tm.Set[0] || tm.Set[3] {
		t.Fatalf("tile mask = %v", tm.Set)
	}
}

func TestCheapDetectorHighPrecision(t *testing.T) {
	im, truth, heavy := syntheticScene(128, 128)
	det := DefaultCheap(im.Bands)
	pred := det.Detect(im)
	prec, _ := PrecisionRecall(pred, truth)
	if prec < 0.99 {
		t.Fatalf("cheap detector precision = %.3f, want >= 0.99 (paper: >99%%)", prec)
	}
	// It must at least find the heavy core.
	_, recHeavy := PrecisionRecall(pred, heavy)
	if recHeavy < 0.8 {
		t.Fatalf("cheap detector heavy-cloud recall = %.3f, want >= 0.8", recHeavy)
	}
}

func TestAccurateDetectorBeatsCheapOnHaze(t *testing.T) {
	im, truth, _ := syntheticScene(128, 128)
	cheap := DefaultCheap(im.Bands).Detect(im)
	acc := DefaultAccurate(im.Bands).Detect(im)
	_, recCheap := PrecisionRecall(cheap, truth)
	precAcc, recAcc := PrecisionRecall(acc, truth)
	if recAcc <= recCheap {
		t.Fatalf("accurate recall %.3f should beat cheap recall %.3f", recAcc, recCheap)
	}
	if recAcc < 0.9 {
		t.Fatalf("accurate recall = %.3f, want >= 0.9", recAcc)
	}
	if precAcc < 0.6 {
		t.Fatalf("accurate precision = %.3f collapsed", precAcc)
	}
}

func TestCheapDetectorClearScene(t *testing.T) {
	im := raster.New(64, 64, raster.PlanetBands())
	src := noise.New(3)
	for b := 0; b < 4; b++ {
		src.FillFBM(im.Plane(b), 64, 64, 4, 3)
		for i, v := range im.Plane(b) {
			im.Plane(b)[i] = 0.2 + 0.3*v
		}
	}
	// Warm IR everywhere.
	for i := range im.Plane(3) {
		im.Plane(3)[i] = 0.6
	}
	pred := DefaultCheap(im.Bands).Detect(im)
	if c := pred.Coverage(); c > 0.01 {
		t.Fatalf("clear scene flagged %.3f cloudy", c)
	}
}

func TestCheapDetectorNoIRBandFallsBack(t *testing.T) {
	bands := []raster.BandInfo{{Name: "R", Kind: raster.KindGround}}
	im := raster.New(32, 32, bands)
	im.Fill(0, 0.9) // uniformly bright
	det := DefaultCheap(bands)
	if det.IRBand != -1 {
		t.Fatalf("expected IRBand -1, got %d", det.IRBand)
	}
	pred := det.Detect(im)
	if pred.Coverage() != 1 {
		t.Fatalf("bright scene without IR should be all-cloud under the tree, got %v", pred.Coverage())
	}
}

func TestDetectorsHandleNonDivisibleDownsample(t *testing.T) {
	im, _, _ := syntheticScene(100, 100) // 100 % 8 != 0 -> full-res path
	pred := DefaultCheap(im.Bands).Detect(im)
	if pred.W != 100 || pred.H != 100 {
		t.Fatalf("mask geometry %dx%d", pred.W, pred.H)
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	a, b := NewMask(4, 4), NewMask(4, 4)
	p, r := PrecisionRecall(a, b)
	if p != 1 || r != 1 {
		t.Fatalf("empty masks: p=%v r=%v", p, r)
	}
	a.Set(0, 0, true)
	p, r = PrecisionRecall(a, b)
	if p != 0 || r != 1 {
		t.Fatalf("false positive only: p=%v r=%v", p, r)
	}
	a, b = NewMask(4, 4), NewMask(4, 4)
	b.Set(0, 0, true)
	p, r = PrecisionRecall(a, b)
	if p != 1 || r != 0 {
		t.Fatalf("false negative only: p=%v r=%v", p, r)
	}
}

func TestBoxBlurPreservesConstant(t *testing.T) {
	const w, h = 16, 12
	src := make([]float32, w*h)
	for i := range src {
		src[i] = 0.7
	}
	out := boxBlur(src, make([]float32, w*h), w, h, 3)
	for i, v := range out {
		if math.Abs(float64(v-0.7)) > 1e-5 {
			t.Fatalf("blur changed constant at %d: %v", i, v)
		}
	}
}

func TestDilate(t *testing.T) {
	m := NewMask(5, 5)
	m.Set(2, 2, true)
	dilate(m)
	want := 5 // centre + 4-neighbourhood
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	if n != want {
		t.Fatalf("dilated count = %d, want %d", n, want)
	}
	if !m.At(1, 2) || !m.At(3, 2) || !m.At(2, 1) || !m.At(2, 3) {
		t.Fatal("dilate missed a 4-neighbour")
	}
}

func BenchmarkCheapDetect128(b *testing.B) {
	im, _, _ := syntheticScene(128, 128)
	det := DefaultCheap(im.Bands)
	for i := 0; i < b.N; i++ {
		det.Detect(im)
	}
}

func BenchmarkAccurateDetect128(b *testing.B) {
	im, _, _ := syntheticScene(128, 128)
	det := DefaultAccurate(im.Bands)
	for i := 0; i < b.N; i++ {
		det.Detect(im)
	}
}
