package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter()
	pattern := []int{1, 0, 1, 1, 0, 0, 1, 0, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestWriteBitsRoundTripProperty(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		w := NewWriter()
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		want := make([]uint64, 0, n)
		ws := make([]uint, 0, n)
		for i := 0; i < n; i++ {
			width := uint(widths[i]%64) + 1
			v := vals[i] & (1<<width - 1)
			w.WriteBits(v, width)
			want = append(want, v)
			ws = append(ws, width)
		}
		r := NewReader(w.Bytes())
		for i := range want {
			if r.ReadBits(ws[i]) != want[i] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xFF, 0)
	if w.BitLen() != 0 {
		t.Fatalf("zero-width write produced %d bits", w.BitLen())
	}
}

func TestLenAndBitLen(t *testing.T) {
	w := NewWriter()
	if w.Len() != 0 || w.BitLen() != 0 {
		t.Fatal("fresh writer not empty")
	}
	w.WriteBits(0b101, 3)
	if w.Len() != 1 || w.BitLen() != 3 {
		t.Fatalf("Len=%d BitLen=%d, want 1,3", w.Len(), w.BitLen())
	}
	w.WriteBits(0, 5)
	if w.Len() != 1 || w.BitLen() != 8 {
		t.Fatalf("Len=%d BitLen=%d, want 1,8", w.Len(), w.BitLen())
	}
	w.WriteByte(0xAB)
	if w.Len() != 2 || w.BitLen() != 16 {
		t.Fatalf("Len=%d BitLen=%d, want 2,16", w.Len(), w.BitLen())
	}
}

func TestPartialBytePadding(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b11, 2)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b11000000 {
		t.Fatalf("Bytes() = %08b", got)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if v := r.ReadBits(8); v != 0xFF {
		t.Fatalf("first byte = %x", v)
	}
	if v := r.ReadBit(); v != 0 {
		t.Fatalf("past-end bit = %d, want 0", v)
	}
	if r.Err() != ErrShortRead {
		t.Fatalf("Err = %v, want ErrShortRead", r.Err())
	}
}

func TestBitsConsumed(t *testing.T) {
	r := NewReader([]byte{0xAA, 0x55})
	r.ReadBits(3)
	if got := r.BitsConsumed(); got != 3 {
		t.Fatalf("BitsConsumed = %d, want 3", got)
	}
	r.ReadBits(10)
	if got := r.BitsConsumed(); got != 13 {
		t.Fatalf("BitsConsumed = %d, want 13", got)
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0xA, 4)
	first := append([]byte(nil), w.Bytes()...)
	w.WriteByte(0x42)
	second := w.Bytes()
	if len(second) != 2 || second[0] != first[0] || second[1] != 0x42 {
		t.Fatalf("continued buffer = %x", second)
	}
}

func TestRandomStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := NewWriter()
	bits := make([]int, 10000)
	for i := range bits {
		bits[i] = rng.Intn(2)
		w.WriteBit(bits[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}
