// Package bitio provides bit-granular writers and readers used by the
// wavelet codec's entropy coder and codestream headers.
package bitio

import "errors"

// ErrShortRead is reported by Reader.Err after a read past the end of the
// buffer. Reads past the end return zero bits, which lets arithmetic
// decoders flush naturally; callers check Err when exactness matters.
var ErrShortRead = errors.New("bitio: read past end of buffer")

// Writer accumulates bits MSB-first into a byte buffer.
type Writer struct {
	buf  []byte
	cur  byte
	nCur uint // bits currently held in cur, 0..7
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBit appends a single bit (any non-zero value counts as 1).
func (w *Writer) WriteBit(bit int) {
	w.cur <<= 1
	if bit != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// WriteByte appends one whole byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Len returns the number of complete bytes plus any partial byte, i.e. the
// length Bytes() would return right now.
func (w *Writer) Len() int {
	if w.nCur > 0 {
		return len(w.buf) + 1
	}
	return len(w.buf)
}

// BitLen returns the exact number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// accumulated buffer. The writer remains usable; further writes continue
// from a byte boundary.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int  // next byte index
	cur  byte // current byte being consumed
	nCur uint // bits remaining in cur
	err  error
}

// NewReader returns a reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit returns the next bit, or 0 after the end of the buffer (recording
// ErrShortRead).
func (r *Reader) ReadBit() int {
	if r.nCur == 0 {
		if r.pos >= len(r.buf) {
			r.err = ErrShortRead
			return 0
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.nCur = 8
	}
	r.nCur--
	return int(r.cur >> r.nCur & 1)
}

// ReadBits returns the next n bits as an unsigned integer, MSB-first.
func (r *Reader) ReadBits(n uint) uint64 {
	var v uint64
	for i := uint(0); i < n; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// Err reports whether any read ran past the end of the buffer.
func (r *Reader) Err() error { return r.err }

// BitsConsumed returns how many bits have been read (over-end reads count).
func (r *Reader) BitsConsumed() int {
	return r.pos*8 - int(r.nCur)
}
