package eperr

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	err := New(BadCodestream, "container", "truncated at byte %d", 7)
	if !errors.Is(err, ErrBadCodestream) {
		t.Fatalf("New(BadCodestream) does not match ErrBadCodestream: %v", err)
	}
	if errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("BadCodestream error matched ErrBudgetTooSmall")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, ErrBadCodestream) {
		t.Fatalf("wrapping broke the code match")
	}
}

func TestWrapKeepsCause(t *testing.T) {
	err := Wrap(BadCodestream, "container", io.ErrUnexpectedEOF)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cause lost: %v", err)
	}
	if !errors.Is(err, ErrBadCodestream) {
		t.Fatalf("code lost: %v", err)
	}
	if Wrap(BadConfig, "x", nil) != nil {
		t.Fatalf("Wrap(nil) must be nil")
	}
}

func TestCodeOf(t *testing.T) {
	if c, ok := CodeOf(New(UnknownSystem, "registry", "no such system")); !ok || c != UnknownSystem {
		t.Fatalf("CodeOf = %q, %v", c, ok)
	}
	if _, ok := CodeOf(io.EOF); ok {
		t.Fatalf("CodeOf(io.EOF) claimed a taxonomy code")
	}
}

func TestErrorString(t *testing.T) {
	err := &Error{Code: BadImage, Op: "serve", Msg: "short body", Err: io.ErrUnexpectedEOF}
	want := "serve: bad_image: short body: unexpected EOF"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
