// Package eperr defines the typed error taxonomy shared by the whole
// reproduction and surfaced publicly as earthplus.Error. It is a leaf
// package — anything from the codec up to the HTTP serving layer may wrap
// its failures in an *Error so callers branch on stable codes
// (errors.Is against the exported sentinels, or CodeOf) instead of
// matching formatted strings.
package eperr

import (
	"errors"
	"fmt"
)

// Code classifies a failure. Codes are part of the public API surface
// (the serving layer maps them onto HTTP statuses and returns them in
// error bodies), so their string values are stable.
type Code string

const (
	// BadCodestream marks a malformed, truncated or corrupt codestream or
	// container frame.
	BadCodestream Code = "bad_codestream"
	// BudgetTooSmall marks a byte budget too small to hold even the
	// codestream framing.
	BudgetTooSmall Code = "budget_too_small"
	// UnknownSystem marks a system name absent from the registry.
	UnknownSystem Code = "unknown_system"
	// BadConfig marks an invalid system or codec configuration.
	BadConfig Code = "bad_config"
	// BadImage marks image payloads whose geometry or size is invalid.
	BadImage Code = "bad_image"
	// BadRequest marks a malformed request at the serving surface —
	// unreadable bodies, unparsable query parameters — as opposed to
	// BadImage, which is reserved for geometry/sample errors.
	BadRequest Code = "bad_request"
	// NotFound marks a request for an endpoint that does not exist.
	NotFound Code = "not_found"
	// MethodNotAllowed marks a known endpoint hit with the wrong HTTP
	// method.
	MethodNotAllowed Code = "method_not_allowed"
	// RateLimited marks a client refused by per-client rate limiting
	// (HTTP 429), distinct from Overloaded (503), which is server-wide
	// capacity refusal.
	RateLimited Code = "rate_limited"
	// Overloaded marks a serving layer that refused work at capacity.
	Overloaded Code = "overloaded"
	// Canceled marks work abandoned because the caller's context ended.
	Canceled Code = "canceled"
)

// Error is a classified failure. The zero Op is allowed; Err may be nil.
type Error struct {
	// Code is the stable classification.
	Code Code
	// Op names the failing operation ("codec", "container", "registry").
	Op string
	// Msg is the human-readable detail.
	Msg string
	// Err is the wrapped cause, if any.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	s := string(e.Code)
	if e.Op != "" {
		s = e.Op + ": " + s
	}
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Is matches any *Error carrying the same Code, so
// errors.Is(err, eperr.ErrBadCodestream) works however deeply the error
// was wrapped and however much detail it carries.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinels for errors.Is checks. They carry only a Code; real failures
// are built with New/Wrap and compare equal to these by code.
var (
	ErrBadCodestream    = &Error{Code: BadCodestream}
	ErrBudgetTooSmall   = &Error{Code: BudgetTooSmall}
	ErrUnknownSystem    = &Error{Code: UnknownSystem}
	ErrBadConfig        = &Error{Code: BadConfig}
	ErrBadImage         = &Error{Code: BadImage}
	ErrBadRequest       = &Error{Code: BadRequest}
	ErrNotFound         = &Error{Code: NotFound}
	ErrMethodNotAllowed = &Error{Code: MethodNotAllowed}
	ErrRateLimited      = &Error{Code: RateLimited}
	ErrOverloaded       = &Error{Code: Overloaded}
	ErrCanceled         = &Error{Code: Canceled}
)

// New builds a classified error with a formatted detail message.
func New(code Code, op, format string, args ...any) error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error. A nil err returns nil.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Op: op, Err: err}
}

// CodeOf extracts the classification of err, reporting false for errors
// outside the taxonomy.
func CodeOf(err error) (Code, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Code, true
	}
	return "", false
}
