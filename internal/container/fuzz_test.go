package container

import (
	"bytes"
	"errors"
	"testing"

	"earthplus/internal/eperr"
)

// FuzzParseContainer hammers the frame parser (header parse, CRC check and
// zero-copy split) with arbitrary bytes: it must never panic, every
// rejection must carry the BadCodestream code, and every accepted frame
// must round-trip Pack(Split(c)) back to identical bytes.
func FuzzParseContainer(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(Magic))
	f.Add([]byte(Pack(nil)))
	f.Add([]byte(Pack([][]byte{[]byte("seed-band"), nil, {1, 2, 3}})))
	long := Pack([][]byte{bytes.Repeat([]byte{0xAB}, 300)})
	f.Add([]byte(long))
	corrupt := append([]byte(nil), long...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		c := Codestream(data)
		bands, err := c.Split()
		if err != nil {
			if !errors.Is(err, eperr.ErrBadCodestream) {
				t.Fatalf("rejection is not ErrBadCodestream: %v", err)
			}
			return
		}
		again := Pack(bands)
		if !bytes.Equal(again, c) {
			t.Fatalf("accepted frame does not re-pack identically (%d vs %d bytes)", len(again), len(c))
		}
	})
}
