package container

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"earthplus/internal/eperr"
)

func TestPackSplitRoundTrip(t *testing.T) {
	bands := [][]byte{
		[]byte("band-zero-payload"),
		nil,
		{},
		[]byte{0xff, 0x00, 0x41},
	}
	c := Pack(bands)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got, err := c.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(got) != len(bands) {
		t.Fatalf("split into %d bands, want %d", len(got), len(bands))
	}
	for i, b := range bands {
		if len(b) == 0 {
			if got[i] != nil {
				t.Fatalf("band %d: absent band decoded non-nil", i)
			}
			continue
		}
		if !bytes.Equal(got[i], b) {
			t.Fatalf("band %d: payload mismatch", i)
		}
	}
	lens, err := c.PerBandLens()
	if err != nil {
		t.Fatalf("PerBandLens: %v", err)
	}
	wantTotal := 0
	for i, b := range bands {
		if lens[i] != len(b) {
			t.Fatalf("band %d length %d, want %d", i, lens[i], len(b))
		}
		wantTotal += len(b)
	}
	if total, err := c.PayloadLen(); err != nil || total != wantTotal {
		t.Fatalf("PayloadLen = %d, %v; want %d", total, err, wantTotal)
	}
	if len(c) != Overhead(len(bands))+wantTotal {
		t.Fatalf("frame length %d, want overhead %d + payload %d", len(c), Overhead(len(bands)), wantTotal)
	}
}

func TestPackZeroBands(t *testing.T) {
	c := Pack(nil)
	bands, err := c.Split()
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(bands) != 0 {
		t.Fatalf("expected zero bands, got %d", len(bands))
	}
}

func TestSplitZeroCopy(t *testing.T) {
	c := Pack([][]byte{[]byte("abcdef")})
	bands, err := c.Split()
	if err != nil {
		t.Fatal(err)
	}
	if &bands[0][0] != &c[Overhead(1)-4] { // payload starts after header+table, before the CRC
		t.Fatalf("Split copied the payload")
	}
}

// mustBadCodestream asserts the typed error code.
func mustBadCodestream(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected an error", what)
	}
	if !errors.Is(err, eperr.ErrBadCodestream) {
		t.Fatalf("%s: error %v is not ErrBadCodestream", what, err)
	}
}

func TestCorruptFrames(t *testing.T) {
	good := Pack([][]byte{[]byte("payload-a"), []byte("payload-b")})

	short := good[:5]
	_, err := short.Split()
	mustBadCodestream(t, err, "short frame")

	badMagic := append(Codestream(nil), good...)
	badMagic[0] = 'X'
	_, err = badMagic.Split()
	mustBadCodestream(t, err, "bad magic")

	badVersion := append(Codestream(nil), good...)
	badVersion[4] = 99
	_, err = badVersion.Split()
	mustBadCodestream(t, err, "bad version")

	badFlags := append(Codestream(nil), good...)
	badFlags[5] = 1
	_, err = badFlags.Split()
	mustBadCodestream(t, err, "reserved flags")

	truncated := good[:len(good)-3]
	_, err = truncated.Split()
	mustBadCodestream(t, err, "truncated payload")

	flipped := append(Codestream(nil), good...)
	flipped[Overhead(2)] ^= 0x40 // corrupt a payload byte under the CRC
	_, err = flipped.Split()
	mustBadCodestream(t, err, "payload bit flip")
	if err := flipped.Validate(); !errors.Is(err, eperr.ErrBadCodestream) {
		t.Fatalf("Validate missed the CRC mismatch: %v", err)
	}

	// Header parse alone must not notice the payload corruption…
	if _, err := flipped.PerBandLens(); err != nil {
		t.Fatalf("PerBandLens should not validate payloads: %v", err)
	}

	overclaim := append(Codestream(nil), good...)
	overclaim[8] = 0xff // band 0 claims a huge payload
	overclaim[9] = 0xff
	_, err = overclaim.Split()
	mustBadCodestream(t, err, "over-claiming band table")
}

func TestReadFromWriteTo(t *testing.T) {
	a := Pack([][]byte{[]byte("first"), nil})
	b := Pack([][]byte{[]byte("second-frame-payload")})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	got1, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if !bytes.Equal(got1, a) {
		t.Fatalf("frame 1 bytes differ")
	}
	got2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	if !bytes.Equal(got2, b) {
		t.Fatalf("frame 2 bytes differ")
	}
	if _, err := ReadFrom(&buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestReadFromMidFrameTruncation(t *testing.T) {
	c := Pack([][]byte{[]byte("some-payload-bytes")})
	for _, cut := range []int{1, 6, Overhead(1) - 2, len(c) - 1} {
		_, err := ReadFrom(bytes.NewReader(c[:cut]))
		mustBadCodestream(t, err, "truncation")
	}
}

func TestReadFromRejectsHostileHeader(t *testing.T) {
	// A header claiming MaxBands+1 bands must be refused before any
	// band-table allocation.
	hdr := []byte(Magic)
	hdr = append(hdr, Version, 0, 0xff, 0xff)
	_, err := ReadFrom(bytes.NewReader(hdr))
	mustBadCodestream(t, err, "hostile band count")
}

// TestPackUint16BandCountGuard pins that Pack refuses band counts the
// 16-bit count field cannot represent even when a caller raises MaxBands
// past it — the uint16 cast would otherwise silently truncate and emit a
// permanently-corrupt frame.
func TestPackUint16BandCountGuard(t *testing.T) {
	old := MaxBands
	MaxBands = 1 << 17
	defer func() { MaxBands = old }()
	defer func() {
		if recover() == nil {
			t.Fatal("Pack accepted a band count beyond the 16-bit count field")
		}
	}()
	Pack(make([][]byte, math.MaxUint16+1))
}
