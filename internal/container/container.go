// Package container implements the framed multi-band codestream that
// carries every Earth+ wire payload: one frame bundles the per-band codec
// streams of a capture (or reference update) behind a fixed header so the
// whole set travels as a single []byte — framable over files, HTTP bodies
// or sockets — while the per-band bytes inside stay exactly the codec's
// golden wire format.
//
// Frame layout (little-endian):
//
//	offset  size      field
//	0       4         magic "EP+C"
//	4       1         version (1 = monolithic/lossless bands, 2 = tiled profile)
//	5       1         flags (v1: reserved, must be 0; v2: bit 0 = tiled bands)
//	6       2         band count N (uint16)
//	8       4*N       band table: per-band payload length (uint32, 0 = band absent)
//	8+4N    …         payloads, concatenated in band order
//	end-4   4         CRC-32C (Castagnoli) of everything before it
//
// An absent band (nil codec stream — e.g. a band whose ROI was empty)
// is encoded as a zero-length table entry and decodes back to nil.
//
// Version 2 is the tiled-profile frame: the layout is identical, but the
// version byte is bumped and FlagTiled set whenever any band payload
// carries the codec's tiled (EPT1) codestream, so wire inspection can
// spot the profile without parsing band payloads. Pack chooses the
// version from its inputs; frames holding only v1-profile bands stay
// byte-identical to what earlier releases emitted.
package container

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"earthplus/internal/eperr"
)

const (
	// Magic opens every frame.
	Magic = "EP+C"
	// Version is the frame layout version written for monolithic and
	// lossless band payloads.
	Version = 1
	// VersionTiled is the frame version written when any band payload
	// uses the codec's tiled (EPT1) profile.
	VersionTiled = 2
	// FlagTiled is the VersionTiled flags bit marking tiled band payloads.
	FlagTiled = 0x1

	headerFixed = 8 // magic + version + flags + band count
	crcLen      = 4

	// tiledPayloadMagic mirrors the codec package's tiled codestream
	// magic; duplicating four bytes keeps container free of codec imports.
	tiledPayloadMagic = "EPT1"
)

// MaxBands bounds the band count a frame may claim; a hostile header
// cannot demand an absurd band-table allocation.
var MaxBands = 4096

// MaxBytes bounds the total frame size ReadFrom will assemble from a
// stream (1 GiB by default). Split applies it too, so a hostile length
// table cannot claim payloads beyond it.
var MaxBytes = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codestream is one encoded frame. The zero value is not a valid frame;
// build one with Pack or ReadFrom.
type Codestream []byte

// Overhead returns the framing cost (header, band table and CRC) of a
// frame with n bands.
func Overhead(n int) int { return headerFixed + 4*n + crcLen }

// Pack frames a per-band codestream set. Nil or empty band payloads are
// recorded as absent. The payload bytes are copied, so callers may reuse
// their slices. Band counts beyond MaxBands — or beyond the 16-bit count
// field, whatever a caller sets MaxBands to — panic: the band table could
// not be decoded by any reader, so emitting such a frame would silently
// produce permanently-corrupt wire bytes — input-facing layers validate
// the count before packing.
func Pack(bands [][]byte) Codestream {
	limit := MaxBands
	if limit > math.MaxUint16 {
		limit = math.MaxUint16 // the count field is 16-bit regardless of MaxBands
	}
	if len(bands) > limit {
		panic(fmt.Sprintf("container: %d bands exceeds the %d-band frame bound", len(bands), limit))
	}
	total := Overhead(len(bands))
	for _, b := range bands {
		total += len(b)
	}
	version, flags := byte(Version), byte(0)
	for _, b := range bands {
		if len(b) >= 4 && string(b[:4]) == tiledPayloadMagic {
			version, flags = VersionTiled, FlagTiled
			break
		}
	}
	out := make([]byte, 0, total)
	out = append(out, Magic...)
	out = append(out, version, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(bands)))
	for _, b := range bands {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	}
	for _, b := range bands {
		out = append(out, b...)
	}
	return finish(out)
}

// finish appends the CRC over everything written so far.
func finish(frame []byte) Codestream {
	return binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, castagnoli))
}

// parseHeader validates the fixed header and band table and returns the
// per-band lengths plus the payload offset. It does not touch payload
// bytes or the CRC, so it is cheap enough for length accounting on
// locally-built frames.
func (c Codestream) parseHeader() (lens []int, payloadOff int, err error) {
	if len(c) < headerFixed+crcLen {
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "frame of %d bytes is shorter than the fixed framing", len(c))
	}
	if string(c[:4]) != Magic {
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "bad magic %q", c[:4])
	}
	switch c[4] {
	case Version:
		if c[5] != 0 {
			return nil, 0, eperr.New(eperr.BadCodestream, "container", "reserved flags %#x set", c[5])
		}
	case VersionTiled:
		if c[5]&^FlagTiled != 0 {
			return nil, 0, eperr.New(eperr.BadCodestream, "container", "reserved v2 flags %#x set", c[5])
		}
	default:
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "unsupported version %d", c[4])
	}
	n := int(binary.LittleEndian.Uint16(c[6:]))
	if n > MaxBands {
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "%d bands exceeds the %d-band bound", n, MaxBands)
	}
	payloadOff = headerFixed + 4*n
	if len(c) < payloadOff+crcLen {
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "truncated band table (%d bands claimed in %d bytes)", n, len(c))
	}
	lens = make([]int, n)
	total := 0
	for i := range lens {
		lens[i] = int(binary.LittleEndian.Uint32(c[headerFixed+4*i:]))
		total += lens[i]
		if total > MaxBytes {
			return nil, 0, eperr.New(eperr.BadCodestream, "container", "band table claims more than MaxBytes (%d)", MaxBytes)
		}
	}
	if len(c) != payloadOff+total+crcLen {
		return nil, 0, eperr.New(eperr.BadCodestream, "container", "frame is %d bytes, band table demands %d", len(c), payloadOff+total+crcLen)
	}
	return lens, payloadOff, nil
}

// Tiled reports whether the frame advertises tiled-profile band payloads
// (a VersionTiled frame with FlagTiled set). Only the fixed header bytes
// are inspected; call Validate (or Split) before trusting the payloads.
func (c Codestream) Tiled() bool {
	return len(c) >= headerFixed && string(c[:4]) == Magic &&
		c[4] == VersionTiled && c[5]&FlagTiled != 0
}

// NumBands returns the frame's band count (header parse only).
func (c Codestream) NumBands() (int, error) {
	lens, _, err := c.parseHeader()
	if err != nil {
		return 0, err
	}
	return len(lens), nil
}

// PerBandLens returns each band's payload length — the exact codec wire
// bytes, excluding framing overhead. Absent bands report 0. Only the
// header is parsed, so this is the cheap accounting path for frames the
// caller just built.
func (c Codestream) PerBandLens() ([]int, error) {
	lens, _, err := c.parseHeader()
	return lens, err
}

// PayloadLen sums the per-band payload lengths: the frame's downlink
// substance, with framing excluded.
func (c Codestream) PayloadLen() (int, error) {
	lens, _, err := c.parseHeader()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range lens {
		total += n
	}
	return total, nil
}

// Validate fully checks the frame, including the trailing CRC.
func (c Codestream) Validate() error {
	_, _, err := c.parseHeader()
	if err != nil {
		return err
	}
	body := c[:len(c)-crcLen]
	want := binary.LittleEndian.Uint32(c[len(c)-crcLen:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return eperr.New(eperr.BadCodestream, "container", "CRC mismatch (frame %08x, computed %08x)", want, got)
	}
	return nil
}

// Split validates the frame (including its CRC) and returns the per-band
// payloads as zero-copy views into the frame. Absent bands are nil.
// Callers must not mutate the returned slices.
func (c Codestream) Split() ([][]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c.SplitNoCRC()
}

// SplitNoCRC returns the per-band payload views after checking only the
// frame structure, skipping the CRC pass over the payload bytes — the
// cheap path for pre-flight header inspection when a fully validated
// Split (or decode) follows anyway. Absent bands are nil. Callers must
// not mutate the returned slices.
func (c Codestream) SplitNoCRC() ([][]byte, error) {
	lens, off, err := c.parseHeader()
	if err != nil {
		return nil, err
	}
	bands := make([][]byte, len(lens))
	for i, n := range lens {
		if n == 0 {
			continue
		}
		bands[i] = c[off : off+n : off+n]
		off += n
	}
	return bands, nil
}

// WriteTo streams the frame, implementing io.WriterTo.
func (c Codestream) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(c)
	return int64(n), err
}

// ReadFrom assembles one frame from a stream. io.EOF is returned
// unwrapped when the stream ends cleanly before a frame starts, so
// callers can iterate frames until EOF; any mid-frame truncation is a
// BadCodestream error.
func ReadFrom(r io.Reader) (Codestream, error) {
	hdr := make([]byte, headerFixed)
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, eperr.Wrap(eperr.BadCodestream, "container", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, eperr.Wrap(eperr.BadCodestream, "container", fmt.Errorf("reading header: %w", err))
	}
	if string(hdr[:4]) != Magic {
		return nil, eperr.New(eperr.BadCodestream, "container", "bad magic %q", hdr[:4])
	}
	n := int(binary.LittleEndian.Uint16(hdr[6:]))
	if n > MaxBands {
		return nil, eperr.New(eperr.BadCodestream, "container", "%d bands exceeds the %d-band bound", n, MaxBands)
	}
	frame := make([]byte, 0, headerFixed+4*n)
	frame = append(frame, hdr...)
	table := make([]byte, 4*n)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, eperr.Wrap(eperr.BadCodestream, "container", fmt.Errorf("reading band table: %w", err))
	}
	frame = append(frame, table...)
	total := 0
	for i := 0; i < n; i++ {
		total += int(binary.LittleEndian.Uint32(table[4*i:]))
		if total > MaxBytes {
			return nil, eperr.New(eperr.BadCodestream, "container", "band table claims more than MaxBytes (%d)", MaxBytes)
		}
	}
	rest := make([]byte, total+crcLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, eperr.Wrap(eperr.BadCodestream, "container", fmt.Errorf("reading %d payload bytes: %w", total, err))
	}
	c := Codestream(append(frame, rest...))
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
