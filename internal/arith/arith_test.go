package arith

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripSingleContext(t *testing.T) {
	bits := []int{0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 0}
	enc := NewEncoder()
	p := NewProbs(1)
	for _, b := range bits {
		enc.Encode(&p[0], b)
	}
	data := enc.Flush()
	dec := NewDecoder(data)
	q := NewProbs(1)
	for i, want := range bits {
		if got := dec.Decode(&q[0]); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%2000) + 1
		bits := make([]int, count)
		ctxIdx := make([]int, count)
		for i := range bits {
			bits[i] = rng.Intn(2)
			ctxIdx[i] = rng.Intn(8)
		}
		enc := NewEncoder()
		ps := NewProbs(8)
		for i := range bits {
			enc.Encode(&ps[ctxIdx[i]], bits[i])
		}
		data := enc.Flush()
		dec := NewDecoder(data)
		qs := NewProbs(8)
		for i := range bits {
			if dec.Decode(&qs[ctxIdx[i]]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBypassRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bits := make([]int, 5000)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	enc := NewEncoder()
	for _, b := range bits {
		enc.EncodeBypass(b)
	}
	dec := NewDecoder(enc.Flush())
	for i, want := range bits {
		if got := dec.DecodeBypass(); got != want {
			t.Fatalf("bypass bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestBypassNRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	type batch struct {
		v uint32
		n int
	}
	var batches []batch
	enc := NewEncoder()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(32) + 1
		v := rng.Uint32()
		if n < 32 {
			v &= 1<<uint(n) - 1
		}
		batches = append(batches, batch{v, n})
		enc.EncodeBypassN(v, n)
	}
	dec := NewDecoder(enc.Flush())
	for i, b := range batches {
		if got := dec.DecodeBypassN(b.n); got != b.v {
			t.Fatalf("batch %d (%d bits) = %#x, want %#x", i, b.n, got, b.v)
		}
	}
}

// EncodeBypassN must be bit-identical to the equivalent EncodeBypass
// sequence so batched and unbatched writers interoperate.
func TestBypassNMatchesSingleBits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	single := NewEncoder()
	batched := NewEncoder()
	for i := 0; i < 500; i++ {
		n := rng.Intn(32) + 1
		v := rng.Uint32()
		if n < 32 {
			v &= 1<<uint(n) - 1
		}
		for j := n - 1; j >= 0; j-- {
			single.EncodeBypass(int(v >> uint(j) & 1))
		}
		batched.EncodeBypassN(v, n)
	}
	a, b := single.Flush(), batched.Flush()
	if string(a) != string(b) {
		t.Fatalf("batched stream differs: %d vs %d bytes", len(b), len(a))
	}
}

func TestEncoderDecoderReset(t *testing.T) {
	enc := NewEncoder()
	var streams [][]byte
	for s := 0; s < 3; s++ {
		var buf []byte
		if s > 0 {
			buf = streams[s-1][:0:0] // fresh arrays; Reset also accepts reused ones
		}
		enc.Reset(buf)
		p := NewProbs(1)
		for i := 0; i < 100; i++ {
			enc.Encode(&p[0], (i+s)%2)
		}
		streams = append(streams, append([]byte(nil), enc.Flush()...))
	}
	dec := NewDecoder(nil)
	for s, data := range streams {
		dec.Reset(data)
		p := NewProbs(1)
		for i := 0; i < 100; i++ {
			if got := dec.Decode(&p[0]); got != (i+s)%2 {
				t.Fatalf("stream %d bit %d = %d", s, i, got)
			}
		}
	}
}

func TestMixedContextAndBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewEncoder()
	ps := NewProbs(2)
	var script []int // 0/1: context bit, 2/3: bypass bit
	for i := 0; i < 3000; i++ {
		b := rng.Intn(2)
		if rng.Intn(3) == 0 {
			enc.EncodeBypass(b)
			script = append(script, 2+b)
		} else {
			enc.Encode(&ps[i%2], b)
			script = append(script, b)
		}
	}
	dec := NewDecoder(enc.Flush())
	qs := NewProbs(2)
	for i, s := range script {
		var got, want int
		if s >= 2 {
			got, want = dec.DecodeBypass(), s-2
		} else {
			got, want = dec.Decode(&qs[i%2]), s
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

// Skewed input must compress well below 1 bit per symbol — this is the whole
// point of the adaptive coder.
func TestCompressionOnSkewedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	enc := NewEncoder()
	p := NewProbs(1)
	ones := 0
	for i := 0; i < n; i++ {
		b := 0
		if rng.Float64() < 0.05 {
			b = 1
		}
		ones += b
		enc.Encode(&p[0], b)
	}
	data := enc.Flush()
	bitsPerSymbol := float64(len(data)*8) / n
	// Entropy of a 5% source is ~0.29 bits; adaptive coding should land
	// well under 0.5.
	if bitsPerSymbol > 0.5 {
		t.Fatalf("skewed stream cost %.3f bits/symbol (len=%d, ones=%d)", bitsPerSymbol, len(data), ones)
	}
}

func TestUniformInputNearOneBit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 20000
	enc := NewEncoder()
	p := NewProbs(1)
	for i := 0; i < n; i++ {
		enc.Encode(&p[0], rng.Intn(2))
	}
	bitsPerSymbol := float64(len(enc.Flush())*8) / n
	if bitsPerSymbol < 0.98 || bitsPerSymbol > 1.1 {
		t.Fatalf("uniform stream cost %.3f bits/symbol, want ~1", bitsPerSymbol)
	}
}

func TestLenUpperBound(t *testing.T) {
	enc := NewEncoder()
	p := NewProbs(1)
	for i := 0; i < 1000; i++ {
		est := enc.Len()
		enc.Encode(&p[0], i%3%2)
		if enc.Len() < len(enc.out) {
			t.Fatal("Len below committed bytes")
		}
		_ = est
	}
	before := enc.Len()
	data := enc.Flush()
	if len(data) > before {
		t.Fatalf("flushed %d bytes > estimate %d", len(data), before)
	}
}

func TestTruncatedStreamDoesNotPanic(t *testing.T) {
	enc := NewEncoder()
	p := NewProbs(1)
	for i := 0; i < 1000; i++ {
		enc.Encode(&p[0], i%2)
	}
	data := enc.Flush()
	dec := NewDecoder(data[:len(data)/2])
	q := NewProbs(1)
	for i := 0; i < 1000; i++ {
		bit := dec.Decode(&q[0])
		if bit != 0 && bit != 1 {
			t.Fatalf("invalid bit %d", bit)
		}
	}
}

func TestEmptyFlushDecodes(t *testing.T) {
	data := NewEncoder().Flush()
	if len(data) == 0 {
		t.Fatal("flush of empty stream produced no bytes")
	}
	dec := NewDecoder(data)
	p := NewProbs(1)
	_ = dec.Decode(&p[0]) // must not panic
}

func TestResetProbs(t *testing.T) {
	ps := NewProbs(3)
	ps[0], ps[2] = 1, 2000
	ResetProbs(ps)
	for i, p := range ps {
		if p != probInit {
			t.Fatalf("ps[%d] = %d after reset", i, p)
		}
	}
}
