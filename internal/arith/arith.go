// Package arith implements an adaptive binary arithmetic coder (an
// LZMA-style binary range coder). The wavelet codec's bit-plane entropy
// stage drives it with per-context probability models, which is the same
// role the MQ coder plays inside JPEG-2000.
package arith

// Prob is an adaptive probability state for one binary context. The value
// is P(bit = 0) in units of 1/2048.
type Prob uint16

const (
	probBits  = 11
	probTotal = 1 << probBits // 2048
	probInit  = probTotal / 2
	moveBits  = 5
	topValue  = 1 << 24
)

// NewProbs returns n contexts initialised to the 50/50 state.
func NewProbs(n int) []Prob {
	p := make([]Prob, n)
	for i := range p {
		p[i] = probInit
	}
	return p
}

// ResetProbs returns every context to the 50/50 state.
func ResetProbs(p []Prob) {
	for i := range p {
		p[i] = probInit
	}
}

// Encoder is a binary range encoder. Create with NewEncoder, feed bits with
// Encode/EncodeBypass, and finish with Flush.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

// NewEncoder returns a fresh encoder.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

// Reset returns the encoder to its initial state, adopting buf (which may be
// nil) as the output buffer. It lets a caller producing many independent
// streams reuse one encoder and one backing array instead of allocating per
// stream.
func (e *Encoder) Reset(buf []byte) {
	*e = Encoder{rng: 0xFFFFFFFF, cacheSize: 1, out: buf[:0]}
}

// Encode codes one bit under the adaptive context p, updating p.
func (e *Encoder) Encode(p *Prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// EncodeBypass codes one equiprobable bit without touching any context.
func (e *Encoder) EncodeBypass(bit int) {
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// EncodeBypassN codes the low n bits of v (1 <= n <= 32) as equiprobable
// bits, most significant first. It is equivalent to n EncodeBypass calls but
// amortises the call and renormalisation overhead, which matters when the
// codec batches a plane's sign bits.
func (e *Encoder) EncodeBypassN(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		e.rng >>= 1
		if v>>uint(i)&1 != 0 {
			e.low += uint64(e.rng)
		}
		if e.rng < topValue {
			e.shiftLow()
			e.rng <<= 8
		}
	}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		tmp := e.cache
		for {
			e.out = append(e.out, tmp+carry)
			tmp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	// The top byte just moved into cache; keep only bits 0..23, shifted.
	// A later carry out of bit 31 is detected via low>>32 above.
	e.low = uint64(uint32(e.low) << 8)
}

// Len returns an upper bound on the byte length the stream would have if
// flushed now. The codec's rate controller uses it to stop at a byte budget.
func (e *Encoder) Len() int { return len(e.out) + int(e.cacheSize) + 4 }

// Flush terminates the stream and returns the encoded bytes. The encoder
// must not be used afterwards.
func (e *Encoder) Flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Decoder mirrors Encoder. Reads past the end of the buffer yield zero
// bytes, so decoding a truncated stream degrades instead of crashing.
type Decoder struct {
	buf  []byte
	pos  int
	rng  uint32
	code uint32
}

// NewDecoder returns a decoder over buf (the output of Encoder.Flush).
func NewDecoder(buf []byte) *Decoder {
	d := &Decoder{}
	d.Reset(buf)
	return d
}

// Reset re-primes the decoder over buf, letting a caller consuming many
// independent streams reuse one decoder instead of allocating per stream.
func (d *Decoder) Reset(buf []byte) {
	*d = Decoder{buf: buf, rng: 0xFFFFFFFF}
	d.nextByte() // the encoder's first shifted byte is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
}

func (d *Decoder) nextByte() byte {
	if d.pos >= len(d.buf) {
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

// Decode returns the next bit under context p, updating p exactly as the
// encoder did.
func (d *Decoder) Decode(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (probTotal - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.nextByte())
		d.rng <<= 8
	}
	return bit
}

// DecodeBypass returns the next equiprobable bit.
func (d *Decoder) DecodeBypass() int {
	d.rng >>= 1
	var bit int
	if d.code >= d.rng {
		d.code -= d.rng
		bit = 1
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.nextByte())
		d.rng <<= 8
	}
	return bit
}

// DecodeBypassN mirrors EncodeBypassN: it returns the next n equiprobable
// bits (1 <= n <= 32) packed most-significant-first.
func (d *Decoder) DecodeBypassN(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		d.rng >>= 1
		v <<= 1
		if d.code >= d.rng {
			d.code -= d.rng
			v |= 1
		}
		if d.rng < topValue {
			d.code = d.code<<8 | uint32(d.nextByte())
			d.rng <<= 8
		}
	}
	return v
}
