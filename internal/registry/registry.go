// Package registry is the single construction path for every compression
// system in the reproduction. Earth+, the baselines and any future
// ablation variants register a Factory under a stable lower-case name
// (core and baseline self-register in their init functions), and
// everything above — experiments, cmds, the HTTP serving layer and the
// public pkg/earthplus API — resolves systems by name through one unified
// Spec instead of calling divergent constructors.
package registry

import (
	"sort"
	"sync"

	"earthplus/internal/codec"
	"earthplus/internal/eperr"
	"earthplus/internal/sim"
)

// Spec is the unified system configuration. The zero value means "the
// system's defaults"; systems read only the fields they understand.
type Spec struct {
	// GammaBPP is the paper's γ: bits per pixel spent on each downloaded
	// tile. Zero means the default 1.0.
	GammaBPP float64
	// Theta overrides the change-detection threshold where the system has
	// one (Earth+). Zero keeps the system default (or a profiled value).
	Theta float64
	// Codec configures the wavelet codec. Zero fields default
	// individually to codec.DefaultOptions' values, so an explicit
	// Levels or BudgetBytes survives an unset BaseStep and vice versa.
	Codec codec.Options
	// Params carries system-specific knobs by name ("guarantee_days",
	// "reject_cloud_frac", "storage_bytes", …). Presence is meaningful —
	// an explicit zero overrides the system default — and unknown keys
	// are a BadConfig error so typos cannot silently run the default
	// configuration.
	Params map[string]float64
	// StrParams carries system-specific string-valued knobs by name
	// ("evict_policy", …) with the same contract as Params: presence is
	// meaningful and unknown keys are a BadConfig error.
	StrParams map[string]string
}

// Normalize fills the Spec's zero values with the shared defaults.
func (s Spec) Normalize() Spec {
	if s.GammaBPP == 0 {
		s.GammaBPP = 1.0
	}
	def := codec.DefaultOptions()
	if s.Codec.Levels == 0 {
		s.Codec.Levels = def.Levels
	}
	if s.Codec.BaseStep == 0 {
		s.Codec.BaseStep = def.BaseStep
	}
	// BudgetBytes and Parallelism default to zero, which the codec
	// already treats as "unbudgeted" / "package default".
	return s
}

// Param returns the named knob and whether it was set.
func (s Spec) Param(name string) (float64, bool) {
	v, ok := s.Params[name]
	return v, ok
}

// StrParam returns the named string knob and whether it was set.
func (s Spec) StrParam(name string) (string, bool) {
	v, ok := s.StrParams[name]
	return v, ok
}

// StorageBytesParam decodes the shared "storage_bytes" knob with its
// presence-is-meaningful convention: absent returns (0, false); an
// explicit non-positive value means "unlimited" and returns -1; a
// positive value is the budget in bytes. Every system with a bounded
// reference store decodes the knob through this one helper.
func (s Spec) StorageBytesParam() (int64, bool) {
	v, ok := s.Param("storage_bytes")
	if !ok {
		return 0, false
	}
	if v <= 0 {
		return -1, true
	}
	return int64(v), true
}

// Factory builds a configured system for an environment.
type Factory func(env *sim.Env, spec Spec) (sim.System, error)

var (
	mu        sync.RWMutex
	factories = map[string]Factory{}
)

// Register installs a factory under name. Registering an empty name, a
// nil factory, or a taken name panics: registration happens in package
// init functions, where a conflict is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("registry: Register needs a name and a factory")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		panic("registry: duplicate system " + name)
	}
	factories[name] = f
}

// New builds the named system, normalising the spec first. Unknown names
// return an UnknownSystem error listing what is registered.
func New(name string, env *sim.Env, spec Spec) (sim.System, error) {
	mu.RLock()
	f := factories[name]
	mu.RUnlock()
	if f == nil {
		return nil, eperr.New(eperr.UnknownSystem, "registry", "no system %q (registered: %v)", name, Names())
	}
	return f(env, spec.Normalize())
}

// Names lists the registered systems, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CheckParams verifies that every Params key is among the allowed names,
// so factories reject typo'd knobs uniformly.
func CheckParams(spec Spec, system string, allowed ...string) error {
	for k := range spec.Params {
		if !nameAllowed(k, allowed) {
			return eperr.New(eperr.BadConfig, "registry", "system %q does not understand param %q (allowed: %v)", system, k, allowed)
		}
	}
	return nil
}

// CheckStrParams is CheckParams for the string-valued knobs.
func CheckStrParams(spec Spec, system string, allowed ...string) error {
	for k := range spec.StrParams {
		if !nameAllowed(k, allowed) {
			return eperr.New(eperr.BadConfig, "registry", "system %q does not understand string param %q (allowed: %v)", system, k, allowed)
		}
	}
	return nil
}

func nameAllowed(k string, allowed []string) bool {
	for _, a := range allowed {
		if k == a {
			return true
		}
	}
	return false
}
