package registry

import (
	"errors"
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/eperr"
	"earthplus/internal/sim"
)

func TestUnknownSystemTypedError(t *testing.T) {
	_, err := New("no-such-system", &sim.Env{}, Spec{})
	if err == nil {
		t.Fatal("expected an error for an unregistered name")
	}
	if !errors.Is(err, eperr.ErrUnknownSystem) {
		t.Fatalf("error %v is not ErrUnknownSystem", err)
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	f := func(*sim.Env, Spec) (sim.System, error) { return nil, nil }
	Register("registry-test-dup", f)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("registry-test-dup", f)
}

func TestNormalizeDefaults(t *testing.T) {
	s := Spec{}.Normalize()
	if s.GammaBPP != 1.0 {
		t.Fatalf("GammaBPP default = %v, want 1.0", s.GammaBPP)
	}
	if s.Codec.BaseStep != codec.DefaultOptions().BaseStep || s.Codec.Levels != codec.DefaultOptions().Levels {
		t.Fatalf("Codec default not applied: %+v", s.Codec)
	}
	// Parallelism survives a zero-BaseStep spec.
	s = Spec{Codec: codec.Options{Parallelism: 3}}.Normalize()
	if s.Codec.Parallelism != 3 || s.Codec.BaseStep == 0 {
		t.Fatalf("Parallelism lost in normalisation: %+v", s.Codec)
	}
	// A fully-specified codec is kept as is.
	custom := codec.Options{Levels: 2, BaseStep: 0.5}
	if got := (Spec{Codec: custom}).Normalize().Codec; got != custom {
		t.Fatalf("custom codec rewritten: %+v", got)
	}
	// Explicit Levels and BudgetBytes survive a zero BaseStep: fields
	// default individually, never by replacing the whole struct.
	s = Spec{Codec: codec.Options{Levels: 3, BudgetBytes: 1 << 16}}.Normalize()
	if s.Codec.Levels != 3 || s.Codec.BudgetBytes != 1<<16 || s.Codec.BaseStep != codec.DefaultOptions().BaseStep {
		t.Fatalf("explicit codec fields lost with zero BaseStep: %+v", s.Codec)
	}
}

func TestCheckParams(t *testing.T) {
	spec := Spec{Params: map[string]float64{"guarantee_days": 10}}
	if err := CheckParams(spec, "earthplus", "guarantee_days", "reject_cloud_frac"); err != nil {
		t.Fatalf("allowed param rejected: %v", err)
	}
	spec = Spec{Params: map[string]float64{"guarantee_dayz": 10}}
	err := CheckParams(spec, "earthplus", "guarantee_days")
	if !errors.Is(err, eperr.ErrBadConfig) {
		t.Fatalf("typo'd param error = %v, want ErrBadConfig", err)
	}
}

func TestCheckStrParams(t *testing.T) {
	spec := Spec{StrParams: map[string]string{"evict_policy": "schedule"}}
	if err := CheckStrParams(spec, "earthplus", "evict_policy"); err != nil {
		t.Fatalf("allowed string param rejected: %v", err)
	}
	if v, ok := spec.StrParam("evict_policy"); !ok || v != "schedule" {
		t.Fatalf("StrParam = %q, %v", v, ok)
	}
	if _, ok := spec.StrParam("absent"); ok {
		t.Fatal("absent string param reported present")
	}
	spec = Spec{StrParams: map[string]string{"evict_polcy": "lru"}}
	err := CheckStrParams(spec, "earthplus", "evict_policy")
	if !errors.Is(err, eperr.ErrBadConfig) {
		t.Fatalf("typo'd string param error = %v, want ErrBadConfig", err)
	}
}

func TestNewNormalizesSpec(t *testing.T) {
	var got Spec
	Register("registry-test-capture", func(env *sim.Env, spec Spec) (sim.System, error) {
		got = spec
		return nil, nil
	})
	if _, err := New("registry-test-capture", &sim.Env{}, Spec{}); err != nil {
		t.Fatal(err)
	}
	if got.GammaBPP != 1.0 || got.Codec.BaseStep == 0 {
		t.Fatalf("factory received un-normalised spec: %+v", got)
	}
}
