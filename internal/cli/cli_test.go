package cli

import (
	"flag"
	"math"
	"testing"

	"earthplus/pkg/earthplus"
)

func TestPerfFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var p Perf
	p.Register(fs)
	if err := fs.Parse([]string{"-parallel", "3", "-simworkers", "5"}); err != nil {
		t.Fatal(err)
	}
	if p.Parallel != 3 || p.SimWorkers != 5 {
		t.Fatalf("parsed %+v", p)
	}
	p.Apply()
	defer func() {
		earthplus.SetCodecParallelism(0)
		earthplus.SetSimWorkers(0)
	}()
}

func TestStorageFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var s Storage
	s.Register(fs)
	if err := fs.Parse([]string{"-storage", "12345", "-evictpolicy", "schedule", "-refcompress"}); err != nil {
		t.Fatal(err)
	}
	if s.Bytes != 12345 || s.Policy != "schedule" || !s.RefCompress {
		t.Fatalf("parsed %+v", s)
	}
	var spec earthplus.SystemSpec
	s.ApplyToSpec(&spec)
	if spec.Params["storage_bytes"] != 12345 ||
		spec.StrParams["evict_policy"] != "schedule" ||
		spec.StrParams["ref_compression"] != "on" {
		t.Fatalf("spec %+v", spec)
	}
	// Unset flags leave the spec untouched so system defaults survive.
	var zero Storage
	var clean earthplus.SystemSpec
	zero.ApplyToSpec(&clean)
	if clean.Params != nil || clean.StrParams != nil {
		t.Fatalf("zero storage flags touched the spec: %+v", clean)
	}
}

func TestLinkFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var l Link
	l.Register(fs)
	if err := fs.Parse([]string{"-linkloss", "0.05", "-linkseed", "9"}); err != nil {
		t.Fatal(err)
	}
	if l.Loss != 0.05 || l.Seed != 9 {
		t.Fatalf("parsed %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	var spec earthplus.SystemSpec
	l.ApplyToSpec(&spec)
	if spec.Params["link_loss"] != 0.05 || spec.Params["link_seed"] != 9 {
		t.Fatalf("spec %+v", spec)
	}
	// Loss 0 leaves the spec untouched: presence of link_loss is
	// meaningful, and default runs must stay byte-identical to the
	// perfect channel.
	var zero Link
	var clean earthplus.SystemSpec
	zero.ApplyToSpec(&clean)
	if clean.Params != nil {
		t.Fatalf("zero link flags touched the spec: %+v", clean)
	}
}

// TestFlagValidationPath pins the satellite bugfix: every bad flag value
// — -linkloss out of range, an unknown -evictpolicy — surfaces through
// ONE error path (FirstError, which MustValidate routes to the uniform
// one-line fatal report) instead of erroring mid-run or panicking.
func TestFlagValidationPath(t *testing.T) {
	bad := []struct {
		name   string
		groups []Validator
	}{
		{"linkloss negative", []Validator{&Link{Loss: -0.5}}},
		{"linkloss above one", []Validator{&Link{Loss: 1.5}}},
		{"linkloss NaN", []Validator{&Link{Loss: math.NaN()}}},
		{"evictpolicy unknown", []Validator{&Storage{Policy: "random"}}},
		{"second group bad", []Validator{&Storage{}, &Link{Loss: 2}}},
	}
	for _, tc := range bad {
		if err := FirstError(tc.groups...); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	ok := []Validator{
		&Storage{}, &Storage{Policy: "lru"}, &Storage{Policy: "schedule"},
		&Link{}, &Link{Loss: 1}, &Link{Loss: 0.01, Seed: 7},
	}
	if err := FirstError(ok...); err != nil {
		t.Fatalf("valid flag groups rejected: %v", err)
	}
}

func TestPerfCodecOnly(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var p Perf
	p.RegisterCodec(fs)
	if err := fs.Parse([]string{"-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("simworkers") != nil {
		t.Fatal("RegisterCodec must not install -simworkers")
	}
}

func TestDatasetResolution(t *testing.T) {
	cases := []struct {
		name      string
		locations int
		sats      int
	}{
		{"rich", 11, 2},
		{"planet", 1, 7},
		{"planet-sampled", 1, 7},
		{"planet-natural", 1, 7},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		var d Dataset
		d.Register(fs, "planet", 8)
		if err := fs.Parse([]string{"-dataset", c.name, "-sats", "7"}); err != nil {
			t.Fatal(err)
		}
		cfg, err := d.SceneConfig()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(cfg.Locations) != c.locations {
			t.Fatalf("%s: %d locations, want %d", c.name, len(cfg.Locations), c.locations)
		}
		if got := d.Constellation().Satellites; got != c.sats {
			t.Fatalf("%s: %d satellites, want %d", c.name, got, c.sats)
		}
	}
}

func TestDatasetUnknownName(t *testing.T) {
	d := Dataset{Name: "mars"}
	if _, err := d.SceneConfig(); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := d.Env(); err == nil {
		t.Fatal("Env accepted an unknown dataset")
	}
}

func TestDatasetEnv(t *testing.T) {
	d := Dataset{Name: "planet", Sats: 4}
	env, err := d.Env()
	if err != nil {
		t.Fatal(err)
	}
	if env.Scene == nil || env.Orbit.Satellites != 4 || env.Downlink.Bps != 200e6 {
		t.Fatalf("env = %+v", env)
	}
	if d.FullSize {
		t.Fatal("FullSize default should be false")
	}
	full := Dataset{Name: "rich", FullSize: true}
	cfg, err := full.SceneConfig()
	if err != nil {
		t.Fatal(err)
	}
	quick := Dataset{Name: "rich"}
	quickCfg, _ := quick.SceneConfig()
	if cfg.Width <= quickCfg.Width {
		t.Fatalf("fullsize width %d not larger than quick %d", cfg.Width, quickCfg.Width)
	}
}

func TestFleetFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var f Fleet
	f.Register(fs)
	if err := fs.Parse([]string{"-stations", "3", "-contactbudget", "2048"}); err != nil {
		t.Fatal(err)
	}
	if f.Stations != 3 || f.ContactBudget != 2048 {
		t.Fatalf("parsed %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var spec earthplus.SystemSpec
	f.ApplyToSpec(&spec)
	if spec.Params["stations"] != 3 || spec.Params["contact_budget"] != 2048 {
		t.Fatalf("spec %+v", spec)
	}
	// Unset fleet flags leave the spec untouched: presence of "stations" is
	// meaningful, and default runs must stay byte-identical to the flat
	// per-day budget.
	var zero Fleet
	var clean earthplus.SystemSpec
	zero.ApplyToSpec(&clean)
	if clean.Params != nil {
		t.Fatalf("zero fleet flags touched the spec: %+v", clean)
	}
	// A derived (zero) contact budget sets only the station count.
	derive := Fleet{Stations: 2}
	var derived earthplus.SystemSpec
	derive.ApplyToSpec(&derived)
	if derived.Params["stations"] != 2 {
		t.Fatalf("derived spec %+v", derived)
	}
	if _, ok := derived.Params["contact_budget"]; ok {
		t.Fatalf("zero contact budget leaked into the spec: %+v", derived)
	}
}

func TestFleetValidation(t *testing.T) {
	bad := []Validator{
		&Fleet{Stations: -1},
		&Fleet{ContactBudget: 100},
		&Fleet{ContactBudget: -1},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Fatalf("bad fleet config %d accepted: %+v", i, v)
		}
	}
	ok := []Validator{
		&Fleet{},
		&Fleet{Stations: 1},
		&Fleet{Stations: 2, ContactBudget: -1},
		&Fleet{Stations: 4, ContactBudget: 4096},
	}
	if err := FirstError(ok...); err != nil {
		t.Fatalf("valid fleet configs rejected: %v", err)
	}
}
