// Package cli holds the flag plumbing shared by every executable under
// cmd/: the performance knobs (-parallel, -simworkers), the dataset
// selection flags (-dataset, -sats, -fullsize) with their environment
// construction, and uniform fatal-error reporting. The cmds themselves
// speak only the public pkg/earthplus API; this package exists so five
// main functions do not each re-implement the same plumbing.
package cli

import (
	"flag"
	"fmt"
	"os"

	"earthplus/pkg/earthplus"
)

// Perf bundles the performance flags every workload-running cmd exposes.
type Perf struct {
	// Parallel bounds the bands encoded/decoded concurrently per image.
	Parallel int
	// SimWorkers bounds the locations simulated concurrently per day.
	SimWorkers int
}

// Register installs both performance flags on fs.
func (p *Perf) Register(fs *flag.FlagSet) {
	p.RegisterCodec(fs)
	fs.IntVar(&p.SimWorkers, "simworkers", 0,
		"locations simulated concurrently per day (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
}

// RegisterCodec installs only the codec flag (for cmds that never run
// the simulation engine).
func (p *Perf) RegisterCodec(fs *flag.FlagSet) {
	fs.IntVar(&p.Parallel, "parallel", 0,
		"bands encoded/decoded concurrently per image (0 = GOMAXPROCS)")
}

// Apply pushes the parsed values into the package-wide defaults.
func (p *Perf) Apply() {
	earthplus.SetCodecParallelism(p.Parallel)
	earthplus.SetSimWorkers(p.SimWorkers)
}

// Storage bundles the on-board reference-store flags shared by the
// simulation cmds: the byte budget of the satellite store and the
// eviction policy that decides which reference goes first when it fills.
type Storage struct {
	// Bytes is the store budget: 0 = the paper's Table 1 default
	// (360 GB), negative = explicitly unlimited.
	Bytes int64
	// Policy is the eviction policy ("lru" | "schedule"; empty = lru).
	Policy string
	// RefCompress stores on-board references compressed (encoded at the
	// uplink's lossy reference rate; decode-on-visit) instead of as raw
	// planes.
	RefCompress bool
	// TiledStore switches every codec pass in the loop to the tiled
	// (EPT1) codestream profile: per-tile splices on delta uplinks and
	// region decode-on-visit. Off keeps the monolithic v1 profile byte
	// for byte.
	TiledStore bool
}

// Register installs the storage flags on fs.
func (s *Storage) Register(fs *flag.FlagSet) {
	fs.Int64Var(&s.Bytes, "storage", 0,
		"on-board reference-store budget in bytes (0 = paper default 360 GB, negative = unlimited)")
	fs.StringVar(&s.Policy, "evictpolicy", "",
		"reference-store eviction policy: lru | schedule (empty = lru)")
	fs.BoolVar(&s.RefCompress, "refcompress", false,
		"store on-board references compressed (~2-5x more locations per storage budget, paid in decode-on-visit work; default off)")
	fs.BoolVar(&s.TiledStore, "tiledstore", false,
		"use the tiled (EPT1) codestream profile for updates, downloads and the store: per-tile splices and region decode (default off = monolithic v1 profile)")
}

// Apply pushes the parsed values into the experiment-sweep defaults.
func (s *Storage) Apply() {
	earthplus.SetStorageModel(s.Bytes, s.Policy)
	earthplus.SetRefCompression(s.RefCompress)
}

// Validate rejects flag values no run could honour, so a typo fails with
// one line on stderr before any simulation starts instead of erroring
// mid-run.
func (s *Storage) Validate() error {
	switch s.Policy {
	case "", "lru", "schedule":
		return nil
	default:
		return fmt.Errorf("-evictpolicy must be lru or schedule, got %q", s.Policy)
	}
}

// ApplyToSpec sets the parsed values as explicit system params on spec —
// only when the flags were actually set, so the system defaults survive
// (and systems without a reference store reject them loudly).
func (s *Storage) ApplyToSpec(spec *earthplus.SystemSpec) {
	if s.Bytes != 0 {
		if spec.Params == nil {
			spec.Params = map[string]float64{}
		}
		spec.Params["storage_bytes"] = float64(s.Bytes)
	}
	if s.Policy != "" {
		if spec.StrParams == nil {
			spec.StrParams = map[string]string{}
		}
		spec.StrParams["evict_policy"] = s.Policy
	}
	if s.RefCompress {
		if spec.StrParams == nil {
			spec.StrParams = map[string]string{}
		}
		spec.StrParams["ref_compression"] = "on"
	}
	if s.TiledStore {
		if spec.StrParams == nil {
			spec.StrParams = map[string]string{}
		}
		spec.StrParams["tiled_store"] = "on"
	}
}

// Link bundles the fault-injected ground↔satellite channel flags shared
// by the simulation cmds: an aggregate loss rate spread over frame drops,
// corruptions, truncations and contact cancellations, and the seed that
// picks the deterministic fault pattern.
type Link struct {
	// Loss is the aggregate fault rate in [0,1]; 0 keeps the perfect
	// channel and is byte-identical to not having the flag at all.
	Loss float64
	// Seed picks the fault pattern; runs are byte-identical at any worker
	// count for a fixed seed.
	Seed uint64
}

// Register installs the link flags on fs.
func (l *Link) Register(fs *flag.FlagSet) {
	fs.Float64Var(&l.Loss, "linkloss", 0,
		"aggregate link fault rate in [0,1], spread over frame drops, corruptions, truncations and contact cancellations (0 = perfect channel)")
	fs.Uint64Var(&l.Seed, "linkseed", 1,
		"seed of the deterministic link fault pattern (meaningful only with -linkloss > 0)")
}

// Validate rejects an out-of-range loss rate up front.
func (l *Link) Validate() error {
	if l.Loss != l.Loss || l.Loss < 0 || l.Loss > 1 {
		return fmt.Errorf("-linkloss must be in [0,1], got %v", l.Loss)
	}
	return nil
}

// Apply pushes the parsed values into the experiment-sweep defaults.
func (l *Link) Apply() {
	earthplus.SetLinkFaults(l.Loss, l.Seed)
}

// ApplyToSpec sets the parsed values as explicit system params on spec —
// only when a loss rate was actually set, so default runs stay
// byte-identical to the perfect channel (and systems without a link
// model reject the params loudly).
func (l *Link) ApplyToSpec(spec *earthplus.SystemSpec) {
	if l.Loss != 0 {
		if spec.Params == nil {
			spec.Params = map[string]float64{}
		}
		spec.Params["link_loss"] = l.Loss
		spec.Params["link_seed"] = float64(l.Seed)
	}
}

// Fleet bundles the constellation ground-segment flags shared by the
// simulation cmds: the contended ground-station count and the per-contact
// uplink budget that replaces the flat per-day budget when enabled.
type Fleet struct {
	// Stations is the ground-station count; 0 keeps the flat per-day
	// uplink budget (byte-identical to not having the flag at all).
	Stations int
	// ContactBudget is the uplink byte budget of one contact window:
	// 0 derives it from the flat per-day budget, negative = unlimited.
	// Meaningful only with -stations > 0.
	ContactBudget int64
}

// Register installs the fleet flags on fs.
func (f *Fleet) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Stations, "stations", 0,
		"contended ground stations, each serving one satellite per contact window (0 = flat per-day uplink budget)")
	fs.Int64Var(&f.ContactBudget, "contactbudget", 0,
		"uplink bytes per contact window (0 = derive from the flat per-day budget, negative = unlimited; needs -stations)")
}

// Validate rejects combinations no run could honour.
func (f *Fleet) Validate() error {
	if f.Stations < 0 {
		return fmt.Errorf("-stations must be non-negative, got %d", f.Stations)
	}
	if f.ContactBudget != 0 && f.Stations == 0 {
		return fmt.Errorf("-contactbudget %d needs -stations > 0", f.ContactBudget)
	}
	return nil
}

// Apply pushes the parsed values into the experiment-sweep defaults.
func (f *Fleet) Apply() {
	earthplus.SetConstellation(f.Stations, f.ContactBudget)
}

// ApplyToSpec sets the parsed values as explicit system params on spec —
// only when stations were actually requested, so default runs keep the
// flat-budget behavior byte for byte (and systems without a ground-segment
// model reject the params loudly).
func (f *Fleet) ApplyToSpec(spec *earthplus.SystemSpec) {
	if f.Stations == 0 {
		return
	}
	if spec.Params == nil {
		spec.Params = map[string]float64{}
	}
	spec.Params["stations"] = float64(f.Stations)
	if f.ContactBudget != 0 {
		spec.Params["contact_budget"] = float64(f.ContactBudget)
	}
}

// Dataset bundles the dataset-selection flags and the environment
// construction every simulation cmd repeats.
type Dataset struct {
	// Name picks the dataset: rich | planet | planet-natural.
	Name string
	// Sats is the constellation size for the planet datasets.
	Sats int
	// FullSize selects the larger scene scale.
	FullSize bool
}

// Register installs the dataset flags on fs with the given defaults.
func (d *Dataset) Register(fs *flag.FlagSet, defaultName string, defaultSats int) {
	fs.StringVar(&d.Name, "dataset", defaultName,
		"dataset: rich | planet (cloud-sampled) | planet-natural")
	fs.IntVar(&d.Sats, "sats", defaultSats, "number of satellites in the constellation (planet datasets)")
	fs.BoolVar(&d.FullSize, "fullsize", false, "use the larger scene size")
}

// size resolves the scene scale.
func (d *Dataset) size() earthplus.SceneSize {
	if d.FullSize {
		return earthplus.SizeFull
	}
	return earthplus.SizeQuick
}

// SceneConfig resolves the dataset name to a scene configuration.
func (d *Dataset) SceneConfig() (earthplus.SceneConfig, error) {
	switch d.Name {
	case "rich":
		return earthplus.RichContent(d.size()), nil
	case "planet", "planet-sampled":
		return earthplus.LargeConstellationSampled(d.size()), nil
	case "planet-natural":
		return earthplus.LargeConstellation(d.size()), nil
	default:
		return earthplus.SceneConfig{}, fmt.Errorf("unknown dataset %q (rich | planet | planet-natural)", d.Name)
	}
}

// Constellation returns the dataset's fleet: the Sentinel-2-like pair for
// rich content, a Doves-like fleet of Sats satellites otherwise.
func (d *Dataset) Constellation() earthplus.Constellation {
	if d.Name == "rich" {
		return earthplus.Constellation{Satellites: 2, RevisitDays: 10}
	}
	return earthplus.Constellation{Satellites: d.Sats, RevisitDays: 12}
}

// Env assembles the simulation environment for the selected dataset with
// the standard Doves downlink contact model.
func (d *Dataset) Env() (*earthplus.Env, error) {
	cfg, err := d.SceneConfig()
	if err != nil {
		return nil, err
	}
	return &earthplus.Env{
		Scene:    earthplus.NewScene(cfg),
		Orbit:    d.Constellation(),
		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}, nil
}

// Validator is a flag group that can reject its parsed values.
type Validator interface {
	Validate() error
}

// FirstError returns the first validation failure among the parsed flag
// groups, or nil.
func FirstError(groups ...Validator) error {
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MustValidate routes every flag group's validation through the one
// fatal-error path: the first bad value prints a single line on stderr
// and exits nonzero, before any simulation work starts.
func MustValidate(cmd string, groups ...Validator) {
	if err := FirstError(groups...); err != nil {
		Fail(cmd, "%v", err)
	}
}

// Fail reports a fatal cmd error and exits.
func Fail(cmd, format string, args ...any) {
	fmt.Fprintf(os.Stderr, cmd+": "+format+"\n", args...)
	os.Exit(1)
}
