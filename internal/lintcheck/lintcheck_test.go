package lintcheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the main
// module's go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if b, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil &&
			strings.HasPrefix(string(b), "module earthplus\n") {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("main module go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestTreeIsLintClean builds earthplus-lint from the nested tools module
// and runs it over the whole main module: any maporder, detsource,
// pooledescape or eperrboundary finding fails the build. New deliberate
// exceptions need a //lint:<keyword> <reason> annotation at the site.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full lint suite; skipped in -short")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "earthplus-lint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/earthplus-lint")
	build.Dir = filepath.Join(root, "tools")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building earthplus-lint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("lint findings in the committed tree:\n%s", out)
	}
}

// TestAnalyzerSuitePasses runs the tools module's own tests (the
// analysistest fixtures), which `go test ./...` at the root would
// otherwise skip because tools/ is a separate module.
func TestAnalyzerSuitePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the nested tools module's tests; skipped in -short")
	}
	root := repoRoot(t)
	cmd := exec.Command("go", "test", "./...")
	cmd.Dir = filepath.Join(root, "tools")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("tools module tests failed: %v\n%s", err, out)
	}
}
