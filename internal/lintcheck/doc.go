// Package lintcheck holds the meta-tests that bind the repo's own
// static-analysis suite (tools/cmd/earthplus-lint) into the tier-1 gate:
// `go test ./...` fails if the committed tree has lint findings or if the
// analyzers' own tests fail, so nobody needs to remember a separate lint
// invocation.
package lintcheck
