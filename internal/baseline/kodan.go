// Package baseline implements the paper's two comparison systems (§6.1):
// Kodan [37], which discards cloudy data with an expensive on-board
// detector and downloads every remaining tile, and SatRoI [61], which runs
// reference-based encoding against a fixed on-board reference at full
// resolution.
package baseline

import (
	"time"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
	"earthplus/internal/station"
)

// Kodan drops low-value cloudy data and downloads all non-cloudy areas
// (§6.1). It pays for an accurate on-board cloud detector — the runtime
// cost Fig 16 charges it for — but never exploits cross-capture
// redundancy.
//
// OnCapture is safe for concurrent calls on distinct locations (the
// sharded engine's contract): the detector is stateless and all mutable
// state lives in the ground segment, which is sharded and locked per
// location.
type Kodan struct {
	env      *sim.Env
	gamma    float64
	opts     codec.Options
	detector *cloud.TemporalDetector
	dropCov  float64
	tileFrac float64
	ground   *station.Ground
}

var _ sim.System = (*Kodan)(nil)

// NewKodan builds the Kodan baseline with the paper's drop threshold.
func NewKodan(env *sim.Env, gammaBPP float64, opts codec.Options) (*Kodan, error) {
	bands := env.Scene.Bands()
	ground, err := station.NewGround(station.Config{
		Bands:       bands,
		Grid:        env.Scene.Grid(),
		Downsample:  4,
		CodecOpts:   opts,
		RefBPP:      1, // unused: Kodan never uplinks references
		MaxRefCloud: -1,
	}, env.Scene.NumLocations())
	if err != nil {
		return nil, err
	}
	return &Kodan{
		env:      env,
		gamma:    gammaBPP,
		opts:     opts,
		detector: cloud.DefaultTemporal(bands),
		dropCov:  0.5,
		tileFrac: 0.5,
		ground:   ground,
	}, nil
}

// Name implements sim.System.
func (k *Kodan) Name() string { return "Kodan" }

// Bootstrap implements sim.System.
func (k *Kodan) Bootstrap(cap *scene.Capture) error {
	return k.ground.SeedBootstrap(cap.Loc, cap.Day, cap.Truth, nil)
}

// OnCapture implements sim.System: accurate cloud filtering, then download
// of every non-cloudy tile at γ bits per pixel.
func (k *Kodan) OnCapture(cap *scene.Capture) (sim.Outcome, error) {
	grid := k.env.Scene.Grid()
	out := sim.Outcome{TotalTiles: grid.NumTiles(), RefAge: -1}

	// Kodan's expensive on-board detector: reference-aware, using the
	// clear content Kodan already stores on board (it keeps every clear
	// capture awaiting download, so the latest archive state is on hand).
	tCloud := time.Now()
	mask := k.detector.DetectWithReference(cap.Image, k.ground.Archive(cap.Loc))
	out.CloudSec = time.Since(tCloud).Seconds()
	if mask.Coverage() > k.dropCov {
		out.Dropped = true
		return out, nil
	}
	clearTiles := mask.TileMask(grid, k.tileFrac)
	clearTiles.Invert()
	roi := make([]*raster.TileMask, len(k.env.Scene.Bands()))
	for b := range roi {
		roi[b] = clearTiles
	}
	tEnc := time.Now()
	frame, err := sat.EncodeROI(cap.Image, roi, k.gamma, k.opts)
	if err != nil {
		return sim.Outcome{}, err
	}
	out.EncodeSec = time.Since(tEnc).Seconds()
	lens, err := frame.PerBandLens()
	if err != nil {
		return sim.Outcome{}, err
	}
	out.PerBandBytes = make([]int64, len(lens))
	for b, n := range lens {
		out.PerBandBytes[b] = int64(n)
		out.DownBytes += int64(n)
	}
	out.DownTilesPerBand = float64(clearTiles.Count())

	if err := k.ground.ApplyDownload(cap.Loc, cap.Day, frame, roi, nil); err != nil {
		return sim.Outcome{}, err
	}
	out.Recon = k.ground.Recon(cap.Loc)
	return out, nil
}

// OnDayEnd implements sim.System; Kodan uses no uplink.
func (k *Kodan) OnDayEnd(int) (int64, error) { return 0, nil }
