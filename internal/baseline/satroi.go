package baseline

import (
	"fmt"
	"time"

	"earthplus/internal/change"
	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/illum"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
	"earthplus/internal/station"
)

// SatRoI is the reference-based baseline [61]: it keeps a fixed full-
// resolution reference image on board (set once, never refreshed — there
// is no uplink path for updates) and downloads tiles that changed against
// it. As the reference ages, nearly everything reads as changed (§3),
// which is exactly the failure mode Earth+'s constellation-wide refresh
// removes.
//
// The reference store is capacity-bounded like Earth+'s (the storage-sweep
// experiment compares both under the same budget): full-resolution
// references cost sat.RawBitsPerSample bits per sample, and because SatRoI
// has no uplink path, an evicted reference is gone for good — every later
// capture of that location falls back to a reference-free full download.
//
// SatRoI deliberately stays RAW — it takes no ref_compression knob (the
// registry rejects it). The asymmetry is the point of the comparison:
// Earth+'s compressed on-board store leans on its ground loop — lossless
// re-encode on install, 16-bit-coherent mirrors, re-seeding over the
// uplink when the budget still overflows — and SatRoI has none of that
// machinery, so granting its fixed store the same compressed accounting
// would credit it with infrastructure the baseline [61] does not have.
//
// OnCapture is safe for concurrent calls on distinct locations (the
// sharded engine's contract): the reference store locks internally and is
// only mutated at bootstrap, lastGuar is a per-location slot touched only
// by its own location's ordered visit sequence, and the ground segment
// locks per location.
type SatRoI struct {
	env      *sim.Env
	gamma    float64
	opts     codec.Options
	detector cloud.Detector
	dropCov  float64
	tileFrac float64
	// guaranteeDays matches Earth+'s periodic full download so the two
	// reference-based systems share the same quality floor mechanism.
	guaranteeDays int
	ground        *station.Ground
	// refs holds the fixed full-res reference per location, bounded by the
	// configured storage budget (the model shares one store fleet-wide).
	refs     *sat.RefCache
	lastGuar []int
}

var _ sim.System = (*SatRoI)(nil)

// SatRoIConfig parameterises the baseline beyond γ and the codec.
type SatRoIConfig struct {
	// StorageBytes caps the on-board reference store (0 = the Table 1
	// default 360 GB, negative = unlimited), accounted at 16 bits per
	// full-resolution sample.
	StorageBytes int64
	// EvictPolicy is the store's eviction order ("lru" | "schedule";
	// empty = lru). The schedule policy predicts fleet-wide revisits.
	EvictPolicy string
}

// NewSatRoI builds the SatRoI baseline with the default (Table 1) storage
// model.
func NewSatRoI(env *sim.Env, gammaBPP float64, opts codec.Options) (*SatRoI, error) {
	return NewSatRoIWithConfig(env, gammaBPP, opts, SatRoIConfig{})
}

// NewSatRoIWithConfig builds the SatRoI baseline with an explicit storage
// model.
func NewSatRoIWithConfig(env *sim.Env, gammaBPP float64, opts codec.Options, sc SatRoIConfig) (*SatRoI, error) {
	bands := env.Scene.Bands()
	n := env.Scene.NumLocations()
	ground, err := station.NewGround(station.Config{
		Bands:       bands,
		Grid:        env.Scene.Grid(),
		Downsample:  4,
		CodecOpts:   opts,
		RefBPP:      1, // unused: SatRoI never uplinks references
		MaxRefCloud: -1,
	}, n)
	if err != nil {
		return nil, err
	}
	refs, err := sat.NewBoundedRefCache(sat.CacheConfig{
		BudgetBytes:   sat.ResolveBudget(sc.StorageBytes),
		BitsPerSample: sat.RawBitsPerSample,
		Policy:        sat.Policy(sc.EvictPolicy),
		NextVisit:     env.Orbit.NextVisitAny,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	lastGuar := make([]int, n)
	for i := range lastGuar {
		lastGuar[i] = -1 << 30
	}
	return &SatRoI{
		env:           env,
		gamma:         gammaBPP,
		opts:          opts,
		detector:      cloud.DefaultCheap(bands),
		dropCov:       0.5,
		tileFrac:      0.5,
		guaranteeDays: 30,
		ground:        ground,
		refs:          refs,
		lastGuar:      lastGuar,
	}, nil
}

// StorageStats reports the reference store's capacity evictions and
// lookup misses.
func (s *SatRoI) StorageStats() (evictions, misses int64) { return s.refs.Stats() }

// ResidentRefs reports the store's resident reference count and accounted
// footprint, for the storage sweep's residency series.
func (s *SatRoI) ResidentRefs() (locations int, bytes int64) {
	return s.refs.Len(), s.refs.FootprintBytes()
}

// Name implements sim.System.
func (s *SatRoI) Name() string { return "SatRoI" }

// Bootstrap implements sim.System: the bootstrap capture becomes the fixed
// on-board reference. With a bound store the install may evict other
// references — there is no uplink to re-seed them, so they stay gone.
func (s *SatRoI) Bootstrap(cap *scene.Capture) error {
	if err := s.ground.SeedBootstrap(cap.Loc, cap.Day, cap.Truth, nil); err != nil {
		return err
	}
	s.refs.Put(cap.Loc, cap.Truth.Clone(), cap.Day)
	s.lastGuar[cap.Loc] = cap.Day
	return nil
}

// OnCapture implements sim.System: cheap cloud removal, illumination
// alignment and full-resolution change detection against the fixed
// reference.
func (s *SatRoI) OnCapture(cap *scene.Capture) (sim.Outcome, error) {
	grid := s.env.Scene.Grid()
	out := sim.Outcome{TotalTiles: grid.NumTiles(), RefAge: -1}
	var ref *raster.Image
	if lr := s.refs.Visit(cap.Loc, cap.Day); lr != nil {
		ref = lr.Image
		out.RefAge = cap.Day - lr.Day
	} else {
		out.RefMiss = true
	}

	tCloud := time.Now()
	mask := s.detector.Detect(cap.Image)
	out.CloudSec = time.Since(tCloud).Seconds()
	if mask.Coverage() > s.dropCov {
		out.Dropped = true
		return out, nil
	}
	cloudTiles := mask.TileMask(grid, s.tileFrac)
	nonCloud := cloudTiles.Clone()
	nonCloud.Invert()

	work := cap.Image.Clone()
	roi := make([]*raster.TileMask, len(s.env.Scene.Bands()))
	guaranteed := cap.Day-s.lastGuar[cap.Loc] >= s.guaranteeDays && mask.Coverage() <= 0.05
	tChange := time.Now()
	if ref == nil || guaranteed {
		for b := range roi {
			roi[b] = nonCloud
		}
		if guaranteed {
			s.lastGuar[cap.Loc] = cap.Day
			out.Guaranteed = true
		}
	} else {
		// Full-resolution detection: this is SatRoI's change-detection
		// cost in Fig 16 — no downsampling shortcut.
		clear := make([]bool, len(mask.Bits))
		for i, c := range mask.Bits {
			clear[i] = !c
		}
		det := change.Detector{Theta: change.FullResThreshold}
		for b := range roi {
			model, _ := illum.FitRobust(ref.Plane(b), work.Plane(b), clear, 2, 0.2)
			model.Normalize(work.Plane(b))
			roi[b] = det.DetectBand(ref, work, b, grid, cloudTiles)
		}
	}
	out.ChangeSec = time.Since(tChange).Seconds()

	tEnc := time.Now()
	frame, err := sat.EncodeROI(work, roi, s.gamma, s.opts)
	if err != nil {
		return sim.Outcome{}, err
	}
	out.EncodeSec = time.Since(tEnc).Seconds()
	lens, err := frame.PerBandLens()
	if err != nil {
		return sim.Outcome{}, err
	}
	var tileSum int
	out.PerBandBytes = make([]int64, len(lens))
	for b, n := range lens {
		out.PerBandBytes[b] = int64(n)
		out.DownBytes += int64(n)
		if roi[b] != nil {
			tileSum += roi[b].Count()
		}
	}
	out.DownTilesPerBand = float64(tileSum) / float64(len(roi))

	if err := s.ground.ApplyDownload(cap.Loc, cap.Day, frame, roi, nil); err != nil {
		return sim.Outcome{}, err
	}
	out.Recon = s.ground.Recon(cap.Loc)
	return out, nil
}

// OnDayEnd implements sim.System; SatRoI uses no uplink.
func (s *SatRoI) OnDayEnd(int) (int64, error) { return 0, nil }
