package baseline

import (
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/core"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

func sampledEnv() *sim.Env {
	return &sim.Env{
		Scene:    scene.New(scene.LargeConstellationSampled(scene.Quick)),
		Orbit:    orbit.Constellation{Satellites: 8, RevisitDays: 8},
		Downlink: link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
}

func TestKodanEndToEnd(t *testing.T) {
	env := sampledEnv()
	sys, err := NewKodan(env, 1.0, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Summarize(res, env.Downlink)
	if s.Captures == 0 || s.Captures == s.Dropped {
		t.Fatalf("captures=%d dropped=%d", s.Captures, s.Dropped)
	}
	// Kodan downloads every non-cloudy tile: on a sunny dataset that is
	// nearly everything, every time.
	if s.MeanTileFrac < 0.85 {
		t.Fatalf("Kodan tile fraction = %.2f, want ~1 on clear data", s.MeanTileFrac)
	}
	if s.MeanPSNR < 32 {
		t.Fatalf("Kodan PSNR = %.1f", s.MeanPSNR)
	}
	// Kodan pays for its accurate on-board detector every capture.
	for _, r := range res.Records {
		if !r.Dropped && r.CloudSec <= 0 {
			t.Fatal("Kodan cloud-detection timing missing")
		}
	}
}

func TestSatRoIEndToEnd(t *testing.T) {
	env := sampledEnv()
	sys, err := NewSatRoI(env, 1.0, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 0, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Summarize(res, env.Downlink)
	if s.Captures == 0 || s.Captures == s.Dropped {
		t.Fatalf("captures=%d dropped=%d", s.Captures, s.Dropped)
	}
	// The fixed reference only ages: its age must grow across the run.
	var first, last int
	for _, r := range res.Records {
		if r.RefAge >= 0 {
			if first == 0 {
				first = r.RefAge
			}
			last = r.RefAge
		}
	}
	if last <= first {
		t.Fatalf("SatRoI reference age did not grow: %d -> %d", first, last)
	}
	// Stale-reference quality degrades but stays usable (guaranteed
	// downloads give it a floor).
	if s.MeanPSNR < 24 {
		t.Fatalf("SatRoI PSNR = %.1f", s.MeanPSNR)
	}
}

// TestHeadlineComparison is the repository's core claim check (Fig 11's
// shape): at the same per-tile quality knob γ, Earth+ needs substantially
// less downlink than both baselines, without losing quality. Exact factors
// vary with the synthetic scene; the ordering and rough magnitude must not.
func TestHeadlineComparison(t *testing.T) {
	const gamma = 1.0
	days := [2]int{40, 100}

	run := func(name string, mk func(env *sim.Env) (sim.System, error)) sim.Summary {
		env := sampledEnv()
		sys, err := mk(env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, days[0], days[1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return sim.Summarize(res, env.Downlink)
	}

	earth := run("earth+", func(env *sim.Env) (sim.System, error) {
		cfg := core.DefaultConfig()
		cfg.GammaBPP = gamma
		return core.New(env, cfg)
	})
	kodan := run("kodan", func(env *sim.Env) (sim.System, error) {
		return NewKodan(env, gamma, codec.DefaultOptions())
	})
	satroi := run("satroi", func(env *sim.Env) (sim.System, error) {
		return NewSatRoI(env, gamma, codec.DefaultOptions())
	})

	t.Logf("Earth+: bytes=%.0f frac=%.2f psnr=%.1f", earth.MeanDownBytes, earth.MeanTileFrac, earth.MeanPSNR)
	t.Logf("Kodan : bytes=%.0f frac=%.2f psnr=%.1f", kodan.MeanDownBytes, kodan.MeanTileFrac, kodan.MeanPSNR)
	t.Logf("SatRoI: bytes=%.0f frac=%.2f psnr=%.1f", satroi.MeanDownBytes, satroi.MeanTileFrac, satroi.MeanPSNR)

	if earth.MeanDownBytes*1.5 > kodan.MeanDownBytes {
		t.Fatalf("Earth+ bytes %.0f not well below Kodan %.0f", earth.MeanDownBytes, kodan.MeanDownBytes)
	}
	if earth.MeanDownBytes*1.2 > satroi.MeanDownBytes {
		t.Fatalf("Earth+ bytes %.0f not below SatRoI %.0f", earth.MeanDownBytes, satroi.MeanDownBytes)
	}
	// At equal γ Kodan re-encodes every tile fresh each pass, so its PSNR
	// ceiling is higher; the paper's "no quality loss" claim is about the
	// matched-PSNR bandwidth trade-off (the Fig 11 sweep). Here we check
	// Earth+ holds a high absolute floor and crushes the stale-reference
	// baseline.
	if earth.MeanPSNR < 38 {
		t.Fatalf("Earth+ PSNR %.1f below the quality floor", earth.MeanPSNR)
	}
	if earth.MeanPSNR < satroi.MeanPSNR+5 {
		t.Fatalf("Earth+ PSNR %.1f should far exceed stale-reference SatRoI %.1f", earth.MeanPSNR, satroi.MeanPSNR)
	}
	if earth.MeanTileFrac > 0.5 {
		t.Fatalf("Earth+ downloads %.2f of tiles", earth.MeanTileFrac)
	}
}

// TestSatRoIStoreRateTiedToSharedConstant pins the drift hazard the
// storage model fixed: SatRoI's full-resolution store must account at the
// SAME raw rate as Earth+'s detection-resolution store — one shared
// constant, not an inlined 16. A one-location bootstrap's footprint is
// exactly samples * sat.RawBitsPerSample / 8, and the constant is the one
// core re-exports.
func TestSatRoIStoreRateTiedToSharedConstant(t *testing.T) {
	if core.RefStoreBitsPerSample != sat.RawBitsPerSample {
		t.Fatalf("core rate %d drifted from sat.RawBitsPerSample %d",
			core.RefStoreBitsPerSample, sat.RawBitsPerSample)
	}
	env := sampledEnv()
	s, err := NewSatRoI(env, 1.0, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cap := env.Scene.CaptureImage(0, 0, 0)
	defer env.Scene.ReleaseCapture(cap)
	if err := s.Bootstrap(cap); err != nil {
		t.Fatal(err)
	}
	_, got := s.ResidentRefs()
	samples := int64(cap.Truth.Width) * int64(cap.Truth.Height) * int64(cap.Truth.NumBands())
	want := (samples*sat.RawBitsPerSample + 7) / 8
	if got != want {
		t.Fatalf("one-reference footprint %d, want %d (raw rate %d bits/sample)",
			got, want, sat.RawBitsPerSample)
	}
}
