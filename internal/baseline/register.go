package baseline

import (
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// Registry names of the two comparison systems.
const (
	KodanName  = "kodan"
	SatRoIName = "satroi"
)

// The baselines self-register so they are constructed by name through the
// same code path as Earth+. Neither understands system-specific params;
// the registry rejects any that are passed.
func init() {
	registry.Register(KodanName, func(env *sim.Env, spec registry.Spec) (sim.System, error) {
		if err := registry.CheckParams(spec, KodanName); err != nil {
			return nil, err
		}
		return NewKodan(env, spec.GammaBPP, spec.Codec)
	})
	registry.Register(SatRoIName, func(env *sim.Env, spec registry.Spec) (sim.System, error) {
		if err := registry.CheckParams(spec, SatRoIName); err != nil {
			return nil, err
		}
		return NewSatRoI(env, spec.GammaBPP, spec.Codec)
	})
}
