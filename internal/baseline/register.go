package baseline

import (
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// Registry names of the two comparison systems.
const (
	KodanName  = "kodan"
	SatRoIName = "satroi"
)

// The baselines self-register so they are constructed by name through the
// same code path as Earth+. Kodan understands no system-specific params
// (it keeps no on-board reference state); SatRoI takes the shared storage
// knobs so the storage sweep can bound its full-resolution reference
// store. The registry rejects anything else.
func init() {
	registry.Register(KodanName, func(env *sim.Env, spec registry.Spec) (sim.System, error) {
		if err := registry.CheckParams(spec, KodanName); err != nil {
			return nil, err
		}
		if err := registry.CheckStrParams(spec, KodanName); err != nil {
			return nil, err
		}
		return NewKodan(env, spec.GammaBPP, spec.Codec)
	})
	registry.Register(SatRoIName, func(env *sim.Env, spec registry.Spec) (sim.System, error) {
		if err := registry.CheckParams(spec, SatRoIName, "storage_bytes"); err != nil {
			return nil, err
		}
		if err := registry.CheckStrParams(spec, SatRoIName, "evict_policy"); err != nil {
			return nil, err
		}
		var sc SatRoIConfig
		if v, ok := spec.StorageBytesParam(); ok {
			sc.StorageBytes = v
		}
		if v, ok := spec.StrParam("evict_policy"); ok {
			sc.EvictPolicy = v
		}
		return NewSatRoIWithConfig(env, spec.GammaBPP, spec.Codec, sc)
	})
}
