package experiments

import (
	"fmt"
	"io"
	"reflect"

	"earthplus/internal/constellation"
	"earthplus/internal/core"
	"earthplus/internal/metrics"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// The constellation sweep measures the ground-segment regime the paper's
// deployment numbers imply but its evaluation never models: a fleet large
// enough that ground stations become the contended resource. Each point
// flies a fleet over the single-location Planet-like dataset with N
// contended stations — each serving one satellite per contact window, each
// contact metered by a per-contact uplink budget — and records how quality,
// contention stalls, re-seed backlog and event time-to-usable-image move as
// the fleet outgrows the ground segment.

// constSweepSats are the swept fleet sizes.
var constSweepSats = []int{4, 16, 64}

// constSweepStations are the swept ground-station counts.
var constSweepStations = []int{1, 2, 4}

// constConfig is the dataset the constellation runs fly: the Planet-like
// single coastal location (Table 2's large-constellation regime), whose
// fast-changing terrain keeps per-satellite uplink demand alive.
func constConfig(sc Scale) scene.Config {
	cfg := scene.LargeConstellation(sc.Size)
	if sc.MaxLocations > 0 && sc.MaxLocations < len(cfg.Locations) {
		cfg.Locations = cfg.Locations[:sc.MaxLocations]
	}
	return cfg
}

// constSnapshotScale sizes the constellation sweep recorded in
// BENCH_sim.json: one location and a short evaluation window — a 64-sat
// fleet over one location already generates the contention the sweep
// measures, and anything larger would dominate the snapshot's runtime.
func constSnapshotScale() Scale {
	return Scale{
		Size:         scene.Quick,
		ProfileStart: 0,
		ProfileDays:  25,
		EvalStart:    40,
		EvalDays:     12,
		MaxLocations: 1,
	}
}

// constStatser is implemented by systems running the contended
// ground-station model (Earth+).
type constStatser interface {
	ConstellationStats() constellation.Stats
	ContactBudget() int64
	ContactLog() []sim.ContactRecord
}

// ConstPoint is one measured (fleet size, station count) cell.
type ConstPoint struct {
	Satellites int `json:"satellites"`
	Stations   int `json:"stations"`
	// MeanPSNR is quality over the evaluation window; under contention
	// satellites fly stale references longer, so it degrades with the
	// fleet/station ratio.
	MeanPSNR float64 `json:"mean_psnr"`
	// UpBytesPerDay is the fleet's uplink consumption; every byte moved
	// inside a booked contact window's meter.
	UpBytesPerDay float64 `json:"uplink_bytes_per_day"`
	// ContactBudgetBytes is the per-contact uplink budget the point ran
	// with (-1 = unlimited).
	ContactBudgetBytes int64 `json:"contact_budget_bytes"`
	// Contacts counts booked (station, window) slots over the run.
	Contacts int64 `json:"contacts"`
	// Stalls counts satellite-days with pending uplink work that won no
	// contact window.
	Stalls int64 `json:"contention_stalls"`
	// ReseedBacklog sums per-day fleet-wide pending re-seed locations;
	// MaxReseedBacklog is the worst single day.
	ReseedBacklog    int64 `json:"reseed_backlog"`
	MaxReseedBacklog int64 `json:"max_reseed_backlog"`
	// Events is the event workload's time-to-usable-image outcome.
	Events constellation.EventSummary `json:"events"`
}

// ConstSweepResult is the contended ground-station sweep.
type ConstSweepResult struct {
	// Sats and Stations are the swept axes.
	Sats     []int `json:"satellites"`
	Stations []int `json:"stations"`
	// ThresholdPSNR is the usable-image bar of the event workload.
	ThresholdPSNR float64      `json:"threshold_psnr"`
	Points        []ConstPoint `json:"points"`
}

// ConstellationSweep measures Earth+ under contended ground stations on
// the Planet-like dataset: fleet sizes x station counts, each with derived
// per-contact budgets, recording quality, contention and the event
// workload's time-to-usable-image.
func ConstellationSweep(sc Scale) (*ConstSweepResult, error) {
	cfg := constConfig(sc)
	theta := profiledTheta(sc, cfg, 4)

	res := &ConstSweepResult{
		Sats:          constSweepSats,
		Stations:      constSweepStations,
		ThresholdPSNR: constellation.DefaultUsablePSNR,
	}
	for _, sats := range constSweepSats {
		for _, stations := range constSweepStations {
			env := envFor(cfg, DenseOrbit(sats), defaultUplinkDivisor)
			spec := registry.Spec{
				GammaBPP: fig12Gamma,
				Theta:    theta,
				Params:   map[string]float64{"stations": float64(stations)},
			}
			sys, err := registry.New(core.SystemName, env, spec)
			if err != nil {
				return nil, fmt.Errorf("constellation sweep: %d sats / %d stations: %w", sats, stations, err)
			}
			tracker := constellation.NewEventTracker(env.Scene, sc.EvalStart, sc.EvalStart+sc.EvalDays, 0)
			env.Observer = tracker
			acc := sim.NewAccumulator()
			r, err := runSystemStream(sc, env, sys, acc.Add)
			if err != nil {
				return nil, fmt.Errorf("constellation sweep: %d sats / %d stations: %w", sats, stations, err)
			}
			cs, ok := sys.(constStatser)
			if !ok {
				return nil, fmt.Errorf("constellation sweep: system does not report constellation stats")
			}
			// Every contact's consumption must respect its meter: a byte
			// over the per-contact budget would mean the packer leaked
			// around the contact accounting.
			budget := cs.ContactBudget()
			contacts := cs.ContactLog()
			if len(contacts) == 0 {
				return nil, fmt.Errorf("constellation sweep: %d sats / %d stations: no contacts booked", sats, stations)
			}
			for _, ct := range contacts {
				if budget > 0 && ct.Bytes > budget {
					return nil, fmt.Errorf("constellation sweep: %d sats / %d stations: contact (sat %d, station %d, day %d) moved %d bytes over the %d-byte budget",
						sats, stations, ct.Sat, ct.Station, ct.Day, ct.Bytes, budget)
				}
			}
			sum := acc.Summary(r, dovesDownlink())
			st := cs.ConstellationStats()
			res.Points = append(res.Points, ConstPoint{
				Satellites:         sats,
				Stations:           stations,
				MeanPSNR:           sum.MeanPSNR,
				UpBytesPerDay:      sum.MeanUpBytesPerDay,
				ContactBudgetBytes: budget,
				Contacts:           st.Contacts,
				Stalls:             st.Stalls,
				ReseedBacklog:      st.ReseedBacklog,
				MaxReseedBacklog:   st.MaxReseedBacklog,
				Events:             tracker.Summary(),
			})
		}
	}
	return res, nil
}

// constDeterminismCheck runs a contended 16-satellite / 2-station Earth+
// configuration at each worker count and reports whether every run is
// identical to the serial one — records, per-day uplink bytes AND the
// contact log — and whether station contention actually fired (an
// uncontended run would prove nothing). The scheduler runs on the
// sequential day-end barrier, so the worker count must not change a single
// booking.
func constDeterminismCheck(sc Scale, workers []int) (deterministic, contended bool, err error) {
	run := func(w int) ([]sim.Record, map[int]int64, []sim.ContactRecord, bool, error) {
		cfg := constConfig(sc)
		env := envFor(cfg, DenseOrbit(16), defaultUplinkDivisor)
		env.Parallelism = w
		spec := registry.Spec{
			GammaBPP: fig12Gamma,
			Params:   map[string]float64{"stations": 2},
		}
		sys, err := registry.New(core.SystemName, env, spec)
		if err != nil {
			return nil, nil, nil, false, err
		}
		var recs []sim.Record
		r, err := runSystemStream(sc, env, sys, func(rec *sim.Record) { recs = append(recs, *rec) })
		if err != nil {
			return nil, nil, nil, false, err
		}
		cs := sys.(constStatser)
		return recs, r.UpBytesByDay, cs.ContactLog(), cs.ConstellationStats().Stalls > 0, nil
	}
	serialRecs, serialUp, serialContacts, serialContended, err := run(1)
	if err != nil {
		return false, false, err
	}
	deterministic, contended = true, serialContended
	for _, w := range workers {
		if w <= 1 {
			continue
		}
		recs, up, contacts, fired, err := run(w)
		if err != nil {
			return false, false, err
		}
		if !sim.RecordsEqualIgnoringTimings(serialRecs, recs) ||
			!reflect.DeepEqual(serialUp, up) ||
			!reflect.DeepEqual(serialContacts, contacts) {
			deterministic = false
		}
		contended = contended && fired
	}
	return deterministic, contended, nil
}

// ID implements Result.
func (r *ConstSweepResult) ID() string { return "Constellation contention sweep" }

// Render implements Result.
func (r *ConstSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "contended ground stations (one satellite per contact window; usable-image bar %.1f dB)\n", r.ThresholdPSNR)
	rows := [][]string{{"sats", "stations", "PSNR", "uplink B/day", "contact B",
		"contacts", "stalls", "reseed backlog", "max backlog", "events", "usable", "mean TTUI", "max TTUI"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Satellites),
			fmt.Sprintf("%d", p.Stations),
			fmt.Sprintf("%.1f", p.MeanPSNR),
			fmt.Sprintf("%.0f", p.UpBytesPerDay),
			fmt.Sprintf("%d", p.ContactBudgetBytes),
			fmt.Sprintf("%d", p.Contacts),
			fmt.Sprintf("%d", p.Stalls),
			fmt.Sprintf("%d", p.ReseedBacklog),
			fmt.Sprintf("%d", p.MaxReseedBacklog),
			fmt.Sprintf("%d", p.Events.Tracked),
			fmt.Sprintf("%d", p.Events.Usable),
			fmt.Sprintf("%.1fd", p.Events.MeanDaysToUsable),
			fmt.Sprintf("%dd", p.Events.MaxDaysToUsable),
		})
	}
	metrics.Table(w, rows)
	fmt.Fprintln(w, "(TTUI = time-to-usable-image: days from event onset to the first downlinked")
	fmt.Fprintln(w, " frame scoring the usable bar over the event's tiles; stalls count")
	fmt.Fprintln(w, " satellite-days whose pending uplink work won no contact window)")
	return nil
}
