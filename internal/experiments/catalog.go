package experiments

// Job is one runnable evaluation artefact: a stable key (what
// `earthplus-bench -only` matches) and the function that regenerates it.
type Job struct {
	Key string
	Run func() (Result, error)
}

// Catalog lists every regenerable table, figure, ablation and performance
// snapshot at the given scale, in render order. benchJSON and
// simBenchJSON name the files the two perf snapshots write (empty =
// don't write). cmd/earthplus-bench and the public API iterate this
// instead of hand-rolling the job table.
func Catalog(sc Scale, benchJSON, simBenchJSON string) []Job {
	return []Job{
		{"table1", func() (Result, error) { return Table1(), nil }},
		{"table2", func() (Result, error) { return Table2(sc), nil }},
		{"fig4", func() (Result, error) { return Fig4(sc), nil }},
		{"fig5", func() (Result, error) { return Fig5(sc), nil }},
		{"fig8", func() (Result, error) { return Fig8(sc), nil }},
		{"fig11a", func() (Result, error) { return Fig11(sc, RichContent) }},
		{"fig11b", func() (Result, error) { return Fig11(sc, PlanetSampled) }},
		{"fig12", func() (Result, error) { return Fig12(sc) }},
		{"fig13", func() (Result, error) { return Fig13(sc) }},
		{"fig14", func() (Result, error) { return Fig14(sc) }},
		{"fig15", func() (Result, error) { return Fig15(sc) }},
		{"fig16", func() (Result, error) { return Fig16(sc) }},
		{"fig17", func() (Result, error) { return Fig17(sc) }},
		{"fig18", func() (Result, error) { return Fig18(sc) }},
		{"fig19", func() (Result, error) { return Fig19(sc) }},
		{"storagesweep", func() (Result, error) { return StorageSweep(sc) }},
		{"losssweep", func() (Result, error) { return LossSweep(sc) }},
		{"constsweep", func() (Result, error) { return ConstellationSweep(sc) }},
		{"ablation-theta", func() (Result, error) { return AblationTheta(sc) }},
		{"ablation-guarantee", func() (Result, error) { return AblationGuarantee(sc) }},
		{"ablation-reject", func() (Result, error) { return AblationReject(sc) }},
		{"codecbench", func() (Result, error) { return CodecBench(benchJSON) }},
		{"simscale", func() (Result, error) { return SimScaling() }},
		{"simbench", func() (Result, error) { return SimBench(simBenchJSON) }},
	}
}
