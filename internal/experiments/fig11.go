package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"earthplus/internal/metrics"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// Dataset selects which of the paper's two evaluation datasets an
// experiment runs on.
type Dataset int

const (
	// RichContent is the Sentinel-2-like 11-location dataset (Fig 11a).
	RichContent Dataset = iota
	// PlanetSampled is the Planet-like 48-satellite dataset, sampled
	// below 5% cloud coverage as in the paper (Fig 11b).
	PlanetSampled
)

// String names the dataset.
func (d Dataset) String() string {
	if d == PlanetSampled {
		return "large-constellation (Planet-like)"
	}
	return "rich-content (Sentinel-2-like)"
}

// TradeoffPoint is one (bandwidth, quality) sample of a system's curve.
type TradeoffPoint struct {
	Gamma        float64
	DownlinkMbps float64
	PSNR         float64
}

// Fig11Result is the PSNR versus required-downlink trade-off (paper
// Fig 11a/11b).
type Fig11Result struct {
	Dataset Dataset
	Curves  map[string][]TradeoffPoint
	// SavingRange is Earth+'s downlink saving versus the strongest
	// baseline at matched PSNR, across the γ sweep (min and max factor).
	SavingMin, SavingMax float64
}

// Fig11 sweeps γ for Earth+, Kodan and SatRoI on the chosen dataset and
// records each system's bandwidth/PSNR curve.
func Fig11(sc Scale, ds Dataset) (*Fig11Result, error) {
	mkEnv, theta := datasetEnv(sc, ds)
	res := &Fig11Result{Dataset: ds, Curves: map[string][]TradeoffPoint{}}
	down := dovesDownlink()
	for _, gamma := range sc.GammaSweep {
		// Stream each system's records straight into an accumulator: the
		// sweep never retains a record set.
		accs := map[string]*sim.Accumulator{}
		runs, err := threeSystemsStream(sc, mkEnv, theta, gamma, func(name string) func(*sim.Record) {
			a := sim.NewAccumulator()
			accs[name] = a
			return a.Add
		})
		if err != nil {
			return nil, err
		}
		for _, name := range sortedKeys(runs) {
			s := accs[name].Summary(runs[name], down)
			res.Curves[name] = append(res.Curves[name], TradeoffPoint{
				Gamma:        gamma,
				DownlinkMbps: s.RequiredDownlinkBps / 1e6,
				PSNR:         s.MeanPSNR,
			})
		}
	}
	for _, name := range sortedKeys(res.Curves) {
		pts := res.Curves[name]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Gamma < pts[j].Gamma })
		res.Curves[name] = pts
	}
	res.SavingMin, res.SavingMax = savingRange(res.Curves)
	return res, nil
}

// datasetEnv returns an environment factory and the profiled θ for a
// dataset.
func datasetEnv(sc Scale, ds Dataset) (func() *sim.Env, float64) {
	switch ds {
	case PlanetSampled:
		cfg := scene.LargeConstellationSampled(sc.Size)
		theta := profiledTheta(sc, cfg, 4)
		return func() *sim.Env {
			return envFor(cfg, planetOrbit(48), defaultUplinkDivisor)
		}, theta
	default:
		cfg := richConfig(sc)
		theta := profiledTheta(sc, cfg, 4)
		return func() *sim.Env {
			return envFor(cfg, richOrbit(), defaultUplinkDivisor)
		}, theta
	}
}

// bandwidthAtPSNR linearly interpolates a system's bandwidth at the given
// PSNR. Outside the curve's achievable PSNR range it returns NaN — a
// baseline that never reaches (or never drops to) a quality level offers
// no valid comparison there.
func bandwidthAtPSNR(curve []TradeoffPoint, psnr float64) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	pts := append([]TradeoffPoint(nil), curve...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].PSNR < pts[j].PSNR })
	if psnr < pts[0].PSNR || psnr > pts[len(pts)-1].PSNR {
		return math.NaN()
	}
	for i := 1; i < len(pts); i++ {
		if psnr <= pts[i].PSNR {
			a, b := pts[i-1], pts[i]
			if b.PSNR == a.PSNR {
				return math.Min(a.DownlinkMbps, b.DownlinkMbps)
			}
			t := (psnr - a.PSNR) / (b.PSNR - a.PSNR)
			return a.DownlinkMbps + t*(b.DownlinkMbps-a.DownlinkMbps)
		}
	}
	return pts[0].DownlinkMbps
}

// savingRange computes Earth+'s matched-PSNR downlink saving: for each
// Earth+ sweep point, the interpolated bandwidth of the cheapest baseline
// at the same PSNR divided by Earth+'s bandwidth. Earth+ points outside
// every baseline's achievable quality range are skipped.
func savingRange(curves map[string][]TradeoffPoint) (lo, hi float64) {
	earth := curves["Earth+"]
	lo, hi = math.Inf(1), 0
	for _, p := range earth {
		best := math.Inf(1)
		//lint:deterministic min-reduction over baselines is iteration-order-independent
		for name, curve := range curves {
			if name == "Earth+" {
				continue
			}
			if bw := bandwidthAtPSNR(curve, p.PSNR); !math.IsNaN(bw) && bw < best {
				best = bw
			}
		}
		if math.IsInf(best, 1) || p.DownlinkMbps <= 0 {
			continue
		}
		f := best / p.DownlinkMbps
		lo = math.Min(lo, f)
		hi = math.Max(hi, f)
	}
	if math.IsInf(lo, 1) {
		lo, hi = math.NaN(), math.NaN()
	}
	return lo, hi
}

// ID implements Result.
func (r *Fig11Result) ID() string {
	if r.Dataset == PlanetSampled {
		return "Figure 11b"
	}
	return "Figure 11a"
}

// Render implements Result.
func (r *Fig11Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "dataset: %s\n", r.Dataset)
	rows := [][]string{{"system", "gamma", "downlink", "PSNR (dB)"}}
	for _, name := range []string{"Earth+", "Kodan", "SatRoI"} {
		for _, p := range r.Curves[name] {
			bw := fmt.Sprintf("%.2f Mbps", p.DownlinkMbps)
			if p.DownlinkMbps < 0.001 {
				bw = fmt.Sprintf("%.1f bps", p.DownlinkMbps*1e6)
			} else if p.DownlinkMbps < 1 {
				bw = fmt.Sprintf("%.2f kbps", p.DownlinkMbps*1e3)
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.2f", p.Gamma),
				bw,
				fmt.Sprintf("%.1f", p.PSNR),
			})
		}
	}
	metrics.Table(w, rows)
	fmt.Fprintf(w, "Earth+ downlink saving at matched PSNR: %.1fx - %.1fx", r.SavingMin, r.SavingMax)
	if r.Dataset == PlanetSampled {
		fmt.Fprintln(w, " (paper Fig 11b: 2.8-3.3x)")
	} else {
		fmt.Fprintln(w, " (paper Fig 11a: 1.3-2.0x)")
	}
	if r.SavingMin < 1 {
		fmt.Fprintln(w, "note: reference-based encoding has a quality ceiling set by archive staleness;")
		fmt.Fprintln(w, " above it the factor drops below 1 because only the baselines can keep buying")
		fmt.Fprintln(w, " PSNR with more bits (the flat top of Earth+'s curve). The paper's operating")
		fmt.Fprintln(w, " points sit below that knee, where the saving holds.")
	}
	return nil
}
