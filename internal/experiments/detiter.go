package experiments

import "sort"

// sortedKeys returns m's keys in ascending order. Experiment aggregations
// iterate string-keyed maps through this helper so rendered tables and
// figure series come out byte-identical on every run (maporder enforces
// it across the package).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
