package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/noise"
)

// CodecBench snapshots the codec hot path's throughput so the perf
// trajectory is tracked across PRs: every experiment in the reproduction
// funnels through EncodePlane/DecodePlane, making these numbers the
// binding constraint on whole-constellation simulation time (and a proxy
// for the paper's on-board compute envelope, §5). The snapshot is written
// as JSON (BENCH_codec.json by default) and rendered as a table.

// CodecBenchEntry is one measured codec operation.
type CodecBenchEntry struct {
	Name        string  `json:"name"`
	Size        int     `json:"size"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// CodecBenchResult is the full snapshot.
type CodecBenchResult struct {
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Parallelism int               `json:"codec_parallelism"`
	Entries     []CodecBenchEntry `json:"entries"`
	path        string
}

// ID implements Result.
func (r *CodecBenchResult) ID() string { return "Codec perf snapshot" }

// Render implements Result.
func (r *CodecBenchResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "%-22s %12s %10s %12s %8s\n", "op", "ns/op", "MB/s", "B/op", "allocs")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-22s %12d %10.1f %12d %8d\n",
			e.Name, e.NsPerOp, e.MBPerSec, e.BytesPerOp, e.AllocsPerOp)
	}
	if r.path != "" {
		fmt.Fprintf(w, "snapshot written to %s\n", r.path)
	}
	return nil
}

// benchPlane builds the same natural-ish content the codec unit benchmarks
// use.
func benchPlane(seed uint64, w, h int) []float32 {
	p := make([]float32, w*h)
	noise.New(seed).FillFBM(p, w, h, 6, 4)
	return p
}

// CodecBench measures encode/decode at 64², 256² and 512² (γ=0.5 bpp) and,
// when outPath is non-empty, writes the JSON snapshot there.
func CodecBench(outPath string) (*CodecBenchResult, error) {
	res := &CodecBenchResult{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: codec.Parallelism,
		path:        outPath,
	}
	for _, size := range []int{64, 256, 512} {
		size := size
		plane := benchPlane(11, size, size)
		opt := codec.DefaultOptions()
		opt.BudgetBytes = codec.BudgetForBPP(0.5, size, size)
		data, err := codec.EncodePlane(plane, size, size, opt)
		if err != nil {
			return nil, fmt.Errorf("codecbench: encode %d: %w", size, err)
		}
		if _, _, _, err := codec.DecodePlane(data, 0); err != nil {
			return nil, fmt.Errorf("codecbench: decode %d: %w", size, err)
		}
		raw := int64(size) * int64(size) * 4

		encRes := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(raw)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodePlane(plane, size, size, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Entries = append(res.Entries, entryFrom(fmt.Sprintf("EncodePlane%d", size), size, raw, encRes))

		decRes := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(raw)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := codec.DecodePlane(data, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Entries = append(res.Entries, entryFrom(fmt.Sprintf("DecodePlane%d", size), size, raw, decRes))

		// The tiled profile at the same budget, pinned to ONE worker so the
		// speedup over the monolithic rows above is algorithmic (per-tile
		// RLGR coding), not parallelism.
		topt := opt
		topt.Tiled = true
		topt.Parallelism = 1
		tdata, err := codec.EncodePlane(plane, size, size, topt)
		if err != nil {
			return nil, fmt.Errorf("codecbench: tiled encode %d: %w", size, err)
		}
		tencRes := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(raw)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.EncodePlane(plane, size, size, topt); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Entries = append(res.Entries, entryFrom(fmt.Sprintf("EncodeTiled%d", size), size, raw, tencRes))
		tdecRes := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(raw)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := codec.DecodePlane(tdata, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.Entries = append(res.Entries, entryFrom(fmt.Sprintf("DecodeTiled%d", size), size, raw, tdecRes))
	}

	// Full-quality encode at 256²: with no byte budget the monolithic
	// coder must code every bit plane, which is where the tiled profile's
	// RLGR fast path shows its real margin (the budgeted rows above let
	// the monolithic rate controller stop early). Both rows single-thread.
	{
		const size = 256
		plane := benchPlane(11, size, size)
		raw := int64(size) * int64(size) * 4
		for _, tiled := range []bool{false, true} {
			opt := codec.DefaultOptions()
			opt.Tiled = tiled
			opt.Parallelism = 1
			name := "EncodeFull256"
			if tiled {
				name = "EncodeTiledFull256"
			}
			fullRes := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(raw)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := codec.EncodePlane(plane, size, size, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			res.Entries = append(res.Entries, entryFrom(name, size, raw, fullRes))
		}
	}

	// Region decode of one centred 64x64 rectangle at growing plane sizes:
	// on the tiled profile latency tracks the tiles touched (flat in the
	// plane size), while the monolithic profile pays a full decode plus
	// crop — the gap is the point of the tile index.
	for _, size := range []int{256, 1024} {
		size := size
		plane := benchPlane(13, size, size)
		raw := int64(64) * 64 * 4
		rx := size/2 - 32
		for _, tiled := range []bool{true, false} {
			opt := codec.DefaultOptions()
			opt.BudgetBytes = codec.BudgetForBPP(0.5, size, size)
			opt.Tiled = tiled
			opt.Parallelism = 1
			data, err := codec.EncodePlane(plane, size, size, opt)
			if err != nil {
				return nil, fmt.Errorf("codecbench: region encode %d: %w", size, err)
			}
			name := fmt.Sprintf("RegionMono64@%d", size)
			if tiled {
				name = fmt.Sprintf("RegionTiled64@%d", size)
			}
			regRes := testing.Benchmark(func(b *testing.B) {
				b.SetBytes(raw)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := codec.DecodeRegion(data, rx, rx, 64, 64); err != nil {
						b.Fatal(err)
					}
				}
			})
			res.Entries = append(res.Entries, entryFrom(name, size, raw, regRes))
		}
	}
	if outPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("codecbench: writing snapshot: %w", err)
		}
	}
	return res, nil
}

func entryFrom(name string, size int, raw int64, br testing.BenchmarkResult) CodecBenchEntry {
	ns := br.NsPerOp()
	mbps := 0.0
	if ns > 0 {
		mbps = float64(raw) / (float64(ns) / 1e9) / 1e6
	}
	return CodecBenchEntry{
		Name:        name,
		Size:        size,
		NsPerOp:     ns,
		MBPerSec:    mbps,
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
}
