package experiments

import (
	"earthplus/internal/change"
	"earthplus/internal/codec"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// ProfileThetaOnScene calibrates the change-detection threshold θ exactly
// the way the paper does (§5): profile one location's previous-year data,
// choosing the largest θ whose miss rate stays under targetMiss. The
// profiling pairs replicate the operational pipeline: the reference side is
// downsampled AND passed through the uplink codec, so θ lands above the
// codec-noise floor the satellite will actually see.
func ProfileThetaOnScene(s *scene.Scene, loc, startDay, endDay, downsample int, targetMiss, fallback float64) float64 {
	grid := s.Grid()
	gLow, err := grid.Scaled(downsample)
	if err != nil {
		return fallback
	}
	band := groundBand(s)
	refBPP := 6.0
	var samples []change.Sample
	for d := startDay; d+8 < endDay; d += 8 {
		ref := s.GroundTruth(loc, d)
		refLow, err := ref.Downsample(downsample)
		if err != nil {
			return fallback
		}
		// Emulate the uplink codec round trip the on-board reference
		// actually experiences.
		opts := codec.DefaultOptions()
		opts.BudgetBytes = int(refBPP * float64(refLow.Width*refLow.Height) / 8)
		data, err := codec.EncodePlane(refLow.Plane(band), refLow.Width, refLow.Height, opts)
		if err != nil {
			return fallback
		}
		plane, _, _, err := codec.DecodePlane(data, 0)
		if err != nil {
			return fallback
		}
		copy(refLow.Plane(band), plane)
		for _, gap := range []int{3, 5} {
			cap := s.GroundTruth(loc, d+gap)
			capLow, err := cap.Downsample(downsample)
			if err != nil {
				return fallback
			}
			lowDiffs := raster.TileMeanAbsDiff(refLow, capLow, band, gLow)
			truly := change.TrueChanges(ref, cap, band, grid, nil)
			for t := range lowDiffs {
				samples = append(samples, change.Sample{LowResDiff: lowDiffs[t], Changed: truly.Set[t]})
			}
		}
	}
	return change.ProfileTheta(samples, targetMiss, fallback)
}

// groundBand returns the index of the first ground-kind band (B2 for
// Sentinel-2, R for Planet).
func groundBand(s *scene.Scene) int {
	if g := raster.GroundBands(s.Bands()); len(g) > 0 {
		return g[0]
	}
	return 0
}
