package experiments

import (
	"fmt"
	"io"
	"time"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/illum"
	"earthplus/internal/metrics"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// paperRefDownsample is the per-axis reference downsampling at Doves
// image scale (4000 -> ~78, giving the paper's 2601x ratio, §4.3). The
// storage projection uses it because Fig 15 is a spec-scale estimate.
const paperRefDownsample = 51

// Fig15Result is the on-board storage breakdown (paper Fig 15: Kodan
// 255 GB, SatRoI 30 GB, Earth+ 24 GB).
type Fig15Result struct {
	Systems  []string
	Captured []float64 // GB
	Refs     []float64 // GB
}

// Fig15 projects on-board storage at Doves scale from fractions measured
// in simulation. The model (documented in EXPERIMENTS.md):
//
//   - every system retains captured data for two contact intervals
//     (Appendix A);
//   - Kodan stores the kept (non-dropped, cloud-free) areas raw, since its
//     per-application products are produced at downlink time;
//   - the reference-based systems store only their changed areas, already
//     encoded at γ bits per pixel;
//   - SatRoI keeps full-resolution references for the areas it is about
//     to photograph (one swath interval);
//   - Earth+ keeps references for every location of a revisit cycle
//     (Appendix A's 160a km²) but downsampled at the paper's 2601x.
func Fig15(sc Scale) (*Fig15Result, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	accs := map[string]*sim.Accumulator{}
	runs, err := threeSystemsStream(sc, mkEnv, theta, fig12Gamma, func(name string) func(*sim.Record) {
		a := sim.NewAccumulator()
		accs[name] = a
		return a.Add
	})
	if err != nil {
		return nil, err
	}
	down := dovesDownlink()
	spec := orbit.DovesSpec()

	imageAreaKm2 := float64(spec.ImageWidth) * spec.GSDMeters / 1000 *
		(float64(spec.ImageHeight) * spec.GSDMeters / 1000)
	const earthSurfaceKm2 = 510.1e6
	imagesPerDay := earthSurfaceKm2 / float64(spec.RevisitDays) / imageAreaKm2
	rawHeldGB := 2 * imagesPerDay / float64(spec.ContactsPerDay) *
		float64(spec.RawImageBytes) / float64(1<<30)
	aKm2 := spec.DownloadableKm2PerContact()
	encRatio := fig12Gamma / 16 // γ bits per pixel vs 16-bit raw samples

	stats := func(name string) (keptFrac, tileFrac float64) {
		s := accs[name].Summary(runs[name], down)
		kept := 1 - float64(s.Dropped)/float64(s.Captures)
		return kept, s.MeanTileFrac
	}

	res := &Fig15Result{}
	// Kodan: raw retention of kept clear area.
	kept, frac := stats("Kodan")
	res.Systems = append(res.Systems, "Kodan")
	res.Captured = append(res.Captured, rawHeldGB*kept*frac)
	res.Refs = append(res.Refs, 0)
	// SatRoI: encoded changed areas + raw full-res refs for one swath.
	kept, frac = stats("SatRoI")
	res.Systems = append(res.Systems, "SatRoI")
	res.Captured = append(res.Captured, rawHeldGB*kept*frac*encRatio)
	res.Refs = append(res.Refs, 2*aKm2*spec.MBPerKm2/1024)
	// Earth+: encoded changed areas + heavily downsampled refs for the
	// whole revisit cycle.
	kept, frac = stats("Earth+")
	res.Systems = append(res.Systems, "Earth+")
	res.Captured = append(res.Captured, rawHeldGB*kept*frac*encRatio)
	res.Refs = append(res.Refs,
		spec.RefLocationFactor*aKm2*spec.MBPerKm2/1024/float64(paperRefDownsample*paperRefDownsample))
	return res, nil
}

// ID implements Result.
func (r *Fig15Result) ID() string { return "Figure 15" }

// Render implements Result.
func (r *Fig15Result) Render(w io.Writer) error {
	rows := [][]string{{"system", "captured (GB)", "reference (GB)", "total (GB)"}}
	var totals []float64
	for i, name := range r.Systems {
		total := r.Captured[i] + r.Refs[i]
		totals = append(totals, total)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", r.Captured[i]),
			fmt.Sprintf("%.1f", r.Refs[i]),
			fmt.Sprintf("%.0f", total),
		})
	}
	metrics.Table(w, rows)
	metrics.Bar(w, "total on-board storage:", r.Systems, totals, "GB", 40)
	fmt.Fprintln(w, "(paper: Kodan 255 GB, SatRoI 30 GB, Earth+ 24 GB — Earth+ lowest, Kodan far above)")
	return nil
}

// Fig16Result is the per-image on-board runtime breakdown (paper Fig 16:
// Earth+ lowest; Kodan dominated by its expensive cloud detector).
type Fig16Result struct {
	Systems   []string
	CloudSec  []float64
	ChangeSec []float64
	EncodeSec []float64
}

// Fig16 measures this machine's component runtimes on a standard capture:
// the encode shared by all systems, the cheap versus accurate detectors,
// and change detection at full versus detection resolution.
func Fig16(sc Scale) (*Fig16Result, error) {
	cfg := scene.LargeConstellationSampled(sc.Size)
	s := scene.New(cfg)
	grid := s.Grid()
	cap := s.CaptureImage(0, sc.EvalStart, 0)
	defer s.ReleaseCapture(cap)
	ref := s.GroundTruth(0, sc.EvalStart-5)
	refLow, err := ref.Downsample(4)
	if err != nil {
		return nil, err
	}
	const reps = 3

	timeIt := func(f func() error) (float64, error) {
		var total time.Duration
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			total += time.Since(t0)
		}
		return total.Seconds() / reps, nil
	}

	// Shared γ encode over all non-cloudy tiles.
	all := raster.NewTileMask(grid)
	all.SetAll()
	roi := make([]*raster.TileMask, len(s.Bands()))
	for b := range roi {
		roi[b] = all
	}
	encodeSec, err := timeIt(func() error {
		_, err := sat.EncodeROI(cap.Image, roi, fig12Gamma, codec.DefaultOptions())
		return err
	})
	if err != nil {
		return nil, err
	}

	cheap := cloud.DefaultCheap(s.Bands())
	cheapSec, err := timeIt(func() error { cheap.Detect(cap.Image); return nil })
	if err != nil {
		return nil, err
	}
	accurate := cloud.DefaultTemporal(s.Bands())
	accSec, err := timeIt(func() error { accurate.DetectWithReference(cap.Image, ref); return nil })
	if err != nil {
		return nil, err
	}

	// Change detection at detection resolution (Earth+) vs full resolution
	// (SatRoI), both including the illumination fit.
	pipe := &sat.Pipeline{
		Bands: s.Bands(), Grid: grid, Downsample: 4,
		CloudDet: cheap, Theta: 0.008, DropCoverage: 1.1, CloudTileFrac: 0.25,
	}
	lowRef := &sat.LowResRef{Image: refLow, Day: 0}
	changeLowSec, err := timeIt(func() error {
		res, err := pipe.Process(cap.Image, lowRef)
		if err != nil {
			return err
		}
		_ = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The pipeline includes cheap detection; subtract it so the change
	// column isolates detection work.
	changeLowSec -= cheapSec
	if changeLowSec < 0 {
		changeLowSec = 0
	}
	// SatRoI's full-resolution path: per-band robust illumination fit
	// against the full-res reference, then full-res tile differencing.
	work := cap.Image.Clone()
	changeFullSec, err := timeIt(func() error {
		for b := range s.Bands() {
			model, _ := illum.FitRobust(ref.Plane(b), work.Plane(b), nil, 2, 0.2)
			model.Normalize(work.Plane(b))
			raster.TileMeanAbsDiff(ref, work, b, grid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	return &Fig16Result{
		Systems:   []string{"Kodan", "SatRoI", "Earth+"},
		CloudSec:  []float64{accSec, cheapSec, cheapSec},
		ChangeSec: []float64{0, changeFullSec, changeLowSec},
		EncodeSec: []float64{encodeSec, encodeSec, encodeSec},
	}, nil
}

// ID implements Result.
func (r *Fig16Result) ID() string { return "Figure 16" }

// Render implements Result.
func (r *Fig16Result) Render(w io.Writer) error {
	rows := [][]string{{"system", "cloud (ms)", "change (ms)", "encode (ms)", "total (ms)"}}
	var totals []float64
	for i, name := range r.Systems {
		total := r.CloudSec[i] + r.ChangeSec[i] + r.EncodeSec[i]
		totals = append(totals, total*1e3)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", r.CloudSec[i]*1e3),
			fmt.Sprintf("%.1f", r.ChangeSec[i]*1e3),
			fmt.Sprintf("%.1f", r.EncodeSec[i]*1e3),
			fmt.Sprintf("%.1f", total*1e3),
		})
	}
	metrics.Table(w, rows)
	metrics.Bar(w, "runtime per image:", r.Systems, totals, "ms", 40)
	fmt.Fprintln(w, "(paper: Earth+ lowest; Kodan's accurate cloud detector costs ~3x the cheap one;")
	fmt.Fprintln(w, " absolute times are this machine's, only the ordering is comparable)")
	return nil
}
