package experiments

import (
	"strings"
	"testing"

	"earthplus/internal/baseline"
	"earthplus/internal/core"
)

// TestStorageSweepMonotoneAndExercised pins the sweep's contract: as the
// on-board budget shrinks, each reference-based system's compression
// ratio never increases, the smallest budget point actually evicts and
// misses (the fallback path runs), the unlimited point never misses, and
// Kodan's line is flat because it keeps no reference state.
func TestStorageSweepMonotoneAndExercised(t *testing.T) {
	res, err := StorageSweep(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 3 || len(res.Fracs) != len(storageBudgetFracs) {
		t.Fatalf("sweep shape: %d systems, %d fracs", len(res.Systems), len(res.Fracs))
	}
	series := map[string]StorageSystemSeries{}
	for _, s := range res.Systems {
		series[s.System] = s
	}
	for _, name := range []string{core.SystemName, baseline.SatRoIName} {
		s, ok := series[name]
		if !ok {
			t.Fatalf("sweep missing system %q", name)
		}
		for i := 1; i < len(s.Ratio); i++ {
			if s.Ratio[i] > s.Ratio[i-1]+1e-9 {
				t.Fatalf("%s: ratio increased as the budget shrank: %v", name, s.Ratio)
			}
		}
		if s.Misses[0] != 0 {
			t.Fatalf("%s: unlimited budget still missed %d lookups", name, s.Misses[0])
		}
		last := len(s.Ratio) - 1
		if s.Evictions[last] == 0 || s.Misses[last] == 0 {
			t.Fatalf("%s: smallest budget did not exercise eviction/miss: %d/%d",
				name, s.Evictions[last], s.Misses[last])
		}
		if s.Ratio[last] >= s.Ratio[0] {
			t.Fatalf("%s: ratio %v did not degrade under the smallest budget", name, s.Ratio)
		}
	}
	k := series[baseline.KodanName]
	for i := 1; i < len(k.Ratio); i++ {
		if k.Ratio[i] != k.Ratio[0] {
			t.Fatalf("Kodan line not flat: %v", k.Ratio)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "evictions") || res.ID() == "" {
		t.Fatalf("render missing eviction column:\n%s", sb.String())
	}
}
