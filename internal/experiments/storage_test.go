package experiments

import (
	"strings"
	"testing"

	"earthplus/internal/baseline"
	"earthplus/internal/core"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
)

// TestRefWorkingSetUsesResolvedRate pins the satellite-task regression:
// the working-set math must read the bits-per-sample off the RESOLVED
// cache configuration, not a hard-coded 16. At a non-16 rate the per-
// location footprint follows the configured rate exactly (ceil division
// included), and the zero value resolves to the shared raw constant.
func TestRefWorkingSetUsesResolvedRate(t *testing.T) {
	cfg := scene.Config{Width: 20, Height: 10, Bands: scene.RichContent(scene.Quick).Bands}
	cfg.Locations = scene.RichContent(scene.Quick).Locations[:3]
	samples := int64(20) * 10 * int64(len(cfg.Bands))

	got := refWorkingSet(cfg, 1, sat.CacheConfig{BitsPerSample: 12})
	want := 3 * ((samples*12 + 7) / 8)
	if got != want {
		t.Fatalf("12-bit working set %d, want %d", got, want)
	}
	// The zero config resolves to the shared raw rate — the same constant
	// core.RefStoreBitsPerSample and the SatRoI store alias.
	if sat.RawBitsPerSample != core.RefStoreBitsPerSample {
		t.Fatalf("rate constants drifted: sat %d vs core %d", sat.RawBitsPerSample, core.RefStoreBitsPerSample)
	}
	got = refWorkingSet(cfg, 1, sat.CacheConfig{})
	want = 3 * ((samples*sat.RawBitsPerSample + 7) / 8)
	if got != want {
		t.Fatalf("default-rate working set %d, want %d", got, want)
	}
	// And the Earth+ derivation matches what core's resolved config says,
	// not an independent constant.
	def := core.DefaultConfig()
	if earthRefWorkingSet(cfg) != refWorkingSet(cfg, def.RefDownsample, def.CacheConfig()) {
		t.Fatal("earthRefWorkingSet diverged from the resolved core CacheConfig derivation")
	}
}

// TestStorageSweepMonotoneAndExercised pins the sweep's contract: as the
// on-board budget shrinks, each reference-based system's compression
// ratio never increases, the smallest budget point actually evicts and
// misses (the fallback path runs), the unlimited point never misses, and
// Kodan's line is flat because it keeps no reference state. The
// ref_compression=on Earth+ series runs at the SAME absolute budgets as
// the raw one and must be no worse at every bounded point — and strictly
// better (more resident references, or fewer evictions/misses) where the
// raw store is under pressure.
func TestStorageSweepMonotoneAndExercised(t *testing.T) {
	res, err := StorageSweep(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 4 || len(res.Fracs) != len(storageBudgetFracs) {
		t.Fatalf("sweep shape: %d systems, %d fracs", len(res.Systems), len(res.Fracs))
	}
	series := map[string]StorageSystemSeries{}
	for _, s := range res.Systems {
		series[s.label()] = s
	}
	compLabel := core.SystemName + " (ref_compression=on)"
	for _, name := range []string{core.SystemName, compLabel, baseline.SatRoIName} {
		s, ok := series[name]
		if !ok {
			t.Fatalf("sweep missing system %q", name)
		}
		for i := 1; i < len(s.Ratio); i++ {
			if s.Ratio[i] > s.Ratio[i-1]+1e-9 {
				t.Fatalf("%s: ratio increased as the budget shrank: %v", name, s.Ratio)
			}
		}
		if s.Misses[0] != 0 {
			t.Fatalf("%s: unlimited budget still missed %d lookups", name, s.Misses[0])
		}
		if len(s.Resident) != len(s.Ratio) || len(s.FootprintBytes) != len(s.Ratio) {
			t.Fatalf("%s: residency series incomplete", name)
		}
		if s.Resident[0] == 0 || s.FootprintBytes[0] <= 0 {
			t.Fatalf("%s: unlimited run holds no references (%d, %d bytes)", name, s.Resident[0], s.FootprintBytes[0])
		}
		for i, fp := range s.FootprintBytes {
			// Budgets are per satellite; residency is a fleet sum.
			if b := s.BudgetBytes[i] * int64(res.Satellites); s.BudgetBytes[i] > 0 && fp > b {
				t.Fatalf("%s: fleet footprint %d exceeds fleet capacity %d at point %d", name, fp, b, i)
			}
		}
	}
	raw, comp := series[core.SystemName], series[compLabel]
	// The raw store must come under pressure somewhere for the comparison
	// to mean anything.
	last := len(raw.Ratio) - 1
	if raw.Evictions[last] == 0 || raw.Misses[last] == 0 {
		t.Fatalf("raw Earth+: smallest budget did not exercise eviction/miss: %d/%d",
			raw.Evictions[last], raw.Misses[last])
	}
	if raw.Ratio[last] >= raw.Ratio[0] {
		t.Fatalf("raw Earth+: ratio %v did not degrade under the smallest budget", raw.Ratio)
	}
	// Compressed storage achieves a measured rate well below the raw
	// 16 bits/sample...
	if comp.EffBitsPerSample <= 0 || comp.EffBitsPerSample >= float64(sat.RawBitsPerSample) {
		t.Fatalf("compressed measured rate %.2f bits/sample, want in (0, %d)", comp.EffBitsPerSample, sat.RawBitsPerSample)
	}
	// ...and at EQUAL budgets it is never worse and strictly better under
	// pressure: every bounded point keeps at least as many references
	// resident with no more evictions/misses, and wherever the raw store
	// evicted at all, the compressed one either holds strictly more
	// references or evicts/misses strictly less.
	pressured := 0
	for i := 1; i < len(raw.Ratio); i++ {
		if comp.BudgetBytes[i] != raw.BudgetBytes[i] {
			t.Fatalf("budget mismatch at point %d: %d vs %d", i, comp.BudgetBytes[i], raw.BudgetBytes[i])
		}
		if comp.Resident[i] < raw.Resident[i] || comp.Evictions[i] > raw.Evictions[i] || comp.Misses[i] > raw.Misses[i] {
			t.Fatalf("compressed store worse than raw at equal budget %d: resident %d vs %d, evictions %d vs %d, misses %d vs %d",
				raw.BudgetBytes[i], comp.Resident[i], raw.Resident[i], comp.Evictions[i], raw.Evictions[i], comp.Misses[i], raw.Misses[i])
		}
		if raw.Evictions[i] == 0 {
			continue // budget not binding for raw: equality is expected
		}
		pressured++
		if comp.Resident[i] <= raw.Resident[i] && comp.Evictions[i] >= raw.Evictions[i] && comp.Misses[i] >= raw.Misses[i] {
			t.Fatalf("compressed store not strictly better at pressured budget %d: resident %d vs %d, evictions %d vs %d, misses %d vs %d",
				raw.BudgetBytes[i], comp.Resident[i], raw.Resident[i], comp.Evictions[i], raw.Evictions[i], comp.Misses[i], raw.Misses[i])
		}
	}
	if pressured == 0 {
		t.Fatal("no sweep point put the raw store under pressure; the comparison proved nothing")
	}
	k := series[baseline.KodanName]
	for i := 1; i < len(k.Ratio); i++ {
		if k.Ratio[i] != k.Ratio[0] {
			t.Fatalf("Kodan line not flat: %v", k.Ratio)
		}
	}
	// The eviction-policy sweep records both policies for both bounded
	// systems at the same fixed budget.
	seen := map[string]bool{}
	for _, p := range res.PolicySweep {
		seen[p.System+"/"+p.Policy] = true
		if p.BudgetBytes <= 0 {
			t.Fatalf("policy sweep point %s/%s has no budget", p.System, p.Policy)
		}
	}
	for _, want := range []string{
		core.SystemName + "/lru", core.SystemName + "/schedule",
		baseline.SatRoIName + "/lru", baseline.SatRoIName + "/schedule",
	} {
		if !seen[want] {
			t.Fatalf("policy sweep missing %s (have %v)", want, seen)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "evictions") || !strings.Contains(out, "resident") ||
		!strings.Contains(out, "eviction-policy sweep") || res.ID() == "" {
		t.Fatalf("render missing columns:\n%s", out)
	}
}
