package experiments

import (
	"math"
	"strings"
	"testing"
)

// render exercises a Result's Render without caring about the text.
func render(t *testing.T, r Result) string {
	t.Helper()
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatalf("%s render: %v", r.ID(), err)
	}
	out := b.String()
	if len(out) == 0 {
		t.Fatalf("%s rendered nothing", r.ID())
	}
	return out
}

func TestTable1(t *testing.T) {
	r := Table1()
	out := render(t, r)
	for _, want := range []string{"250 kbps", "200 Mbps", "360 GB", "6600x4400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	r := Table2(Tiny())
	out := render(t, r)
	if !strings.Contains(out, "rich-content") || !strings.Contains(out, "large-constellation") {
		t.Fatalf("Table 2 output:\n%s", out)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("Table 2 rows = %d", len(r.Rows))
	}
}

func TestFig4ChangeGrowsWithAge(t *testing.T) {
	r := Fig4(Tiny())
	if len(r.Changed) != len(r.Ages) {
		t.Fatalf("lengths: %d vs %d", len(r.Changed), len(r.Ages))
	}
	for i := 1; i < len(r.Changed); i++ {
		if r.Changed[i] < r.Changed[i-1]-0.03 {
			t.Fatalf("changed fraction not growing: %v", r.Changed)
		}
	}
	last := r.Changed[len(r.Changed)-1]
	first := r.Changed[0]
	if last < 1.5*first {
		t.Fatalf("growth too flat: %v", r.Changed)
	}
	render(t, r)
}

func TestFig5ConstellationBeatsLocal(t *testing.T) {
	r := Fig5(Tiny())
	if len(r.LocalAges) == 0 || len(r.ConstellationAges) == 0 {
		t.Fatal("no age samples")
	}
	localMean := mean(r.LocalAges)
	consMean := mean(r.ConstellationAges)
	if consMean*2 > localMean {
		t.Fatalf("constellation-wide mean %.1f not far below local %.1f", consMean, localMean)
	}
	render(t, r)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFig8MissRateStaysModest(t *testing.T) {
	r := Fig8(Tiny())
	if len(r.Factors) < 2 {
		t.Fatalf("factors = %v", r.Factors)
	}
	if r.Factors[0] != 1 {
		t.Fatal("sweep must include factor 1")
	}
	// At full resolution, a 2x-changed budget should miss almost nothing.
	if r.Missed[0] > 0.05 {
		t.Fatalf("full-res miss rate %.3f", r.Missed[0])
	}
	// Even the deepest downsampling keeps the miss rate bounded (paper:
	// 1.7% at 2601x; tolerances widen at tiny scale).
	if r.Missed[len(r.Missed)-1] > 0.30 {
		t.Fatalf("deep-downsample miss rate %.3f", r.Missed[len(r.Missed)-1])
	}
	render(t, r)
}

func TestFig11PlanetShape(t *testing.T) {
	r, err := Fig11(Tiny(), PlanetSampled)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Earth+", "Kodan", "SatRoI"} {
		if len(r.Curves[name]) != len(Tiny().GammaSweep) {
			t.Fatalf("%s curve has %d points", name, len(r.Curves[name]))
		}
	}
	// Earth+ must sit left of Kodan: less bandwidth at every γ.
	for i := range r.Curves["Earth+"] {
		e, k := r.Curves["Earth+"][i], r.Curves["Kodan"][i]
		if e.DownlinkMbps >= k.DownlinkMbps {
			t.Fatalf("gamma %.2f: Earth+ %.2f Mbps >= Kodan %.2f", e.Gamma, e.DownlinkMbps, k.DownlinkMbps)
		}
	}
	if math.IsNaN(r.SavingMin) || r.SavingMax < 1.2 {
		t.Fatalf("saving range %.2f-%.2f", r.SavingMin, r.SavingMax)
	}
	render(t, r)
}

func TestFig12Distributions(t *testing.T) {
	r, err := Fig12(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Earth+", "Kodan", "SatRoI"} {
		if len(r.TileFrac[name]) == 0 || len(r.PSNR[name]) == 0 {
			t.Fatalf("%s has empty distributions", name)
		}
	}
	// Earth+'s median download fraction must undercut both baselines'.
	me := median(r.TileFrac["Earth+"])
	if me >= median(r.TileFrac["Kodan"]) || me >= median(r.TileFrac["SatRoI"]) {
		t.Fatalf("Earth+ median %.2f not lowest (K %.2f, S %.2f)",
			me, median(r.TileFrac["Kodan"]), median(r.TileFrac["SatRoI"]))
	}
	render(t, r)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestFig13SeriesPopulated(t *testing.T) {
	r, err := Fig13(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Earth+", "Kodan", "SatRoI"} {
		pts := r.Series[name]
		if len(pts) == 0 {
			t.Fatalf("%s series empty", name)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Day < pts[i-1].Day {
				t.Fatalf("%s series unsorted", name)
			}
		}
	}
	render(t, r)
}

func TestFig14SavingsComputed(t *testing.T) {
	r, err := Fig14(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Locations) != Tiny().MaxLocations {
		t.Fatalf("locations = %v", r.Locations)
	}
	if len(r.Bands) != 13 {
		t.Fatalf("bands = %d", len(r.Bands))
	}
	for i, sv := range r.LocSaving {
		if math.IsNaN(sv) || sv <= 0 {
			t.Fatalf("location %s saving = %v", r.Locations[i], sv)
		}
	}
	render(t, r)
}

func TestFig15StorageOrdering(t *testing.T) {
	r, err := Fig15(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := func(name string) float64 {
		for i, n := range r.Systems {
			if n == name {
				return r.Captured[i] + r.Refs[i]
			}
		}
		t.Fatalf("system %s missing", name)
		return 0
	}
	if !(total("Kodan") > total("SatRoI") && total("SatRoI") > total("Earth+")) {
		t.Fatalf("storage ordering broken: K=%.0f S=%.0f E=%.0f",
			total("Kodan"), total("SatRoI"), total("Earth+"))
	}
	// Earth+ must carry a non-zero but small reference share.
	for i, n := range r.Systems {
		if n == "Earth+" && (r.Refs[i] <= 0 || r.Refs[i] > r.Captured[i]+r.Refs[i]) {
			t.Fatalf("Earth+ reference share = %v", r.Refs[i])
		}
	}
	render(t, r)
}

func TestFig16RuntimeOrdering(t *testing.T) {
	r, err := Fig16(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]float64{}
	for i, n := range r.Systems {
		total[n] = r.CloudSec[i] + r.ChangeSec[i] + r.EncodeSec[i]
	}
	if total["Earth+"] >= total["Kodan"] {
		t.Fatalf("Earth+ %.4fs not cheaper than Kodan %.4fs", total["Earth+"], total["Kodan"])
	}
	if total["Earth+"] > total["SatRoI"] {
		t.Fatalf("Earth+ %.4fs above SatRoI %.4fs", total["Earth+"], total["SatRoI"])
	}
	// Kodan's cloud detection must dominate the cheap detector.
	if r.CloudSec[0] <= r.CloudSec[2] {
		t.Fatalf("accurate detector %.4fs not above cheap %.4fs", r.CloudSec[0], r.CloudSec[2])
	}
	render(t, r)
}

func TestFig17RatiosCompound(t *testing.T) {
	r, err := Fig17(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !(r.WithUpdates > r.WithDownsample && r.WithDownsample > r.Uncompressed) {
		t.Fatalf("ratios do not compound: %.1f %.1f %.1f",
			r.Uncompressed, r.WithDownsample, r.WithUpdates)
	}
	if r.WithUpdates < r.Required {
		t.Fatalf("achieved %.0fx below required %.0fx", r.WithUpdates, r.Required)
	}
	render(t, r)
}

func TestFig18MoreUplinkLessDownlink(t *testing.T) {
	r, err := Fig18(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(Tiny().UplinkDivisors) {
		t.Fatalf("points = %d", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.UplinkBytesPerDay <= first.UplinkBytesPerDay {
		t.Fatal("sweep not increasing in uplink")
	}
	if last.DownlinkMbps >= first.DownlinkMbps {
		t.Fatalf("more uplink did not reduce downlink: %.2f -> %.2f", first.DownlinkMbps, last.DownlinkMbps)
	}
	// Note: the reference-age day stamp is not asserted — under partial
	// (tile-granular) updates a starved uplink still advances the stamp
	// while leaving most tile content stale; the downlink cost above is
	// the meaningful freshness signal.
	render(t, r)
}

func TestFig19MoreSatellitesMoreCompression(t *testing.T) {
	r, err := Fig19(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ratios) != len(Tiny().FleetSweep) {
		t.Fatalf("ratios = %v", r.Ratios)
	}
	first, last := r.Ratios[0], r.Ratios[len(r.Ratios)-1]
	if last <= first {
		t.Fatalf("compression did not grow with fleet size: %v", r.Ratios)
	}
	if first < 1 {
		t.Fatalf("single-satellite ratio %.2f below 1", first)
	}
	render(t, r)
}

func TestProfiledThetaSane(t *testing.T) {
	sc := Tiny()
	theta := profiledTheta(sc, richConfig(sc), 4)
	if theta <= 0 || theta > 0.05 {
		t.Fatalf("profiled theta = %v", theta)
	}
}

func TestAblationTheta(t *testing.T) {
	r, err := AblationTheta(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Over-sensitive θ must download more than the profiled setting.
	if r.Points[0].BytesPerCap <= r.Points[1].BytesPerCap {
		t.Fatalf("θ/4 bytes %.0f not above profiled %.0f", r.Points[0].BytesPerCap, r.Points[1].BytesPerCap)
	}
	// Under-sensitive θ must download less.
	if r.Points[2].BytesPerCap >= r.Points[1].BytesPerCap {
		t.Fatalf("4θ bytes %.0f not below profiled %.0f", r.Points[2].BytesPerCap, r.Points[1].BytesPerCap)
	}
	render(t, r)
}

func TestAblationGuarantee(t *testing.T) {
	r, err := AblationGuarantee(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// More frequent guarantees cost more downlink than none.
	if r.Points[0].BytesPerCap <= r.Points[2].BytesPerCap {
		t.Fatalf("10-day guarantee bytes %.0f not above disabled %.0f",
			r.Points[0].BytesPerCap, r.Points[2].BytesPerCap)
	}
	render(t, r)
}

func TestAblationReject(t *testing.T) {
	r, err := AblationReject(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	render(t, r)
}
