// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the simulation substrate. Each ExpNN function runs
// the workload described in DESIGN.md's per-experiment index and returns a
// result that renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"earthplus/internal/baseline"
	"earthplus/internal/core"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// Scale sizes an experiment run.
type Scale struct {
	// Size picks the scene resolution preset.
	Size scene.Size
	// ProfileStart/ProfileDays is the year-1 window used to calibrate θ.
	ProfileStart, ProfileDays int
	// EvalStart/EvalDays is the evaluation window (year 2 in the paper).
	EvalStart, EvalDays int
	// MaxLocations caps the rich-content location count (0 = all 11).
	MaxLocations int
	// GammaSweep lists the γ values for rate-distortion trade-off sweeps.
	GammaSweep []float64
	// RefAgeSweep lists reference ages (days) for Fig 4.
	RefAgeSweep []int
	// DownsampleSweep lists per-axis factors for Fig 8.
	DownsampleSweep []int
	// FleetSweep lists constellation sizes for Fig 19.
	FleetSweep []int
	// UplinkDivisors sweep the uplink budget for Fig 18 (budget =
	// rawRefBytesPerDay / divisor).
	UplinkDivisors []float64
}

// Tiny returns the smallest meaningful scale — used by unit tests.
func Tiny() Scale {
	return Scale{
		Size:            scene.Quick,
		ProfileStart:    0,
		ProfileDays:     25,
		EvalStart:       40,
		EvalDays:        25,
		MaxLocations:    2,
		GammaSweep:      []float64{0.25, 1.0, 2.0},
		RefAgeSweep:     []int{5, 20, 50},
		DownsampleSweep: []int{1, 4, 16},
		FleetSweep:      []int{1, 4, 16},
		UplinkDivisors:  []float64{20000, 25},
	}
}

// QuickScale is the default for cmd/earthplus-bench and the root benches.
func QuickScale() Scale {
	return Scale{
		Size:            scene.Quick,
		ProfileStart:    0,
		ProfileDays:     60,
		EvalStart:       370,
		EvalDays:        90,
		MaxLocations:    0,
		GammaSweep:      []float64{0.125, 0.25, 0.5, 1.0, 2.0},
		RefAgeSweep:     []int{5, 10, 20, 30, 40, 50, 60},
		DownsampleSweep: []int{1, 2, 4, 8, 16},
		FleetSweep:      []int{1, 2, 4, 8, 16},
		UplinkDivisors:  []float64{20000, 5000, 1000, 100, 10},
	}
}

// FullScale runs closer to paper scale (a full evaluation year at the
// larger scene size).
func FullScale() Scale {
	s := QuickScale()
	s.Size = scene.Full
	s.ProfileDays = 120
	s.EvalDays = 365
	return s
}

// Result is one regenerated table or figure.
type Result interface {
	// ID returns the paper artefact identifier, e.g. "Figure 11a".
	ID() string
	// Render writes the regenerated rows/series as text.
	Render(w io.Writer) error
}

// richConfig builds the rich-content dataset config under a scale.
func richConfig(sc Scale) scene.Config {
	cfg := scene.RichContent(sc.Size)
	if sc.MaxLocations > 0 && sc.MaxLocations < len(cfg.Locations) {
		cfg.Locations = cfg.Locations[:sc.MaxLocations]
	}
	return cfg
}

// richOrbit is the Sentinel-2-like constellation: 2 satellites (Table 2)
// with a 10-day single-satellite revisit period.
func richOrbit() orbit.Constellation {
	return orbit.Constellation{Satellites: 2, RevisitDays: 10}
}

// planetOrbit returns the Doves-like constellation with the given fleet
// size (48 in Table 2) and a 12-day single-satellite revisit.
func planetOrbit(satellites int) orbit.Constellation {
	return orbit.Constellation{Satellites: satellites, RevisitDays: 12}
}

// DenseOrbit is the dense-revisit constellation the stress sweeps fly: a
// 2-day single-satellite revisit, so compact scales still generate enough
// traffic per simulated day — enough channel frames for sub-percent loss
// rates to resolve into fault events (the loss sweep), enough contending
// uplink demand for station contention to bite (the constellation sweep).
func DenseOrbit(satellites int) orbit.Constellation {
	return orbit.Constellation{Satellites: satellites, RevisitDays: 2}
}

// dovesDownlink is the Table 1 downlink contact model.
func dovesDownlink() link.Budget {
	spec := orbit.DovesSpec()
	return link.Budget{Bps: spec.DownlinkBps, SecondsPerContact: spec.ContactSeconds, ContactsPerDay: spec.ContactsPerDay}
}

// rawRefBytesPerDay is the raw (2 bytes/sample, full resolution) size of
// one reference set for every modeled location — the uncompressed daily
// reference demand that Fig 17 and Fig 18 scale the uplink against.
func rawRefBytesPerDay(cfg scene.Config) int64 {
	return int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands)) * 2 * int64(len(cfg.Locations))
}

// defaultUplinkDivisor scales the Doves uplink to the modeled location
// count: the budget is rawRefBytesPerDay/defaultUplinkDivisor, i.e. the
// uplink can carry raw references only if they are compressed at least
// this much — mirroring the paper's "compression ratio required for
// current uplink capacity" line in Fig 17. At 50x the budget is binding
// (raw or merely-downsampled references cannot fit) yet sufficient for
// Earth+'s delta-encoded updates to keep references fully fresh.
const defaultUplinkDivisor = 50

// SimWorkers is the package default for Env.Parallelism in every
// experiment environment: how many locations each simulated day is
// sharded across (the codec.Parallelism convention — <= 0 means
// GOMAXPROCS, 1 forces the serial path). Results are identical at any
// setting; cmd/earthplus-bench exposes it as -simworkers.
var SimWorkers int

// StorageBytes and EvictPolicy are the package defaults for the bounded
// on-board reference store in every Earth+ experiment run: 0 bytes /
// empty string keep the system defaults (Table 1's 360 GB, lru), a
// positive byte count bounds the store, a negative one makes it
// explicitly unlimited. cmd/earthplus-bench exposes them as -storage and
// -evictpolicy; the storage sweep sets its own budgets and only honours
// EvictPolicy.
var (
	StorageBytes int64
	EvictPolicy  string
)

// RefCompression is the package default for the on-board reference
// representation in every Earth+ experiment run: true stores references
// as codestreams encoded at the uplink's reference rate (real encoded
// bytes charged against the storage budget, decode-on-visit), false
// keeps raw planes.
// cmd/earthplus-bench and cmd/earthplus-sim expose it as -refcompress;
// the storage sweep always runs BOTH representations side by side and
// ignores this default.
var RefCompression bool

// LinkLoss and LinkSeed are the package defaults for the fault-injected
// ground↔satellite link in every Earth+ experiment run: LinkLoss 0 keeps
// the perfect channel (the default runs stay byte-identical to it),
// a rate in (0,1] spreads that aggregate loss over frame drops,
// corruptions, truncations and contact cancellations, and LinkSeed picks
// the deterministic fault pattern. cmd/earthplus-bench and
// cmd/earthplus-sim expose them as -linkloss and -linkseed; the loss
// sweep sets its own rates and ignores these defaults.
var (
	LinkLoss float64
	LinkSeed uint64 = 1
)

// ConstellationStations and ConstellationContactBudget are the package
// defaults for the contended ground-station model in every Earth+
// experiment run: 0 stations keeps the flat per-day uplink budget (the
// default runs stay byte-identical to it), a positive count books that
// many stations — each serving one satellite per contact window — and the
// contact budget caps each window's uplink bytes (0 = derived from the
// flat per-day budget, negative = unlimited). cmd/earthplus-bench and
// cmd/earthplus-sim expose them as -stations and -contactbudget; the
// constellation sweep sets its own station counts and ignores these
// defaults.
var (
	ConstellationStations      int
	ConstellationContactBudget int64
)

// applyConstellationDefaults pushes the package ground-station knobs onto
// a spec (untouched at 0 stations: presence of stations is meaningful).
func applyConstellationDefaults(spec registry.Spec) registry.Spec {
	if ConstellationStations != 0 {
		if spec.Params == nil {
			spec.Params = map[string]float64{}
		}
		spec.Params["stations"] = float64(ConstellationStations)
		if ConstellationContactBudget != 0 {
			spec.Params["contact_budget"] = float64(ConstellationContactBudget)
		}
	}
	return spec
}

// applyLinkDefaults pushes the package link-fault knobs onto a spec
// (untouched at LinkLoss 0: presence of link_loss is meaningful).
func applyLinkDefaults(spec registry.Spec) registry.Spec {
	if LinkLoss != 0 {
		if spec.Params == nil {
			spec.Params = map[string]float64{}
		}
		spec.Params["link_loss"] = LinkLoss
		spec.Params["link_seed"] = float64(LinkSeed)
	}
	return spec
}

// applyStorageDefaults pushes the package storage knobs onto a spec
// (leaving it untouched when both are unset, so default runs stay
// byte-identical to the unbounded behavior).
func applyStorageDefaults(spec registry.Spec) registry.Spec {
	if StorageBytes != 0 {
		if spec.Params == nil {
			spec.Params = map[string]float64{}
		}
		spec.Params["storage_bytes"] = float64(StorageBytes)
	}
	if EvictPolicy != "" {
		if spec.StrParams == nil {
			spec.StrParams = map[string]string{}
		}
		spec.StrParams["evict_policy"] = EvictPolicy
	}
	if RefCompression {
		if spec.StrParams == nil {
			spec.StrParams = map[string]string{}
		}
		spec.StrParams["ref_compression"] = "on"
	}
	return spec
}

// envFor assembles a simulation environment.
func envFor(cfg scene.Config, cons orbit.Constellation, uplinkDivisor float64) *sim.Env {
	env := &sim.Env{
		Scene:       scene.New(cfg),
		Orbit:       cons,
		Downlink:    dovesDownlink(),
		Parallelism: SimWorkers,
	}
	if uplinkDivisor > 0 {
		env.UplinkBytesPerDay = int64(float64(rawRefBytesPerDay(cfg)) / uplinkDivisor)
	}
	return env
}

// profiledTheta calibrates Earth+'s change threshold θ on the profiling
// window (the paper profiles last year's data on one location, §5).
func profiledTheta(sc Scale, cfg scene.Config, downsample int) float64 {
	return ProfileThetaOnScene(scene.New(cfg), 0, sc.ProfileStart, sc.ProfileStart+sc.ProfileDays, downsample, 0.02, core.DefaultConfig().Theta)
}

// earthPlus builds an Earth+ system through the system registry with the
// profiled θ and a γ.
func earthPlus(env *sim.Env, theta, gamma float64) (sim.System, error) {
	return registry.New(core.SystemName, env,
		applyConstellationDefaults(applyLinkDefaults(applyStorageDefaults(registry.Spec{GammaBPP: gamma, Theta: theta}))))
}

// runSystemStream runs one system over the scale's evaluation window,
// streaming each record into emit (which may be nil) instead of retaining
// the record set — whole-constellation sweeps hold at most one day of
// records in memory.
func runSystemStream(sc Scale, env *sim.Env, sys sim.System, emit func(*sim.Record)) (*sim.Result, error) {
	return sim.RunStream(env, sys, sc.EvalStart-30, sc.EvalStart, sc.EvalStart+sc.EvalDays, emit)
}

// summarizeSystem runs one system and folds its records straight into a
// Summary without retaining them.
func summarizeSystem(sc Scale, env *sim.Env, sys sim.System) (sim.Summary, error) {
	acc := sim.NewAccumulator()
	res, err := runSystemStream(sc, env, sys, acc.Add)
	if err != nil {
		return sim.Summary{}, err
	}
	return acc.Summary(res, dovesDownlink()), nil
}

// threeSystemsStream builds Earth+, Kodan and SatRoI at one γ for an
// env-factory and runs them concurrently — each system gets a fresh
// environment (its own scene instance), so the runs are fully
// independent. Records are streamed into the per-system collector that
// mkEmit returns (called once per system before its run starts; the
// returned emit runs on that system's goroutine, so collectors for
// different systems must not share state). The returned Results carry the
// run aggregates with Records nil.
func threeSystemsStream(sc Scale, mkEnv func() *sim.Env, theta, gamma float64, mkEmit func(name string) func(*sim.Record)) (map[string]*sim.Result, error) {
	builders := []struct {
		name string
		mk   func(env *sim.Env) (sim.System, error)
	}{
		{"Earth+", func(env *sim.Env) (sim.System, error) { return earthPlus(env, theta, gamma) }},
		{"Kodan", func(env *sim.Env) (sim.System, error) {
			return registry.New(baseline.KodanName, env, registry.Spec{GammaBPP: gamma})
		}},
		{"SatRoI", func(env *sim.Env) (sim.System, error) {
			return registry.New(baseline.SatRoIName, env, registry.Spec{GammaBPP: gamma})
		}},
	}
	results := make([]*sim.Result, len(builders))
	errs := make([]error, len(builders))
	var wg sync.WaitGroup
	for i, b := range builders {
		var emit func(*sim.Record)
		if mkEmit != nil {
			emit = mkEmit(b.name)
		}
		wg.Add(1)
		go func(i int, name string, mk func(env *sim.Env) (sim.System, error), emit func(*sim.Record)) {
			defer wg.Done()
			env := mkEnv()
			sys, err := mk(env)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			res, err := runSystemStream(sc, env, sys, emit)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				return
			}
			results[i] = res
		}(i, b.name, b.mk, emit)
	}
	wg.Wait()
	out := make(map[string]*sim.Result, len(builders))
	for i, b := range builders {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[b.name] = results[i]
	}
	return out, nil
}
