package experiments

import (
	"fmt"
	"io"
	"sort"

	"earthplus/internal/change"
	"earthplus/internal/illum"
	"earthplus/internal/metrics"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// Fig4Result is the changed-tile percentage as a function of reference age
// (paper Fig 4: ~3x more changed tiles at 50 days than at 10).
type Fig4Result struct {
	Ages    []int
	Changed []float64 // fraction of tiles changed at each age
}

// Fig4 measures cloud-free ground-truth pairs on one rich-content location
// across the age sweep.
func Fig4(sc Scale) *Fig4Result {
	cfg := richConfig(sc)
	s := scene.New(cfg)
	band := groundBand(s)
	grid := s.Grid()
	res := &Fig4Result{Ages: sc.RefAgeSweep}
	const loc = 1 // forest: representative non-snow content
	for _, age := range sc.RefAgeSweep {
		var frac []float64
		for base := sc.EvalStart; base < sc.EvalStart+sc.EvalDays; base += 17 {
			ref := s.GroundTruth(loc, base)
			cap := s.GroundTruth(loc, base+age)
			frac = append(frac, change.TrueChanges(ref, cap, band, grid, nil).Fraction())
		}
		res.Changed = append(res.Changed, metrics.Mean(frac))
	}
	return res
}

// ID implements Result.
func (r *Fig4Result) ID() string { return "Figure 4" }

// Render implements Result.
func (r *Fig4Result) Render(w io.Writer) error {
	rows := [][]string{{"reference age (days)", "changed tiles"}}
	for i, age := range r.Ages {
		rows = append(rows, []string{fmt.Sprintf("%d", age), fmt.Sprintf("%.1f%%", r.Changed[i]*100)})
	}
	metrics.Table(w, rows)
	if len(r.Ages) > 1 {
		at := func(age int) (float64, bool) {
			for i, a := range r.Ages {
				if a == age {
					return r.Changed[i], true
				}
			}
			return 0, false
		}
		if c10, ok1 := at(10); ok1 {
			if c50, ok2 := at(50); ok2 {
				fmt.Fprintf(w, "growth 10 d -> 50 d: %.1fx (paper: ~3x)\n", metrics.Ratio(c50, c10))
				return nil
			}
		}
		first, last := r.Changed[0], r.Changed[len(r.Changed)-1]
		fmt.Fprintf(w, "growth %d d -> %d d: %.1fx (paper: ~3x from 10 d to 50 d)\n",
			r.Ages[0], r.Ages[len(r.Ages)-1], metrics.Ratio(last, first))
	}
	return nil
}

// Fig5Result compares reference-image age under satellite-local versus
// constellation-wide selection (paper Fig 5: 51 days vs 4.2 days mean).
type Fig5Result struct {
	LocalAges         []float64
	ConstellationAges []float64
}

// Fig5 scans the large-constellation dataset's natural cloud regime: for
// every day of the window, the age of the most recent capture with <1%
// cloud coverage, (a) restricted to one satellite's own visits and (b)
// across the whole fleet.
func Fig5(sc Scale) *Fig5Result {
	cfg := scene.LargeConstellation(sc.Size)
	s := scene.New(cfg)
	cons := planetOrbit(48)
	const loc = 0
	res := &Fig5Result{}
	// Pre-compute clear visit days per satellite and for the fleet.
	clearByDay := map[int]bool{}
	clearBySat := make(map[int][]int)
	horizon := sc.EvalStart + sc.EvalDays
	for d := 0; d < horizon; d++ {
		if s.CloudCoverageTarget(loc, d) >= 0.01 {
			continue
		}
		for _, satID := range cons.VisitsOn(loc, d) {
			clearByDay[d] = true
			clearBySat[satID] = append(clearBySat[satID], d)
		}
	}
	lastClearBefore := func(days []int, day int) int {
		idx := sort.SearchInts(days, day) // first >= day
		if idx == 0 {
			return -1
		}
		return days[idx-1]
	}
	var fleetClear []int
	for d := 0; d < horizon; d++ {
		if clearByDay[d] {
			fleetClear = append(fleetClear, d)
		}
	}
	for d := sc.EvalStart; d < horizon; d++ {
		if prev := lastClearBefore(fleetClear, d); prev >= 0 {
			res.ConstellationAges = append(res.ConstellationAges, float64(d-prev))
		}
		// Satellite-local: average the visiting satellites' own history.
		for _, satID := range cons.VisitsOn(loc, d) {
			if prev := lastClearBefore(clearBySat[satID], d); prev >= 0 {
				res.LocalAges = append(res.LocalAges, float64(d-prev))
			}
		}
	}
	return res
}

// ID implements Result.
func (r *Fig5Result) ID() string { return "Figure 5" }

// Render implements Result.
func (r *Fig5Result) Render(w io.Writer) error {
	rows := [][]string{{"strategy", "mean age", "median", "p90"}}
	for _, s := range []struct {
		name string
		ages []float64
	}{
		{"satellite-local", r.LocalAges},
		{"constellation-wide", r.ConstellationAges},
	} {
		rows = append(rows, []string{
			s.name,
			fmt.Sprintf("%.1f d", metrics.Mean(s.ages)),
			fmt.Sprintf("%.0f d", metrics.Percentile(s.ages, 50)),
			fmt.Sprintf("%.0f d", metrics.Percentile(s.ages, 90)),
		})
	}
	metrics.Table(w, rows)
	fmt.Fprintf(w, "reduction: %.1fx (paper: 12x, 51 d -> 4.2 d)\n",
		metrics.Ratio(metrics.Mean(r.LocalAges), metrics.Mean(r.ConstellationAges)))
	return nil
}

// Fig8Result shows undetected changed tiles versus reference compression
// ratio at a fixed downloaded-tile budget (paper Fig 8: only 1.7% of tiles
// missed at 2601x compression).
type Fig8Result struct {
	Factors    []int     // per-axis downsampling factors
	Ratios     []float64 // resulting compression ratios (factor²)
	Missed     []float64 // changed tiles not detected
	Downloaded float64   // fixed downloaded fraction used for every point
}

// Fig8 fixes the number of downloaded tiles and measures, per downsampling
// factor, how many truly-changed tiles escape detection.
func Fig8(sc Scale) *Fig8Result {
	cfg := scene.LargeConstellationSampled(sc.Size)
	s := scene.New(cfg)
	band := groundBand(s)
	grid := s.Grid()
	const loc = 0

	// Gather (pair, factor) -> per-tile low-res diffs plus truth labels.
	type pair struct {
		lowDiffs map[int][]float64 // factor -> diffs
		truly    []bool
	}
	// Measure on near-clear CAPTURES, not pristine truth: the sensor
	// noise, illumination residual and atmospheric variability of real
	// images are what make detection at deep downsampling fallible.
	var pairs []pair
	for base := sc.EvalStart; base+5 < sc.EvalStart+sc.EvalDays; base += 7 {
		if s.CloudCoverageTarget(loc, base) > 0.02 || s.CloudCoverageTarget(loc, base+5) > 0.02 {
			continue
		}
		refCap := s.CaptureImage(loc, base, 0)
		newCap := s.CaptureImage(loc, base+5, 1)
		ref, cap := refCap.Image, newCap.Image.Clone()
		// Truth labels come from the underlying surface change.
		truly := change.TrueChanges(refCap.Truth, newCap.Truth, band, grid, nil)
		// Align the capture to the reference per the pipeline.
		if m, ok := illum.FitRobust(ref.Plane(band), cap.Plane(band), nil, 2, 0.2); ok {
			m.Normalize(cap.Plane(band))
		}
		p := pair{lowDiffs: map[int][]float64{}, truly: truly.Set}
		for _, f := range sc.DownsampleSweep {
			if grid.Tile%f != 0 {
				continue
			}
			gLow, err := grid.Scaled(f)
			if err != nil {
				continue
			}
			refLow, err := ref.Downsample(f)
			if err != nil {
				continue
			}
			capLow, err := cap.Downsample(f)
			if err != nil {
				continue
			}
			p.lowDiffs[f] = raster.TileMeanAbsDiff(refLow, capLow, band, gLow)
		}
		pairs = append(pairs, p)
		// p retains only fresh diff slices and truth labels, so the
		// capture buffers can go back to the scene's pools each pair.
		s.ReleaseCapture(refCap)
		s.ReleaseCapture(newCap)
	}
	if len(pairs) == 0 {
		return &Fig8Result{}
	}

	// Fix the downloaded fraction: twice the truly-changed fraction,
	// mirroring the paper's fixed download budget of ~40%.
	var changedFrac float64
	var n int
	for _, p := range pairs {
		for _, c := range p.truly {
			if c {
				changedFrac++
			}
			n++
		}
	}
	changedFrac /= float64(n)
	target := changedFrac * 2
	if target > 0.9 {
		target = 0.9
	}

	res := &Fig8Result{Downloaded: target}
	for _, f := range sc.DownsampleSweep {
		var all []float64
		for _, p := range pairs {
			all = append(all, p.lowDiffs[f]...)
		}
		if len(all) == 0 {
			continue
		}
		// Pick θ so that exactly `target` of tiles are flagged.
		sorted := append([]float64(nil), all...)
		sort.Float64s(sorted)
		theta := sorted[int(float64(len(sorted))*(1-target))]
		var missed, changed float64
		for _, p := range pairs {
			for t, c := range p.truly {
				if !c {
					continue
				}
				changed++
				if p.lowDiffs[f][t] <= theta {
					missed++
				}
			}
		}
		res.Factors = append(res.Factors, f)
		res.Ratios = append(res.Ratios, float64(f*f))
		if changed > 0 {
			res.Missed = append(res.Missed, missed/changed)
		} else {
			res.Missed = append(res.Missed, 0)
		}
	}
	return res
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "Figure 8" }

// Render implements Result.
func (r *Fig8Result) Render(w io.Writer) error {
	rows := [][]string{{"ref compression", "downloaded (fixed)", "changed tiles missed"}}
	for i := range r.Factors {
		rows = append(rows, []string{
			fmt.Sprintf("%.0fx", r.Ratios[i]),
			fmt.Sprintf("%.0f%%", r.Downloaded*100),
			fmt.Sprintf("%.1f%%", r.Missed[i]*100),
		})
	}
	metrics.Table(w, rows)
	fmt.Fprintln(w, "(paper: 1.7% missed at 2601x; the miss rate stays small as compression grows)")
	return nil
}
