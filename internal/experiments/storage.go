package experiments

import (
	"fmt"
	"io"
	"time"

	"earthplus/internal/baseline"
	"earthplus/internal/core"
	"earthplus/internal/metrics"
	"earthplus/internal/registry"
	"earthplus/internal/sat"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// The storage sweep is the missing half of Fig 15: the paper's storage
// figure orders the systems' footprints, but only a sweep of the on-board
// budget shows how compression degrades when the 360 GB store (Table 1)
// stops fitting the reference working set. Each system runs at ~5 budget
// points expressed as fractions of its own unlimited working-set
// footprint; a shrinking budget forces evictions, evictions force
// reference-miss fallbacks to full downloads, and the compression ratio
// decays monotonically. Earth+ runs TWICE — raw reference planes and
// ref_compression=on, at the SAME absolute budgets — so the sweep reads
// off directly how many more locations the compressed store keeps
// resident per byte of budget. Kodan keeps no on-board reference state,
// so its line is flat by construction and it runs once.

// storageBudgetFracs are the sweep points: fractions of the system's
// unlimited reference working set (0 = unlimited). The tail point sits
// above one COMPRESSED reference per satellite (~RefBPP/16 of a raw one),
// so every pressured point discriminates between the raw and compressed
// representations instead of starving both to an identical zero.
var storageBudgetFracs = []float64{0, 1.0, 0.5, 0.25, 0.2}

// policySweepFrac is the fixed budget (as a working-set fraction) the
// eviction-policy sweep compares lru vs schedule at: tight enough that
// the policy choice matters, loose enough that the store is not pure
// thrash.
const policySweepFrac = 0.5

// StorageSystemSeries is one system's storage-sensitivity curve.
type StorageSystemSeries struct {
	System string `json:"system"`
	// RefCompression marks the compressed-store variant of a system; its
	// BudgetBytes match the raw series point for point, so the two curves
	// compare at equal budgets.
	RefCompression bool `json:"ref_compression,omitempty"`
	// BudgetBytes[i] is the absolute store budget at sweep point i
	// (0 = unlimited).
	BudgetBytes []int64 `json:"budget_bytes"`
	// Ratio[i] is raw captured bytes over downlinked bytes — the
	// compression ratio the downlink experiences.
	Ratio []float64 `json:"compression_ratio"`
	// UpBytesPerDay[i] is the uplink actually consumed (reference
	// re-seeding after evictions shows up here).
	UpBytesPerDay []float64 `json:"uplink_bytes_per_day"`
	MeanPSNR      []float64 `json:"mean_psnr"`
	Evictions     []int64   `json:"evictions"`
	Misses        []int64   `json:"misses"`
	// Resident[i] counts the references left resident fleet-wide at the
	// end of run i, and FootprintBytes[i] is their REAL accounted
	// footprint — encoded bytes when RefCompression, raw-rate bytes
	// otherwise. Zero for systems without a bounded store (Kodan).
	Resident       []int   `json:"resident_locations,omitempty"`
	FootprintBytes []int64 `json:"footprint_bytes,omitempty"`
	// EffBitsPerSample is the measured per-sample storage rate of the
	// unlimited run (FootprintBytes*8 / resident samples): the real rate
	// compressed references achieve, versus the a-priori
	// CacheConfig.BitsPerSample the budget fractions were derived from.
	EffBitsPerSample float64 `json:"eff_bits_per_sample,omitempty"`
}

// EvictPolicyPoint is one eviction-policy comparison run at the fixed
// policy-sweep budget (the ROADMAP's "sweep over the eviction policies
// themselves at fixed budget" — the main series records only the one
// configured policy).
type EvictPolicyPoint struct {
	System        string  `json:"system"`
	Policy        string  `json:"policy"`
	BudgetBytes   int64   `json:"budget_bytes"`
	Ratio         float64 `json:"compression_ratio"`
	UpBytesPerDay float64 `json:"uplink_bytes_per_day"`
	MeanPSNR      float64 `json:"mean_psnr"`
	Evictions     int64   `json:"evictions"`
	Misses        int64   `json:"misses"`
}

// StorageSweepResult is the compression-vs-storage-budget sweep.
type StorageSweepResult struct {
	// Fracs are the budget points as working-set fractions (0 = unlimited).
	Fracs []float64 `json:"budget_fracs"`
	// Satellites is the fleet size of every run: budgets are PER
	// SATELLITE while the residency figures are fleet sums, so the
	// fleet-wide capacity at a point is BudgetBytes[i] * Satellites.
	Satellites int `json:"satellites"`
	// Policy is the eviction policy the bounded runs used.
	Policy  string                `json:"evict_policy"`
	Systems []StorageSystemSeries `json:"systems"`
	// PolicySweep compares the eviction policies at one fixed budget per
	// bounded-store system.
	PolicySweep []EvictPolicyPoint `json:"policy_sweep,omitempty"`
}

// storageStatser is implemented by systems with a bounded on-board
// reference store (Earth+, SatRoI).
type storageStatser interface {
	StorageStats() (evictions, misses int64)
}

// storageResidenter reports what the bounded store still holds after a
// run: the resident reference count and its real accounted footprint.
type storageResidenter interface {
	ResidentRefs() (locations int, bytes int64)
}

// refWorkingSet is the unlimited footprint of a store holding one
// reference per location for a scene, at the given per-axis downsample,
// accounted exactly as sat.RefCache does for the store configuration:
// per-entry exact integer arithmetic at the store's EFFECTIVE bits per
// sample — ONE derivation for the sweep, the determinism check and any
// budget estimate, resolved from the CacheConfig instead of a hard-coded
// rate so a system configured at a non-16-bit rate sweeps correct
// budgets.
func refWorkingSet(cfg scene.Config, downsample int, store sat.CacheConfig) int64 {
	ds := int64(downsample)
	samples := (int64(cfg.Width) / ds) * (int64(cfg.Height) / ds) * int64(len(cfg.Bands))
	perLoc := (samples*int64(store.EffectiveBitsPerSample()) + 7) / 8
	return int64(len(cfg.Locations)) * perLoc
}

// earthRefWorkingSet is the unlimited footprint of Earth+'s reference
// cache for a scene: detection-resolution references at the rate of the
// resolved default cache configuration.
func earthRefWorkingSet(cfg scene.Config) int64 {
	def := core.DefaultConfig()
	return refWorkingSet(cfg, def.RefDownsample, def.CacheConfig())
}

// earthRefSamples is the per-location sample count behind that footprint.
func earthRefSamples(cfg scene.Config) int64 {
	ds := int64(core.DefaultConfig().RefDownsample)
	return (int64(cfg.Width) / ds) * (int64(cfg.Height) / ds) * int64(len(cfg.Bands))
}

// satroiRefWorkingSet is SatRoI's unlimited footprint: full-resolution
// references at the raw rate its store accounts.
func satroiRefWorkingSet(cfg scene.Config) int64 {
	return refWorkingSet(cfg, 1, sat.CacheConfig{BitsPerSample: sat.RawBitsPerSample})
}

// sweepRun is one measured simulation of the sweep.
type sweepRun struct {
	sum               sim.Summary
	evictions, misses int64
	resident          int
	footprint         int64
}

// StorageSweep measures compression ratio, uplink consumption and
// reference residency against the on-board storage budget for every
// registered system on the rich-content dataset, plus an eviction-policy
// comparison at a fixed budget.
func StorageSweep(sc Scale) (*StorageSweepResult, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	cfg := richConfig(sc)
	earthSet := earthRefWorkingSet(cfg)
	satroiSet := satroiRefWorkingSet(cfg)
	rawCaptureBytes := int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands)) * 2

	policy := EvictPolicy
	if policy == "" {
		policy = "lru"
	}

	runOne := func(system string, budget int64, pol string, compress bool) (sweepRun, error) {
		env := mkEnv()
		spec := registry.Spec{GammaBPP: fig12Gamma}
		if system == core.SystemName {
			spec.Theta = theta
		}
		if system != baseline.KodanName {
			// Presence is meaningful: 0 is an explicit "unlimited".
			spec.Params = map[string]float64{"storage_bytes": float64(budget)}
			spec.StrParams = map[string]string{"evict_policy": pol}
			if compress {
				spec.StrParams["ref_compression"] = "on"
			}
		}
		sys, err := registry.New(system, env, spec)
		if err != nil {
			return sweepRun{}, fmt.Errorf("storage sweep: %s: %w", system, err)
		}
		sum, err := summarizeSystem(sc, env, sys)
		if err != nil {
			return sweepRun{}, fmt.Errorf("storage sweep: %s: %w", system, err)
		}
		r := sweepRun{sum: sum}
		if ss, ok := sys.(storageStatser); ok {
			r.evictions, r.misses = ss.StorageStats()
		}
		if sr, ok := sys.(storageResidenter); ok {
			r.resident, r.footprint = sr.ResidentRefs()
		}
		return r, nil
	}
	ratioOf := func(sum sim.Summary) float64 {
		if sum.TotalDownBytes <= 0 {
			return 0
		}
		return float64(int64(sum.Captures-sum.Dropped)*rawCaptureBytes) / float64(sum.TotalDownBytes)
	}

	res := &StorageSweepResult{Fracs: storageBudgetFracs, Policy: policy, Satellites: mkEnv().Orbit.Satellites}
	systems := []struct {
		name       string
		workingSet int64
		samples    int64 // per-location samples behind workingSet
		compress   bool
	}{
		{core.SystemName, earthSet, earthRefSamples(cfg), false},
		// Same absolute budgets as the raw Earth+ series (fractions of
		// the RAW working set): the equal-budget comparison is the point.
		{core.SystemName, earthSet, earthRefSamples(cfg), true},
		{baseline.SatRoIName, satroiSet, int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands)), false},
		{baseline.KodanName, 0, 0, false},
	}
	for _, s := range systems {
		series := StorageSystemSeries{System: s.name, RefCompression: s.compress}
		for i, frac := range storageBudgetFracs {
			budget := int64(0)
			if frac > 0 {
				budget = int64(frac * float64(s.workingSet))
			}
			if s.name == baseline.KodanName && i > 0 {
				// Storage-insensitive: replicate the unlimited point
				// instead of re-running an identical simulation.
				series.BudgetBytes = append(series.BudgetBytes, 0)
				series.Ratio = append(series.Ratio, series.Ratio[0])
				series.UpBytesPerDay = append(series.UpBytesPerDay, series.UpBytesPerDay[0])
				series.MeanPSNR = append(series.MeanPSNR, series.MeanPSNR[0])
				series.Evictions = append(series.Evictions, 0)
				series.Misses = append(series.Misses, 0)
				continue
			}
			r, err := runOne(s.name, budget, policy, s.compress)
			if err != nil {
				return nil, err
			}
			series.BudgetBytes = append(series.BudgetBytes, budget)
			series.Ratio = append(series.Ratio, ratioOf(r.sum))
			series.UpBytesPerDay = append(series.UpBytesPerDay, r.sum.MeanUpBytesPerDay)
			series.MeanPSNR = append(series.MeanPSNR, r.sum.MeanPSNR)
			series.Evictions = append(series.Evictions, r.evictions)
			series.Misses = append(series.Misses, r.misses)
			if s.name != baseline.KodanName {
				series.Resident = append(series.Resident, r.resident)
				series.FootprintBytes = append(series.FootprintBytes, r.footprint)
				if frac == 0 && r.resident > 0 && s.samples > 0 {
					// Measured rate of the unlimited run: the real bytes
					// the store charges per sample, which for compressed
					// references is the achieved lossless ratio.
					series.EffBitsPerSample = float64(r.footprint*8) / float64(int64(r.resident)*s.samples)
				}
			}
		}
		res.Systems = append(res.Systems, series)
	}

	// Eviction-policy sweep at one fixed (binding) budget per
	// bounded-store system: the main series pins ONE policy; this records
	// how the alternatives compare at equal pressure.
	for _, s := range []struct {
		name       string
		workingSet int64
	}{
		{core.SystemName, earthSet},
		{baseline.SatRoIName, satroiSet},
	} {
		budget := int64(policySweepFrac * float64(s.workingSet))
		for _, pol := range sat.Policies() {
			r, err := runOne(s.name, budget, pol, false)
			if err != nil {
				return nil, fmt.Errorf("policy sweep: %w", err)
			}
			res.PolicySweep = append(res.PolicySweep, EvictPolicyPoint{
				System:        s.name,
				Policy:        pol,
				BudgetBytes:   budget,
				Ratio:         ratioOf(r.sum),
				UpBytesPerDay: r.sum.MeanUpBytesPerDay,
				MeanPSNR:      r.sum.MeanPSNR,
				Evictions:     r.evictions,
				Misses:        r.misses,
			})
		}
	}
	return res, nil
}

// decodeStatser is the slice of core.System the decode-on-visit
// snapshot needs.
type decodeStatser interface {
	DecodeStats() (decodes, lruHits int64)
	DecodeWall() time.Duration
}

// spliceStatser is the slice of core.System the tiled-profile snapshot
// needs on top of decodeStatser.
type spliceStatser interface {
	SpliceTileStats() (reencoded, total int64)
}

// storageDeterminismCheck runs a tightly storage-bounded Earth+
// configuration (a tenth of the reference working set, so evictions and
// miss-fallbacks dominate) at each worker count and reports whether every
// run's records are identical to the serial one and whether evictions
// actually occurred. With compress it runs the ref_compression=on store —
// decode-on-visit and encoded-byte accounting are then the newest state
// the determinism contract has to cover — and also returns the serial
// run's decode-on-visit cost (count, LRU absorptions, wall-clock), so
// the sim-engine snapshot records what decode-on-visit actually costs
// instead of leaving the counters advisory-only. The sim-engine snapshot
// records both configurations. With tiled (implies compress) the store
// runs the tiled (EPT1) codestream profile and the returned cost also
// carries the ground's per-tile splice savings.
func storageDeterminismCheck(sc Scale, workers []int, compress, tiled bool) (deterministic, evicted bool, decode *RefDecodeCost, err error) {
	cfg := richConfig(sc)
	def := core.DefaultConfig()
	down := def.RefDownsample
	if tiled {
		// The ground's per-tile splice only has something to save when a
		// reference spans several 64px codec tiles: at the snapshot's
		// 192x192 scene the default detection downsample (4) yields 48x48
		// references — a single tile, so every splice trivially re-encodes
		// everything. Halve the downsample (96x96 references, a 2x2 codec
		// tile grid) so localized deltas leave untouched tiles behind.
		down = 2
	}
	workingSet := refWorkingSet(cfg, down, def.CacheConfig())
	budget := workingSet / 10
	if compress {
		// A tenth of the RAW working set sits below even one compressed
		// reference at the snapshot's few-location scale: the store would
		// stay empty and the decode-on-visit path (the very state this
		// check covers) would never run. A quarter keeps the compressed
		// store pressured — capacity for some but not all locations — so
		// evictions AND decodes both happen.
		budget = workingSet / 4
	}
	run := func(w int) ([]sim.Record, bool, *RefDecodeCost, error) {
		env := envFor(cfg, richOrbit(), defaultUplinkDivisor)
		env.Parallelism = w
		spec := registry.Spec{
			GammaBPP:  fig12Gamma,
			Params:    map[string]float64{"storage_bytes": float64(budget)},
			StrParams: map[string]string{"evict_policy": "lru"},
		}
		if compress {
			spec.StrParams["ref_compression"] = "on"
		}
		if tiled {
			spec.StrParams["tiled_store"] = "on"
			spec.Params["ref_downsample"] = float64(down)
		}
		sys, err := registry.New(core.SystemName, env, spec)
		if err != nil {
			return nil, false, nil, err
		}
		var recs []sim.Record
		if _, err := runSystemStream(sc, env, sys, func(r *sim.Record) { recs = append(recs, *r) }); err != nil {
			return nil, false, nil, err
		}
		ev, _ := sys.(storageStatser).StorageStats()
		var cost *RefDecodeCost
		if compress {
			ds := sys.(decodeStatser)
			decodes, hits := ds.DecodeStats()
			cost = &RefDecodeCost{Decodes: decodes, LRUHits: hits, WallSeconds: ds.DecodeWall().Seconds()}
			if tiled {
				cost.SpliceTilesReencoded, cost.SpliceTilesTotal = sys.(spliceStatser).SpliceTileStats()
			}
		}
		return recs, ev > 0, cost, nil
	}
	serial, serialEvicted, serialDecode, err := run(1)
	if err != nil {
		return false, false, nil, err
	}
	deterministic, evicted = true, serialEvicted
	for _, w := range workers {
		if w <= 1 {
			continue
		}
		recs, ev, _, err := run(w)
		if err != nil {
			return false, false, nil, err
		}
		if !sim.RecordsEqualIgnoringTimings(serial, recs) {
			deterministic = false
		}
		evicted = evicted && ev
	}
	return deterministic, evicted, serialDecode, nil
}

// ID implements Result.
func (r *StorageSweepResult) ID() string { return "Storage sweep (Fig 15 companion)" }

// label names a series in the rendered tables.
func (s *StorageSystemSeries) label() string {
	if s.RefCompression {
		return s.System + " (ref_compression=on)"
	}
	return s.System
}

// Render implements Result.
func (r *StorageSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "on-board store budget sweep (eviction policy: %s; frac 0 = unlimited)\n", r.Policy)
	for _, s := range r.Systems {
		rows := [][]string{{"budget frac", "budget", "ratio", "uplink B/day", "PSNR", "evictions", "misses", "resident", "footprint"}}
		for i, frac := range r.Fracs {
			budget := "unlimited"
			if s.BudgetBytes[i] > 0 {
				budget = fmt.Sprintf("%d", s.BudgetBytes[i])
			}
			resident, footprint := "-", "-"
			if i < len(s.Resident) {
				resident = fmt.Sprintf("%d", s.Resident[i])
				footprint = fmt.Sprintf("%d", s.FootprintBytes[i])
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", frac),
				budget,
				fmt.Sprintf("%.1fx", s.Ratio[i]),
				fmt.Sprintf("%.0f", s.UpBytesPerDay[i]),
				fmt.Sprintf("%.1f", s.MeanPSNR[i]),
				fmt.Sprintf("%d", s.Evictions[i]),
				fmt.Sprintf("%d", s.Misses[i]),
				resident,
				footprint,
			})
		}
		fmt.Fprintf(w, "%s:\n", s.label())
		if s.EffBitsPerSample > 0 {
			fmt.Fprintf(w, "  measured storage rate (unlimited run): %.2f bits/sample\n", s.EffBitsPerSample)
		}
		metrics.Table(w, rows)
	}
	if len(r.PolicySweep) > 0 {
		fmt.Fprintf(w, "eviction-policy sweep at %.2fx working-set budget:\n", policySweepFrac)
		rows := [][]string{{"system", "policy", "budget", "ratio", "uplink B/day", "PSNR", "evictions", "misses"}}
		for _, p := range r.PolicySweep {
			rows = append(rows, []string{
				p.System, p.Policy,
				fmt.Sprintf("%d", p.BudgetBytes),
				fmt.Sprintf("%.1fx", p.Ratio),
				fmt.Sprintf("%.0f", p.UpBytesPerDay),
				fmt.Sprintf("%.1f", p.MeanPSNR),
				fmt.Sprintf("%d", p.Evictions),
				fmt.Sprintf("%d", p.Misses),
			})
		}
		metrics.Table(w, rows)
	}
	fmt.Fprintln(w, "(compression ratio decays as the budget shrinks below the reference working")
	fmt.Fprintln(w, " set: evictions force reference-miss fallbacks to full non-cloudy downloads;")
	fmt.Fprintln(w, " the ref_compression=on series runs at the SAME budgets as the raw Earth+")
	fmt.Fprintln(w, " series and keeps more references resident per byte; Kodan keeps no")
	fmt.Fprintln(w, " reference state, so its line is flat by construction)")
	return nil
}
