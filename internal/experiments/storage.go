package experiments

import (
	"fmt"
	"io"

	"earthplus/internal/baseline"
	"earthplus/internal/core"
	"earthplus/internal/metrics"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// The storage sweep is the missing half of Fig 15: the paper's storage
// figure orders the systems' footprints, but only a sweep of the on-board
// budget shows how compression degrades when the 360 GB store (Table 1)
// stops fitting the reference working set. Each system runs at ~5 budget
// points expressed as fractions of its own unlimited working-set
// footprint; a shrinking budget forces evictions, evictions force
// reference-miss fallbacks to full downloads, and the compression ratio
// decays monotonically. Kodan keeps no on-board reference state, so its
// line is flat by construction and it runs once.

// storageBudgetFracs are the sweep points: fractions of the system's
// unlimited reference working set (0 = unlimited).
var storageBudgetFracs = []float64{0, 1.0, 0.5, 0.25, 0.1}

// StorageSystemSeries is one system's storage-sensitivity curve.
type StorageSystemSeries struct {
	System string `json:"system"`
	// BudgetBytes[i] is the absolute store budget at sweep point i
	// (0 = unlimited).
	BudgetBytes []int64 `json:"budget_bytes"`
	// Ratio[i] is raw captured bytes over downlinked bytes — the
	// compression ratio the downlink experiences.
	Ratio []float64 `json:"compression_ratio"`
	// UpBytesPerDay[i] is the uplink actually consumed (reference
	// re-seeding after evictions shows up here).
	UpBytesPerDay []float64 `json:"uplink_bytes_per_day"`
	MeanPSNR      []float64 `json:"mean_psnr"`
	Evictions     []int64   `json:"evictions"`
	Misses        []int64   `json:"misses"`
}

// StorageSweepResult is the compression-vs-storage-budget sweep.
type StorageSweepResult struct {
	// Fracs are the budget points as working-set fractions (0 = unlimited).
	Fracs []float64 `json:"budget_fracs"`
	// Policy is the eviction policy the bounded runs used.
	Policy  string                `json:"evict_policy"`
	Systems []StorageSystemSeries `json:"systems"`
}

// storageStatser is implemented by systems with a bounded on-board
// reference store (Earth+, SatRoI).
type storageStatser interface {
	StorageStats() (evictions, misses int64)
}

// earthRefWorkingSet is the unlimited footprint of Earth+'s reference
// cache for a scene: one detection-resolution reference per location,
// accounted exactly as sat.RefCache does (core's downsample and bits per
// sample — ONE derivation for the sweep and the determinism check).
func earthRefWorkingSet(cfg scene.Config) int64 {
	ds := int64(core.DefaultConfig().RefDownsample)
	samples := (int64(cfg.Width) / ds) * (int64(cfg.Height) / ds) * int64(len(cfg.Bands))
	perLoc := (samples*int64(core.RefStoreBitsPerSample) + 7) / 8
	return int64(len(cfg.Locations)) * perLoc
}

// satroiRefWorkingSet is SatRoI's unlimited footprint: full-resolution
// references at the 16 bits per sample its store accounts.
func satroiRefWorkingSet(cfg scene.Config) int64 {
	samples := int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands))
	return int64(len(cfg.Locations)) * (samples * 16 / 8)
}

// StorageSweep measures compression ratio and uplink consumption against
// the on-board storage budget for every registered system on the
// rich-content dataset.
func StorageSweep(sc Scale) (*StorageSweepResult, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	cfg := richConfig(sc)
	earthSet := earthRefWorkingSet(cfg)
	satroiSet := satroiRefWorkingSet(cfg)
	rawCaptureBytes := int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands)) * 2

	policy := EvictPolicy
	if policy == "" {
		policy = "lru"
	}

	runOne := func(system string, budget int64) (sim.Summary, int64, int64, error) {
		env := mkEnv()
		spec := registry.Spec{GammaBPP: fig12Gamma}
		if system == core.SystemName {
			spec.Theta = theta
		}
		if system != baseline.KodanName {
			// Presence is meaningful: 0 is an explicit "unlimited".
			spec.Params = map[string]float64{"storage_bytes": float64(budget)}
			spec.StrParams = map[string]string{"evict_policy": policy}
		}
		sys, err := registry.New(system, env, spec)
		if err != nil {
			return sim.Summary{}, 0, 0, fmt.Errorf("storage sweep: %s: %w", system, err)
		}
		sum, err := summarizeSystem(sc, env, sys)
		if err != nil {
			return sim.Summary{}, 0, 0, fmt.Errorf("storage sweep: %s: %w", system, err)
		}
		var ev, miss int64
		if ss, ok := sys.(storageStatser); ok {
			ev, miss = ss.StorageStats()
		}
		return sum, ev, miss, nil
	}

	res := &StorageSweepResult{Fracs: storageBudgetFracs, Policy: policy}
	systems := []struct {
		name       string
		workingSet int64
	}{
		{core.SystemName, earthSet},
		{baseline.SatRoIName, satroiSet},
		{baseline.KodanName, 0},
	}
	for _, s := range systems {
		series := StorageSystemSeries{System: s.name}
		for i, frac := range storageBudgetFracs {
			budget := int64(0)
			if frac > 0 {
				budget = int64(frac * float64(s.workingSet))
			}
			if s.name == baseline.KodanName && i > 0 {
				// Storage-insensitive: replicate the unlimited point
				// instead of re-running an identical simulation.
				series.BudgetBytes = append(series.BudgetBytes, 0)
				series.Ratio = append(series.Ratio, series.Ratio[0])
				series.UpBytesPerDay = append(series.UpBytesPerDay, series.UpBytesPerDay[0])
				series.MeanPSNR = append(series.MeanPSNR, series.MeanPSNR[0])
				series.Evictions = append(series.Evictions, 0)
				series.Misses = append(series.Misses, 0)
				continue
			}
			sum, ev, miss, err := runOne(s.name, budget)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if sum.TotalDownBytes > 0 {
				ratio = float64(int64(sum.Captures-sum.Dropped)*rawCaptureBytes) / float64(sum.TotalDownBytes)
			}
			series.BudgetBytes = append(series.BudgetBytes, budget)
			series.Ratio = append(series.Ratio, ratio)
			series.UpBytesPerDay = append(series.UpBytesPerDay, sum.MeanUpBytesPerDay)
			series.MeanPSNR = append(series.MeanPSNR, sum.MeanPSNR)
			series.Evictions = append(series.Evictions, ev)
			series.Misses = append(series.Misses, miss)
		}
		res.Systems = append(res.Systems, series)
	}
	return res, nil
}

// storageDeterminismCheck runs a tightly storage-bounded Earth+
// configuration (a tenth of the reference working set, so evictions and
// miss-fallbacks dominate) at each worker count and reports whether every
// run's records are identical to the serial one and whether evictions
// actually occurred. The sim-engine snapshot records both: eviction
// decisions are the newest state the determinism contract has to cover.
func storageDeterminismCheck(sc Scale, workers []int) (deterministic, evicted bool, err error) {
	cfg := richConfig(sc)
	budget := earthRefWorkingSet(cfg) / 10
	run := func(w int) ([]sim.Record, bool, error) {
		env := envFor(cfg, richOrbit(), defaultUplinkDivisor)
		env.Parallelism = w
		spec := registry.Spec{
			GammaBPP:  fig12Gamma,
			Params:    map[string]float64{"storage_bytes": float64(budget)},
			StrParams: map[string]string{"evict_policy": "lru"},
		}
		sys, err := registry.New(core.SystemName, env, spec)
		if err != nil {
			return nil, false, err
		}
		var recs []sim.Record
		if _, err := runSystemStream(sc, env, sys, func(r *sim.Record) { recs = append(recs, *r) }); err != nil {
			return nil, false, err
		}
		ev, _ := sys.(storageStatser).StorageStats()
		return recs, ev > 0, nil
	}
	serial, serialEvicted, err := run(1)
	if err != nil {
		return false, false, err
	}
	deterministic, evicted = true, serialEvicted
	for _, w := range workers {
		if w <= 1 {
			continue
		}
		recs, ev, err := run(w)
		if err != nil {
			return false, false, err
		}
		if !sim.RecordsEqualIgnoringTimings(serial, recs) {
			deterministic = false
		}
		evicted = evicted && ev
	}
	return deterministic, evicted, nil
}

// ID implements Result.
func (r *StorageSweepResult) ID() string { return "Storage sweep (Fig 15 companion)" }

// Render implements Result.
func (r *StorageSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "on-board store budget sweep (eviction policy: %s; frac 0 = unlimited)\n", r.Policy)
	for _, s := range r.Systems {
		rows := [][]string{{"budget frac", "budget", "ratio", "uplink B/day", "PSNR", "evictions", "misses"}}
		for i, frac := range r.Fracs {
			budget := "unlimited"
			if s.BudgetBytes[i] > 0 {
				budget = fmt.Sprintf("%d", s.BudgetBytes[i])
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", frac),
				budget,
				fmt.Sprintf("%.1fx", s.Ratio[i]),
				fmt.Sprintf("%.0f", s.UpBytesPerDay[i]),
				fmt.Sprintf("%.1f", s.MeanPSNR[i]),
				fmt.Sprintf("%d", s.Evictions[i]),
				fmt.Sprintf("%d", s.Misses[i]),
			})
		}
		fmt.Fprintf(w, "%s:\n", s.System)
		metrics.Table(w, rows)
	}
	fmt.Fprintln(w, "(compression ratio decays as the budget shrinks below the reference working")
	fmt.Fprintln(w, " set: evictions force reference-miss fallbacks to full non-cloudy downloads;")
	fmt.Fprintln(w, " Kodan keeps no reference state, so its line is flat by construction)")
	return nil
}
