package experiments

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simbench measures wall-clock runs")
	}
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	res, err := SimBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturesPerRun == 0 {
		t.Fatal("benchmark processed no captures")
	}
	if !res.Deterministic {
		t.Fatal("sharded runs diverged from the serial run")
	}
	if len(res.Runs) < 3 || res.Runs[0].Workers != 1 || res.Runs[0].SpeedupVsSerial != 1 {
		t.Fatalf("unexpected run sweep: %+v", res.Runs)
	}
	for _, run := range res.Runs {
		if run.Seconds <= 0 || run.SpeedupVsSerial <= 0 {
			t.Fatalf("degenerate measurement: %+v", run)
		}
	}
	if res.ID() == "" {
		t.Fatal("empty ID")
	}
	if res.Storage == nil || len(res.Storage.Systems) != 4 {
		t.Fatalf("snapshot missing the storage sweep (raw + compressed Earth+, SatRoI, Kodan): %+v", res.Storage)
	}
	if len(res.Storage.PolicySweep) != 4 {
		t.Fatalf("snapshot missing the eviction-policy sweep: %+v", res.Storage.PolicySweep)
	}
	if !res.StorageDeterministic {
		t.Fatal("storage-bounded run diverged across worker counts")
	}
	if !res.StorageEvictionsExercised {
		t.Fatal("storage determinism check ran without evictions")
	}
	if !res.RefCompressionDeterministic {
		t.Fatal("compressed-refs bounded run diverged across worker counts")
	}
	if !res.RefCompressionEvictionsExercised {
		t.Fatal("compressed-refs determinism check ran without evictions")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render missing speedup column:\n%s", sb.String())
	}
	if err := res.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}
