package experiments

import (
	"io"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestSimBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simbench measures wall-clock runs")
	}
	out := filepath.Join(t.TempDir(), "BENCH_sim.json")
	res, err := SimBench(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturesPerRun == 0 {
		t.Fatal("benchmark processed no captures")
	}
	if !res.Deterministic {
		t.Fatal("sharded runs diverged from the serial run")
	}
	if len(res.Runs) < 3 || res.Runs[0].Workers != 1 || res.Runs[0].SpeedupVsSerial != 1 {
		t.Fatalf("unexpected run sweep: %+v", res.Runs)
	}
	for _, run := range res.Runs {
		if run.Seconds <= 0 || run.SpeedupVsSerial <= 0 {
			t.Fatalf("degenerate measurement: %+v", run)
		}
	}
	if res.ID() == "" {
		t.Fatal("empty ID")
	}
	if res.Storage == nil || len(res.Storage.Systems) != 4 {
		t.Fatalf("snapshot missing the storage sweep (raw + compressed Earth+, SatRoI, Kodan): %+v", res.Storage)
	}
	if len(res.Storage.PolicySweep) != 4 {
		t.Fatalf("snapshot missing the eviction-policy sweep: %+v", res.Storage.PolicySweep)
	}
	if !res.StorageDeterministic {
		t.Fatal("storage-bounded run diverged across worker counts")
	}
	if !res.StorageEvictionsExercised {
		t.Fatal("storage determinism check ran without evictions")
	}
	if !res.RefCompressionDeterministic {
		t.Fatal("compressed-refs bounded run diverged across worker counts")
	}
	if !res.RefCompressionEvictionsExercised {
		t.Fatal("compressed-refs determinism check ran without evictions")
	}
	if res.ScalingValid != (runtime.GOMAXPROCS(0) >= 2) {
		t.Fatalf("scaling_valid = %v at GOMAXPROCS=%d", res.ScalingValid, runtime.GOMAXPROCS(0))
	}
	if res.Const == nil || len(res.Const.Points) != len(constSweepSats)*len(constSweepStations) {
		t.Fatalf("snapshot missing the constellation sweep: %+v", res.Const)
	}
	for _, p := range res.Const.Points {
		if p.Contacts == 0 {
			t.Fatalf("constellation point %dx%d booked no contacts", p.Satellites, p.Stations)
		}
		if p.Events.Tracked == 0 {
			t.Fatalf("constellation point %dx%d tracked no events", p.Satellites, p.Stations)
		}
	}
	if !res.ConstDeterministic {
		t.Fatal("contended constellation run diverged across worker counts")
	}
	if !res.ConstContentionExercised {
		t.Fatal("constellation determinism check ran without contention")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render missing speedup column:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "scaling valid") {
		t.Fatalf("render missing the scaling-validity line:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "TTUI") {
		t.Fatalf("render missing the constellation sweep table:\n%s", sb.String())
	}
	if err := res.Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}
