package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"earthplus/internal/codec"
	"earthplus/internal/core"
	"earthplus/internal/orbit"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// SimBench snapshots whole-constellation simulation throughput so the
// perf trajectory of the sharded engine is tracked across PRs
// (BENCH_sim.json, next to the codec's BENCH_codec.json). It runs the
// same multi-location, multi-satellite Earth+ workload at several worker
// counts with the codec pinned to one thread — isolating the engine's
// location-sharding speedup from the codec's own band parallelism — and
// verifies the runs are record-identical while it is at it.

// SimBenchRun is one measured worker count.
type SimBenchRun struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// SpeedupVsSerial is serial_seconds / seconds.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// SimScalingResult is the engine's multi-core scaling probe: the measured
// worker-count sweep plus the flag that says whether its speedup numbers
// mean anything on this host. It is embedded in SimBenchResult (inline
// JSON keys) and also runs standalone as `-only simscale`, which is what
// CI's bench smoke pins at GOMAXPROCS >= 4.
type SimScalingResult struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ScalingValid is false when GOMAXPROCS < 2: with one scheduler core
	// the worker sweep cannot exhibit any speedup, so speedup_vs_serial
	// ~1.0 would read as an engine regression when it is only a host
	// artifact. Consumers must ignore the speedup figures unless this is
	// true.
	ScalingValid bool `json:"scaling_valid"`
	Satellites   int  `json:"satellites"`
	Locations    int  `json:"locations"`
	Days         int  `json:"days"`
	// CapturesPerRun is the number of (day, location, satellite) visits
	// each measured run processes.
	CapturesPerRun int `json:"captures_per_run"`
	// BootstrapSeconds is the serial-by-design bootstrap phase, measured
	// once and excluded from every run's Seconds.
	BootstrapSeconds float64       `json:"bootstrap_seconds"`
	SerialSeconds    float64       `json:"serial_seconds"`
	Runs             []SimBenchRun `json:"runs"`
	// Deterministic reports whether every run produced records identical
	// to the serial run (timing fields excluded).
	Deterministic bool `json:"deterministic"`
}

// SimBenchResult is the full snapshot.
type SimBenchResult struct {
	SimScalingResult
	// Storage is the storage sweep recorded alongside the perf runs:
	// budget points and per-system compression ratios, uplink use and
	// eviction/miss counts (run at a compact scale).
	Storage *StorageSweepResult `json:"storage_sweep,omitempty"`
	// StorageDeterministic reports whether a tightly storage-bounded
	// Earth+ run — evictions and miss-fallbacks active — stayed
	// record-identical across worker counts.
	StorageDeterministic bool `json:"storage_deterministic"`
	// StorageEvictionsExercised reports whether that bounded run actually
	// evicted (a vacuously-deterministic run would prove nothing).
	StorageEvictionsExercised bool `json:"storage_evictions_exercised"`
	// RefCompressionDeterministic and RefCompressionEvictionsExercised
	// are the same check with ref_compression=on: decode-on-visit and
	// encoded-byte eviction accounting under the same worker sweep.
	RefCompressionDeterministic      bool `json:"ref_compression_deterministic"`
	RefCompressionEvictionsExercised bool `json:"ref_compression_evictions_exercised"`
	// RefDecode is the decode-on-visit cost of that compressed-refs run
	// (serial measurement): sat.DecodeStats counts plus the measured
	// wall-clock, so the price of ref_compression appears in the tracked
	// snapshot instead of staying advisory-only.
	RefDecode *RefDecodeCost `json:"ref_decode,omitempty"`
	// Compute is the Fig-16-style per-image on-board compute budget with
	// RefDecode's wall-clock charged per visit next to the encode time.
	Compute *OnboardComputeBudget `json:"onboard_compute,omitempty"`
	// TiledStoreDeterministic is the worker-sweep determinism check with
	// tiled_store=on AND ref_compression=on — per-tile ground splices,
	// tiled frames through the lossy channel and the tiled store are then
	// the newest state the contract has to cover — and
	// TiledStoreSpliceExercised reports whether the run really spliced
	// mirror frames per-tile (strictly fewer tiles re-encoded than a
	// whole-frame pass; a splice-free run would prove nothing).
	TiledStoreDeterministic   bool `json:"tiled_store_deterministic"`
	TiledStoreSpliceExercised bool `json:"tiled_store_splice_exercised"`
	// TiledRefDecode is RefDecode for that tiled run, including the
	// per-tile splice savings counters.
	TiledRefDecode *RefDecodeCost `json:"tiled_ref_decode,omitempty"`
	// Loss is the link-loss robustness sweep recorded alongside the perf
	// runs (run at the same compact scale as the storage sweep).
	Loss *LossSweepResult `json:"loss_sweep,omitempty"`
	// LossDeterministic reports whether a lossy-link Earth+ run — drops,
	// corruptions, retransmits active — stayed record-identical across
	// worker counts, and LossFaultsExercised whether faults actually
	// fired in it (a fault-free run would prove nothing).
	LossDeterministic   bool `json:"loss_deterministic"`
	LossFaultsExercised bool `json:"loss_faults_exercised"`
	// Const is the constellation sweep recorded alongside the perf runs:
	// fleet sizes x contended ground-station counts, with per-contact
	// budgets, contention stalls, re-seed backlog and event
	// time-to-usable-image (run at a compact single-location scale).
	Const *ConstSweepResult `json:"constsweep,omitempty"`
	// ConstDeterministic reports whether a contended 16-satellite /
	// 2-station run — scheduler, per-contact meters and contact log active
	// — stayed identical across worker counts (records, uplink bytes AND
	// the contact log), and ConstContentionExercised whether satellites
	// actually stalled for windows in it (an uncontended run would prove
	// nothing).
	ConstDeterministic       bool `json:"const_deterministic"`
	ConstContentionExercised bool `json:"const_contention_exercised"`
	path                     string
}

// ID implements Result.
func (r *SimScalingResult) ID() string { return "Sim engine scaling probe" }

// Render implements Result.
func (r *SimScalingResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "workload: %d locations x %d satellites x %d days = %d captures, GOMAXPROCS=%d\n",
		r.Locations, r.Satellites, r.Days, r.CapturesPerRun, r.GOMAXPROCS)
	fmt.Fprintf(w, "serial bootstrap phase (excluded from runs): %.2fs\n", r.BootstrapSeconds)
	fmt.Fprintf(w, "%-10s %10s %10s\n", "workers", "seconds", "speedup")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-10d %10.2f %9.2fx\n", run.Workers, run.Seconds, run.SpeedupVsSerial)
	}
	fmt.Fprintf(w, "scaling valid: %v (speedup figures are host artifacts below 2 cores)\n", r.ScalingValid)
	fmt.Fprintf(w, "records identical across worker counts: %v\n", r.Deterministic)
	return nil
}

// ID implements Result.
func (r *SimBenchResult) ID() string { return "Sim engine perf snapshot" }

// Render implements Result.
func (r *SimBenchResult) Render(w io.Writer) error {
	if err := r.SimScalingResult.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "storage-bounded run identical across worker counts: %v (evictions exercised: %v)\n",
		r.StorageDeterministic, r.StorageEvictionsExercised)
	fmt.Fprintf(w, "compressed-refs bounded run identical across worker counts: %v (evictions exercised: %v)\n",
		r.RefCompressionDeterministic, r.RefCompressionEvictionsExercised)
	if r.RefDecode != nil {
		fmt.Fprintf(w, "decode-on-visit cost (serial compressed run): %d decodes, %d LRU hits, %.3fs wall\n",
			r.RefDecode.Decodes, r.RefDecode.LRUHits, r.RefDecode.WallSeconds)
	}
	if r.Compute != nil {
		fmt.Fprintf(w, "on-board compute budget per image (Fig 16 style): cloud %.1fms + change %.1fms + encode %.1fms + decode-on-visit %.2fms = %.1fms (decode %.1f%%)\n",
			r.Compute.CloudMs, r.Compute.ChangeMs, r.Compute.EncodeMs,
			r.Compute.DecodeMsPerVisit, r.Compute.TotalMs, r.Compute.DecodeSharePct)
	}
	fmt.Fprintf(w, "tiled-store run identical across worker counts: %v (per-tile splice exercised: %v)\n",
		r.TiledStoreDeterministic, r.TiledStoreSpliceExercised)
	if r.TiledRefDecode != nil && r.TiledRefDecode.SpliceTilesTotal > 0 {
		fmt.Fprintf(w, "tiled ground splice: re-encoded %d of %d codec tiles (%.1f%% saved)\n",
			r.TiledRefDecode.SpliceTilesReencoded, r.TiledRefDecode.SpliceTilesTotal,
			100*(1-float64(r.TiledRefDecode.SpliceTilesReencoded)/float64(r.TiledRefDecode.SpliceTilesTotal)))
	}
	fmt.Fprintf(w, "lossy-link run identical across worker counts: %v (faults exercised: %v)\n",
		r.LossDeterministic, r.LossFaultsExercised)
	fmt.Fprintf(w, "contended constellation run identical across worker counts: %v (contention exercised: %v)\n",
		r.ConstDeterministic, r.ConstContentionExercised)
	if r.Storage != nil {
		if err := r.Storage.Render(w); err != nil {
			return err
		}
	}
	if r.Loss != nil {
		if err := r.Loss.Render(w); err != nil {
			return err
		}
	}
	if r.Const != nil {
		if err := r.Const.Render(w); err != nil {
			return err
		}
	}
	if r.path != "" {
		fmt.Fprintf(w, "snapshot written to %s\n", r.path)
	}
	return nil
}

// RefDecodeCost is the decode-on-visit price of a compressed reference
// store: how many stored frames were decoded, how many lookups the
// decoded-plane LRU absorbed instead, and the wall-clock the decodes
// took.
type RefDecodeCost struct {
	Decodes     int64   `json:"decodes"`
	LRUHits     int64   `json:"lru_hits"`
	WallSeconds float64 `json:"wall_seconds"`
	// SpliceTilesReencoded/SpliceTilesTotal record the tiled profile's
	// per-tile splice savings: codec tiles the ground actually re-encoded
	// for delta updates versus the tiles whole-mirror re-encodes would
	// have touched. Zero on the monolithic profile.
	SpliceTilesReencoded int64 `json:"splice_tiles_reencoded,omitempty"`
	SpliceTilesTotal     int64 `json:"splice_tiles_total,omitempty"`
}

// OnboardComputeBudget is the Fig-16-style per-image on-board runtime
// with decode-on-visit charged as its own line: the compressed store is
// not free, so the snapshot records the cloud + change + encode budget
// of one capture NEXT TO the measured decode cost per reference visit,
// instead of leaving DecodeWall advisory-only.
type OnboardComputeBudget struct {
	// CloudMs/ChangeMs/EncodeMs are Earth+'s Fig 16 per-image component
	// runtimes on this machine (cheap cloud detector, change detection at
	// detection resolution, shared γ encode).
	CloudMs  float64 `json:"cloud_ms"`
	ChangeMs float64 `json:"change_ms"`
	EncodeMs float64 `json:"encode_ms"`
	// DecodeMsPerVisit spreads the compressed run's decode-on-visit wall
	// over its reference visits (decodes + LRU hits).
	DecodeMsPerVisit float64 `json:"decode_ms_per_visit"`
	// TotalMs is the per-image budget including the decode charge, and
	// DecodeSharePct decode-on-visit's share of it.
	TotalMs        float64 `json:"total_ms"`
	DecodeSharePct float64 `json:"decode_share_pct"`
}

// simBenchDays is the measured evaluation window.
const simBenchDays = 4

// SimScaling measures a whole-constellation Earth+ run at worker counts
// 1, 2, 4 and GOMAXPROCS: the engine's multi-core scaling probe, with the
// codec pinned to one thread. ScalingValid is false when the host has
// fewer than two scheduler cores — the sweep still runs (the determinism
// bit is as meaningful as ever) but the speedup figures are host
// artifacts.
func SimScaling() (*SimScalingResult, error) {
	cfg := richConfig(QuickScale())
	const satellites = 8
	res := &SimScalingResult{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ScalingValid: runtime.GOMAXPROCS(0) >= 2,
		Satellites:   satellites,
		Locations:    len(cfg.Locations),
		Days:         simBenchDays,
	}

	mkRun := func(workers int) (*sim.Env, sim.System, error) {
		env := envFor(cfg, simBenchOrbit(satellites), defaultUplinkDivisor)
		env.Parallelism = workers
		// Pin the codec to one thread so the measurement isolates the
		// engine's location sharding from band-level parallelism.
		spec := registry.Spec{Codec: codec.Options{Parallelism: 1}}
		sys, err := registry.New(core.SystemName, env, spec)
		return env, sys, err
	}

	// The bootstrap phase is serial by design (it runs once, before any
	// day), so it is measured separately — with a zero-day window — and
	// subtracted from each timed run; otherwise its fixed cost would
	// deflate every speedup figure.
	bootSec := 0.0
	{
		env, sys, err := mkRun(1)
		if err != nil {
			return nil, fmt.Errorf("simbench: bootstrap run: %w", err)
		}
		t0 := time.Now()
		if _, err := sim.RunStream(env, sys, 10, 40, 40, nil); err != nil {
			return nil, fmt.Errorf("simbench: bootstrap run: %w", err)
		}
		bootSec = time.Since(t0).Seconds()
	}
	res.BootstrapSeconds = bootSec

	measure := func(workers int) ([]sim.Record, float64, error) {
		env, sys, err := mkRun(workers)
		if err != nil {
			return nil, 0, err
		}
		var recs []sim.Record
		t0 := time.Now()
		_, err = sim.RunStream(env, sys, 10, 40, 40+simBenchDays, func(r *sim.Record) {
			recs = append(recs, *r)
		})
		if err != nil {
			return nil, 0, err
		}
		sec := time.Since(t0).Seconds() - bootSec
		if sec < 0 {
			sec = 0
		}
		return recs, sec, nil
	}

	serialRecs, serialSec, err := measure(1)
	if err != nil {
		return nil, fmt.Errorf("simbench: serial run: %w", err)
	}
	res.SerialSeconds = serialSec
	res.CapturesPerRun = len(serialRecs)
	res.Runs = append(res.Runs, SimBenchRun{Workers: 1, Seconds: serialSec, SpeedupVsSerial: 1})
	res.Deterministic = true

	workerSweep := []int{2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerSweep = append(workerSweep, p)
	}
	for _, wkr := range workerSweep {
		recs, sec, err := measure(wkr)
		if err != nil {
			return nil, fmt.Errorf("simbench: %d workers: %w", wkr, err)
		}
		if !sim.RecordsEqualIgnoringTimings(serialRecs, recs) {
			res.Deterministic = false
		}
		res.Runs = append(res.Runs, SimBenchRun{Workers: wkr, Seconds: sec, SpeedupVsSerial: serialSec / sec})
	}
	return res, nil
}

// SimBench runs the scaling probe plus the storage, link-loss and
// constellation sweeps with their worker-count determinism checks and,
// when outPath is non-empty, writes the JSON snapshot there
// (BENCH_sim.json).
func SimBench(outPath string) (*SimBenchResult, error) {
	scaling, err := SimScaling()
	if err != nil {
		return nil, err
	}
	res := &SimBenchResult{SimScalingResult: *scaling, path: outPath}

	// Storage snapshot: the budget sweep plus a determinism check of the
	// eviction paths across worker counts, both at a compact scale so the
	// snapshot stays cheap to regenerate.
	storageSc := storageSnapshotScale()
	sweep, err := StorageSweep(storageSc)
	if err != nil {
		return nil, fmt.Errorf("simbench: storage sweep: %w", err)
	}
	res.Storage = sweep
	det, evicted, _, err := storageDeterminismCheck(storageSc, []int{4}, false, false)
	if err != nil {
		return nil, fmt.Errorf("simbench: storage determinism: %w", err)
	}
	res.StorageDeterministic = det
	res.StorageEvictionsExercised = evicted
	cdet, cevicted, cdecode, err := storageDeterminismCheck(storageSc, []int{4}, true, false)
	if err != nil {
		return nil, fmt.Errorf("simbench: compressed-refs determinism: %w", err)
	}
	res.RefCompressionDeterministic = cdet
	res.RefCompressionEvictionsExercised = cevicted
	res.RefDecode = cdecode

	// The tiled (EPT1) storage profile under the same contract: per-tile
	// ground splices and the tiled store must stay record-identical
	// across worker counts, and the splice counters must show the
	// profile actually saved tile re-encodes.
	tdet, _, tdecode, err := storageDeterminismCheck(storageSc, []int{4}, true, true)
	if err != nil {
		return nil, fmt.Errorf("simbench: tiled-store determinism: %w", err)
	}
	res.TiledStoreDeterministic = tdet
	res.TiledRefDecode = tdecode
	if tdecode != nil {
		res.TiledStoreSpliceExercised = tdecode.SpliceTilesTotal > 0 &&
			tdecode.SpliceTilesReencoded < tdecode.SpliceTilesTotal
	}

	// Charge decode-on-visit into the Fig-16-style per-image compute
	// budget: component runtimes from the Fig 16 measurement, the decode
	// line from the compressed run above.
	if fig16, err := Fig16(storageSc); err == nil && res.RefDecode != nil {
		earthIdx := len(fig16.Systems) - 1 // Earth+ is the last system
		b := &OnboardComputeBudget{
			CloudMs:  fig16.CloudSec[earthIdx] * 1e3,
			ChangeMs: fig16.ChangeSec[earthIdx] * 1e3,
			EncodeMs: fig16.EncodeSec[earthIdx] * 1e3,
		}
		if visits := res.RefDecode.Decodes + res.RefDecode.LRUHits; visits > 0 {
			b.DecodeMsPerVisit = res.RefDecode.WallSeconds * 1e3 / float64(visits)
		}
		b.TotalMs = b.CloudMs + b.ChangeMs + b.EncodeMs + b.DecodeMsPerVisit
		if b.TotalMs > 0 {
			b.DecodeSharePct = 100 * b.DecodeMsPerVisit / b.TotalMs
		}
		res.Compute = b
	} else if err != nil {
		return nil, fmt.Errorf("simbench: fig16 compute budget: %w", err)
	}

	// Link-loss snapshot: the loss sweep plus a determinism check of the
	// fault-injection and retransmit paths across worker counts, at the
	// same compact scale.
	lossSweep, err := LossSweep(storageSc)
	if err != nil {
		return nil, fmt.Errorf("simbench: loss sweep: %w", err)
	}
	res.Loss = lossSweep
	ldet, lfaulted, err := lossDeterminismCheck(storageSc, []int{4}, 0.05)
	if err != nil {
		return nil, fmt.Errorf("simbench: loss determinism: %w", err)
	}
	res.LossDeterministic = ldet
	res.LossFaultsExercised = lfaulted

	// Constellation snapshot: the fleet x station sweep plus a determinism
	// check of the contended scheduler, per-contact meters and contact log
	// across worker counts, at a compact single-location scale.
	constSc := constSnapshotScale()
	constSweep, err := ConstellationSweep(constSc)
	if err != nil {
		return nil, fmt.Errorf("simbench: constellation sweep: %w", err)
	}
	res.Const = constSweep
	kdet, kcontended, err := constDeterminismCheck(constSc, []int{4})
	if err != nil {
		return nil, fmt.Errorf("simbench: constellation determinism: %w", err)
	}
	res.ConstDeterministic = kdet
	res.ConstContentionExercised = kcontended

	if outPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("simbench: writing snapshot: %w", err)
		}
	}
	return res, nil
}

// simBenchOrbit visits every location with ~2 satellites per day: a dense
// whole-constellation day without an unrealistic all-sats-every-day
// schedule.
func simBenchOrbit(satellites int) orbit.Constellation {
	return orbit.Constellation{Satellites: satellites, RevisitDays: 4}
}

// storageSnapshotScale sizes the storage sweep recorded in BENCH_sim.json:
// a few locations and a short evaluation window — enough churn for
// evictions and miss-fallbacks at the small budget points, cheap enough to
// regenerate with every snapshot.
func storageSnapshotScale() Scale {
	return Scale{
		Size:         scene.Quick,
		ProfileStart: 0,
		ProfileDays:  25,
		EvalStart:    40,
		EvalDays:     20,
		MaxLocations: 3,
	}
}
