package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"earthplus/internal/metrics"
	"earthplus/internal/sim"
)

// fig12Gamma is the fixed per-tile quality used by the distribution,
// time-series and per-location experiments.
const fig12Gamma = 1.0

// Fig12Result holds the per-capture distributions of downloaded-tile
// fraction and PSNR for all three systems (paper Fig 12).
type Fig12Result struct {
	TileFrac map[string][]float64
	PSNR     map[string][]float64
}

// Fig12 runs the three systems on the rich-content dataset at a fixed γ
// and collects the raw distributions, streamed per record (only the two
// floats the figure needs survive each capture).
func Fig12(sc Scale) (*Fig12Result, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	type dist struct{ tile, psnr []float64 }
	dists := map[string]*dist{}
	_, err := threeSystemsStream(sc, mkEnv, theta, fig12Gamma, func(name string) func(*sim.Record) {
		d := &dist{}
		dists[name] = d
		return func(r *sim.Record) {
			if r.Dropped {
				return
			}
			d.tile = append(d.tile, r.DownTileFrac)
			if !math.IsNaN(r.PSNR) && !math.IsInf(r.PSNR, 0) {
				d.psnr = append(d.psnr, r.PSNR)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{TileFrac: map[string][]float64{}, PSNR: map[string][]float64{}}
	for _, name := range sortedKeys(dists) {
		res.TileFrac[name] = dists[name].tile
		res.PSNR[name] = dists[name].psnr
	}
	return res, nil
}

// ID implements Result.
func (r *Fig12Result) ID() string { return "Figure 12" }

// Render implements Result.
func (r *Fig12Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "CDF of downloaded tiles per capture:")
	rows := [][]string{{"system", "p10", "p25", "p50", "p75", "p90"}}
	for _, name := range []string{"SatRoI", "Kodan", "Earth+"} {
		xs := r.TileFrac[name]
		row := []string{name}
		for _, p := range []float64{10, 25, 50, 75, 90} {
			row = append(row, fmt.Sprintf("%.0f%%", metrics.Percentile(xs, p)*100))
		}
		rows = append(rows, row)
	}
	metrics.Table(w, rows)
	fmt.Fprintln(w, "\nCDF of PSNR per capture (dB):")
	rows = [][]string{{"system", "p10", "p25", "p50", "p75", "p90"}}
	for _, name := range []string{"SatRoI", "Kodan", "Earth+"} {
		xs := r.PSNR[name]
		row := []string{name}
		for _, p := range []float64{10, 25, 50, 75, 90} {
			row = append(row, fmt.Sprintf("%.1f", metrics.Percentile(xs, p)))
		}
		rows = append(rows, row)
	}
	metrics.Table(w, rows)
	fmt.Fprintln(w, "(paper: Earth+ downloads <20% of tiles for most images while the baselines exceed 80%)")
	return nil
}

// Fig13Point is one capture in the one-location time series.
type Fig13Point struct {
	Day      int
	TileFrac float64
	PSNR     float64
}

// Fig13Result is the one-year single-location time series (paper Fig 13).
type Fig13Result struct {
	Series map[string][]Fig13Point
}

// Fig13 runs the three systems and extracts location 0's trace, streamed
// per record.
func Fig13(sc Scale) (*Fig13Result, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	series := map[string]*[]Fig13Point{}
	_, err := threeSystemsStream(sc, mkEnv, theta, fig12Gamma, func(name string) func(*sim.Record) {
		pts := &[]Fig13Point{}
		series[name] = pts
		return func(r *sim.Record) {
			if r.Loc != 0 || r.Dropped {
				return
			}
			*pts = append(*pts, Fig13Point{Day: r.Day, TileFrac: r.DownTileFrac, PSNR: r.PSNR})
		}
	})
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Series: map[string][]Fig13Point{}}
	for _, name := range sortedKeys(series) {
		pts := series[name]
		// Records stream in deterministic day order already; the sort is
		// kept as a guard for future multi-shard emitters.
		sort.Slice(*pts, func(i, j int) bool { return (*pts)[i].Day < (*pts)[j].Day })
		res.Series[name] = *pts
	}
	return res, nil
}

// ID implements Result.
func (r *Fig13Result) ID() string { return "Figure 13" }

// Render implements Result.
func (r *Fig13Result) Render(w io.Writer) error {
	for _, name := range []string{"Earth+", "SatRoI", "Kodan"} {
		pts := r.Series[name]
		var xs, fr, ps []float64
		for _, p := range pts {
			xs = append(xs, float64(p.Day))
			fr = append(fr, p.TileFrac*100)
			if !math.IsNaN(p.PSNR) {
				ps = append(ps, p.PSNR)
			}
		}
		metrics.Series(w, fmt.Sprintf("%s downloaded tiles over time", name), "day", "%tiles", xs, fr, 60, 8)
		fmt.Fprintf(w, "  mean downloaded %.0f%%, mean PSNR %.1f dB\n\n", metrics.Mean(fr), metrics.Mean(ps))
	}
	fmt.Fprintln(w, "(paper: Earth+ downloads 5-10x fewer areas most of the time, with occasional full guaranteed downloads)")
	return nil
}

// Fig14Result is the downlink saving per location and per band (paper
// Fig 14: better at 10 of 11 locations, worst at the snowy D and H;
// improvements on all 13 bands, largest on ground bands).
type Fig14Result struct {
	Locations   []string
	LocSaving   []float64
	Bands       []string
	BandSaving  []float64
	BaselineSys string
}

// fig14Agg streams one system's records into the per-location and
// per-band byte sums Fig 14 needs, plus the run summary — constant memory
// per system regardless of the evaluation window.
type fig14Agg struct {
	acc             *sim.Accumulator
	locSum, bandSum []float64
	locN, bandN     []int
}

func newFig14Agg(nLoc, nBand int) *fig14Agg {
	return &fig14Agg{
		acc:    sim.NewAccumulator(),
		locSum: make([]float64, nLoc), locN: make([]int, nLoc),
		bandSum: make([]float64, nBand), bandN: make([]int, nBand),
	}
}

func (a *fig14Agg) add(r *sim.Record) {
	a.acc.Add(r)
	if r.Dropped {
		return
	}
	a.locSum[r.Loc] += float64(r.DownBytes)
	a.locN[r.Loc]++
	for b, n := range r.PerBandBytes {
		if b < len(a.bandSum) {
			a.bandSum[b] += float64(n)
			a.bandN[b]++
		}
	}
}

func (a *fig14Agg) meanAtLoc(loc int) float64 {
	if a.locN[loc] == 0 {
		return math.NaN()
	}
	return a.locSum[loc] / float64(a.locN[loc])
}

func (a *fig14Agg) meanAtBand(b int) float64 {
	if a.bandN[b] == 0 {
		return math.NaN()
	}
	return a.bandSum[b] / float64(a.bandN[b])
}

// Fig14 computes savings against the strongest baseline with PSNR not
// above Earth+'s, per the paper's definition.
func Fig14(sc Scale) (*Fig14Result, error) {
	mkEnv, theta := datasetEnv(sc, RichContent)
	env := mkEnv()
	nLoc := env.Scene.NumLocations()
	bands := env.Scene.Bands()
	aggs := map[string]*fig14Agg{}
	runs, err := threeSystemsStream(sc, mkEnv, theta, fig12Gamma, func(name string) func(*sim.Record) {
		a := newFig14Agg(nLoc, len(bands))
		aggs[name] = a
		return a.add
	})
	if err != nil {
		return nil, err
	}
	down := dovesDownlink()
	earth := aggs["Earth+"].acc.Summary(runs["Earth+"], down)
	// Strongest qualifying baseline: lowest bytes among those whose PSNR
	// does not exceed Earth+'s; if none qualifies, the lowest-bytes one.
	baseName := ""
	var baseBytes float64 = math.Inf(1)
	for _, name := range []string{"Kodan", "SatRoI"} {
		s := aggs[name].acc.Summary(runs[name], down)
		qualifies := s.MeanPSNR <= earth.MeanPSNR
		if (qualifies || baseName == "") && s.MeanDownBytes < baseBytes {
			baseName, baseBytes = name, s.MeanDownBytes
		}
	}
	base := aggs[baseName]

	res := &Fig14Result{BaselineSys: baseName}
	// Per location.
	for loc := 0; loc < nLoc; loc++ {
		res.Locations = append(res.Locations, env.Scene.Location(loc).Name)
		res.LocSaving = append(res.LocSaving, metrics.Ratio(base.meanAtLoc(loc), aggs["Earth+"].meanAtLoc(loc)))
	}
	// Per band.
	for b := range bands {
		res.Bands = append(res.Bands, bands[b].Name)
		res.BandSaving = append(res.BandSaving, metrics.Ratio(base.meanAtBand(b), aggs["Earth+"].meanAtBand(b)))
	}
	return res, nil
}

// ID implements Result.
func (r *Fig14Result) ID() string { return "Figure 14" }

// Render implements Result.
func (r *Fig14Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "baseline: strongest qualifying = %s\n", r.BaselineSys)
	metrics.Bar(w, "downlink saving by location (x):", r.Locations, r.LocSaving, "x", 40)
	fmt.Fprintln(w, "(paper: better at 10/11 locations; snow-prone D and H improve least)")
	metrics.Bar(w, "downlink saving by band (x):", r.Bands, r.BandSaving, "x", 40)
	fmt.Fprintln(w, "(paper: improvements on all 13 bands; largest on ground bands, smallest on atmosphere bands)")
	return nil
}
