package experiments

import (
	"fmt"
	"io"

	"earthplus/internal/codec"
	"earthplus/internal/metrics"
	"earthplus/internal/scene"
)

// Fig17Result decomposes the reference compression ratio (paper Fig 17:
// downsampling plus update-changes exceed the ratio the uplink requires).
type Fig17Result struct {
	Uncompressed   float64 // always 1
	WithDownsample float64
	WithUpdates    float64
	Required       float64
}

// Fig17 measures the rich-content dataset: the ratio achieved by
// downsampling + encoding a whole reference, then the amortised ratio when
// only changed reference tiles are uploaded (measured from an Earth+ run).
func Fig17(sc Scale) (*Fig17Result, error) {
	cfg := richConfig(sc)
	s := scene.New(cfg)
	down := 4
	rawPerLoc := float64(cfg.Width) * float64(cfg.Height) * float64(len(cfg.Bands)) * 2

	// Downsampling + codec, full reference.
	ref := s.GroundTruth(0, sc.EvalStart)
	refLow, err := ref.Downsample(down)
	if err != nil {
		return nil, err
	}
	var lowBytes float64
	for b := 0; b < refLow.NumBands(); b++ {
		opts := codec.DefaultOptions()
		opts.BudgetBytes = int(6.0 * float64(refLow.Width*refLow.Height) / 8)
		data, err := codec.EncodePlane(refLow.Plane(b), refLow.Width, refLow.Height, opts)
		if err != nil {
			return nil, err
		}
		lowBytes += float64(len(data))
	}

	// Delta updates: measured uplink traffic per (location, day) from an
	// Earth+ run with an unconstrained uplink.
	theta := profiledTheta(sc, cfg, down)
	env := envFor(cfg, richOrbit(), 0)
	sys, err := earthPlus(env, theta, fig12Gamma)
	if err != nil {
		return nil, err
	}
	run, err := runSystemStream(sc, env, sys, nil)
	if err != nil {
		return nil, err
	}
	var upTotal float64
	//lint:deterministic integer-valued sum over map values is order-independent
	for _, b := range run.UpBytesByDay {
		upTotal += float64(b)
	}
	perLocDay := upTotal / float64(run.Days) / float64(len(cfg.Locations))
	if perLocDay <= 0 {
		perLocDay = 1
	}

	return &Fig17Result{
		Uncompressed:   1,
		WithDownsample: rawPerLoc / lowBytes,
		WithUpdates:    rawPerLoc / perLocDay,
		Required:       defaultUplinkDivisor,
	}, nil
}

// ID implements Result.
func (r *Fig17Result) ID() string { return "Figure 17" }

// Render implements Result.
func (r *Fig17Result) Render(w io.Writer) error {
	metrics.Bar(w, "reference compression ratio:", []string{
		"uncompressed",
		"w/ downsampling",
		"w/ downsampling + update changes",
	}, []float64{r.Uncompressed, r.WithDownsample, r.WithUpdates}, "x", 40)
	fmt.Fprintf(w, "required for the scaled uplink: %.0fx\n", r.Required)
	fmt.Fprintf(w, "achieved %.0fx %s the requirement (paper: >10,000x at Doves scale, where the\n",
		r.WithUpdates, aboveBelow(r.WithUpdates >= r.Required))
	fmt.Fprintln(w, " downsampling factor alone is 2601x; our scene is smaller so ratios scale down)")
	return nil
}

func aboveBelow(ok bool) string {
	if ok {
		return "exceeds"
	}
	return "is below"
}

// Fig18Point is one uplink-budget sample.
type Fig18Point struct {
	UplinkBytesPerDay int64
	DownlinkMbps      float64
	PSNR              float64
	MeanRefAge        float64
}

// Fig18Result shows downlink demand falling as the uplink grows (paper
// Fig 18: 22 Mbps less downlink at 4 Mbps uplink).
type Fig18Result struct {
	Points []Fig18Point
}

// Fig18 sweeps the uplink budget divisor on the rich-content dataset.
func Fig18(sc Scale) (*Fig18Result, error) {
	cfg := richConfig(sc)
	theta := profiledTheta(sc, cfg, 4)
	res := &Fig18Result{}
	for _, div := range sc.UplinkDivisors {
		env := envFor(cfg, richOrbit(), div)
		sys, err := earthPlus(env, theta, fig12Gamma)
		if err != nil {
			return nil, err
		}
		s, err := summarizeSystem(sc, env, sys)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig18Point{
			UplinkBytesPerDay: env.UplinkBytesPerDay,
			DownlinkMbps:      s.RequiredDownlinkBps / 1e6,
			PSNR:              s.MeanPSNR,
			MeanRefAge:        s.MeanRefAge,
		})
	}
	return res, nil
}

// ID implements Result.
func (r *Fig18Result) ID() string { return "Figure 18" }

// Render implements Result.
func (r *Fig18Result) Render(w io.Writer) error {
	rows := [][]string{{"uplink (KB/day/sat)", "downlink (kbps)", "PSNR (dB)"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", float64(p.UplinkBytesPerDay)/1024),
			fmt.Sprintf("%.3f", p.DownlinkMbps*1e3),
			fmt.Sprintf("%.1f", p.PSNR),
		})
	}
	metrics.Table(w, rows)
	if n := len(r.Points); n > 1 {
		first, last := r.Points[0], r.Points[n-1]
		fmt.Fprintf(w, "growing the uplink %.0fx cuts the required downlink by %.0f%% (paper: 22 Mbps less at 4 Mbps uplink)\n",
			float64(last.UplinkBytesPerDay)/float64(first.UplinkBytesPerDay),
			(1-last.DownlinkMbps/first.DownlinkMbps)*100)
	}
	return nil
}

// Fig19Result is the compression ratio versus constellation size (paper
// Fig 19: 3x at one satellite growing to 10x at sixteen).
type Fig19Result struct {
	Fleet  []int
	Ratios []float64 // 1 / mean downloaded-tile fraction
}

// Fig19 runs Earth+ on the sampled large-constellation dataset for each
// fleet size, using the paper's estimation: compression ratio is the
// inverse of the average changed (downloaded) area.
func Fig19(sc Scale) (*Fig19Result, error) {
	cfg := scene.LargeConstellationSampled(sc.Size)
	theta := profiledTheta(sc, cfg, 4)
	res := &Fig19Result{}
	for _, n := range sc.FleetSweep {
		env := envFor(cfg, planetOrbit(n), defaultUplinkDivisor)
		sys, err := earthPlus(env, theta, fig12Gamma)
		if err != nil {
			return nil, err
		}
		s, err := summarizeSystem(sc, env, sys)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if s.MeanTileFrac > 0 {
			ratio = 1 / s.MeanTileFrac
		}
		res.Fleet = append(res.Fleet, n)
		res.Ratios = append(res.Ratios, ratio)
	}
	return res, nil
}

// ID implements Result.
func (r *Fig19Result) ID() string { return "Figure 19" }

// Render implements Result.
func (r *Fig19Result) Render(w io.Writer) error {
	labels := []string{"download everything"}
	values := []float64{1}
	for i, n := range r.Fleet {
		labels = append(labels, fmt.Sprintf("Earth+ %d satellites", n))
		values = append(values, r.Ratios[i])
	}
	metrics.Bar(w, "compression ratio vs constellation size:", labels, values, "x", 40)
	fmt.Fprintln(w, "(paper: 3x with 1 satellite growing to 10x with 16)")
	return nil
}
