package experiments

import (
	"fmt"
	"io"

	"earthplus/internal/core"
	"earthplus/internal/metrics"
	"earthplus/internal/registry"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// profiled change threshold θ, the guaranteed-download period, and
// ground-side rejection of cloud-contaminated tiles. Each runs Earth+ on
// the sampled large-constellation dataset with one knob varied.

// AblationPoint is one knob setting's outcome.
type AblationPoint struct {
	Label         string
	BytesPerCap   float64
	TileFrac      float64
	MeanPSNR      float64
	P10PSNR       float64
	MeanRefAge    float64
	UpBytesPerDay float64
}

// AblationResult is a set of knob settings for one design choice.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// ID implements Result.
func (r *AblationResult) ID() string { return "Ablation: " + r.Name }

// Render implements Result.
func (r *AblationResult) Render(w io.Writer) error {
	rows := [][]string{{"setting", "bytes/capture", "tiles", "PSNR", "p10 PSNR", "ref age"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.0f", p.BytesPerCap),
			fmt.Sprintf("%.0f%%", p.TileFrac*100),
			fmt.Sprintf("%.1f", p.MeanPSNR),
			fmt.Sprintf("%.1f", p.P10PSNR),
			fmt.Sprintf("%.1f d", p.MeanRefAge),
		})
	}
	metrics.Table(w, rows)
	return nil
}

// ablationRun executes Earth+ under the given registry spec and collects
// the knob outcome. A zero spec.Theta uses the profiled θ, matching every
// non-ablated run; system-specific knobs travel as spec.Params so every
// variant flows through the same registry code path.
func ablationRun(sc Scale, label string, spec registry.Spec) (AblationPoint, error) {
	cfg := scene.LargeConstellationSampled(sc.Size)
	env := envFor(cfg, planetOrbit(8), defaultUplinkDivisor)
	if spec.Theta == 0 {
		spec.Theta = profiledTheta(sc, cfg, core.DefaultConfig().RefDownsample)
	}
	sys, err := registry.New(core.SystemName, env, spec)
	if err != nil {
		return AblationPoint{}, err
	}
	// Stream: the summary accumulates incrementally and only the PSNR
	// samples (for the p10 quality floor) are retained per capture.
	acc := sim.NewAccumulator()
	var psnrs []float64
	run, err := runSystemStream(sc, env, sys, func(rec *sim.Record) {
		acc.Add(rec)
		if !rec.Dropped && rec.PSNR == rec.PSNR { // skip NaN
			psnrs = append(psnrs, rec.PSNR)
		}
	})
	if err != nil {
		return AblationPoint{}, err
	}
	s := acc.Summary(run, dovesDownlink())
	return AblationPoint{
		Label:         label,
		BytesPerCap:   s.MeanDownBytes,
		TileFrac:      s.MeanTileFrac,
		MeanPSNR:      s.MeanPSNR,
		P10PSNR:       metrics.Percentile(psnrs, 10),
		MeanRefAge:    s.MeanRefAge,
		UpBytesPerDay: s.MeanUpBytesPerDay,
	}, nil
}

// AblationTheta contrasts the profiled θ against fixed settings: too low
// re-downloads noise, too high misses changes (lower quality floor).
func AblationTheta(sc Scale) (*AblationResult, error) {
	cfg := scene.LargeConstellationSampled(sc.Size)
	profiled := profiledTheta(sc, cfg, core.DefaultConfig().RefDownsample)
	res := &AblationResult{Name: "change threshold θ (profiled vs fixed)"}
	for _, v := range []struct {
		label string
		theta float64
	}{
		{"θ/4 (over-sensitive)", profiled / 4},
		{fmt.Sprintf("profiled θ=%.4f", profiled), profiled},
		{"4θ (under-sensitive)", profiled * 4},
	} {
		theta := v.theta
		p, err := ablationRun(sc, v.label, registry.Spec{Theta: theta})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationGuarantee sweeps the guaranteed-download period: shorter periods
// raise the quality floor (p10 PSNR) at extra downlink cost; disabling it
// lets undetected drift linger.
func AblationGuarantee(sc Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "guaranteed-download period"}
	for _, v := range []struct {
		label string
		days  int
	}{
		{"every 10 days", 10},
		{"every 30 days (paper)", 30},
		{"disabled", 1 << 20},
	} {
		days := v.days
		p, err := ablationRun(sc, v.label, registry.Spec{Params: map[string]float64{"guarantee_days": float64(days)}})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// AblationReject contrasts ground-side rejection of cloud-contaminated
// downloaded tiles against the paper's let-it-self-heal default.
func AblationReject(sc Scale) (*AblationResult, error) {
	res := &AblationResult{Name: "ground-side cloud-tile rejection"}
	for _, v := range []struct {
		label string
		frac  float64
	}{
		{"off: re-download self-heals (default)", 0},
		{"reject tiles >50% detected cloud", 0.5},
		{"reject tiles >25% detected cloud", 0.25},
	} {
		frac := v.frac
		p, err := ablationRun(sc, v.label, registry.Spec{Params: map[string]float64{"reject_cloud_frac": frac}})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
