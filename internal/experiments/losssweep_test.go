package experiments

import (
	"strings"
	"testing"
)

// TestLossSweepGracefulAndBudgeted pins the loss sweep's contract: the
// perfect-channel point carries no faults and no retransmissions, every
// lossy point actually exercised the fault taxonomy, quality degrades
// gracefully (PSNR never increases as the loss rate grows), NACKed
// updates were retransmitted, and — checked inside LossSweep itself, a
// returned error here — no day's uplink ever exceeded the budget:
// retransmissions ride inside it, never on top of it.
func TestLossSweepGracefulAndBudgeted(t *testing.T) {
	res, err := LossSweep(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(lossSweepRates) {
		t.Fatalf("sweep shape: %d points, want %d", len(res.Points), len(lossSweepRates))
	}
	clean := res.Points[0]
	if clean.LossRate != 0 {
		t.Fatalf("first point at rate %v, want the perfect channel", clean.LossRate)
	}
	if clean.Link != (LossPoint{}.Link) {
		t.Fatalf("perfect channel recorded link activity: %+v", clean.Link)
	}
	if clean.MeanPSNR <= 0 {
		t.Fatalf("perfect channel PSNR %.1f", clean.MeanPSNR)
	}
	for i, p := range res.Points[1:] {
		if p.Link.UplinkUpdates == 0 || p.Link.DownlinkFrames == 0 {
			t.Fatalf("rate %v: channel never engaged: %+v", p.LossRate, p.Link)
		}
		// Mean PSNR averages over evaluable captures only; a lost downlink
		// frame REMOVES a capture from the average, which can nudge the
		// mean up by a few hundredths of a dB between adjacent rates. The
		// guard is against real quality regressions, so it tolerates that
		// composition effect.
		if prev := res.Points[i]; p.MeanPSNR > prev.MeanPSNR+0.1 {
			t.Fatalf("PSNR rose from %.2f to %.2f as loss grew %v -> %v: degradation not monotone",
				prev.MeanPSNR, p.MeanPSNR, prev.LossRate, p.LossRate)
		}
	}
	// Sub-percent rates may legitimately fire no faults over a compact
	// run's frame count; the 5% point must exercise the whole path —
	// faults, NACKs, retransmissions — and still degrade gracefully.
	// Outcomes are deterministic, so this is a stable requirement, not a
	// statistical one.
	worst := res.Points[len(res.Points)-1]
	faults := worst.Link.UplinkDropped + worst.Link.UplinkCorrupted +
		worst.Link.DownlinkDropped + worst.Link.DownlinkCorrupted
	if faults == 0 {
		t.Fatalf("rate %v: no faults fired: %+v", worst.LossRate, worst.Link)
	}
	if worst.Link.Retransmits == 0 || worst.Link.RetransmitBytes == 0 {
		t.Fatalf("rate %v: lost updates never retransmitted: %+v", worst.LossRate, worst.Link)
	}
	if worst.MeanPSNR < 20 {
		t.Fatalf("PSNR %.1f dB at %v loss: degradation not graceful", worst.MeanPSNR, worst.LossRate)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "retx") || !strings.Contains(out, "down drop") || res.ID() == "" {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

// TestLossDeterminismCheck pins the snapshot's determinism bit: the lossy
// configuration it records must be record-identical across worker counts
// with faults actually exercised.
func TestLossDeterminismCheck(t *testing.T) {
	det, faulted, err := lossDeterminismCheck(Tiny(), []int{4}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Fatal("lossy run not deterministic across worker counts")
	}
	if !faulted {
		t.Fatal("5% loss fired no faults; the determinism bit proves nothing")
	}
}
