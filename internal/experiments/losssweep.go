package experiments

import (
	"fmt"
	"io"

	"earthplus/internal/core"
	"earthplus/internal/metrics"
	"earthplus/internal/orbit"
	"earthplus/internal/registry"
	"earthplus/internal/sim"
)

// The loss sweep is the robustness companion to the storage sweep: the
// paper's link model assumes every frame arrives, but real S-band uplinks
// and X-band downlinks drop, corrupt and truncate frames and lose whole
// contact windows. The sweep runs Earth+ over the deterministic fault
// channel at increasing aggregate loss rates and records how quality
// degrades: lost RefUpdates are NACKed and retransmitted inside the same
// uplink budget (never on top of it), CRC-rejected frames leave the
// stale-but-coherent reference in place, and lost downlink frames cost
// their bandwidth without yielding imagery. Degradation must be graceful
// — PSNR drifts down with the loss rate; nothing panics, wedges or
// silently splices corrupted references.

// lossSweepRates are the aggregate link_loss points: a perfect channel,
// then 0.1%, 1% and 5% frame loss.
var lossSweepRates = []float64{0, 0.001, 0.01, 0.05}

// lossSweepSeed pins the deterministic fault pattern the sweep measures.
const lossSweepSeed = 1

// lossOrbit is the constellation the loss runs fly: denser revisits than
// the Sentinel-2-like default so the compact scales still push enough
// frames through the channel for sub-percent loss rates to resolve into
// actual fault events.
func lossOrbit() orbit.Constellation { return DenseOrbit(4) }

// LossPoint is one measured loss rate.
type LossPoint struct {
	// LossRate is the aggregate link_loss knob (spread over drops,
	// corruptions, truncations and contact cancellations).
	LossRate float64 `json:"loss_rate"`
	MeanPSNR float64 `json:"mean_psnr"`
	// Ratio is raw captured bytes over downlinked bytes.
	Ratio float64 `json:"compression_ratio"`
	// UpBytesPerDay is the uplink actually consumed; retransmissions are
	// inside this figure, so it can never exceed the budget.
	UpBytesPerDay float64 `json:"uplink_bytes_per_day"`
	// UplinkBudgetPerDay is the daily uplink budget the run packed
	// against, for reading the margin off the snapshot directly.
	UplinkBudgetPerDay int64 `json:"uplink_budget_per_day"`
	// Misses counts reference-miss fallbacks (a reference lost in transit
	// degrades to PR-4's reference-free encoding until re-seeded).
	Misses int64 `json:"misses"`
	// Link is the fault/retransmit accounting for the run.
	Link core.LinkStats `json:"link"`
}

// LossSweepResult is the link-loss robustness sweep.
type LossSweepResult struct {
	// Rates are the swept aggregate loss rates (0 = perfect channel).
	Rates []float64 `json:"loss_rates"`
	// Seed is the link_seed every lossy point ran at.
	Seed   uint64      `json:"link_seed"`
	Points []LossPoint `json:"points"`
}

// linkStatser is implemented by systems that run a fault-injected link
// (Earth+).
type linkStatser interface {
	LinkStats() core.LinkStats
}

// LossSweep measures Earth+'s quality, uplink use and fault/retransmit
// accounting against the aggregate link loss rate on the rich-content
// dataset.
func LossSweep(sc Scale) (*LossSweepResult, error) {
	cfg := richConfig(sc)
	theta := profiledTheta(sc, cfg, 4)
	rawCaptureBytes := int64(cfg.Width) * int64(cfg.Height) * int64(len(cfg.Bands)) * 2

	res := &LossSweepResult{Rates: lossSweepRates, Seed: lossSweepSeed}
	for _, rate := range lossSweepRates {
		env := envFor(cfg, lossOrbit(), defaultUplinkDivisor)
		spec := registry.Spec{GammaBPP: fig12Gamma, Theta: theta}
		if rate > 0 {
			spec.Params = map[string]float64{
				"link_loss": rate,
				"link_seed": lossSweepSeed,
			}
		}
		sys, err := registry.New(core.SystemName, env, spec)
		if err != nil {
			return nil, fmt.Errorf("loss sweep: rate %v: %w", rate, err)
		}
		var upByDay map[int]int64
		acc := sim.NewAccumulator()
		r, err := runSystemStream(sc, env, sys, acc.Add)
		if err != nil {
			return nil, fmt.Errorf("loss sweep: rate %v: %w", rate, err)
		}
		upByDay = r.UpBytesByDay
		// Retransmissions are charged to the same per-contact meter as
		// first transmissions, so a day over budget would mean the
		// retransmit path leaked around the pack-time accounting. The
		// budget is per satellite; UpBytesByDay sums the fleet.
		fleetBudget := env.UplinkBytesPerDay * int64(env.Orbit.Satellites)
		//lint:deterministic per-day validation only; no output depends on visit order
		for day, up := range upByDay {
			if env.UplinkBytesPerDay > 0 && up > fleetBudget {
				return nil, fmt.Errorf("loss sweep: rate %v: day %d uplinked %d bytes over the fleet budget %d",
					rate, day, up, fleetBudget)
			}
		}
		sum := acc.Summary(r, dovesDownlink())
		p := LossPoint{
			LossRate:           rate,
			MeanPSNR:           sum.MeanPSNR,
			UpBytesPerDay:      sum.MeanUpBytesPerDay,
			UplinkBudgetPerDay: env.UplinkBytesPerDay,
		}
		if sum.TotalDownBytes > 0 {
			p.Ratio = float64(int64(sum.Captures-sum.Dropped)*rawCaptureBytes) / float64(sum.TotalDownBytes)
		}
		if ss, ok := sys.(storageStatser); ok {
			_, p.Misses = ss.StorageStats()
		}
		if ls, ok := sys.(linkStatser); ok {
			p.Link = ls.LinkStats()
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// lossDeterminismCheck runs a lossy Earth+ configuration at each worker
// count and reports whether every run's records are identical to the
// serial one and whether link faults actually fired (a fault-free run
// would prove nothing). The sim-engine snapshot records both bits: fault
// outcomes are pure functions of (seed, direction, satellite, day,
// location), so the worker count must not change them.
func lossDeterminismCheck(sc Scale, workers []int, rate float64) (deterministic, faulted bool, err error) {
	run := func(w int) ([]sim.Record, bool, error) {
		env := envFor(richConfig(sc), lossOrbit(), defaultUplinkDivisor)
		env.Parallelism = w
		spec := registry.Spec{
			GammaBPP: fig12Gamma,
			Params:   map[string]float64{"link_loss": rate, "link_seed": lossSweepSeed},
		}
		sys, err := registry.New(core.SystemName, env, spec)
		if err != nil {
			return nil, false, err
		}
		var recs []sim.Record
		if _, err := runSystemStream(sc, env, sys, func(r *sim.Record) { recs = append(recs, *r) }); err != nil {
			return nil, false, err
		}
		st := sys.(linkStatser).LinkStats()
		fired := st.UplinkDropped+st.UplinkCorrupted+st.DownlinkDropped+st.DownlinkCorrupted > 0
		return recs, fired, nil
	}
	serial, serialFaulted, err := run(1)
	if err != nil {
		return false, false, err
	}
	deterministic, faulted = true, serialFaulted
	for _, w := range workers {
		if w <= 1 {
			continue
		}
		recs, fired, err := run(w)
		if err != nil {
			return false, false, err
		}
		if !sim.RecordsEqualIgnoringTimings(serial, recs) {
			deterministic = false
		}
		faulted = faulted && fired
	}
	return deterministic, faulted, nil
}

// ID implements Result.
func (r *LossSweepResult) ID() string { return "Link-loss robustness sweep" }

// Render implements Result.
func (r *LossSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "link-loss sweep (link_seed %d; retransmits charged inside the uplink budget)\n", r.Seed)
	rows := [][]string{{"loss", "PSNR", "ratio", "uplink B/day", "budget B/day",
		"retx", "retx bytes", "up drop", "up corrupt", "contacts lost", "down drop", "down corrupt", "misses"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.LossRate),
			fmt.Sprintf("%.1f", p.MeanPSNR),
			fmt.Sprintf("%.1fx", p.Ratio),
			fmt.Sprintf("%.0f", p.UpBytesPerDay),
			fmt.Sprintf("%d", p.UplinkBudgetPerDay),
			fmt.Sprintf("%d", p.Link.Retransmits),
			fmt.Sprintf("%d", p.Link.RetransmitBytes),
			fmt.Sprintf("%d", p.Link.UplinkDropped),
			fmt.Sprintf("%d", p.Link.UplinkCorrupted),
			fmt.Sprintf("%d", p.Link.UplinkContactsLost),
			fmt.Sprintf("%d", p.Link.DownlinkDropped),
			fmt.Sprintf("%d", p.Link.DownlinkCorrupted),
			fmt.Sprintf("%d", p.Misses),
		})
	}
	metrics.Table(w, rows)
	fmt.Fprintln(w, "(degradation is graceful: lost uplink updates are NACKed and retransmitted")
	fmt.Fprintln(w, " within the same budget, CRC-rejected frames leave the stale-but-coherent")
	fmt.Fprintln(w, " reference in place, and lost downlink frames cost bandwidth without")
	fmt.Fprintln(w, " yielding imagery — PSNR drifts down with the loss rate, nothing corrupts)")
	return nil
}
