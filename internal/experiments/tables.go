package experiments

import (
	"fmt"
	"io"
	"strings"

	"earthplus/internal/metrics"
	"earthplus/internal/orbit"
	"earthplus/internal/scene"
)

// Table1Result echoes the Doves specification constants (paper Table 1)
// the experiments are grounded in.
type Table1Result struct {
	Spec orbit.Spec
}

// Table1 returns the specification table.
func Table1() *Table1Result {
	return &Table1Result{Spec: orbit.DovesSpec()}
}

// ID implements Result.
func (r *Table1Result) ID() string { return "Table 1" }

// Render implements Result.
func (r *Table1Result) Render(w io.Writer) error {
	s := r.Spec
	rows := [][]string{
		{"property", "value"},
		{"ground contact duration", fmt.Sprintf("%.0f s", s.ContactSeconds)},
		{"ground contacts per day", fmt.Sprintf("%d", s.ContactsPerDay)},
		{"uplink bandwidth", fmt.Sprintf("%.0f kbps", s.UplinkBps/1e3)},
		{"downlink bandwidth", fmt.Sprintf("%.0f Mbps", s.DownlinkBps/1e6)},
		{"on-board storage", fmt.Sprintf("%d GB", s.StorageBytes>>30)},
		{"image resolution", fmt.Sprintf("%dx%d", s.ImageWidth, s.ImageHeight)},
		{"image channels", fmt.Sprintf("%d (RGB+IR)", s.ImageBands)},
		{"raw image file size", fmt.Sprintf("%d MB", s.RawImageBytes>>20)},
		{"ground sampling distance", fmt.Sprintf("%.1f m", s.GSDMeters)},
		{"single-satellite revisit", fmt.Sprintf("%d days", s.RevisitDays)},
		{"downloadable area/contact", fmt.Sprintf("%.0f km²", s.DownloadableKm2PerContact())},
	}
	metrics.Table(w, rows)
	return nil
}

// Table2Result characterises the two synthetic datasets (paper Table 2).
type Table2Result struct {
	Rows [][]string
}

// Table2 measures both dataset presets: geometry, bands, content variety
// and the empirical cloud statistics over a sample window.
func Table2(sc Scale) *Table2Result {
	rows := [][]string{{
		"dataset", "satellites", "locations", "resolution", "bands",
		"mean cloud", "clear(<1%) days", "contents",
	}}
	add := func(name string, cfg scene.Config, sats int) {
		s := scene.New(cfg)
		var sum float64
		clear := 0
		const days = 365
		for d := 0; d < days; d++ {
			c := s.CloudCoverageTarget(0, d)
			sum += c
			if c < 0.01 {
				clear++
			}
		}
		contents := map[string]bool{}
		for _, l := range cfg.Locations {
			contents[l.Content.String()] = true
		}
		// Joined in sorted order: this string lands verbatim in the
		// rendered table, so iteration order must not reach it.
		uniq := strings.Join(sortedKeys(contents), ",")
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", sats),
			fmt.Sprintf("%d", len(cfg.Locations)),
			fmt.Sprintf("%dx%d", cfg.Width, cfg.Height),
			fmt.Sprintf("%d", len(cfg.Bands)),
			fmt.Sprintf("%.0f%%", sum/days*100),
			fmt.Sprintf("%.0f%%", float64(clear)/days*100),
			uniq,
		})
	}
	add("rich-content (Sentinel-2-like)", richConfig(sc), richOrbit().Satellites)
	add("large-constellation (Planet-like)", scene.LargeConstellation(sc.Size), planetOrbit(48).Satellites)
	add("large-constellation sampled <5%", scene.LargeConstellationSampled(sc.Size), planetOrbit(48).Satellites)
	return &Table2Result{Rows: rows}
}

// ID implements Result.
func (r *Table2Result) ID() string { return "Table 2" }

// Render implements Result.
func (r *Table2Result) Render(w io.Writer) error {
	metrics.Table(w, r.Rows)
	return nil
}
