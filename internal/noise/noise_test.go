package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		x, y := float64(i)*0.37, float64(i)*0.11
		if a.At(x, y) != b.At(x, y) {
			t.Fatalf("same seed disagrees at (%v,%v)", x, y)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 100; i++ {
		x, y := float64(i)*0.37, float64(i)*0.11
		if a.At(x, y) == c.At(x, y) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree at %d/100 points", same)
	}
}

func TestAtRangeProperty(t *testing.T) {
	s := New(7)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		v := s.At(x, y)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAtMatchesLatticeAtIntegers(t *testing.T) {
	s := New(9)
	for _, p := range [][2]int64{{0, 0}, {3, 5}, {-2, 7}} {
		want := s.lattice(p[0], p[1])
		got := s.At(float64(p[0]), float64(p[1]))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%v) = %v, lattice = %v", p, got, want)
		}
	}
}

func TestAtIsContinuous(t *testing.T) {
	s := New(11)
	// Small coordinate steps must produce small value steps.
	prev := s.At(0.5, 0.5)
	for i := 1; i <= 1000; i++ {
		v := s.At(0.5+float64(i)*0.001, 0.5)
		if math.Abs(v-prev) > 0.02 {
			t.Fatalf("discontinuity at step %d: %v -> %v", i, prev, v)
		}
		prev = v
	}
}

func TestFBMRangeAndVariation(t *testing.T) {
	s := New(13)
	var minV, maxV = 1.0, 0.0
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := s.FBM(float64(x)*0.2, float64(y)*0.2, 4, 2, 0.5)
			if v < 0 || v >= 1 {
				t.Fatalf("FBM out of range: %v", v)
			}
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if maxV-minV < 0.2 {
		t.Fatalf("FBM field suspiciously flat: range %v", maxV-minV)
	}
}

func TestFBMZeroOctaves(t *testing.T) {
	if got := New(1).FBM(1, 1, 0, 2, 0.5); got != 0 {
		t.Fatalf("0-octave FBM = %v, want 0", got)
	}
}

func TestFillFBM(t *testing.T) {
	s := New(17)
	plane := make([]float32, 16*8)
	s.FillFBM(plane, 16, 8, 4, 3)
	var sum float64
	for _, v := range plane {
		if v < 0 || v >= 1 {
			t.Fatalf("FillFBM value out of range: %v", v)
		}
		sum += float64(v)
	}
	if sum == 0 {
		t.Fatal("FillFBM left plane all zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FillFBM with wrong plane size did not panic")
		}
	}()
	s.FillFBM(make([]float32, 3), 16, 8, 4, 3)
}

func TestUniformStreamIndependence(t *testing.T) {
	s := New(21)
	seen := map[float64]bool{}
	for k := int64(0); k < 100; k++ {
		v := s.Uniform(5, k)
		if v < 0 || v >= 1 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		if seen[v] {
			t.Fatalf("duplicate uniform %v", v)
		}
		seen[v] = true
	}
	if s.Uniform(5, 0) != s.Uniform(5, 0) {
		t.Fatal("Uniform not a pure function")
	}
	if s.Uniform(5, 0) == s.Uniform(6, 0) {
		t.Fatal("streams collide")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(23)
	const n = 20000
	var sum, sumSq float64
	for k := int64(0); k < n; k++ {
		v := s.Normal(1, k)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}
