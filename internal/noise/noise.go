// Package noise implements deterministic, seeded value noise and fractal
// Brownian motion (fBm). The synthetic scene generator uses it for terrain
// texture, change patches, and spatially-correlated cloud fields. Everything
// here is a pure function of (seed, coordinates), so scenes are perfectly
// reproducible across runs and platforms.
package noise

import "math"

// Source generates smooth 2-D value noise from a 64-bit seed.
type Source struct {
	seed uint64
}

// New returns a noise source for the given seed.
func New(seed uint64) *Source { return &Source{seed: seed} }

// hash mixes lattice coordinates with the seed into a uniform-ish 64-bit
// value (SplitMix64 finaliser).
func (s *Source) hash(x, y int64) uint64 {
	h := s.seed ^ uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// lattice returns the pseudo-random value in [0,1) at integer lattice point
// (x, y).
func (s *Source) lattice(x, y int64) float64 {
	return float64(s.hash(x, y)>>11) / float64(1<<53)
}

// smoothstep is the C1-continuous fade used for interpolation weights.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// At returns smooth value noise in [0,1) at continuous coordinates (x, y).
func (s *Source) At(x, y float64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	tx, ty := smoothstep(x-x0), smoothstep(y-y0)
	ix, iy := int64(x0), int64(y0)
	v00 := s.lattice(ix, iy)
	v10 := s.lattice(ix+1, iy)
	v01 := s.lattice(ix, iy+1)
	v11 := s.lattice(ix+1, iy+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// FBM sums octaves of value noise (fractal Brownian motion) and returns a
// value in [0,1). gain scales successive octave amplitudes, lacunarity scales
// successive octave frequencies.
func (s *Source) FBM(x, y float64, octaves int, lacunarity, gain float64) float64 {
	var sum, amp, norm float64
	amp = 1
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * s.At(x*freq, y*freq)
		norm += amp
		amp *= gain
		freq *= lacunarity
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}

// FillFBM writes an fBm field into plane (row-major w x h) with the given
// base frequency (feature size ~ w/frequency pixels), octave count and
// standard lacunarity 2 / gain 0.5.
func (s *Source) FillFBM(plane []float32, w, h int, frequency float64, octaves int) {
	if len(plane) != w*h {
		panic("noise: plane length does not match dimensions")
	}
	sx := frequency / float64(w)
	sy := frequency / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			plane[y*w+x] = float32(s.FBM(float64(x)*sx, float64(y)*sy, octaves, 2, 0.5))
		}
	}
}

// Uniform returns the k-th uniform variate in [0,1) of the stream identified
// by (seed, stream). It gives scene code cheap, order-independent random
// numbers: Uniform(stream, k) never depends on other draws.
func (s *Source) Uniform(stream, k int64) float64 {
	return float64(s.hash(stream, k)>>11) / float64(1<<53)
}

// Normal returns the k-th standard-normal variate of the stream, via the
// Box–Muller transform on two independent uniforms.
func (s *Source) Normal(stream, k int64) float64 {
	u1 := s.Uniform(stream, 2*k)
	u2 := s.Uniform(stream, 2*k+1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
