// Package sim drives end-to-end simulations: it walks simulated days,
// generates captures for every (location, satellite) visit, hands them to a
// compression System (Earth+ or a baseline), and collects the per-capture
// records every experiment aggregates.
package sim

import (
	"fmt"
	"math"
	"sort"

	"earthplus/internal/illum"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// Env is the shared simulation environment.
type Env struct {
	Scene *scene.Scene
	Orbit orbit.Constellation
	// Downlink sizes the paper's required-bandwidth metric.
	Downlink link.Budget
	// UplinkBytesPerDay caps each satellite's daily reference traffic
	// (<= 0 means unlimited). See EXPERIMENTS.md for how the Doves uplink
	// is scaled down to the modeled location count.
	UplinkBytesPerDay int64
	// Parallelism bounds how many locations are simulated concurrently
	// within one day (the codec.Parallelism convention: <= 0 means
	// GOMAXPROCS, 1 forces the serial path). Each location's visit
	// sequence stays ordered and records merge back into serial order, so
	// results are identical at any setting; see engine.go. When the pool
	// exceeds the location count (fleet-scale runs over few locations),
	// the surplus workers pre-generate the day's captures across
	// satellites instead of idling.
	Parallelism int
	// Observer, when non-nil, sees every evaluated visit while its capture
	// and ground reconstruction are still live (before the buffers recycle
	// into the scene pools). Constellation event tracking hangs off this.
	// Calls arrive in order within one location but concurrently across
	// locations, so an Observer must only touch per-location state from
	// ObserveVisit (or lock).
	Observer Observer
}

// Observer receives evaluated visits during a run. rec is the merged-order
// record about to be emitted; cap and recon are the live capture and ground
// reconstruction (recon may be nil when nothing was delivered). Neither may
// be retained past the call — both recycle into the scene's buffer pools.
type Observer interface {
	ObserveVisit(rec *Record, cap *scene.Capture, recon *raster.Image, grid raster.TileGrid)
}

// ContactRecord is one booked ground-station contact window: on Day,
// station Station's window Window carried Bytes of uplink traffic for
// satellite Sat. Contacts with Bytes == 0 were booked but found nothing
// left to send (the satellite's pending work fit in earlier windows).
type ContactRecord struct {
	Station int
	Day     int
	Sat     int
	Window  int
	Bytes   int64
}

// ContactReporter is implemented by Systems that book per-station contact
// windows (the constellation ground-segment model); RunStream attaches the
// log to Result.Contacts. The slice must be in deterministic order —
// contacts carry no wall-clock fields, so runs at different worker counts
// must produce identical logs.
type ContactReporter interface {
	ContactLog() []ContactRecord
}

// Outcome is what a System reports for one processed capture.
type Outcome struct {
	// Dropped marks captures discarded on board (cloud cover > 50%).
	Dropped bool
	// DownBytes is the downlink cost of this capture.
	DownBytes int64
	// PerBandBytes breaks DownBytes down by band (Fig 14).
	PerBandBytes []int64
	// DownTilesPerBand and TotalTiles size the downloaded-tile fraction
	// (averaged over bands).
	DownTilesPerBand float64
	TotalTiles       int
	// Recon is the ground's reconstruction after this capture's download
	// (nil when nothing was delivered).
	Recon *raster.Image
	// RefAge is the age in days of the reference used, -1 if none.
	RefAge int
	// RefMiss marks captures whose on-board reference lookup MISSED in a
	// reference-based system (the entry was evicted under the storage
	// budget, or never seeded): the satellite fell back to reference-free
	// encoding of every non-cloudy tile.
	RefMiss bool
	// Guaranteed marks the periodic full downloads (§5).
	Guaranteed bool
	// DownDropped marks captures whose downlink frame vanished in a
	// fault-injected channel (frame drop or canceled contact): DownBytes
	// was spent but the ground applied nothing, so Recon is the stale
	// archive. Always false on the perfect channel.
	DownDropped bool
	// DownCorrupted marks captures whose downlink frame arrived damaged
	// and was rejected whole by the ground's CRC gate.
	DownCorrupted bool
	// Component timings in seconds (measured on this machine, Fig 16).
	EncodeSec, CloudSec, ChangeSec float64
}

// System is one on-board compression scheme under test.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Bootstrap installs operational history for one location: a clear
	// capture every deployed system would already have downloaded.
	Bootstrap(cap *scene.Capture) error
	// OnCapture processes one capture end to end (on-board encoding and
	// ground-side application).
	OnCapture(cap *scene.Capture) (Outcome, error)
	// OnDayEnd runs ground-side work after a day's captures (reference
	// uploads for Earth+); it returns the uplink bytes consumed per
	// satellite.
	OnDayEnd(day int) (upBytes int64, err error)
}

// Record is one capture's evaluated outcome. The link-fault fields carry
// omitempty so fault-free runs serialise byte-identically to traces
// written before the channel fault injector existed.
type Record struct {
	Day, Loc, Sat int
	Dropped       bool
	TrueCoverage  float64
	DownBytes     int64
	PerBandBytes  []int64
	DownTileFrac  float64
	PSNR          float64 // NaN when not evaluable
	RefAge        int
	RefMiss       bool
	Guaranteed    bool
	DownDropped   bool `json:",omitempty"`
	DownCorrupted bool `json:",omitempty"`
	EncodeSec     float64
	CloudSec      float64
	ChangeSec     float64
}

// EqualIgnoringTimings reports whether two records carry identical results,
// ignoring the measured wall-clock fields (EncodeSec, CloudSec, ChangeSec
// legitimately vary run to run) and treating two NaN PSNRs as equal. This
// is the engine's determinism contract: every other field is byte-identical
// at any worker count.
func (r Record) EqualIgnoringTimings(o Record) bool {
	if r.Day != o.Day || r.Loc != o.Loc || r.Sat != o.Sat ||
		r.Dropped != o.Dropped || r.TrueCoverage != o.TrueCoverage ||
		r.DownBytes != o.DownBytes || r.DownTileFrac != o.DownTileFrac ||
		r.RefAge != o.RefAge || r.RefMiss != o.RefMiss || r.Guaranteed != o.Guaranteed ||
		r.DownDropped != o.DownDropped || r.DownCorrupted != o.DownCorrupted {
		return false
	}
	if !(r.PSNR == o.PSNR || (math.IsNaN(r.PSNR) && math.IsNaN(o.PSNR))) {
		return false
	}
	if len(r.PerBandBytes) != len(o.PerBandBytes) {
		return false
	}
	for b := range r.PerBandBytes {
		if r.PerBandBytes[b] != o.PerBandBytes[b] {
			return false
		}
	}
	return true
}

// RecordsEqualIgnoringTimings compares two record sequences with
// EqualIgnoringTimings.
func RecordsEqualIgnoringTimings(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].EqualIgnoringTimings(b[i]) {
			return false
		}
	}
	return true
}

// Result aggregates a run.
type Result struct {
	System  string
	Records []Record
	// UpBytesByDay records the uplink consumption per simulated day.
	UpBytesByDay map[int]int64
	// Contacts is the per-station contact log when the System under test
	// schedules ground-station windows (implements ContactReporter); nil
	// under the flat per-day uplink budget.
	Contacts []ContactRecord
	// Days is the number of simulated days.
	Days int
}

// Run simulates days [startDay, endDay) of the environment under sys.
// Bootstrap uses the first near-clear day at or after bootstrapFrom for
// each location (searching up to startDay). Locations are sharded across
// Env.Parallelism workers per day (see engine.go); the returned Result is
// identical to a serial walk at any worker count.
func Run(env *Env, sys System, bootstrapFrom, startDay, endDay int) (*Result, error) {
	var records []Record
	res, err := RunStream(env, sys, bootstrapFrom, startDay, endDay, func(r *Record) {
		records = append(records, *r)
	})
	if err != nil {
		return nil, err
	}
	res.Records = records
	return res, nil
}

// EvalPSNR scores a ground reconstruction against the captured image over
// truly-clear tiles, pooled across bands — the paper's quality metric
// compares downloaded imagery against what the satellite sensed (§2.2).
// Cloudy tiles carry no ground information in any system (all of them
// remove clouds), so they are excluded for every system alike. Before
// scoring, each band is radiometrically aligned with a global linear fit —
// standard ground calibration — so systems that download raw
// capture-domain pixels (Kodan) and systems that normalise on board
// (Earth+, SatRoI) are scored in the same domain.
func EvalPSNR(cap *scene.Capture, recon *raster.Image, grid raster.TileGrid) float64 {
	clear := cap.TrueCloud.TileMask(grid, 0.05)
	return evalPSNRMasked(cap, recon, grid, func(t int) bool { return !clear.Set[t] })
}

// EvalPSNRRegion scores like EvalPSNR but restricted to the tiles of
// region (true = evaluate), on top of the usual cloud exclusion — the
// event-workload metric: is the imagery over THIS wildfire usable yet?
// It returns NaN when the region has no evaluable tile (fully cloudy).
func EvalPSNRRegion(cap *scene.Capture, recon *raster.Image, grid raster.TileGrid, region []bool) float64 {
	clear := cap.TrueCloud.TileMask(grid, 0.05)
	any := false
	include := func(t int) bool { return t < len(region) && region[t] && !clear.Set[t] }
	for t := 0; t < grid.NumTiles(); t++ {
		if include(t) {
			any = true
			break
		}
	}
	if !any {
		return math.NaN()
	}
	return evalPSNRMasked(cap, recon, grid, include)
}

// evalPSNRMasked aligns recon radiometrically over the included tiles and
// scores the masked PSNR.
func evalPSNRMasked(cap *scene.Capture, recon *raster.Image, grid raster.TileGrid, include func(int) bool) float64 {
	// Fit only over evaluated pixels; excluded (cloudy) tiles may hold
	// stale or zeroed content that would poison the fit.
	use := make([]bool, grid.ImageW*grid.ImageH)
	for t := 0; t < grid.NumTiles(); t++ {
		if !include(t) {
			continue
		}
		x0, y0, x1, y1 := grid.Bounds(t)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				use[y*grid.ImageW+x] = true
			}
		}
	}
	aligned := recon.Clone()
	for b := 0; b < aligned.NumBands(); b++ {
		if m, ok := illum.Fit(cap.Image.Plane(b), aligned.Plane(b), use); ok {
			m.Normalize(aligned.Plane(b))
		}
	}
	return raster.PSNRAllBandsMaskedTiles(cap.Image, aligned, grid, include)
}

// bootstrap feeds each location's first near-clear capture to the system.
func bootstrap(env *Env, sys System, fromDay, beforeDay int) error {
	for loc := 0; loc < env.Scene.NumLocations(); loc++ {
		day := -1
		for d := fromDay; d < beforeDay; d++ {
			if env.Scene.CloudCoverageTarget(loc, d) < 0.01 {
				day = d
				break
			}
		}
		if day < 0 {
			// Fall back to the least cloudy day in the window.
			best := math.Inf(1)
			for d := fromDay; d < beforeDay; d++ {
				if c := env.Scene.CloudCoverageTarget(loc, d); c < best {
					best, day = c, d
				}
			}
		}
		if day < 0 {
			return fmt.Errorf("sim: no bootstrap day for loc %d in [%d,%d)", loc, fromDay, beforeDay)
		}
		sats := env.Orbit.VisitsOn(loc, day)
		satID := 0
		if len(sats) > 0 {
			satID = sats[0]
		}
		cap := env.Scene.CaptureImage(loc, day, satID)
		err := sys.Bootstrap(cap)
		env.Scene.ReleaseCapture(cap)
		if err != nil {
			return fmt.Errorf("sim: bootstrap loc %d: %w", loc, err)
		}
	}
	return nil
}

// Summary condenses a result into the aggregates experiments report.
type Summary struct {
	Captures       int
	Dropped        int
	MeanPSNR       float64 // over evaluable captures
	MeanDownBytes  float64 // over non-dropped captures
	MeanTileFrac   float64 // over non-dropped captures
	TotalDownBytes int64
	// RequiredDownlinkBps is the paper's metric: bytes per (satellite,
	// day) pair with downloads, through the contact window.
	RequiredDownlinkBps float64
	MeanRefAge          float64 // over captures that used a reference
	MeanUpBytesPerDay   float64
}

// Accumulator folds Records into a Summary one at a time, so streaming
// runs (RunStream) can aggregate whole-constellation experiments without
// retaining the record set. Add every record, then call Summary with the
// run-level aggregates.
type Accumulator struct {
	s          Summary
	psnrSum    float64
	psnrN      int
	bytesSum   float64
	tileSum    float64
	nonDropped int
	refSum     float64
	refN       int
	perSatDay  map[[2]int]int64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{perSatDay: map[[2]int]int64{}}
}

// Add folds one record in. It is not safe for concurrent use; RunStream
// emits from a single goroutine.
func (a *Accumulator) Add(r *Record) {
	a.s.Captures++
	if r.Dropped {
		a.s.Dropped++
		return
	}
	a.nonDropped++
	a.bytesSum += float64(r.DownBytes)
	a.tileSum += r.DownTileFrac
	a.s.TotalDownBytes += r.DownBytes
	a.perSatDay[[2]int{r.Sat, r.Day}] += r.DownBytes
	if !math.IsNaN(r.PSNR) && !math.IsInf(r.PSNR, 0) {
		a.psnrSum += r.PSNR
		a.psnrN++
	}
	if r.RefAge >= 0 {
		a.refSum += float64(r.RefAge)
		a.refN++
	}
}

// Summary finalises the aggregates for a run (res supplies the day count
// and uplink consumption; its Records are not read, so it may come from a
// streaming run).
func (a *Accumulator) Summary(res *Result, down link.Budget) Summary {
	s := a.s
	if a.psnrN > 0 {
		s.MeanPSNR = a.psnrSum / float64(a.psnrN)
	}
	if a.nonDropped > 0 {
		s.MeanDownBytes = a.bytesSum / float64(a.nonDropped)
		s.MeanTileFrac = a.tileSum / float64(a.nonDropped)
	}
	if a.refN > 0 {
		s.MeanRefAge = a.refSum / float64(a.refN)
	}
	if len(a.perSatDay) > 0 {
		// Sum in sorted key order: float addition is order-sensitive and
		// map iteration is randomised, so a raw range would make the
		// summary differ in the last ulp between identical runs.
		keys := make([][2]int, 0, len(a.perSatDay))
		for k := range a.perSatDay {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		var bpsSum float64
		secondsPerDay := down.SecondsPerContact * float64(down.ContactsPerDay)
		for _, k := range keys {
			bpsSum += float64(a.perSatDay[k]) * 8 / secondsPerDay
		}
		s.RequiredDownlinkBps = bpsSum / float64(len(a.perSatDay))
	}
	if res.Days > 0 {
		var up int64
		//lint:deterministic integer sum over map values is order-independent
		for _, b := range res.UpBytesByDay {
			up += b
		}
		s.MeanUpBytesPerDay = float64(up) / float64(res.Days)
	}
	return s
}

// Summarize computes aggregates from a retained-record run under the given
// downlink model.
func Summarize(res *Result, down link.Budget) Summary {
	a := NewAccumulator()
	for i := range res.Records {
		a.Add(&res.Records[i])
	}
	return a.Summary(res, down)
}
