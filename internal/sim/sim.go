// Package sim drives end-to-end simulations: it walks simulated days,
// generates captures for every (location, satellite) visit, hands them to a
// compression System (Earth+ or a baseline), and collects the per-capture
// records every experiment aggregates.
package sim

import (
	"fmt"
	"math"

	"earthplus/internal/illum"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// Env is the shared simulation environment.
type Env struct {
	Scene *scene.Scene
	Orbit orbit.Constellation
	// Downlink sizes the paper's required-bandwidth metric.
	Downlink link.Budget
	// UplinkBytesPerDay caps each satellite's daily reference traffic
	// (<= 0 means unlimited). See EXPERIMENTS.md for how the Doves uplink
	// is scaled down to the modeled location count.
	UplinkBytesPerDay int64
}

// Outcome is what a System reports for one processed capture.
type Outcome struct {
	// Dropped marks captures discarded on board (cloud cover > 50%).
	Dropped bool
	// DownBytes is the downlink cost of this capture.
	DownBytes int64
	// PerBandBytes breaks DownBytes down by band (Fig 14).
	PerBandBytes []int64
	// DownTilesPerBand and TotalTiles size the downloaded-tile fraction
	// (averaged over bands).
	DownTilesPerBand float64
	TotalTiles       int
	// Recon is the ground's reconstruction after this capture's download
	// (nil when nothing was delivered).
	Recon *raster.Image
	// RefAge is the age in days of the reference used, -1 if none.
	RefAge int
	// Guaranteed marks the periodic full downloads (§5).
	Guaranteed bool
	// Component timings in seconds (measured on this machine, Fig 16).
	EncodeSec, CloudSec, ChangeSec float64
}

// System is one on-board compression scheme under test.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Bootstrap installs operational history for one location: a clear
	// capture every deployed system would already have downloaded.
	Bootstrap(cap *scene.Capture) error
	// OnCapture processes one capture end to end (on-board encoding and
	// ground-side application).
	OnCapture(cap *scene.Capture) (Outcome, error)
	// OnDayEnd runs ground-side work after a day's captures (reference
	// uploads for Earth+); it returns the uplink bytes consumed per
	// satellite.
	OnDayEnd(day int) (upBytes int64, err error)
}

// Record is one capture's evaluated outcome.
type Record struct {
	Day, Loc, Sat int
	Dropped       bool
	TrueCoverage  float64
	DownBytes     int64
	PerBandBytes  []int64
	DownTileFrac  float64
	PSNR          float64 // NaN when not evaluable
	RefAge        int
	Guaranteed    bool
	EncodeSec     float64
	CloudSec      float64
	ChangeSec     float64
}

// Result aggregates a run.
type Result struct {
	System  string
	Records []Record
	// UpBytesByDay records the uplink consumption per simulated day.
	UpBytesByDay map[int]int64
	// Days is the number of simulated days.
	Days int
}

// Run simulates days [startDay, endDay) of the environment under sys.
// Bootstrap uses the first near-clear day at or after bootstrapFrom for
// each location (searching up to startDay).
func Run(env *Env, sys System, bootstrapFrom, startDay, endDay int) (*Result, error) {
	if err := env.Orbit.Validate(); err != nil {
		return nil, err
	}
	if err := bootstrap(env, sys, bootstrapFrom, startDay); err != nil {
		return nil, err
	}
	res := &Result{System: sys.Name(), UpBytesByDay: make(map[int]int64), Days: endDay - startDay}
	grid := env.Scene.Grid()
	for day := startDay; day < endDay; day++ {
		for loc := 0; loc < env.Scene.NumLocations(); loc++ {
			for _, satID := range env.Orbit.VisitsOn(loc, day) {
				cap := env.Scene.CaptureImage(loc, day, satID)
				out, err := sys.OnCapture(cap)
				if err != nil {
					return nil, fmt.Errorf("sim: %s day %d loc %d sat %d: %w", sys.Name(), day, loc, satID, err)
				}
				rec := Record{
					Day: day, Loc: loc, Sat: satID,
					Dropped:      out.Dropped,
					TrueCoverage: cap.Coverage,
					DownBytes:    out.DownBytes,
					PerBandBytes: out.PerBandBytes,
					RefAge:       out.RefAge,
					Guaranteed:   out.Guaranteed,
					EncodeSec:    out.EncodeSec,
					CloudSec:     out.CloudSec,
					ChangeSec:    out.ChangeSec,
					PSNR:         math.NaN(),
				}
				if out.TotalTiles > 0 {
					rec.DownTileFrac = out.DownTilesPerBand / float64(out.TotalTiles)
				}
				if !out.Dropped && out.Recon != nil {
					rec.PSNR = EvalPSNR(cap, out.Recon, grid)
				}
				res.Records = append(res.Records, rec)
			}
		}
		up, err := sys.OnDayEnd(day)
		if err != nil {
			return nil, fmt.Errorf("sim: %s day %d ground: %w", sys.Name(), day, err)
		}
		res.UpBytesByDay[day] = up
	}
	return res, nil
}

// EvalPSNR scores a ground reconstruction against the captured image over
// truly-clear tiles, pooled across bands — the paper's quality metric
// compares downloaded imagery against what the satellite sensed (§2.2).
// Cloudy tiles carry no ground information in any system (all of them
// remove clouds), so they are excluded for every system alike. Before
// scoring, each band is radiometrically aligned with a global linear fit —
// standard ground calibration — so systems that download raw
// capture-domain pixels (Kodan) and systems that normalise on board
// (Earth+, SatRoI) are scored in the same domain.
func EvalPSNR(cap *scene.Capture, recon *raster.Image, grid raster.TileGrid) float64 {
	clear := cap.TrueCloud.TileMask(grid, 0.05)
	include := func(t int) bool { return !clear.Set[t] }
	// Fit only over evaluated pixels; excluded (cloudy) tiles may hold
	// stale or zeroed content that would poison the fit.
	use := make([]bool, grid.ImageW*grid.ImageH)
	for t := 0; t < grid.NumTiles(); t++ {
		if !include(t) {
			continue
		}
		x0, y0, x1, y1 := grid.Bounds(t)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				use[y*grid.ImageW+x] = true
			}
		}
	}
	aligned := recon.Clone()
	for b := 0; b < aligned.NumBands(); b++ {
		if m, ok := illum.Fit(cap.Image.Plane(b), aligned.Plane(b), use); ok {
			m.Normalize(aligned.Plane(b))
		}
	}
	return raster.PSNRAllBandsMaskedTiles(cap.Image, aligned, grid, include)
}

// bootstrap feeds each location's first near-clear capture to the system.
func bootstrap(env *Env, sys System, fromDay, beforeDay int) error {
	for loc := 0; loc < env.Scene.NumLocations(); loc++ {
		day := -1
		for d := fromDay; d < beforeDay; d++ {
			if env.Scene.CloudCoverageTarget(loc, d) < 0.01 {
				day = d
				break
			}
		}
		if day < 0 {
			// Fall back to the least cloudy day in the window.
			best := math.Inf(1)
			for d := fromDay; d < beforeDay; d++ {
				if c := env.Scene.CloudCoverageTarget(loc, d); c < best {
					best, day = c, d
				}
			}
		}
		if day < 0 {
			return fmt.Errorf("sim: no bootstrap day for loc %d in [%d,%d)", loc, fromDay, beforeDay)
		}
		sats := env.Orbit.VisitsOn(loc, day)
		satID := 0
		if len(sats) > 0 {
			satID = sats[0]
		}
		if err := sys.Bootstrap(env.Scene.CaptureImage(loc, day, satID)); err != nil {
			return fmt.Errorf("sim: bootstrap loc %d: %w", loc, err)
		}
	}
	return nil
}

// Summary condenses a result into the aggregates experiments report.
type Summary struct {
	Captures       int
	Dropped        int
	MeanPSNR       float64 // over evaluable captures
	MeanDownBytes  float64 // over non-dropped captures
	MeanTileFrac   float64 // over non-dropped captures
	TotalDownBytes int64
	// RequiredDownlinkBps is the paper's metric: bytes per (satellite,
	// day) pair with downloads, through the contact window.
	RequiredDownlinkBps float64
	MeanRefAge          float64 // over captures that used a reference
	MeanUpBytesPerDay   float64
}

// Summarize computes aggregates from a run under the given downlink model.
func Summarize(res *Result, down link.Budget) Summary {
	var s Summary
	var psnrSum float64
	var psnrN int
	var bytesSum float64
	var tileSum float64
	var nonDropped int
	var refSum float64
	var refN int
	perSatDay := map[[2]int]int64{}
	for _, r := range res.Records {
		s.Captures++
		if r.Dropped {
			s.Dropped++
			continue
		}
		nonDropped++
		bytesSum += float64(r.DownBytes)
		tileSum += r.DownTileFrac
		s.TotalDownBytes += r.DownBytes
		perSatDay[[2]int{r.Sat, r.Day}] += r.DownBytes
		if !math.IsNaN(r.PSNR) && !math.IsInf(r.PSNR, 0) {
			psnrSum += r.PSNR
			psnrN++
		}
		if r.RefAge >= 0 {
			refSum += float64(r.RefAge)
			refN++
		}
	}
	if psnrN > 0 {
		s.MeanPSNR = psnrSum / float64(psnrN)
	}
	if nonDropped > 0 {
		s.MeanDownBytes = bytesSum / float64(nonDropped)
		s.MeanTileFrac = tileSum / float64(nonDropped)
	}
	if refN > 0 {
		s.MeanRefAge = refSum / float64(refN)
	}
	if len(perSatDay) > 0 {
		var bpsSum float64
		secondsPerDay := down.SecondsPerContact * float64(down.ContactsPerDay)
		for _, b := range perSatDay {
			bpsSum += float64(b) * 8 / secondsPerDay
		}
		s.RequiredDownlinkBps = bpsSum / float64(len(perSatDay))
	}
	if res.Days > 0 {
		var up int64
		for _, b := range res.UpBytesByDay {
			up += b
		}
		s.MeanUpBytesPerDay = float64(up) / float64(res.Days)
	}
	return s
}
