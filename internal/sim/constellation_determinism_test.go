package sim_test

// Fleet-scale determinism: with the contended ground-station model on — the
// cross-satellite contact scheduler, per-contact meters and the contact log
// all active — a 16-satellite run must stay identical to the serial path at
// any worker count: records, per-day uplink bytes AND every booked contact.
// CI runs this under -race, which also proves the engine's fleet-scale
// capture pregeneration (more workers than locations) is data-race-free.

import (
	"reflect"
	"testing"

	"earthplus/internal/constellation"
	"earthplus/internal/core"
	"earthplus/internal/sim"
)

// constDetEnv is detEnv at fleet scale: 16 satellites on a 2-day revisit,
// so every location sees 8 satellites a day and 16 satellites compete for
// 2 stations x 7 windows = 14 daily contact slots.
func constDetEnv(parallelism int) *sim.Env {
	env := detEnv(parallelism)
	env.Orbit.Satellites = 16
	return env
}

func TestConstellationRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(env *sim.Env) (sim.System, error) {
		cfg := core.DefaultConfig()
		cfg.Constellation = constellation.Config{Stations: 2}
		return core.New(env, cfg)
	}
	type runOut struct {
		res      *sim.Result
		contacts []sim.ContactRecord
		stats    constellation.Stats
		budget   int64
	}
	run := func(parallelism int) runOut {
		t.Helper()
		env := constDetEnv(parallelism)
		// The event tracker rides along as the engine observer so the
		// concurrent ObserveVisit path runs under -race too.
		env.Observer = constellation.NewEventTracker(env.Scene, 30, 36, 0)
		sys, err := mk(env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 5, 30, 36)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 {
			t.Fatal("no captures simulated")
		}
		cs := sys.(*core.System)
		return runOut{res: res, contacts: cs.ContactLog(), stats: cs.ConstellationStats(), budget: cs.ContactBudget()}
	}

	serial := run(1)
	if len(serial.contacts) == 0 {
		t.Fatal("contended run booked no contacts")
	}
	if !reflect.DeepEqual(serial.contacts, serial.res.Contacts) {
		t.Fatal("Result.Contacts differs from the system's contact log")
	}
	if serial.stats.Stalls == 0 {
		t.Fatalf("16 satellites on 14 windows never stalled; contention not exercised (stats %+v)", serial.stats)
	}
	if serial.budget <= 0 {
		t.Fatalf("derived per-contact budget = %d, want finite", serial.budget)
	}
	// Per-contact metering: no booked contact may move more bytes than its
	// budget, and satellites book only windows that exist.
	cfg := constellation.Config{Stations: 2}
	for _, ct := range serial.contacts {
		if ct.Bytes > serial.budget {
			t.Fatalf("contact %+v over the %d-byte budget", ct, serial.budget)
		}
		if ct.Station < 0 || ct.Station >= cfg.Stations || ct.Window < 0 || ct.Window >= constellation.DefaultContactsPerStation {
			t.Fatalf("contact %+v outside the station/window grid", ct)
		}
	}
	// No station serves two satellites in the same (day, window).
	slots := map[[3]int]int{}
	for _, ct := range serial.contacts {
		key := [3]int{ct.Day, ct.Station, ct.Window}
		if prev, ok := slots[key]; ok && prev != ct.Sat {
			t.Fatalf("station %d double-booked on day %d window %d: sats %d and %d",
				ct.Station, ct.Day, ct.Window, prev, ct.Sat)
		}
		slots[key] = ct.Sat
	}

	// Worker counts beyond the location count exercise the fleet-scale
	// capture pregeneration path (5 locations, 8 workers).
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if !sim.RecordsEqualIgnoringTimings(serial.res.Records, got.res.Records) {
			t.Fatalf("contended records at Parallelism=%d differ from serial run", workers)
		}
		//lint:deterministic per-key comparison; visit order cannot affect the outcome
		for day, up := range serial.res.UpBytesByDay {
			if got.res.UpBytesByDay[day] != up {
				t.Fatalf("uplink bytes day %d at Parallelism=%d: %d vs %d", day, workers, got.res.UpBytesByDay[day], up)
			}
		}
		if !reflect.DeepEqual(serial.contacts, got.contacts) {
			t.Fatalf("contact log at Parallelism=%d differs from serial run", workers)
		}
		if serial.stats != got.stats {
			t.Fatalf("scheduler stats at Parallelism=%d: %+v vs %+v", workers, got.stats, serial.stats)
		}
	}
}

// TestConstellationOffIsFlatBudget: a zero Constellation config must be
// byte-identical to the pre-constellation flat-budget path, with no contact
// log — defaults-off runs cannot drift.
func TestConstellationOffIsFlatBudget(t *testing.T) {
	run := func(cfg core.Config) *sim.Result {
		t.Helper()
		env := constDetEnv(2)
		sys, err := core.New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 5, 30, 34)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(core.DefaultConfig())
	explicit := core.DefaultConfig()
	explicit.Constellation = constellation.Config{}
	again := run(explicit)
	if !sim.RecordsEqualIgnoringTimings(flat.Records, again.Records) {
		t.Fatal("zero constellation config changed the flat-budget records")
	}
	if flat.Contacts != nil || again.Contacts != nil {
		t.Fatalf("flat-budget runs grew a contact log: %d / %d", len(flat.Contacts), len(again.Contacts))
	}
	//lint:deterministic per-key comparison; visit order cannot affect the outcome
	for day, up := range flat.UpBytesByDay {
		if again.UpBytesByDay[day] != up {
			t.Fatalf("uplink bytes day %d: %d vs %d", day, again.UpBytesByDay[day], up)
		}
	}
}
