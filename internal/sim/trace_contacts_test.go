package sim

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
)

// contactResult is a small run with a contact log in scheduler (Sat,
// Station, Window) order — NOT the trace file's sort order.
func contactResult() *Result {
	return &Result{
		System:       "t",
		Days:         2,
		UpBytesByDay: map[int]int64{30: 100, 31: 80},
		Records:      []Record{{Day: 30, Loc: 0, Sat: 1, PSNR: 33}},
		Contacts: []ContactRecord{
			{Sat: 0, Station: 1, Window: 0, Day: 31, Bytes: 40},
			{Sat: 1, Station: 0, Window: 0, Day: 30, Bytes: 120},
			{Sat: 1, Station: 0, Window: 1, Day: 31, Bytes: 40},
			{Sat: 2, Station: 1, Window: 0, Day: 30, Bytes: 0},
		},
	}
}

func TestTraceContactsRoundTrip(t *testing.T) {
	res := contactResult()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Contacts) != len(res.Contacts) {
		t.Fatalf("contacts %d != %d", len(back.Contacts), len(res.Contacts))
	}
	// The file carries contacts sorted by (station, day, sat, window);
	// compare as sets by sorting both sides the same way.
	key := func(c ContactRecord) [4]int { return [4]int{c.Station, c.Day, c.Sat, c.Window} }
	want := append([]ContactRecord(nil), res.Contacts...)
	sort.Slice(want, func(i, j int) bool {
		a, b := key(want[i]), key(want[j])
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	if !reflect.DeepEqual(back.Contacts, want) {
		t.Fatalf("restored contacts:\n%+v\nwant (station, day, sat, window) order:\n%+v", back.Contacts, want)
	}
	for i := 1; i < len(back.Contacts); i++ {
		if k1, k2 := key(back.Contacts[i-1]), key(back.Contacts[i]); !(k1[0] < k2[0] ||
			(k1[0] == k2[0] && (k1[1] < k2[1] || (k1[1] == k2[1] && k1[2] <= k2[2])))) {
			t.Fatalf("contact lines not sorted by (station, day, sat): %v then %v", k1, k2)
		}
	}
	// Records and uplink lines survive alongside the contact lines.
	if len(back.Records) != 1 || back.Records[0].PSNR != 33 {
		t.Fatalf("records corrupted: %+v", back.Records)
	}
	if back.UpBytesByDay[30] != 100 || back.UpBytesByDay[31] != 80 {
		t.Fatalf("uplink lines corrupted: %+v", back.UpBytesByDay)
	}
}

// TestTraceContactsByteIdentical: two dumps of the same result — and of a
// contact-log permutation of it — must be byte-identical, so constellation
// trace files diff clean across reruns.
func TestTraceContactsByteIdentical(t *testing.T) {
	var a, b, c bytes.Buffer
	if err := WriteTrace(&a, contactResult()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, contactResult()); err != nil {
		t.Fatal(err)
	}
	perm := contactResult()
	perm.Contacts[0], perm.Contacts[3] = perm.Contacts[3], perm.Contacts[0]
	perm.Contacts[1], perm.Contacts[2] = perm.Contacts[2], perm.Contacts[1]
	if err := WriteTrace(&c, perm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("reruns produced different trace bytes")
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("contact-log order leaked into the trace bytes")
	}
	// WriteTrace must not mutate the caller's contact log while sorting.
	res := contactResult()
	want := append([]ContactRecord(nil), res.Contacts...)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Contacts, want) {
		t.Fatal("WriteTrace reordered the caller's contact log")
	}
}

// TestTraceWithoutContactsUnchanged: a flat-budget run (no contact log)
// writes no contact lines — the v1 format is unchanged for existing
// consumers.
func TestTraceWithoutContactsUnchanged(t *testing.T) {
	res := contactResult()
	res.Contacts = nil
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("ctStation")) {
		t.Fatal("contact lines written for a contact-free run")
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Contacts != nil {
		t.Fatalf("phantom contacts restored: %+v", back.Contacts)
	}
}
