package sim_test

// End-to-end determinism: the sharded engine must produce records
// identical to the serial path at any worker count, for Earth+ (whose
// ground segment and reference caches are the hardest state to shard) and
// for Kodan. CI runs this under -race, so it also proves the concurrent
// OnCapture path is data-race-free.

import (
	"testing"

	"earthplus/internal/baseline"
	"earthplus/internal/codec"
	"earthplus/internal/core"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// detConfig is a small scene with enough locations to exercise real
// sharding: snow, clouds and several content types at 64x64.
func detConfig() scene.Config {
	return scene.Config{
		Seed:     9137,
		Width:    64,
		Height:   64,
		TileSize: 16,
		Bands:    raster.PlanetBands(),
		Locations: []scene.Location{
			{Name: "A", Content: scene.Coastal},
			{Name: "B", Content: scene.Forest},
			{Name: "C", Content: scene.Snowfield, SnowProne: true},
			{Name: "D", Content: scene.City},
			{Name: "E", Content: scene.Agriculture},
		},
		Clouds:            scene.DefaultClouds(),
		Changes:           scene.DefaultChanges(),
		IllumGainJitter:   0.10,
		IllumOffsetJitter: 0.03,
		SensorNoise:       0.004,
		AtmosVariability:  0.03,
		MicroTexture:      0.12,
	}
}

func detEnv(parallelism int) *sim.Env {
	return &sim.Env{
		Scene:             scene.New(detConfig()),
		Orbit:             orbit.Constellation{Satellites: 4, RevisitDays: 2},
		Downlink:          link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		UplinkBytesPerDay: 6 << 10, // tight enough to exercise uplink trimming
		Parallelism:       parallelism,
	}
}

// runDet runs one system builder over a short window.
func runDet(t *testing.T, parallelism int, mk func(env *sim.Env) (sim.System, error)) *sim.Result {
	t.Helper()
	env := detEnv(parallelism)
	sys, err := mk(env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(env, sys, 5, 30, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no captures simulated")
	}
	return res
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	systems := []struct {
		name string
		mk   func(env *sim.Env) (sim.System, error)
	}{
		{"Earth+", func(env *sim.Env) (sim.System, error) {
			cfg := core.DefaultConfig()
			cfg.GuaranteePeriodDays = 4 // exercise guaranteed downloads in-window
			return core.New(env, cfg)
		}},
		{"Kodan", func(env *sim.Env) (sim.System, error) {
			return baseline.NewKodan(env, 1.0, codec.DefaultOptions())
		}},
	}
	for _, sys := range systems {
		t.Run(sys.name, func(t *testing.T) {
			serial := runDet(t, 1, sys.mk)
			for _, workers := range []int{4, 8} {
				got := runDet(t, workers, sys.mk)
				if !sim.RecordsEqualIgnoringTimings(serial.Records, got.Records) {
					t.Fatalf("records at Parallelism=%d differ from serial run", workers)
				}
				if len(got.UpBytesByDay) != len(serial.UpBytesByDay) {
					t.Fatalf("uplink day count at Parallelism=%d: %d vs %d", workers, len(got.UpBytesByDay), len(serial.UpBytesByDay))
				}
				//lint:deterministic per-key comparison; visit order cannot affect the outcome
				for day, up := range serial.UpBytesByDay {
					if got.UpBytesByDay[day] != up {
						t.Fatalf("uplink bytes day %d at Parallelism=%d: %d vs %d", day, workers, got.UpBytesByDay[day], up)
					}
				}
			}
		})
	}
}

// TestStorageBoundedRunDeterministicAcrossWorkerCounts pins the eviction
// paths to the engine's determinism contract: with a reference-store
// budget tight enough that evictions, reference-miss fallbacks and uplink
// re-seeding all trigger, records must still be byte-identical at any
// worker count, for both eviction policies. Runs under -race in CI, so it
// also proves the bounded cache's concurrent Visit path is race-free.
func TestStorageBoundedRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// One 64x64 scene location's detection-resolution reference is
	// (64/4)^2 * 4 bands * 2 bytes = 2048 bytes; 5 locations make a
	// 10240-byte working set. A 5000-byte budget holds ~2 of 5. A
	// COMPRESSED reference is ~RefBPP/16 of that (~850 bytes with
	// framing), so the compressed case gets a proportionally tighter
	// budget that still evicts — it exercises decode-on-visit, frame
	// routing and encoded-byte eviction accounting under the same
	// record-identity contract.
	cases := []struct {
		name     string
		policy   string
		compress bool
		budget   int64
	}{
		{"lru", "lru", false, 5000},
		{"schedule", "schedule", false, 5000},
		{"lru-refcompress", "lru", true, 2000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(env *sim.Env) (sim.System, error) {
				cfg := core.DefaultConfig()
				cfg.StorageBytes = tc.budget
				cfg.EvictPolicy = tc.policy
				cfg.RefCompression = tc.compress
				return core.New(env, cfg)
			}
			serial := runDet(t, 1, mk)
			misses := 0
			for _, r := range serial.Records {
				if r.RefMiss {
					misses++
				}
			}
			if misses == 0 {
				t.Fatal("bounded run never missed; budget not binding, determinism not exercised")
			}
			for _, workers := range []int{4, 8} {
				got := runDet(t, workers, mk)
				if !sim.RecordsEqualIgnoringTimings(serial.Records, got.Records) {
					t.Fatalf("storage-bounded records at Parallelism=%d differ from serial run", workers)
				}
				//lint:deterministic per-key comparison; visit order cannot affect the outcome
				for day, up := range serial.UpBytesByDay {
					if got.UpBytesByDay[day] != up {
						t.Fatalf("uplink bytes day %d at Parallelism=%d: %d vs %d", day, workers, got.UpBytesByDay[day], up)
					}
				}
			}
		})
	}
}

// TestTiledStoreRunDeterministicAcrossWorkerCounts pins the tiled (EPT1)
// storage profile to the engine's determinism contract: with the codec
// tiled, references compressed and the references LARGE enough at
// detection resolution to span several 64px codec tiles — so the ground
// really splices mirror frames per-tile instead of trivially re-encoding
// everything — records must be byte-identical at worker counts 1, 4 and
// 8. CI runs this under -race, so it also proves the per-tile worker
// pool and the splice path are race-free.
func TestTiledStoreRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := detConfig()
	cfg.Width, cfg.Height, cfg.TileSize = 256, 256, 32
	cfg.Locations = cfg.Locations[:3]
	mkEnv := func(parallelism int) *sim.Env {
		return &sim.Env{
			Scene:             scene.New(cfg),
			Orbit:             orbit.Constellation{Satellites: 4, RevisitDays: 2},
			Downlink:          link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
			UplinkBytesPerDay: 64 << 10,
			Parallelism:       parallelism,
		}
	}
	run := func(parallelism int) (*sim.Result, *core.System) {
		c := core.DefaultConfig()
		c.RefCompression = true
		c.RefDownsample = 2 // 128x128 references: a 2x2 codec-tile grid
		c.CodecOpts.Tiled = true
		env := mkEnv(parallelism)
		sys, err := core.New(env, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(env, sys, 5, 30, 36)
		if err != nil {
			t.Fatal(err)
		}
		return res, sys
	}
	serial, sys := run(1)
	if len(serial.Records) == 0 {
		t.Fatal("no captures simulated")
	}
	if _, total := sys.SpliceTileStats(); total == 0 {
		t.Fatal("tiled run never spliced a mirror frame; profile not exercised")
	}
	for _, workers := range []int{4, 8} {
		got, _ := run(workers)
		if !sim.RecordsEqualIgnoringTimings(serial.Records, got.Records) {
			t.Fatalf("tiled-store records at Parallelism=%d differ from serial run", workers)
		}
		//lint:deterministic per-key comparison; visit order cannot affect the outcome
		for day, up := range serial.UpBytesByDay {
			if got.UpBytesByDay[day] != up {
				t.Fatalf("uplink bytes day %d at Parallelism=%d: %d vs %d", day, workers, got.UpBytesByDay[day], up)
			}
		}
	}
}

// TestLossyLinkRunDeterministicAcrossWorkerCounts pins fault injection to
// the determinism contract: with a lossy channel aggressive enough that
// drops, corruptions, canceled contacts and retransmits all fire, records
// must still be byte-identical at any worker count. Fault outcomes are
// pure functions of (seed, direction, sat, day, loc), so the sharded
// downlink path and the serial uplink delivery loop cannot reorder them.
// CI runs this under -race: it also proves the fault counters' concurrent
// downlink increments are race-free.
func TestLossyLinkRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(env *sim.Env) (sim.System, error) {
		cfg := core.DefaultConfig()
		cfg.LinkFaults = link.UniformFaults(0.08, 3)
		return core.New(env, cfg)
	}
	serial := runDet(t, 1, mk)
	downFaults := 0
	for _, r := range serial.Records {
		if r.DownDropped || r.DownCorrupted {
			downFaults++
		}
	}
	if downFaults == 0 {
		t.Fatal("8% loss never faulted a downlink frame; determinism not exercised")
	}
	for _, workers := range []int{4, 8} {
		got := runDet(t, workers, mk)
		if !sim.RecordsEqualIgnoringTimings(serial.Records, got.Records) {
			t.Fatalf("lossy-link records at Parallelism=%d differ from serial run", workers)
		}
		//lint:deterministic per-key comparison; visit order cannot affect the outcome
		for day, up := range serial.UpBytesByDay {
			if got.UpBytesByDay[day] != up {
				t.Fatalf("uplink bytes day %d at Parallelism=%d: %d vs %d", day, workers, got.UpBytesByDay[day], up)
			}
		}
	}
}

// TestRunStreamMatchesRun pins the streaming emitter to the retained-record
// path: same records, same order, and a streamed Accumulator must summarise
// exactly like Summarize over the retained set.
func TestRunStreamMatchesRun(t *testing.T) {
	mk := func(env *sim.Env) (sim.System, error) {
		return baseline.NewKodan(env, 1.0, codec.DefaultOptions())
	}
	want := runDet(t, 2, mk)

	env := detEnv(2)
	sys, err := mk(env)
	if err != nil {
		t.Fatal(err)
	}
	acc := sim.NewAccumulator()
	var streamed []sim.Record
	res, err := sim.RunStream(env, sys, 5, 30, 36, func(r *sim.Record) {
		acc.Add(r)
		streamed = append(streamed, *r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatal("RunStream retained records")
	}
	if !sim.RecordsEqualIgnoringTimings(want.Records, streamed) {
		t.Fatal("streamed records differ from Run records")
	}
	if got, wantS := acc.Summary(res, env.Downlink), sim.Summarize(want, env.Downlink); got != wantS {
		t.Fatalf("streamed summary %+v != retained summary %+v", got, wantS)
	}
}
