package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, newFake(), 0, 30, 62)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.System != res.System || back.Days != res.Days {
		t.Fatalf("header mismatch: %s/%d", back.System, back.Days)
	}
	if len(back.Records) != len(res.Records) {
		t.Fatalf("records %d != %d", len(back.Records), len(res.Records))
	}
	for i := range res.Records {
		a, b := res.Records[i], back.Records[i]
		// NaN PSNR serialises as null and returns as zero value NaN-less;
		// compare the rest exactly and PSNR only when finite.
		if a.Day != b.Day || a.Loc != b.Loc || a.Sat != b.Sat ||
			a.Dropped != b.Dropped || a.DownBytes != b.DownBytes ||
			a.DownTileFrac != b.DownTileFrac || a.RefAge != b.RefAge {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		switch {
		case math.IsNaN(a.PSNR): // dropped: stays NaN
		case math.IsInf(a.PSNR, 1): // bit-exact: clamped to the sentinel
			if b.PSNR < 500 {
				t.Fatalf("record %d infinite PSNR became %v", i, b.PSNR)
			}
		case a.PSNR != b.PSNR:
			t.Fatalf("record %d PSNR %v vs %v", i, a.PSNR, b.PSNR)
		}
	}
	if len(back.UpBytesByDay) != len(res.UpBytesByDay) {
		t.Fatalf("uplink days %d != %d", len(back.UpBytesByDay), len(res.UpBytesByDay))
	}
	//lint:deterministic per-key comparison; visit order cannot affect the outcome
	for d, v := range res.UpBytesByDay {
		if back.UpBytesByDay[d] != v {
			t.Fatalf("uplink day %d: %d != %d", d, back.UpBytesByDay[d], v)
		}
	}
	// Summaries computed from the restored trace must match.
	sa := Summarize(res, env.Downlink)
	sb := Summarize(back, env.Downlink)
	if sa.TotalDownBytes != sb.TotalDownBytes || sa.Captures != sb.Captures {
		t.Fatalf("summaries diverge: %+v vs %+v", sa, sb)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := ReadTrace(strings.NewReader(`{"system":"x","days":1,"version":99}`)); err == nil {
		t.Fatal("expected version error")
	}
	bad := `{"system":"x","days":1,"version":1,"generator":"g"}` + "\n[1,2,3]\n"
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("expected record parse error")
	}
}

// NaN PSNR must not break serialisation (dropped captures have NaN).
func TestTraceHandlesNaN(t *testing.T) {
	res := &Result{
		System:       "t",
		Days:         1,
		UpBytesByDay: map[int]int64{0: 5},
		Records:      []Record{{Day: 0, Dropped: true, PSNR: math.NaN()}},
	}
	var buf bytes.Buffer
	err := WriteTrace(&buf, res)
	if err == nil {
		back, rerr := ReadTrace(&buf)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if len(back.Records) != 1 {
			t.Fatalf("records = %d", len(back.Records))
		}
		return
	}
	// encoding/json rejects NaN; Run stores NaN for dropped captures, so
	// WriteTrace must sanitise. If we got here the sanitising is missing.
	t.Fatalf("WriteTrace failed on NaN PSNR: %v", err)
}
