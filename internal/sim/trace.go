package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Trace is the serialisable form of a simulation run: the header describes
// the workload, each line of the body is one capture record. The format is
// JSON-lines so multi-gigabyte traces stream without loading whole.
type TraceHeader struct {
	System    string `json:"system"`
	Days      int    `json:"days"`
	Version   int    `json:"version"`
	Generator string `json:"generator"`
}

// traceVersion is bumped when Record's serialised shape changes.
const traceVersion = 1

// WriteTrace streams a result as a JSON-lines trace: one header line
// followed by one line per record, then one line per (day, uplink bytes)
// pair.
func WriteTrace(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := TraceHeader{System: res.System, Days: res.Days, Version: traceVersion, Generator: "earthplus-sim"}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("sim: writing trace header: %w", err)
	}
	for i := range res.Records {
		if err := enc.Encode(toWire(&res.Records[i])); err != nil {
			return fmt.Errorf("sim: writing record %d: %w", i, err)
		}
	}
	type upLine struct {
		UpDay   int   `json:"upDay"`
		UpBytes int64 `json:"upBytes"`
	}
	// Sorted, not map order: two identical runs must dump byte-identical
	// trace FILES, and Go randomises map iteration.
	days := make([]int, 0, len(res.UpBytesByDay))
	for day := range res.UpBytesByDay {
		days = append(days, day)
	}
	sort.Ints(days)
	for _, day := range days {
		if err := enc.Encode(upLine{UpDay: day, UpBytes: res.UpBytesByDay[day]}); err != nil {
			return fmt.Errorf("sim: writing uplink line: %w", err)
		}
	}
	// Per-station contact lines, sorted by (station, day, sat, window) so
	// constellation dump files are byte-identical across reruns regardless
	// of the scheduler's booking order.
	cts := make([]ContactRecord, len(res.Contacts))
	copy(cts, res.Contacts)
	sort.Slice(cts, func(i, j int) bool {
		if cts[i].Station != cts[j].Station {
			return cts[i].Station < cts[j].Station
		}
		if cts[i].Day != cts[j].Day {
			return cts[i].Day < cts[j].Day
		}
		if cts[i].Sat != cts[j].Sat {
			return cts[i].Sat < cts[j].Sat
		}
		return cts[i].Window < cts[j].Window
	})
	for i := range cts {
		if err := enc.Encode(toWireContact(&cts[i])); err != nil {
			return fmt.Errorf("sim: writing contact line: %w", err)
		}
	}
	return bw.Flush()
}

// wireContact is ContactRecord's JSON-lines shape. The ctStation key also
// disambiguates contact lines from records and uplink lines on read.
type wireContact struct {
	CtStation int   `json:"ctStation"`
	CtDay     int   `json:"ctDay"`
	CtSat     int   `json:"ctSat"`
	CtWindow  int   `json:"ctWindow"`
	CtBytes   int64 `json:"ctBytes"`
}

func toWireContact(c *ContactRecord) wireContact {
	return wireContact{
		CtStation: c.Station, CtDay: c.Day, CtSat: c.Sat,
		CtWindow: c.Window, CtBytes: c.Bytes,
	}
}

// wireRecord is Record's JSON shape: PSNR is a pointer so the NaN of
// dropped captures round-trips as null (encoding/json rejects NaN).
type wireRecord struct {
	Record
	PSNR *float64 `json:"PSNR,omitempty"`
}

// wireInfPSNR stands in for an infinite PSNR (bit-exact reconstruction);
// JSON cannot carry Inf.
const wireInfPSNR = 999.0

func toWire(r *Record) wireRecord {
	w := wireRecord{Record: *r}
	w.Record.PSNR = 0
	switch {
	case math.IsInf(r.PSNR, 1):
		v := wireInfPSNR
		w.PSNR = &v
	case !math.IsNaN(r.PSNR) && !math.IsInf(r.PSNR, 0):
		v := r.PSNR
		w.PSNR = &v
	}
	return w
}

func (w wireRecord) record() Record {
	r := w.Record
	if w.PSNR != nil {
		r.PSNR = *w.PSNR
	} else {
		r.PSNR = math.NaN()
	}
	return r
}

// ReadTrace parses a trace written by WriteTrace back into a Result.
func ReadTrace(r io.Reader) (*Result, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr TraceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("sim: reading trace header: %w", err)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("sim: trace version %d unsupported (want %d)", hdr.Version, traceVersion)
	}
	res := &Result{System: hdr.System, Days: hdr.Days, UpBytesByDay: make(map[int]int64)}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("sim: reading trace line: %w", err)
		}
		// Uplink lines carry "upDay"; records do not.
		var up struct {
			UpDay   *int  `json:"upDay"`
			UpBytes int64 `json:"upBytes"`
		}
		if err := json.Unmarshal(raw, &up); err == nil && up.UpDay != nil {
			res.UpBytesByDay[*up.UpDay] = up.UpBytes
			continue
		}
		// Contact lines carry "ctStation"; records and uplink lines do not.
		var ct struct {
			CtStation *int `json:"ctStation"`
			wireContact
		}
		if err := json.Unmarshal(raw, &ct); err == nil && ct.CtStation != nil {
			res.Contacts = append(res.Contacts, ContactRecord{
				Station: *ct.CtStation, Day: ct.CtDay, Sat: ct.CtSat,
				Window: ct.CtWindow, Bytes: ct.CtBytes,
			})
			continue
		}
		var wr wireRecord
		if err := json.Unmarshal(raw, &wr); err != nil {
			return nil, fmt.Errorf("sim: parsing record: %w", err)
		}
		res.Records = append(res.Records, wr.record())
	}
	return res, nil
}
