// The sharded parallel simulation engine. One simulated day is split into
// per-location shards: a location's visit sequence is always processed in
// order by a single worker, distinct locations run concurrently on a
// bounded pool, and the resulting records are merged back into exactly the
// serial walk order (day ascending, then location ascending, then visiting
// satellites in ascending id order). Day-end ground work (reference-upload
// packing) runs on a sequential barrier between days, because the uplink
// budget couples locations.
//
// Constellation-scale runs invert the shape the sharding was built for:
// many satellites over few locations. When the requested worker count
// exceeds the location count, the surplus workers pre-generate the day's
// captures across every (location, satellite) visit first — capture
// synthesis is a pure function of (loc, day, sat), so generation order is
// free — and the location shards then consume the ready captures in visit
// order. System state is still touched per location in order, so results
// stay byte-identical to the serial walk at any worker count.
//
// The engine guarantees determinism: because Systems only share state
// across locations at the day-end barrier, every Record field except the
// measured wall-clock timings (EncodeSec, CloudSec, ChangeSec) is
// byte-identical at any worker count, including the serial path.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// Workers resolves a requested simulation parallelism against n location
// shards, following the codec.Parallelism convention: values <= 0 mean
// GOMAXPROCS, and the pool never exceeds the shard count.
func Workers(requested, n int) int {
	p := requested
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// RunStream simulates days [startDay, endDay) like Run, but hands each
// Record to emit in the deterministic serial order instead of retaining it.
// The returned Result carries the run's aggregates (System, Days,
// UpBytesByDay) with Records nil; a nil emit discards records. Experiments
// that only need aggregates use this with an Accumulator so that
// whole-constellation runs hold a bounded number of records in memory at
// once (at most one day's worth) instead of the full evaluation window.
func RunStream(env *Env, sys System, bootstrapFrom, startDay, endDay int, emit func(*Record)) (*Result, error) {
	if err := env.Orbit.Validate(); err != nil {
		return nil, err
	}
	if err := env.Downlink.Validate(); err != nil {
		return nil, err
	}
	if err := bootstrap(env, sys, bootstrapFrom, startDay); err != nil {
		return nil, err
	}
	res := &Result{System: sys.Name(), UpBytesByDay: make(map[int]int64), Days: endDay - startDay}
	grid := env.Scene.Grid()
	nLoc := env.Scene.NumLocations()
	// req is the full requested worker budget; pool is the slice of it that
	// can hold location shards. The difference (req > pool) pre-generates
	// captures across satellites — see the package comment.
	req := env.Parallelism
	if req <= 0 {
		req = runtime.GOMAXPROCS(0)
	}
	pool := Workers(req, nLoc)

	// shards[loc] is reused across days; records are emitted (and the
	// backing slices recycled) at the end of every day.
	var shards [][]Record
	if req > 1 {
		shards = make([][]Record, nLoc)
	}
	for day := startDay; day < endDay; day++ {
		if req <= 1 {
			// Serial fast path: identical to the historical walk.
			for loc := 0; loc < nLoc; loc++ {
				for _, satID := range env.Orbit.VisitsOn(loc, day) {
					rec, err := processVisit(env, sys, grid, day, loc, satID, nil)
					if err != nil {
						return nil, err
					}
					if emit != nil {
						emit(&rec)
					}
				}
			}
		} else {
			if err := runDaySharded(env, sys, grid, day, pool, req, shards, emit); err != nil {
				return nil, err
			}
		}
		// Sequential day-end barrier: uplink packing couples locations
		// through the shared per-satellite budget, so it never runs
		// concurrently with captures.
		up, err := sys.OnDayEnd(day)
		if err != nil {
			return nil, fmt.Errorf("sim: %s day %d ground: %w", sys.Name(), day, err)
		}
		res.UpBytesByDay[day] = up
	}
	if cr, ok := sys.(ContactReporter); ok {
		res.Contacts = cr.ContactLog()
	}
	return res, nil
}

// runDaySharded fans one day's locations out over a bounded worker pool and
// merges the per-location records back in location order. When req exceeds
// the location pool, the day's captures are pre-generated across every
// (location, satellite) visit first so fleet-scale runs over few locations
// still use the full worker budget.
func runDaySharded(env *Env, sys System, grid raster.TileGrid, day, pool, req int, shards [][]Record, emit func(*Record)) error {
	nLoc := len(shards)
	var pre [][]*scene.Capture
	if req > pool {
		pre = pregenerateCaptures(env, day, nLoc, req)
	}
	errs := make([]error, nLoc)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(pool)
	for i := 0; i < pool; i++ {
		go func() {
			defer wg.Done()
			for {
				loc := int(next.Add(1)) - 1
				if loc >= nLoc {
					return
				}
				recs := shards[loc][:0]
				for vi, satID := range env.Orbit.VisitsOn(loc, day) {
					var c *scene.Capture
					if pre != nil {
						c, pre[loc][vi] = pre[loc][vi], nil
					}
					rec, err := processVisit(env, sys, grid, day, loc, satID, c)
					if err != nil {
						errs[loc] = err
						break
					}
					recs = append(recs, rec)
				}
				shards[loc] = recs
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: the lowest-location failure wins, as
	// it would in the serial walk (later locations may have already run —
	// their records are discarded, matching serial early-return).
	for loc := 0; loc < nLoc; loc++ {
		if errs[loc] != nil {
			// Recycle pre-generated captures the failed shard never reached.
			for _, locPre := range pre {
				for _, c := range locPre {
					if c != nil {
						env.Scene.ReleaseCapture(c)
					}
				}
			}
			return errs[loc]
		}
	}
	if emit != nil {
		for loc := 0; loc < nLoc; loc++ {
			for i := range shards[loc] {
				emit(&shards[loc][i])
			}
		}
	}
	return nil
}

// pregenerateCaptures synthesises every (location, satellite) capture of
// one day concurrently on workers goroutines. Capture content is a pure
// function of (loc, day, sat), so generation order does not affect results.
func pregenerateCaptures(env *Env, day, nLoc, workers int) [][]*scene.Capture {
	type visit struct{ loc, idx, sat int }
	var visits []visit
	pre := make([][]*scene.Capture, nLoc)
	for loc := 0; loc < nLoc; loc++ {
		sats := env.Orbit.VisitsOn(loc, day)
		pre[loc] = make([]*scene.Capture, len(sats))
		for i, sat := range sats {
			visits = append(visits, visit{loc, i, sat})
		}
	}
	if workers > len(visits) {
		workers = len(visits)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(visits) {
					return
				}
				v := visits[i]
				pre[v.loc][v.idx] = env.Scene.CaptureImage(v.loc, day, v.sat)
			}
		}()
	}
	wg.Wait()
	return pre
}

// processVisit generates one capture (or consumes the pre-generated one),
// runs the system on it, evaluates the reconstruction and returns the
// capture's Record. Capture buffers (and the system's reconstruction) are
// recycled into the scene's pools afterwards.
func processVisit(env *Env, sys System, grid raster.TileGrid, day, loc, satID int, pre *scene.Capture) (Record, error) {
	cap := pre
	if cap == nil {
		cap = env.Scene.CaptureImage(loc, day, satID)
	}
	out, err := sys.OnCapture(cap)
	if err != nil {
		env.Scene.ReleaseCapture(cap)
		return Record{}, fmt.Errorf("sim: %s day %d loc %d sat %d: %w", sys.Name(), day, loc, satID, err)
	}
	rec := Record{
		Day: day, Loc: loc, Sat: satID,
		Dropped:       out.Dropped,
		TrueCoverage:  cap.Coverage,
		DownBytes:     out.DownBytes,
		PerBandBytes:  out.PerBandBytes,
		RefAge:        out.RefAge,
		RefMiss:       out.RefMiss,
		Guaranteed:    out.Guaranteed,
		DownDropped:   out.DownDropped,
		DownCorrupted: out.DownCorrupted,
		EncodeSec:     out.EncodeSec,
		CloudSec:      out.CloudSec,
		ChangeSec:     out.ChangeSec,
		PSNR:          math.NaN(),
	}
	if out.TotalTiles > 0 {
		rec.DownTileFrac = out.DownTilesPerBand / float64(out.TotalTiles)
	}
	if !out.Dropped && out.Recon != nil {
		rec.PSNR = EvalPSNR(cap, out.Recon, grid)
	}
	if env.Observer != nil && !out.Dropped && out.Recon != nil {
		env.Observer.ObserveVisit(&rec, cap, out.Recon, grid)
	}
	// A well-behaved System returns a fresh reconstruction; guard against
	// one aliasing the capture so the pools never hold an image twice.
	if out.Recon != nil && out.Recon != cap.Image && out.Recon != cap.Truth {
		env.Scene.ReleaseImage(out.Recon)
	}
	env.Scene.ReleaseCapture(cap)
	return rec, nil
}
