package sim

import (
	"math"
	"testing"

	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

// fakeSystem is a minimal System that downloads a fixed byte count and
// returns the truth as its reconstruction.
type fakeSystem struct {
	bootstrapped map[int]bool
	captures     int
	perCapture   int64
	up           int64
}

func newFake() *fakeSystem {
	return &fakeSystem{bootstrapped: map[int]bool{}, perCapture: 1000, up: 77}
}

func (f *fakeSystem) Name() string { return "fake" }

func (f *fakeSystem) Bootstrap(cap *scene.Capture) error {
	f.bootstrapped[cap.Loc] = true
	return nil
}

func (f *fakeSystem) OnCapture(cap *scene.Capture) (Outcome, error) {
	f.captures++
	if cap.Coverage > 0.5 {
		return Outcome{Dropped: true, TotalTiles: 64}, nil
	}
	return Outcome{
		DownBytes:        f.perCapture,
		DownTilesPerBand: 16,
		TotalTiles:       64,
		Recon:            cap.Image.Clone(), // EvalPSNR scores against the capture
		RefAge:           3,
	}, nil
}

func (f *fakeSystem) OnDayEnd(int) (int64, error) { return f.up, nil }

func testEnv(t *testing.T) *Env {
	t.Helper()
	return &Env{
		Scene:    scene.New(scene.LargeConstellation(scene.Quick)),
		Orbit:    orbit.Constellation{Satellites: 4, RevisitDays: 8},
		Downlink: link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
}

func TestRunBootstrapsEveryLocation(t *testing.T) {
	env := testEnv(t)
	sys := newFake()
	res, err := Run(env, sys, 0, 30, 46)
	if err != nil {
		t.Fatal(err)
	}
	for loc := 0; loc < env.Scene.NumLocations(); loc++ {
		if !sys.bootstrapped[loc] {
			t.Fatalf("location %d not bootstrapped", loc)
		}
	}
	// 4 satellites, 8-day revisit: 16 days x 0.5 visits/day = 8 captures.
	if len(res.Records) != 8 {
		t.Fatalf("got %d records, want 8", len(res.Records))
	}
	if res.Days != 16 {
		t.Fatalf("Days = %d", res.Days)
	}
}

func TestRunRecordsMatchOutcomes(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, newFake(), 0, 30, 62)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Dropped {
			if r.TrueCoverage <= 0.5 {
				t.Fatalf("dropped capture with coverage %v", r.TrueCoverage)
			}
			if !math.IsNaN(r.PSNR) {
				t.Fatal("dropped capture has PSNR")
			}
			continue
		}
		if r.DownBytes != 1000 || r.DownTileFrac != 0.25 || r.RefAge != 3 {
			t.Fatalf("record %+v", r)
		}
		// Recon == capture: PSNR must be effectively infinite (or huge).
		if r.PSNR < 60 {
			t.Fatalf("capture recon PSNR = %v", r.PSNR)
		}
	}
	//lint:deterministic per-key assertion; visit order cannot affect the outcome
	for day, up := range res.UpBytesByDay {
		if up != 77 {
			t.Fatalf("day %d uplink = %d", day, up)
		}
	}
}

func TestSummarize(t *testing.T) {
	env := testEnv(t)
	res, err := Run(env, newFake(), 0, 30, 94)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res, env.Downlink)
	if s.Captures != len(res.Records) {
		t.Fatalf("captures %d != records %d", s.Captures, len(res.Records))
	}
	if s.Captures-s.Dropped <= 0 {
		t.Fatal("everything dropped")
	}
	if s.MeanDownBytes != 1000 {
		t.Fatalf("MeanDownBytes = %v", s.MeanDownBytes)
	}
	if s.MeanTileFrac != 0.25 {
		t.Fatalf("MeanTileFrac = %v", s.MeanTileFrac)
	}
	if s.MeanRefAge != 3 {
		t.Fatalf("MeanRefAge = %v", s.MeanRefAge)
	}
	if s.MeanUpBytesPerDay != 77 {
		t.Fatalf("MeanUpBytesPerDay = %v", s.MeanUpBytesPerDay)
	}
	// 1000 bytes over 7x600 s of daily contact time.
	wantBps := 1000.0 * 8 / (7 * 600)
	if math.Abs(s.RequiredDownlinkBps-wantBps) > 1e-9 {
		t.Fatalf("RequiredDownlinkBps = %v, want %v", s.RequiredDownlinkBps, wantBps)
	}
}

func TestEvalPSNRMasksCloudTiles(t *testing.T) {
	env := testEnv(t)
	// Find a moderately cloudy day so some tiles are excluded.
	day := -1
	for d := 0; d < 300; d++ {
		if c := env.Scene.CloudCoverageTarget(0, d); c > 0.2 && c < 0.45 {
			day = d
			break
		}
	}
	if day < 0 {
		t.Skip("no suitable day")
	}
	cap := env.Scene.CaptureImage(0, day, 0)
	grid := env.Scene.Grid()
	// A recon that equals the capture everywhere except cloudy tiles
	// (filled with zeros) must still score perfectly: cloudy tiles are
	// excluded from evaluation.
	recon := cap.Image.Clone()
	clear := cap.TrueCloud.TileMask(grid, 0.05)
	for t2, cloudy := range clear.Set {
		if cloudy {
			for b := 0; b < recon.NumBands(); b++ {
				raster.ZeroTile(recon, b, grid, t2)
			}
		}
	}
	if psnr := EvalPSNR(cap, recon, grid); psnr < 60 {
		t.Fatalf("cloud-masked eval PSNR = %v, want very high", psnr)
	}
}

func TestRunRejectsBadOrbit(t *testing.T) {
	env := testEnv(t)
	env.Orbit = orbit.Constellation{}
	if _, err := Run(env, newFake(), 0, 10, 20); err == nil {
		t.Fatal("expected orbit validation error")
	}
}
