package sim

import (
	"math"
	"testing"
)

func TestRecordEqualityIgnoresTimingsOnly(t *testing.T) {
	base := Record{
		Day: 3, Loc: 1, Sat: 2, TrueCoverage: 0.25, DownBytes: 1000,
		PerBandBytes: []int64{400, 600}, DownTileFrac: 0.5, PSNR: 41.5,
		RefAge: 7, EncodeSec: 0.1, CloudSec: 0.2, ChangeSec: 0.3,
	}
	timingsDiffer := base
	timingsDiffer.EncodeSec, timingsDiffer.CloudSec, timingsDiffer.ChangeSec = 9, 9, 9
	if !base.EqualIgnoringTimings(timingsDiffer) {
		t.Fatal("timing fields must be ignored")
	}
	nanA, nanB := base, base
	nanA.PSNR, nanB.PSNR = math.NaN(), math.NaN()
	if !nanA.EqualIgnoringTimings(nanB) {
		t.Fatal("two NaN PSNRs must compare equal")
	}

	mutations := map[string]func(*Record){
		"day":           func(r *Record) { r.Day++ },
		"loc":           func(r *Record) { r.Loc++ },
		"sat":           func(r *Record) { r.Sat++ },
		"dropped":       func(r *Record) { r.Dropped = true },
		"coverage":      func(r *Record) { r.TrueCoverage += 0.01 },
		"bytes":         func(r *Record) { r.DownBytes++ },
		"tilefrac":      func(r *Record) { r.DownTileFrac += 0.01 },
		"psnr":          func(r *Record) { r.PSNR += 0.01 },
		"psnr-nan":      func(r *Record) { r.PSNR = math.NaN() },
		"refage":        func(r *Record) { r.RefAge++ },
		"guarantee":     func(r *Record) { r.Guaranteed = true },
		"downdropped":   func(r *Record) { r.DownDropped = true },
		"downcorrupted": func(r *Record) { r.DownCorrupted = true },
		"bandlen":       func(r *Record) { r.PerBandBytes = []int64{400} },
		"bandval":       func(r *Record) { r.PerBandBytes = []int64{400, 601} },
	}
	//lint:deterministic independent per-mutation assertions; visit order cannot affect the outcome
	for name, mutate := range mutations {
		got := base
		got.PerBandBytes = append([]int64(nil), base.PerBandBytes...)
		mutate(&got)
		if base.EqualIgnoringTimings(got) {
			t.Fatalf("%s mutation not detected", name)
		}
	}

	if !RecordsEqualIgnoringTimings([]Record{base}, []Record{timingsDiffer}) {
		t.Fatal("sequence comparison must ignore timings")
	}
	if RecordsEqualIgnoringTimings([]Record{base}, nil) {
		t.Fatal("length mismatch not detected")
	}
	changed := base
	changed.DownBytes++
	if RecordsEqualIgnoringTimings([]Record{base}, []Record{changed}) {
		t.Fatal("element mismatch not detected")
	}
}

func TestWorkersConvention(t *testing.T) {
	if got := Workers(1, 10); got != 1 {
		t.Fatalf("Workers(1,10) = %d", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d (must not exceed shard count)", got)
	}
	if got := Workers(0, 64); got < 1 {
		t.Fatalf("Workers(0,64) = %d", got)
	}
	if got := Workers(-5, 0); got != 1 {
		t.Fatalf("Workers(-5,0) = %d", got)
	}
}
