package change

import (
	"math"
	"math/rand"
	"testing"

	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// makePair builds a reference image and a capture where a known set of
// tiles received a visible content change.
func makePair(seed uint64, w, h, tile int, changedTiles []int, delta float32) (*raster.Image, *raster.Image, raster.TileGrid) {
	g := raster.MustTileGrid(w, h, tile)
	ref := raster.New(w, h, []raster.BandInfo{{Name: "g"}})
	noise.New(seed).FillFBM(ref.Plane(0), w, h, 6, 4)
	cap := ref.Clone()
	for _, t := range changedTiles {
		x0, y0, x1, y1 := g.Bounds(t)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				cap.Set(0, x, y, cap.At(0, x, y)+delta)
			}
		}
	}
	return ref, cap, g
}

func TestDetectBandFindsChangedTiles(t *testing.T) {
	ref, cap, g := makePair(1, 256, 256, 64, []int{0, 5, 10}, 0.1)
	refLow, _ := ref.Downsample(8)
	capLow, _ := cap.Downsample(8)
	gLow, _ := g.Scaled(8)
	d := Detector{Theta: 0.02}
	mask := d.DetectBand(refLow, capLow, 0, gLow, nil)
	for _, want := range []int{0, 5, 10} {
		if !mask.Set[want] {
			t.Fatalf("tile %d not detected", want)
		}
	}
	if mask.Count() != 3 {
		t.Fatalf("detected %d tiles, want 3", mask.Count())
	}
}

func TestDetectBandRespectsExclusions(t *testing.T) {
	ref, cap, g := makePair(2, 128, 128, 64, []int{1, 3}, 0.2)
	gLow, _ := g.Scaled(4)
	refLow, _ := ref.Downsample(4)
	capLow, _ := cap.Downsample(4)
	exclude := raster.NewTileMask(gLow)
	exclude.Set[1] = true // "cloudy" tile
	mask := Detector{Theta: 0.02}.DetectBand(refLow, capLow, 0, gLow, exclude)
	if mask.Set[1] {
		t.Fatal("excluded tile was flagged")
	}
	if !mask.Set[3] {
		t.Fatal("non-excluded changed tile missed")
	}
}

func TestDownsamplingAveragesOutSmallChanges(t *testing.T) {
	// A thin change (one column per tile) dilutes 8x under 8x
	// downsampling: detectable at full resolution, marginal at low.
	const w, h, tile = 128, 128, 64
	g := raster.MustTileGrid(w, h, tile)
	ref := raster.New(w, h, []raster.BandInfo{{Name: "g"}})
	noise.New(3).FillFBM(ref.Plane(0), w, h, 6, 4)
	cap := ref.Clone()
	x0, y0, _, y1 := g.Bounds(0)
	for y := y0; y < y1; y++ {
		for x := x0; x < x0+8; x++ { // 8 of 64 columns
			cap.Set(0, x, y, cap.At(0, x, y)+0.3)
		}
	}
	fullDiff := raster.TileMeanAbsDiff(ref, cap, 0, g)[0]
	refLow, _ := ref.Downsample(8)
	capLow, _ := cap.Downsample(8)
	gLow, _ := g.Scaled(8)
	lowDiff := raster.TileMeanAbsDiff(refLow, capLow, 0, gLow)[0]
	if fullDiff <= FullResThreshold {
		t.Fatalf("setup broken: full-res diff %v below threshold", fullDiff)
	}
	// Box averaging preserves the mean of |diff| only when the sign is
	// uniform; this change is uniform-positive so means match, but mixed
	// content in real tiles shrinks it. At minimum the low-res diff must
	// not exceed the full-res diff.
	if lowDiff > fullDiff+1e-6 {
		t.Fatalf("low-res diff %v exceeds full-res %v", lowDiff, fullDiff)
	}
}

func TestProfileThetaHitsMissTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	// Changed tiles: diffs spread 0.004..0.05; unchanged: 0..0.003.
	for i := 0; i < 2000; i++ {
		samples = append(samples, Sample{LowResDiff: 0.004 + rng.Float64()*0.046, Changed: true})
		samples = append(samples, Sample{LowResDiff: rng.Float64() * 0.003, Changed: false})
	}
	theta := ProfileTheta(samples, 0.02, 0.01)
	miss, fa := MissAndFalseAlarm(samples, theta)
	if miss > 0.02 {
		t.Fatalf("miss rate %.4f exceeds target 0.02 (theta=%v)", miss, theta)
	}
	// With separable populations the false-alarm rate should stay tiny.
	if fa > 0.05 {
		t.Fatalf("false alarm rate %.4f too high (theta=%v)", fa, theta)
	}
	if theta <= 0.003 {
		t.Fatalf("theta %v should sit above the unchanged population", theta)
	}
}

func TestProfileThetaFallback(t *testing.T) {
	samples := []Sample{{LowResDiff: 0.001, Changed: false}}
	if got := ProfileTheta(samples, 0.02, 0.42); got != 0.42 {
		t.Fatalf("fallback = %v, want 0.42", got)
	}
	if got := ProfileTheta(nil, 0.02, 0.42); got != 0.42 {
		t.Fatalf("nil-sample fallback = %v", got)
	}
}

func TestProfileThetaZeroMissIsStrict(t *testing.T) {
	samples := []Sample{
		{LowResDiff: 0.01, Changed: true},
		{LowResDiff: 0.02, Changed: true},
		{LowResDiff: 0.002, Changed: false},
	}
	theta := ProfileTheta(samples, 0, 0.05)
	miss, _ := MissAndFalseAlarm(samples, theta)
	if miss != 0 {
		t.Fatalf("zero-target profiling still misses %.3f (theta=%v)", miss, theta)
	}
}

func TestMissAndFalseAlarmEmpty(t *testing.T) {
	miss, fa := MissAndFalseAlarm(nil, 0.01)
	if miss != 0 || fa != 0 {
		t.Fatalf("empty samples: miss=%v fa=%v", miss, fa)
	}
}

func TestTrueChanges(t *testing.T) {
	ref, cap, g := makePair(9, 128, 128, 64, []int{2}, 0.05)
	mask := TrueChanges(ref, cap, 0, g, nil)
	if !mask.Set[2] || mask.Count() != 1 {
		t.Fatalf("TrueChanges = %v", mask.Set)
	}
	exclude := raster.NewTileMask(g)
	exclude.Set[2] = true
	mask = TrueChanges(ref, cap, 0, g, exclude)
	if mask.Count() != 0 {
		t.Fatal("excluded tile still marked")
	}
}

// End-to-end property mirroring Fig 8's premise: with a suitably lowered θ,
// detection at low resolution still finds nearly all strongly-changed tiles
// without flagging unchanged ones.
func TestLowResDetectionEndToEnd(t *testing.T) {
	const w, h, tile, factor = 256, 256, 64, 8
	changed := []int{1, 6, 9, 14}
	ref, cap, g := makePair(11, w, h, tile, changed, 0.08)
	refLow, _ := ref.Downsample(factor)
	capLow, _ := cap.Downsample(factor)
	gLow, _ := g.Scaled(factor)
	mask := Detector{Theta: 0.01}.DetectBand(refLow, capLow, 0, gLow, nil)
	for _, want := range changed {
		if !mask.Set[want] {
			t.Fatalf("low-res detection missed tile %d", want)
		}
	}
	extra := mask.Count() - len(changed)
	if extra > 0 {
		t.Fatalf("%d unchanged tiles flagged", extra)
	}
	_ = math.Pi
}
