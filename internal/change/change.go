// Package change implements Earth+'s tile-granular change detector. A tile
// is changed when its mean absolute pixel difference against the reference
// exceeds a threshold θ (§3 uses 0.01 on [0,1]-normalised values at full
// resolution). Earth+ detects changes on downsampled images, compensating
// for the averaging-out of differences with a lower θ chosen by profiling
// the previous year's data (§4.3, §5).
package change

import (
	"math"
	"sort"

	"earthplus/internal/raster"
)

// FullResThreshold is the paper's definition of a truly-changed tile: mean
// absolute pixel difference above 0.01 at full resolution after
// illumination alignment (§3, footnote 5).
const FullResThreshold = 0.01

// Detector flags changed tiles from downsampled, illumination-aligned
// planes.
type Detector struct {
	// Theta is the per-tile mean-absolute-difference threshold applied at
	// the detector's (downsampled) working resolution.
	Theta float64
}

// DetectBand compares band b of the downsampled capture against the
// downsampled reference over grid gLow and returns the changed-tile mask.
// Tiles marked in exclude (e.g. cloudy tiles, where differences say
// nothing about the ground) are never flagged.
func (d Detector) DetectBand(refLow, capLow *raster.Image, b int, gLow raster.TileGrid, exclude *raster.TileMask) *raster.TileMask {
	diffs := raster.TileMeanAbsDiff(refLow, capLow, b, gLow)
	out := raster.NewTileMask(gLow)
	for t, diff := range diffs {
		if exclude != nil && exclude.Set[t] {
			continue
		}
		out.Set[t] = diff > d.Theta
	}
	return out
}

// Sample is one profiling observation: a tile's mean absolute difference
// at the detector's working resolution, and whether the tile truly changed
// (judged at full resolution with FullResThreshold).
type Sample struct {
	LowResDiff float64
	Changed    bool
}

// ProfileTheta chooses θ from historical samples, mirroring the paper's
// calibration: pick the largest θ whose miss rate — truly-changed tiles
// whose low-resolution difference falls at or below θ — does not exceed
// targetMiss (Fig 8 tolerates ~1.7% undetected changes). Larger θ means
// fewer unchanged tiles downloaded, so the largest safe θ is the cheapest.
// With no changed samples it returns fallback.
func ProfileTheta(samples []Sample, targetMiss float64, fallback float64) float64 {
	var changed []float64
	for _, s := range samples {
		if s.Changed {
			changed = append(changed, s.LowResDiff)
		}
	}
	if len(changed) == 0 {
		return fallback
	}
	sort.Float64s(changed)
	// θ must sit below all but a targetMiss fraction of changed tiles'
	// diffs. Index of the first diff we must still detect:
	k := int(targetMiss * float64(len(changed)))
	if k >= len(changed) {
		k = len(changed) - 1
	}
	theta := changed[k] * 0.999 // strictly below the k-th changed diff
	if theta <= 0 {
		theta = math.Nextafter(0, 1)
	}
	return theta
}

// MissAndFalseAlarm evaluates a θ over samples: miss is the fraction of
// truly-changed tiles not flagged; falseAlarm is the fraction of unchanged
// tiles flagged. Used by the Fig 8 experiment and detector ablations.
func MissAndFalseAlarm(samples []Sample, theta float64) (miss, falseAlarm float64) {
	var changed, missed, unchanged, flagged int
	for _, s := range samples {
		if s.Changed {
			changed++
			if s.LowResDiff <= theta {
				missed++
			}
		} else {
			unchanged++
			if s.LowResDiff > theta {
				flagged++
			}
		}
	}
	if changed > 0 {
		miss = float64(missed) / float64(changed)
	}
	if unchanged > 0 {
		falseAlarm = float64(flagged) / float64(unchanged)
	}
	return miss, falseAlarm
}

// TrueChanges labels tiles changed at full resolution: mean absolute
// difference above FullResThreshold, excluding the given tiles. It is the
// ground-truth judgement used for profiling and evaluation.
func TrueChanges(ref, cap *raster.Image, b int, g raster.TileGrid, exclude *raster.TileMask) *raster.TileMask {
	diffs := raster.TileMeanAbsDiff(ref, cap, b, g)
	out := raster.NewTileMask(g)
	for t, diff := range diffs {
		if exclude != nil && exclude.Set[t] {
			continue
		}
		out.Set[t] = diff > FullResThreshold
	}
	return out
}
