// Package orbit models a sun-synchronous earth-observation constellation at
// day granularity: phase-staggered revisit schedules (a single LEO satellite
// revisits a location only every 10-15 days, §3; a constellation covers it
// daily, §2.1), deterministic visit prediction (the paper's stand-in for
// Two-Line-Element forecasts, §4.2), and the Doves Table 1 specification.
package orbit

import "fmt"

// Constellation is a fleet of identical, evenly phased satellites.
type Constellation struct {
	// Satellites is the fleet size.
	Satellites int
	// RevisitDays is how often one satellite revisits the same location.
	RevisitDays int
}

// Validate reports configuration errors.
func (c Constellation) Validate() error {
	if c.Satellites <= 0 || c.RevisitDays <= 0 {
		return fmt.Errorf("orbit: need positive satellites (%d) and revisit period (%d)",
			c.Satellites, c.RevisitDays)
	}
	return nil
}

// phase returns the day offset (mod RevisitDays) at which satellite sat
// visits location loc. Satellites are spread evenly across the revisit
// period; the location term decorrelates different locations' schedules.
func (c Constellation) phase(sat, loc int) int {
	return (sat*c.RevisitDays/c.Satellites + loc*7) % c.RevisitDays
}

// Visits reports whether satellite sat photographs location loc on day.
func (c Constellation) Visits(sat, loc, day int) bool {
	if day < 0 {
		return false
	}
	return day%c.RevisitDays == c.phase(sat, loc)
}

// VisitsOn returns the satellites photographing loc on day, in ascending
// satellite order.
func (c Constellation) VisitsOn(loc, day int) []int {
	var out []int
	for s := 0; s < c.Satellites; s++ {
		if c.Visits(s, loc, day) {
			out = append(out, s)
		}
	}
	return out
}

// NextVisit returns the first day strictly after afterDay on which sat
// visits loc. This is the prediction ground stations use to decide which
// reference images a satellite needs before its next pass (§4.2).
func (c Constellation) NextVisit(sat, loc, afterDay int) int {
	p := c.phase(sat, loc)
	d := afterDay + 1
	r := d % c.RevisitDays
	delta := (p - r + c.RevisitDays) % c.RevisitDays
	return d + delta
}

// NextVisitAny returns the first day strictly after afterDay on which any
// satellite of the fleet visits loc — the fleet-wide revisit horizon
// schedule-aware eviction uses for reference stores shared across the
// constellation model.
func (c Constellation) NextVisitAny(loc, afterDay int) int {
	best := -1
	for s := 0; s < c.Satellites; s++ {
		if d := c.NextVisit(s, loc, afterDay); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// MeanVisitGapDays returns the average gap between consecutive visits of a
// location by any satellite in the fleet.
func (c Constellation) MeanVisitGapDays() float64 {
	// Each of the RevisitDays slots is hit by Satellites/RevisitDays
	// satellites on average; visits per day = Satellites/RevisitDays.
	perDay := float64(c.Satellites) / float64(c.RevisitDays)
	if perDay > 1 {
		perDay = 1 // at most one usable pass per day in our day-granular model
	}
	return 1 / perDay
}

// Spec mirrors Table 1: the Doves constellation's connectivity, hardware
// and imaging characteristics used to ground the storage, uplink and
// downlink experiments.
type Spec struct {
	ContactSeconds    float64 // ground contact duration (10 minutes)
	ContactsPerDay    int     // ground contacts per day (7)
	UplinkBps         float64 // 250 kbps
	DownlinkBps       float64 // 200 Mbps
	StorageBytes      int64   // on-board storage (360 GB)
	ImageWidth        int     // 6600
	ImageHeight       int     // 4400
	ImageBands        int     // RGB + InfraRed
	RawImageBytes     int64   // 150 MB
	GSDMeters         float64 // 3.7 m
	RevisitDays       int     // one satellite rescans Earth every ~10 days
	MBPerKm2          float64 // 0.87 MB of raw imagery per km² (Appendix A)
	RefLocationFactor float64 // reference area is up to 160x a contact's download (Appendix A)
}

// DovesSpec returns the Table 1 values.
func DovesSpec() Spec {
	return Spec{
		ContactSeconds:    600,
		ContactsPerDay:    7,
		UplinkBps:         250e3,
		DownlinkBps:       200e6,
		StorageBytes:      360 << 30,
		ImageWidth:        6600,
		ImageHeight:       4400,
		ImageBands:        4,
		RawImageBytes:     150 << 20,
		GSDMeters:         3.7,
		RevisitDays:       10,
		MBPerKm2:          0.87,
		RefLocationFactor: 160,
	}
}

// DownloadableKm2PerContact returns `a` from Appendix A: the area whose
// raw imagery one ground contact can download.
func (s Spec) DownloadableKm2PerContact() float64 {
	bytesPerContact := s.DownlinkBps * s.ContactSeconds / 8
	return bytesPerContact / (s.MBPerKm2 * (1 << 20))
}
