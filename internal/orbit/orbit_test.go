package orbit

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Constellation{Satellites: 2, RevisitDays: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Constellation{Satellites: 0, RevisitDays: 10}).Validate(); err == nil {
		t.Fatal("expected error for zero satellites")
	}
	if err := (Constellation{Satellites: 1, RevisitDays: 0}).Validate(); err == nil {
		t.Fatal("expected error for zero revisit period")
	}
}

func TestSingleSatelliteRevisitPeriod(t *testing.T) {
	c := Constellation{Satellites: 1, RevisitDays: 10}
	var visits []int
	for d := 0; d < 50; d++ {
		if c.Visits(0, 3, d) {
			visits = append(visits, d)
		}
	}
	if len(visits) != 5 {
		t.Fatalf("got %d visits in 50 days, want 5", len(visits))
	}
	for i := 1; i < len(visits); i++ {
		if visits[i]-visits[i-1] != 10 {
			t.Fatalf("gap %d != revisit period 10", visits[i]-visits[i-1])
		}
	}
}

func TestConstellationCoversDaily(t *testing.T) {
	// 10 satellites with a 10-day revisit: some satellite visits every day.
	c := Constellation{Satellites: 10, RevisitDays: 10}
	for d := 0; d < 30; d++ {
		if len(c.VisitsOn(4, d)) == 0 {
			t.Fatalf("no visit on day %d", d)
		}
	}
}

func TestPhasesSpreadSatellites(t *testing.T) {
	c := Constellation{Satellites: 2, RevisitDays: 10}
	// The two satellites should be 5 days apart at any location.
	var days []int
	for d := 0; d < 20; d++ {
		if len(c.VisitsOn(0, d)) > 0 {
			days = append(days, d)
		}
	}
	if len(days) != 4 {
		t.Fatalf("expected 4 visit days in 20, got %v", days)
	}
	if days[1]-days[0] != 5 {
		t.Fatalf("effective gap %d, want 5", days[1]-days[0])
	}
}

func TestNextVisitConsistentWithVisits(t *testing.T) {
	c := Constellation{Satellites: 3, RevisitDays: 12}
	f := func(satRaw, locRaw, afterRaw uint8) bool {
		sat := int(satRaw) % c.Satellites
		loc := int(locRaw) % 8
		after := int(afterRaw)
		next := c.NextVisit(sat, loc, after)
		if next <= after {
			return false
		}
		if !c.Visits(sat, loc, next) {
			return false
		}
		for d := after + 1; d < next; d++ {
			if c.Visits(sat, loc, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestNextVisitAnyIsEarliestFleetVisit(t *testing.T) {
	c := Constellation{Satellites: 3, RevisitDays: 7}
	for loc := 0; loc < 5; loc++ {
		for after := 0; after < 14; after++ {
			got := c.NextVisitAny(loc, after)
			if got <= after {
				t.Fatalf("NextVisitAny(%d, %d) = %d, not strictly after", loc, after, got)
			}
			want := -1
			for d := after + 1; d <= after+c.RevisitDays; d++ {
				if len(c.VisitsOn(loc, d)) > 0 {
					want = d
					break
				}
			}
			if got != want {
				t.Fatalf("NextVisitAny(%d, %d) = %d, want %d", loc, after, got, want)
			}
		}
	}
}

func TestMeanVisitGap(t *testing.T) {
	if g := (Constellation{Satellites: 1, RevisitDays: 10}).MeanVisitGapDays(); g != 10 {
		t.Fatalf("1-sat gap = %v, want 10", g)
	}
	if g := (Constellation{Satellites: 2, RevisitDays: 10}).MeanVisitGapDays(); g != 5 {
		t.Fatalf("2-sat gap = %v, want 5", g)
	}
	// Saturates at one visit per day.
	if g := (Constellation{Satellites: 48, RevisitDays: 12}).MeanVisitGapDays(); g != 1 {
		t.Fatalf("48-sat gap = %v, want 1", g)
	}
}

func TestVisitsNegativeDay(t *testing.T) {
	c := Constellation{Satellites: 1, RevisitDays: 10}
	if c.Visits(0, 0, -5) {
		t.Fatal("negative day visited")
	}
}

func TestDovesSpecValues(t *testing.T) {
	s := DovesSpec()
	if s.UplinkBps != 250e3 || s.DownlinkBps != 200e6 {
		t.Fatalf("link spec = %v / %v", s.UplinkBps, s.DownlinkBps)
	}
	if s.ContactsPerDay != 7 || s.ContactSeconds != 600 {
		t.Fatalf("contact spec = %d x %vs", s.ContactsPerDay, s.ContactSeconds)
	}
	if s.StorageBytes != 360<<30 {
		t.Fatalf("storage = %d", s.StorageBytes)
	}
	// Appendix A: a = downlink-per-contact / 0.87 MB ≈ 17,241 km².
	a := s.DownloadableKm2PerContact()
	if a < 16000 || a < 0 || a > 18500 {
		t.Fatalf("downloadable area per contact = %v km²", a)
	}
}

// TestNextVisitConstellationScale pins the visit arithmetic at the fleet
// sizes the constellation sweep flies: with 64 phased satellites on a
// 2-day revisit, every location is visited every day by exactly half the
// fleet, and the per-satellite next-visit arithmetic stays consistent with
// the membership test.
func TestNextVisitConstellationScale(t *testing.T) {
	c := Constellation{Satellites: 64, RevisitDays: 2}
	for loc := 0; loc < 5; loc++ {
		for day := 0; day < 10; day++ {
			if got := len(c.VisitsOn(loc, day)); got != 32 {
				t.Fatalf("loc %d day %d: %d visiting satellites, want 32", loc, day, got)
			}
			if next := c.NextVisitAny(loc, day); next != day+1 {
				t.Fatalf("NextVisitAny(%d, %d) = %d, want %d", loc, day, next, day+1)
			}
		}
		for sat := 0; sat < 64; sat += 7 {
			for after := 0; after < 6; after++ {
				next := c.NextVisit(sat, loc, after)
				if next <= after || next > after+c.RevisitDays {
					t.Fatalf("NextVisit(%d, %d, %d) = %d outside (%d, %d]", sat, loc, after, next, after, after+c.RevisitDays)
				}
				if !c.Visits(sat, loc, next) {
					t.Fatalf("NextVisit(%d, %d, %d) = %d is not a visit day", sat, loc, after, next)
				}
				for d := after + 1; d < next; d++ {
					if c.Visits(sat, loc, d) {
						t.Fatalf("NextVisit(%d, %d, %d) skipped earlier visit on day %d", sat, loc, after, d)
					}
				}
			}
		}
	}
}

// TestVisitsOnPartitionsFleet: on any day, VisitsOn lists exactly the
// satellites whose Visits predicate holds — no satellite appears for two
// different phases of the same day, and the fleet partitions cleanly across
// the revisit period.
func TestVisitsOnPartitionsFleet(t *testing.T) {
	c := Constellation{Satellites: 16, RevisitDays: 2}
	for loc := 0; loc < 3; loc++ {
		seen := map[int]int{}
		for day := 0; day < c.RevisitDays; day++ {
			visiting := c.VisitsOn(loc, day)
			for i := 1; i < len(visiting); i++ {
				if visiting[i] <= visiting[i-1] {
					t.Fatalf("VisitsOn(%d, %d) not strictly increasing: %v", loc, day, visiting)
				}
			}
			for _, sat := range visiting {
				if !c.Visits(sat, loc, day) {
					t.Fatalf("VisitsOn lists sat %d on day %d but Visits disagrees", sat, day)
				}
				seen[sat]++
			}
			for sat := 0; sat < c.Satellites; sat++ {
				if c.Visits(sat, loc, day) != contains(visiting, sat) {
					t.Fatalf("Visits(%d, %d, %d) inconsistent with VisitsOn", sat, loc, day)
				}
			}
		}
		// Across one full revisit period, every satellite visits exactly once.
		if len(seen) != c.Satellites {
			t.Fatalf("loc %d: %d satellites seen in one period, want %d", loc, len(seen), c.Satellites)
		}
		for sat, n := range seen {
			if n != 1 {
				t.Fatalf("loc %d: sat %d visited %d times in one period", loc, sat, n)
			}
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
