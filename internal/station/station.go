// Package station implements the ground half of Earth+ (§4.2-§4.3): the
// per-location image archive assembled from downloaded tiles, accurate
// cloud re-detection, constellation-wide selection of the freshest
// cloud-free reference, and delta-encoded reference uploads packed into the
// scarce uplink budget.
package station

import (
	"fmt"
	"sort"
	"sync"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/eperr"
	"earthplus/internal/link"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
)

// refState is a downsampled reference candidate or mirror. Mirrors of
// compressed on-board stores also retain the storage-codec frame the
// satellite holds (frame), so a tiled store's next delta update can be
// spliced per-tile into it instead of re-encoding the whole reference.
type refState struct {
	img   *raster.Image
	day   int
	frame container.Codestream
}

// Ground is the ground-segment state shared by all ground stations (the
// paper treats connected ground stations as one logical overlay point).
//
// Concurrency: all per-location state (archive, bestRef) is sharded by
// location and guarded by a per-location lock, so the sharded simulation
// engine may process distinct locations concurrently; calls for the SAME
// location must stay ordered (the engine serialises each location's visit
// sequence). The per-satellite mirrors are only touched by the day-end
// uplink packing, which runs on the engine's sequential barrier, and are
// guarded by their own lock.
type Ground struct {
	bands      []raster.BandInfo
	grid       raster.TileGrid
	downsample int
	accurate   cloud.Detector
	codecOpts  codec.Options
	// refBPP is the bits-per-pixel spent on uploaded reference tiles.
	refBPP float64
	// maxRefCloud is the coverage bound for reference candidacy (<1%).
	maxRefCloud float64
	// compressRefs makes every mirror model a compressed on-board store:
	// reference content passes the storage codec before it is mirrored
	// (see Config.CompressRefs).
	compressRefs bool

	locMu   []sync.Mutex    // per location: guards archive[loc] and bestRef[loc]
	archive []*raster.Image // per location: latest known full-res content
	bestRef []*refState     // per location: freshest cloud-free reference (downsampled)
	// maxRetransmits bounds how many consecutive failed deliveries keep a
	// location in the head-of-line re-seed class (Config.MaxRetransmits).
	maxRetransmits int

	// mirrors[sat][loc] tracks what each satellite's on-board cache holds,
	// so uploads can carry only changed reference tiles (§4.3).
	// retries[sat][loc] counts CONSECUTIVE failed deliveries (NackDelivery
	// without an intervening AckDelivery) — the retransmit accounting a
	// lossy channel's delivery loop feeds back. Both share mirrorMu: a
	// NACK atomically invalidates the mirror and bumps the counter.
	mirrorMu sync.Mutex
	mirrors  map[int][]*refState
	retries  map[int]map[int]int
	// spliceReencoded / spliceTotal count, across every tiled mirror
	// splice PackUplink performed, the codec tiles re-encoded versus the
	// tiles a whole-frame re-encode would have touched — the ground-side
	// measurement of the tiled profile's per-tile splice saving.
	spliceReencoded, spliceTotal int64
}

// Config parameterises the ground segment.
type Config struct {
	Bands      []raster.BandInfo
	Grid       raster.TileGrid
	Downsample int
	Accurate   cloud.Detector
	CodecOpts  codec.Options
	RefBPP     float64
	// MaxRefCloud is the maximum accurate-detected coverage for an image
	// to become a reference (the paper uses <1%).
	MaxRefCloud float64
	// CompressRefs makes the ground model satellites that hold their
	// references COMPRESSED (sat.CacheConfig.Compress): every reference
	// entering a mirror — the bootstrap seed, each delta-applied update —
	// first passes the storage codec (sat.EncodeStoredRef at RefBPP with
	// these codec options, the exact transform the on-board store
	// applies), and PackUplink ships the resulting frame alongside the
	// update so the store installs it without a raw-expand or re-encode.
	// The mirror then stays byte-equal to what the satellite's store
	// decodes, which is the invariant delta uplinks are encoded against.
	// Off (the default) preserves the raw-store behavior bit for bit.
	CompressRefs bool
	// MaxRetransmits bounds how many consecutive failed deliveries a
	// location's re-send keeps head-of-line re-seed priority for; beyond
	// it the location is demoted behind routine delta updates until a
	// delivery succeeds (AckDelivery resets the count), so a persistently
	// bad link cannot starve every other location's freshness. Zero means
	// DefaultMaxRetransmits; negative means never demote.
	MaxRetransmits int
}

// DefaultMaxRetransmits is the Config.MaxRetransmits default.
const DefaultMaxRetransmits = 8

// NewGround builds the ground segment for numLocations locations.
func NewGround(cfg Config, numLocations int) (*Ground, error) {
	if cfg.Downsample <= 0 || cfg.Grid.Tile%cfg.Downsample != 0 {
		return nil, fmt.Errorf("station: downsample %d incompatible with tile %d", cfg.Downsample, cfg.Grid.Tile)
	}
	if cfg.RefBPP <= 0 {
		return nil, fmt.Errorf("station: RefBPP must be positive")
	}
	maxRetx := cfg.MaxRetransmits
	if maxRetx == 0 {
		maxRetx = DefaultMaxRetransmits
	}
	return &Ground{
		bands:          cfg.Bands,
		grid:           cfg.Grid,
		downsample:     cfg.Downsample,
		accurate:       cfg.Accurate,
		codecOpts:      cfg.CodecOpts,
		refBPP:         cfg.RefBPP,
		maxRefCloud:    cfg.MaxRefCloud,
		compressRefs:   cfg.CompressRefs,
		maxRetransmits: maxRetx,
		locMu:          make([]sync.Mutex, numLocations),
		archive:        make([]*raster.Image, numLocations),
		bestRef:        make([]*refState, numLocations),
		mirrors:        make(map[int][]*refState),
		retries:        make(map[int]map[int]int),
	}, nil
}

// Archive returns the ground's current full-resolution view of loc (nil
// before any download). Callers must not mutate it, and — like every
// same-location operation — must not race it with a concurrent download
// application for the same loc.
func (g *Ground) Archive(loc int) *raster.Image {
	g.locMu[loc].Lock()
	defer g.locMu[loc].Unlock()
	return g.archive[loc]
}

// Recon returns a copy of the archive for evaluation.
func (g *Ground) Recon(loc int) *raster.Image {
	g.locMu[loc].Lock()
	defer g.locMu[loc].Unlock()
	if g.archive[loc] == nil {
		return nil
	}
	return g.archive[loc].Clone()
}

// BestRefDay returns the capture day of loc's current reference, or -1.
func (g *Ground) BestRefDay(loc int) int {
	g.locMu[loc].Lock()
	defer g.locMu[loc].Unlock()
	if g.bestRef[loc] == nil {
		return -1
	}
	return g.bestRef[loc].day
}

// ApplyDownload integrates one capture's downloaded container frame: the
// per-band codec streams inside (absent band = not downloaded) are decoded
// and their ROI tiles copied into the archive. Tiles marked in reject —
// those the ground's accurate detector found cloud-contaminated — are
// decoded but NOT applied, keeping the archive (and hence every future
// reference) haze-free. This is the operational payoff of re-detecting
// clouds on the ground (§4.3).
func (g *Ground) ApplyDownload(loc, day int, cs container.Codestream, perBandROI []*raster.TileMask, reject *raster.TileMask) error {
	streams, err := cs.Split()
	if err != nil {
		return fmt.Errorf("station: loc %d download frame: %w", loc, err)
	}
	if len(streams) != len(perBandROI) {
		return eperr.New(eperr.BadCodestream, "station",
			"download frame carries %d bands for %d ROI masks", len(streams), len(perBandROI))
	}
	g.locMu[loc].Lock()
	defer g.locMu[loc].Unlock()
	if g.archive[loc] == nil {
		g.archive[loc] = raster.New(g.grid.ImageW, g.grid.ImageH, g.bands)
	}
	var scratch []float32 // allocated only when tiles must be rejected
	for b, data := range streams {
		if data == nil || perBandROI[b] == nil {
			continue
		}
		dst := g.archive[loc].Plane(b)
		if reject == nil || reject.Count() == 0 {
			if err := codec.DecodeROIPlaneInto(dst, perBandROI[b], data, 0); err != nil {
				return fmt.Errorf("station: decoding loc %d band %d: %w", loc, b, err)
			}
			continue
		}
		if scratch == nil {
			scratch = make([]float32, g.grid.ImageW*g.grid.ImageH)
		}
		copy(scratch, dst)
		if err := codec.DecodeROIPlaneInto(scratch, perBandROI[b], data, 0); err != nil {
			return fmt.Errorf("station: decoding loc %d band %d: %w", loc, b, err)
		}
		for t, set := range perBandROI[b].Set {
			if !set || reject.Set[t] {
				continue
			}
			x0, y0, x1, y1 := g.grid.Bounds(t)
			for y := y0; y < y1; y++ {
				copy(dst[y*g.grid.ImageW+x0:y*g.grid.ImageW+x1], scratch[y*g.grid.ImageW+x0:y*g.grid.ImageW+x1])
			}
		}
	}
	return nil
}

// MaybePromote promotes the archive mosaic to the location's reference
// when the capture's accurately-assessed coverage is low enough.
// Constellation-wide selection falls out naturally: downloads from every
// satellite land in the same archive. It reports whether promotion
// happened.
func (g *Ground) MaybePromote(loc, day int, coverage float64) (bool, error) {
	if coverage > g.maxRefCloud {
		return false, nil
	}
	g.locMu[loc].Lock()
	defer g.locMu[loc].Unlock()
	low, err := g.archive[loc].Downsample(g.downsample)
	if err != nil {
		return false, fmt.Errorf("station: downsampling reference: %w", err)
	}
	g.bestRef[loc] = &refState{img: low, day: day}
	return true, nil
}

// AccurateMask runs the ground's accurate (archive-referenced) detector on
// a capture and returns the detected per-pixel mask.
func (g *Ground) AccurateMask(capImg *raster.Image, loc int) *cloud.Mask {
	if rd, ok := g.accurate.(cloud.ReferenceDetector); ok {
		return rd.DetectWithReference(capImg, g.Archive(loc))
	}
	if g.accurate != nil {
		return g.accurate.Detect(capImg)
	}
	return cloud.NewMask(capImg.Width, capImg.Height)
}

// ReassessCoverage runs the ground's accurate detector over a capture and
// returns its coverage. The paper re-detects clouds on the ground because
// the satellite cannot afford an accurate detector (§4.3); the ground
// detector exploits the archive as a cloud-free reference (the paper's
// detector consumes image sequences [74]).
func (g *Ground) ReassessCoverage(capImg *raster.Image, loc int) float64 {
	if g.accurate == nil {
		return 0
	}
	if rd, ok := g.accurate.(cloud.ReferenceDetector); ok {
		return rd.DetectWithReference(capImg, g.Archive(loc)).Coverage()
	}
	return g.accurate.Detect(capImg).Coverage()
}

// RefUpdate is one packed uplink message: the changed low-resolution
// reference tiles for a location, per band.
type RefUpdate struct {
	Loc int
	// Day is the reference content's capture day.
	Day int
	// Decoded is the post-codec reference image the satellite should
	// splice into its cache (the satellite sees exactly what survived
	// the uplink encoding, not the pristine ground copy). With
	// CompressRefs it is the PRE-storage-codec content: the store's
	// entry is StoreFrame, whose decode the mirror tracks.
	Decoded *raster.Image
	// StoreFrame is the storage-codec frame of the full updated
	// reference, set only under CompressRefs: a compressed on-board
	// store installs it directly (sat.RefCache.PutFrame) — no raw
	// expansion, no on-board re-encode, and byte-exact agreement with
	// the ground's mirror.
	StoreFrame container.Codestream
	// PerBand marks which low-res tiles each band carries.
	PerBand []*raster.TileMask
	// Bytes is the uplink cost actually consumed.
	Bytes int64
	// Frame is the wire frame the uplink physically carries: the
	// container codestream of this update's delta-encoded bands, CRC
	// trailer included. The delivery loop transmits it through the
	// (possibly lossy) channel and the satellite CRC-gates it before
	// anything is applied on board.
	Frame container.Codestream
	// Retransmit marks updates re-sending content whose previous
	// delivery to this satellite failed (the NackDelivery accounting);
	// their bytes are the retransmission overhead, consumed from the
	// same uplink budget as everything else.
	Retransmit bool
}

// refDiffEps is the low-res mean-abs-diff above which a reference tile is
// re-uploaded. Below it, the on-board tile is already equivalent.
const refDiffEps = 2e-3

// PackUplink prepares reference updates for satellite sat covering the
// given locations, consuming from budget. Locations that no longer fit
// are skipped, matching the paper's random skipping under uplink
// shortage.
//
// The schedule is three-class: pending RE-SEEDS — locations whose mirror
// slot is nil because the on-board store evicted (or never held) the
// reference, or because a delivery failed (NackDelivery), so the
// satellite is flying blind there — drain FIRST, in visit-schedule
// order; then delta freshness updates for references the satellite still
// holds compete for what remains; LAST come re-seeds whose delivery has
// already failed more than MaxRetransmits times in a row, demoted so a
// persistently dead path cannot starve every other location (they still
// re-send whenever budget remains, and one success resets the count).
// Without the re-seed split, a scarce uplink spent in plain schedule
// order on routine freshness deltas could starve exactly the locations
// that just went to MISS, pinning them in reference-free fallback for
// days. All classes preserve the caller's (soonest-visited-first) order
// internally, and class membership is decided solely by serial-phase
// state (bootstrap seeding, day-end evictions and delivery outcomes), so
// packing stays deterministic and byte-identical at any engine worker
// count.
func (g *Ground) PackUplink(sat, day int, locs []int, budget *link.Meter) ([]RefUpdate, error) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	mirror := g.mirrors[sat]
	if mirror == nil {
		mirror = make([]*refState, len(g.archive))
		g.mirrors[sat] = mirror
	}
	gLow, err := g.grid.Scaled(g.downsample)
	if err != nil {
		return nil, fmt.Errorf("station: %w", err)
	}
	retries := g.retries[sat]
	ordered := make([]int, 0, len(locs))
	var deltas, demoted []int
	for _, loc := range locs {
		switch {
		case mirror[loc] != nil:
			deltas = append(deltas, loc)
		case g.maxRetransmits >= 0 && retries[loc] > g.maxRetransmits:
			demoted = append(demoted, loc) // retry budget spent: back of the line
		default:
			ordered = append(ordered, loc) // re-seed class: drains first
		}
	}
	ordered = append(append(ordered, deltas...), demoted...)
	var updates []RefUpdate
	for _, loc := range ordered {
		g.locMu[loc].Lock()
		best := g.bestRef[loc]
		g.locMu[loc].Unlock()
		if best == nil {
			continue
		}
		if mirror[loc] != nil && mirror[loc].day >= best.day && mirror[loc].img == best.img {
			continue // nothing new since the last upload
		}
		perBand := make([]*raster.TileMask, len(g.bands))
		totalTiles := 0
		for b := range g.bands {
			mask := raster.NewTileMask(gLow)
			if mirror[loc] == nil {
				mask.SetAll()
			} else {
				diffs := raster.TileMeanAbsDiff(best.img, mirror[loc].img, b, gLow)
				for t, d := range diffs {
					mask.Set[t] = d > refDiffEps
				}
			}
			perBand[b] = mask
			totalTiles += mask.Count()
		}
		if totalTiles == 0 {
			// Content identical; just advance the mirror's age for free.
			mirror[loc].day = best.day
			continue
		}
		streams, masks, n, err := g.encodeRefUpdate(best.img, perBand)
		if err != nil {
			return nil, err
		}
		if !budget.TryConsume(n) {
			// The full update does not fit. Ship the most-changed tiles
			// that do — the paper skips reference data under uplink
			// shortage (§5); skipping at tile granularity avoids the
			// deadlock where a whole-image update never fits a small
			// daily budget and the reference ages forever.
			perBand = g.trimUpdateToBudget(best, mirror[loc], perBand, budget.Remaining())
			totalTiles = 0
			for _, m := range perBand {
				totalTiles += m.Count()
			}
			if totalTiles == 0 {
				continue
			}
			streams, masks, n, err = g.encodeRefUpdate(best.img, perBand)
			if err != nil {
				return nil, err
			}
			if !budget.TryConsume(n) {
				continue // not even the trimmed update fits today
			}
		}
		decoded, err := g.decodeRefUpdate(streams, masks, mirror[loc], best)
		if err != nil {
			return nil, err
		}
		u := RefUpdate{
			Loc: loc, Day: best.day, Decoded: decoded, PerBand: masks, Bytes: n,
			Frame:      streams,
			Retransmit: retries[loc] > 0,
		}
		if g.compressRefs {
			// The satellite stores the updated reference COMPRESSED: run
			// the storage codec over the full delta-applied content and
			// mirror its decode — that, not `decoded`, is what the store
			// will reproduce on the next visit. The frame rides along so
			// the store installs it without re-encoding. A TILED mirror
			// with a retained frame splices instead: only the codec tiles
			// a changed mask tile touches are re-encoded (the same
			// sat.SpliceStoredRef transform the on-board store applies),
			// so untouched tiles keep their exact payload bytes and skip
			// a storage-codec generation.
			var frame container.Codestream
			var stored *raster.Image
			if prev := mirror[loc]; prev != nil && prev.frame != nil && prev.frame.Tiled() {
				if frame, stored, err = g.spliceRef(prev.frame, decoded, masks); err != nil {
					return nil, err
				}
			} else if frame, stored, err = g.storeRef(decoded); err != nil {
				return nil, err
			}
			u.StoreFrame = frame
			mirror[loc] = &refState{img: stored, day: best.day, frame: frame}
		} else {
			mirror[loc] = &refState{img: decoded.Clone(), day: best.day}
		}
		updates = append(updates, u)
	}
	return updates, nil
}

// PendingUplink counts, without consuming any budget or mutating state,
// the locations of locs that PackUplink would try to send to satellite sat
// right now, split into its three scheduling classes: re-seeds (no mirror —
// the satellite is flying blind), deltas (stale mirror a freshness update
// would advance) and demoted re-seeds (past the MaxRetransmits bound).
// Locations with no reference yet, or whose mirror already matches the
// ground's best reference, are pending in no class — exactly PackUplink's
// skip conditions. The constellation contact scheduler turns these counts
// into cross-satellite demand.
func (g *Ground) PendingUplink(sat int, locs []int) (reseeds, deltas, demoted int) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	mirror := g.mirrors[sat]
	retries := g.retries[sat]
	for _, loc := range locs {
		g.locMu[loc].Lock()
		best := g.bestRef[loc]
		g.locMu[loc].Unlock()
		if best == nil {
			continue
		}
		var m *refState
		if mirror != nil {
			m = mirror[loc]
		}
		switch {
		case m != nil:
			// A mirror at the best reference's day is current: PackUplink
			// would diff it to (near) nothing. Only an older day means a
			// freshness delta is actually waiting.
			if m.day < best.day {
				deltas++
			}
		case g.maxRetransmits >= 0 && retries[loc] > g.maxRetransmits:
			demoted++
		default:
			reseeds++
		}
	}
	return reseeds, deltas, demoted
}

// storeRef runs the on-board storage codec over a reference — the exact
// transform a compressed sat.RefCache applies — returning the frame and
// its decode (the content the satellite will actually hold).
func (g *Ground) storeRef(im *raster.Image) (container.Codestream, *raster.Image, error) {
	frame, err := sat.EncodeStoredRef(im, g.refBPP, g.codecOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	stored, err := sat.DecodeStoredRef(frame, im.Width, im.Height, im.Bands)
	if err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	return frame, stored, nil
}

// spliceRef applies a delta update to a tiled mirror frame per-tile — the
// exact sat.SpliceStoredRef transform a tiled on-board store applies —
// returning the spliced frame and its decode (the content the satellite
// will actually hold), and accounting the tile savings.
func (g *Ground) spliceRef(prev container.Codestream, decoded *raster.Image, masks []*raster.TileMask) (container.Codestream, *raster.Image, error) {
	frame, st, err := sat.SpliceStoredRef(prev, decoded.Width, decoded.Height, g.bands, decoded, masks, g.refBPP, g.codecOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	stored, err := sat.DecodeStoredRef(frame, decoded.Width, decoded.Height, decoded.Bands)
	if err != nil {
		return nil, nil, fmt.Errorf("station: %w", err)
	}
	g.spliceReencoded += st.TilesReencoded
	g.spliceTotal += st.TilesTotal
	return frame, stored, nil
}

// trimUpdateToBudget reduces per-band update masks to the most-changed
// (band, tile) units whose estimated cost fits remaining bytes. The tiles
// that do not make the cut remain different from the reference, so the
// content diff re-selects them on the following days until the mirror
// converges.
func (g *Ground) trimUpdateToBudget(best, mirror *refState, perBand []*raster.TileMask, remaining int64) []*raster.TileMask {
	if remaining <= 0 {
		for b := range perBand {
			perBand[b] = raster.NewTileMask(perBand[b].Grid)
		}
		return perBand
	}
	type unit struct {
		band, tile int
		diff       float64
	}
	var units []unit
	gLow := perBand[0].Grid
	for b, mask := range perBand {
		if mask.Count() == 0 {
			continue
		}
		var diffs []float64
		if mirror != nil {
			diffs = raster.TileMeanAbsDiff(best.img, mirror.img, b, gLow)
		}
		for t, set := range mask.Set {
			if !set {
				continue
			}
			d := 1.0
			if diffs != nil {
				d = diffs[t]
			}
			units = append(units, unit{band: b, tile: t, diff: d})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].diff > units[j].diff })
	// Cost estimate per unit: the γ-style budget the encoder will spend,
	// plus a small share of stream overhead.
	costPerUnit := int64(g.refBPP*float64(gLow.Tile*gLow.Tile)/8) + 12
	keep := int(remaining / costPerUnit)
	out := make([]*raster.TileMask, len(perBand))
	for b := range out {
		out[b] = raster.NewTileMask(gLow)
	}
	for i := 0; i < keep && i < len(units); i++ {
		out[units[i].band].Set[units[i].tile] = true
	}
	return out
}

// encodeRefUpdate ROI-encodes the changed tiles of the low-res reference
// into one container frame. The returned byte count is the uplink charge:
// the per-band codec payloads plus the shipped tile-mask metadata
// (framing overhead is a transport concern and not billed to the link).
func (g *Ground) encodeRefUpdate(ref *raster.Image, perBand []*raster.TileMask) (container.Codestream, []*raster.TileMask, int64, error) {
	streams := make([][]byte, len(g.bands))
	var total int64
	for b, mask := range perBand {
		if mask.Count() == 0 {
			continue
		}
		opts := g.codecOpts
		roiPixels := mask.Count() * mask.Grid.Tile * mask.Grid.Tile
		opts.BudgetBytes = int(g.refBPP * float64(roiPixels) / 8)
		if opts.BudgetBytes < codec.MinBudgetBytes {
			opts.BudgetBytes = codec.MinBudgetBytes
		}
		data, err := codec.EncodeROIPlane(ref.Plane(b), mask, opts)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("station: encoding reference band %d: %w", b, err)
		}
		streams[b] = data
		total += int64(len(data)) + codec.ROIMaskBytes(mask.Grid)
	}
	return container.Pack(streams), perBand, total, nil
}

// decodeRefUpdate reconstructs the reference image a satellite ends up with
// after applying the update on top of its current mirror.
func (g *Ground) decodeRefUpdate(cs container.Codestream, masks []*raster.TileMask, current *refState, best *refState) (*raster.Image, error) {
	streams, err := cs.Split()
	if err != nil {
		return nil, fmt.Errorf("station: reference frame: %w", err)
	}
	var base *raster.Image
	if current != nil {
		base = current.img.Clone()
	} else {
		base = raster.New(best.img.Width, best.img.Height, g.bands)
	}
	for b, data := range streams {
		if data == nil {
			continue
		}
		if err := codec.DecodeROIPlaneInto(base.Plane(b), masks[b], data, 0); err != nil {
			return nil, fmt.Errorf("station: decoding reference band %d: %w", b, err)
		}
	}
	base.Clamp()
	return base, nil
}

// SeedBootstrap installs an initial archive and reference for loc (the
// operational history every deployed system would already have) and primes
// every listed satellite mirror with it, free of uplink charge.
func (g *Ground) SeedBootstrap(loc, day int, full *raster.Image, sats []int) error {
	low, err := full.Downsample(g.downsample)
	if err != nil {
		return fmt.Errorf("station: bootstrap downsample: %w", err)
	}
	// The ground's own reference stays pristine; what each MIRROR holds
	// is what the satellite's store will reproduce — for a compressed
	// store, the seed after one pass through the storage codec (the
	// on-board cache applies the identical transform when the system
	// bootstraps it with the same pre-codec seed).
	mirrorImg := low
	var mirrorFrame container.Codestream
	if g.compressRefs {
		if mirrorFrame, mirrorImg, err = g.storeRef(low); err != nil {
			return fmt.Errorf("station: bootstrap: %w", err)
		}
	}
	g.locMu[loc].Lock()
	g.archive[loc] = full.Clone()
	g.bestRef[loc] = &refState{img: low, day: day}
	g.locMu[loc].Unlock()
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	for _, s := range sats {
		mirror := g.mirrors[s]
		if mirror == nil {
			mirror = make([]*refState, len(g.archive))
			g.mirrors[s] = mirror
		}
		// The frame is immutable wire bytes, safely shared across mirrors.
		mirror[loc] = &refState{img: mirrorImg.Clone(), day: day, frame: mirrorFrame}
	}
	return nil
}

// InvalidateMirror drops the ground's belief that satellite sat still
// holds a reference for loc. Callers MUST invoke it whenever the on-board
// cache evicts loc — otherwise the next PackUplink would delta-encode tile
// updates against a reference the satellite no longer has. With the mirror
// slot nil, the next uplink cycle covering loc ships the full reference
// (re-seeding the evicted entry) instead of a delta.
func (g *Ground) InvalidateMirror(sat, loc int) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	if m := g.mirrors[sat]; m != nil && loc >= 0 && loc < len(m) {
		m[loc] = nil
	}
}

// AckDelivery records that satellite sat confirmed installing the last
// update for loc, clearing its consecutive-failure count. PackUplink
// committed the mirror optimistically at pack time, so an ACK needs no
// further state change.
func (g *Ground) AckDelivery(sat, loc int) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	if r := g.retries[sat]; r != nil {
		delete(r, loc)
	}
}

// NackDelivery records that the last update packed for (sat, loc) was
// not installed on board — lost, truncated, or rejected by the
// satellite's CRC gate. It atomically rolls the optimistic mirror commit
// back (the nil slot makes the next PackUplink re-send the FULL
// reference, which also covers the case where the satellite held no
// prior version) and bumps the consecutive-failure count that drives the
// retransmit class and its MaxRetransmits demotion.
func (g *Ground) NackDelivery(sat, loc int) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	if m := g.mirrors[sat]; m != nil && loc >= 0 && loc < len(m) {
		m[loc] = nil
	}
	r := g.retries[sat]
	if r == nil {
		r = make(map[int]int)
		g.retries[sat] = r
	}
	r[loc]++
}

// RetryCount returns how many consecutive deliveries to (sat, loc) have
// failed since the last success.
func (g *Ground) RetryCount(sat, loc int) int {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	return g.retries[sat][loc]
}

// MirrorRefDay returns the day of the reference satellite sat holds for
// loc, or -1.
func (g *Ground) MirrorRefDay(sat, loc int) int {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	if m := g.mirrors[sat]; m != nil && m[loc] != nil {
		return m[loc].day
	}
	return -1
}

// MirrorImage returns a copy of the reference image satellite sat's mirror
// holds for loc, or nil. Property tests use it to assert that applying a
// packed uplink on board reproduces the ground's mirror exactly.
func (g *Ground) MirrorImage(sat, loc int) *raster.Image {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	if m := g.mirrors[sat]; m != nil && m[loc] != nil {
		return m[loc].img.Clone()
	}
	return nil
}

// SpliceTileStats reports how many codec tiles PackUplink's tiled mirror
// splices re-encoded, against the tiles whole-frame re-encodes would have
// touched. Zero until a tiled compressed mirror takes a delta update.
func (g *Ground) SpliceTileStats() (reencoded, total int64) {
	g.mirrorMu.Lock()
	defer g.mirrorMu.Unlock()
	return g.spliceReencoded, g.spliceTotal
}

// RefRawBytes returns the raw (uncompressed, 2 bytes/sample) size of one
// full-resolution reference set per location — the numerator of the
// uplink-compression experiment (Fig 17).
func (g *Ground) RefRawBytes() int64 {
	return int64(g.grid.ImageW) * int64(g.grid.ImageH) * int64(len(g.bands)) * 2
}
