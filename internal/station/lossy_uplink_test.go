package station

import (
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/link"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
)

// Property test for lossy-link recovery: ANY single dropped or corrupted
// update — at every injection point within a contact, on both the raw
// and the compressed (CompressRefs) install paths — leaves the
// directional coherence invariant intact (mirror non-nil ⇒ the on-board
// reference is byte-equal to it), and the next successful contact
// re-seeds the failed location in full with the Retransmit flag set.
// This emulates exactly what core's OnDayEnd delivery loop does: install
// + AckDelivery on success, NackDelivery on loss or CRC rejection.

func TestSingleFaultedUpdateKeepsCoherence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		compress bool
	}{
		{"raw", false},
		{"ref-compression-on", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const numLocs, satID = 3, 0
			var g *Ground
			var cache *sat.RefCache
			if tc.compress {
				g = testGroundCompressed(t, numLocs)
				cache = compressedTestCache(t, 0) // unbounded: faults, not evictions, under test
			} else {
				g = testGround(t, numLocs)
				cache = sat.NewRefCache()
			}
			grid := raster.MustTileGrid(testW, testH, testTile)
			src := noise.New(60462)

			state := make([]*raster.Image, numLocs)
			for loc := 0; loc < numLocs; loc++ {
				full := testImage(uint64(400 + loc))
				if err := g.SeedBootstrap(loc, 0, full, []int{satID}); err != nil {
					t.Fatal(err)
				}
				state[loc] = full
				cache.Put(loc, g.MirrorImage(satID, loc), 0)
			}

			locs := []int{0, 1, 2}
			nacked := -1 // location whose delivery failed on the previous day
			faults, corruptions, recoveries := 0, 0, 0
			for day := 1; day <= 16; day++ {
				for loc := 0; loc < numLocs; loc++ {
					state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
					applyFull(t, g, loc, day, state[loc])
				}
				updates, err := g.PackUplink(satID, day, locs, link.NewMeter(0))
				if err != nil {
					t.Fatal(err)
				}
				if nacked >= 0 {
					// The failed location must be re-sent this contact, in
					// FULL (its mirror slot is nil — no delta against state
					// the satellite may not hold), flagged as a retransmit,
					// and — as a pending re-seed — ahead of delta updates.
					if len(updates) == 0 || updates[0].Loc != nacked {
						t.Fatalf("day %d: nacked loc %d not at the head of the next contact", day, nacked)
					}
					u := updates[0]
					if !u.Retransmit {
						t.Fatalf("day %d: re-sent update for loc %d not flagged Retransmit", day, u.Loc)
					}
					for b, m := range u.PerBand {
						if m.Count() != m.Grid.NumTiles() {
							t.Fatalf("day %d loc %d: retransmit band %d partial (%d/%d tiles)",
								day, u.Loc, b, m.Count(), m.Grid.NumTiles())
						}
					}
				}
				// Rotate the injection point over every index and alternate
				// the fault kind, so each position sees both drops and
				// CRC-rejected corruptions over the run.
				faultIdx := -1
				if len(updates) > 0 && day < 15 { // last days deliver clean so every NACK recovers
					faultIdx = day % len(updates)
				}
				corrupt := (day/3)%2 == 1
				prevNacked := nacked
				nacked = -1
				for i, u := range updates {
					if len(u.Frame) == 0 {
						t.Fatalf("day %d loc %d: update carries no wire frame", day, u.Loc)
					}
					if err := sat.ValidateFrame(u.Frame); err != nil {
						t.Fatalf("day %d loc %d: pristine frame rejected: %v", day, u.Loc, err)
					}
					if i == faultIdx {
						faults++
						if corrupt {
							// One flipped byte anywhere must be caught by the
							// container CRC — rejection, never a bad splice.
							rx := append([]byte(nil), u.Frame...)
							rx[(day*7)%len(rx)] ^= 0x41
							if err := sat.ValidateFrame(rx); err == nil {
								t.Fatalf("day %d loc %d: corrupted frame passed the CRC gate", day, u.Loc)
							}
							corruptions++
						}
						g.NackDelivery(satID, u.Loc)
						nacked = u.Loc
						if g.RetryCount(satID, u.Loc) == 0 {
							t.Fatalf("day %d loc %d: NACK did not count a retry", day, u.Loc)
						}
						if g.MirrorRefDay(satID, u.Loc) != -1 {
							t.Fatalf("day %d loc %d: NACK left the mirror committed", day, u.Loc)
						}
						continue
					}
					if tc.compress {
						cache.PutFrame(u.Loc, u.StoreFrame, u.Decoded, u.Day)
					} else {
						cache.ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day)
					}
					g.AckDelivery(satID, u.Loc)
					if g.RetryCount(satID, u.Loc) != 0 {
						t.Fatalf("day %d loc %d: ACK did not clear the retry count", day, u.Loc)
					}
					if u.Loc == prevNacked {
						recoveries++
					}
				}
				// The invariant delta uplinks depend on, checked after EVERY
				// contact including the faulted ones: wherever the ground
				// holds a mirror, the satellite holds byte-equal content.
				for loc := 0; loc < numLocs; loc++ {
					mirror := g.MirrorImage(satID, loc)
					if mirror == nil {
						continue
					}
					ref := cache.Get(loc)
					if ref == nil {
						t.Fatalf("day %d loc %d: ground mirrors a reference the satellite does not hold", day, loc)
					}
					if !ref.Image.Equal(mirror) {
						t.Fatalf("day %d loc %d: on-board reference diverged from ground mirror", day, loc)
					}
				}
			}
			if faults < 6 || corruptions == 0 || recoveries == 0 {
				t.Fatalf("property not exercised: %d faults, %d corruptions, %d recoveries",
					faults, corruptions, recoveries)
			}
			if nacked != -1 {
				t.Fatal("run ended with an unrecovered NACK; recovery path not closed")
			}
		})
	}
}

// TestRetransmitDemotionAfterMaxRetries pins the bounded retry
// accounting: a location whose deliveries keep failing holds
// head-of-line re-seed priority for MaxRetransmits consecutive failures,
// is demoted behind routine delta updates afterwards (so a dead path
// cannot starve the rest of the fleet's freshness), and one successful
// delivery resets it to a first-class citizen.
func TestRetransmitDemotionAfterMaxRetries(t *testing.T) {
	const numLocs, satID, maxRetx = 2, 0, 2
	bands := raster.PlanetBands()
	g, err := NewGround(Config{
		Bands:          bands,
		Grid:           raster.MustTileGrid(testW, testH, testTile),
		Downsample:     testDown,
		CodecOpts:      codec.DefaultOptions(),
		RefBPP:         6,
		MaxRefCloud:    0.05,
		MaxRetransmits: maxRetx,
	}, numLocs)
	if err != nil {
		t.Fatal(err)
	}
	grid := raster.MustTileGrid(testW, testH, testTile)
	src := noise.New(5150)
	state := make([]*raster.Image, numLocs)
	for loc := 0; loc < numLocs; loc++ {
		state[loc] = testImage(uint64(700 + loc))
		if err := g.SeedBootstrap(loc, 0, state[loc], []int{satID}); err != nil {
			t.Fatal(err)
		}
	}
	locs := []int{0, 1}
	const victim = 0
	for day := 1; day <= 6; day++ {
		// Fresh content everywhere so loc 1 always has a delta to ship.
		for loc := 0; loc < numLocs; loc++ {
			state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
			applyFull(t, g, loc, day, state[loc])
		}
		updates, err := g.PackUplink(satID, day, locs, link.NewMeter(0))
		if err != nil {
			t.Fatal(err)
		}
		var idx = -1
		for i, u := range updates {
			if u.Loc == victim {
				idx = i
			} else {
				g.AckDelivery(satID, u.Loc)
			}
		}
		if idx < 0 {
			t.Fatalf("day %d: victim loc never packed", day)
		}
		// While retries <= MaxRetransmits the victim's re-seed preempts
		// the delta class; beyond that it must queue behind it.
		if g.RetryCount(satID, victim) <= maxRetx {
			if idx != 0 {
				t.Fatalf("day %d: victim at index %d, want head-of-line (retries %d)", day, idx, g.RetryCount(satID, victim))
			}
		} else if idx == 0 && len(updates) > 1 {
			t.Fatalf("day %d: victim still head-of-line after %d retries", day, g.RetryCount(satID, victim))
		}
		if day < 6 {
			g.NackDelivery(satID, victim)
		} else {
			// Final delivery succeeds: the counter resets and the mirror
			// commit stands.
			g.AckDelivery(satID, victim)
		}
	}
	if got := g.RetryCount(satID, victim); got != 0 {
		t.Fatalf("retry count %d after successful delivery, want 0", got)
	}
	if g.MirrorRefDay(satID, victim) == -1 {
		t.Fatal("mirror not committed after successful delivery")
	}
}
