package station

import (
	"testing"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/link"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
)

// The tiled uplink tests need a reference LARGER than one 64px codec tile
// at detection resolution — otherwise every splice trivially touches the
// whole frame — so they run their own geometry: 512px full resolution,
// downsample 2, i.e. a 256x256 reference spanning a 4x4 codec-tile grid.
const (
	tiledTestW, tiledTestH, tiledTestTile = 512, 512, 32
	tiledTestDown                         = 2
)

// tiledOpts is the storage-codec configuration of the tiled-profile
// uplink tests: the tiled (EPT1) codestream on both ground and store.
func tiledOpts() codec.Options {
	o := codec.DefaultOptions()
	o.Tiled = true
	return o
}

func testGroundTiled(t *testing.T, numLocs int) *Ground {
	t.Helper()
	bands := raster.PlanetBands()
	g, err := NewGround(Config{
		Bands:        bands,
		Grid:         raster.MustTileGrid(tiledTestW, tiledTestH, tiledTestTile),
		Downsample:   tiledTestDown,
		Accurate:     cloud.DefaultTemporal(bands),
		CodecOpts:    tiledOpts(),
		RefBPP:       6,
		MaxRefCloud:  0.05,
		CompressRefs: true,
	}, numLocs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tiledTestCache(t *testing.T, budget int64) *sat.RefCache {
	t.Helper()
	cache, err := sat.NewBoundedRefCache(sat.CacheConfig{
		BudgetBytes: budget,
		Compress:    true,
		StoreBPP:    6,
		Codec:       tiledOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

func tiledTestImage(seed uint64) *raster.Image {
	im := raster.New(tiledTestW, tiledTestH, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		noise.New(seed+uint64(b)).FillFBM(im.Plane(b), tiledTestW, tiledTestH, 5, 3)
		for i, v := range im.Plane(b) {
			im.Plane(b)[i] = 0.1 + 0.7*v
		}
	}
	return im
}

// tiledApplyFull is applyFull at the tiled tests' geometry.
func tiledApplyFull(t *testing.T, g *Ground, loc, day int, im *raster.Image) {
	t.Helper()
	grid := raster.MustTileGrid(tiledTestW, tiledTestH, tiledTestTile)
	all := raster.NewTileMask(grid)
	all.SetAll()
	streams := make([][]byte, im.NumBands())
	rois := make([]*raster.TileMask, im.NumBands())
	opts := codec.DefaultOptions()
	opts.BudgetBytes = 0 // full quality: the archive should track im closely
	for b := 0; b < im.NumBands(); b++ {
		data, err := codec.EncodeROIPlane(im.Plane(b), all, opts)
		if err != nil {
			t.Fatal(err)
		}
		streams[b], rois[b] = data, all
	}
	if err := g.ApplyDownload(loc, day, container.Pack(streams), rois, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaybePromote(loc, day, 0); err != nil {
		t.Fatal(err)
	}
}

// TestTiledCompressedUplinkCoherent drives the compressed re-seed cycle
// with the TILED storage profile: delta updates splice the mirror frame
// per-tile (sat.SpliceStoredRef) on the ground and on board, and both
// install routes — routing the shipped spliced frame (PutFrame) and
// splicing locally (ApplyTileUpdate) — must leave the store decoding
// byte-identical to the ground's mirror after every cycle. It also pins
// that the splice really is per-tile: the ground re-encodes strictly
// fewer codec tiles than whole-frame re-encoding would.
func TestTiledCompressedUplinkCoherent(t *testing.T) {
	const numLocs, satID = 2, 0
	g := testGroundTiled(t, numLocs)
	grid := raster.MustTileGrid(tiledTestW, tiledTestH, tiledTestTile)
	src := noise.New(40917)

	state := make([]*raster.Image, numLocs)
	for loc := 0; loc < numLocs; loc++ {
		full := tiledTestImage(uint64(900 + loc))
		if err := g.SeedBootstrap(loc, 0, full, []int{satID}); err != nil {
			t.Fatal(err)
		}
		state[loc] = full
	}
	cache := tiledTestCache(t, 0) // unbounded: this test pins coherence, not eviction
	for loc := 0; loc < numLocs; loc++ {
		low, err := state[loc].Downsample(tiledTestDown)
		if err != nil {
			t.Fatal(err)
		}
		cache.Put(loc, low, 0)
	}

	locs := []int{0, 1}
	var updates int
	for day := 1; day <= 4; day++ {
		for loc := 0; loc < numLocs; loc++ {
			state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
			tiledApplyFull(t, g, loc, day, state[loc])
		}
		packed, err := g.PackUplink(satID, day, locs, link.NewMeter(0))
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range packed {
			if u.StoreFrame == nil || !u.StoreFrame.Tiled() {
				t.Fatalf("day %d loc %d: tiled ground shipped a non-tiled storage frame", day, u.Loc)
			}
			if i%2 == 0 {
				cache.PutFrame(u.Loc, u.StoreFrame, u.Decoded, u.Day)
			} else {
				cache.ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day)
			}
			updates++
		}
		for loc := 0; loc < numLocs; loc++ {
			mirror := g.MirrorImage(satID, loc)
			if mirror == nil {
				continue
			}
			ref := cache.Get(loc)
			if ref == nil || !ref.Image.Equal(mirror) {
				t.Fatalf("day %d loc %d: tiled store decode diverged from ground mirror", day, loc)
			}
		}
	}
	if updates == 0 {
		t.Fatal("property not exercised: no updates packed")
	}
	re, total := g.SpliceTileStats()
	if total == 0 {
		t.Fatal("tiled ground never spliced a mirror frame")
	}
	if re >= total {
		t.Fatalf("splice re-encoded %d of %d tiles; per-tile splice saved nothing", re, total)
	}
	if d, tt := cache.TileStats(); tt > 0 && d >= tt {
		t.Fatalf("store splice re-encoded %d of %d tiles; per-tile splice saved nothing", d, tt)
	}
}

// TestTiledSpliceMatchesWholeReencodePath pins the route equivalence
// directly: after the same deltas, a store that spliced locally and a
// store that installed the ground's shipped frame hold references that
// decode identically — SpliceStoredRef is one shared function, so the
// mirrors cannot drift between the two install routes.
func TestTiledSpliceMatchesWholeReencodePath(t *testing.T) {
	const satID = 0
	g := testGroundTiled(t, 1)
	grid := raster.MustTileGrid(tiledTestW, tiledTestH, tiledTestTile)
	src := noise.New(2761)

	full := tiledTestImage(77)
	if err := g.SeedBootstrap(0, 0, full, []int{satID}); err != nil {
		t.Fatal(err)
	}
	low, err := full.Downsample(tiledTestDown)
	if err != nil {
		t.Fatal(err)
	}
	viaFrame := tiledTestCache(t, 0)
	viaSplice := tiledTestCache(t, 0)
	viaFrame.Put(0, low.Clone(), 0)
	viaSplice.Put(0, low.Clone(), 0)

	for day := 1; day <= 3; day++ {
		full = mutateTiles(src, day, full, grid, 2)
		tiledApplyFull(t, g, 0, day, full)
		packed, err := g.PackUplink(satID, day, []int{0}, link.NewMeter(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != 1 {
			t.Fatalf("day %d: packed %d updates, want 1", day, len(packed))
		}
		u := packed[0]
		viaFrame.PutFrame(u.Loc, u.StoreFrame, u.Decoded, u.Day)
		viaSplice.ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day)
		a, b := viaFrame.Get(0), viaSplice.Get(0)
		if a == nil || b == nil || !a.Image.Equal(b.Image) {
			t.Fatalf("day %d: PutFrame and ApplyTileUpdate routes diverged", day)
		}
	}
}
