package station

import (
	"testing"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/link"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

const (
	testW, testH, testTile = 64, 64, 16
	testDown               = 4
)

func testGround(t *testing.T, numLocs int) *Ground {
	t.Helper()
	bands := raster.PlanetBands()
	g, err := NewGround(Config{
		Bands:       bands,
		Grid:        raster.MustTileGrid(testW, testH, testTile),
		Downsample:  testDown,
		Accurate:    cloud.DefaultTemporal(bands),
		CodecOpts:   codec.DefaultOptions(),
		RefBPP:      6,
		MaxRefCloud: 0.05,
	}, numLocs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testImage(seed uint64) *raster.Image {
	im := raster.New(testW, testH, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		noise.New(seed+uint64(b)).FillFBM(im.Plane(b), testW, testH, 5, 3)
		for i, v := range im.Plane(b) {
			im.Plane(b)[i] = 0.1 + 0.7*v
		}
	}
	return im
}

func TestNewGroundValidation(t *testing.T) {
	bands := raster.PlanetBands()
	grid := raster.MustTileGrid(testW, testH, testTile)
	if _, err := NewGround(Config{Bands: bands, Grid: grid, Downsample: 5, RefBPP: 1}, 1); err == nil {
		t.Fatal("expected downsample error")
	}
	if _, err := NewGround(Config{Bands: bands, Grid: grid, Downsample: 4, RefBPP: 0}, 1); err == nil {
		t.Fatal("expected RefBPP error")
	}
}

func TestSeedBootstrapInstallsEverything(t *testing.T) {
	g := testGround(t, 2)
	full := testImage(1)
	if err := g.SeedBootstrap(1, 10, full, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if g.Archive(1) == nil || g.Archive(0) != nil {
		t.Fatal("bootstrap archive wrong")
	}
	if g.BestRefDay(1) != 10 || g.BestRefDay(0) != -1 {
		t.Fatalf("BestRefDay = %d / %d", g.BestRefDay(1), g.BestRefDay(0))
	}
	for s := 0; s < 3; s++ {
		if g.MirrorRefDay(s, 1) != 10 {
			t.Fatalf("mirror %d day = %d", s, g.MirrorRefDay(s, 1))
		}
	}
	if g.MirrorRefDay(7, 1) != -1 {
		t.Fatal("unknown satellite mirror should be -1")
	}
	// Recon returns a defensive copy.
	rec := g.Recon(1)
	rec.Fill(0, 0)
	if g.Archive(1).At(0, 0, 0) == 0 && g.Archive(1).At(0, 1, 1) == 0 {
		t.Fatal("Recon aliases the archive")
	}
}

func TestApplyDownloadUpdatesArchiveTiles(t *testing.T) {
	g := testGround(t, 1)
	old := testImage(2)
	if err := g.SeedBootstrap(0, 0, old, nil); err != nil {
		t.Fatal(err)
	}
	// New content in tile 3 of band 0.
	grid := raster.MustTileGrid(testW, testH, testTile)
	newImg := old.Clone()
	x0, y0, x1, y1 := grid.Bounds(3)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			newImg.Set(0, x, y, 0.9)
		}
	}
	mask := raster.NewTileMask(grid)
	mask.Set[3] = true
	opts := codec.DefaultOptions()
	stream, err := codec.EncodeROIPlane(newImg.Plane(0), mask, opts)
	if err != nil {
		t.Fatal(err)
	}
	frame := container.Pack([][]byte{stream, nil, nil, nil})
	rois := []*raster.TileMask{mask, nil, nil, nil}
	if err := g.ApplyDownload(0, 5, frame, rois, nil); err != nil {
		t.Fatal(err)
	}
	got := g.Archive(0).At(0, x0+8, y0+8)
	if got < 0.85 || got > 0.95 {
		t.Fatalf("archive tile value = %v, want ~0.9", got)
	}
	// Untouched tile keeps old content.
	ox0, oy0, _, _ := grid.Bounds(0)
	if g.Archive(0).At(0, ox0+2, oy0+2) != old.At(0, ox0+2, oy0+2) {
		t.Fatal("non-ROI tile modified")
	}
}

func TestApplyDownloadRejectsTiles(t *testing.T) {
	g := testGround(t, 1)
	old := testImage(3)
	if err := g.SeedBootstrap(0, 0, old, nil); err != nil {
		t.Fatal(err)
	}
	grid := raster.MustTileGrid(testW, testH, testTile)
	newImg := old.Clone()
	for _, tile := range []int{2, 5} {
		x0, y0, x1, y1 := grid.Bounds(tile)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				newImg.Set(0, x, y, 0.95)
			}
		}
	}
	mask := raster.NewTileMask(grid)
	mask.Set[2], mask.Set[5] = true, true
	stream, err := codec.EncodeROIPlane(newImg.Plane(0), mask, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reject := raster.NewTileMask(grid)
	reject.Set[5] = true // pretend tile 5 is cloud-contaminated
	err = g.ApplyDownload(0, 5, container.Pack([][]byte{stream, nil, nil, nil}),
		[]*raster.TileMask{mask, nil, nil, nil}, reject)
	if err != nil {
		t.Fatal(err)
	}
	x2, y2, _, _ := grid.Bounds(2)
	x5, y5, _, _ := grid.Bounds(5)
	if v := g.Archive(0).At(0, x2+8, y2+8); v < 0.85 {
		t.Fatalf("accepted tile not applied: %v", v)
	}
	if v := g.Archive(0).At(0, x5+8, y5+8); v > 0.85 {
		t.Fatalf("rejected tile was applied: %v", v)
	}
}

func TestMaybePromoteGate(t *testing.T) {
	g := testGround(t, 1)
	if err := g.SeedBootstrap(0, 0, testImage(4), nil); err != nil {
		t.Fatal(err)
	}
	promoted, err := g.MaybePromote(0, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if promoted || g.BestRefDay(0) != 0 {
		t.Fatal("cloudy capture promoted")
	}
	promoted, err = g.MaybePromote(0, 9, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !promoted || g.BestRefDay(0) != 9 {
		t.Fatalf("clear capture not promoted: day=%d", g.BestRefDay(0))
	}
}

func TestPackUplinkDeltaAndBudget(t *testing.T) {
	g := testGround(t, 1)
	full := testImage(5)
	if err := g.SeedBootstrap(0, 0, full, []int{0}); err != nil {
		t.Fatal(err)
	}
	// No change: nothing to upload.
	ups, err := g.PackUplink(0, 1, []int{0}, link.NewMeter(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatalf("uploaded %d updates with no changes", len(ups))
	}
	// Change part of the archive, promote, and expect a delta upload.
	grid := raster.MustTileGrid(testW, testH, testTile)
	arch := g.Archive(0)
	x0, y0, x1, y1 := grid.Bounds(6)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			arch.Set(0, x, y, 0.05)
		}
	}
	if _, err := g.MaybePromote(0, 7, 0); err != nil {
		t.Fatal(err)
	}
	ups, err = g.PackUplink(0, 7, []int{0}, link.NewMeter(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 {
		t.Fatalf("expected 1 update, got %d", len(ups))
	}
	u := ups[0]
	if u.Day != 7 || u.Bytes <= 0 {
		t.Fatalf("update = %+v", u)
	}
	// The delta should cover far fewer tiles than a full upload: only
	// band 0's changed low-res region.
	if c := u.PerBand[0].Count(); c == 0 || c > 4 {
		t.Fatalf("band 0 delta covers %d low-res tiles", c)
	}
	for b := 1; b < 4; b++ {
		if u.PerBand[b].Count() != 0 {
			t.Fatalf("band %d uploaded despite no change", b)
		}
	}
	if g.MirrorRefDay(0, 0) != 7 {
		t.Fatalf("mirror day = %d", g.MirrorRefDay(0, 0))
	}
	// The decoded update must carry the new content.
	lowX := x0 / testDown
	lowY := y0 / testDown
	if v := u.Decoded.At(0, lowX+1, lowY+1); v > 0.15 {
		t.Fatalf("decoded reference tile = %v, want ~0.05", v)
	}

	// A starved budget blocks the upload entirely.
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			arch.Set(1, x, y, 0.9)
		}
	}
	if _, err := g.MaybePromote(0, 9, 0); err != nil {
		t.Fatal(err)
	}
	ups, err = g.PackUplink(0, 9, []int{0}, link.NewMeter(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 0 {
		t.Fatal("starved budget still uploaded")
	}
}

func TestReassessCoverageUsesArchive(t *testing.T) {
	g := testGround(t, 1)
	base := testImage(6)
	if err := g.SeedBootstrap(0, 0, base, nil); err != nil {
		t.Fatal(err)
	}
	// Clear capture identical to archive: coverage ~0.
	if cov := g.ReassessCoverage(base, 0); cov > 0.02 {
		t.Fatalf("identical capture reassessed at %.3f coverage", cov)
	}
	// Paint a bright+cold blob: should read as cloud.
	cloudy := base.Clone()
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			for b := 0; b < 3; b++ {
				cloudy.Set(b, x, y, 0.93)
			}
			cloudy.Set(3, x, y, 0.05)
		}
	}
	if cov := g.ReassessCoverage(cloudy, 0); cov < 0.05 {
		t.Fatalf("cloud blob reassessed at %.3f coverage", cov)
	}
}

func TestRefRawBytes(t *testing.T) {
	g := testGround(t, 1)
	if got := g.RefRawBytes(); got != int64(testW*testH*4*2) {
		t.Fatalf("RefRawBytes = %d", got)
	}
}
