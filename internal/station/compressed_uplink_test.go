package station

import (
	"testing"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/link"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
)

// testGroundCompressed is testGround with CompressRefs: the mirrors model
// satellites whose reference stores hold storage-codec frames.
func testGroundCompressed(t *testing.T, numLocs int) *Ground {
	t.Helper()
	bands := raster.PlanetBands()
	g, err := NewGround(Config{
		Bands:        bands,
		Grid:         raster.MustTileGrid(testW, testH, testTile),
		Downsample:   testDown,
		Accurate:     cloud.DefaultTemporal(bands),
		CodecOpts:    codec.DefaultOptions(),
		RefBPP:       6,
		MaxRefCloud:  0.05,
		CompressRefs: true,
	}, numLocs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// compressedTestCache builds the on-board store matching
// testGroundCompressed's storage codec.
func compressedTestCache(t *testing.T, budget int64) *sat.RefCache {
	t.Helper()
	cache, err := sat.NewBoundedRefCache(sat.CacheConfig{
		BudgetBytes: budget,
		Compress:    true,
		StoreBPP:    6,
		Codec:       codec.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

// reseedScenario seeds a 3-location ground, advances every location's
// reference by one mutated day, and invalidates satellite 0's mirror of
// loc 1 — the state PackUplink sees after an on-board eviction: one
// pending re-seed competing with two routine delta updates.
func reseedScenario(t *testing.T) *Ground {
	t.Helper()
	g := testGround(t, 3)
	grid := raster.MustTileGrid(testW, testH, testTile)
	src := noise.New(5150)
	for loc := 0; loc < 3; loc++ {
		full := testImage(uint64(600 + loc))
		if err := g.SeedBootstrap(loc, 0, full, []int{0}); err != nil {
			t.Fatal(err)
		}
		applyFull(t, g, loc, 1, mutateTiles(src, loc+1, full, grid, 2))
	}
	g.InvalidateMirror(0, 1)
	return g
}

// TestPackUplinkReseedsDrainFirst pins the two-class scheduler: a pending
// re-seed of an evicted location drains BEFORE the delta freshness
// updates of locations the satellite still holds, even when the schedule
// order lists the delta locations first — under a scarce budget, plain
// schedule order used to spend the uplink on routine deltas and starve
// exactly the location that just went to MISS.
func TestPackUplinkReseedsDrainFirst(t *testing.T) {
	locs := []int{0, 1, 2} // schedule order: delta locs 0 and 2 surround the evicted loc 1

	// Unconstrained packing establishes each update's true cost and that
	// re-seeds lead the returned schedule.
	rich := reseedScenario(t)
	meter := link.NewMeter(0)
	updates, err := rich.PackUplink(0, 2, locs, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 3 {
		t.Fatalf("unconstrained pack shipped %d updates, want 3", len(updates))
	}
	if updates[0].Loc != 1 {
		t.Fatalf("re-seed of loc 1 did not drain first: order %v",
			[]int{updates[0].Loc, updates[1].Loc, updates[2].Loc})
	}
	for b, m := range updates[0].PerBand {
		if m.Count() != m.Grid.NumTiles() {
			t.Fatalf("re-seed band %d carries %d/%d tiles; want full", b, m.Count(), m.Grid.NumTiles())
		}
	}
	reseedBytes := updates[0].Bytes

	// With budget for ONLY the re-seed, the starvation-prone case: the
	// evicted location must still get its full reference, and the meter
	// must hold.
	scarce := reseedScenario(t)
	meter = link.NewMeter(reseedBytes)
	updates, err = scarce.PackUplink(0, 2, locs, meter)
	if err != nil {
		t.Fatal(err)
	}
	if meter.Used() > reseedBytes {
		t.Fatalf("uplink meter exceeded: %d > %d", meter.Used(), reseedBytes)
	}
	var reseeded bool
	for _, u := range updates {
		if u.Loc == 1 {
			reseeded = true
			for b, m := range u.PerBand {
				if m.Count() != m.Grid.NumTiles() {
					t.Fatalf("scarce re-seed band %d trimmed to %d/%d tiles", b, m.Count(), m.Grid.NumTiles())
				}
			}
		}
	}
	if !reseeded {
		t.Fatal("scarce uplink starved the re-seed of the missed location")
	}
	if d := scarce.MirrorRefDay(0, 1); d != 1 {
		t.Fatalf("re-seeded mirror day %d, want 1", d)
	}
}

// TestCompressedReseedCycleCoherent drives the full miss→re-seed→hit
// cycle of a COMPRESSED on-board store against the ground's mirror
// bookkeeping: a 2-entry budget over 3 locations thrashes continuously,
// updates install either by routing the shipped storage frame
// (PutFrame) or by tile-splicing + re-encode (ApplyTileUpdate), and after
// every cycle each mirrored location's store entry must DECODE
// byte-identical to the ground's mirror — the acceptance property of
// compressed re-seeding.
func TestCompressedReseedCycleCoherent(t *testing.T) {
	const numLocs, satID = 3, 0
	g := testGroundCompressed(t, numLocs)
	grid := raster.MustTileGrid(testW, testH, testTile)
	src := noise.New(31173)

	state := make([]*raster.Image, numLocs)
	lows := make([]*raster.Image, numLocs)
	var entryBytes int64
	for loc := 0; loc < numLocs; loc++ {
		full := testImage(uint64(800 + loc))
		if err := g.SeedBootstrap(loc, 0, full, []int{satID}); err != nil {
			t.Fatal(err)
		}
		state[loc] = full
		low, err := full.Downsample(testDown)
		if err != nil {
			t.Fatal(err)
		}
		lows[loc] = low
		if entryBytes == 0 {
			frame, err := sat.EncodeStoredRef(low, 6, codec.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			entryBytes = int64(len(frame))
		}
	}
	cache := compressedTestCache(t, 2*entryBytes)
	invalidate := func(evicted []int) {
		for _, loc := range evicted {
			g.InvalidateMirror(satID, loc)
		}
	}
	for loc := 0; loc < numLocs; loc++ {
		// The system bootstraps the store with the PRE-codec seed; the
		// store applies the storage codec the mirror already models.
		invalidate(cache.Put(loc, lows[loc].Clone(), 0))
	}

	locs := []int{0, 1, 2}
	reseeds, hitsAfterMiss := 0, 0
	missed := make([]bool, numLocs)
	for day := 1; day <= 14; day++ {
		for loc := 0; loc < numLocs; loc++ {
			state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
			applyFull(t, g, loc, day, state[loc])
			if src.Uniform(int64(day), int64(loc)) < 0.7 {
				if ref := cache.Visit(loc, day); ref == nil {
					missed[loc] = true
				} else if missed[loc] {
					// A hit on a previously missed location: the cycle
					// closed, and the decoded content must match the
					// ground's belief exactly.
					hitsAfterMiss++
					if mirror := g.MirrorImage(satID, loc); mirror == nil || !ref.Image.Equal(mirror) {
						t.Fatalf("day %d loc %d: post-re-seed decode diverged from mirror", day, loc)
					}
					missed[loc] = false
				}
			}
		}
		heldAtPack := make([]bool, numLocs)
		for loc := 0; loc < numLocs; loc++ {
			heldAtPack[loc] = g.MirrorRefDay(satID, loc) != -1
		}
		updates, err := g.PackUplink(satID, day, locs, link.NewMeter(0))
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range updates {
			if u.StoreFrame == nil {
				t.Fatalf("day %d loc %d: compressed ground shipped no storage frame", day, u.Loc)
			}
			if !heldAtPack[u.Loc] {
				reseeds++
				for b, m := range u.PerBand {
					if m.Count() != m.Grid.NumTiles() {
						t.Fatalf("day %d loc %d: re-seed band %d partial (%d/%d tiles)",
							day, u.Loc, b, m.Count(), m.Grid.NumTiles())
					}
				}
			}
			// Exercise both install paths: frame routing and the splice +
			// re-encode path must land in identical store states.
			if i%2 == 0 {
				invalidate(cache.PutFrame(u.Loc, u.StoreFrame, u.Decoded, u.Day))
			} else {
				invalidate(cache.ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day))
			}
		}
		for loc := 0; loc < numLocs; loc++ {
			mirror := g.MirrorImage(satID, loc)
			if mirror == nil {
				continue
			}
			ref := cache.Get(loc)
			if ref == nil {
				t.Fatalf("day %d loc %d: ground mirrors a reference the satellite does not hold", day, loc)
			}
			if !ref.Image.Equal(mirror) {
				t.Fatalf("day %d loc %d: compressed store decode diverged from ground mirror", day, loc)
			}
			if ref.Day != g.MirrorRefDay(satID, loc) {
				t.Fatalf("day %d loc %d: reference day %d, mirror day %d", day, loc, ref.Day, g.MirrorRefDay(satID, loc))
			}
		}
	}
	if reseeds == 0 || hitsAfterMiss == 0 {
		t.Fatalf("property not exercised: %d re-seeds, %d hits after miss", reseeds, hitsAfterMiss)
	}
	if d, _ := cache.DecodeStats(); d == 0 {
		t.Fatal("compressed store never decoded a frame")
	}
}
