package station

import (
	"testing"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/raster"
)

// pendingGround builds a ground with a tight retransmit bound so the
// demotion class is reachable in a few NACKs.
func pendingGround(t *testing.T, numLocs int) *Ground {
	t.Helper()
	bands := raster.PlanetBands()
	g, err := NewGround(Config{
		Bands:          bands,
		Grid:           raster.MustTileGrid(testW, testH, testTile),
		Downsample:     testDown,
		Accurate:       cloud.DefaultTemporal(bands),
		CodecOpts:      codec.DefaultOptions(),
		RefBPP:         6,
		MaxRefCloud:    0.05,
		MaxRetransmits: 2,
	}, numLocs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPendingUplinkClassifiesLikePackUplink(t *testing.T) {
	g := pendingGround(t, 2)
	locs := []int{0, 1}
	check := func(sat, wantReseeds, wantDeltas, wantDemoted int, why string) {
		t.Helper()
		r, d, m := g.PendingUplink(sat, locs)
		if r != wantReseeds || d != wantDeltas || m != wantDemoted {
			t.Fatalf("%s: PendingUplink(%d) = (%d, %d, %d), want (%d, %d, %d)",
				why, sat, r, d, m, wantReseeds, wantDeltas, wantDemoted)
		}
	}

	// No references anywhere: nothing is pending for anyone.
	check(0, 0, 0, 0, "empty ground")

	// Loc 0 seeded with sat 0's mirror primed: sat 0 is current, sat 1 has
	// no mirror and must re-seed.
	if err := g.SeedBootstrap(0, 10, testImage(1), []int{0}); err != nil {
		t.Fatal(err)
	}
	check(0, 0, 0, 0, "primed mirror")
	check(1, 1, 0, 0, "unprimed satellite")

	// A fresher reference for loc 0 turns sat 0's current mirror stale.
	if err := g.SeedBootstrap(0, 20, testImage(2), nil); err != nil {
		t.Fatal(err)
	}
	check(0, 0, 1, 0, "stale mirror")
	check(1, 1, 0, 0, "still unprimed")

	// Loc 1 comes online for both: sat 0 adds a re-seed next to its delta.
	if err := g.SeedBootstrap(1, 20, testImage(3), nil); err != nil {
		t.Fatal(err)
	}
	check(0, 1, 1, 0, "reseed + delta")
	check(1, 2, 0, 0, "two reseeds")

	// An eviction on board drops sat 0's loc-0 mirror: delta becomes reseed.
	g.InvalidateMirror(0, 0)
	check(0, 2, 0, 0, "evicted mirror")

	// Failed deliveries past MaxRetransmits demote the re-seed.
	for i := 0; i < 3; i++ {
		g.NackDelivery(1, 0)
	}
	check(1, 1, 0, 1, "demoted after repeated NACKs")

	// One success resets the count: back to head-of-line re-seed class.
	g.AckDelivery(1, 0)
	check(1, 2, 0, 0, "ACK resets demotion")
}

// TestPendingUplinkDoesNotMutate: the counting probe must leave mirror
// state untouched — the scheduler calls it every day before any packing.
func TestPendingUplinkDoesNotMutate(t *testing.T) {
	g := pendingGround(t, 1)
	if err := g.SeedBootstrap(0, 10, testImage(4), []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := g.SeedBootstrap(0, 15, testImage(5), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r, d, m := g.PendingUplink(0, []int{0})
		if r != 0 || d != 1 || m != 0 {
			t.Fatalf("probe %d: (%d, %d, %d) changed across calls", i, r, d, m)
		}
	}
	if g.MirrorRefDay(0, 0) != 10 {
		t.Fatalf("probe moved the mirror to day %d", g.MirrorRefDay(0, 0))
	}
	// A satellite the ground has never met stays unknown after probing.
	if r, _, _ := g.PendingUplink(9, []int{0}); r != 1 {
		t.Fatalf("unknown satellite pending = %d, want 1 reseed", r)
	}
	if g.MirrorRefDay(9, 0) != -1 {
		t.Fatal("probe materialised a mirror for an unknown satellite")
	}
}
