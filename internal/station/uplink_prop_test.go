package station

import (
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/link"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
	"earthplus/internal/sat"
)

// Property test for reference-upload packing: across rounds of archive
// churn, (a) PackUplink never consumes more than the day's uplink budget,
// and (b) applying each shipped update's tile masks on board (the
// satellite's RefCache) reproduces the ground's mirror of that satellite
// exactly — the invariant delta-encoded uplinks depend on (§4.3).

// mutateTiles overwrites n pseudo-random tiles of every band with fresh
// content and returns the changed image.
func mutateTiles(src *noise.Source, round int, base *raster.Image, grid raster.TileGrid, n int) *raster.Image {
	out := base.Clone()
	for k := 0; k < n; k++ {
		tl := int(src.Uniform(int64(round), int64(k)) * float64(grid.NumTiles()))
		if tl >= grid.NumTiles() {
			tl = grid.NumTiles() - 1
		}
		x0, y0, x1, y1 := grid.Bounds(tl)
		for b := 0; b < out.NumBands(); b++ {
			v := float32(0.1 + 0.8*src.Uniform(int64(round)*17+int64(b), int64(k)))
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					out.Set(b, x, y, v)
				}
			}
		}
	}
	return out
}

// applyFull pushes an image into the archive through the public download
// path (all tiles in the ROI) and promotes it to the reference.
func applyFull(t *testing.T, g *Ground, loc, day int, im *raster.Image) {
	t.Helper()
	grid := raster.MustTileGrid(testW, testH, testTile)
	all := raster.NewTileMask(grid)
	all.SetAll()
	streams := make([][]byte, im.NumBands())
	rois := make([]*raster.TileMask, im.NumBands())
	opts := codec.DefaultOptions()
	opts.BudgetBytes = 0 // full quality: the archive should track im closely
	for b := 0; b < im.NumBands(); b++ {
		data, err := codec.EncodeROIPlane(im.Plane(b), all, opts)
		if err != nil {
			t.Fatal(err)
		}
		streams[b], rois[b] = data, all
	}
	if err := g.ApplyDownload(loc, day, container.Pack(streams), rois, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MaybePromote(loc, day, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPackUplinkBudgetAndMirrorReproduction(t *testing.T) {
	const numLocs = 2
	g := testGround(t, numLocs)
	grid := raster.MustTileGrid(testW, testH, testTile)
	src := noise.New(777)

	sats := []int{0, 1}
	// Satellite 1 lives under a tight budget that forces the trimming and
	// skipping paths; satellite 0 is unconstrained.
	budgets := map[int]int64{0: 0, 1: 700}
	caches := map[int]*sat.RefCache{}
	state := make([]*raster.Image, numLocs)
	for loc := 0; loc < numLocs; loc++ {
		full := testImage(uint64(50 + loc))
		if err := g.SeedBootstrap(loc, 0, full, sats); err != nil {
			t.Fatal(err)
		}
		state[loc] = full
	}
	for _, s := range sats {
		caches[s] = sat.NewRefCache()
		for loc := 0; loc < numLocs; loc++ {
			caches[s].Put(loc, g.MirrorImage(s, loc), 0)
		}
	}

	locs := []int{0, 1}
	for day := 1; day <= 10; day++ {
		for loc := 0; loc < numLocs; loc++ {
			state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
			applyFull(t, g, loc, day, state[loc])
		}
		for _, s := range sats {
			budget := budgets[s]
			meter := link.NewMeter(budget)
			updates, err := g.PackUplink(s, day, locs, meter)
			if err != nil {
				t.Fatal(err)
			}
			var shipped int64
			for _, u := range updates {
				shipped += u.Bytes
			}
			if shipped != meter.Used() {
				t.Fatalf("day %d sat %d: shipped %d bytes but meter used %d", day, s, shipped, meter.Used())
			}
			if budget > 0 && shipped > budget {
				t.Fatalf("day %d sat %d: uplink budget exceeded: %d > %d", day, s, shipped, budget)
			}
			for _, u := range updates {
				caches[s].ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day)
				ref := caches[s].Get(u.Loc)
				mirror := g.MirrorImage(s, u.Loc)
				if mirror == nil {
					t.Fatalf("day %d sat %d loc %d: update shipped but no mirror", day, s, u.Loc)
				}
				if !ref.Image.Equal(mirror) {
					t.Fatalf("day %d sat %d loc %d: on-board reference diverged from ground mirror", day, s, u.Loc)
				}
				if ref.Day != g.MirrorRefDay(s, u.Loc) {
					t.Fatalf("day %d sat %d loc %d: reference day %d, mirror day %d", day, s, u.Loc, ref.Day, g.MirrorRefDay(s, u.Loc))
				}
			}
		}
	}

	// The unconstrained satellite must have converged to the freshest
	// reference for every location.
	for loc := 0; loc < numLocs; loc++ {
		if d := caches[0].Get(loc).Day; d != 10 {
			t.Fatalf("unconstrained satellite stuck at day %d for loc %d", d, loc)
		}
	}
}

// Property: a capacity-bounded on-board cache stays coherent with the
// ground's mirror bookkeeping through any interleaving of visits,
// evictions and uplink cycles. The invariant is directional: whenever the
// ground holds a mirror for (sat, loc), the satellite's reference exists
// and is byte-equal to it — deltas are only ever encoded against state the
// satellite verifiably holds. The satellite MAY hold a reference the
// ground no longer mirrors (an update applied right after an intra-cycle
// eviction invalidated its slot); that is conservative — the next cycle
// re-sends in full — never incoherent, because RefUpdate.Decoded is always
// the complete post-update reference, so applying it to a missing entry
// installs correct content. Locations whose mirror was already nil at
// PACK time must be re-seeded with full (every-tile) updates. With 3
// locations and a 2-reference budget the store thrashes continuously, so
// all paths run many times over.
func TestEvictionKeepsGroundMirrorCoherent(t *testing.T) {
	const numLocs, satID = 3, 0
	g := testGround(t, numLocs)
	grid := raster.MustTileGrid(testW, testH, testTile)
	src := noise.New(90210)

	// One low-res reference is (64/4)*(64/4)*4 samples at 16 bits = 2048
	// bytes; the budget fits two of the three locations.
	lowRefBytes := int64(testW/testDown) * int64(testH/testDown) * 4 * 2
	cache, err := sat.NewBoundedRefCache(sat.CacheConfig{BudgetBytes: 2 * lowRefBytes})
	if err != nil {
		t.Fatal(err)
	}
	invalidate := func(evicted []int) {
		for _, loc := range evicted {
			g.InvalidateMirror(satID, loc)
		}
	}

	state := make([]*raster.Image, numLocs)
	for loc := 0; loc < numLocs; loc++ {
		full := testImage(uint64(300 + loc))
		if err := g.SeedBootstrap(loc, 0, full, []int{satID}); err != nil {
			t.Fatal(err)
		}
		state[loc] = full
		invalidate(cache.Put(loc, g.MirrorImage(satID, loc), 0))
	}

	locs := []int{0, 1, 2}
	evictionsSeen, reseedsSeen := 0, 0
	for day := 1; day <= 14; day++ {
		// Ground-side churn plus on-board visits for a pseudo-random
		// subset of locations.
		for loc := 0; loc < numLocs; loc++ {
			state[loc] = mutateTiles(src, day*numLocs+loc, state[loc], grid, 2)
			applyFull(t, g, loc, day, state[loc])
			if src.Uniform(int64(day), int64(loc)) < 0.6 {
				cache.Visit(loc, day)
			}
		}
		// Snapshot which locations the ground believed the satellite held
		// BEFORE packing: those are delta candidates, the rest must ship
		// as full re-seeds.
		heldAtPack := make([]bool, numLocs)
		for loc := 0; loc < numLocs; loc++ {
			heldAtPack[loc] = g.MirrorRefDay(satID, loc) != -1
		}
		updates, err := g.PackUplink(satID, day, locs, link.NewMeter(0))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range updates {
			if !heldAtPack[u.Loc] {
				// Re-seed of an evicted reference: the ground must ship
				// every tile, not a delta against state the satellite no
				// longer holds.
				reseedsSeen++
				for b, m := range u.PerBand {
					if m.Count() != m.Grid.NumTiles() {
						t.Fatalf("day %d loc %d: re-seed band %d carries %d/%d tiles; want a full update",
							day, u.Loc, b, m.Count(), m.Grid.NumTiles())
					}
				}
			}
			evicted := cache.ApplyTileUpdate(u.Loc, u.Decoded, u.PerBand, u.Day)
			invalidate(evicted)
			evictionsSeen += len(evicted)
			for _, ev := range evicted {
				if d := g.MirrorRefDay(satID, ev); d != -1 {
					t.Fatalf("day %d: evicted loc %d still mirrored at day %d", day, ev, d)
				}
			}
		}
		// Replay invariant: wherever the ground holds a mirror, the
		// on-board reference exists and reproduces it exactly.
		for loc := 0; loc < numLocs; loc++ {
			mirror := g.MirrorImage(satID, loc)
			if mirror == nil {
				continue
			}
			ref := cache.Get(loc)
			if ref == nil {
				t.Fatalf("day %d loc %d: ground mirrors a reference the satellite does not hold", day, loc)
			}
			if !ref.Image.Equal(mirror) {
				t.Fatalf("day %d loc %d: on-board reference diverged from ground mirror", day, loc)
			}
			if ref.Day != g.MirrorRefDay(satID, loc) {
				t.Fatalf("day %d loc %d: reference day %d, mirror day %d", day, loc, ref.Day, g.MirrorRefDay(satID, loc))
			}
		}
	}
	if evictionsSeen == 0 || reseedsSeen == 0 {
		t.Fatalf("property not exercised: %d evictions, %d re-seeds", evictionsSeen, reseedsSeen)
	}
}

func TestAccurateMaskAndReassess(t *testing.T) {
	g := testGround(t, 1)
	full := testImage(9)
	if err := g.SeedBootstrap(0, 0, full, nil); err != nil {
		t.Fatal(err)
	}
	// Against its own archive content the accurate detector must find an
	// essentially clear image; a brightened+cooled one must read cloudier.
	if cov := g.ReassessCoverage(full, 0); cov > 0.05 {
		t.Fatalf("clear capture reassessed at %.0f%% coverage", cov*100)
	}
	// A cloud signature the illumination fit cannot explain away: one half
	// of the frame brightens in the visible bands and cools in the IR.
	cloudy := full.Clone()
	ir := raster.InfraredBand(cloudy.Bands)
	for y := 0; y < cloudy.Height; y++ {
		for x := 0; x < cloudy.Width/2; x++ {
			for b := 0; b < cloudy.NumBands(); b++ {
				if b == ir {
					cloudy.Set(b, x, y, cloudy.At(b, x, y)-0.3)
				} else {
					cloudy.Set(b, x, y, cloudy.At(b, x, y)+0.4)
				}
			}
		}
	}
	cloudy.Clamp()
	mask := g.AccurateMask(cloudy, 0)
	if mask.Coverage() <= g.ReassessCoverage(full, 0) {
		t.Fatal("brightened capture not detected as cloudier")
	}
}
