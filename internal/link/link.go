// Package link models the satellite-to-ground and ground-to-satellite
// channels the way the paper does (§6.1): constant-rate windows of fixed
// duration, with byte-granular budget accounting on the scarce uplink,
// plus a deterministic fault injector for lossy-link studies (channel.go).
package link

import (
	"fmt"
	"math"
)

// Budget describes one direction of a satellite's connectivity.
type Budget struct {
	// Bps is the channel bandwidth in bits per second.
	Bps float64
	// SecondsPerContact is the usable window length per ground contact.
	SecondsPerContact float64
	// ContactsPerDay is how many contacts each satellite gets per day.
	ContactsPerDay int
}

// Validate rejects budgets whose fields would silently produce nonsense
// capacities: a negative Bps or SecondsPerContact flips BytesPerContact
// negative (which NewMeter then reads as "unlimited"), and a negative
// ContactsPerDay flips the daily capacity's sign back. The zero value is
// valid (a link with no capacity).
func (b Budget) Validate() error {
	if b.Bps < 0 || math.IsNaN(b.Bps) || math.IsInf(b.Bps, 0) {
		return fmt.Errorf("link: Bps must be finite and non-negative, got %v", b.Bps)
	}
	if b.SecondsPerContact < 0 || math.IsNaN(b.SecondsPerContact) || math.IsInf(b.SecondsPerContact, 0) {
		return fmt.Errorf("link: SecondsPerContact must be finite and non-negative, got %v", b.SecondsPerContact)
	}
	if b.ContactsPerDay < 0 {
		return fmt.Errorf("link: ContactsPerDay must be non-negative, got %d", b.ContactsPerDay)
	}
	return nil
}

// BytesPerContact returns the channel capacity of a single contact.
func (b Budget) BytesPerContact() int64 {
	return int64(b.Bps * b.SecondsPerContact / 8)
}

// BytesPerDay returns the per-day capacity across all contacts.
func (b Budget) BytesPerDay() int64 {
	return b.BytesPerContact() * int64(b.ContactsPerDay)
}

// RequiredBps converts a transferred byte count back into the average
// bandwidth that would be needed to move it within one contact — the
// paper's "required downlink bandwidth" metric (§6.1).
func (b Budget) RequiredBps(bytes int64) float64 {
	if b.SecondsPerContact <= 0 {
		return 0
	}
	return float64(bytes) * 8 / b.SecondsPerContact
}

// Meter enforces a byte budget.
type Meter struct {
	capacity int64
	used     int64
}

// NewMeter returns a meter with the given capacity; a non-positive
// capacity means unlimited.
func NewMeter(capacity int64) *Meter {
	return &Meter{capacity: capacity}
}

// TryConsume reserves n bytes if they fit, reporting whether it succeeded.
func (m *Meter) TryConsume(n int64) bool {
	if n < 0 {
		panic(fmt.Sprintf("link: negative consume %d", n))
	}
	if m.capacity > 0 && m.used+n > m.capacity {
		return false
	}
	m.used += n
	return true
}

// Consume reserves n bytes unconditionally (overage tracking).
func (m *Meter) Consume(n int64) { m.used += n }

// Used returns the bytes consumed so far.
func (m *Meter) Used() int64 { return m.used }

// Remaining returns the bytes left, or -1 when unlimited.
func (m *Meter) Remaining() int64 {
	if m.capacity <= 0 {
		return -1
	}
	r := m.capacity - m.used
	if r < 0 {
		return 0
	}
	return r
}

// Capacity returns the configured capacity (<=0 means unlimited).
func (m *Meter) Capacity() int64 { return m.capacity }

// Reset clears consumption (e.g. at the start of a new day).
func (m *Meter) Reset() { m.used = 0 }
