package link

import (
	"fmt"

	"earthplus/internal/noise"
)

// FaultConfig parameterises the deterministic fault injector on one
// ground<->satellite channel. All rates are probabilities in [0,1]; the
// zero value is the perfect channel.
type FaultConfig struct {
	// DropRate is the per-frame probability the frame vanishes in
	// transit (nothing arrives).
	DropRate float64
	// CorruptRate is the per-frame probability exactly one payload byte
	// is flipped in transit. A single-byte error is always caught by the
	// container's CRC-32C, so corruption manifests as a rejected frame,
	// never as silently spliced garbage.
	CorruptRate float64
	// TruncateRate is the per-frame probability the frame's tail is cut
	// at a deterministic position (a contact window closing mid-frame).
	TruncateRate float64
	// ContactCancelRate is the per-(satellite, day, direction)
	// probability the whole contact window is lost: every frame of that
	// contact vanishes.
	ContactCancelRate float64
	// Seed seeds the injector. Fault decisions are pure functions of
	// (Seed, direction, satellite, day, location), so runs are
	// byte-identical at any engine worker count.
	Seed uint64
}

// Validate rejects rates outside [0,1].
func (c FaultConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", c.DropRate},
		{"CorruptRate", c.CorruptRate},
		{"TruncateRate", c.TruncateRate},
		{"ContactCancelRate", c.ContactCancelRate},
	} {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("link: %s must be in [0,1], got %v", r.name, r.v)
		}
	}
	return nil
}

// Enabled reports whether any fault can ever fire.
func (c FaultConfig) Enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || c.TruncateRate > 0 || c.ContactCancelRate > 0
}

// UniformFaults spreads one aggregate loss knob p over the fault
// taxonomy: half of it frame drops, a quarter each corruptions and
// truncations, and p/8 whole-contact cancellations. This is the split
// behind the single -linkloss flag; individual rates remain available
// through FaultConfig for targeted tests.
func UniformFaults(p float64, seed uint64) FaultConfig {
	return FaultConfig{
		DropRate:          p / 2,
		CorruptRate:       p / 4,
		TruncateRate:      p / 4,
		ContactCancelRate: p / 8,
		Seed:              seed,
	}
}

// Direction identifies which way a frame travels.
type Direction uint8

const (
	// Uplink is ground-to-satellite (reference updates).
	Uplink Direction = iota + 1
	// Downlink is satellite-to-ground (capture downloads).
	Downlink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Uplink:
		return "uplink"
	case Downlink:
		return "downlink"
	}
	return fmt.Sprintf("direction(%d)", uint8(d))
}

// TxOutcome is what happened to one transmitted frame.
type TxOutcome uint8

const (
	// TxDelivered means the frame arrived intact.
	TxDelivered TxOutcome = iota
	// TxContactLost means the whole contact window was canceled.
	TxContactLost
	// TxDropped means this frame vanished in transit.
	TxDropped
	// TxCorrupted means the frame arrived with one byte flipped.
	TxCorrupted
	// TxTruncated means only a prefix of the frame arrived.
	TxTruncated
)

// Arrived reports whether any bytes reached the receiver (possibly
// damaged — the receiver's CRC gate decides what to do with them).
func (o TxOutcome) Arrived() bool {
	return o == TxDelivered || o == TxCorrupted || o == TxTruncated
}

// String implements fmt.Stringer.
func (o TxOutcome) String() string {
	switch o {
	case TxDelivered:
		return "delivered"
	case TxContactLost:
		return "contact-lost"
	case TxDropped:
		return "dropped"
	case TxCorrupted:
		return "corrupted"
	case TxTruncated:
		return "truncated"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Decision streams: one noise stream per (direction, decision kind), so
// every fault draw is independent of every other.
const (
	kindCancel int64 = iota
	kindDrop
	kindCorrupt
	kindCorruptPos
	kindCorruptXor
	kindTruncate
	kindTruncateLen
)

func stream(dir Direction, kind int64) int64 {
	return int64(dir)<<8 | kind
}

// frameKey packs one frame's identity into a variate index. The 21/21/21
// bit split is collision-free for any realistic fleet size, mission
// length and location count.
func frameKey(sat, day, loc int) int64 {
	const mask = 1<<21 - 1
	return (int64(sat)&mask)<<42 | (int64(day)&mask)<<21 | int64(loc)&mask
}

// Channel is a deterministic fault-injected frame channel. A nil Channel
// (or one with a zero FaultConfig) is the perfect channel: Transmit
// returns the frame untouched without drawing any randomness, keeping
// fault-free runs byte-identical to a build without the injector.
type Channel struct {
	cfg FaultConfig
	src *noise.Source
}

// NewChannel validates the config and builds a channel.
func NewChannel(cfg FaultConfig) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, src: noise.New(cfg.Seed)}, nil
}

// Enabled reports whether this channel can ever fault a frame.
func (ch *Channel) Enabled() bool { return ch != nil && ch.cfg.Enabled() }

// Config returns the channel's fault configuration.
func (ch *Channel) Config() FaultConfig {
	if ch == nil {
		return FaultConfig{}
	}
	return ch.cfg
}

// ContactCanceled reports whether the whole (satellite, day) contact
// window in the given direction is lost. It is a pure function of the
// key, so every frame of a canceled contact observes the same outcome.
func (ch *Channel) ContactCanceled(dir Direction, sat, day int) bool {
	if !ch.Enabled() || ch.cfg.ContactCancelRate <= 0 {
		return false
	}
	return ch.src.Uniform(stream(dir, kindCancel), frameKey(sat, day, 0)) < ch.cfg.ContactCancelRate
}

// Transmit passes one frame through the channel and returns what the
// receiver sees. The outcome is a pure function of (Seed, dir, sat, day,
// loc) — independent of call order, so the sharded engine's worker count
// cannot change it. A damaged frame is always a fresh copy; the caller's
// slice is never mutated. Empty frames pass through untouched.
func (ch *Channel) Transmit(dir Direction, sat, day, loc int, frame []byte) ([]byte, TxOutcome) {
	if !ch.Enabled() || len(frame) == 0 {
		return frame, TxDelivered
	}
	if ch.ContactCanceled(dir, sat, day) {
		return nil, TxContactLost
	}
	k := frameKey(sat, day, loc)
	if ch.cfg.DropRate > 0 && ch.src.Uniform(stream(dir, kindDrop), k) < ch.cfg.DropRate {
		return nil, TxDropped
	}
	if ch.cfg.CorruptRate > 0 && ch.src.Uniform(stream(dir, kindCorrupt), k) < ch.cfg.CorruptRate {
		out := append([]byte(nil), frame...)
		pos := int(ch.src.Uniform(stream(dir, kindCorruptPos), k) * float64(len(out)))
		if pos >= len(out) {
			pos = len(out) - 1
		}
		// XOR with a value in [1,255]: the byte always changes, and a
		// single-byte error is guaranteed CRC-32C detectable.
		out[pos] ^= byte(1 + int(ch.src.Uniform(stream(dir, kindCorruptXor), k)*255))
		return out, TxCorrupted
	}
	if ch.cfg.TruncateRate > 0 && ch.src.Uniform(stream(dir, kindTruncate), k) < ch.cfg.TruncateRate {
		n := int(ch.src.Uniform(stream(dir, kindTruncateLen), k) * float64(len(frame)))
		return append([]byte(nil), frame[:n]...), TxTruncated
	}
	return frame, TxDelivered
}
