package link

import "testing"

func TestBudgetArithmetic(t *testing.T) {
	b := Budget{Bps: 250e3, SecondsPerContact: 600, ContactsPerDay: 7}
	if got := b.BytesPerContact(); got != 18750000 {
		t.Fatalf("BytesPerContact = %d", got)
	}
	if got := b.BytesPerDay(); got != 7*18750000 {
		t.Fatalf("BytesPerDay = %d", got)
	}
}

func TestRequiredBps(t *testing.T) {
	b := Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7}
	// 15 GB over one 600 s contact needs 200 Mbps.
	if got := b.RequiredBps(15e9); got != 2e8 {
		t.Fatalf("RequiredBps = %v", got)
	}
	if got := (Budget{}).RequiredBps(100); got != 0 {
		t.Fatalf("zero-window RequiredBps = %v", got)
	}
}

func TestMeterEnforcesCapacity(t *testing.T) {
	m := NewMeter(100)
	if !m.TryConsume(60) || !m.TryConsume(40) {
		t.Fatal("consumes within capacity refused")
	}
	if m.TryConsume(1) {
		t.Fatal("consume over capacity accepted")
	}
	if m.Used() != 100 || m.Remaining() != 0 {
		t.Fatalf("used=%d remaining=%d", m.Used(), m.Remaining())
	}
	m.Reset()
	if m.Used() != 0 || m.Remaining() != 100 {
		t.Fatalf("after reset used=%d remaining=%d", m.Used(), m.Remaining())
	}
}

func TestMeterUnlimited(t *testing.T) {
	m := NewMeter(0)
	if !m.TryConsume(1 << 40) {
		t.Fatal("unlimited meter refused")
	}
	if m.Remaining() != -1 {
		t.Fatalf("unlimited Remaining = %d", m.Remaining())
	}
}

func TestMeterConsumeOverage(t *testing.T) {
	m := NewMeter(10)
	m.Consume(25)
	if m.Used() != 25 {
		t.Fatalf("Used = %d", m.Used())
	}
	if m.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want clamped 0", m.Remaining())
	}
	if m.Capacity() != 10 {
		t.Fatalf("Capacity = %d", m.Capacity())
	}
}

func TestMeterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMeter(10).TryConsume(-1)
}
