package link

import (
	"bytes"
	"testing"
)

func TestFaultConfigValidate(t *testing.T) {
	ok := []FaultConfig{
		{},
		{DropRate: 1, CorruptRate: 1, TruncateRate: 1, ContactCancelRate: 1},
		UniformFaults(0.05, 7),
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []FaultConfig{
		{DropRate: -0.1},
		{CorruptRate: 1.5},
		{TruncateRate: -1},
		{ContactCancelRate: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted an out-of-range rate", c)
		}
	}
	if _, err := NewChannel(FaultConfig{DropRate: 2}); err == nil {
		t.Fatal("NewChannel accepted an invalid config")
	}
}

func TestChannelDisabledIsPassthrough(t *testing.T) {
	frame := []byte("EP+C pretend frame")
	var nilCh *Channel
	if nilCh.Enabled() {
		t.Fatal("nil channel reports Enabled")
	}
	got, out := nilCh.Transmit(Uplink, 0, 0, 0, frame)
	if out != TxDelivered || &got[0] != &frame[0] {
		t.Fatal("nil channel must return the original slice untouched")
	}
	zero, err := NewChannel(FaultConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Enabled() {
		t.Fatal("zero-rate channel reports Enabled")
	}
	got, out = zero.Transmit(Downlink, 3, 9, 1, frame)
	if out != TxDelivered || &got[0] != &frame[0] {
		t.Fatal("zero-rate channel must return the original slice untouched")
	}
}

func TestChannelDeterministicAndOrderIndependent(t *testing.T) {
	cfg := UniformFaults(0.3, 1234)
	a, _ := NewChannel(cfg)
	b, _ := NewChannel(cfg)
	frame := bytes.Repeat([]byte{0xAB}, 600)
	type key struct{ sat, day, loc int }
	keys := []key{}
	for satID := 0; satID < 3; satID++ {
		for day := 0; day < 40; day++ {
			for loc := 0; loc < 4; loc++ {
				keys = append(keys, key{satID, day, loc})
			}
		}
	}
	// Draw a's outcomes in forward order and b's in reverse: outcomes are
	// pure functions of the key, so order must not matter.
	outA := make(map[key]TxOutcome)
	payloadA := make(map[key][]byte)
	for _, k := range keys {
		rx, o := a.Transmit(Uplink, k.sat, k.day, k.loc, frame)
		outA[k], payloadA[k] = o, rx
	}
	seen := map[TxOutcome]int{}
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		rx, o := b.Transmit(Uplink, k.sat, k.day, k.loc, frame)
		if o != outA[k] || !bytes.Equal(rx, payloadA[k]) {
			t.Fatalf("outcome at %+v depends on draw order: %v vs %v", k, o, outA[k])
		}
		seen[o]++
	}
	for _, o := range []TxOutcome{TxDelivered, TxDropped, TxCorrupted, TxTruncated, TxContactLost} {
		if seen[o] == 0 {
			t.Fatalf("30%% loss over %d frames never produced %v — taxonomy not exercised", len(keys), o)
		}
	}
	// A different seed must produce a different fault pattern.
	c, _ := NewChannel(UniformFaults(0.3, 99))
	same := true
	for _, k := range keys {
		if _, o := c.Transmit(Uplink, k.sat, k.day, k.loc, frame); o != outA[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the fault pattern")
	}
}

func TestChannelCorruptionFlipsExactlyOneByte(t *testing.T) {
	ch, _ := NewChannel(FaultConfig{CorruptRate: 1, Seed: 5})
	frame := bytes.Repeat([]byte{0x5A}, 257)
	rx, out := ch.Transmit(Downlink, 1, 2, 3, frame)
	if out != TxCorrupted {
		t.Fatalf("outcome %v, want corrupted", out)
	}
	if &rx[0] == &frame[0] {
		t.Fatal("corruption mutated the caller's slice")
	}
	diffs := 0
	for i := range frame {
		if rx[i] != frame[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diffs)
	}
}

func TestChannelTruncationShortens(t *testing.T) {
	ch, _ := NewChannel(FaultConfig{TruncateRate: 1, Seed: 5})
	frame := bytes.Repeat([]byte{1}, 1000)
	rx, out := ch.Transmit(Uplink, 0, 1, 2, frame)
	if out != TxTruncated {
		t.Fatalf("outcome %v, want truncated", out)
	}
	if len(rx) >= len(frame) {
		t.Fatalf("truncated frame is %d bytes, want < %d", len(rx), len(frame))
	}
	if !bytes.Equal(rx, frame[:len(rx)]) {
		t.Fatal("truncation must keep an unmodified prefix")
	}
}

func TestChannelContactCancelCoversWholeContact(t *testing.T) {
	ch, _ := NewChannel(FaultConfig{ContactCancelRate: 0.5, Seed: 11})
	frame := []byte("payload")
	canceledDays := 0
	for day := 0; day < 50; day++ {
		want := ch.ContactCanceled(Uplink, 0, day)
		if want {
			canceledDays++
		}
		for loc := 0; loc < 5; loc++ {
			_, out := ch.Transmit(Uplink, 0, day, loc, frame)
			if want != (out == TxContactLost) {
				t.Fatalf("day %d loc %d: outcome %v inconsistent with contact cancel %v", day, loc, out, want)
			}
		}
	}
	if canceledDays == 0 || canceledDays == 50 {
		t.Fatalf("cancel rate 0.5 canceled %d/50 contacts", canceledDays)
	}
	// Directions draw from independent streams.
	up, down := 0, 0
	for day := 0; day < 200; day++ {
		if ch.ContactCanceled(Uplink, 0, day) {
			up++
		}
		if ch.ContactCanceled(Downlink, 0, day) {
			down++
		}
	}
	if up == down {
		t.Log("uplink and downlink cancel counts coincide; acceptable but suspicious")
	}
	if up == 0 || down == 0 {
		t.Fatal("one direction never cancels at rate 0.5")
	}
}

func TestBudgetValidate(t *testing.T) {
	ok := []Budget{
		{},
		{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
	for _, b := range ok {
		if err := b.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v", b, err)
		}
	}
	bad := []Budget{
		{Bps: -1},
		{SecondsPerContact: -600},
		{ContactsPerDay: -7},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted a negative field", b)
		}
	}
}
