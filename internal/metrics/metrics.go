// Package metrics provides the small statistics and text-rendering helpers
// the experiment harness uses to regenerate the paper's tables and figures
// as terminal output: means, CDFs, percentiles, aligned tables, and ASCII
// series plots.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// CDF returns the empirical distribution of xs as sorted (value, fraction)
// pairs, one per sample.
func CDF(xs []float64) (values, fractions []float64) {
	values = append([]float64(nil), xs...)
	sort.Float64s(values)
	fractions = make([]float64, len(values))
	for i := range values {
		fractions[i] = float64(i+1) / float64(len(values))
	}
	return values, fractions
}

// CDFAt returns the empirical CDF of xs evaluated at x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Table renders rows with aligned columns. The first row is treated as the
// header and underlined.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(row []string) {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(rows[0])
	var under []string
	for i := range rows[0] {
		under = append(under, strings.Repeat("-", widths[i]))
	}
	writeRow(under)
	for _, row := range rows[1:] {
		writeRow(row)
	}
}

// Series renders an ASCII line chart of y versus x (both same length),
// labelled with the given axis names. Height rows, width columns.
func Series(w io.Writer, title, xLabel, yLabel string, x, y []float64, width, height int) {
	fmt.Fprintln(w, title)
	if len(x) == 0 || len(x) != len(y) || width < 8 || height < 2 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	minX, maxX := x[0], x[0]
	minY, maxY := y[0], y[0]
	for i := range x {
		minX = math.Min(minX, x[i])
		maxX = math.Max(maxX, x[i])
		minY = math.Min(minY, y[i])
		maxY = math.Max(maxY, y[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range x {
		col := int((x[i] - minX) / (maxX - minX) * float64(width-1))
		row := int((y[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-row][col] = '*'
	}
	fmt.Fprintf(w, "  %s: %.4g .. %.4g\n", yLabel, maxY, minY)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   %s: %.4g .. %.4g\n", xLabel, minX, maxX)
}

// Bar renders a labelled horizontal bar chart with values scaled to
// maxWidth characters.
func Bar(w io.Writer, title string, labels []string, values []float64, unit string, maxWidth int) {
	fmt.Fprintln(w, title)
	var maxV float64
	maxLabel := 0
	for i, v := range values {
		maxV = math.Max(maxV, v)
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(maxWidth))
		fmt.Fprintf(w, "  %-*s %s %.4g %s\n", maxLabel, labels[i], strings.Repeat("#", n), v, unit)
	}
}

// Ratio divides a by b, returning NaN when b is 0 — for "X times less
// downlink" style factors.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
