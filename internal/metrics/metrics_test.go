package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if Std([]float64{1}) != 0 {
		t.Fatal("single-element std")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("P100 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		vals, fracs := CDF(xs)
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		if fracs[len(fracs)-1] != 1 {
			return false
		}
		for i := 1; i < len(fracs); i++ {
			if fracs[i] < fracs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt(0) = %v", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Fatalf("CDFAt(10) = %v", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Fatal("empty CDFAt should be NaN")
	}
}

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"name", "value"},
		{"x", "1"},
		{"longer", "22"},
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("underline = %q", lines[1])
	}
	// Columns align: "value" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if lines[2][idx:idx+1] != "1" && lines[3][idx:idx+2] != "22" {
		t.Fatalf("misaligned rows:\n%s", out)
	}
	Table(&b, nil) // must not panic
}

func TestSeriesRendersPoints(t *testing.T) {
	var b strings.Builder
	Series(&b, "demo", "day", "psnr", []float64{0, 1, 2, 3}, []float64{1, 2, 3, 4}, 20, 5)
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") {
		t.Fatalf("series output missing content:\n%s", out)
	}
	var e strings.Builder
	Series(&e, "empty", "x", "y", nil, nil, 20, 5)
	if !strings.Contains(e.String(), "no data") {
		t.Fatal("empty series should say so")
	}
}

func TestSeriesConstantSeriesDoesNotPanic(t *testing.T) {
	var b strings.Builder
	Series(&b, "flat", "x", "y", []float64{1, 2}, []float64{5, 5}, 10, 3)
	if !strings.Contains(b.String(), "*") {
		t.Fatal("flat series lost points")
	}
}

func TestBar(t *testing.T) {
	var b strings.Builder
	Bar(&b, "storage", []string{"Kodan", "Earth+"}, []float64{255, 24}, "GB", 30)
	out := b.String()
	if !strings.Contains(out, "Kodan") || !strings.Contains(out, "#") {
		t.Fatalf("bar output:\n%s", out)
	}
	if strings.Count(strings.Split(out, "\n")[1], "#") <= strings.Count(strings.Split(out, "\n")[2], "#") {
		t.Fatal("larger value must render a longer bar")
	}
	var z strings.Builder
	Bar(&z, "zeros", []string{"a"}, []float64{0}, "x", 10) // must not panic
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 2); got != 3 {
		t.Fatalf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("divide by zero should be NaN")
	}
}
