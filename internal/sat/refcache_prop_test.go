package sat

import (
	"testing"

	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// Property: ApplyTileUpdate must behave exactly like tile-granular
// splicing — after every update, masked tiles equal the update image,
// unmasked tiles keep their previous content, and the reference day
// advances. The test drives 24 rounds of pseudo-random updates against an
// independently maintained shadow image.

func propImage(src *noise.Source, stream int64, w, h int, bands []raster.BandInfo) *raster.Image {
	im := raster.New(w, h, bands)
	for b := range im.Pix {
		p := im.Plane(b)
		for i := range p {
			p[i] = float32(src.Uniform(stream*31+int64(b), int64(i)))
		}
	}
	return im
}

func TestApplyTileUpdateSplicesExactly(t *testing.T) {
	const w, h, tile = 32, 32, 8
	bands := raster.PlanetBands()
	grid := raster.MustTileGrid(w, h, tile)
	src := noise.New(424242)

	cache := NewRefCache()
	base := propImage(src, 1, w, h, bands)
	cache.Put(3, base.Clone(), 0)
	shadow := base.Clone()

	for round := 1; round <= 24; round++ {
		update := propImage(src, int64(round)+100, w, h, bands)
		perBand := make([]*raster.TileMask, len(bands))
		for b := range bands {
			// Band masks vary independently; some rounds leave bands nil
			// (no update for that band), matching PackUplink output.
			if src.Uniform(int64(round)*7+int64(b), 0) < 0.2 {
				continue
			}
			mask := raster.NewTileMask(grid)
			for tl := 0; tl < grid.NumTiles(); tl++ {
				mask.Set[tl] = src.Uniform(int64(round)*13+int64(b), int64(tl)) < 0.4
			}
			perBand[b] = mask
		}
		cache.ApplyTileUpdate(3, update, perBand, round)
		for b, mask := range perBand {
			if mask == nil {
				continue
			}
			for tl, set := range mask.Set {
				if set {
					raster.CopyTile(shadow, update, b, grid, tl)
				}
			}
		}
		ref := cache.Get(3)
		if ref == nil {
			t.Fatal("reference vanished")
		}
		if ref.Day != round {
			t.Fatalf("round %d: reference day %d", round, ref.Day)
		}
		if !ref.Image.Equal(shadow) {
			t.Fatalf("round %d: cached reference diverged from tile-spliced shadow", round)
		}
	}

	// A missing entry is created from the whole update, regardless of masks.
	update := propImage(src, 999, w, h, bands)
	empty := make([]*raster.TileMask, len(bands))
	cache.ApplyTileUpdate(7, update, empty, 5)
	if ref := cache.Get(7); ref == nil || ref.Day != 5 || !ref.Image.Equal(update) {
		t.Fatal("missing-entry update did not install the full image")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d references, want 2", cache.Len())
	}
}

// Property: under a storage budget, any interleaving of visits, puts and
// tile updates leaves the cache (a) within budget, (b) reporting exactly
// the entries that disappeared as evicted, and (c) holding images equal to
// an independently maintained shadow for every surviving location.
func TestBoundedCacheInvariantsUnderChurn(t *testing.T) {
	const w, h = 16, 16
	bands := raster.PlanetBands()
	grid := raster.MustTileGrid(w, h, 8)
	src := noise.New(31337)
	// One 16x16x4 reference at 16 bits/sample is 2048 bytes; budget three.
	const budget = 3 * 2048

	for _, policy := range []Policy{PolicyLRU, PolicySchedule} {
		t.Run(string(policy), func(t *testing.T) {
			cache, err := NewBoundedRefCache(CacheConfig{
				BudgetBytes: budget,
				Policy:      policy,
				NextVisit:   func(loc, after int) int { return after + 1 + (loc*5)%7 },
			})
			if err != nil {
				t.Fatal(err)
			}
			shadow := map[int]*raster.Image{}
			evictedTotal := 0
			for round := 1; round <= 120; round++ {
				loc := int(src.Uniform(int64(round), 1) * 8)
				im := propImage(src, int64(round)+2000, w, h, bands)
				var evicted []int
				switch op := src.Uniform(int64(round), 2); {
				case op < 0.4:
					evicted = cache.Put(loc, im.Clone(), round)
					shadow[loc] = im.Clone()
				case op < 0.7:
					mask := raster.NewTileMask(grid)
					for tl := 0; tl < grid.NumTiles(); tl++ {
						mask.Set[tl] = src.Uniform(int64(round), int64(3+tl)) < 0.5
					}
					perBand := make([]*raster.TileMask, len(bands))
					for b := range perBand {
						perBand[b] = mask
					}
					evicted = cache.ApplyTileUpdate(loc, im, perBand, round)
					if sh := shadow[loc]; sh != nil {
						for b := range perBand {
							for tl, set := range mask.Set {
								if set {
									raster.CopyTile(sh, im, b, grid, tl)
								}
							}
						}
					} else {
						shadow[loc] = im.Clone()
					}
				default:
					got := cache.Visit(loc, round)
					if (got == nil) != (shadow[loc] == nil) {
						t.Fatalf("round %d: visit miss=%v but shadow has=%v", round, got == nil, shadow[loc] != nil)
					}
				}
				for _, ev := range evicted {
					if shadow[ev] == nil {
						t.Fatalf("round %d: reported eviction of %d, which was not cached", round, ev)
					}
					delete(shadow, ev)
					evictedTotal++
				}
				if fp := cache.FootprintBytes(); fp > budget {
					t.Fatalf("round %d: footprint %d exceeds budget %d", round, fp, budget)
				}
				if cache.Len() != len(shadow) {
					t.Fatalf("round %d: cache holds %d entries, shadow %d", round, cache.Len(), len(shadow))
				}
				for l, sh := range shadow {
					ref := cache.Get(l)
					if ref == nil {
						t.Fatalf("round %d: loc %d vanished without an eviction report", round, l)
					}
					if !ref.Image.Equal(sh) {
						t.Fatalf("round %d: loc %d diverged from shadow", round, l)
					}
				}
			}
			if evictedTotal == 0 {
				t.Fatal("churn never evicted; the property was not exercised")
			}
			ev, _ := cache.Stats()
			if int(ev) != evictedTotal {
				t.Fatalf("Stats evictions %d != observed %d", ev, evictedTotal)
			}
		})
	}
}
