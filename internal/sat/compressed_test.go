package sat

import (
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// The compressed reference store's contract: an entry's content is ALWAYS
// decode(frame) of the storage codec — never the raw image that was
// installed — its accounted footprint is the frame's real byte count, and
// the decode-on-visit LRU only changes whether decode work is re-paid,
// never what a visit sees.

const testStoreBPP = 6.0

func compressedConfig() CacheConfig {
	return CacheConfig{
		Compress: true,
		StoreBPP: testStoreBPP,
		Codec:    codec.DefaultOptions(),
	}
}

// storedImage independently applies the storage codec — the content a
// compressed cache must reproduce for an installed image.
func storedImage(t *testing.T, im *raster.Image) *raster.Image {
	t.Helper()
	frame, err := EncodeStoredRef(im, testStoreBPP, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStoredRef(frame, im.Width, im.Height, im.Bands)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompressedCacheDecodesStorageCodecContent(t *testing.T) {
	const w, h = 32, 32
	bands := raster.PlanetBands()
	src := noise.New(7001)
	cache, err := NewBoundedRefCache(compressedConfig())
	if err != nil {
		t.Fatal(err)
	}
	im := propImage(src, 1, w, h, bands)
	want := storedImage(t, im)

	cache.Put(0, im.Clone(), 3)
	got := cache.Visit(0, 4)
	if got == nil || got.Day != 3 {
		t.Fatalf("visit returned %+v, want day 3", got)
	}
	if !got.Image.Equal(want) {
		t.Fatal("compressed entry did not decode to the storage codec's output")
	}
	if got.Image.Equal(im) {
		t.Fatal("lossy storage codec returned the raw install image; the test is vacuous")
	}

	// Footprint is the encoded frame, several times below the raw rate.
	raw := cache.StorageBytes(RawBitsPerSample)
	fp := cache.FootprintBytes()
	if fp <= 0 || fp*2 >= raw {
		t.Fatalf("compressed footprint %d not well below raw-rate %d", fp, raw)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len = %d", cache.Len())
	}
}

func TestCompressedPutFrameMatchesPut(t *testing.T) {
	const w, h = 32, 32
	bands := raster.PlanetBands()
	src := noise.New(7002)
	im := propImage(src, 9, w, h, bands)

	viaPut, err := NewBoundedRefCache(compressedConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaPut.Put(5, im.Clone(), 2)

	frame, err := EncodeStoredRef(im, testStoreBPP, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	viaFrame, err := NewBoundedRefCache(compressedConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaFrame.PutFrame(5, frame, im, 2)

	a, b := viaPut.Visit(5, 3), viaFrame.Visit(5, 3)
	if !a.Image.Equal(b.Image) || a.Day != b.Day {
		t.Fatal("PutFrame-installed entry diverged from Put-installed entry")
	}
	if viaPut.FootprintBytes() != viaFrame.FootprintBytes() {
		t.Fatalf("footprints differ: %d vs %d", viaPut.FootprintBytes(), viaFrame.FootprintBytes())
	}
}

func TestCompressedDecodeLRUAmortisesRepeatVisits(t *testing.T) {
	const w, h = 16, 16
	bands := raster.PlanetBands()
	src := noise.New(7003)
	cfg := compressedConfig()
	cfg.DecodedCap = 2
	cache, err := NewBoundedRefCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for loc := 0; loc < 3; loc++ {
		cache.Put(loc, propImage(src, int64(loc)+40, w, h, bands), 0)
	}
	if d, _ := cache.DecodeStats(); d != 0 {
		t.Fatalf("install alone decoded %d frames", d)
	}

	// First visits decode; repeats inside the LRU cap are free.
	cache.Visit(0, 1)
	cache.Visit(0, 1)
	cache.Visit(1, 1)
	cache.Visit(1, 1)
	d, hits := cache.DecodeStats()
	if d != 2 || hits != 2 {
		t.Fatalf("decodes/hits = %d/%d, want 2/2", d, hits)
	}
	// A third location overflows the 2-plane LRU, evicting the least
	// recently decoded plane (loc 1 after loc 0's fresh touch);
	// revisiting loc 1 re-pays the decode — with content identical to
	// the first decode, so LRU state never shows in results.
	first := cache.Visit(1, 1).Image.Clone()
	cache.Visit(0, 1) // order now [1, 0]; 2's insert evicts 1
	cache.Visit(2, 2)
	again := cache.Visit(1, 2)
	d, _ = cache.DecodeStats()
	if d != 4 {
		t.Fatalf("decodes = %d, want 4 (cold 0, cold 1, cold 2, re-decode 1)", d)
	}
	if !again.Image.Equal(first) {
		t.Fatal("re-decoded entry differs from the LRU-cached one")
	}
}

// TestCompressedBoundedCacheInvariantsUnderChurn is the compressed twin
// of TestBoundedCacheInvariantsUnderChurn: any interleaving of visits,
// puts and tile updates keeps the cache within budget, reports exactly
// the entries that disappeared, and every surviving entry decodes equal
// to an independently maintained storage-codec shadow.
func TestCompressedBoundedCacheInvariantsUnderChurn(t *testing.T) {
	const w, h = 16, 16
	bands := raster.PlanetBands()
	grid := raster.MustTileGrid(w, h, 8)
	src := noise.New(90125)

	// A raw 16x16x4 reference is 2048 bytes; the storage codec at 6 bpp
	// keeps one band in ~min-budget bytes, so whole entries land near
	// 4*64+overhead. Budget three compressed entries' worth.
	probe, err := EncodeStoredRef(propImage(src, 1, w, h, bands), testStoreBPP, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * int64(len(probe))

	cfg := compressedConfig()
	cfg.BudgetBytes = budget
	cache, err := NewBoundedRefCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[int]*raster.Image{} // pre-codec shadow content
	evictedTotal := 0
	for round := 1; round <= 120; round++ {
		loc := int(src.Uniform(int64(round), 1) * 8)
		im := propImage(src, int64(round)+2000, w, h, bands)
		var evicted []int
		switch op := src.Uniform(int64(round), 2); {
		case op < 0.4:
			evicted = cache.Put(loc, im.Clone(), round)
			shadow[loc] = storedImage(t, im)
		case op < 0.7:
			mask := raster.NewTileMask(grid)
			for tl := 0; tl < grid.NumTiles(); tl++ {
				mask.Set[tl] = src.Uniform(int64(round), int64(3+tl)) < 0.5
			}
			perBand := make([]*raster.TileMask, len(bands))
			for b := range perBand {
				perBand[b] = mask
			}
			evicted = cache.ApplyTileUpdate(loc, im.Clone(), perBand, round)
			if sh := shadow[loc]; sh != nil {
				// The store splices onto its DECODED content, then passes
				// the storage codec again; the shadow does the same.
				spliced := sh.Clone()
				for b := range perBand {
					for tl, set := range mask.Set {
						if set {
							raster.CopyTile(spliced, im, b, grid, tl)
						}
					}
				}
				shadow[loc] = storedImage(t, spliced)
			} else {
				shadow[loc] = storedImage(t, im)
			}
		default:
			got := cache.Visit(loc, round)
			if (got == nil) != (shadow[loc] == nil) {
				t.Fatalf("round %d: visit miss=%v but shadow has=%v", round, got == nil, shadow[loc] != nil)
			}
		}
		for _, ev := range evicted {
			if shadow[ev] == nil {
				t.Fatalf("round %d: reported eviction of %d, which was not cached", round, ev)
			}
			delete(shadow, ev)
			evictedTotal++
		}
		if fp := cache.FootprintBytes(); fp > budget {
			t.Fatalf("round %d: footprint %d exceeds budget %d", round, fp, budget)
		}
		if cache.Len() != len(shadow) {
			t.Fatalf("round %d: cache holds %d entries, shadow %d", round, cache.Len(), len(shadow))
		}
		for l, sh := range shadow {
			ref := cache.Get(l)
			if ref == nil {
				t.Fatalf("round %d: loc %d vanished without an eviction report", round, l)
			}
			if !ref.Image.Equal(sh) {
				t.Fatalf("round %d: loc %d diverged from storage-codec shadow", round, l)
			}
		}
	}
	if evictedTotal == 0 {
		t.Fatal("churn never evicted; the property was not exercised")
	}
	ev, _ := cache.Stats()
	if int(ev) != evictedTotal {
		t.Fatalf("Stats evictions %d != observed %d", ev, evictedTotal)
	}
}

func TestCompressedConfigValidation(t *testing.T) {
	if _, err := NewBoundedRefCache(CacheConfig{Compress: true}); err == nil {
		t.Fatal("Compress without StoreBPP must be rejected")
	}
	c, err := NewBoundedRefCache(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PutFrame on a raw cache must panic")
		}
	}()
	c.PutFrame(0, nil, raster.New(4, 4, raster.PlanetBands()), 0)
}
