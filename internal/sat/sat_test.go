package sat

import (
	"testing"

	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

func testScene() *scene.Scene {
	return scene.New(scene.LargeConstellationSampled(scene.Quick))
}

func testPipeline(s *scene.Scene) *Pipeline {
	return &Pipeline{
		Bands:         s.Bands(),
		Grid:          s.Grid(),
		Downsample:    4,
		CloudDet:      cloud.DefaultCheap(s.Bands()),
		Theta:         0.008,
		DropCoverage:  0.5,
		CloudTileFrac: 0.25,
	}
}

func clearCapture(t *testing.T, s *scene.Scene, from int) *scene.Capture {
	t.Helper()
	for d := from; d < from+400; d++ {
		if s.CloudCoverageTarget(0, d) < 0.005 {
			return s.CaptureImage(0, d, 0)
		}
	}
	t.Fatal("no clear day found")
	return nil
}

func cloudyCapture(t *testing.T, s *scene.Scene, minCov float64) *scene.Capture {
	t.Helper()
	for d := 0; d < 800; d++ {
		if s.CloudCoverageTarget(0, d) > minCov {
			return s.CaptureImage(0, d, 0)
		}
	}
	t.Fatal("no cloudy day found")
	return nil
}

func TestRefCacheBasics(t *testing.T) {
	c := NewRefCache()
	if c.Get(3) != nil || c.Len() != 0 {
		t.Fatal("fresh cache not empty")
	}
	im := raster.New(8, 8, raster.PlanetBands())
	c.Put(3, im, 17)
	ref := c.Get(3)
	if ref == nil || ref.Day != 17 {
		t.Fatalf("Get = %+v", ref)
	}
	if c.StorageBytes(16) != 8*8*4*2 {
		t.Fatalf("StorageBytes = %d", c.StorageBytes(16))
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestStorageBytesIntegerAccounting is the regression test for the float64
// footprint accounting: at a drift-provoking size — many references whose
// per-entry byte cost is fractional — the old float accumulation followed
// by int64 truncation dropped half a byte per entry (512 bytes over this
// cache), while bit-granular integer accounting rounds each entry up
// exactly.
func TestStorageBytesIntegerAccounting(t *testing.T) {
	c := NewRefCache()
	bands := raster.PlanetBands()[:3]
	const n = 1024
	for loc := 0; loc < n; loc++ {
		// 9x9x3 = 243 samples; at 12 bits/sample that is 364.5 bytes.
		c.Put(loc, raster.New(9, 9, bands), 0)
	}
	const perEntry = (243*12 + 7) / 8 // 365: fractional bytes round UP per entry
	if got := c.StorageBytes(12); got != int64(perEntry*n) {
		t.Fatalf("StorageBytes(12) = %d, want %d (exact per-entry ceil)", got, perEntry*n)
	}
	// 16-bit accounting matches the historical 2-bytes-per-sample figures.
	if got := c.StorageBytes(16); got != int64(243*2*n) {
		t.Fatalf("StorageBytes(16) = %d, want %d", got, 243*2*n)
	}
}

// boundedCache builds a cache with the given budget over 8x8x4 refs
// (512 bytes each at 16 bits/sample).
func boundedCache(t *testing.T, budget int64, policy Policy, next func(loc, after int) int) *RefCache {
	t.Helper()
	c, err := NewBoundedRefCache(CacheConfig{BudgetBytes: budget, Policy: policy, NextVisit: next})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ref8(t *testing.T) *raster.Image {
	t.Helper()
	return raster.New(8, 8, raster.PlanetBands())
}

func TestBoundedCacheEvictsLRU(t *testing.T) {
	// Budget fits exactly two 512-byte references.
	c := boundedCache(t, 1024, PolicyLRU, nil)
	if ev := c.Put(0, ref8(t), 1); ev != nil {
		t.Fatalf("first insert evicted %v", ev)
	}
	if ev := c.Put(1, ref8(t), 2); ev != nil {
		t.Fatalf("second insert evicted %v", ev)
	}
	// Visiting loc 0 makes loc 1 the least-recently-visited.
	if c.Visit(0, 3) == nil {
		t.Fatal("visit of cached loc missed")
	}
	if ev := c.Put(2, ref8(t), 4); len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
	if c.Get(1) != nil {
		t.Fatal("evicted entry still cached")
	}
	if c.Get(0) == nil || c.Get(2) == nil {
		t.Fatal("survivors missing")
	}
	if got := c.FootprintBytes(); got != 1024 {
		t.Fatalf("footprint %d after eviction, want 1024", got)
	}
	// The miss is observable and counted.
	if c.Visit(1, 5) != nil {
		t.Fatal("evicted entry served a visit")
	}
	ev, miss := c.Stats()
	if ev != 1 || miss != 1 {
		t.Fatalf("Stats = (%d evictions, %d misses), want (1, 1)", ev, miss)
	}
}

func TestBoundedCacheSchedulePolicy(t *testing.T) {
	// Next visit: loc 0 tomorrow, loc 1 in 3 days, loc 2 in 9 days.
	gaps := map[int]int{0: 1, 1: 3, 2: 9}
	next := func(loc, after int) int { return after + gaps[loc] }
	c := boundedCache(t, 1024, PolicySchedule, next)
	c.Put(0, ref8(t), 1)
	c.Put(1, ref8(t), 1)
	// Inserting loc 2 overflows; its own next visit is farthest, so the
	// schedule policy sheds the newcomer and keeps the soon-revisited refs.
	if ev := c.Put(2, ref8(t), 2); len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (farthest next visit)", ev)
	}
	// Flip the horizon: now loc 1 is the farthest of the cached pair.
	gaps[2] = 2
	if ev := c.Put(2, ref8(t), 3); len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

func TestBoundedCacheOversizeEntryEvictsItself(t *testing.T) {
	c := boundedCache(t, 100, PolicyLRU, nil) // smaller than one 512-byte ref
	ev := c.Put(5, ref8(t), 1)
	if len(ev) != 1 || ev[0] != 5 {
		t.Fatalf("evicted %v, want the oversize entry [5]", ev)
	}
	if c.Len() != 0 || c.FootprintBytes() != 0 {
		t.Fatalf("cache holds %d entries / %d bytes after oversize insert", c.Len(), c.FootprintBytes())
	}
}

// TestBoundedCacheOversizeInsertKeepsOthers pins the heterogeneous-size
// regression: an insert that can never fit must cost only itself, not
// flush the older (and under LRU, lower-recency) entries on its way out.
func TestBoundedCacheOversizeInsertKeepsOthers(t *testing.T) {
	c := boundedCache(t, 1024, PolicyLRU, nil) // two 512-byte refs fit
	c.Put(0, ref8(t), 1)
	c.Put(1, ref8(t), 2)
	// 16x16x4 at 16 bits = 2048 bytes: larger than the whole budget.
	ev := c.Put(9, raster.New(16, 16, raster.PlanetBands()), 3)
	if len(ev) != 1 || ev[0] != 9 {
		t.Fatalf("evicted %v, want only the oversize entry [9]", ev)
	}
	if c.Get(0) == nil || c.Get(1) == nil || c.Len() != 2 {
		t.Fatal("oversize insert flushed resident entries")
	}
	if got := c.FootprintBytes(); got != 1024 {
		t.Fatalf("footprint %d, want 1024", got)
	}
}

// TestApplyTileUpdateRefreshesRecency pins that an uplink splice counts as
// a visit for LRU purposes: the freshly refreshed entry must not stay the
// eviction victim.
func TestApplyTileUpdateRefreshesRecency(t *testing.T) {
	c := boundedCache(t, 1024, PolicyLRU, nil)
	c.Put(0, ref8(t), 1)
	c.Put(1, ref8(t), 2)
	c.Visit(1, 3)
	// Splice an update into loc 0 on day 10: it is now the most recently
	// refreshed entry, so the next overflow must evict loc 1 instead.
	c.ApplyTileUpdate(0, ref8(t), make([]*raster.TileMask, 4), 10)
	if ev := c.Put(2, ref8(t), 11); len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] (loc 0 was refreshed on day 10)", ev)
	}
}

func TestBoundedCacheRejectsUnknownPolicy(t *testing.T) {
	if _, err := NewBoundedRefCache(CacheConfig{Policy: "mru"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewBoundedRefCache(CacheConfig{Policy: PolicySchedule}); err == nil {
		t.Fatal("schedule policy without NextVisit accepted")
	}
}

func TestRefCacheApplyTileUpdate(t *testing.T) {
	c := NewRefCache()
	g := raster.MustTileGrid(8, 8, 4)
	base := raster.New(8, 8, raster.PlanetBands())
	c.Put(0, base, 5)
	update := raster.New(8, 8, raster.PlanetBands())
	update.Fill(0, 1)
	masks := make([]*raster.TileMask, 4)
	masks[0] = raster.NewTileMask(g)
	masks[0].Set[0] = true
	c.ApplyTileUpdate(0, update, masks, 9)
	ref := c.Get(0)
	if ref.Day != 9 {
		t.Fatalf("day = %d", ref.Day)
	}
	if ref.Image.At(0, 0, 0) != 1 || ref.Image.At(0, 7, 7) != 0 {
		t.Fatal("tile update applied wrong region")
	}
	// Update to an empty slot installs the image as-is.
	c.ApplyTileUpdate(1, update, masks, 3)
	if c.Get(1) == nil || c.Get(1).Day != 3 {
		t.Fatal("update to empty slot not installed")
	}
}

func TestPipelineDropsCloudyCaptures(t *testing.T) {
	s := testScene()
	p := testPipeline(s)
	cap := cloudyCapture(t, s, 0.75)
	res, err := p.Process(cap.Image, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dropped {
		t.Fatalf("capture with %.2f true coverage not dropped (detected %.2f)", cap.Coverage, res.CloudCover)
	}
	if res.Changed != nil {
		t.Fatal("dropped capture still ran change detection")
	}
	if res.CloudSec <= 0 {
		t.Fatal("cloud timing not recorded")
	}
}

func TestPipelineNoReferenceYieldsNilChanged(t *testing.T) {
	s := testScene()
	p := testPipeline(s)
	cap := clearCapture(t, s, 0)
	res, err := p.Process(cap.Image, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.Changed != nil || res.CapLow == nil {
		t.Fatalf("no-ref result: dropped=%v changed=%v", res.Dropped, res.Changed != nil)
	}
}

func TestPipelineDetectsInjectedChange(t *testing.T) {
	s := testScene()
	p := testPipeline(s)
	cap := clearCapture(t, s, 0)
	// Reference = downsampled truth of the same day: no real change.
	refImg, err := cap.Truth.Downsample(p.Downsample)
	if err != nil {
		t.Fatal(err)
	}
	ref := &LowResRef{Image: refImg, Day: cap.Day}
	res, err := p.Process(cap.Image, ref)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped {
		t.Fatal("clear capture dropped")
	}
	baselineCount := res.Changed[0].Count()

	// Inject a strong change into one tile of the capture and reprocess.
	g := p.Grid
	target := g.NumTiles() / 2
	x0, y0, x1, y1 := g.Bounds(target)
	mod := cap.Image.Clone()
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			mod.Set(0, x, y, mod.At(0, x, y)*0.3+0.5)
		}
	}
	res2, err := p.Process(mod, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Changed[0].Set[target] {
		t.Fatal("injected change not detected")
	}
	if res2.Changed[0].Count() > baselineCount+3 {
		t.Fatalf("injection rippled: %d -> %d flagged tiles", baselineCount, res2.Changed[0].Count())
	}
}

func TestPipelineFalsePositiveFloorIsLow(t *testing.T) {
	s := testScene()
	p := testPipeline(s)
	cap := clearCapture(t, s, 0)
	refImg, _ := cap.Truth.Downsample(p.Downsample)
	res, err := p.Process(cap.Image, &LowResRef{Image: refImg, Day: cap.Day})
	if err != nil {
		t.Fatal(err)
	}
	// Same-day reference: everything flagged is a false positive (sensor
	// noise, illumination residual). The paper's profiling keeps this
	// near zero.
	if frac := res.Changed[0].Fraction(); frac > 0.08 {
		t.Fatalf("false-positive changed fraction = %.3f on a no-change day", frac)
	}
}

func TestPipelineRejectsGeometryMismatch(t *testing.T) {
	s := testScene()
	p := testPipeline(s)
	wrong := raster.New(32, 32, s.Bands())
	if _, err := p.Process(wrong, nil); err == nil {
		t.Fatal("expected geometry error")
	}
	cap := clearCapture(t, s, 0)
	badRef := &LowResRef{Image: raster.New(5, 5, s.Bands()), Day: 0}
	if _, err := p.Process(cap.Image, badRef); err == nil {
		t.Fatal("expected reference-shape error")
	}
}

func TestClearPixelsLow(t *testing.T) {
	m := cloud.NewMask(8, 8)
	// Fully cloud the top-left 4x4 block.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			m.Set(x, y, true)
		}
	}
	low := clearPixelsLow(m, 4, 2, 2)
	if low[0] || !low[1] || !low[2] || !low[3] {
		t.Fatalf("clearPixelsLow = %v", low)
	}
}

func TestEncodeROIBudgetAndNilBands(t *testing.T) {
	s := testScene()
	cap := clearCapture(t, s, 0)
	g := s.Grid()
	roi := make([]*raster.TileMask, len(s.Bands()))
	mask := raster.NewTileMask(g)
	for i := 0; i < g.NumTiles()/4; i++ {
		mask.Set[i*2] = true
	}
	roi[0] = mask // only band 0 downloads
	frame, err := EncodeROI(cap.Image, roi, 1.0, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	streams, err := frame.Split()
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != len(roi) {
		t.Fatalf("frame carries %d bands, want %d", len(streams), len(roi))
	}
	if streams[1] != nil || streams[2] != nil {
		t.Fatal("empty-ROI bands produced streams")
	}
	budget := int(1.0 * float64(mask.Count()*g.Tile*g.Tile) / 8)
	if len(streams[0]) > budget+256 {
		t.Fatalf("band stream %d bytes exceeds gamma budget %d", len(streams[0]), budget)
	}
	if MaskOverheadBytes(roi) != codec.ROIMaskBytes(g) {
		t.Fatalf("MaskOverheadBytes = %d", MaskOverheadBytes(roi))
	}
}

func TestEncodeROIDecodableByStationPath(t *testing.T) {
	s := testScene()
	cap := clearCapture(t, s, 0)
	g := s.Grid()
	mask := raster.NewTileMask(g)
	mask.Set[0], mask.Set[7] = true, true
	roi := []*raster.TileMask{mask, nil, nil, nil}
	frame, err := EncodeROI(cap.Image, roi, 4.0, codec.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	streams, err := frame.Split()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, g.ImageW*g.ImageH)
	if err := codec.DecodeROIPlaneInto(dst, mask, streams[0], 0); err != nil {
		t.Fatal(err)
	}
	x0, y0, _, _ := g.Bounds(7)
	got := dst[(y0+8)*g.ImageW+x0+8]
	want := cap.Image.At(0, x0+8, y0+8)
	if d := got - want; d > 0.08 || d < -0.08 {
		t.Fatalf("decoded tile pixel off by %v", d)
	}
}
