// Package sat implements the on-board half of the reproduction: the
// reference cache a satellite keeps for every location it will visit, and
// the capture-processing pipeline of §5 — cheap cloud removal, image
// dropping, illumination alignment, downsampled change detection, and
// region-of-interest encoding of the changed tiles.
package sat

import (
	"fmt"
	"sync"
	"time"

	"earthplus/internal/change"
	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/illum"
	"earthplus/internal/raster"
)

// LowResRef is one cached downsampled reference image.
type LowResRef struct {
	// Image is the reference content at the pipeline's detection
	// resolution (already cloud-free by ground-side construction).
	Image *raster.Image
	// Day is the capture day of the reference content (its freshness).
	Day int
}

// RefCache holds a satellite's on-board reference images, keyed by
// location. Earth+ caches references on board so that uplink updates only
// need to carry changed reference tiles (§4.3).
//
// The cache is safe for concurrent use on DISTINCT locations: the sharded
// simulation engine looks up references for many locations at once while a
// satellite's cache is shared across its day's visits. Same-location
// ordering is the caller's responsibility (the engine serialises each
// location's visit sequence).
type RefCache struct {
	mu   sync.RWMutex
	refs map[int]*LowResRef
}

// NewRefCache returns an empty cache.
func NewRefCache() *RefCache {
	return &RefCache{refs: make(map[int]*LowResRef)}
}

// Get returns the cached reference for loc, or nil.
func (c *RefCache) Get(loc int) *LowResRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.refs[loc]
}

// Put replaces the reference for loc (the image is not copied).
func (c *RefCache) Put(loc int, im *raster.Image, day int) {
	c.mu.Lock()
	c.refs[loc] = &LowResRef{Image: im, Day: day}
	c.mu.Unlock()
}

// ApplyTileUpdate copies the marked low-resolution tiles of update into the
// cached reference for loc and advances its day. A missing cache entry is
// created from the update itself.
func (c *RefCache) ApplyTileUpdate(loc int, update *raster.Image, perBand []*raster.TileMask, day int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := c.refs[loc]
	if ref == nil {
		c.refs[loc] = &LowResRef{Image: update.Clone(), Day: day}
		return
	}
	for b, mask := range perBand {
		if mask == nil {
			continue
		}
		for t, set := range mask.Set {
			if set {
				raster.CopyTile(ref.Image, update, b, mask.Grid, t)
			}
		}
	}
	ref.Day = day
}

// StorageBytes returns the cache's footprint assuming bytesPerPixel of
// storage per band sample.
func (c *RefCache) StorageBytes(bytesPerPixel float64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total float64
	for _, r := range c.refs {
		total += float64(r.Image.Width*r.Image.Height*r.Image.NumBands()) * bytesPerPixel
	}
	return int64(total)
}

// Len returns the number of cached references.
func (c *RefCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.refs)
}

// Pipeline is the on-board change-detection pipeline of §5.
type Pipeline struct {
	Bands []raster.BandInfo
	// Grid is the full-resolution tile grid.
	Grid raster.TileGrid
	// Downsample is the per-axis factor for detection (reference images
	// are cached at this resolution).
	Downsample int
	// CloudDet is the on-board detector (cheap decision tree).
	CloudDet cloud.Detector
	// Theta is the change threshold at detection resolution (profiled).
	Theta float64
	// DropCoverage drops captures whose detected cloud cover exceeds it
	// (paper drops above 50%).
	DropCoverage float64
	// CloudTileFrac marks a tile cloudy when its cloudy-pixel fraction
	// exceeds this.
	CloudTileFrac float64
}

// Result is the pipeline's output for one capture.
type Result struct {
	// Dropped is set when detected cloud coverage exceeded DropCoverage.
	Dropped bool
	// CloudCover is the detected (not true) cloud coverage.
	CloudCover float64
	// CloudMask is the detected per-pixel mask.
	CloudMask *cloud.Mask
	// CloudTiles marks tiles considered cloudy (full-res grid indexing).
	CloudTiles *raster.TileMask
	// Changed holds, per band, the changed-tile mask (nil when no
	// reference was available; the caller decides the fallback).
	Changed []*raster.TileMask
	// Illum holds the per-band alignment fitted against the reference.
	Illum []illum.Model
	// CapLow is the downsampled capture after cloud zeroing and
	// illumination normalisation (used for reference bookkeeping).
	CapLow *raster.Image
	// CloudSec and ChangeSec are the measured wall-clock costs of the
	// cloud-detection and change-detection stages (Fig 16).
	CloudSec  float64
	ChangeSec float64
}

// lowGrid returns the tile grid at detection resolution.
func (p *Pipeline) lowGrid() (raster.TileGrid, error) {
	return p.Grid.Scaled(p.Downsample)
}

// Process runs the §5 pipeline on one capture against the cached reference
// (which may be nil).
func (p *Pipeline) Process(capImg *raster.Image, ref *LowResRef) (*Result, error) {
	if capImg.Width != p.Grid.ImageW || capImg.Height != p.Grid.ImageH {
		return nil, fmt.Errorf("sat: capture %dx%d does not match grid", capImg.Width, capImg.Height)
	}
	res := &Result{}
	// Cloud removal: detect, then drop heavily cloudy captures.
	tCloud := time.Now()
	res.CloudMask = p.CloudDet.Detect(capImg)
	res.CloudSec = time.Since(tCloud).Seconds()
	res.CloudCover = res.CloudMask.Coverage()
	res.CloudTiles = res.CloudMask.TileMask(p.Grid, p.CloudTileFrac)
	if res.CloudCover > p.DropCoverage {
		res.Dropped = true
		return res, nil
	}
	gLow, err := p.lowGrid()
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	capLow, err := capImg.Downsample(p.Downsample)
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	res.CapLow = capLow
	if ref == nil {
		return res, nil
	}
	if !ref.Image.SameShape(capLow) {
		return nil, fmt.Errorf("sat: reference %dx%d does not match detection resolution %dx%d",
			ref.Image.Width, ref.Image.Height, capLow.Width, capLow.Height)
	}
	// Clear-pixel mask at detection resolution for the illumination fit.
	tChange := time.Now()
	clearLow := clearPixelsLow(res.CloudMask, p.Downsample, capLow.Width, capLow.Height)
	det := change.Detector{Theta: p.Theta}
	res.Changed = make([]*raster.TileMask, len(p.Bands))
	res.Illum = make([]illum.Model, len(p.Bands))
	for b := range p.Bands {
		model, _ := illum.FitRobust(ref.Image.Plane(b), capLow.Plane(b), clearLow, 2, 0.2)
		model.Normalize(capLow.Plane(b))
		res.Illum[b] = model
		res.Changed[b] = det.DetectBand(ref.Image, capLow, b, gLow, lowAlias(res.CloudTiles, gLow))
	}
	res.ChangeSec = time.Since(tChange).Seconds()
	return res, nil
}

// lowAlias reinterprets a full-resolution-grid tile mask as a mask over the
// scaled grid (tile indices are identical across scales).
func lowAlias(m *raster.TileMask, gLow raster.TileGrid) *raster.TileMask {
	return &raster.TileMask{Grid: gLow, Set: m.Set}
}

// clearPixelsLow reduces a full-resolution cloud mask to a clear-pixel
// selector at detection resolution: a low-res pixel is usable when fewer
// than half of its footprint is cloudy.
func clearPixelsLow(m *cloud.Mask, factor, lw, lh int) []bool {
	out := make([]bool, lw*lh)
	half := factor * factor / 2
	for ly := 0; ly < lh; ly++ {
		for lx := 0; lx < lw; lx++ {
			n := 0
			for dy := 0; dy < factor; dy++ {
				row := (ly*factor + dy) * m.W
				for dx := 0; dx < factor; dx++ {
					if m.Bits[row+lx*factor+dx] {
						n++
					}
				}
			}
			out[ly*lw+lx] = n <= half
		}
	}
	return out
}

// EncodeROI encodes the capture for downlink: each band's ROI tiles are
// packed into a mosaic and encoded at gammaBPP bits per ROI pixel — the
// paper's constant per-tile bit budget γ (§5). Downloaded tiles carry
// their original pixel values (§3): cloud zero-filling is a detection-side
// device only, and mostly-cloudy tiles are excluded from the ROI by the
// caller. Bands whose ROI is empty travel as absent container bands.
//
// The per-band codec streams are framed into one container.Codestream —
// the wire unit every downlink consumer (ground station, HTTP serving
// layer) speaks — with the per-band bytes inside exactly what
// codec.EncodeROIPlane produced.
//
// Bands are encoded concurrently by a worker pool of
// codec.Workers(opts.Parallelism, bands) goroutines, so whole-constellation
// simulations scale with the host's cores.
func EncodeROI(capImg *raster.Image, perBandROI []*raster.TileMask,
	gammaBPP float64, opts codec.Options) (container.Codestream, error) {
	streams := make([][]byte, len(perBandROI))
	errs := make([]error, len(perBandROI))
	codec.ParallelBands(opts.Parallelism, len(perBandROI), func(b int) {
		roi := perBandROI[b]
		if roi == nil || roi.Count() == 0 {
			return
		}
		bandOpts := opts
		roiPixels := roi.Count() * roi.Grid.Tile * roi.Grid.Tile
		bandOpts.BudgetBytes = int(gammaBPP * float64(roiPixels) / 8)
		if bandOpts.BudgetBytes < 64 {
			bandOpts.BudgetBytes = 64
		}
		data, err := codec.EncodeROIPlane(capImg.Plane(b), roi, bandOpts)
		if err != nil {
			errs[b] = fmt.Errorf("sat: encoding band %d: %w", b, err)
			return
		}
		streams[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return container.Pack(streams), nil
}

// MaskOverheadBytes is the downlink metadata cost of the per-band ROI
// masks for one capture (one bit per tile per band with a non-empty ROI).
func MaskOverheadBytes(perBandROI []*raster.TileMask) int64 {
	var total int64
	for _, roi := range perBandROI {
		if roi != nil && roi.Count() > 0 {
			total += codec.ROIMaskBytes(roi.Grid)
		}
	}
	return total
}
