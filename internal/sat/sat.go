// Package sat implements the on-board half of the reproduction: the
// reference cache a satellite keeps for every location it will visit, and
// the capture-processing pipeline of §5 — cheap cloud removal, image
// dropping, illumination alignment, downsampled change detection, and
// region-of-interest encoding of the changed tiles.
package sat

import (
	"fmt"
	"sync"
	"time"

	"earthplus/internal/change"
	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/illum"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
)

// LowResRef is one cached downsampled reference image.
type LowResRef struct {
	// Image is the reference content at the pipeline's detection
	// resolution (already cloud-free by ground-side construction).
	Image *raster.Image
	// Day is the capture day of the reference content (its freshness).
	Day int
}

// Policy names a reference-store eviction policy.
type Policy string

const (
	// PolicyLRU evicts the least-recently-visited location first (ties
	// break toward the smaller location id, so eviction is deterministic).
	PolicyLRU Policy = "lru"
	// PolicySchedule evicts the location whose next planned visit is
	// farthest in the future — the reference the satellite can best afford
	// to lose, since the ground has the most days to re-seed it. Requires
	// CacheConfig.NextVisit (the orbit schedule core precomputes its visit
	// plans from).
	PolicySchedule Policy = "schedule"
)

// Policies lists the known eviction policy names.
func Policies() []string { return []string{string(PolicyLRU), string(PolicySchedule)} }

// CacheConfig bounds a reference cache to a satellite's finite on-board
// store. The zero value means unbounded (the pre-storage-model behavior).
type CacheConfig struct {
	// BudgetBytes caps the cache footprint; <= 0 means unlimited.
	BudgetBytes int64
	// BitsPerSample is the storage cost of one band sample at detection
	// resolution (0 = 16, the raw quantisation the ground mirror assumes).
	BitsPerSample int
	// Policy selects the eviction order ("" = lru).
	Policy Policy
	// NextVisit predicts the first day strictly after afterDay on which
	// the satellite revisits loc. Required by PolicySchedule.
	NextVisit func(loc, afterDay int) int
}

// ResolveBudget maps the stack's three-valued storage knob onto a cache
// budget, in ONE place for every constructor and registry shim: zero
// means the paper's Table 1 default (orbit.DovesSpec().StorageBytes,
// 360 GB), negative means explicitly unlimited (a zero CacheConfig
// budget), positive passes through.
func ResolveBudget(storageBytes int64) int64 {
	switch {
	case storageBytes == 0:
		return orbit.DovesSpec().StorageBytes
	case storageBytes < 0:
		return 0
	default:
		return storageBytes
	}
}

// withDefaults resolves the zero values.
func (c CacheConfig) withDefaults() CacheConfig {
	if c.BitsPerSample <= 0 {
		c.BitsPerSample = 16
	}
	if c.Policy == "" {
		c.Policy = PolicyLRU
	}
	return c
}

// validate reports configuration errors.
func (c CacheConfig) validate() error {
	switch c.Policy {
	case PolicyLRU:
	case PolicySchedule:
		if c.NextVisit == nil {
			return fmt.Errorf("sat: eviction policy %q needs a NextVisit schedule", c.Policy)
		}
	default:
		return fmt.Errorf("sat: unknown eviction policy %q (known: %v)", c.Policy, Policies())
	}
	return nil
}

// refMeta is the per-entry bookkeeping eviction decisions read.
type refMeta struct {
	// lastVisit is the day of the entry's most recent visit (or install).
	lastVisit int
	// bytes is the entry's accounted footprint.
	bytes int64
}

// RefCache holds a satellite's on-board reference images, keyed by
// location, bounded by the satellite's storage budget. Earth+ caches
// references on board so that uplink updates only need to carry changed
// reference tiles (§4.3); because the store is finite, an insert may evict
// other locations, and a later Visit of an evicted location MISSES — the
// pipeline then falls back to reference-free encoding until the ground
// re-seeds the reference over the uplink.
//
// Determinism contract: eviction decisions depend only on the visit
// schedule (day numbers), never on wall-clock or goroutine order. Visit
// records recency per location as the capture day — concurrent visits to
// distinct locations write distinct entries, so the sharded engine reaches
// the same cache state at any worker count — and every mutation that can
// evict (Put, ApplyTileUpdate) happens on the engine's serial phases
// (bootstrap, day-end barrier).
//
// The cache is safe for concurrent use on DISTINCT locations: the sharded
// simulation engine looks up references for many locations at once while a
// satellite's cache is shared across its day's visits. Same-location
// ordering is the caller's responsibility (the engine serialises each
// location's visit sequence).
type RefCache struct {
	mu   sync.RWMutex
	cfg  CacheConfig
	refs map[int]*LowResRef
	meta map[int]*refMeta
	// used is the accounted footprint of every entry, in bytes.
	used int64
	// lastDay is the latest day observed via Visit/Put/ApplyTileUpdate;
	// PolicySchedule predicts next visits relative to it.
	lastDay int
	// evictions and misses count capacity evictions and Visit misses.
	evictions, misses int64
}

// NewRefCache returns an empty, unbounded cache.
func NewRefCache() *RefCache {
	c, _ := NewBoundedRefCache(CacheConfig{}) // zero config always validates
	return c
}

// NewBoundedRefCache returns an empty cache honouring cfg's storage budget
// and eviction policy.
func NewBoundedRefCache(cfg CacheConfig) (*RefCache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &RefCache{
		cfg:  cfg,
		refs: make(map[int]*LowResRef),
		meta: make(map[int]*refMeta),
	}, nil
}

// entryBytes is the accounted footprint of one reference image: exact
// integer arithmetic in bits per sample, rounded up to whole bytes per
// entry (float accumulation used to truncate fractional bytes-per-pixel
// footprints on large caches).
func (c *RefCache) entryBytes(im *raster.Image) int64 {
	samples := int64(im.Width) * int64(im.Height) * int64(im.NumBands())
	return (samples*int64(c.cfg.BitsPerSample) + 7) / 8
}

// Get returns the cached reference for loc, or nil. It does not count as a
// visit; capture processing uses Visit so eviction recency tracks the
// schedule.
func (c *RefCache) Get(loc int) *LowResRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.refs[loc]
}

// Visit returns the cached reference for loc, recording the visit day for
// eviction recency. A nil return is a cache MISS: the reference was
// evicted (or never seeded) and the caller must fall back to
// reference-free encoding. Recency is keyed by day, so concurrent visits
// to distinct locations leave the same state in any order.
func (c *RefCache) Visit(loc, day int) *LowResRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	if day > c.lastDay {
		c.lastDay = day
	}
	ref := c.refs[loc]
	if ref == nil {
		c.misses++
		return nil
	}
	if m := c.meta[loc]; day > m.lastVisit {
		m.lastVisit = day
	}
	return ref
}

// Put replaces the reference for loc (the image is not copied) and returns
// the locations evicted to fit it under the storage budget (nil when
// nothing was evicted). The caller owns ground-mirror bookkeeping for the
// returned locations; a new reference larger than the whole budget evicts
// itself and the cache stays without the entry.
func (c *RefCache) Put(loc int, im *raster.Image, day int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installLocked(loc, &LowResRef{Image: im, Day: day}, day)
	return c.evictLocked(loc)
}

// ApplyTileUpdate copies the marked low-resolution tiles of update into
// the cached reference for loc and advances its day. A missing cache entry
// is created from the update itself (the ground ships whole-image updates
// to re-seed evicted references). Like Put, it returns any locations
// evicted to keep the footprint under budget.
func (c *RefCache) ApplyTileUpdate(loc int, update *raster.Image, perBand []*raster.TileMask, day int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := c.refs[loc]
	if ref == nil {
		c.installLocked(loc, &LowResRef{Image: update.Clone(), Day: day}, day)
		return c.evictLocked(loc)
	}
	for b, mask := range perBand {
		if mask == nil {
			continue
		}
		for t, set := range mask.Set {
			if set {
				raster.CopyTile(ref.Image, update, b, mask.Grid, t)
			}
		}
	}
	ref.Day = day
	if day > c.lastDay {
		c.lastDay = day
	}
	// A spliced update is an install for recency purposes too: the uplink
	// just spent bytes refreshing this reference, so it must not linger as
	// the LRU victim stamped with its last pre-update visit.
	if m := c.meta[loc]; c.lastDay > m.lastVisit {
		m.lastVisit = c.lastDay
	}
	return nil // splicing in place never grows the footprint
}

// installLocked inserts or replaces loc's entry and its accounting. LRU
// recency is stamped with the cache's current day (lastDay), NOT the
// reference's content day: uplink updates install content captured days
// ago, and stamping them with the content day would make every freshly
// re-seeded entry the least-recently-visited one — it would be evicted
// again on the very next install, thrashing the store into permanent
// misses. lastDay is the maximum day any visit or install has reached,
// which at the engine's serial install phases equals the current
// simulation day at every worker count.
func (c *RefCache) installLocked(loc int, ref *LowResRef, day int) {
	if day > c.lastDay {
		c.lastDay = day
	}
	bytes := c.entryBytes(ref.Image)
	if m := c.meta[loc]; m != nil {
		c.used += bytes - m.bytes
		m.bytes = bytes
		if c.lastDay > m.lastVisit {
			m.lastVisit = c.lastDay
		}
	} else {
		c.used += bytes
		c.meta[loc] = &refMeta{lastVisit: c.lastDay, bytes: bytes}
	}
	c.refs[loc] = ref
}

// evictLocked removes entries until the footprint fits the budget and
// returns the evicted locations; installed is the entry whose insert
// triggered the check. An installed entry that can NEVER fit — larger by
// itself than the whole budget — is evicted first, so one oversize insert
// costs only itself instead of flushing every other cached reference on
// its way out. Victim selection is a pure function of (policy, entry
// metadata, lastDay), so a run is deterministic at any engine worker
// count.
func (c *RefCache) evictLocked(installed int) []int {
	if c.cfg.BudgetBytes <= 0 {
		return nil
	}
	var evicted []int
	if m := c.meta[installed]; m != nil && m.bytes > c.cfg.BudgetBytes {
		evicted = append(evicted, c.removeLocked(installed))
	}
	for c.used > c.cfg.BudgetBytes && len(c.refs) > 0 {
		evicted = append(evicted, c.removeLocked(c.victimLocked()))
	}
	return evicted
}

// removeLocked drops one entry and its accounting, counting the eviction.
func (c *RefCache) removeLocked(victim int) int {
	c.used -= c.meta[victim].bytes
	delete(c.refs, victim)
	delete(c.meta, victim)
	c.evictions++
	return victim
}

// victimLocked picks the next location to evict under the configured
// policy. Ties always break toward the smaller location id, so the choice
// is unique regardless of map iteration order.
func (c *RefCache) victimLocked() int {
	victim, best := -1, 0
	for loc, m := range c.meta {
		var key int
		switch c.cfg.Policy {
		case PolicySchedule:
			// Farthest next planned visit goes first; negated so that the
			// shared "smaller key wins" comparison below applies.
			key = -c.cfg.NextVisit(loc, c.lastDay)
		default: // PolicyLRU
			key = m.lastVisit
		}
		if victim < 0 || key < best || (key == best && loc < victim) {
			victim, best = loc, key
		}
	}
	return victim
}

// FootprintBytes returns the cache's accounted storage footprint.
func (c *RefCache) FootprintBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.used
}

// StorageBytes returns the cache's footprint at bitsPerSample of storage
// per band sample, in exact integer arithmetic (each entry rounds up to
// whole bytes).
func (c *RefCache) StorageBytes(bitsPerSample int) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	for _, r := range c.refs {
		samples := int64(r.Image.Width) * int64(r.Image.Height) * int64(r.Image.NumBands())
		total += (samples*int64(bitsPerSample) + 7) / 8
	}
	return total
}

// Stats reports how many capacity evictions and Visit misses the cache has
// seen — the observable signal that a storage budget is binding.
func (c *RefCache) Stats() (evictions, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evictions, c.misses
}

// Len returns the number of cached references.
func (c *RefCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.refs)
}

// Pipeline is the on-board change-detection pipeline of §5.
type Pipeline struct {
	Bands []raster.BandInfo
	// Grid is the full-resolution tile grid.
	Grid raster.TileGrid
	// Downsample is the per-axis factor for detection (reference images
	// are cached at this resolution).
	Downsample int
	// CloudDet is the on-board detector (cheap decision tree).
	CloudDet cloud.Detector
	// Theta is the change threshold at detection resolution (profiled).
	Theta float64
	// DropCoverage drops captures whose detected cloud cover exceeds it
	// (paper drops above 50%).
	DropCoverage float64
	// CloudTileFrac marks a tile cloudy when its cloudy-pixel fraction
	// exceeds this.
	CloudTileFrac float64
}

// Result is the pipeline's output for one capture.
type Result struct {
	// Dropped is set when detected cloud coverage exceeded DropCoverage.
	Dropped bool
	// CloudCover is the detected (not true) cloud coverage.
	CloudCover float64
	// CloudMask is the detected per-pixel mask.
	CloudMask *cloud.Mask
	// CloudTiles marks tiles considered cloudy (full-res grid indexing).
	CloudTiles *raster.TileMask
	// Changed holds, per band, the changed-tile mask (nil when no
	// reference was available; the caller decides the fallback).
	Changed []*raster.TileMask
	// Illum holds the per-band alignment fitted against the reference.
	Illum []illum.Model
	// CapLow is the downsampled capture after cloud zeroing and
	// illumination normalisation (used for reference bookkeeping).
	CapLow *raster.Image
	// CloudSec and ChangeSec are the measured wall-clock costs of the
	// cloud-detection and change-detection stages (Fig 16).
	CloudSec  float64
	ChangeSec float64
}

// lowGrid returns the tile grid at detection resolution.
func (p *Pipeline) lowGrid() (raster.TileGrid, error) {
	return p.Grid.Scaled(p.Downsample)
}

// Process runs the §5 pipeline on one capture against the cached reference
// (which may be nil).
func (p *Pipeline) Process(capImg *raster.Image, ref *LowResRef) (*Result, error) {
	if capImg.Width != p.Grid.ImageW || capImg.Height != p.Grid.ImageH {
		return nil, fmt.Errorf("sat: capture %dx%d does not match grid", capImg.Width, capImg.Height)
	}
	res := &Result{}
	// Cloud removal: detect, then drop heavily cloudy captures.
	tCloud := time.Now()
	res.CloudMask = p.CloudDet.Detect(capImg)
	res.CloudSec = time.Since(tCloud).Seconds()
	res.CloudCover = res.CloudMask.Coverage()
	res.CloudTiles = res.CloudMask.TileMask(p.Grid, p.CloudTileFrac)
	if res.CloudCover > p.DropCoverage {
		res.Dropped = true
		return res, nil
	}
	gLow, err := p.lowGrid()
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	capLow, err := capImg.Downsample(p.Downsample)
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	res.CapLow = capLow
	if ref == nil {
		return res, nil
	}
	if !ref.Image.SameShape(capLow) {
		return nil, fmt.Errorf("sat: reference %dx%d does not match detection resolution %dx%d",
			ref.Image.Width, ref.Image.Height, capLow.Width, capLow.Height)
	}
	// Clear-pixel mask at detection resolution for the illumination fit.
	tChange := time.Now()
	clearLow := clearPixelsLow(res.CloudMask, p.Downsample, capLow.Width, capLow.Height)
	det := change.Detector{Theta: p.Theta}
	res.Changed = make([]*raster.TileMask, len(p.Bands))
	res.Illum = make([]illum.Model, len(p.Bands))
	for b := range p.Bands {
		model, _ := illum.FitRobust(ref.Image.Plane(b), capLow.Plane(b), clearLow, 2, 0.2)
		model.Normalize(capLow.Plane(b))
		res.Illum[b] = model
		res.Changed[b] = det.DetectBand(ref.Image, capLow, b, gLow, lowAlias(res.CloudTiles, gLow))
	}
	res.ChangeSec = time.Since(tChange).Seconds()
	return res, nil
}

// lowAlias reinterprets a full-resolution-grid tile mask as a mask over the
// scaled grid (tile indices are identical across scales).
func lowAlias(m *raster.TileMask, gLow raster.TileGrid) *raster.TileMask {
	return &raster.TileMask{Grid: gLow, Set: m.Set}
}

// clearPixelsLow reduces a full-resolution cloud mask to a clear-pixel
// selector at detection resolution: a low-res pixel is usable when fewer
// than half of its footprint is cloudy.
func clearPixelsLow(m *cloud.Mask, factor, lw, lh int) []bool {
	out := make([]bool, lw*lh)
	half := factor * factor / 2
	for ly := 0; ly < lh; ly++ {
		for lx := 0; lx < lw; lx++ {
			n := 0
			for dy := 0; dy < factor; dy++ {
				row := (ly*factor + dy) * m.W
				for dx := 0; dx < factor; dx++ {
					if m.Bits[row+lx*factor+dx] {
						n++
					}
				}
			}
			out[ly*lw+lx] = n <= half
		}
	}
	return out
}

// EncodeROI encodes the capture for downlink: each band's ROI tiles are
// packed into a mosaic and encoded at gammaBPP bits per ROI pixel — the
// paper's constant per-tile bit budget γ (§5). Downloaded tiles carry
// their original pixel values (§3): cloud zero-filling is a detection-side
// device only, and mostly-cloudy tiles are excluded from the ROI by the
// caller. Bands whose ROI is empty travel as absent container bands.
//
// The per-band codec streams are framed into one container.Codestream —
// the wire unit every downlink consumer (ground station, HTTP serving
// layer) speaks — with the per-band bytes inside exactly what
// codec.EncodeROIPlane produced.
//
// Bands are encoded concurrently by a worker pool of
// codec.Workers(opts.Parallelism, bands) goroutines, so whole-constellation
// simulations scale with the host's cores.
func EncodeROI(capImg *raster.Image, perBandROI []*raster.TileMask,
	gammaBPP float64, opts codec.Options) (container.Codestream, error) {
	streams := make([][]byte, len(perBandROI))
	errs := make([]error, len(perBandROI))
	codec.ParallelBands(opts.Parallelism, len(perBandROI), func(b int) {
		roi := perBandROI[b]
		if roi == nil || roi.Count() == 0 {
			return
		}
		bandOpts := opts
		roiPixels := roi.Count() * roi.Grid.Tile * roi.Grid.Tile
		bandOpts.BudgetBytes = int(gammaBPP * float64(roiPixels) / 8)
		if bandOpts.BudgetBytes < codec.MinBudgetBytes {
			bandOpts.BudgetBytes = codec.MinBudgetBytes
		}
		data, err := codec.EncodeROIPlane(capImg.Plane(b), roi, bandOpts)
		if err != nil {
			errs[b] = fmt.Errorf("sat: encoding band %d: %w", b, err)
			return
		}
		streams[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return container.Pack(streams), nil
}

// MaskOverheadBytes is the downlink metadata cost of the per-band ROI
// masks for one capture (one bit per tile per band with a non-empty ROI).
func MaskOverheadBytes(perBandROI []*raster.TileMask) int64 {
	var total int64
	for _, roi := range perBandROI {
		if roi != nil && roi.Count() > 0 {
			total += codec.ROIMaskBytes(roi.Grid)
		}
	}
	return total
}
