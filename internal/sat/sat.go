// Package sat implements the on-board half of the reproduction: the
// reference cache a satellite keeps for every location it will visit, and
// the capture-processing pipeline of §5 — cheap cloud removal, image
// dropping, illumination alignment, downsampled change detection, and
// region-of-interest encoding of the changed tiles.
package sat

import (
	"fmt"
	"sync"
	"time"

	"earthplus/internal/change"
	"earthplus/internal/cloud"
	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/illum"
	"earthplus/internal/orbit"
	"earthplus/internal/raster"
)

// LowResRef is one cached downsampled reference image.
type LowResRef struct {
	// Image is the reference content at the pipeline's detection
	// resolution (already cloud-free by ground-side construction).
	Image *raster.Image
	// Day is the capture day of the reference content (its freshness).
	Day int
}

// Policy names a reference-store eviction policy.
type Policy string

const (
	// PolicyLRU evicts the least-recently-visited location first (ties
	// break toward the smaller location id, so eviction is deterministic).
	PolicyLRU Policy = "lru"
	// PolicySchedule evicts the location whose next planned visit is
	// farthest in the future — the reference the satellite can best afford
	// to lose, since the ground has the most days to re-seed it. Requires
	// CacheConfig.NextVisit (the orbit schedule core precomputes its visit
	// plans from).
	PolicySchedule Policy = "schedule"
)

// Policies lists the known eviction policy names.
func Policies() []string { return []string{string(PolicyLRU), string(PolicySchedule)} }

// RawBitsPerSample is the raw on-board storage cost of one reference band
// sample: the 16-bit quantisation the codec's lossless mode (and hence the
// ground mirror) assumes. core.RefStoreBitsPerSample and the SatRoI
// baseline's full-resolution store both alias this one constant, so the
// accounting rate cannot drift between layers.
const RawBitsPerSample = 16

// defaultDecodedCap is the default size of the decode-on-visit LRU in a
// compressed cache: enough decoded references for one contact's worth of
// repeat visits without holding a raw copy of the whole store.
const defaultDecodedCap = 8

// CacheConfig bounds a reference cache to a satellite's finite on-board
// store. The zero value means unbounded (the pre-storage-model behavior).
type CacheConfig struct {
	// BudgetBytes caps the cache footprint; <= 0 means unlimited.
	BudgetBytes int64
	// BitsPerSample is the a-priori storage cost of one band sample at
	// detection resolution (0 = RawBitsPerSample). With Compress off it is
	// the exact accounting rate; with Compress on, entries are charged
	// their real encoded byte count instead and BitsPerSample only feeds
	// estimates made before any entry exists (working-set math, sweep
	// budget fractions) — see EffectiveBitsPerSample.
	BitsPerSample int
	// Policy selects the eviction order ("" = lru).
	Policy Policy
	// NextVisit predicts the first day strictly after afterDay on which
	// the satellite revisits loc. Required by PolicySchedule.
	NextVisit func(loc, afterDay int) int
	// Compress stores each reference as its encoded container frame at
	// StoreBPP bits per pixel — the uplink's reference rate, the
	// representation the updates arrive in — instead of raw planes: the
	// footprint charged against BudgetBytes is the actual encoded byte
	// count (RawBitsPerSample/StoreBPP smaller, so the same budget holds
	// ~2-5x more locations), and Visit decodes lazily, with a small
	// decoded-plane LRU so repeat visits within a contact don't re-pay
	// the decode. Put/ApplyTileUpdate take the PRE-storage-codec image
	// and apply the codec themselves (EncodeStoredRef); the ground's
	// mirror must model the same transform (station.Config.CompressRefs)
	// or delta uplinks would be encoded against content the satellite
	// never held.
	Compress bool
	// StoreBPP is the storage codec rate of a compressed cache, in bits
	// per pixel per band. Required (> 0) when Compress is set; Earth+
	// wires its uplink RefBPP here so on-board storage and uplink share
	// one representation.
	StoreBPP float64
	// Codec configures the storage codec of a compressed cache. It must
	// match the ground's reference-update codec options so both sides
	// produce byte-identical frames.
	Codec codec.Options
	// DecodedCap bounds the decode-on-visit LRU of a compressed cache
	// (0 = defaultDecodedCap). It trades decode work for scratch memory
	// and never affects simulation results: decoding is pure, so a cold
	// decode returns the same bytes a cached plane would.
	DecodedCap int
	// DecodedTileCap, when positive, bounds the decode-on-visit LRU by
	// the total number of 64px-granularity codec tiles resident instead
	// of by entry count: footprint accounting at tile granularity, so a
	// small reference no longer costs the same LRU slot as a huge one.
	// Zero keeps DecodedCap's whole-entry accounting. Like DecodedCap it
	// is purely advisory — it changes decode work, never results.
	DecodedTileCap int
}

// EffectiveBitsPerSample resolves the per-sample rate a-priori estimates
// (reference working sets, sweep budget fractions) should assume for this
// configuration. It is the resolved BitsPerSample: with Compress on the
// real footprint is measured per entry at install time and is usually
// several times smaller, so callers needing the true compressed rate must
// measure it (FootprintBytes / stored samples) rather than predict it.
func (c CacheConfig) EffectiveBitsPerSample() int { return c.withDefaults().BitsPerSample }

// ResolveBudget maps the stack's three-valued storage knob onto a cache
// budget, in ONE place for every constructor and registry shim: zero
// means the paper's Table 1 default (orbit.DovesSpec().StorageBytes,
// 360 GB), negative means explicitly unlimited (a zero CacheConfig
// budget), positive passes through.
func ResolveBudget(storageBytes int64) int64 {
	switch {
	case storageBytes == 0:
		return orbit.DovesSpec().StorageBytes
	case storageBytes < 0:
		return 0
	default:
		return storageBytes
	}
}

// withDefaults resolves the zero values.
func (c CacheConfig) withDefaults() CacheConfig {
	if c.BitsPerSample <= 0 {
		c.BitsPerSample = RawBitsPerSample
	}
	if c.Policy == "" {
		c.Policy = PolicyLRU
	}
	if c.DecodedCap <= 0 {
		c.DecodedCap = defaultDecodedCap
	}
	return c
}

// validate reports configuration errors.
func (c CacheConfig) validate() error {
	switch c.Policy {
	case PolicyLRU:
	case PolicySchedule:
		if c.NextVisit == nil {
			return fmt.Errorf("sat: eviction policy %q needs a NextVisit schedule", c.Policy)
		}
	default:
		return fmt.Errorf("sat: unknown eviction policy %q (known: %v)", c.Policy, Policies())
	}
	if c.Compress && c.StoreBPP <= 0 {
		return fmt.Errorf("sat: compressed reference store needs a positive StoreBPP rate")
	}
	return nil
}

// EncodeStoredRef encodes every band of a reference image at bpp bits per
// pixel into one container frame: the representation a compressed
// on-board store holds. It is ONE function shared by sat.RefCache and the
// ground's mirror simulation (station.Config.CompressRefs), so both sides
// produce byte-identical frames from the same input — the coherence delta
// uplinks depend on.
func EncodeStoredRef(im *raster.Image, bpp float64, opts codec.Options) (container.Codestream, error) {
	streams := make([][]byte, im.NumBands())
	errs := make([]error, im.NumBands())
	codec.ParallelBands(opts.Parallelism, im.NumBands(), func(b int) {
		bandOpts := opts
		bandOpts.BudgetBytes = int(bpp * float64(im.Width*im.Height) / 8)
		if bandOpts.BudgetBytes < codec.MinBudgetBytes {
			bandOpts.BudgetBytes = codec.MinBudgetBytes
		}
		data, err := codec.EncodePlane(im.Plane(b), im.Width, im.Height, bandOpts)
		if err != nil {
			errs[b] = fmt.Errorf("sat: encoding stored reference band %d: %w", b, err)
			return
		}
		streams[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return container.Pack(streams), nil
}

// SpliceStats reports what a per-tile reference splice touched: how many
// codec tiles were re-encoded versus carried over verbatim, and the
// wall-clock spent region-decoding the base content of the re-encoded
// tiles. The tile counters are the measured decode-on-visit savings of
// the tiled profile (a monolithic splice decodes and re-encodes every
// tile, i.e. Reencoded == Total).
type SpliceStats struct {
	TilesReencoded int64
	TilesTotal     int64
	DecodeNanos    int64
}

// SpliceStoredRef applies a tile update to a stored TILED reference frame
// by re-encoding only the codec tiles that intersect a changed mask tile:
// the base content of those tiles is region-decoded from the old frame
// (only the touched tiles are decoded), the update's masked tiles are
// overlaid, and every untouched tile's payload bytes are reused verbatim.
// Like EncodeStoredRef it is ONE function shared by sat.RefCache and the
// ground's mirror simulation, so both sides derive byte-identical new
// frames from (old frame, update, masks) — the coherence invariant of the
// delta uplink, now at tile granularity. bpp and opts must be the store's
// rate parameters (CacheConfig.StoreBPP / CacheConfig.Codec).
func SpliceStoredRef(frame container.Codestream, w, h int, bands []raster.BandInfo,
	update *raster.Image, perBand []*raster.TileMask, bpp float64, opts codec.Options) (container.Codestream, SpliceStats, error) {
	var stats SpliceStats
	streams, err := frame.SplitNoCRC()
	if err != nil {
		return nil, stats, fmt.Errorf("sat: splicing stored reference: %w", err)
	}
	if len(streams) != len(bands) {
		return nil, stats, fmt.Errorf("sat: stored reference frame carries %d bands, want %d", len(streams), len(bands))
	}
	budget := int(bpp * float64(w*h) / 8)
	if budget < codec.MinBudgetBytes {
		budget = codec.MinBudgetBytes
	}
	bandOpts := opts
	bandOpts.BudgetBytes = budget
	out := make([][]byte, len(streams))
	errs := make([]error, len(streams))
	var mu sync.Mutex
	codec.ParallelBands(opts.Parallelism, len(streams), func(b int) {
		s := streams[b]
		mask := perBand[b]
		if s == nil || mask == nil || mask.Count() == 0 {
			out[b] = s
			return
		}
		if !codec.IsTiled(s) {
			errs[b] = fmt.Errorf("sat: band %d of spliced frame is not tiled", b)
			return
		}
		info, err := codec.Parse(s)
		if err != nil {
			errs[b] = fmt.Errorf("sat: band %d: %w", b, err)
			return
		}
		if info.W != w || info.H != h {
			errs[b] = fmt.Errorf("sat: band %d is %dx%d, want %dx%d", b, info.W, info.H, w, h)
			return
		}
		// Project the changed mask onto the codec grid and region-decode
		// ONLY the touched codec tiles into the base plane; untouched
		// pixels are never read downstream.
		cols := raster.TileSpan(w, info.TileSize)
		rows := raster.TileSpan(h, info.TileSize)
		touched := make([]bool, cols*rows)
		g := mask.Grid
		for t, set := range mask.Set {
			if !set {
				continue
			}
			mx0, my0, mx1, my1 := g.Bounds(t)
			c0, r0, c1, r1 := raster.TileRange(w, h, info.TileSize, mx0, my0, mx1, my1)
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					touched[r*cols+c] = true
				}
			}
		}
		base := make([]float32, w*h)
		var decoded, decNanos int64
		t0 := time.Now() //lint:deterministic wall time feeds DecodeStats only, excluded by EqualIgnoringTimings
		for t, hit := range touched {
			if !hit {
				continue
			}
			x0, y0, x1, y1 := raster.ClampedTileBounds(w, h, info.TileSize, t)
			reg, cw, _, err := codec.DecodeRegion(s, x0, y0, x1-x0, y1-y0)
			if err != nil {
				errs[b] = fmt.Errorf("sat: band %d tile %d: %w", b, t, err)
				return
			}
			for dy := 0; dy < y1-y0; dy++ {
				row := reg[dy*cw : dy*cw+cw]
				dst := base[(y0+dy)*w+x0 : (y0+dy)*w+x1]
				for i, v := range row {
					// The splice base is the decoded reference, which is
					// clamped to [0,1] exactly as DecodeStoredRef clamps.
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					dst[i] = v
				}
			}
			decoded++
		}
		decNanos = time.Since(t0).Nanoseconds() //lint:deterministic wall time feeds DecodeStats only, excluded by EqualIgnoringTimings
		// Overlay the update's changed tiles (original pixel values, as
		// the raw splice path copies them).
		for t, set := range mask.Set {
			if !set {
				continue
			}
			mx0, my0, mx1, my1 := g.Bounds(t)
			up := update.Plane(b)
			for y := my0; y < my1; y++ {
				copy(base[y*w+mx0:y*w+mx1], up[y*w+mx0:y*w+mx1])
			}
		}
		ns, err := codec.TiledSplicePlane(s, base, mask, bandOpts)
		if err != nil {
			errs[b] = fmt.Errorf("sat: band %d: %w", b, err)
			return
		}
		out[b] = ns
		mu.Lock()
		stats.TilesReencoded += decoded
		stats.TilesTotal += int64(info.NTiles)
		stats.DecodeNanos += decNanos
		mu.Unlock()
	})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return container.Pack(out), stats, nil
}

// DecodeStoredRef reverses EncodeStoredRef into a fresh image of the
// given geometry.
func DecodeStoredRef(cs container.Codestream, w, h int, bands []raster.BandInfo) (*raster.Image, error) {
	streams, err := cs.Split()
	if err != nil {
		return nil, fmt.Errorf("sat: stored reference frame: %w", err)
	}
	if len(streams) != len(bands) {
		return nil, fmt.Errorf("sat: stored reference frame carries %d bands, want %d", len(streams), len(bands))
	}
	im := raster.New(w, h, bands)
	for b, data := range streams {
		plane, pw, ph, err := codec.DecodePlane(data, 0)
		if err != nil {
			return nil, fmt.Errorf("sat: decoding stored reference band %d: %w", b, err)
		}
		if pw != w || ph != h {
			return nil, fmt.Errorf("sat: stored reference band %d decodes to %dx%d, want %dx%d", b, pw, ph, w, h)
		}
		copy(im.Plane(b), plane)
	}
	im.Clamp()
	return im, nil
}

// ValidateFrame is the satellite's integrity gate for a received
// container frame: the structural parse plus the CRC-32C trailer check,
// without decoding any payload. A lossy uplink's RefUpdate (and, under
// RefCompression, its StoreFrame) must pass it before ANY splice into
// on-board state — a corrupted or truncated frame is rejected whole and
// the cache keeps its stale-but-coherent reference.
func ValidateFrame(cs container.Codestream) error {
	if _, err := cs.Split(); err != nil {
		return fmt.Errorf("sat: frame rejected: %w", err)
	}
	return nil
}

// refMeta is the per-entry bookkeeping eviction decisions read.
type refMeta struct {
	// lastVisit is the day of the entry's most recent visit (or install).
	lastVisit int
	// bytes is the entry's accounted footprint.
	bytes int64
}

// compRef is one compressed cache entry: the reference held as its
// losslessly encoded container frame plus the geometry needed to decode
// it back into a raster image.
type compRef struct {
	frame container.Codestream
	w, h  int
	bands []raster.BandInfo
	day   int
}

// RefCache holds a satellite's on-board reference images, keyed by
// location, bounded by the satellite's storage budget. Earth+ caches
// references on board so that uplink updates only need to carry changed
// reference tiles (§4.3); because the store is finite, an insert may evict
// other locations, and a later Visit of an evicted location MISSES — the
// pipeline then falls back to reference-free encoding until the ground
// re-seeds the reference over the uplink.
//
// With CacheConfig.Compress the store holds each reference as its encoded
// container frame at the uplink's reference rate (StoreBPP) — the
// footprint charged against the budget is the actual encoded byte count,
// so the same budget holds roughly RawBitsPerSample/StoreBPP more
// locations — and Visit decodes lazily through a small decoded-plane LRU.
// An entry's content is ALWAYS decode(frame): installs run the storage
// codec (or accept a pre-encoded frame via PutFrame), and the ground
// simulates the same transform on its mirror, so what the satellite
// detects changes against is byte-equal to what the ground believes it
// holds.
//
// Determinism contract: eviction decisions depend only on the visit
// schedule (day numbers), never on wall-clock or goroutine order. Visit
// records recency per location as the capture day — concurrent visits to
// distinct locations write distinct entries, so the sharded engine reaches
// the same cache state at any worker count — and every mutation that can
// evict (Put, ApplyTileUpdate) happens on the engine's serial phases
// (bootstrap, day-end barrier).
//
// The cache is safe for concurrent use on DISTINCT locations: the sharded
// simulation engine looks up references for many locations at once while a
// satellite's cache is shared across its day's visits. Same-location
// ordering is the caller's responsibility (the engine serialises each
// location's visit sequence).
type RefCache struct {
	mu  sync.RWMutex
	cfg CacheConfig
	// refs holds raw-mode entries; frames holds compressed-mode entries.
	// Exactly one of the two is populated, per cfg.Compress.
	refs   map[int]*LowResRef
	frames map[int]*compRef
	meta   map[int]*refMeta
	// used is the accounted footprint of every entry, in bytes.
	used int64
	// lastDay is the latest day observed via Visit/Put/ApplyTileUpdate;
	// PolicySchedule predicts next visits relative to it.
	lastDay int
	// evictions and misses count capacity evictions and Visit misses.
	evictions, misses int64
	// dec is the decode-on-visit LRU of a compressed cache: up to
	// cfg.DecodedCap decoded references, decOrder oldest-first. It is a
	// pure performance device — decode is deterministic, so its state
	// never changes what Visit returns — which is exactly why the decode
	// counters below are advisory: under the sharded engine, visit
	// interleaving across locations (and hence LRU churn) varies with the
	// worker count.
	dec      map[int]*LowResRef
	decOrder []int
	// decTiles charges each resident decoded entry its tile footprint
	// (64px-granularity codec tiles); decTilesUsed is their sum, the
	// quantity DecodedTileCap bounds.
	decTiles     map[int]int
	decTilesUsed int
	// decodes and decodeHits count frame decodes and LRU-served lookups;
	// decodeNanos accumulates the wall-clock spent inside those decodes,
	// so the decode-on-visit cost of a compressed store is measurable,
	// not just countable.
	decodes, decodeHits int64
	decodeNanos         int64
	// tilesDecoded counts the codec tiles actually decoded by tile-
	// granular operations (region visits, per-tile splices); tilesTotal
	// the tiles the same operations would have decoded at whole-frame
	// granularity. Their ratio is the tiled profile's measured
	// decode-on-visit saving. Advisory, like the decode counters.
	tilesDecoded, tilesTotal int64
}

// NewRefCache returns an empty, unbounded cache.
func NewRefCache() *RefCache {
	c, _ := NewBoundedRefCache(CacheConfig{}) // zero config always validates
	return c
}

// NewBoundedRefCache returns an empty cache honouring cfg's storage budget
// and eviction policy.
func NewBoundedRefCache(cfg CacheConfig) (*RefCache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &RefCache{
		cfg:  cfg,
		meta: make(map[int]*refMeta),
	}
	if cfg.Compress {
		c.frames = make(map[int]*compRef)
		c.dec = make(map[int]*LowResRef)
		c.decTiles = make(map[int]int)
	} else {
		c.refs = make(map[int]*LowResRef)
	}
	return c, nil
}

// Compressed reports whether entries are stored as encoded frames.
func (c *RefCache) Compressed() bool { return c.cfg.Compress }

// encodeFrame runs the storage codec over a reference image. The cache
// produced the image itself, so an encode failure is a programming error,
// not a runtime condition.
func (c *RefCache) encodeFrame(im *raster.Image) container.Codestream {
	frame, err := EncodeStoredRef(im, c.cfg.StoreBPP, c.cfg.Codec)
	if err != nil {
		panic(fmt.Sprintf("sat: %v", err))
	}
	return frame
}

// decodeEntryLocked returns loc's decoded reference, serving repeat visits
// from the decode-on-visit LRU and decoding the stored frame on a cold
// lookup. The returned LowResRef aliases the LRU entry, mirroring raw
// mode's shared-image semantics. The LRU never changes WHAT a visit sees
// — only whether the decode work is re-paid — because entries enter it
// exclusively through this decode path.
func (c *RefCache) decodeEntryLocked(loc int) *LowResRef {
	if lr := c.dec[loc]; lr != nil {
		c.decodeHits++
		c.touchDecodedLocked(loc)
		return lr
	}
	e := c.frames[loc]
	t0 := time.Now() //lint:deterministic wall time feeds the cache's DecodeStats only, excluded by EqualIgnoringTimings
	im, err := DecodeStoredRef(e.frame, e.w, e.h, e.bands)
	if err != nil {
		panic(fmt.Sprintf("sat: loc %d: %v", loc, err))
	}
	c.decodeNanos += time.Since(t0).Nanoseconds() //lint:deterministic wall time feeds the cache's DecodeStats only, excluded by EqualIgnoringTimings
	c.decodes++
	lr := &LowResRef{Image: im, Day: e.day}
	c.insertDecodedLocked(loc, lr)
	return lr
}

// decTileWeight is the tile-granular footprint of one decoded reference:
// the number of codec tiles (at the store's tile size, per band sample
// geometry) a full decode keeps resident.
func (c *RefCache) decTileWeight(im *raster.Image) int {
	tile := c.cfg.Codec.TileSize
	if tile <= 0 {
		tile = raster.DefaultTileSize
	}
	return raster.TileSpan(im.Width, tile) * raster.TileSpan(im.Height, tile)
}

// insertDecodedLocked installs a decoded reference into the LRU, evicting
// oldest decoded planes beyond the cap — counted in whole entries
// (DecodedCap) or, when DecodedTileCap is set, in resident codec tiles.
// The newest entry always stays, even when it alone exceeds the tile cap.
func (c *RefCache) insertDecodedLocked(loc int, lr *LowResRef) {
	if _, ok := c.dec[loc]; ok {
		c.touchDecodedLocked(loc)
	} else {
		c.decOrder = append(c.decOrder, loc)
	}
	c.dec[loc] = lr
	w := c.decTileWeight(lr.Image)
	c.decTilesUsed += w - c.decTiles[loc]
	c.decTiles[loc] = w
	if c.cfg.DecodedTileCap > 0 {
		for c.decTilesUsed > c.cfg.DecodedTileCap && len(c.decOrder) > 1 {
			c.dropDecodedLocked(c.decOrder[0])
		}
		return
	}
	for len(c.decOrder) > c.cfg.DecodedCap {
		c.dropDecodedLocked(c.decOrder[0])
	}
}

// touchDecodedLocked moves loc to the most-recent end of the LRU order.
func (c *RefCache) touchDecodedLocked(loc int) {
	for i, l := range c.decOrder {
		if l == loc {
			c.decOrder = append(append(c.decOrder[:i:i], c.decOrder[i+1:]...), loc)
			return
		}
	}
}

// dropDecodedLocked removes loc's decoded plane, if cached, returning its
// tile footprint to the accounting.
func (c *RefCache) dropDecodedLocked(loc int) {
	if _, ok := c.dec[loc]; !ok {
		return
	}
	delete(c.dec, loc)
	c.decTilesUsed -= c.decTiles[loc]
	delete(c.decTiles, loc)
	for i, l := range c.decOrder {
		if l == loc {
			c.decOrder = append(c.decOrder[:i], c.decOrder[i+1:]...)
			return
		}
	}
}

// entryBytes is the accounted footprint of one reference image: exact
// integer arithmetic in bits per sample, rounded up to whole bytes per
// entry (float accumulation used to truncate fractional bytes-per-pixel
// footprints on large caches).
func (c *RefCache) entryBytes(im *raster.Image) int64 {
	samples := int64(im.Width) * int64(im.Height) * int64(im.NumBands())
	return (samples*int64(c.cfg.BitsPerSample) + 7) / 8
}

// Get returns the cached reference for loc, or nil. It does not count as a
// visit; capture processing uses Visit so eviction recency tracks the
// schedule. In compressed mode the entry is decoded (through the LRU) like
// a visit would, without touching eviction recency.
func (c *RefCache) Get(loc int) *LowResRef {
	if !c.cfg.Compress {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.refs[loc]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frames[loc] == nil {
		return nil
	}
	return c.decodeEntryLocked(loc)
}

// Visit returns the cached reference for loc, recording the visit day for
// eviction recency. A nil return is a cache MISS: the reference was
// evicted (or never seeded) and the caller must fall back to
// reference-free encoding. Recency is keyed by day, so concurrent visits
// to distinct locations leave the same state in any order. A compressed
// cache decodes the stored frame here — decode-on-visit is the cost the
// compressed footprint trades for — with repeat visits served from the
// decoded-plane LRU.
func (c *RefCache) Visit(loc, day int) *LowResRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	if day > c.lastDay {
		c.lastDay = day
	}
	if c.cfg.Compress {
		if c.frames[loc] == nil {
			c.misses++
			return nil
		}
		if m := c.meta[loc]; day > m.lastVisit {
			m.lastVisit = day
		}
		return c.decodeEntryLocked(loc)
	}
	ref := c.refs[loc]
	if ref == nil {
		c.misses++
		return nil
	}
	if m := c.meta[loc]; day > m.lastVisit {
		m.lastVisit = day
	}
	return ref
}

// VisitRegion is Visit for a rectangular region of interest: it returns
// the cached reference content covering the pixel rectangle [x,y)+(w,h)
// (clipped to the reference bounds), recording visit recency exactly like
// Visit. A (nil, nil) return is a cache MISS. On a compressed TILED store
// this is the tile-granular decode path: only the codec tiles the
// rectangle touches are entropy-decoded — the saving TileStats measures —
// and nothing enters the decoded-plane LRU (a partial plane must not
// serve a later full visit). A monolithic frame falls back to the full
// decode-through-LRU path plus a crop, and a raw store just crops. A
// rectangle that misses the reference entirely (or is empty) is an error.
func (c *RefCache) VisitRegion(loc, day, x, y, w, h int) (*LowResRef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if day > c.lastDay {
		c.lastDay = day
	}
	if !c.cfg.Compress {
		ref := c.refs[loc]
		if ref == nil {
			c.misses++
			return nil, nil
		}
		if m := c.meta[loc]; day > m.lastVisit {
			m.lastVisit = day
		}
		img, err := cropImage(ref.Image, x, y, w, h)
		if err != nil {
			return nil, err
		}
		return &LowResRef{Image: img, Day: ref.Day}, nil
	}
	e := c.frames[loc]
	if e == nil {
		c.misses++
		return nil, nil
	}
	if m := c.meta[loc]; day > m.lastVisit {
		m.lastVisit = day
	}
	// A resident full decode makes the crop free — and a monolithic frame
	// cannot decode partially anyway, so it goes through the same LRU path
	// a full visit would.
	if c.dec[loc] == nil && e.frame.Tiled() {
		return c.visitRegionTiledLocked(e, x, y, w, h)
	}
	lr := c.decodeEntryLocked(loc)
	img, err := cropImage(lr.Image, x, y, w, h)
	if err != nil {
		return nil, err
	}
	return &LowResRef{Image: img, Day: lr.Day}, nil
}

// visitRegionTiledLocked decodes only the codec tiles of e's frame that
// the rectangle touches, per band, and assembles the cropped reference.
func (c *RefCache) visitRegionTiledLocked(e *compRef, x, y, w, h int) (*LowResRef, error) {
	streams, err := e.frame.SplitNoCRC()
	if err != nil {
		return nil, fmt.Errorf("sat: stored reference frame: %w", err)
	}
	if len(streams) != len(e.bands) {
		return nil, fmt.Errorf("sat: stored reference frame carries %d bands, want %d", len(streams), len(e.bands))
	}
	t0 := time.Now() //lint:deterministic wall time feeds the cache's DecodeStats only, excluded by EqualIgnoringTimings
	var out *raster.Image
	for b, data := range streams {
		plane, cw, ch, err := codec.DecodeRegion(data, x, y, w, h)
		if err != nil {
			return nil, fmt.Errorf("sat: region-decoding stored reference band %d: %w", b, err)
		}
		if out == nil {
			out = raster.New(cw, ch, e.bands)
		}
		copy(out.Plane(b), plane)
		touched, total, err := codec.RegionTiles(data, x, y, w, h)
		if err != nil {
			return nil, fmt.Errorf("sat: band %d: %w", b, err)
		}
		c.tilesDecoded += int64(touched)
		c.tilesTotal += int64(total)
	}
	out.Clamp()
	c.decodeNanos += time.Since(t0).Nanoseconds() //lint:deterministic wall time feeds the cache's DecodeStats only, excluded by EqualIgnoringTimings
	c.decodes++
	return &LowResRef{Image: out, Day: e.day}, nil
}

// cropImage copies the pixel rectangle [x,y)+(w,h) of im, clipped to the
// image bounds, into a fresh image — the raw-store (and LRU-resident)
// analogue of a tiled region decode. A rectangle that misses the image
// entirely is an error, mirroring codec.DecodeRegion.
func cropImage(im *raster.Image, x, y, w, h int) (*raster.Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sat: empty region %dx%d", w, h)
	}
	x0, y0 := max(x, 0), max(y, 0)
	x1, y1 := min(x+w, im.Width), min(y+h, im.Height)
	if x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("sat: region (%d,%d)+(%d,%d) outside the %dx%d reference", x, y, w, h, im.Width, im.Height)
	}
	out := raster.New(x1-x0, y1-y0, im.Bands)
	for b := 0; b < im.NumBands(); b++ {
		src, dst := im.Plane(b), out.Plane(b)
		for yy := y0; yy < y1; yy++ {
			copy(dst[(yy-y0)*(x1-x0):(yy-y0+1)*(x1-x0)], src[yy*im.Width+x0:yy*im.Width+x1])
		}
	}
	return out, nil
}

// Put replaces the reference for loc (the image is not copied) and returns
// the locations evicted to fit it under the storage budget (nil when
// nothing was evicted). The caller owns ground-mirror bookkeeping for the
// returned locations; a new reference larger than the whole budget evicts
// itself and the cache stays without the entry.
//
// A compressed cache expects the PRE-storage-codec image (e.g. the
// bootstrap seed, or a decoded uplink update before mirror simulation)
// and stores its encoded frame; the image itself is not retained, and the
// next Visit decodes the frame — NOT the bytes passed here. Installing an
// image that already went through the storage codec would apply the codec
// twice and diverge from the ground's mirror.
func (c *RefCache) Put(loc int, im *raster.Image, day int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installLocked(loc, &LowResRef{Image: im, Day: day}, day)
	return c.evictLocked(loc)
}

// PutFrame installs a pre-encoded storage frame for loc — the uplink's
// reference codestream routed straight into the store, with no raw
// expansion and no re-encode. decoded supplies the frame's geometry (its
// pixels are not retained); day stamps the entry's content freshness.
// Only valid on a compressed cache. Like Put, it returns the locations
// evicted to fit the entry.
func (c *RefCache) PutFrame(loc int, frame container.Codestream, decoded *raster.Image, day int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cfg.Compress {
		panic("sat: PutFrame on a raw reference cache")
	}
	if day > c.lastDay {
		c.lastDay = day
	}
	c.frames[loc] = &compRef{
		frame: frame,
		w:     decoded.Width, h: decoded.Height,
		bands: decoded.Bands,
		day:   day,
	}
	c.dropDecodedLocked(loc) // any cached decode of the old frame is stale
	c.accountLocked(loc, int64(len(frame)))
	return c.evictLocked(loc)
}

// ApplyTileUpdate copies the marked low-resolution tiles of update into
// the cached reference for loc and advances its day. A missing cache entry
// is created from the update itself (the ground ships whole-image updates
// to re-seed evicted references). Like Put, it returns any locations
// evicted to keep the footprint under budget: splicing raw planes in place
// never changes the footprint, but a compressed entry is re-encoded after
// the splice and its new frame may be larger. A compressed cache quantises
// update in place, like Put.
func (c *RefCache) ApplyTileUpdate(loc int, update *raster.Image, perBand []*raster.TileMask, day int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Compress {
		return c.applyTileUpdateCompressedLocked(loc, update, perBand, day)
	}
	ref := c.refs[loc]
	if ref == nil {
		c.installLocked(loc, &LowResRef{Image: update.Clone(), Day: day}, day)
		return c.evictLocked(loc)
	}
	for b, mask := range perBand {
		if mask == nil {
			continue
		}
		for t, set := range mask.Set {
			if set {
				raster.CopyTile(ref.Image, update, b, mask.Grid, t)
			}
		}
	}
	ref.Day = day
	if day > c.lastDay {
		c.lastDay = day
	}
	// A spliced update is an install for recency purposes too: the uplink
	// just spent bytes refreshing this reference, so it must not linger as
	// the LRU victim stamped with its last pre-update visit.
	if m := c.meta[loc]; c.lastDay > m.lastVisit {
		m.lastVisit = c.lastDay
	}
	return nil // splicing raw planes in place never grows the footprint
}

// applyTileUpdateCompressedLocked is ApplyTileUpdate for a compressed
// store: decode the current frame, splice the update tiles, re-encode
// through the storage codec, and re-account the entry at its new encoded
// size — which can shrink or grow, so the eviction check runs like an
// install's. The spliced raw plane is dropped from the decode LRU: the
// entry's content is decode(frame), one storage-codec generation past the
// splice input, exactly as the ground's mirror simulation models it.
//
// A TILED store takes the per-tile fast path instead: SpliceStoredRef
// region-decodes and re-encodes only the codec tiles a changed mask tile
// touches and carries every other tile's payload bytes over verbatim —
// no whole-frame decode, no whole-frame re-encode, and no generation
// loss on untouched tiles. The ground's mirror simulation splices its
// frame through the same function, so both sides stay byte-coherent.
func (c *RefCache) applyTileUpdateCompressedLocked(loc int, update *raster.Image, perBand []*raster.TileMask, day int) []int {
	e := c.frames[loc]
	if e == nil {
		c.installLocked(loc, &LowResRef{Image: update, Day: day}, day)
		return c.evictLocked(loc)
	}
	if e.frame.Tiled() {
		frame, st, err := SpliceStoredRef(e.frame, e.w, e.h, e.bands, update, perBand, c.cfg.StoreBPP, c.cfg.Codec)
		if err != nil {
			panic(fmt.Sprintf("sat: loc %d: %v", loc, err))
		}
		e.frame = frame
		c.decodeNanos += st.DecodeNanos
		c.tilesDecoded += st.TilesReencoded
		c.tilesTotal += st.TilesTotal
	} else {
		base := c.decodeEntryLocked(loc).Image
		for b, mask := range perBand {
			if mask == nil {
				continue
			}
			for t, set := range mask.Set {
				if set {
					raster.CopyTile(base, update, b, mask.Grid, t)
				}
			}
		}
		e.frame = c.encodeFrame(base)
	}
	e.day = day
	if day > c.lastDay {
		c.lastDay = day
	}
	// base (now spliced, pre-codec) must not serve future visits: the
	// entry's content is the re-encoded frame's decode.
	c.dropDecodedLocked(loc)
	c.accountLocked(loc, int64(len(e.frame)))
	return c.evictLocked(loc)
}

// installLocked inserts or replaces loc's entry and its accounting. LRU
// recency is stamped with the cache's current day (lastDay), NOT the
// reference's content day: uplink updates install content captured days
// ago, and stamping them with the content day would make every freshly
// re-seeded entry the least-recently-visited one — it would be evicted
// again on the very next install, thrashing the store into permanent
// misses. lastDay is the maximum day any visit or install has reached,
// which at the engine's serial install phases equals the current
// simulation day at every worker count.
func (c *RefCache) installLocked(loc int, ref *LowResRef, day int) {
	if day > c.lastDay {
		c.lastDay = day
	}
	var bytes int64
	if c.cfg.Compress {
		// The storage codec runs here: what the store keeps (and what
		// every future Visit decodes) is the frame, not the caller's
		// image — a stale decode of the previous frame must go too.
		frame := c.encodeFrame(ref.Image)
		bytes = int64(len(frame))
		c.frames[loc] = &compRef{
			frame: frame,
			w:     ref.Image.Width, h: ref.Image.Height,
			bands: ref.Image.Bands,
			day:   ref.Day,
		}
		c.dropDecodedLocked(loc)
	} else {
		bytes = c.entryBytes(ref.Image)
		c.refs[loc] = ref
	}
	c.accountLocked(loc, bytes)
}

// accountLocked books loc's entry at bytes, stamping install recency with
// the cache's current day (see installLocked's doc for why lastDay, not
// the content day).
func (c *RefCache) accountLocked(loc int, bytes int64) {
	if m := c.meta[loc]; m != nil {
		c.used += bytes - m.bytes
		m.bytes = bytes
		if c.lastDay > m.lastVisit {
			m.lastVisit = c.lastDay
		}
	} else {
		c.used += bytes
		c.meta[loc] = &refMeta{lastVisit: c.lastDay, bytes: bytes}
	}
}

// evictLocked removes entries until the footprint fits the budget and
// returns the evicted locations; installed is the entry whose insert
// triggered the check. An installed entry that can NEVER fit — larger by
// itself than the whole budget — is evicted first, so one oversize insert
// costs only itself instead of flushing every other cached reference on
// its way out. Victim selection is a pure function of (policy, entry
// metadata, lastDay), so a run is deterministic at any engine worker
// count.
func (c *RefCache) evictLocked(installed int) []int {
	if c.cfg.BudgetBytes <= 0 {
		return nil
	}
	var evicted []int
	if m := c.meta[installed]; m != nil && m.bytes > c.cfg.BudgetBytes {
		evicted = append(evicted, c.removeLocked(installed))
	}
	for c.used > c.cfg.BudgetBytes && len(c.meta) > 0 {
		evicted = append(evicted, c.removeLocked(c.victimLocked()))
	}
	return evicted
}

// removeLocked drops one entry and its accounting, counting the eviction.
func (c *RefCache) removeLocked(victim int) int {
	c.used -= c.meta[victim].bytes
	if c.cfg.Compress {
		delete(c.frames, victim)
		c.dropDecodedLocked(victim)
	} else {
		delete(c.refs, victim)
	}
	delete(c.meta, victim)
	c.evictions++
	return victim
}

// victimLocked picks the next location to evict under the configured
// policy. Ties always break toward the smaller location id, so the choice
// is unique regardless of map iteration order.
func (c *RefCache) victimLocked() int {
	victim, best := -1, 0
	for loc, m := range c.meta {
		var key int
		switch c.cfg.Policy {
		case PolicySchedule:
			// Farthest next planned visit goes first; negated so that the
			// shared "smaller key wins" comparison below applies.
			key = -c.cfg.NextVisit(loc, c.lastDay)
		default: // PolicyLRU
			key = m.lastVisit
		}
		if victim < 0 || key < best || (key == best && loc < victim) {
			victim, best = loc, key
		}
	}
	return victim
}

// FootprintBytes returns the cache's accounted storage footprint.
func (c *RefCache) FootprintBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.used
}

// StorageBytes returns the cache's hypothetical footprint at bitsPerSample
// of storage per band sample, in exact integer arithmetic (each entry
// rounds up to whole bytes). For a compressed cache this is the raw-rate
// equivalent of the resident set — compare it against FootprintBytes (the
// real encoded bytes) to read off the achieved storage compression.
func (c *RefCache) StorageBytes(bitsPerSample int) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int64
	add := func(w, h, bands int) {
		samples := int64(w) * int64(h) * int64(bands)
		total += (samples*int64(bitsPerSample) + 7) / 8
	}
	for _, r := range c.refs {
		add(r.Image.Width, r.Image.Height, r.Image.NumBands())
	}
	for _, e := range c.frames {
		add(e.w, e.h, len(e.bands))
	}
	return total
}

// Stats reports how many capacity evictions and Visit misses the cache has
// seen — the observable signal that a storage budget is binding.
func (c *RefCache) Stats() (evictions, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.evictions, c.misses
}

// DecodeStats reports how many frame decodes a compressed cache performed
// and how many lookups the decoded-plane LRU absorbed instead. The
// counters are advisory (zero in raw mode): visit interleaving across
// locations — and hence LRU churn — varies with the engine's worker
// count, so they are deliberately excluded from the determinism-checked
// record stream.
func (c *RefCache) DecodeStats() (decodes, lruHits int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.decodes, c.decodeHits
}

// TileStats reports the tile-granular decode accounting of a tiled
// compressed store: decoded is the number of codec tiles tile-granular
// operations (VisitRegion, per-tile splices) actually entropy-decoded,
// total the tiles the same operations would have decoded at whole-frame
// granularity. total-decoded is the measured decode-on-visit saving of
// the tiled profile. Advisory, like DecodeStats; zero on raw stores and
// monolithic frames.
func (c *RefCache) TileStats() (decoded, total int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tilesDecoded, c.tilesTotal
}

// DecodeWall reports the cumulative wall-clock spent decoding stored
// frames on visit. Like DecodeStats it is advisory: the total varies
// with LRU churn (and so with the engine's worker count), but it is the
// actual decode-on-visit price a compressed store paid, which the
// sim-engine snapshot records so the cost stops being invisible.
func (c *RefCache) DecodeWall() time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return time.Duration(c.decodeNanos)
}

// Len returns the number of cached references.
func (c *RefCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.cfg.Compress {
		return len(c.frames)
	}
	return len(c.refs)
}

// Pipeline is the on-board change-detection pipeline of §5.
type Pipeline struct {
	Bands []raster.BandInfo
	// Grid is the full-resolution tile grid.
	Grid raster.TileGrid
	// Downsample is the per-axis factor for detection (reference images
	// are cached at this resolution).
	Downsample int
	// CloudDet is the on-board detector (cheap decision tree).
	CloudDet cloud.Detector
	// Theta is the change threshold at detection resolution (profiled).
	Theta float64
	// DropCoverage drops captures whose detected cloud cover exceeds it
	// (paper drops above 50%).
	DropCoverage float64
	// CloudTileFrac marks a tile cloudy when its cloudy-pixel fraction
	// exceeds this.
	CloudTileFrac float64
}

// Result is the pipeline's output for one capture.
type Result struct {
	// Dropped is set when detected cloud coverage exceeded DropCoverage.
	Dropped bool
	// CloudCover is the detected (not true) cloud coverage.
	CloudCover float64
	// CloudMask is the detected per-pixel mask.
	CloudMask *cloud.Mask
	// CloudTiles marks tiles considered cloudy (full-res grid indexing).
	CloudTiles *raster.TileMask
	// Changed holds, per band, the changed-tile mask (nil when no
	// reference was available; the caller decides the fallback).
	Changed []*raster.TileMask
	// Illum holds the per-band alignment fitted against the reference.
	Illum []illum.Model
	// CapLow is the downsampled capture after cloud zeroing and
	// illumination normalisation (used for reference bookkeeping).
	CapLow *raster.Image
	// CloudSec and ChangeSec are the measured wall-clock costs of the
	// cloud-detection and change-detection stages (Fig 16).
	CloudSec  float64
	ChangeSec float64
}

// lowGrid returns the tile grid at detection resolution.
func (p *Pipeline) lowGrid() (raster.TileGrid, error) {
	return p.Grid.Scaled(p.Downsample)
}

// Process runs the §5 pipeline on one capture against the cached reference
// (which may be nil).
func (p *Pipeline) Process(capImg *raster.Image, ref *LowResRef) (*Result, error) {
	if capImg.Width != p.Grid.ImageW || capImg.Height != p.Grid.ImageH {
		return nil, fmt.Errorf("sat: capture %dx%d does not match grid", capImg.Width, capImg.Height)
	}
	res := &Result{}
	// Cloud removal: detect, then drop heavily cloudy captures.
	tCloud := time.Now() //lint:deterministic wall time feeds Record.CloudSec, excluded by EqualIgnoringTimings
	res.CloudMask = p.CloudDet.Detect(capImg)
	res.CloudSec = time.Since(tCloud).Seconds() //lint:deterministic wall time feeds Record.CloudSec, excluded by EqualIgnoringTimings
	res.CloudCover = res.CloudMask.Coverage()
	res.CloudTiles = res.CloudMask.TileMask(p.Grid, p.CloudTileFrac)
	if res.CloudCover > p.DropCoverage {
		res.Dropped = true
		return res, nil
	}
	gLow, err := p.lowGrid()
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	capLow, err := capImg.Downsample(p.Downsample)
	if err != nil {
		return nil, fmt.Errorf("sat: %w", err)
	}
	res.CapLow = capLow
	if ref == nil {
		return res, nil
	}
	if !ref.Image.SameShape(capLow) {
		return nil, fmt.Errorf("sat: reference %dx%d does not match detection resolution %dx%d",
			ref.Image.Width, ref.Image.Height, capLow.Width, capLow.Height)
	}
	// Clear-pixel mask at detection resolution for the illumination fit.
	tChange := time.Now() //lint:deterministic wall time feeds Record.ChangeSec, excluded by EqualIgnoringTimings
	clearLow := clearPixelsLow(res.CloudMask, p.Downsample, capLow.Width, capLow.Height)
	det := change.Detector{Theta: p.Theta}
	res.Changed = make([]*raster.TileMask, len(p.Bands))
	res.Illum = make([]illum.Model, len(p.Bands))
	for b := range p.Bands {
		model, _ := illum.FitRobust(ref.Image.Plane(b), capLow.Plane(b), clearLow, 2, 0.2)
		model.Normalize(capLow.Plane(b))
		res.Illum[b] = model
		res.Changed[b] = det.DetectBand(ref.Image, capLow, b, gLow, lowAlias(res.CloudTiles, gLow))
	}
	res.ChangeSec = time.Since(tChange).Seconds() //lint:deterministic wall time feeds Record.ChangeSec, excluded by EqualIgnoringTimings
	return res, nil
}

// lowAlias reinterprets a full-resolution-grid tile mask as a mask over the
// scaled grid (tile indices are identical across scales).
func lowAlias(m *raster.TileMask, gLow raster.TileGrid) *raster.TileMask {
	return &raster.TileMask{Grid: gLow, Set: m.Set}
}

// clearPixelsLow reduces a full-resolution cloud mask to a clear-pixel
// selector at detection resolution: a low-res pixel is usable when fewer
// than half of its footprint is cloudy.
func clearPixelsLow(m *cloud.Mask, factor, lw, lh int) []bool {
	out := make([]bool, lw*lh)
	half := factor * factor / 2
	for ly := 0; ly < lh; ly++ {
		for lx := 0; lx < lw; lx++ {
			n := 0
			for dy := 0; dy < factor; dy++ {
				row := (ly*factor + dy) * m.W
				for dx := 0; dx < factor; dx++ {
					if m.Bits[row+lx*factor+dx] {
						n++
					}
				}
			}
			out[ly*lw+lx] = n <= half
		}
	}
	return out
}

// EncodeROI encodes the capture for downlink: each band's ROI tiles are
// packed into a mosaic and encoded at gammaBPP bits per ROI pixel — the
// paper's constant per-tile bit budget γ (§5). Downloaded tiles carry
// their original pixel values (§3): cloud zero-filling is a detection-side
// device only, and mostly-cloudy tiles are excluded from the ROI by the
// caller. Bands whose ROI is empty travel as absent container bands.
//
// The per-band codec streams are framed into one container.Codestream —
// the wire unit every downlink consumer (ground station, HTTP serving
// layer) speaks — with the per-band bytes inside exactly what
// codec.EncodeROIPlane produced.
//
// Bands are encoded concurrently by a worker pool of
// codec.Workers(opts.Parallelism, bands) goroutines, so whole-constellation
// simulations scale with the host's cores.
func EncodeROI(capImg *raster.Image, perBandROI []*raster.TileMask,
	gammaBPP float64, opts codec.Options) (container.Codestream, error) {
	streams := make([][]byte, len(perBandROI))
	errs := make([]error, len(perBandROI))
	codec.ParallelBands(opts.Parallelism, len(perBandROI), func(b int) {
		roi := perBandROI[b]
		if roi == nil || roi.Count() == 0 {
			return
		}
		bandOpts := opts
		roiPixels := roi.Count() * roi.Grid.Tile * roi.Grid.Tile
		bandOpts.BudgetBytes = int(gammaBPP * float64(roiPixels) / 8)
		if bandOpts.BudgetBytes < codec.MinBudgetBytes {
			bandOpts.BudgetBytes = codec.MinBudgetBytes
		}
		data, err := codec.EncodeROIPlane(capImg.Plane(b), roi, bandOpts)
		if err != nil {
			errs[b] = fmt.Errorf("sat: encoding band %d: %w", b, err)
			return
		}
		streams[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return container.Pack(streams), nil
}

// MaskOverheadBytes is the downlink metadata cost of the per-band ROI
// masks for one capture (one bit per tile per band with a non-empty ROI).
func MaskOverheadBytes(perBandROI []*raster.TileMask) int64 {
	var total int64
	for _, roi := range perBandROI {
		if roi != nil && roi.Count() > 0 {
			total += codec.ROIMaskBytes(roi.Grid)
		}
	}
	return total
}
