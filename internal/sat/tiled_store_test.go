package sat

import (
	"math"
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/raster"
)

// tiledStoreOpts is the tiled storage-codec profile of these tests.
func tiledStoreOpts() codec.Options {
	o := codec.DefaultOptions()
	o.Tiled = true
	return o
}

// tiledStoreImage builds a deterministic 4-band test reference spanning
// several 64px codec tiles.
func tiledStoreImage(seed, w, h int) *raster.Image {
	im := raster.New(w, h, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		p := im.Plane(b)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p[y*w+x] = float32(0.5 + 0.3*math.Sin(float64(seed+b)+float64(x)/7) +
					0.15*math.Cos(float64(y)/11))
			}
		}
	}
	return im
}

func newTiledStore(t *testing.T, cfg CacheConfig) *RefCache {
	t.Helper()
	cfg.Compress = true
	cfg.StoreBPP = 6
	cfg.Codec = tiledStoreOpts()
	c, err := NewBoundedRefCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVisitRegionMatchesCroppedVisit is the region-visit property: on a
// tiled compressed store, VisitRegion — which entropy-decodes only the
// codec tiles the rectangle touches — returns exactly the crop of a full
// Visit's decode, and the tile counters record the saving.
func TestVisitRegionMatchesCroppedVisit(t *testing.T) {
	const w, h = 192, 128 // 3x2 codec tiles
	c := newTiledStore(t, CacheConfig{})
	c.Put(3, tiledStoreImage(1, w, h), 0)

	rects := [][4]int{{0, 0, 64, 64}, {32, 32, 64, 64}, {100, 60, 92, 68}, {-10, -10, 30, 30}, {0, 0, w, h}}
	for _, r := range rects {
		// Region-visit FIRST: a resident full decode would short-circuit
		// the tiled path, so each rect gets a fresh store.
		cr := newTiledStore(t, CacheConfig{})
		cr.Put(3, tiledStoreImage(1, w, h), 0)
		reg, err := cr.VisitRegion(3, 1, r[0], r[1], r[2], r[3])
		if err != nil {
			t.Fatalf("region %v: %v", r, err)
		}
		full := cr.Visit(3, 1)
		x0, y0 := max(r[0], 0), max(r[1], 0)
		x1, y1 := min(r[0]+r[2], w), min(r[1]+r[3], h)
		if reg.Image.Width != x1-x0 || reg.Image.Height != y1-y0 {
			t.Fatalf("region %v: got %dx%d", r, reg.Image.Width, reg.Image.Height)
		}
		if reg.Day != full.Day {
			t.Fatalf("region %v: day %d, visit day %d", r, reg.Day, full.Day)
		}
		for b := 0; b < full.Image.NumBands(); b++ {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if got, want := reg.Image.At(b, x-x0, y-y0), full.Image.At(b, x, y); got != want {
						t.Fatalf("region %v band %d (%d,%d): %v != %v", r, b, x, y, got, want)
					}
				}
			}
		}
	}

	// The single-tile rect decodes 1 of 6 tiles per band.
	cr := newTiledStore(t, CacheConfig{})
	cr.Put(3, tiledStoreImage(1, w, h), 0)
	if _, err := cr.VisitRegion(3, 1, 0, 0, 64, 64); err != nil {
		t.Fatal(err)
	}
	decoded, total := cr.TileStats()
	bands := int64(len(raster.PlanetBands()))
	if decoded != 1*bands || total != 6*bands {
		t.Fatalf("TileStats = %d/%d, want %d/%d", decoded, total, bands, 6*bands)
	}

	// Misses and degenerate rectangles.
	if lr, err := c.VisitRegion(99, 1, 0, 0, 8, 8); err != nil || lr != nil {
		t.Fatalf("missing loc: (%v, %v), want (nil, nil)", lr, err)
	}
	if _, err := c.VisitRegion(3, 1, w, h, 8, 8); err == nil {
		t.Fatal("out-of-bounds region accepted")
	}
	if _, err := c.VisitRegion(3, 1, 0, 0, 0, 8); err == nil {
		t.Fatal("empty region accepted")
	}
}

// TestVisitRegionRawStore pins the raw-store crop path.
func TestVisitRegionRawStore(t *testing.T) {
	const w, h = 96, 64
	c := NewRefCache()
	im := tiledStoreImage(2, w, h)
	c.Put(1, im, 0)
	reg, err := c.VisitRegion(1, 1, 16, 8, 40, 24)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < im.NumBands(); b++ {
		for y := 0; y < 24; y++ {
			for x := 0; x < 40; x++ {
				if reg.Image.At(b, x, y) != im.At(b, x+16, y+8) {
					t.Fatalf("band %d (%d,%d) differs", b, x, y)
				}
			}
		}
	}
	if lr, err := c.VisitRegion(5, 1, 0, 0, 4, 4); err != nil || lr != nil {
		t.Fatalf("missing loc: (%v, %v), want (nil, nil)", lr, err)
	}
}

// TestDecodedTileCapAccounting pins the tile-granular decode-LRU bound:
// with room for exactly one reference's tiles, alternating visits to two
// locations re-decode every time; with room for both, the second round is
// served from the LRU.
func TestDecodedTileCapAccounting(t *testing.T) {
	const w, h = 128, 128 // 2x2 codec tiles -> weight 4
	build := func(tileCap int) *RefCache {
		c := newTiledStore(t, CacheConfig{DecodedTileCap: tileCap})
		c.Put(0, tiledStoreImage(3, w, h), 0)
		c.Put(1, tiledStoreImage(4, w, h), 0)
		return c
	}
	visitBoth := func(c *RefCache) {
		for round := 0; round < 2; round++ {
			for loc := 0; loc < 2; loc++ {
				if c.Visit(loc, round+1) == nil {
					t.Fatal("unexpected miss")
				}
			}
		}
	}
	tight := build(4) // one entry's worth of tiles
	visitBoth(tight)
	if decodes, hits := tight.DecodeStats(); decodes != 4 || hits != 0 {
		t.Fatalf("tight cap: %d decodes, %d hits; want 4, 0", decodes, hits)
	}
	roomy := build(8)
	visitBoth(roomy)
	if decodes, hits := roomy.DecodeStats(); decodes != 2 || hits != 2 {
		t.Fatalf("roomy cap: %d decodes, %d hits; want 2, 2", decodes, hits)
	}
}
