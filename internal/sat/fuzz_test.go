package sat

import (
	"bytes"
	"testing"

	"earthplus/internal/codec"
	"earthplus/internal/noise"
	"earthplus/internal/raster"
)

// FuzzStoreFrameMutation is the lossy-link acceptance fuzz: mutate the
// bytes of a RefUpdate.StoreFrame (the storage-codec container frame a
// compressed on-board store installs verbatim) with an arbitrary
// byte-splice, and assert rejection-not-corruption — either the CRC/parse
// gate (ValidateFrame, what core's delivery loop runs before PutFrame)
// rejects the frame, or the surviving bytes are the original frame and
// decode to the original content. A mutated frame that both passed the
// gate and decoded to different content would mean the satellite silently
// spliced garbage into its reference store.
func FuzzStoreFrameMutation(f *testing.F) {
	im := raster.New(16, 16, raster.PlanetBands())
	for b := 0; b < im.NumBands(); b++ {
		noise.New(uint64(9000+b)).FillFBM(im.Plane(b), 16, 16, 4, 3)
	}
	frame, err := EncodeStoredRef(im, testStoreBPP, codec.DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	want, err := DecodeStoredRef(frame, im.Width, im.Height, im.Bands)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(0, []byte{0x80}, len(frame))            // single-bit flip in the header
	f.Add(len(frame)/2, []byte{0xFF}, len(frame)) // payload corruption
	f.Add(len(frame)-1, []byte{1}, len(frame))    // CRC trailer corruption
	f.Add(0, []byte(nil), len(frame)/2)           // truncation
	f.Add(0, []byte(nil), 0)                      // total loss
	f.Add(5, []byte{0, 0, 0}, len(frame))         // zero XOR: frame unchanged

	f.Fuzz(func(t *testing.T, pos int, xor []byte, keep int) {
		rx := append([]byte(nil), frame...)
		if keep < 0 {
			keep = 0
		}
		if keep < len(rx) {
			rx = rx[:keep]
		}
		for i, x := range xor {
			if p := pos + i; p >= 0 && p < len(rx) {
				rx[p] ^= x
			}
		}
		if err := ValidateFrame(rx); err != nil {
			return // rejected whole: the store keeps its stale reference
		}
		// The gate passed: the mutation must not have changed any byte
		// that matters, and the decode must be the original content.
		if !bytes.Equal(rx, frame) {
			t.Fatalf("altered frame (%d vs %d bytes) passed the CRC gate", len(rx), len(frame))
		}
		got, err := DecodeStoredRef(rx, im.Width, im.Height, im.Bands)
		if err != nil {
			t.Fatalf("validated frame failed to decode: %v", err)
		}
		if !got.Equal(want) {
			t.Fatal("validated frame decoded to different content")
		}
	})
}
