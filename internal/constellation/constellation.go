// Package constellation models the fleet-scale ground segment the paper's
// deployment regime implies: N ground stations, each serving at most one
// satellite per contact window, with per-contact uplink budgets replacing
// the flat per-day budget, and a deterministic cross-satellite contact
// scheduler that lifts PackUplink's three-class priority (re-seeds →
// deltas → demoted) from within one satellite to across the fleet. It also
// carries the event-driven workload: wildfire/flood-style change events
// whose tracked metric is time-to-usable-image (events.go).
package constellation

import (
	"fmt"
	"sort"

	"earthplus/internal/sim"
)

// DefaultStations is the station count the "constellation" registry switch
// enables when no explicit "stations" param is given.
const DefaultStations = 2

// DefaultContactsPerStation is each station's daily contact-window count
// (the Doves Table 1 contact cadence, orbit.DovesSpec().ContactsPerDay).
const DefaultContactsPerStation = 7

// Config parameterises the contended ground-station model. The zero value
// (Stations 0) disables it, keeping the flat per-day uplink budget.
type Config struct {
	// Stations is the number of ground stations; each serves at most one
	// satellite per contact window. 0 disables the constellation model.
	Stations int
	// ContactsPerStation is each station's contact windows per day
	// (0 = DefaultContactsPerStation, the Doves cadence).
	ContactsPerStation int
	// ContactBudgetBytes is the uplink byte budget of ONE contact window.
	// 0 derives it from the environment's flat per-day budget divided by
	// ContactsPerStation (so a satellite that wins every window of one
	// station recovers its old daily budget); negative means unlimited.
	ContactBudgetBytes int64
}

// Enabled reports whether the contended ground-station model is on.
func (c Config) Enabled() bool { return c.Stations > 0 }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Stations < 0 {
		return fmt.Errorf("constellation: Stations must be non-negative, got %d", c.Stations)
	}
	if c.ContactsPerStation < 0 {
		return fmt.Errorf("constellation: ContactsPerStation must be non-negative, got %d", c.ContactsPerStation)
	}
	return nil
}

// contactsPerStation resolves the per-station window count.
func (c Config) contactsPerStation() int {
	if c.ContactsPerStation > 0 {
		return c.ContactsPerStation
	}
	return DefaultContactsPerStation
}

// WindowsPerDay is the fleet-wide contact capacity: every station's
// windows for one day.
func (c Config) WindowsPerDay() int { return c.Stations * c.contactsPerStation() }

// ResolveContactBudget resolves the per-contact uplink budget against the
// environment's flat per-day budget: an explicit positive budget wins, 0
// derives flatPerDay/ContactsPerStation, and a negative value (or a
// non-positive flat budget to derive from) means unlimited (-1).
func (c Config) ResolveContactBudget(flatPerDay int64) int64 {
	switch {
	case c.ContactBudgetBytes > 0:
		return c.ContactBudgetBytes
	case c.ContactBudgetBytes < 0:
		return -1
	case flatPerDay > 0:
		b := flatPerDay / int64(c.contactsPerStation())
		if b < 1 {
			b = 1
		}
		return b
	default:
		return -1
	}
}

// Demand summarises one satellite's pending uplink work for a day, counted
// per location in the same three classes PackUplink schedules within one
// satellite (station.Ground.PendingUplink computes it from mirror state).
type Demand struct {
	Sat int
	// Reseeds counts locations whose mirror is nil (evicted or
	// never-delivered references): the satellite is flying blind there.
	Reseeds int
	// Deltas counts locations holding a stale reference a routine delta
	// update would freshen.
	Deltas int
	// Demoted counts re-seeds past the retransmit bound, demoted behind
	// routine deltas.
	Demoted int
}

// Total is the satellite's pending location count.
func (d Demand) Total() int { return d.Reseeds + d.Deltas + d.Demoted }

// class ranks a demand for cross-satellite priority: satellites with any
// re-seed backlog outrank satellites with only routine deltas, which
// outrank satellites whose only pending work is demoted retransmits —
// PackUplink's class order lifted across the fleet.
func (d Demand) class() int {
	switch {
	case d.Reseeds > 0:
		return 0
	case d.Deltas > 0:
		return 1
	default:
		return 2
	}
}

// Stats aggregates a run's scheduling outcomes.
type Stats struct {
	// Contacts counts booked (station, window) slots.
	Contacts int64 `json:"contacts"`
	// Stalls counts satellite-days with pending uplink work that won no
	// contact window — the observable signal of station contention.
	Stalls int64 `json:"contention_stalls"`
	// ReseedBacklog sums, over scheduling days, the re-seed locations
	// pending fleet-wide at schedule time.
	ReseedBacklog int64 `json:"reseed_backlog"`
	// MaxReseedBacklog is the worst single-day re-seed backlog.
	MaxReseedBacklog int64 `json:"max_reseed_backlog"`
}

// Scheduler books satellites into station contact windows, one satellite
// per window, deterministically: demands are ordered by (class, pending
// count descending, satellite id), the first pass grants every demanding
// satellite at most one window, and — when contacts carry a finite byte
// budget — a second pass hands leftover windows back out in the same
// priority order so the fleet's capacity is never idle while work is
// pending. It runs on the engine's sequential day-end barrier and is not
// safe for concurrent use.
type Scheduler struct {
	cfg   Config
	stats Stats
}

// NewScheduler validates the configuration and returns a scheduler.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("constellation: scheduler needs Stations > 0")
	}
	return &Scheduler{cfg: cfg}, nil
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Stats returns the aggregated scheduling outcomes so far.
func (s *Scheduler) Stats() Stats { return s.stats }

// Schedule books day's contact windows. Satellites with no pending work
// book nothing; satellites with pending work that win no window count as
// contention stalls. The returned contacts are sorted by (Sat, Station,
// Window) — the order the uplink packer consumes them in — with Bytes
// zero (the packer fills consumption in afterwards). Window slots are
// dealt round-robin across stations so consecutive priorities land on
// distinct stations.
func (s *Scheduler) Schedule(day int, demands []Demand) []sim.ContactRecord {
	active := make([]Demand, 0, len(demands))
	var reseeds int64
	for _, d := range demands {
		reseeds += int64(d.Reseeds)
		if d.Total() > 0 {
			active = append(active, d)
		}
	}
	s.stats.ReseedBacklog += reseeds
	if reseeds > s.stats.MaxReseedBacklog {
		s.stats.MaxReseedBacklog = reseeds
	}
	if len(active) == 0 {
		return nil
	}
	sort.Slice(active, func(i, j int) bool {
		if ci, cj := active[i].class(), active[j].class(); ci != cj {
			return ci < cj
		}
		if active[i].Total() != active[j].Total() {
			return active[i].Total() > active[j].Total()
		}
		return active[i].Sat < active[j].Sat
	})

	windows := s.cfg.WindowsPerDay()
	var contacts []sim.ContactRecord
	book := func(slot int, sat int) {
		contacts = append(contacts, sim.ContactRecord{
			Station: slot % s.cfg.Stations,
			Window:  slot / s.cfg.Stations,
			Sat:     sat,
			Day:     day,
		})
	}
	slot := 0
	for i := 0; i < len(active) && slot < windows; i++ {
		book(slot, active[i].Sat)
		slot++
	}
	if len(active) > windows {
		s.stats.Stalls += int64(len(active) - windows)
	}
	// Work-conserving second pass: with a finite per-contact budget, extra
	// windows mean extra bytes, so leftover capacity cycles back over the
	// demanding satellites in priority order. With an unlimited budget one
	// contact already carries everything, so extra windows would be noise.
	if s.cfg.ContactBudgetBytes >= 0 && len(active) > 0 {
		for i := 0; slot < windows; i++ {
			book(slot, active[i%len(active)].Sat)
			slot++
		}
	}
	s.stats.Contacts += int64(len(contacts))
	sort.Slice(contacts, func(i, j int) bool {
		if contacts[i].Sat != contacts[j].Sat {
			return contacts[i].Sat < contacts[j].Sat
		}
		if contacts[i].Station != contacts[j].Station {
			return contacts[i].Station < contacts[j].Station
		}
		return contacts[i].Window < contacts[j].Window
	})
	return contacts
}
