package constellation

import (
	"testing"

	"earthplus/internal/raster"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

func eventScene() *scene.Scene {
	return scene.New(scene.LargeConstellation(scene.Quick))
}

func TestEventRegionMarksIntersectingTiles(t *testing.T) {
	grid := raster.MustTileGrid(64, 64, 16)
	// A small disc inside tile 0 marks exactly that tile.
	region := eventRegion(grid, scene.EventInfo{CX: 8, CY: 8, Radius: 4})
	for tile := 0; tile < grid.NumTiles(); tile++ {
		if region[tile] != (tile == 0) {
			t.Fatalf("tile %d marked=%v", tile, region[tile])
		}
	}
	// A disc straddling the first tile corner marks the 2x2 neighborhood.
	region = eventRegion(grid, scene.EventInfo{CX: 16, CY: 16, Radius: 4})
	marked := 0
	for _, m := range region {
		if m {
			marked++
		}
	}
	if marked != 4 {
		t.Fatalf("corner-straddling event marked %d tiles, want 4", marked)
	}
}

func TestNewEventTrackerMatchesEventsIn(t *testing.T) {
	sc := eventScene()
	from, to := 40, 55
	want := 0
	for loc := 0; loc < sc.NumLocations(); loc++ {
		want += len(sc.EventsIn(loc, from, to))
	}
	if want == 0 {
		t.Fatal("scene generated no events in the window; tracker test is vacuous")
	}
	tr := NewEventTracker(sc, from, to, 0)
	events := tr.Events()
	if len(events) != want {
		t.Fatalf("tracked %d events, EventsIn reports %d", len(events), want)
	}
	if tr.Threshold() != DefaultUsablePSNR {
		t.Fatalf("threshold = %v, want default", tr.Threshold())
	}
	for _, ev := range events {
		if ev.UsableDay != -1 {
			t.Fatalf("event %+v usable before any visit", ev.Info)
		}
		if ev.Info.Day < from || ev.Info.Day >= to {
			t.Fatalf("event onset %d outside [%d, %d)", ev.Info.Day, from, to)
		}
	}
	s := tr.Summary()
	if s.Tracked != want || s.Usable != 0 || s.ThresholdPSNR != DefaultUsablePSNR {
		t.Fatalf("pre-visit summary = %+v", s)
	}
}

// TestObserveVisitMarksUsable drives the tracker with perfect
// reconstructions (the captured image itself): every tracked event becomes
// usable on its first clear post-onset visit, and the summary's
// time-to-usable figures follow.
func TestObserveVisitMarksUsable(t *testing.T) {
	sc := eventScene()
	from, to := 40, 50
	tr := NewEventTracker(sc, from, to, 0)
	if len(tr.Events()) == 0 {
		t.Fatal("no events to observe")
	}
	grid := sc.Grid()
	for day := from; day < to+25; day++ {
		cap := sc.CaptureImage(0, day, 0)
		rec := sim.Record{Day: day, Loc: 0, Sat: 0}
		tr.ObserveVisit(&rec, cap, cap.Image, grid)
		sc.ReleaseCapture(cap)
	}
	s := tr.Summary()
	if s.Usable == 0 {
		t.Fatalf("no event became usable under perfect reconstruction: %+v", s)
	}
	if s.MeanDaysToUsable < 0 || s.MaxDaysToUsable < 0 {
		t.Fatalf("negative time-to-usable: %+v", s)
	}
	if float64(s.MaxDaysToUsable) < s.MeanDaysToUsable {
		t.Fatalf("max %d below mean %v", s.MaxDaysToUsable, s.MeanDaysToUsable)
	}
	for _, ev := range tr.Events() {
		if ev.UsableDay >= 0 && ev.UsableDay < ev.Info.Day {
			t.Fatalf("event usable on day %d before onset %d", ev.UsableDay, ev.Info.Day)
		}
	}
}

// TestObserveVisitIgnoresPreOnsetVisits: a visit before the event's onset
// must not mark it usable, however good the imagery.
func TestObserveVisitIgnoresPreOnsetVisits(t *testing.T) {
	sc := eventScene()
	tr := NewEventTracker(sc, 45, 50, 0)
	events := tr.Events()
	if len(events) == 0 {
		t.Skip("no events in window")
	}
	grid := sc.Grid()
	for day := 30; day < 45; day++ {
		cap := sc.CaptureImage(0, day, 0)
		tr.ObserveVisit(&sim.Record{Day: day, Loc: 0}, cap, cap.Image, grid)
		sc.ReleaseCapture(cap)
	}
	if s := tr.Summary(); s.Usable != 0 {
		t.Fatalf("pre-onset visits marked events usable: %+v", s)
	}
}
