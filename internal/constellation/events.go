package constellation

import (
	"math"
	"sort"

	"earthplus/internal/raster"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

// DefaultUsablePSNR is the region-PSNR threshold at which downlinked
// imagery of an event counts as usable by a downstream consumer (wildfire
// monitoring, flood mapping): comfortably above visibly-degraded but below
// archival quality, so the metric measures delivery latency, not codec
// ceiling.
const DefaultUsablePSNR = 32.0

// TrackedEvent is one scene change event under time-to-usable-image
// observation.
type TrackedEvent struct {
	Info scene.EventInfo
	// UsableDay is the first day a downlinked frame scored at least the
	// tracker's threshold PSNR over the event's tiles; -1 while pending.
	UsableDay int

	region []bool
}

// EventTracker implements sim.Observer: it watches every ground
// reconstruction and records, per change event, the first day the
// downlinked imagery of the event region reaches a usable PSNR — the
// event workload's time-to-usable-image metric. Per-location state is only
// touched from that location's (ordered) engine worker, matching the
// Observer contract, so the tracker adds no locks and no nondeterminism.
type EventTracker struct {
	threshold float64
	byLoc     map[int][]*TrackedEvent
	tracked   int
}

// NewEventTracker tracks every event of sc with onset in [fromDay, toDay)
// across all locations. thresholdPSNR <= 0 selects DefaultUsablePSNR. The
// event regions are resolved to tile masks against the scene's grid.
func NewEventTracker(sc *scene.Scene, fromDay, toDay int, thresholdPSNR float64) *EventTracker {
	if thresholdPSNR <= 0 {
		thresholdPSNR = DefaultUsablePSNR
	}
	grid := sc.Grid()
	t := &EventTracker{threshold: thresholdPSNR, byLoc: map[int][]*TrackedEvent{}}
	for loc := 0; loc < sc.NumLocations(); loc++ {
		for _, ev := range sc.EventsIn(loc, fromDay, toDay) {
			t.byLoc[loc] = append(t.byLoc[loc], &TrackedEvent{
				Info:      ev,
				UsableDay: -1,
				region:    eventRegion(grid, ev),
			})
			t.tracked++
		}
	}
	return t
}

// eventRegion marks the tiles whose bounds intersect the event's disc
// bounding box, via the shared tile-range helper rather than scanning the
// whole grid. The float box converts exactly: an integer tile edge tx1
// satisfies tx1 > x0 iff tx1 > floor(x0), and tx0 < x1 iff tx0 < ceil(x1).
func eventRegion(grid raster.TileGrid, ev scene.EventInfo) []bool {
	region := make([]bool, grid.NumTiles())
	x0 := int(math.Floor(ev.CX - ev.Radius))
	y0 := int(math.Floor(ev.CY - ev.Radius))
	x1 := int(math.Ceil(ev.CX + ev.Radius))
	y1 := int(math.Ceil(ev.CY + ev.Radius))
	c0, r0, c1, r1 := grid.TileRange(x0, y0, x1, y1)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			region[r*grid.Cols+c] = true
		}
	}
	return region
}

// ObserveVisit scores the reconstruction over every still-pending event of
// the visited location whose onset has passed.
func (t *EventTracker) ObserveVisit(rec *sim.Record, cap *scene.Capture, recon *raster.Image, grid raster.TileGrid) {
	for _, ev := range t.byLoc[rec.Loc] {
		if ev.UsableDay >= 0 || rec.Day < ev.Info.Day {
			continue
		}
		psnr := sim.EvalPSNRRegion(cap, recon, grid, ev.region)
		if !math.IsNaN(psnr) && psnr >= t.threshold {
			ev.UsableDay = rec.Day
		}
	}
}

// Threshold returns the usable-PSNR threshold in force.
func (t *EventTracker) Threshold() float64 { return t.threshold }

// Events returns the tracked events in (location, onset, draw) order.
func (t *EventTracker) Events() []TrackedEvent {
	keys := make([]int, 0, len(t.byLoc))
	for k := range t.byLoc {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]TrackedEvent, 0, t.tracked)
	for _, loc := range keys {
		for _, ev := range t.byLoc[loc] {
			out = append(out, *ev)
		}
	}
	return out
}

// EventSummary condenses a run's time-to-usable-image outcomes.
type EventSummary struct {
	// Tracked counts events under observation; Usable counts those whose
	// imagery reached the threshold within the run.
	Tracked int `json:"tracked"`
	Usable  int `json:"usable"`
	// MeanDaysToUsable and MaxDaysToUsable measure days from event onset
	// to the first usable downlinked frame, over usable events.
	MeanDaysToUsable float64 `json:"mean_days_to_usable"`
	MaxDaysToUsable  int     `json:"max_days_to_usable"`
	// ThresholdPSNR is the usable-image bar applied.
	ThresholdPSNR float64 `json:"threshold_psnr"`
}

// Summary aggregates the tracker's outcomes.
func (t *EventTracker) Summary() EventSummary {
	s := EventSummary{ThresholdPSNR: t.threshold}
	var daysSum int
	for _, ev := range t.Events() {
		s.Tracked++
		if ev.UsableDay < 0 {
			continue
		}
		s.Usable++
		d := ev.UsableDay - ev.Info.Day
		daysSum += d
		if d > s.MaxDaysToUsable {
			s.MaxDaysToUsable = d
		}
	}
	if s.Usable > 0 {
		s.MeanDaysToUsable = float64(daysSum) / float64(s.Usable)
	}
	return s
}
