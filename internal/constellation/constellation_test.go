package constellation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConfigValidateAndEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config should be disabled")
	}
	if !(Config{Stations: 2}).Enabled() {
		t.Fatal("2 stations should be enabled")
	}
	if err := (Config{Stations: -1}).Validate(); err == nil {
		t.Fatal("expected error for negative stations")
	}
	if err := (Config{Stations: 1, ContactsPerStation: -2}).Validate(); err == nil {
		t.Fatal("expected error for negative contacts per station")
	}
	if err := (Config{Stations: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsPerDay(t *testing.T) {
	if w := (Config{Stations: 2}).WindowsPerDay(); w != 2*DefaultContactsPerStation {
		t.Fatalf("default windows = %d", w)
	}
	if w := (Config{Stations: 3, ContactsPerStation: 2}).WindowsPerDay(); w != 6 {
		t.Fatalf("windows = %d, want 6", w)
	}
}

func TestResolveContactBudget(t *testing.T) {
	cases := []struct {
		cfg  Config
		flat int64
		want int64
	}{
		// Explicit positive budget wins over everything.
		{Config{Stations: 1, ContactBudgetBytes: 500}, 10000, 500},
		// Negative means unlimited.
		{Config{Stations: 1, ContactBudgetBytes: -3}, 10000, -1},
		// Zero derives flat / contactsPerStation.
		{Config{Stations: 1, ContactsPerStation: 4}, 10000, 2500},
		{Config{Stations: 1}, 7 * 842, 842},
		// Derived budget floors at one byte.
		{Config{Stations: 1, ContactsPerStation: 100}, 3, 1},
		// Nothing to derive from: unlimited.
		{Config{Stations: 1}, 0, -1},
		{Config{Stations: 1}, -5, -1},
	}
	for i, tc := range cases {
		if got := tc.cfg.ResolveContactBudget(tc.flat); got != tc.want {
			t.Fatalf("case %d: ResolveContactBudget(%d) = %d, want %d", i, tc.flat, got, tc.want)
		}
	}
}

func TestNewSchedulerRejectsDisabledOrInvalid(t *testing.T) {
	if _, err := NewScheduler(Config{}); err == nil {
		t.Fatal("expected error for disabled config")
	}
	if _, err := NewScheduler(Config{Stations: -2}); err == nil {
		t.Fatal("expected error for invalid config")
	}
	s, err := NewScheduler(Config{Stations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Stations != 2 {
		t.Fatalf("config = %+v", s.Config())
	}
}

// TestSchedulePriorityOrder checks the cross-satellite class order: a
// satellite with re-seed backlog outranks one with more pending deltas,
// which outranks demoted-only work.
func TestSchedulePriorityOrder(t *testing.T) {
	s, err := NewScheduler(Config{Stations: 1, ContactsPerStation: 1, ContactBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	contacts := s.Schedule(0, []Demand{
		{Sat: 0, Deltas: 9},
		{Sat: 1, Reseeds: 1},
		{Sat: 2, Demoted: 5},
	})
	if len(contacts) != 1 || contacts[0].Sat != 1 {
		t.Fatalf("single window should go to the re-seeding satellite, got %+v", contacts)
	}
	if st := s.Stats(); st.Stalls != 2 || st.Contacts != 1 {
		t.Fatalf("stats = %+v, want 2 stalls / 1 contact", st)
	}
}

// TestScheduleTieBreaks checks ordering within a class: more pending work
// first, then satellite id.
func TestScheduleTieBreaks(t *testing.T) {
	s, err := NewScheduler(Config{Stations: 1, ContactsPerStation: 2, ContactBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	contacts := s.Schedule(0, []Demand{
		{Sat: 5, Deltas: 1},
		{Sat: 3, Deltas: 4},
		{Sat: 4, Deltas: 1},
	})
	if len(contacts) != 2 {
		t.Fatalf("contacts = %+v", contacts)
	}
	got := map[int]bool{}
	for _, ct := range contacts {
		got[ct.Sat] = true
	}
	// Sat 3 has the most pending work; sats 4 and 5 tie at one delta and 4
	// wins on id.
	if !got[3] || !got[4] {
		t.Fatalf("windows went to %v, want sats 3 and 4", got)
	}
}

// TestScheduleWorkConserving: with a finite per-contact budget, leftover
// windows cycle back over demanding satellites; with an unlimited budget
// one contact per satellite suffices.
func TestScheduleWorkConserving(t *testing.T) {
	finite, err := NewScheduler(Config{Stations: 2, ContactsPerStation: 3, ContactBudgetBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	contacts := finite.Schedule(0, []Demand{{Sat: 0, Deltas: 2}, {Sat: 1, Reseeds: 1}})
	if len(contacts) != 6 {
		t.Fatalf("finite budget should fill all 6 windows, got %d", len(contacts))
	}
	unlimited, err := NewScheduler(Config{Stations: 2, ContactsPerStation: 3, ContactBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	contacts = unlimited.Schedule(0, []Demand{{Sat: 0, Deltas: 2}, {Sat: 1, Reseeds: 1}})
	if len(contacts) != 2 {
		t.Fatalf("unlimited budget should book one window per satellite, got %d", len(contacts))
	}
}

func TestScheduleIdleFleetBooksNothing(t *testing.T) {
	s, err := NewScheduler(Config{Stations: 2, ContactBudgetBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if contacts := s.Schedule(3, []Demand{{Sat: 0}, {Sat: 1}}); contacts != nil {
		t.Fatalf("idle fleet booked %+v", contacts)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("idle day changed stats: %+v", st)
	}
}

func TestScheduleReseedBacklogStats(t *testing.T) {
	s, err := NewScheduler(Config{Stations: 1, ContactBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(0, []Demand{{Sat: 0, Reseeds: 3}, {Sat: 1, Reseeds: 2}})
	s.Schedule(1, []Demand{{Sat: 0, Reseeds: 1}})
	st := s.Stats()
	if st.ReseedBacklog != 6 {
		t.Fatalf("ReseedBacklog = %d, want 6", st.ReseedBacklog)
	}
	if st.MaxReseedBacklog != 5 {
		t.Fatalf("MaxReseedBacklog = %d, want 5", st.MaxReseedBacklog)
	}
}

// TestScheduleNeverDoubleBooksStations is the scheduler's core safety
// property: whatever the demand pattern, no (station, window) slot serves
// two satellites in one day, every slot is in range, and a satellite with
// pending work either wins a window or is counted as a stall.
func TestScheduleNeverDoubleBooksStations(t *testing.T) {
	f := func(stations, contacts uint8, seed int64, nSats uint8, finite bool) bool {
		cfg := Config{
			Stations:           1 + int(stations)%4,
			ContactsPerStation: 1 + int(contacts)%5,
			ContactBudgetBytes: -1,
		}
		if finite {
			cfg.ContactBudgetBytes = 1000
		}
		s, err := NewScheduler(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		demands := make([]Demand, 1+int(nSats)%40)
		active := 0
		for i := range demands {
			demands[i] = Demand{
				Sat:     i,
				Reseeds: rng.Intn(3),
				Deltas:  rng.Intn(3),
				Demoted: rng.Intn(2),
			}
			if demands[i].Total() > 0 {
				active++
			}
		}
		before := s.Stats()
		booked := s.Schedule(7, demands)
		after := s.Stats()

		slots := map[[2]int]bool{}
		winners := map[int]bool{}
		for _, ct := range booked {
			if ct.Day != 7 {
				return false
			}
			if ct.Station < 0 || ct.Station >= cfg.Stations {
				return false
			}
			if ct.Window < 0 || ct.Window >= cfg.ContactsPerStation {
				return false
			}
			key := [2]int{ct.Station, ct.Window}
			if slots[key] {
				return false // one station, one satellite per window
			}
			slots[key] = true
			winners[ct.Sat] = true
		}
		if len(booked) > cfg.WindowsPerDay() {
			return false
		}
		stalls := int(after.Stalls - before.Stalls)
		wantStalls := active - cfg.WindowsPerDay()
		if wantStalls < 0 {
			wantStalls = 0
		}
		return stalls == wantStalls && len(winners) == active-stalls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleDeterministicUnderInputOrder: the booking is a pure function
// of the demand SET — input order must not matter (the core builds demands
// from map-backed ground state, so this is load-bearing for the engine's
// determinism contract).
func TestScheduleDeterministicUnderInputOrder(t *testing.T) {
	demands := []Demand{
		{Sat: 0, Deltas: 2}, {Sat: 1, Reseeds: 1}, {Sat: 2, Demoted: 1},
		{Sat: 3, Deltas: 2}, {Sat: 4, Reseeds: 2}, {Sat: 5},
	}
	mk := func() *Scheduler {
		s, err := NewScheduler(Config{Stations: 2, ContactsPerStation: 2, ContactBudgetBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want := mk().Schedule(1, demands)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Demand(nil), demands...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := mk().Schedule(1, shuffled); !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: schedule depends on input order:\n%+v\nvs\n%+v", trial, want, got)
		}
	}
}
