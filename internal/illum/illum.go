// Package illum implements the paper's illumination alignment: the
// illumination condition affects pixel values linearly (§5, citing [72]),
// so a capture is aligned to its reference by ordinary least squares over
// the mutually cloud-free pixels.
package illum

import "sort"

// Model is a linear pixel-value mapping capture ≈ Gain*reference + Offset.
type Model struct {
	Gain   float64
	Offset float64
}

// Identity is the no-op model used when a fit is impossible.
var Identity = Model{Gain: 1, Offset: 0}

// minSamples is the fewest usable pixels for a trustworthy fit.
const minSamples = 16

// Fit estimates the linear illumination model mapping ref to cap by least
// squares over pixels where use[i] is true (a nil use means all pixels).
// It returns Identity with ok=false when too few pixels are usable or the
// reference has no variance.
func Fit(ref, cap []float32, use []bool) (Model, bool) {
	var n int
	var sx, sy, sxx, sxy float64
	for i := range ref {
		if use != nil && !use[i] {
			continue
		}
		x, y := float64(ref[i]), float64(cap[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < minSamples {
		return Identity, false
	}
	fn := float64(n)
	varX := sxx - sx*sx/fn
	if varX < 1e-9 {
		return Identity, false
	}
	gain := (sxy - sx*sy/fn) / varX
	// A non-positive or wild gain means the "reference" explains nothing
	// (e.g. nearly-disjoint content); refuse to warp the capture with it.
	if gain < 0.2 || gain > 5 {
		return Identity, false
	}
	offset := (sy - gain*sx) / fn
	return Model{Gain: gain, Offset: offset}, true
}

// FitRobust estimates the illumination model like Fit but with trimmed
// refits: after an initial least-squares pass it discards the pixels with
// the largest absolute residuals and refits. Undetected haze brightens
// pixels one-sidedly, so a plain OLS fit is biased bright — and because
// every downloaded tile passes through this fit, the bias would compound
// into a systematic illumination drift of the whole ground archive.
// Trimming the residual tail removes the haze pixels from the fit.
func FitRobust(ref, cap []float32, use []bool, rounds int, trimFrac float64) (Model, bool) {
	m, ok := Fit(ref, cap, use)
	if !ok {
		return m, false
	}
	if trimFrac <= 0 || trimFrac >= 1 {
		return m, ok
	}
	cur := make([]bool, len(ref))
	if use != nil {
		copy(cur, use)
	} else {
		for i := range cur {
			cur[i] = true
		}
	}
	resid := make([]float64, len(ref))
	for r := 0; r < rounds; r++ {
		// Residuals under the current model, over current pixels.
		var abs []float64
		for i := range ref {
			if !cur[i] {
				continue
			}
			resid[i] = float64(cap[i]) - (m.Gain*float64(ref[i]) + m.Offset)
			if resid[i] < 0 {
				abs = append(abs, -resid[i])
			} else {
				abs = append(abs, resid[i])
			}
		}
		if len(abs) < 4*minSamples {
			return m, ok
		}
		sort.Float64s(abs)
		cut := abs[int(float64(len(abs))*(1-trimFrac))]
		next := make([]bool, len(cur))
		kept := 0
		for i := range ref {
			if !cur[i] {
				continue
			}
			d := resid[i]
			if d < 0 {
				d = -d
			}
			if d <= cut {
				next[i] = true
				kept++
			}
		}
		if kept < 2*minSamples {
			return m, ok
		}
		cur = next
		m2, ok2 := Fit(ref, cap, cur)
		if !ok2 {
			return m, ok
		}
		m = m2
	}
	return m, true
}

// Normalize maps capture-domain values back into reference-domain values,
// in place: v -> (v - Offset) / Gain. After Normalize, the capture can be
// differenced against the reference without illumination bias.
func (m Model) Normalize(cap []float32) {
	if m == Identity {
		return
	}
	invGain := float32(1 / m.Gain)
	off := float32(m.Offset)
	for i, v := range cap {
		cap[i] = (v - off) * invGain
	}
}

// Apply maps reference-domain values into capture-domain values, in place.
func (m Model) Apply(ref []float32) {
	if m == Identity {
		return
	}
	g, off := float32(m.Gain), float32(m.Offset)
	for i, v := range ref {
		ref[i] = v*g + off
	}
}
