package illum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversExactLinearModel(t *testing.T) {
	ref := make([]float32, 256)
	cap := make([]float32, 256)
	for i := range ref {
		ref[i] = float32(i) / 256
		cap[i] = 1.1*ref[i] + 0.03
	}
	m, ok := Fit(ref, cap, nil)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(m.Gain-1.1) > 1e-4 || math.Abs(m.Offset-0.03) > 1e-4 {
		t.Fatalf("model = %+v, want gain 1.1 offset 0.03", m)
	}
}

func TestFitRecoversUnderNoiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gain := 0.85 + rng.Float64()*0.3 // 0.85 - 1.15 as in the scene model
		offset := (rng.Float64() - 0.5) * 0.1
		ref := make([]float32, 1024)
		cap := make([]float32, 1024)
		for i := range ref {
			ref[i] = rng.Float32()
			cap[i] = float32(gain)*ref[i] + float32(offset) + float32(rng.NormFloat64()*0.005)
		}
		m, ok := Fit(ref, cap, nil)
		return ok && math.Abs(m.Gain-gain) < 0.02 && math.Abs(m.Offset-offset) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFitHonoursUseMask(t *testing.T) {
	ref := make([]float32, 200)
	cap := make([]float32, 200)
	use := make([]bool, 200)
	for i := range ref {
		ref[i] = float32(i) / 200
		if i < 100 {
			cap[i] = 0.9*ref[i] + 0.01 // clean pixels
			use[i] = true
		} else {
			cap[i] = 0.95 // "cloud": junk that must be ignored
		}
	}
	m, ok := Fit(ref, cap, use)
	if !ok || math.Abs(m.Gain-0.9) > 1e-3 || math.Abs(m.Offset-0.01) > 1e-3 {
		t.Fatalf("masked fit = %+v ok=%v", m, ok)
	}
}

func TestFitRejectsDegenerateInputs(t *testing.T) {
	// Too few samples.
	if _, ok := Fit(make([]float32, 8), make([]float32, 8), nil); ok {
		t.Fatal("fit accepted 8 samples")
	}
	// Constant reference: no variance.
	ref := make([]float32, 64)
	cap := make([]float32, 64)
	for i := range ref {
		ref[i] = 0.5
		cap[i] = float32(i) / 64
	}
	if m, ok := Fit(ref, cap, nil); ok || m != Identity {
		t.Fatalf("constant-ref fit = %+v ok=%v", m, ok)
	}
	// Anti-correlated (negative gain) content must be refused.
	for i := range ref {
		ref[i] = float32(i) / 64
		cap[i] = 1 - ref[i]
	}
	if _, ok := Fit(ref, cap, nil); ok {
		t.Fatal("fit accepted negative gain")
	}
}

func TestNormalizeInvertsApply(t *testing.T) {
	m := Model{Gain: 1.07, Offset: -0.02}
	orig := []float32{0.1, 0.5, 0.9, 0.33}
	vals := append([]float32(nil), orig...)
	m.Apply(vals)
	m.Normalize(vals)
	for i := range vals {
		if math.Abs(float64(vals[i]-orig[i])) > 1e-6 {
			t.Fatalf("round trip drifted at %d: %v vs %v", i, vals[i], orig[i])
		}
	}
}

func TestIdentityIsNoOp(t *testing.T) {
	vals := []float32{0.25, 0.75}
	Identity.Normalize(vals)
	Identity.Apply(vals)
	if vals[0] != 0.25 || vals[1] != 0.75 {
		t.Fatalf("identity modified values: %v", vals)
	}
}

func TestNormalizeRemovesIlluminationBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := make([]float32, 512)
	cap := make([]float32, 512)
	for i := range ref {
		ref[i] = rng.Float32()
		cap[i] = 1.12*ref[i] + 0.04
	}
	m, ok := Fit(ref, cap, nil)
	if !ok {
		t.Fatal("fit failed")
	}
	m.Normalize(cap)
	var maxDiff float64
	for i := range ref {
		if d := math.Abs(float64(cap[i] - ref[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("after normalisation max residual = %v", maxDiff)
	}
}
