package servebench

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestScrapeCounter(t *testing.T) {
	text := strings.Join([]string{
		`# HELP earthplus_cache_hits_total Result-cache hits, by tier.`,
		`# TYPE earthplus_cache_hits_total counter`,
		`earthplus_cache_hits_total{tier="mem"} 7`,
		`earthplus_cache_hits_total{tier="disk"} 3`,
		`earthplus_cache_misses_total 5`,
		`earthplus_cache_misses_total_not_this_one 100`,
	}, "\n")
	if got := scrapeCounter(text, "earthplus_cache_hits_total"); got != 10 {
		t.Fatalf("summed labelled counter = %d, want 10", got)
	}
	if got := scrapeCounter(text, `earthplus_cache_hits_total{tier="disk"}`); got != 3 {
		t.Fatalf("single series = %d, want 3", got)
	}
	if got := scrapeCounter(text, "earthplus_cache_misses_total"); got != 5 {
		t.Fatalf("unlabelled counter = %d, want 5 (prefix-collision leak?)", got)
	}
	if got := scrapeCounter(text, "earthplus_absent_total"); got != 0 {
		t.Fatalf("absent series = %d, want 0", got)
	}
}

func TestPercentileMs(t *testing.T) {
	sorted := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond,
	}
	if got := percentileMs(sorted, 0.50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := percentileMs(sorted, 0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Fatalf("empty slice percentile = %v, want 0", got)
	}
}

func TestMakePayloadsDeterministic(t *testing.T) {
	a := makePayloads(3, 64)
	b := makePayloads(3, 64)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("payload %d differs between runs", i)
		}
	}
	if bytes.Equal(a[0], a[1]) {
		t.Fatal("distinct payloads are identical")
	}
}

// TestRunPhaseAggregates drives the phase runner against a stub handler:
// every client must issue its full sweep and the aggregate must count
// each request exactly once.
func TestRunPhaseAggregates(t *testing.T) {
	var hits int64
	gate := make(chan struct{}, 1)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gate <- struct{}{}
		hits++
		<-gate
		w.WriteHeader(http.StatusOK)
	})
	const clients = 4
	ph, err := runPhase(h, makePayloads(benchDistinct, 16), clients)
	if err != nil {
		t.Fatal(err)
	}
	want := clients * benchPerClient
	if ph.Requests != want || hits != int64(want) {
		t.Fatalf("requests = %d (handler saw %d), want %d", ph.Requests, hits, want)
	}
	if ph.ReqPerSec <= 0 || ph.P50Ms < 0 || ph.P99Ms < ph.P50Ms {
		t.Fatalf("implausible phase %+v", ph)
	}

	fail := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	})
	if _, err := runPhase(fail, makePayloads(1, 16), 1); err == nil {
		t.Fatal("non-200 responses must fail the phase")
	}
}

// TestRunLevelColdWarm runs one real level at a single client: the warm
// phase must be served by the restarted server's disk tier, and the
// scraped counters must show the hits and misses the level generated.
func TestRunLevelColdWarm(t *testing.T) {
	res := &Result{}
	payloads := makePayloads(benchDistinct, benchWidth*benchHeight*benchBands*2)
	lv, err := runLevel(1, payloads, res)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Cold.Requests != benchPerClient || lv.Warm.Requests != benchPerClient {
		t.Fatalf("phase request counts: cold %d warm %d", lv.Cold.Requests, lv.Warm.Requests)
	}
	if lv.WarmDiskHits != benchDistinct {
		t.Fatalf("warm disk hits = %d, want %d (persistence across restart broken?)", lv.WarmDiskHits, benchDistinct)
	}
	if res.CacheMisses != benchDistinct {
		t.Fatalf("cold misses = %d, want %d", res.CacheMisses, benchDistinct)
	}
	if res.CacheHits < int64(benchDistinct) {
		t.Fatalf("cache hits = %d, want >= %d", res.CacheHits, benchDistinct)
	}
	res.Levels = append(res.Levels, lv)

	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"clients", "cold", "warm", "coalesced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered snapshot missing %q:\n%s", want, out)
		}
	}
	if r := res.ID(); r == "" {
		t.Fatal("empty ID")
	}
}
