// Package servebench load-tests the serving tier in-process: it drives
// serve.Server through its http.Handler with httptest requests (no
// sockets, so the 1024-client level needs no fd budget) and snapshots
// p50/p99 latency and throughput per concurrency level, cold cache
// versus warm.
//
// "Cold" is a fresh server on an empty persistent store: every distinct
// payload costs a codec pass, and concurrent identical requests exercise
// the coalescing layer. "Warm" RESTARTS the server — a new serve.New on
// the same cache directory — so the warm numbers measure exactly what the
// persistent tier promises: yesterday's responses served after a restart
// without re-running the codec. The cache-hit/coalesce counters come from
// scraping the servers' own /metrics endpoints, so the snapshot also
// proves the exposition format round-trips.
package servebench

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"earthplus/internal/metrics"
	"earthplus/pkg/earthplus/serve"
)

// Bench geometry: one working set of distinct encode payloads, each
// client sweeping the whole set once per phase from its own starting
// offset — so equal-offset clients collide on identical requests at the
// same instant, which is what the coalescing layer exists for.
const (
	benchWidth     = 128
	benchHeight    = 128
	benchBands     = 4
	benchDistinct  = 16
	benchPerClient = benchDistinct
)

// benchLevels are the measured client concurrency levels.
var benchLevels = []int{1, 64, 1024}

// Phase is one measured pass (cold or warm) at a concurrency level.
type Phase struct {
	Requests  int     `json:"requests"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	ReqPerSec float64 `json:"req_per_sec"`
}

// Level is the cold/warm pair at one client count. WarmDiskHits is the
// restart-survival evidence: warm-phase hits served from the on-disk
// tier the cold server persisted.
type Level struct {
	Clients      int   `json:"clients"`
	Cold         Phase `json:"cold"`
	Warm         Phase `json:"warm"`
	WarmDiskHits int64 `json:"warm_disk_hits"`
}

// Result is the serving-tier load snapshot (BENCH_serve.json).
type Result struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Width      int     `json:"width"`
	Height     int     `json:"height"`
	Bands      int     `json:"bands"`
	Distinct   int     `json:"distinct_payloads"`
	PerClient  int     `json:"requests_per_client"`
	Levels     []Level `json:"levels"`
	// Counters scraped from /metrics, summed over every server the run
	// built. CacheHits and Coalesced must be non-zero for the run to have
	// exercised the tiers it claims to measure (CI asserts exactly that).
	CacheHits     int64 `json:"cache_hits"`
	CacheHitsDisk int64 `json:"cache_hits_disk"`
	CacheMisses   int64 `json:"cache_misses"`
	Coalesced     int64 `json:"coalesced"`
}

const encodePath = "/v1/encode?width=128&height=128&bands=4"

// Run measures every concurrency level and, when outPath is non-empty,
// writes the JSON snapshot there.
func Run(outPath string) (*Result, error) {
	res := &Result{
		Schema:     "earthplus-servebench/1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Width:      benchWidth,
		Height:     benchHeight,
		Bands:      benchBands,
		Distinct:   benchDistinct,
		PerClient:  benchPerClient,
	}
	payloads := makePayloads(benchDistinct, benchWidth*benchHeight*benchBands*2)
	for _, clients := range benchLevels {
		lv, err := runLevel(clients, payloads, res)
		if err != nil {
			return nil, fmt.Errorf("servebench: %d clients: %w", clients, err)
		}
		res.Levels = append(res.Levels, lv)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runLevel measures one client count: cold server on an empty store,
// then a restarted server on the same store. Scraped counters accumulate
// into res.
func runLevel(clients int, payloads [][]byte, res *Result) (Level, error) {
	dir, err := os.MkdirTemp("", "earthplus-servebench-")
	if err != nil {
		return Level{}, err
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{CacheDir: dir}

	lv := Level{Clients: clients}
	cold := serve.New(cfg).Handler()
	if lv.Cold, err = runPhase(cold, payloads, clients); err != nil {
		return Level{}, fmt.Errorf("cold: %w", err)
	}
	res.accumulate(scrapeMetrics(cold))

	// The restart: a new server process-equivalent on the same directory.
	warm := serve.New(cfg).Handler()
	if lv.Warm, err = runPhase(warm, payloads, clients); err != nil {
		return Level{}, fmt.Errorf("warm: %w", err)
	}
	text := scrapeMetrics(warm)
	res.accumulate(text)
	lv.WarmDiskHits = scrapeCounter(text, `earthplus_cache_hits_total{tier="disk"}`)
	return lv, nil
}

// runPhase fires clients goroutines, each sweeping every payload once
// starting at its own offset, and aggregates the latencies.
func runPhase(h http.Handler, payloads [][]byte, clients int) (Phase, error) {
	durs := make([][]time.Duration, clients)
	errs := make([]error, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			own := make([]time.Duration, 0, benchPerClient)
			for i := 0; i < benchPerClient; i++ {
				body := payloads[(c+i)%len(payloads)]
				req := httptest.NewRequest(http.MethodPost, encodePath, bytes.NewReader(body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				own = append(own, time.Since(t0))
				if rec.Code != http.StatusOK {
					errs[c] = fmt.Errorf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
					return
				}
			}
			durs[c] = own
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return Phase{}, err
		}
	}
	var all []time.Duration
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return Phase{
		Requests:  len(all),
		P50Ms:     percentileMs(all, 0.50),
		P99Ms:     percentileMs(all, 0.99),
		ReqPerSec: float64(len(all)) / wall.Seconds(),
	}, nil
}

// percentileMs reads the p-th percentile of a sorted latency slice, in
// milliseconds.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// makePayloads builds n deterministic pseudo-random sample bodies
// (xorshift64, fixed seed) so repeated runs measure the same working set.
func makePayloads(n, size int) [][]byte {
	out := make([][]byte, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		b := make([]byte, size)
		for j := 0; j+8 <= size; j += 8 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			binary.LittleEndian.PutUint64(b[j:], state)
		}
		out[i] = b
	}
	return out
}

// scrapeMetrics fetches a server's /metrics text.
func scrapeMetrics(h http.Handler) string {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// scrapeCounter sums every sample of a metric (all label sets when name
// is unlabelled, one series when name carries its labels).
func scrapeCounter(text, name string) int64 {
	var total int64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		i := strings.LastIndexByte(rest, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseInt(rest[i+1:], 10, 64); err == nil {
			total += v
		}
	}
	return total
}

// accumulate folds one server's scraped counters into the snapshot.
func (r *Result) accumulate(text string) {
	r.CacheHits += scrapeCounter(text, "earthplus_cache_hits_total")
	r.CacheHitsDisk += scrapeCounter(text, `earthplus_cache_hits_total{tier="disk"}`)
	r.CacheMisses += scrapeCounter(text, "earthplus_cache_misses_total")
	r.Coalesced += scrapeCounter(text, "earthplus_coalesced_requests_total")
}

// ID implements experiments.Result.
func (r *Result) ID() string { return "Serving-tier load snapshot" }

// Render implements experiments.Result.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "in-process load: %d distinct %dx%dx%d encode payloads, %d requests/client\n",
		r.Distinct, r.Width, r.Height, r.Bands, r.PerClient)
	fmt.Fprintln(w, "(cold = fresh server on an empty store; warm = RESTARTED server on the same store)")
	rows := [][]string{{"clients", "phase", "requests", "p50 ms", "p99 ms", "req/s", "disk hits"}}
	for _, lv := range r.Levels {
		rows = append(rows, []string{
			strconv.Itoa(lv.Clients), "cold",
			strconv.Itoa(lv.Cold.Requests),
			fmt.Sprintf("%.3f", lv.Cold.P50Ms),
			fmt.Sprintf("%.3f", lv.Cold.P99Ms),
			fmt.Sprintf("%.0f", lv.Cold.ReqPerSec),
			"-",
		})
		rows = append(rows, []string{
			"", "warm",
			strconv.Itoa(lv.Warm.Requests),
			fmt.Sprintf("%.3f", lv.Warm.P50Ms),
			fmt.Sprintf("%.3f", lv.Warm.P99Ms),
			fmt.Sprintf("%.0f", lv.Warm.ReqPerSec),
			strconv.FormatInt(lv.WarmDiskHits, 10),
		})
	}
	metrics.Table(w, rows)
	fmt.Fprintf(w, "cache hits: %d (disk %d), misses: %d, coalesced: %d\n",
		r.CacheHits, r.CacheHitsDisk, r.CacheMisses, r.Coalesced)
	return nil
}
