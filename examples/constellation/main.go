// Constellation scaling: the paper's §4.1 argument and Fig 19 — the more
// satellites share their freshest cloud-free observations, the younger the
// references and the fewer tiles anyone has to download.
//
// This example grows a fleet from 1 to 16 satellites over the same
// location and prints how the reference age and the compression ratio
// respond.
//
// Run with: go run ./examples/constellation
package main

import (
	"fmt"
	"log"

	"earthplus/internal/core"
	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

func main() {
	cfg := scene.LargeConstellationSampled(scene.Quick)
	fmt.Println("fleet  captures  ref age (d)  tiles/capture  compression")
	for _, n := range []int{1, 2, 4, 8, 16} {
		env := &sim.Env{
			Scene:    scene.New(cfg),
			Orbit:    orbit.Constellation{Satellites: n, RevisitDays: 12},
			Downlink: link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		}
		sys, err := core.New(env, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(env, sys, 0, 40, 120)
		if err != nil {
			log.Fatal(err)
		}
		s := sim.Summarize(res, env.Downlink)
		ratio := 0.0
		if s.MeanTileFrac > 0 {
			ratio = 1 / s.MeanTileFrac
		}
		fmt.Printf("%5d  %8d  %11.1f  %12.0f%%  %10.1fx\n",
			n, s.Captures, s.MeanRefAge, s.MeanTileFrac*100, ratio)
	}
	fmt.Println("\n(paper Fig 19: compression grows from ~3x at one satellite to ~10x at sixteen)")
}
