// Constellation scaling: the paper's §4.1 argument and Fig 19 — the more
// satellites share their freshest cloud-free observations, the younger the
// references and the fewer tiles anyone has to download.
//
// This example grows a fleet from 1 to 16 satellites over the same
// location (through the public pkg/earthplus API) and prints how the
// reference age and the compression ratio respond.
//
// Run with: go run ./examples/constellation
package main

import (
	"fmt"
	"log"

	"earthplus/pkg/earthplus"
)

func main() {
	cfg := earthplus.LargeConstellationSampled(earthplus.SizeQuick)
	fmt.Println("fleet  captures  ref age (d)  tiles/capture  compression")
	for _, n := range []int{1, 2, 4, 8, 16} {
		env := &earthplus.Env{
			Scene:    earthplus.NewScene(cfg),
			Orbit:    earthplus.Constellation{Satellites: n, RevisitDays: 12},
			Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		}
		sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := earthplus.Run(env, sys, 0, 40, 120)
		if err != nil {
			log.Fatal(err)
		}
		s := earthplus.Summarize(res, env.Downlink)
		ratio := 0.0
		if s.MeanTileFrac > 0 {
			ratio = 1 / s.MeanTileFrac
		}
		fmt.Printf("%5d  %8d  %11.1f  %12.0f%%  %10.1fx\n",
			n, s.Captures, s.MeanRefAge, s.MeanTileFrac*100, ratio)
	}
	fmt.Println("\n(paper Fig 19: compression grows from ~3x at one satellite to ~10x at sixteen)")
}
