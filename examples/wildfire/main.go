// Wildfire watch: the paper's motivating application (§1) — how quickly a
// ground system can react to a sudden terrestrial change when the downlink
// budget is fixed.
//
// A fixed downlink budget per contact covers some number of locations.
// Because Earth+ downloads ~4x fewer bytes per capture, the same budget
// covers ~4x more locations per pass — so the forest-fire scar at an
// unmonitored location is seen correspondingly sooner. This example
// measures both systems' per-capture bills on a forest scene, injects a
// burn scar, and reports when each system's download actually carries the
// changed tiles. Both systems come from the public registry.
//
// Run with: go run ./examples/wildfire
package main

import (
	"fmt"
	"log"

	"earthplus/pkg/earthplus"
)

func main() {
	// A forest-heavy rich-content slice: locations B and G are forests.
	cfg := earthplus.RichContent(earthplus.SizeQuick)
	cfg.Locations = cfg.Locations[1:3] // B (forest), C (mountain)

	mkEnv := func() *earthplus.Env {
		return &earthplus.Env{
			Scene:    earthplus.NewScene(cfg),
			Orbit:    earthplus.Constellation{Satellites: 4, RevisitDays: 8},
			Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		}
	}

	run := func(system string) earthplus.Summary {
		env := mkEnv()
		sys, err := earthplus.NewSystem(system, env, earthplus.SystemSpec{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := earthplus.Run(env, sys, 0, 40, 100)
		if err != nil {
			log.Fatal(err)
		}
		return earthplus.Summarize(res, env.Downlink)
	}

	earth := run(earthplus.SystemEarthPlus)
	kodan := run(earthplus.SystemKodan)

	fmt.Println("forest watch, 60 days, two locations:")
	fmt.Printf("  Earth+ mean bytes/capture: %8.0f (PSNR %.1f dB)\n", earth.MeanDownBytes, earth.MeanPSNR)
	fmt.Printf("  Kodan  mean bytes/capture: %8.0f (PSNR %.1f dB)\n", kodan.MeanDownBytes, kodan.MeanPSNR)

	// A fixed downlink budget covers budget/bytes-per-capture locations
	// per contact. More covered locations -> shorter gaps between looks
	// at any given forest -> faster fire reaction.
	const contactBudget = 2 << 20 // a deliberately tight 2 MiB per contact
	locsEarth := float64(contactBudget) / earth.MeanDownBytes
	locsKodan := float64(contactBudget) / kodan.MeanDownBytes
	fmt.Printf("\nwith a %d KiB contact budget:\n", contactBudget>>10)
	fmt.Printf("  Earth+ covers %.1f locations/contact, Kodan %.1f\n", locsEarth, locsKodan)
	// Mean reaction delay to an event at a random monitored location is
	// ~half the revisit interval, which shrinks with coverage.
	fmt.Printf("  -> reaction delay improves ~%.1fx (paper: up to 3x faster forest-fire alerts)\n",
		locsEarth/locsKodan)

	// And show the change actually arriving: inject a burn scar into the
	// scene's future and confirm the next Earth+ download carries it.
	demoBurnScarDelivery()
}

// demoBurnScarDelivery shows a changed-tile download end to end: the
// "burn scar" is an abrupt darkening of several tiles, which the change
// detector flags and the ground archive then reflects.
func demoBurnScarDelivery() {
	env := &earthplus.Env{
		Scene:    earthplus.NewScene(earthplus.LargeConstellationSampled(earthplus.SizeQuick)),
		Orbit:    earthplus.Constellation{Satellites: 4, RevisitDays: 4},
		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
	sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := earthplus.Run(env, sys, 0, 20, 40); err != nil {
		log.Fatal(err)
	}
	// Find a clear day just after the warm-up (references for the next
	// few days' passes are already on board) and burn a block of tiles
	// into that capture before processing.
	day, satID := -1, 0
	for d := 40; d < 43; d++ {
		if env.Scene.CloudCoverageTarget(0, d) < 0.02 {
			if visits := env.Orbit.VisitsOn(0, d); len(visits) > 0 {
				day, satID = d, visits[0]
				break
			}
		}
	}
	if day < 0 {
		day = 40
	}
	cap := env.Scene.CaptureImage(0, day, satID)
	grid := env.Scene.Grid()
	for _, tile := range []int{40, 41, 52, 53} {
		x0, y0, x1, y1 := grid.Bounds(tile)
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				for b := 0; b < cap.Image.NumBands(); b++ {
					cap.Image.Set(b, x, y, cap.Image.At(b, x, y)*0.25) // charred
				}
			}
		}
	}
	out, err := sys.OnCapture(cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nburn-scar capture: %.0f%% of tiles downloaded (%d bytes);"+
		" scar tiles were flagged and the ground archive now shows the darkened forest\n",
		out.DownTilesPerBand/float64(out.TotalTiles)*100, out.DownBytes)
}
