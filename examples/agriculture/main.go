// Precision agriculture: the paper's §2.1 application — frequent access to
// the vegetation-sensitive bands (red edge B5-B7, NIR B8/B8a) over farm
// parcels.
//
// This example runs Earth+ (from the public registry) over an agricultural
// location for a season and shows the band heterogeneity the paper's
// Fig 14 reports: vegetation bands change (and therefore cost) more than
// atmosphere-observing bands, and Earth+ tracks each band independently.
//
// Run with: go run ./examples/agriculture
package main

import (
	"fmt"
	"log"

	"earthplus/pkg/earthplus"
)

func main() {
	cfg := earthplus.RichContent(earthplus.SizeQuick)
	cfg.Locations = []earthplus.Location{cfg.Locations[5]} // F: agriculture

	env := &earthplus.Env{
		Scene:    earthplus.NewScene(cfg),
		Orbit:    earthplus.Constellation{Satellites: 4, RevisitDays: 8},
		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
	sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{})
	if err != nil {
		log.Fatal(err)
	}
	// A 90-day growing season.
	res, err := earthplus.Run(env, sys, 0, 40, 130)
	if err != nil {
		log.Fatal(err)
	}

	bands := env.Scene.Bands()
	byBand := make([]float64, len(bands))
	n := 0
	for _, r := range res.Records {
		if r.Dropped || len(r.PerBandBytes) == 0 {
			continue
		}
		for b, v := range r.PerBandBytes {
			byBand[b] += float64(v)
		}
		n++
	}
	if n == 0 {
		log.Fatal("no usable captures")
	}
	labels := make([]string, len(bands))
	values := make([]float64, len(bands))
	var veg, atmos, vegN, atmosN float64
	for b, info := range bands {
		labels[b] = info.Name
		values[b] = byBand[b] / float64(n)
		switch info.Kind {
		case earthplus.KindVegetation:
			veg += values[b]
			vegN++
		case earthplus.KindAtmosphere:
			atmos += values[b]
			atmosN++
		}
	}

	fmt.Println("season over an agricultural parcel (90 days, Earth+):")
	earthplus.Bar(new(printer), "mean downlink bytes per capture, by band:", labels, values, "B", 40)
	fmt.Printf("\nvegetation bands (B5-B8a) average %.0f B/capture — volatile chlorophyll, but\n", veg/vegN)
	fmt.Printf("reference-based encoding still helps; atmosphere bands (B1, B9, B10) average\n")
	fmt.Printf("%.0f B/capture — the air changes between every pair of captures, so nearly\n", atmos/atmosN)
	fmt.Println("everything must be downloaded (the paper's Fig 14 finds the least savings there).")
	s := earthplus.Summarize(res, env.Downlink)
	fmt.Printf("season totals: %.0f%% of tiles per capture, PSNR %.1f dB, reference age %.1f days\n",
		s.MeanTileFrac*100, s.MeanPSNR, s.MeanRefAge)
}

// printer adapts fmt printing for earthplus.Bar.
type printer struct{}

func (printer) Write(p []byte) (int, error) { fmt.Print(string(p)); return len(p), nil }
