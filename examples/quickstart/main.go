// Quickstart: one location, one week, one satellite pair — Earth+ against
// naively re-downloading everything, written entirely against the public
// pkg/earthplus API.
//
// It builds a tiny synthetic scene, constructs Earth+ by name from the
// system registry, runs it end to end (capture -> cheap cloud removal ->
// illumination alignment -> downsampled change detection -> ROI encoding
// -> ground archive -> reference upload), and prints the per-capture
// downlink bill next to the full-image bill.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"earthplus/pkg/earthplus"
)

func main() {
	// A sunny coastal location observed by a small 4-satellite fleet.
	env := &earthplus.Env{
		Scene:    earthplus.NewScene(earthplus.LargeConstellationSampled(earthplus.SizeQuick)),
		Orbit:    earthplus.Constellation{Satellites: 4, RevisitDays: 4},
		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}

	sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{})
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap on days 0-20, then evaluate a two-week window.
	res, err := earthplus.Run(env, sys, 0, 20, 34)
	if err != nil {
		log.Fatal(err)
	}

	grid := env.Scene.Grid()
	rawBytes := int64(grid.ImageW) * int64(grid.ImageH) * int64(len(env.Scene.Bands())) * 2
	fmt.Println("day  cloud  tiles  Earth+ bytes  full-image bytes  PSNR")
	var earthTotal, fullTotal int64
	for _, r := range res.Records {
		if r.Dropped {
			fmt.Printf("%3d  %4.0f%%  (dropped: too cloudy to be useful)\n", r.Day, r.TrueCoverage*100)
			continue
		}
		earthTotal += r.DownBytes
		fullTotal += rawBytes
		fmt.Printf("%3d  %4.0f%%  %4.0f%%  %12d  %16d  %5.1f dB\n",
			r.Day, r.TrueCoverage*100, r.DownTileFrac*100, r.DownBytes, rawBytes, r.PSNR)
	}
	fmt.Printf("\ntwo-week downlink: Earth+ %d bytes vs %d raw (%.0fx less)\n",
		earthTotal, fullTotal, float64(fullTotal)/float64(earthTotal))
	s := earthplus.Summarize(res, env.Downlink)
	fmt.Printf("mean reference age %.1f days; uplink spent %.0f bytes/day on reference updates\n",
		s.MeanRefAge, s.MeanUpBytesPerDay)
}
