// Package earthplus is a from-scratch Go reproduction of "Earth+: On-Board
// Satellite Imagery Compression Leveraging Historical Earth Observations"
// (ASPLOS 2025). The root package only anchors the module; the system lives
// under internal/ (see DESIGN.md for the inventory) and is exercised by the
// executables in cmd/ and the runnable examples in examples/.
package earthplus

// Version identifies this reproduction's release line.
const Version = "1.0.0"
