// Package earthplus is a from-scratch Go reproduction of "Earth+: On-Board
// Satellite Imagery Compression Leveraging Historical Earth Observations"
// (ASPLOS 2025). The root package only anchors the module; the supported
// entry point is the public, versioned API in pkg/earthplus (plus the
// HTTP serving layer in pkg/earthplus/serve), which every executable in
// cmd/ and every runnable example in examples/ goes through. The system
// itself lives under internal/.
//
// # Layout
//
//   - pkg/earthplus — the public API: the system registry (Earth+ and the
//     baselines constructed by name from one SystemSpec), the framed
//     multi-band container codestream with streaming Encoder/Decoder, and
//     the typed error taxonomy. pkg/earthplus/serve exposes the codec
//     over HTTP (/v1/encode, /v1/decode, /v1/info, /metrics, /healthz)
//     as a production serving tier: a persistent content-addressed
//     result cache, per-client token-bucket rate limiting (429 with an
//     escalating Retry-After), request coalescing and bounded workers,
//     with every error path answering taxonomy JSON. The in-process
//     load harness behind earthplus-bench -only servebench
//     (internal/servebench) tracks its latency and throughput in
//     BENCH_serve.json.
//   - internal/container, internal/registry, internal/eperr — the frame
//     format, the registry and the error taxonomy underneath the API.
//   - internal/codec — the layered wavelet codec every encode funnels
//     through: CDF 9/7 transform, dead-zone quantisation, embedded
//     bit-plane coding with an adaptive binary arithmetic coder, quality
//     layers, exact byte budgets, ROI mosaics, a lossless 5/3 mode, and
//     a tiled (EPT1) profile — fixed 64x64 tiles coded independently
//     with an RLGR fast path, a seekable tile index and region decode.
//   - internal/wavelet, internal/arith — the transform and entropy-coding
//     primitives underneath it.
//   - internal/sat, internal/station, internal/core — the on-board
//     pipeline, the ground segment, and Earth+ itself wired from both.
//   - internal/baseline — the Kodan and SatRoI comparison systems.
//   - internal/sim, internal/scene, internal/orbit, internal/experiments —
//     the constellation simulator, synthetic Earth scenes and every
//     regenerated table/figure of the paper's evaluation.
//   - internal/constellation — the fleet-scale ground segment: contended
//     ground stations, the cross-satellite contact scheduler and the
//     event-driven time-to-usable-image workload.
//   - internal/cli — the flag plumbing shared by all cmds.
//
// # Simulation engine
//
// internal/sim is a sharded parallel engine: each simulated day is split
// by location onto a bounded worker pool (sim.Env.Parallelism, the
// -simworkers flag; 0 = GOMAXPROCS), each location's visit sequence stays
// ordered, records merge back into serial walk order, and day-end uplink
// packing runs on a sequential barrier. Results are byte-identical to the
// serial path at any worker count (only the measured wall-clock timing
// fields vary); determinism is pinned under -race by the internal/sim
// tests and tracked by the BENCH_sim.json snapshot
// (cmd/earthplus-bench -only simbench). Scene synthesis draws capture
// buffers from pools (scene.ReleaseCapture recycles them), and
// sim.RunStream plus sim.Accumulator aggregate records without retaining
// them.
//
// # Storage model
//
// On-board reference caches are capacity-bounded (sat.RefCache): each
// satellite's store honours a byte budget (core.Config.StorageBytes,
// registry param "storage_bytes", flag -storage; zero = Table 1's 360 GB
// default, negative = unlimited) with pluggable eviction policies
// ("lru" = least-recently-visited, "schedule" = farthest next planned
// visit; StrParams key "evict_policy", flag -evictpolicy). A capture
// whose reference was evicted is a first-class miss (Record.RefMiss) and
// falls back to reference-free encoding; every eviction invalidates the
// ground's mirror (station.Ground.InvalidateMirror) so the next uplink
// cycle re-seeds the reference in full — and PackUplink drains those
// re-seeds FIRST, before routine delta freshness updates, so a scarce
// uplink cannot starve the locations that just went to miss. Eviction
// decisions are pure functions of the visit schedule and run only on the
// engine's serial phases, so storage-bounded runs remain byte-identical
// at any worker count.
//
// With ref_compression=on (flag -refcompress, default off) the store
// holds each reference as its encoded codestream at the uplink's
// reference rate instead of raw 16-bit planes: footprints are the actual
// encoded bytes (~2-5x more locations per budget), Visit decodes lazily
// through a small decoded-plane LRU (the decode-on-visit cost model,
// whose decode count, LRU absorptions and measured wall-clock are
// recorded in BENCH_sim.json as ref_decode),
// uplink updates route their storage frame straight into the store
// (sat.RefCache.PutFrame), and the ground simulates the same storage
// codec on its mirrors (station.Config.CompressRefs) so delta uplinks
// stay byte-coherent. The storage sweep (earthplus-bench -only
// storagesweep; also embedded in the BENCH_sim.json snapshot) measures
// compression ratio, uplink use and reference residency against the
// budget for the raw and compressed Earth+ stores at equal budgets,
// both baselines, and both eviction policies at a fixed budget.
//
// # Constellation ground segment
//
// With the constellation model on (registry param "stations" or StrParams
// "constellation"="on", flag -stations, default off and byte-identical to
// the flat budget) the fleet's uplink is served by N contended ground
// stations, each handling at most one satellite per contact window
// (constellation.DefaultContactsPerStation windows per station per day),
// and the flat per-day uplink budget becomes a per-contact byte meter
// (param "contact_budget", flag -contactbudget; zero derives
// flat/contacts-per-station, negative = unlimited). A deterministic
// cross-satellite scheduler (constellation.Scheduler) books the windows on
// the engine's sequential day-end barrier, lifting PackUplink's
// three-class priority — re-seeds first, then delta freshness updates,
// then demoted retransmits — from within one satellite to across the
// fleet; satellites with pending work that win no window are counted as
// contention stalls. Booked contacts land in Result.Contacts, dump as
// sorted per-station trace lines (sim.WriteTrace), and aggregate into
// constellation.Stats. The companion event workload
// (constellation.EventTracker, a sim.Observer) watches every scene change
// event and records time-to-usable-image: days from event onset until a
// downlinked frame scores the usable PSNR bar over the event's tiles. The
// constellation sweep (earthplus-bench -only constsweep; embedded in
// BENCH_sim.json) measures quality, stalls, re-seed backlog and TTUI over
// fleet sizes x station counts, and fleet-scale determinism is pinned by
// the internal/sim tests (16 satellites, 2 stations, every worker count
// identical down to the contact log).
//
// # Performance
//
// The codec hot path is engineered for the paper's on-board compute
// envelope: steady-state encodes and decodes allocate only the returned
// buffers (scratch planes, significance maps, probability contexts and
// coder buffers are pooled), the bit-plane scan skips all-insignificant
// rows in bulk, sign bits travel as batched bypass bits, and multi-band
// images are coded by a bounded worker pool (codec.Options.Parallelism,
// package default codec.Parallelism, earthplus-bench/-sim flag -parallel).
// The tiled (EPT1) profile (codec.Options.Tiled, flag -tiledstore,
// registry param "tiled_store") trades a modest rate-distortion cost for
// a per-tile RLGR fast path — single-thread encode beats the monolithic
// coder by >2.5x at 256x256 — plus region decode whose latency tracks
// the tiles touched rather than the plane, tile-granular splices on the
// uplink and a per-tile worker pool. See README.md for the perf knobs
// and how to run the microbenchmarks, and cmd/earthplus-bench -only
// codecbench for the tracked BENCH_codec.json snapshot.
//
// The determinism, pooling and error-taxonomy invariants above are
// machine-enforced: tools/ houses a custom go/analysis suite
// (earthplus-lint: maporder, detsource, pooledescape, eperrboundary)
// that runs in CI and inside go test via internal/lintcheck. See the
// "Static analysis" section of README.md.
package earthplus

// Version identifies this reproduction's release line. This is the one
// place it is bumped; pkg/earthplus.Version re-exports it for API
// consumers.
const Version = "1.10.0"
