// Package lintcomment implements the suppression-comment contract shared
// by every earthplus-lint analyzer.
//
// A finding is suppressed by a comment of the form
//
//	//lint:<keyword> <reason>
//
// placed either on the flagged line or on the line immediately above it.
// The reason is mandatory: a bare //lint:deterministic with no
// justification does not suppress, so every exception in the tree
// documents why it is safe. Keywords are per-invariant, not per-analyzer:
// both maporder and detsource honor "deterministic".
package lintcomment

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppressed reports whether pos (a position inside one of files) is
// covered by a //lint:<keyword> comment with a non-empty reason on the
// same line or the line immediately above.
func Suppressed(fset *token.FileSet, files []*ast.File, pos token.Pos, keyword string) bool {
	var f *ast.File
	for _, ff := range files {
		if ff.FileStart <= pos && pos <= ff.FileEnd {
			f = ff
			break
		}
	}
	if f == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:"+keyword)
			if !ok {
				continue
			}
			// Reject both a longer keyword (//lint:deterministicish) and a
			// missing reason (//lint:deterministic alone).
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') || strings.TrimSpace(rest) == "" {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// PackageMatch reports whether pkgPath matches any comma-separated
// substring in list. An empty list matches nothing, so an analyzer
// configured with -packages="" is effectively off.
func PackageMatch(list, pkgPath string) bool {
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s != "" && strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}
