// Package detsource defines an analyzer that forbids wall-clock and
// entropy sources in the repo's deterministic packages.
//
// Everything the simulation records — codec output, uplink schedules,
// eviction decisions, fault outcomes — must be a pure function of its
// inputs and seeds, or runs stop being byte-identical across reruns and
// -simworkers counts. The only sanctioned wall-clock reads are the
// documented timing fields that Record.EqualIgnoringTimings excludes
// (EncodeSec, CloudSec, ChangeSec, DecodeStats wall time); each of those
// sites carries a //lint:deterministic annotation naming the field it
// feeds.
//
// Flagged in scoped packages:
//
//   - time.Now, time.Since, time.Until (wall clock);
//   - package-level math/rand and math/rand/v2 functions (globally and
//     randomly seeded) — explicitly seeded *rand.Rand values built with
//     rand.New(rand.NewSource(seed)) remain allowed;
//   - anything from crypto/rand.
package detsource

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"earthplus/tools/internal/analysis/lintcomment"
)

// DefaultPackages are the deterministic packages: the engine, the codec
// stack, both halves of the link, and the constellation scheduler.
const DefaultPackages = "internal/sim,internal/codec,internal/sat,internal/station,internal/link,internal/constellation"

var packages string

var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid wall-clock and entropy sources (time.Now, global rand) in deterministic packages",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated package path substrings the analyzer applies to")
}

// seededConstructors are the math/rand package-level functions that build
// explicitly-seeded generators instead of reading the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintcomment.PackageMatch(packages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			var why string
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					why = "reads the wall clock"
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					why = "draws from the global (randomly seeded) rand source"
				}
			case "crypto/rand":
				why = "draws system entropy"
			}
			if why == "" {
				return true
			}
			if lintcomment.Suppressed(pass.Fset, pass.Files, call.Pos(), "deterministic") {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"%s.%s %s inside a deterministic package: derive the value from sim inputs/seeds, or annotate a documented timing field with //lint:deterministic <reason>",
					fn.Pkg().Path(), fn.Name(), why),
			})
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves the called function, looking through selectors and
// parens; nil when the callee is not a named function (built-ins,
// function-typed variables, type conversions).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun // dot-imported or package-local
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
