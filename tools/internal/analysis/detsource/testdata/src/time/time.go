// Package time is a fixture stub: detsource matches on package path and
// function name, which this reproduces without depending on GOROOT.
package time

type Time struct{}

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func Until(t Time) Duration { return 0 }

func (t Time) Sub(u Time) Duration { return 0 }

func (d Duration) Seconds() float64 { return 0 }
