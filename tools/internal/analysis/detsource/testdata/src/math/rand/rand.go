// Package rand is a fixture stub for math/rand.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src} }

func NewSource(seed int64) Source { return nil }

func Intn(n int) int { return 0 }

func Float64() float64 { return 0 }

func (r *Rand) Intn(n int) int { return 0 }

func (r *Rand) Float64() float64 { return 0 }
