// Package clock is outside the analyzer's package scope: wall-clock reads
// in CLIs and benchmarks are legitimate.
package clock

import "time"

func Stamp() time.Time {
	return time.Now()
}
