// Package rand is a fixture stub for crypto/rand.
package rand

func Read(b []byte) (int, error) { return 0, nil }
