// Package fixture exercises detsource inside a scoped package path.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Wall reads the wall clock with no justification.
func Wall() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Elapsed uses the derived wall-clock helpers.
func Elapsed(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

// Annotated feeds a documented timing field excluded from equality.
func Annotated() float64 {
	start := time.Now() //lint:deterministic feeds Record.EncodeSec, excluded by EqualIgnoringTimings
	_ = start
	return 0
}

// GlobalRand draws from the globally seeded source.
func GlobalRand() int {
	return rand.Intn(10) // want "math/rand.Intn draws from the global"
}

// Seeded builds an explicit generator: constructors and methods are fine.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Entropy reads the system entropy pool.
func Entropy(b []byte) {
	crand.Read(b) // want "crypto/rand.Read draws system entropy"
}
