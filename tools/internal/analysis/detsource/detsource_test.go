package detsource_test

import (
	"testing"

	"earthplus/tools/internal/analysis/analysistest"
	"earthplus/tools/internal/analysis/detsource"
)

func TestScoped(t *testing.T) {
	analysistest.Run(t, detsource.Analyzer, "testdata/src", "internal/sim/fixture")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, detsource.Analyzer, "testdata/src", "cmd/clock")
}
