package maporder_test

import (
	"testing"

	"earthplus/tools/internal/analysis/analysistest"
	"earthplus/tools/internal/analysis/maporder"
)

func TestScoped(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src", "internal/sim/fixture")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src", "cmd/agg")
}
