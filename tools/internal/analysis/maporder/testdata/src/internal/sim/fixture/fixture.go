// Package fixture exercises maporder inside a scoped package path.
package fixture

import "sort"

// Sums float-accumulates in iteration order: the PR 2 bug class.
func Sums(m map[string]float64) float64 {
	var total float64
	for k, v := range m { // want "range over map m in a determinism-sensitive package"
		_ = k
		total += v
	}
	return total
}

// Count binds neither key nor value: order cannot be observed.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SortedKeys is the collect-then-sort idiom's first half: allowed.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Suppressed documents why order cannot reach an output.
func Suppressed(m map[int]int) int {
	s := 0
	//lint:deterministic integer sum is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

// BareSuppression lacks the mandatory reason, so it does not suppress.
func BareSuppression(m map[int]int) int {
	s := 0
	//lint:deterministic
	for _, v := range m { // want "range over map m in a determinism-sensitive package"
		s += v
	}
	return s
}
