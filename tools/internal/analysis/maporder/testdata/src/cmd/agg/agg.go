// Package agg is outside the analyzer's package scope: no findings.
package agg

func Join(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
