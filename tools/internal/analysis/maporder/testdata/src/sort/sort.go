// Package sort is a fixture stub: the analyzer only needs the call shape.
package sort

func Strings(x []string) {}
