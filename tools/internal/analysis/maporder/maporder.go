// Package maporder defines an analyzer that flags `range` over a map in
// the repo's determinism-sensitive packages.
//
// Earth+'s headline guarantee is bit-exact reproducibility: records,
// traces and uplink schedules must be byte-identical across -simworkers
// counts, reruns and fault seeds. Go randomises map iteration order, so a
// raw `for ... range m` in a serialization, aggregation, trace or
// scheduling path silently breaks that guarantee — the bug class behind
// Summarize's float-sum nondeterminism (PR 2) and WriteTrace's shuffled
// uplink lines (PR 5).
//
// Two shapes are allowed without annotation:
//
//   - the collect-then-sort idiom, where the loop body is a single
//     `keys = append(keys, k)` statement (the subsequent sort is the
//     caller's contract);
//   - loops that bind neither key nor value (pure counting).
//
// Anything else needs a `//lint:deterministic <reason>` comment on the
// range line (or the line above) spelling out why iteration order cannot
// reach an output — for example an integer sum, or writes keyed by the
// iteration variable itself.
package maporder

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"earthplus/tools/internal/analysis/lintcomment"
)

// DefaultPackages are the determinism-sensitive paths: the engine and its
// trace writer (sim), uplink packing (station), the contact scheduler
// (constellation) and every experiment aggregation (experiments).
const DefaultPackages = "internal/sim,internal/station,internal/constellation,internal/experiments"

var packages string

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range over a map in determinism-sensitive packages (serialization, aggregation, trace and scheduling paths)",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated package path substrings the analyzer applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintcomment.PackageMatch(packages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if bindsNothing(rs) || isCollectKeys(rs) {
				return true
			}
			if lintcomment.Suppressed(pass.Fset, pass.Files, rs.For, "deterministic") {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: rs.For,
				Message: fmt.Sprintf(
					"range over map %s in a determinism-sensitive package: iterate sorted keys, or annotate with //lint:deterministic <reason>",
					types.ExprString(rs.X)),
			})
			return true
		})
	}
	return nil, nil
}

// bindsNothing reports a range that binds neither key nor value — it can
// only count, which is order-independent.
func bindsNothing(rs *ast.RangeStmt) bool {
	return (rs.Key == nil || isBlank(rs.Key)) && (rs.Value == nil || isBlank(rs.Value))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isCollectKeys recognises the sorted-iteration idiom's first half: a loop
// body that is exactly one `xs = append(xs, ...)` statement.
func isCollectKeys(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "append"
}
