// Package analysistest is a minimal, hermetic harness for testing the
// earthplus-lint analyzers against fixture packages.
//
// It plays the role of golang.org/x/tools/go/analysis/analysistest (which
// in turn needs go/packages and a module cache, neither of which this
// vendored subset carries): it parses and typechecks a fixture package
// from an analyzer's testdata/src tree, runs the analyzer over a
// hand-built analysis.Pass, and compares the diagnostics against
// expectations written as
//
//	code() // want "regexp" "another regexp"
//
// comments in the fixtures. Imports are resolved from the same
// testdata/src root, so fixtures that need standard-library packages
// (time, sync, fmt, ...) import tiny stubs committed next to them — the
// analyzers match on package *path* and object names, which the stubs
// reproduce, keeping tests independent of GOROOT contents.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run typechecks the fixture package rooted at root/pkgPath (root is
// usually "testdata/src"), runs a over it, and fails t on any mismatch
// between reported diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, root, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &stubImporter{root: root, fset: fset, cache: map[string]*types.Package{}}
	files, pkg, info, err := imp.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { got = append(got, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	want := expectations(t, fset, files)
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		idx := -1
		for i, re := range want[key] {
			if re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			continue
		}
		want[key] = append(want[key][:idx], want[key][idx+1:]...)
	}
	var keys []string
	for k, res := range want {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, re := range want[k] {
			t.Errorf("%s: expected diagnostic matching %q, got none", k, re)
		}
	}
}

// expectations collects the // want "re" comments, keyed by
// "file.go:line".
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	want := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(rest, -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
					}
					want[key] = append(want[key], re)
				}
			}
		}
	}
	return want
}

// stubImporter resolves import paths to directories under root,
// typechecking them on demand. It satisfies types.Importer for the
// fixtures' stub standard-library packages.
type stubImporter struct {
	root  string
	fset  *token.FileSet
	cache map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(si.root, filepath.FromSlash(path))); err != nil {
		// Not stubbed: fall back to the compiler's export data so
		// fixtures may import real std packages they don't need to fake.
		return importer.Default().Import(path)
	}
	_, pkg, _, err := si.load(path)
	return pkg, err
}

// load parses and typechecks the package at root/path, returning its
// syntax, package object, and type info.
func (si *stubImporter) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(si.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(si.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: si}
	pkg, err := conf.Check(path, si.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	si.cache[path] = pkg
	return files, pkg, info, nil
}
