package pooledescape_test

import (
	"testing"

	"earthplus/tools/internal/analysis/analysistest"
	"earthplus/tools/internal/analysis/pooledescape"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, pooledescape.Analyzer, "testdata/src", "pool")
}
