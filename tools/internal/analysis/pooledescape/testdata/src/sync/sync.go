// Package sync is a fixture stub: pooledescape recognises sync.Pool
// Get/Put by receiver type, which this reproduces.
package sync

type Pool struct{ New func() interface{} }

func (p *Pool) Get() interface{} {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x interface{}) {}
