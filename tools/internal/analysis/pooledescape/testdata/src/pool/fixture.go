// Package pool exercises pooledescape's two rules against the repo's
// acquire/release shapes.
package pool

import "sync"

type Capture struct {
	Image []byte
	Truth []byte
}

func CaptureImage() *Capture { return &Capture{} }

func ReleaseCapture(c *Capture) {}

type scratch struct{}

func getScratch() *scratch { return &scratch{} }

func (s *scratch) release() {}

var bufs sync.Pool

func consume(c *Capture) {}

// Leak never releases: the field read is not a hand-off.
func Leak() []byte {
	c := CaptureImage() // want "pooled value c from CaptureImage is not released on every path"
	return c.Image
}

// BranchLeak releases on one arm only.
func BranchLeak(cond bool) {
	c := CaptureImage() // want "pooled value c from CaptureImage is not released on every path"
	if cond {
		ReleaseCapture(c)
	}
}

// Balanced releases on the straight path.
func Balanced() int {
	c := CaptureImage()
	n := len(c.Image)
	ReleaseCapture(c)
	return n
}

// Deferred registers the release up front: every path is covered.
func Deferred() int {
	c := CaptureImage()
	defer ReleaseCapture(c)
	return len(c.Image)
}

// ScratchOK uses the codec arena's method-release shape.
func ScratchOK() {
	s := getScratch()
	defer s.release()
}

// Handoff returns the whole value: the caller now owns the release.
func Handoff() *Capture {
	c := CaptureImage()
	return c
}

// PassOn hands the whole value to another function.
func PassOn() {
	c := CaptureImage()
	consume(c)
}

// AbortPath panics before the release: aborting paths need none.
func AbortPath(cond bool) {
	c := CaptureImage()
	if cond {
		panic("unreachable in fixtures")
	}
	ReleaseCapture(c)
}

// UseAfterRelease touches the buffer once it is back in the pool.
func UseAfterRelease() int {
	c := CaptureImage()
	ReleaseCapture(c)
	return len(c.Image) // want "use of c after its release"
}

// Reacquired rebinds after the release: the new value is live again.
func Reacquired() *Capture {
	c := CaptureImage()
	ReleaseCapture(c)
	c = CaptureImage()
	return c
}

// PoolRoundTrip balances a sync.Pool Get with its Put.
func PoolRoundTrip() {
	b := bufs.Get().(*[]byte)
	bufs.Put(b)
}

// PoolLeak never puts the value back.
func PoolLeak() int {
	b := bufs.Get().(*[]byte) // want "pooled value b from Get is not released on every path"
	return len(*b)
}

// ClosureRelease is the serving tier's shape: the cleanup closure both
// discharges the obligation and must not count as a premature release.
func ClosureRelease() (*[]byte, func()) {
	b := bufs.Get().(*[]byte)
	release := func() { bufs.Put(b) }
	return b, release
}

// SuppressedLeak documents a deliberate lifetime extension.
func SuppressedLeak() []byte {
	//lint:pooled fixture retains the capture for the process lifetime
	c := CaptureImage()
	return c.Image
}
